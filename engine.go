package vif

import (
	"errors"
	"fmt"

	"github.com/innetworkfiltering/vif/internal/bypass"
	"github.com/innetworkfiltering/vif/internal/engine"
	"github.com/innetworkfiltering/vif/internal/faults"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/telemetry"
)

// Engine mode: instead of pushing packets one at a time through
// Session.Process (the analytical single-threaded path used by the
// experiment harness), a session can run on the concurrent sharded runtime
// of §IV-B. Two shapes exist:
//
//   - Private engine (no Deployment.SharedEngine): StartEngine builds an
//     engine over the session's own attested fleet, one worker per
//     enclave — the original single-victim mode.
//   - Shared engine (Deployment.SharedEngine started first): StartEngine
//     ATTACHES the session to the deployment-wide engine as a victim rule
//     namespace. Many sessions filter concurrently through one shard
//     fleet, each with its own rules, its own epoch/audit cadence, and an
//     apportioned share of the machines' EPC; StopEngine detaches the
//     namespace and releases its share without disturbing the other
//     victims.
//
// In both shapes, per-epoch authenticated sketch snapshots feed the same
// bypass-detection checks the serial path uses.

// Re-exported engine vocabulary.
type (
	// Engine is the running sharded data plane.
	Engine = engine.Engine
	// EngineMetrics is an engine-wide counter snapshot.
	EngineMetrics = engine.Metrics
	// ShardMetrics is one shard's counter block.
	ShardMetrics = engine.ShardMetrics
	// NamespaceMetrics is one victim namespace's counter block.
	NamespaceMetrics = engine.NamespaceMetrics
	// EpochLog is one (namespace, shard) sealed per-epoch authenticated
	// log pair.
	EpochLog = engine.EpochLog
)

// Re-exported telemetry vocabulary, so operators can stand up the
// observability plane (stage histograms, /metrics + pprof, event journal,
// sampled packet traces) without importing internal packages.
type (
	// Telemetry is the engine-wide observability registry (see
	// internal/telemetry). Build one with NewTelemetry, hand it to
	// EngineConfig.Telemetry or SharedEngineConfig.Telemetry, and expose
	// it over HTTP with NewTelemetryServer.
	Telemetry = telemetry.Telemetry
	// TelemetryConfig sizes a Telemetry instance. Shards must match the
	// engine it is attached to.
	TelemetryConfig = telemetry.Config
	// TelemetryServer serves /metrics, /events, /traces and /debug/pprof
	// for one Telemetry instance.
	TelemetryServer = telemetry.Server
	// TelemetryEvent is one structured journal record.
	TelemetryEvent = telemetry.Event
)

// NewTelemetry builds a telemetry registry sized by cfg.
func NewTelemetry(cfg TelemetryConfig) *Telemetry { return telemetry.New(cfg) }

// NewTelemetryServer binds addr (":0" picks a free port) and serves the
// registry's /metrics, /events, /traces and /debug/pprof endpoints.
func NewTelemetryServer(t *Telemetry, addr string) (*TelemetryServer, error) {
	return telemetry.NewServer(t, addr)
}

// ErrEngineRunning is returned by serial-path session methods while the
// engine owns the data plane (the fleet's filters are not thread-safe;
// exactly one runtime may drive them).
var ErrEngineRunning = errors.New("vif: engine owns the data plane; stop it first")

// ErrNoEngine is returned by engine-path methods when no engine is live.
var ErrNoEngine = errors.New("vif: no engine running")

// EngineConfig sizes the session's concurrent runtime.
type EngineConfig struct {
	// RingSize is each shard's ingress ring capacity. Default 4096.
	// Ignored when attaching to a shared engine (its rings are fixed).
	RingSize int
	// Batch is the worker burst size. Default 64. Ignored when attaching
	// to a shared engine.
	Batch int
	// Deliver, when set, observes every packet the fleet forwards toward
	// the victim (called on worker goroutines; keep it cheap). Simulations
	// use it to drive Session.ObserveDelivered through the downstream
	// path. On a shared engine only this session's packets are delivered
	// here — namespace dispatch keeps victims' traffic apart.
	Deliver func(d Descriptor)
	// Telemetry, when set, attaches the observability plane to a private
	// engine: per-shard stage histograms, the event journal, sampled
	// packet traces, and the Prometheus collector. It must be sized for
	// the fleet's shard count (TelemetryConfig.Shards). Ignored when
	// attaching to a shared engine — the shared engine's telemetry is
	// fixed by SharedEngineConfig.
	Telemetry *Telemetry
}

// StartEngine moves the session onto the concurrent data plane. With a
// deployment shared engine up (Deployment.SharedEngine), the session's
// fleet is pinned to the engine's shard count (re-attesting any newly
// spawned enclaves) and attached as a victim rule namespace; otherwise a
// private engine is built over the session's fleet as before. While
// engine mode is active, the serial methods (Process, Reconfigure,
// AuditOutgoing, NewRound) refuse — the engine owns the filters. Leave
// engine mode with StopEngine.
func (s *Session) StartEngine(cfg EngineConfig) (*Engine, error) {
	if s.Aborted() {
		return nil, ErrAborted
	}
	if s.EngineRunning() {
		return nil, ErrEngineRunning
	}
	// A stale attachment to a shared engine the operator already stopped
	// (or a stopped private engine) is released first, so it can never
	// shadow the engine started below when StopEngine runs later.
	s.StopEngine()
	if shared := s.deployment.sharedEngine(); shared != nil {
		return s.attachShared(shared, cfg)
	}

	var sink engine.Sink
	if cfg.Deliver != nil {
		deliver := cfg.Deliver
		sink = func(_ int, d Descriptor) { deliver(d) }
	}
	bal := s.cluster.Balancer()
	eng, err := engine.New(engine.Config{
		Filters:    s.cluster.Filters(),
		Route:      bal.Route,
		RouteBatch: bal.RouteBatch,
		RingSize:   cfg.RingSize,
		Batch:      cfg.Batch,
		Sink:       sink,
		Telemetry:  cfg.Telemetry,
	})
	if err != nil {
		return nil, fmt.Errorf("vif: engine: %w", err)
	}
	if err := eng.Start(); err != nil {
		return nil, fmt.Errorf("vif: engine: %w", err)
	}
	s.engine = eng
	return eng, nil
}

// attachShared pins the session fleet to the shared engine's shard count
// and attaches it as a namespace.
func (s *Session) attachShared(shared *Engine, cfg EngineConfig) (*Engine, error) {
	shards := shared.Shards()
	if s.cluster.Size() != shards {
		if err := s.cluster.PinSize(shards); err != nil {
			return nil, fmt.Errorf("vif: pin fleet to %d shards: %w", shards, err)
		}
		// The pin may have spawned fresh enclaves: the victim attests the
		// whole fleet again before trusting any of its logs.
		if err := s.attestFleet(); err != nil {
			return nil, err
		}
	}
	var sink engine.Sink
	if cfg.Deliver != nil {
		deliver := cfg.Deliver
		sink = func(_ int, d Descriptor) { deliver(d) }
	}
	bal := s.cluster.Balancer()
	ns, err := shared.AttachNamespace(engine.NamespaceConfig{
		Filters:    s.cluster.Filters(),
		Route:      bal.Route,
		RouteBatch: bal.RouteBatch,
		Sink:       sink,
	})
	if err != nil {
		return nil, fmt.Errorf("vif: attach namespace: %w", err)
	}
	s.attached.Store(&attachment{eng: shared, ns: ns})
	return shared, nil
}

// StopEngine leaves engine mode, returning the session to the serial
// path. On a shared engine the session's namespace is detached — its EPC
// budget share is released to the remaining victims and in-flight packets
// of this namespace are dropped, while every other session keeps
// filtering undisturbed. A private engine is drained and stopped. Both
// are handled (a stale attachment to an engine the operator already
// stopped never shadows a live private engine). No-op when no engine is
// live.
func (s *Session) StopEngine() {
	if att := s.attached.Swap(nil); att != nil {
		// ErrUnknownNamespace can only mean a double detach; idempotence
		// is the contract here, so it is deliberately ignored.
		_, _ = att.eng.DetachNamespace(att.ns)
	}
	if s.engine == nil {
		return
	}
	s.engine.Stop()
	s.engine = nil
}

// EngineRunning reports whether an engine currently owns the session's
// data plane (a private engine, or an attached shared-engine namespace).
func (s *Session) EngineRunning() bool {
	if att := s.attached.Load(); att != nil && att.eng.Running() {
		return true
	}
	return s.engine != nil && s.engine.Running()
}

// Namespace returns the session's victim namespace id on the shared
// engine. ok is false in private-engine or serial mode.
func (s *Session) Namespace() (ns int, ok bool) {
	att := s.attached.Load()
	if att == nil {
		return 0, false
	}
	return att.ns, true
}

// liveEngine returns the engine owning this session's data plane, the
// namespace id to stamp, and whether descriptors need stamping. The
// attachment is read with one atomic load, so a concurrent StopEngine
// can never tear the (engine, namespace) pair apart — a racing producer
// either stamps the old namespace (whose packets the engine then drops
// as ns drops or orphans) or sees no engine at all, never another
// victim's id.
func (s *Session) liveEngine() (*Engine, uint16, bool) {
	if att := s.attached.Load(); att != nil && att.eng.Running() {
		return att.eng, uint16(att.ns), true
	}
	if eng := s.engine; eng != nil && eng.Running() {
		return eng, 0, false
	}
	return nil, 0, false
}

// Inject forwards one descriptor to the session's engine, stamping it
// with the session's namespace on a shared engine. Reports false when the
// engine refused it (balancer drop, ring backpressure, stopping) or no
// engine is live.
func (s *Session) Inject(d Descriptor) bool {
	eng, ns, stamp := s.liveEngine()
	if eng == nil {
		return false
	}
	if stamp {
		d.NS = ns
	}
	return eng.Inject(d)
}

// InjectBatch forwards a whole burst of descriptors to the session's
// engine through its batched injection path: the burst is stamped with
// the session's namespace (shared engine), routed once by this victim's
// load-balancer programme, scattered into per-shard runs, and each run
// lands in its shard's ring with a single reservation. It returns how
// many descriptors the data plane accepted — the rest were balancer
// drops or ring backpressure (visible in EngineMetrics) and are dropped,
// NIC-style; the count is not a resumable prefix of ds (see
// Engine.InjectBatch) — or ErrNoEngine when no engine owns the data
// plane. The descriptors' NS field is overwritten in place on the shared
// path. Safe for any number of concurrent producers; a concurrent
// StopEngine makes in-flight calls return 0 or ErrNoEngine, never panic.
func (s *Session) InjectBatch(ds []Descriptor) (int, error) {
	eng, ns, stamp := s.liveEngine() // one read: StopEngine detaches concurrently
	if eng == nil {
		return 0, ErrNoEngine
	}
	if stamp {
		for i := range ds {
			ds[i].NS = ns
		}
	}
	return eng.InjectBatch(ds), nil
}

// EngineMetrics snapshots the running engine's counter blocks (per-shard
// and per-namespace verdicts, queue depths, backpressure, batch
// occupancy, modeled ns/packet, EPC shares). Like Session.Stats, it is
// safe to call while the data plane runs: the workers publish counters
// once per burst through atomics, so monitoring never synchronizes with —
// or races against — the hot path. On a shared engine the snapshot spans
// every victim; use VictimMetrics for just this session's namespace.
func (s *Session) EngineMetrics() (EngineMetrics, error) {
	if att := s.attached.Load(); att != nil {
		return att.eng.Metrics(), nil
	}
	if s.engine == nil {
		return EngineMetrics{}, ErrNoEngine
	}
	return s.engine.Metrics(), nil
}

// VictimMetrics returns this session's own namespace counters: verdicts,
// epochs, promotions, the EPC budget share, and the modeled paging
// pressure under it.
func (s *Session) VictimMetrics() (NamespaceMetrics, error) {
	m, err := s.EngineMetrics()
	if err != nil {
		return NamespaceMetrics{}, err
	}
	want := 0
	if att := s.attached.Load(); att != nil {
		want = att.ns
	}
	for _, nm := range m.Namespaces {
		if nm.NS == want {
			return nm, nil
		}
	}
	return NamespaceMetrics{}, ErrNoEngine
}

// AuditEngineEpoch seals the session's current epoch on every shard
// (without stopping the data plane), authenticates and merges the
// per-shard outgoing logs with the MAC keys obtained during attestation,
// and compares them against the victim's local received-traffic log — the
// §III-B bypass check, per epoch. The victim's local log is reset so the
// next epoch starts a fresh audit window on both sides. On a shared
// engine only this session's namespace rotates: every victim audits on
// its own cadence, concurrently, without blocking the others.
//
// For an exact comparison, quiesce first (Engine.WaitDrained after the
// producers stop): a rotation under live traffic can attribute packets in
// flight at the boundary to adjacent epochs on the two sides, which
// SetLossTolerance absorbs — the same ambiguity the paper's short audit
// rounds tolerate.
func (s *Session) AuditEngineEpoch() (bypass.Verdict, error) {
	if s.Aborted() {
		return bypass.Verdict{}, ErrAborted
	}
	if !s.EngineRunning() {
		return bypass.Verdict{}, ErrNoEngine
	}
	var (
		logs []EpochLog
		err  error
		eng  *Engine
		ns   int
	)
	if att := s.attached.Load(); att != nil {
		eng, ns = att.eng, att.ns
		logs, err = eng.RotateEpoch(ns)
	} else {
		eng, ns = s.engine, 0
		logs, err = eng.RotateEpoch(0)
	}
	if err != nil {
		return bypass.Verdict{}, fmt.Errorf("vif: rotate epoch: %w", err)
	}
	// journal is nil-safe: a no-telemetry engine journals nowhere.
	journal := eng.Telemetry().Journal()
	if s.faults.Should(faults.AuditFailure) {
		// Injected audit failure: the epoch rotated (logs are consumed on
		// the enclave side either way) but the victim-side check reports a
		// violation, exercising the alarm path end to end.
		v := bypass.Verdict{Detail: "injected audit failure"}
		journal.Emit(telemetry.Event{Type: telemetry.EvAuditFail, NS: ns, Shard: -1, Detail: v.Detail})
		s.verifier.Reset()
		return v, nil
	}
	snaps := make([]*filter.SignedSnapshot, len(logs))
	for i, l := range logs {
		snaps[i] = l.Outgoing
	}
	merged, err := bypass.MergeSnapshots(s.macKeys, snaps)
	if err != nil {
		journal.Emit(telemetry.Event{Type: telemetry.EvAuditFail, NS: ns, Shard: -1, Detail: "merge snapshots: " + err.Error()})
		return bypass.Verdict{}, err
	}
	v, err := s.verifier.CheckSketch(merged)
	if err != nil {
		journal.Emit(telemetry.Event{Type: telemetry.EvAuditFail, NS: ns, Shard: -1, Detail: "check sketch: " + err.Error()})
		return bypass.Verdict{}, err
	}
	if v.Clean {
		journal.Emit(telemetry.Event{Type: telemetry.EvAuditPass, NS: ns, Shard: -1, Detail: "epoch audit clean"})
	} else {
		journal.Emit(telemetry.Event{Type: telemetry.EvAuditFail, NS: ns, Shard: -1, Detail: v.Detail})
	}
	s.verifier.Reset()
	return v, nil
}
