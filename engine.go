package vif

import (
	"errors"
	"fmt"

	"github.com/innetworkfiltering/vif/internal/bypass"
	"github.com/innetworkfiltering/vif/internal/engine"
	"github.com/innetworkfiltering/vif/internal/filter"
)

// Engine mode: instead of pushing packets one at a time through
// Session.Process (the analytical single-threaded path used by the
// experiment harness), a session can launch the concurrent sharded runtime
// of §IV-B. Each attested enclave becomes a worker shard behind a bounded
// MPSC ring; the untrusted load balancer's rule-distribution programme
// assigns flows to shards; per-epoch authenticated sketch snapshots feed
// the same bypass-detection checks the serial path uses.

// Re-exported engine vocabulary.
type (
	// Engine is the running sharded data plane.
	Engine = engine.Engine
	// EngineMetrics is an engine-wide counter snapshot.
	EngineMetrics = engine.Metrics
	// ShardMetrics is one shard's counter block.
	ShardMetrics = engine.ShardMetrics
	// EpochLog is one shard's sealed per-epoch authenticated logs.
	EpochLog = engine.EpochLog
)

// ErrEngineRunning is returned by serial-path session methods while the
// engine owns the data plane (the fleet's filters are not thread-safe;
// exactly one runtime may drive them).
var ErrEngineRunning = errors.New("vif: engine owns the data plane; stop it first")

// ErrNoEngine is returned by engine-path methods when no engine is live.
var ErrNoEngine = errors.New("vif: no engine running")

// EngineConfig sizes the session's concurrent runtime.
type EngineConfig struct {
	// RingSize is each shard's ingress ring capacity. Default 4096.
	RingSize int
	// Batch is the worker burst size. Default 64.
	Batch int
	// Deliver, when set, observes every packet the fleet forwards toward
	// the victim (called on worker goroutines; keep it cheap). Simulations
	// use it to drive Session.ObserveDelivered through the downstream
	// path.
	Deliver func(d Descriptor)
}

// StartEngine launches the concurrent data plane over the session's
// attested fleet: one worker per enclave, shard assignment by the
// deployment's load balancer. While the engine runs, the serial methods
// (Process, Reconfigure, AuditOutgoing, NewRound) refuse — the engine owns
// the filters. Stop it with StopEngine (or Engine.Stop) to return to the
// serial path.
func (s *Session) StartEngine(cfg EngineConfig) (*Engine, error) {
	if s.Aborted() {
		return nil, ErrAborted
	}
	if s.engine != nil && s.engine.Running() {
		return nil, ErrEngineRunning
	}
	var sink engine.Sink
	if cfg.Deliver != nil {
		deliver := cfg.Deliver
		sink = func(_ int, d Descriptor) { deliver(d) }
	}
	bal := s.cluster.Balancer()
	eng, err := engine.New(engine.Config{
		Filters:    s.cluster.Filters(),
		Route:      bal.Route,
		RouteBatch: bal.RouteBatch,
		RingSize:   cfg.RingSize,
		Batch:      cfg.Batch,
		Sink:       sink,
	})
	if err != nil {
		return nil, fmt.Errorf("vif: engine: %w", err)
	}
	if err := eng.Start(); err != nil {
		return nil, fmt.Errorf("vif: engine: %w", err)
	}
	s.engine = eng
	return eng, nil
}

// StopEngine drains and stops the running engine, returning the session to
// the serial path. No-op when no engine is live.
func (s *Session) StopEngine() {
	if s.engine == nil {
		return
	}
	s.engine.Stop()
	s.engine = nil
}

// EngineRunning reports whether an engine currently owns the data plane.
func (s *Session) EngineRunning() bool {
	return s.engine != nil && s.engine.Running()
}

// InjectBatch forwards a whole burst of descriptors to the running engine
// through its batched injection path: the burst is routed once by the
// deployment's load balancer, scattered into per-shard runs, and each run
// lands in its shard's ring with a single reservation. It returns how many
// descriptors the data plane accepted — the rest were balancer drops or
// ring backpressure (visible in EngineMetrics) and are dropped, NIC-style;
// the count is not a resumable prefix of ds (see Engine.InjectBatch) — or
// ErrNoEngine when no engine owns the data plane. Safe for any number of
// concurrent producers; a concurrent StopEngine makes in-flight calls
// return 0 or ErrNoEngine, never panic.
func (s *Session) InjectBatch(ds []Descriptor) (int, error) {
	eng := s.engine // one read: StopEngine nils the field concurrently
	if eng == nil || !eng.Running() {
		return 0, ErrNoEngine
	}
	return eng.InjectBatch(ds), nil
}

// EngineMetrics snapshots the running engine's per-shard counter blocks
// (verdicts, queue depths, backpressure, batch occupancy, modeled
// ns/packet). Like Session.Stats, it is safe to call while the data plane
// runs: the workers publish counters once per burst through atomics, so
// monitoring never synchronizes with — or races against — the hot path.
func (s *Session) EngineMetrics() (EngineMetrics, error) {
	if s.engine == nil {
		return EngineMetrics{}, ErrNoEngine
	}
	return s.engine.Metrics(), nil
}

// AuditEngineEpoch seals the current epoch on every shard (without
// stopping the data plane), authenticates and merges the per-shard
// outgoing logs with the MAC keys obtained during attestation, and
// compares them against the victim's local received-traffic log — the
// §III-B bypass check, per epoch. The victim's local log is reset so the
// next epoch starts a fresh audit window on both sides.
//
// For an exact comparison, quiesce first (Engine.WaitDrained after the
// producers stop): a rotation under live traffic can attribute packets in
// flight at the boundary to adjacent epochs on the two sides, which
// SetLossTolerance absorbs — the same ambiguity the paper's short audit
// rounds tolerate.
func (s *Session) AuditEngineEpoch() (bypass.Verdict, error) {
	if s.Aborted() {
		return bypass.Verdict{}, ErrAborted
	}
	if !s.EngineRunning() {
		return bypass.Verdict{}, ErrNoEngine
	}
	logs, err := s.engine.RotateEpoch()
	if err != nil {
		return bypass.Verdict{}, fmt.Errorf("vif: rotate epoch: %w", err)
	}
	snaps := make([]*filter.SignedSnapshot, len(logs))
	for i, l := range logs {
		snaps[i] = l.Outgoing
	}
	merged, err := bypass.MergeSnapshots(s.macKeys, snaps)
	if err != nil {
		return bypass.Verdict{}, err
	}
	v, err := s.verifier.CheckSketch(merged)
	if err != nil {
		return bypass.Verdict{}, err
	}
	s.verifier.Reset()
	return v, nil
}
