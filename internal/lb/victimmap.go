package lb

import (
	"fmt"
	"sort"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// VictimMap is the ingress-side destination-prefix → victim-namespace
// classifier of a multi-victim deployment. The transit network knows which
// victim requested filtering for which prefix (it authorized each request
// against RPKI), so the untrusted ingress path — the same switching fabric
// that load-balances flows to enclaves — stamps every descriptor with its
// victim's namespace id before injection, and the engine dispatches it to
// that victim's rule set.
//
// Like the balancer's routing programme, the map is built by the control
// plane and then read-only on the data path: Stamp/Lookup are safe for any
// number of concurrent producers once Add calls have stopped. Misstamping
// is in the untrusted domain and is caught the same way misrouting is —
// traffic stamped into the wrong namespace matches no rule there and shows
// up in that victim's audit, not silently in the right victim's counters.
type VictimMap struct {
	entries []vmEntry // sorted by descending prefix length: first hit wins
}

type vmEntry struct {
	prefix rules.Prefix
	ns     uint16
}

// NewVictimMap creates an empty map.
func NewVictimMap() *VictimMap { return &VictimMap{} }

// Add maps a destination prefix to a victim namespace. Longest prefix wins
// on overlapping entries. Control-plane only: not safe concurrently with
// Lookup/Stamp.
func (m *VictimMap) Add(p rules.Prefix, ns uint16) error {
	if p.IsAny() {
		return fmt.Errorf("lb: victim prefix must be specific, got %v", p)
	}
	m.entries = append(m.entries, vmEntry{prefix: p.Canonical(), ns: ns})
	sort.SliceStable(m.entries, func(i, j int) bool {
		return m.entries[i].prefix.Len > m.entries[j].prefix.Len
	})
	return nil
}

// Lookup returns the namespace owning a destination address. The victim
// count at one filtering point is small (tens, not millions), so the
// longest-prefix match is a linear scan over length-sorted entries.
func (m *VictimMap) Lookup(dst uint32) (uint16, bool) {
	for _, e := range m.entries {
		if e.prefix.Contains(dst) {
			return e.ns, true
		}
	}
	return 0, false
}

// Stamp writes each descriptor's namespace id from its destination
// address and reports how many had no owning victim (those are left with
// NS unchanged; callers typically drop or default-route them). Runs of
// consecutive packets to one destination are classified once — the same
// packet-train amortization the balancer's RouteBatch uses.
func (m *VictimMap) Stamp(ds []packet.Descriptor) (unmapped int) {
	var (
		lastDst  uint32
		lastNS   uint16
		lastOK   bool
		haveLast bool
	)
	for i := range ds {
		dst := ds[i].Tuple.DstIP
		if !haveLast || dst != lastDst {
			lastNS, lastOK = m.Lookup(dst)
			lastDst, haveLast = dst, true
		}
		if !lastOK {
			unmapped++
			continue
		}
		ds[i].NS = lastNS
	}
	return unmapped
}

// Len returns the number of mapped prefixes.
func (m *VictimMap) Len() int { return len(m.entries) }
