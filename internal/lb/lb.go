package lb

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// Errors.
var ErrNoTargets = errors.New("lb: rule installed nowhere")

// target is one enclave handling a weighted share of a rule's traffic.
type target struct {
	enclave int
	// cum is the cumulative weight boundary in [0,1]; a flow whose unit
	// hash falls below cum (and above the previous boundary) goes here.
	cum float64
}

// Balancer steers flows to enclaves. Flow-to-enclave choice is a
// deterministic hash of the five-tuple, so all packets of a connection
// take the same path (the filter's connection-preserving guarantee must
// survive load balancing).
type Balancer struct {
	// ruleTargets maps rule ID to its weighted enclave shares.
	ruleTargets map[uint32][]target
	// matcher finds which rule a flow belongs to (the full rule set,
	// mirroring what the controller learns during distribution, §VI-B:
	// "The VIF IXP eventually learns and analyzes all the rules").
	matcher *rules.Set
	// n is the enclave count, for default spreading of unmatched traffic.
	n int

	faults Faults
	// mu guards rng: honest routing is pure and lock-free (the engine's
	// concurrent producers call Route directly), but fault injection draws
	// from shared randomness.
	mu  sync.Mutex
	rng *rand.Rand
}

// Faults configures load-balancer misbehavior for adversarial tests.
type Faults struct {
	// MisrouteProb sends a flow to a uniformly random wrong enclave.
	MisrouteProb float64
	// DropProb silently discards the packet (a "drop before filtering"
	// bypass attack executed in the switching fabric).
	DropProb float64
	// Seed makes fault injection reproducible.
	Seed int64
}

// Config assembles a balancer.
type Config struct {
	// FullSet is the complete rule set (priority order preserved).
	FullSet *rules.Set
	// Shares maps each rule ID to its per-enclave bandwidth shares
	// (absolute values; they are normalized). Every rule must have at
	// least one positive share.
	Shares map[uint32][]float64
	// N is the number of enclaves.
	N int
	// Faults optionally injects misbehavior.
	Faults Faults
}

// New builds a balancer from a distribution outcome.
func New(cfg Config) (*Balancer, error) {
	if cfg.FullSet == nil || cfg.N <= 0 {
		return nil, errors.New("lb: missing rule set or enclaves")
	}
	b := &Balancer{
		ruleTargets: make(map[uint32][]target, len(cfg.Shares)),
		matcher:     cfg.FullSet,
		n:           cfg.N,
		faults:      cfg.Faults,
		rng:         rand.New(rand.NewSource(cfg.Faults.Seed)),
	}
	for _, r := range cfg.FullSet.Rules {
		shares, ok := cfg.Shares[r.ID]
		if !ok {
			return nil, fmt.Errorf("%w: rule %d", ErrNoTargets, r.ID)
		}
		if len(shares) != cfg.N {
			return nil, fmt.Errorf("lb: rule %d has %d shares, want %d", r.ID, len(shares), cfg.N)
		}
		var total float64
		for _, s := range shares {
			if s < 0 {
				return nil, fmt.Errorf("lb: rule %d negative share", r.ID)
			}
			total += s
		}
		if total <= 0 {
			return nil, fmt.Errorf("%w: rule %d", ErrNoTargets, r.ID)
		}
		var ts []target
		var cum float64
		for j, s := range shares {
			if s <= 0 {
				continue
			}
			cum += s / total
			ts = append(ts, target{enclave: j, cum: cum})
		}
		ts[len(ts)-1].cum = 1.0 // absorb rounding
		b.ruleTargets[r.ID] = ts
	}
	return b, nil
}

// unitHash maps a tuple to [0,1) deterministically and independently of
// the filter's secret-keyed decision hash.
func unitHash(t packet.FiveTuple) float64 {
	const salt = 0x6c62272e07bb0142 // distinct domain from FiveTuple.Hash64 use
	h := t.Hash64() ^ salt
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}

// Route returns the enclave index for a packet, or ok=false when the
// (faulty) balancer dropped it. Honest routing is fully deterministic per
// flow and safe for any number of concurrent callers; the faulty paths
// serialize on the shared randomness.
func (b *Balancer) Route(t packet.FiveTuple) (int, bool) {
	if b.faults.DropProb == 0 && b.faults.MisrouteProb == 0 {
		return b.route(t), true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.faults.DropProb > 0 && b.rng.Float64() < b.faults.DropProb {
		return 0, false
	}
	j := b.route(t)
	if b.faults.MisrouteProb > 0 && b.rng.Float64() < b.faults.MisrouteProb {
		j = (j + 1 + b.rng.Intn(b.n)) % b.n
	}
	return j, true
}

// RouteBatch routes a whole burst of descriptors, writing each packet's
// enclave index to out[i] (-1 when the faulty balancer drops it). It is
// the balancer's half of the engine's batched injection path: the honest
// case stays pure and lock-free like Route, and the faulty paths take the
// shared-randomness lock once per burst instead of once per packet.
// len(out) must be at least len(ds).
func (b *Balancer) RouteBatch(ds []packet.Descriptor, out []int32) {
	if b.faults.DropProb == 0 && b.faults.MisrouteProb == 0 {
		// Honest routing is a pure function of the tuple, so a run of
		// consecutive packets of one flow is routed once — the rule-set
		// match is paid per train, not per packet.
		for i := range ds {
			if i > 0 && ds[i].Tuple == ds[i-1].Tuple {
				out[i] = out[i-1]
				continue
			}
			out[i] = int32(b.route(ds[i].Tuple))
		}
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range ds {
		if b.faults.DropProb > 0 && b.rng.Float64() < b.faults.DropProb {
			out[i] = -1
			continue
		}
		j := b.route(ds[i].Tuple)
		if b.faults.MisrouteProb > 0 && b.rng.Float64() < b.faults.MisrouteProb {
			j = (j + 1 + b.rng.Intn(b.n)) % b.n
		}
		out[i] = int32(j)
	}
}

func (b *Balancer) route(t packet.FiveTuple) int {
	r, ok := b.matcher.Match(t)
	if !ok {
		// Unmatched traffic has no owning enclave; spread it by flow hash
		// so any enclave's default action applies consistently per flow.
		return int(unitHash(t) * float64(b.n))
	}
	ts := b.ruleTargets[r.ID]
	u := unitHash(t)
	idx := sort.Search(len(ts), func(i int) bool { return u < ts[i].cum })
	if idx == len(ts) {
		idx = len(ts) - 1
	}
	return ts[idx].enclave
}

// Targets returns the enclaves serving a rule (for tests and ops).
func (b *Balancer) Targets(ruleID uint32) []int {
	ts := b.ruleTargets[ruleID]
	out := make([]int, len(ts))
	for i, t := range ts {
		out[i] = t.enclave
	}
	return out
}

// N returns the enclave count.
func (b *Balancer) N() int { return b.n }
