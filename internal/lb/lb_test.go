package lb

import (
	"math"
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

func testSet(t *testing.T) *rules.Set {
	t.Helper()
	s, err := rules.NewSet([]rules.Rule{
		rules.MustParse("drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53"),
		rules.MustParse("drop 50% tcp from any to 192.0.2.0/24 dport 80"),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func dnsTuple(src uint32) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP: 0x0a000000 | (src & 0x00ffffff), DstIP: packet.MustParseIP("192.0.2.1"),
		SrcPort: uint16(src>>16) | 1, DstPort: 53, Proto: packet.ProtoUDP,
	}
}

func httpTuple(src uint32, port uint16) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP: src, DstIP: packet.MustParseIP("192.0.2.2"),
		SrcPort: port, DstPort: 80, Proto: packet.ProtoTCP,
	}
}

func TestNewValidation(t *testing.T) {
	set := testSet(t)
	ids := set.IDs()
	tests := []struct {
		name   string
		shares map[uint32][]float64
	}{
		{"missing rule", map[uint32][]float64{ids[0]: {1, 0}}},
		{"wrong width", map[uint32][]float64{ids[0]: {1}, ids[1]: {1, 0}}},
		{"all zero", map[uint32][]float64{ids[0]: {0, 0}, ids[1]: {1, 0}}},
		{"negative", map[uint32][]float64{ids[0]: {-1, 2}, ids[1]: {1, 0}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(Config{FullSet: set, Shares: tt.shares, N: 2}); err == nil {
				t.Error("want error")
			}
		})
	}
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestRouteRespectsAssignment(t *testing.T) {
	set := testSet(t)
	ids := set.IDs()
	// Rule 0 lives on enclave 1 only; rule 1 on enclave 0 only.
	b, err := New(Config{
		FullSet: set,
		Shares:  map[uint32][]float64{ids[0]: {0, 5e9}, ids[1]: {3e9, 0}},
		N:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 500; i++ {
		if j, ok := b.Route(dnsTuple(i)); !ok || j != 1 {
			t.Fatalf("dns flow routed to %d (ok=%v), want 1", j, ok)
		}
		if j, ok := b.Route(httpTuple(i+1, uint16(i%6000)+1)); !ok || j != 0 {
			t.Fatalf("http flow routed to %d (ok=%v), want 0", j, ok)
		}
	}
	if got := b.Targets(ids[0]); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Targets(rule0) = %v", got)
	}
}

func TestRouteConnectionStability(t *testing.T) {
	// Every packet of a flow must take the same path, even for split rules.
	set := testSet(t)
	ids := set.IDs()
	b, err := New(Config{
		FullSet: set,
		Shares:  map[uint32][]float64{ids[0]: {1, 1}, ids[1]: {2, 3}},
		N:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		flow := httpTuple(rng.Uint32(), uint16(rng.Intn(60000)+1))
		first, ok := b.Route(flow)
		if !ok {
			t.Fatal("honest balancer dropped")
		}
		for rep := 0; rep < 20; rep++ {
			if j, _ := b.Route(flow); j != first {
				t.Fatalf("flow %v flapped %d -> %d", flow, first, j)
			}
		}
	}
}

func TestSplitSharesApproximateWeights(t *testing.T) {
	// A 25%/75% split must route ≈25%/75% of flows.
	set := testSet(t)
	ids := set.IDs()
	b, err := New(Config{
		FullSet: set,
		Shares:  map[uint32][]float64{ids[0]: {1, 3}, ids[1]: {1, 0}},
		N:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	counts := [2]int{}
	const flows = 20000
	for i := 0; i < flows; i++ {
		j, ok := b.Route(dnsTuple(rng.Uint32()))
		if !ok {
			t.Fatal("drop")
		}
		counts[j]++
	}
	frac := float64(counts[0]) / flows
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("enclave 0 got %.3f of flows, want 0.25", frac)
	}
}

func TestUnmatchedTrafficSpreads(t *testing.T) {
	set := testSet(t)
	ids := set.IDs()
	b, err := New(Config{
		FullSet: set,
		Shares:  map[uint32][]float64{ids[0]: {1, 0, 0}, ids[1]: {0, 1, 0}},
		N:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 3)
	for i := 0; i < 9000; i++ {
		tp := packet.FiveTuple{ // matches neither rule
			SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("198.51.100.1"),
			DstPort: 22, Proto: packet.ProtoTCP,
		}
		j, ok := b.Route(tp)
		if !ok {
			t.Fatal("drop")
		}
		counts[j]++
	}
	for j, c := range counts {
		if c < 2000 || c > 4000 {
			t.Fatalf("unmatched traffic skewed: enclave %d got %d/9000", j, c)
		}
	}
}

func TestFaultInjection(t *testing.T) {
	set := testSet(t)
	ids := set.IDs()
	shares := map[uint32][]float64{ids[0]: {1, 0}, ids[1]: {0, 1}}

	dropper, err := New(Config{
		FullSet: set, Shares: shares, N: 2,
		Faults: Faults{DropProb: 0.3, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	const n = 10000
	for i := uint32(0); i < n; i++ {
		if _, ok := dropper.Route(dnsTuple(i)); !ok {
			drops++
		}
	}
	if frac := float64(drops) / n; math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("drop rate %.3f, want 0.3", frac)
	}

	misrouter, err := New(Config{
		FullSet: set, Shares: shares, N: 2,
		Faults: Faults{MisrouteProb: 1.0, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i := uint32(0); i < 1000; i++ {
		// dns flows belong on enclave 0 per shares.
		if j, ok := misrouter.Route(dnsTuple(i)); ok && j != 0 {
			wrong++
		}
	}
	if wrong == 0 {
		t.Fatal("MisrouteProb=1 never misrouted")
	}
}

// TestRouteBatchMatchesScalar drives the same flows through Route and
// RouteBatch on an honest balancer: the batch path must produce the exact
// per-packet routing the scalar path does (routing is a pure function of
// the tuple).
func TestRouteBatchMatchesScalar(t *testing.T) {
	set := testSet(t)
	ids := set.IDs()
	b, err := New(Config{
		FullSet: set,
		Shares:  map[uint32][]float64{ids[0]: {2e9, 3e9}, ids[1]: {1e9, 4e9}},
		N:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := make([]packet.Descriptor, 512)
	for i := range ds {
		if i%2 == 0 {
			ds[i] = packet.Descriptor{Tuple: dnsTuple(uint32(i))}
		} else {
			ds[i] = packet.Descriptor{Tuple: httpTuple(uint32(i), uint16(i%6000)+1)}
		}
	}
	out := make([]int32, len(ds))
	b.RouteBatch(ds, out)
	for i, d := range ds {
		j, ok := b.Route(d.Tuple)
		if !ok {
			t.Fatalf("honest balancer dropped flow %d", i)
		}
		if out[i] != int32(j) {
			t.Fatalf("flow %d: RouteBatch %d, Route %d", i, out[i], j)
		}
	}
}

// TestRouteBatchFaultyDropsAndMisroutes checks the faulty batch path: drop
// verdicts surface as -1 at roughly the configured probability, and
// misroutes still land on a valid enclave index.
func TestRouteBatchFaultyDropsAndMisroutes(t *testing.T) {
	set := testSet(t)
	ids := set.IDs()
	b, err := New(Config{
		FullSet: set,
		Shares:  map[uint32][]float64{ids[0]: {1, 1}, ids[1]: {1, 1}},
		N:       2,
		Faults:  Faults{DropProb: 0.2, MisrouteProb: 0.2, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	ds := make([]packet.Descriptor, n)
	for i := range ds {
		ds[i] = packet.Descriptor{Tuple: dnsTuple(uint32(i))}
	}
	out := make([]int32, n)
	b.RouteBatch(ds, out)
	drops := 0
	for i, j := range out {
		switch {
		case j == -1:
			drops++
		case j < 0 || int(j) >= b.N():
			t.Fatalf("flow %d routed to invalid enclave %d", i, j)
		}
	}
	if frac := float64(drops) / n; math.Abs(frac-0.2) > 0.03 {
		t.Fatalf("drop fraction %.3f, configured 0.2", frac)
	}
}
