// Package lb models the untrusted load balancer / switching fabric of the
// scalable VIF architecture (§IV-B, Figure 4). The balancer steers traffic
// to enclaves according to the rule distribution computed by the master
// enclave; because it runs outside any enclave it may misbehave, so the
// package also provides fault injection (misrouting, silent drops) that
// the enclave-side misroute detection and the sketch-based bypass
// detection must catch — exercised by the cluster and integration tests.
//
// Balancer routes flow→enclave by a deterministic unit-interval hash over
// per-rule weighted shares, so all packets of a connection take the same
// path (the filter's connection-preserving guarantee must survive load
// balancing). A Balancer is immutable once built: reconfiguration (full
// rounds and rule deltas alike) builds a successor from the new shares
// and swaps it in wholesale, so routing can never observe a half-updated
// programme. VictimMap maps destination prefixes to victim namespace ids
// (longest prefix wins) and stamps descriptor bursts at ingress for the
// multi-victim engine.
//
// # Concurrency contract
//
//   - Honest routing (Route, RouteBatch without faults) is a pure
//     function of the tuple: lock-free and safe for any number of
//     concurrent callers — the engine's producers call it directly.
//   - Fault-injecting balancers serialize on the shared randomness; the
//     batch path takes that lock once per burst.
//   - VictimMap is immutable after its Add calls complete; Stamp is then
//     safe for any number of concurrent callers.
//
// # Invariants
//
//   - Every rule in the programme has at least one positive share;
//     per-rule share boundaries are normalized and the last boundary is
//     exactly 1.0.
//   - A flow matching no rule spreads uniformly by hash (the balancer
//     cannot know rules the controller never installed).
package lb
