package lb

import (
	"testing"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

func TestVictimMapLongestPrefixWins(t *testing.T) {
	m := NewVictimMap()
	if err := m.Add(rules.MustParsePrefix("10.0.0.0/8"), 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(rules.MustParsePrefix("10.5.0.0/16"), 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(rules.MustParsePrefix("10.5.7.0/24"), 3); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ip   string
		ns   uint16
		want bool
	}{
		{"10.200.1.1", 1, true},
		{"10.5.1.1", 2, true},
		{"10.5.7.9", 3, true},
		{"192.0.2.1", 0, false},
	}
	for _, c := range cases {
		ns, ok := m.Lookup(packet.MustParseIP(c.ip))
		if ok != c.want || (ok && ns != c.ns) {
			t.Fatalf("Lookup(%s) = %d,%v want %d,%v", c.ip, ns, ok, c.ns, c.want)
		}
	}
	if m.Len() != 3 {
		t.Fatalf("Len %d", m.Len())
	}
}

func TestVictimMapRejectsAnyPrefix(t *testing.T) {
	m := NewVictimMap()
	if err := m.Add(rules.Prefix{}, 1); err == nil {
		t.Fatal("0.0.0.0/0 accepted as a victim prefix")
	}
}

func TestVictimMapStamp(t *testing.T) {
	m := NewVictimMap()
	if err := m.Add(rules.MustParsePrefix("192.0.2.0/24"), 4); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(rules.MustParsePrefix("198.51.100.0/24"), 9); err != nil {
		t.Fatal(err)
	}
	mk := func(ip string) packet.Descriptor {
		return packet.Descriptor{Tuple: packet.FiveTuple{DstIP: packet.MustParseIP(ip)}, NS: 77}
	}
	// A packet train to one destination exercises the run-cached path.
	ds := []packet.Descriptor{
		mk("192.0.2.1"), mk("192.0.2.1"), mk("192.0.2.1"),
		mk("198.51.100.8"),
		mk("203.0.113.5"), // unmapped: NS left untouched
		mk("203.0.113.5"),
		mk("192.0.2.200"),
	}
	unmapped := m.Stamp(ds)
	if unmapped != 2 {
		t.Fatalf("unmapped %d, want 2", unmapped)
	}
	wantNS := []uint16{4, 4, 4, 9, 77, 77, 4}
	for i, d := range ds {
		if d.NS != wantNS[i] {
			t.Fatalf("ds[%d].NS = %d, want %d", i, d.NS, wantNS[i])
		}
	}
}
