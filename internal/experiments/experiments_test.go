package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Config { return Config{Quick: true, Seed: 1} }

func runExperiment(t *testing.T, id string) *Result {
	t.Helper()
	r, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	res, err := r.Run(quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id || len(res.Rows) == 0 || len(res.Header) == 0 {
		t.Fatalf("%s: malformed result %+v", id, res)
	}
	for i, row := range res.Rows {
		if len(row) != len(res.Header) {
			t.Fatalf("%s row %d: %d cells for %d columns", id, i, len(row), len(res.Header))
		}
	}
	if !strings.Contains(res.Render(), res.Title) {
		t.Fatalf("%s: Render missing title", id)
	}
	return res
}

func cell(t *testing.T, res *Result, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(res.Rows[row][col], "s"), 64)
	if err != nil {
		t.Fatalf("%s[%d][%d] = %q not numeric: %v", res.ID, row, col, res.Rows[row][col], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation must be registered.
	want := []string{
		"fig3a", "fig3b", "fig8", "fig13", "latency", "fig14",
		"table1", "table2", "table3", "gap", "fig9", "fig11", "attest",
	}
	ids := IDs()
	have := make(map[string]bool, len(ids))
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown ID resolved")
	}
}

func TestFig3aShape(t *testing.T) {
	res := runExperiment(t, "fig3a")
	// Claim: throughput at the smallest rule count is much higher than at
	// the largest (the paper's cliff).
	first := cell(t, res, 0, 2)
	last := cell(t, res, len(res.Rows)-1, 2)
	if first < 2*last {
		t.Fatalf("no cliff: %.2f Mpps at few rules vs %.2f at many", first, last)
	}
}

func TestFig3bShape(t *testing.T) {
	res := runExperiment(t, "fig3b")
	prev := 0.0
	for i := range res.Rows {
		mb := cell(t, res, i, 1)
		if mb < prev {
			t.Fatalf("memory not monotone at row %d", i)
		}
		prev = mb
	}
}

func TestFig8Shape(t *testing.T) {
	res := runExperiment(t, "fig8")
	// Row 0 is 64 B: native ≥ near-zero-copy > full-copy.
	native, full, zero := cell(t, res, 0, 1), cell(t, res, 0, 2), cell(t, res, 0, 3)
	if !(native >= zero && zero > full) {
		t.Fatalf("64 B ordering violated: native=%.2f full=%.2f zero=%.2f", native, full, zero)
	}
	// Paper: all three at line rate for ≥256 B (row 2 = 256 B).
	line := cell(t, res, 2, 4)
	for col := 1; col <= 3; col++ {
		if v := cell(t, res, 2, col); v < line*0.99 {
			t.Fatalf("256 B col %d below line rate: %.2f < %.2f", col, v, line)
		}
	}
	// Near-zero-copy at 64 B ≈ 8 Gb/s (paper anchor; accept 6-8.5).
	if zero < 6.0 || zero > 8.6 {
		t.Fatalf("near-zero-copy 64 B = %.2f Gb/s, want ≈8", zero)
	}
}

func TestFig13FullCopyCap(t *testing.T) {
	res := runExperiment(t, "fig13")
	// Paper: full copy capped ≈6 Mpps at 64 B (accept 4-8).
	full := cell(t, res, 0, 2)
	if full < 4 || full > 8 {
		t.Fatalf("full-copy 64 B = %.2f Mpps, want ≈6", full)
	}
}

func TestLatencyShape(t *testing.T) {
	res := runExperiment(t, "latency")
	prev := 0.0
	for i := range res.Rows {
		modeled := cell(t, res, i, 1)
		paper := cell(t, res, i, 2)
		if modeled <= prev {
			t.Fatalf("latency not monotone in size at row %d", i)
		}
		prev = modeled
		// Within 30% of each paper point.
		if ratio := modeled / paper; ratio < 0.7 || ratio > 1.3 {
			t.Fatalf("row %d: modeled %.1f µs vs paper %.0f µs", i, modeled, paper)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	res := runExperiment(t, "fig14")
	// 64 B column (col 1) must degrade from first to last row; 1500 B
	// column (col 6) must stay at line rate.
	first64 := cell(t, res, 0, 1)
	last64 := cell(t, res, len(res.Rows)-1, 1)
	if last64 >= first64 {
		t.Fatalf("64 B no degradation: %.2f -> %.2f", first64, last64)
	}
	first1500 := cell(t, res, 0, 6)
	last1500 := cell(t, res, len(res.Rows)-1, 6)
	if last1500 < first1500*0.99 {
		t.Fatalf("1500 B degraded: %.2f -> %.2f", first1500, last1500)
	}
}

func TestTable2Shape(t *testing.T) {
	res := runExperiment(t, "table2")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestTable1GreedyWins(t *testing.T) {
	res := runExperiment(t, "table1")
	for i, row := range res.Rows {
		if !strings.Contains(row[4], "x") {
			t.Fatalf("row %d: no speedup reported: %v", i, row)
		}
	}
}

func TestGapSmall(t *testing.T) {
	res := runExperiment(t, "gap")
	for i := range res.Rows {
		gap := cell(t, res, i, 4)
		if gap > 30 {
			t.Fatalf("row %d: gap %.1f%% too large", i, gap)
		}
	}
}

func TestFig9UnderPaperCeiling(t *testing.T) {
	res := runExperiment(t, "fig9")
	for i := range res.Rows {
		mean := cell(t, res, i, 1)
		if mean > 40 {
			t.Fatalf("row %d: %.1fs exceeds the paper's 40 s ceiling", i, mean)
		}
	}
}

func TestFig11PaperAnchors(t *testing.T) {
	res := runExperiment(t, "fig11")
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 (2 datasets x top1..5)", len(res.Rows))
	}
	for _, dsRowBase := range []int{0, 5} {
		top1 := cell(t, res, dsRowBase, 4)   // median at top-1
		top5 := cell(t, res, dsRowBase+4, 4) // median at top-5
		if top5 < top1 {
			t.Fatalf("median fell with more IXPs: %.2f -> %.2f", top1, top5)
		}
		if top1 < 0.35 {
			t.Fatalf("top-1 median %.2f too low (paper ≈0.6)", top1)
		}
		if top5 < 0.6 {
			t.Fatalf("top-5 median %.2f too low (paper ≥0.75)", top5)
		}
	}
}

func TestAttestMatchesAppendixG(t *testing.T) {
	res := runExperiment(t, "attest")
	var endToEnd string
	for _, row := range res.Rows {
		if row[0] == "end to end" {
			endToEnd = row[1]
		}
	}
	if endToEnd == "" {
		t.Fatal("no end-to-end row")
	}
}

func TestTable3Complete(t *testing.T) {
	res := runExperiment(t, "table3")
	if len(res.Rows) != 25 {
		t.Fatalf("rows = %d, want 25", len(res.Rows))
	}
}
