// Package experiments regenerates every table and figure of the paper's
// evaluation (§V and §VI-C plus the appendices). Each experiment returns a
// Result — a paper-style table of rows — that cmd/vif-experiments prints
// and EXPERIMENTS.md records against the paper's numbers.
//
// Every experiment is deterministic given its seed; "quick" mode scales
// down the slowest sweeps (noted per experiment) without changing any
// qualitative shape.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one regenerated table or figure.
type Result struct {
	// ID is the paper artifact, e.g. "fig8" or "table1".
	ID string
	// Title describes what the paper's artifact shows.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data, already formatted.
	Rows [][]string
	// Notes records calibration caveats and paper-vs-measured remarks.
	Notes []string
}

// Render formats the result as an aligned text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Config tunes experiment scale.
type Config struct {
	// Quick trades sweep size for runtime (default true in tests; the
	// CLI exposes -full).
	Quick bool
	// Seed drives every random draw.
	Seed int64
}

// Runner is one registered experiment.
type Runner struct {
	ID   string
	Desc string
	Run  func(Config) (*Result, error)
}

// All returns the experiment registry in paper order.
func All() []Runner {
	return []Runner{
		{ID: "fig3a", Desc: "filter throughput vs number of rules", Run: Fig3a},
		{ID: "fig3b", Desc: "enclave memory footprint vs number of rules", Run: Fig3b},
		{ID: "fig8", Desc: "throughput (Gb/s) vs packet size, three implementations", Run: Fig8},
		{ID: "fig13", Desc: "throughput (Mpps) vs packet size, three implementations", Run: Fig13},
		{ID: "latency", Desc: "data-plane latency vs packet size at 8 Gb/s", Run: Latency},
		{ID: "fig14", Desc: "throughput vs fraction of hashed packets", Run: Fig14},
		{ID: "table2", Desc: "batch insertion into the multi-bit trie", Run: Table2},
		{ID: "table1", Desc: "exact-solver vs greedy execution time", Run: Table1},
		{ID: "gap", Desc: "greedy optimality gap on small instances", Run: Gap},
		{ID: "fig9", Desc: "greedy runtime for 10K-150K rules", Run: Fig9},
		{ID: "fig11", Desc: "attack sources handled by top-n regional IXPs", Run: Fig11},
		{ID: "attest", Desc: "remote attestation latency breakdown", Run: Attestation},
		{ID: "table3", Desc: "top five IXPs per region", Run: Table3},
	}
}

// ByID returns one experiment.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs lists registered experiment IDs.
func IDs() []string {
	var out []string
	for _, r := range All() {
		out = append(out, r.ID)
	}
	sort.Strings(out)
	return out
}
