package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/innetworkfiltering/vif/internal/dist"
	"github.com/innetworkfiltering/vif/internal/netsim"
)

// solverInstance mirrors §V-C: 10 Gb/s enclaves, EPC-derived memory cap
// (≈3,000 rules each), lognormal traffic summing to totalBps.
func solverInstance(rng *rand.Rand, k int, totalBps float64) dist.Instance {
	b := netsim.LognormalBandwidths(rng, k, totalBps, netsim.DefaultSigma)
	b, _ = netsim.ClampToCapacity(b, 10e9)
	return dist.Instance{
		B: b, G: 10e9, M: 92e6, U: 92e6 / 3000, V: 2e6, Alpha: 1, Lambda: 0.2,
	}
}

// Table1 regenerates Table I: execution time of the exact solver (CPLEX
// stand-in, configured like the paper to stop at a sub-optimal incumbent)
// against the greedy, for k = 5,000/10,000/15,000 rules at 100 Gb/s.
// Quick mode scales k by 10x down; the order-of-magnitude gap is the
// claim, and it is scale-stable.
func Table1(cfg Config) (*Result, error) {
	ks := []int{5000, 10000, 15000}
	scale := 1
	if cfg.Quick {
		scale = 10
	}
	res := &Result{
		ID:     "table1",
		Title:  "execution time: exact solver (stop at first incumbent) vs greedy",
		Header: []string{"rules k", "exact first-incumbent", "exact proven", "greedy", "speedup"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	budget := 30 * time.Second
	if cfg.Quick {
		budget = 5 * time.Second
	}
	for _, k := range ks {
		k := k / scale
		in := solverInstance(rng, k, 100e9)

		exact, exactErr := dist.SolveExact(in, dist.ExactOptions{
			StopAtFirst: true, Deadline: budget,
		})
		firstInc := "n/a"
		if exactErr == nil && exact.Allocation != nil {
			firstInc = exact.FirstIncumbent.Round(10 * time.Microsecond).String()
		}

		proven, provenErr := dist.SolveExact(in, dist.ExactOptions{Deadline: budget})
		provenStr := fmt.Sprintf(">%v (timeout)", budget)
		if provenErr == nil && proven.Allocation != nil && proven.Allocation.Proven {
			provenStr = proven.Elapsed.Round(10 * time.Microsecond).String()
		}

		start := time.Now()
		if _, err := dist.Greedy(in, dist.GreedyOptions{}); err != nil {
			return nil, err
		}
		greedyTime := time.Since(start)

		speedup := "-"
		if provenErr == nil && proven.Allocation != nil && proven.Allocation.Proven && greedyTime > 0 {
			speedup = fmt.Sprintf("%.0fx", float64(proven.Elapsed)/float64(greedyTime))
		} else if greedyTime > 0 {
			speedup = fmt.Sprintf(">%.0fx", float64(budget)/float64(greedyTime))
		}

		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", k),
			firstInc,
			provenStr,
			greedyTime.Round(10 * time.Microsecond).String(),
			speedup,
		})
	}
	res.Notes = append(res.Notes,
		"paper: CPLEX needs 210-1,615 s even for sub-optimal stops; greedy 0.31-0.73 s (3 orders of magnitude)",
		"the branch-and-bound stand-in finds first incumbents faster than CPLEX's LP-based search, so the headline column here is 'exact proven' vs greedy")
	if cfg.Quick {
		res.Notes = append(res.Notes, "quick mode: k scaled down 10x; run with -full for paper-scale k")
	}
	return res, nil
}

// Gap regenerates the §V-C optimality-gap measurement: greedy objective vs
// proven-optimal objective on small instances (10 ≤ k ≤ 15; the paper
// reports a 5.2% mean gap against CPLEX).
func Gap(cfg Config) (*Result, error) {
	res := &Result{
		ID:     "gap",
		Title:  "greedy optimality gap on small instances (10 ≤ k ≤ 15)",
		Header: []string{"instance", "k", "exact z", "greedy z", "gap %"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	instances := 10
	if cfg.Quick {
		instances = 5
	}
	var sum float64
	n := 0
	for i := 0; i < instances; i++ {
		k := 10 + rng.Intn(6)
		b := netsim.LognormalBandwidths(rng, k, 25e9, 1.0)
		b, _ = netsim.ClampToCapacity(b, 10e9)
		// Alpha weights the memory cost so the two objective terms are
		// comparable at this scale (as in the Appendix C formulation where
		// α "balances two maximums"): splitting rules across enclaves then
		// has a real price and the greedy pays a measurable gap.
		in := dist.Instance{
			B: b, G: 10e9, M: 92e6, U: 92e6 / 3000, V: 0, Alpha: 5000, Lambda: 0.3,
		}
		exact, err := dist.SolveExact(in, dist.ExactOptions{Deadline: 20 * time.Second})
		if err != nil || exact.Allocation == nil || !exact.Allocation.Proven {
			continue
		}
		greedy, err := dist.Greedy(in, dist.GreedyOptions{})
		if err != nil {
			return nil, err
		}
		gap := (greedy.Objective - exact.Allocation.Objective) / exact.Allocation.Objective * 100
		sum += gap
		n++
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.3g", exact.Allocation.Objective),
			fmt.Sprintf("%.3g", greedy.Objective),
			fmt.Sprintf("%+.1f", gap),
		})
	}
	if n > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"mean gap %.1f%% over %d instances (paper: 5.2%%); negative gaps occur because the greedy may split rules across enclaves, which whole-rule exact placement cannot",
			sum/float64(n), n))
	}
	return res, nil
}

// Fig9 regenerates Figure 9: greedy runtime for k = 10K..150K rules at
// 500 Gb/s total traffic (paper: ≤40 s everywhere; mean and stdev over
// seeds).
func Fig9(cfg Config) (*Result, error) {
	ks := []int{10000, 50000, 100000, 150000}
	if !cfg.Quick {
		ks = []int{10000, 20000, 30000, 40000, 50000, 60000, 70000, 80000,
			90000, 100000, 110000, 120000, 130000, 140000, 150000}
	}
	seeds := 3
	if cfg.Quick {
		seeds = 2
	}
	res := &Result{
		ID:     "fig9",
		Title:  "greedy runtime vs rule count (500 Gb/s lognormal traffic)",
		Header: []string{"rules k", "mean", "stdev", "enclaves"},
	}
	for _, k := range ks {
		var times []float64
		enclaves := 0
		for s := 0; s < seeds; s++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(s)))
			in := solverInstance(rng, k, 500e9)
			start := time.Now()
			a, err := dist.Greedy(in, dist.GreedyOptions{})
			if err != nil {
				return nil, fmt.Errorf("fig9 k=%d: %w", k, err)
			}
			times = append(times, time.Since(start).Seconds())
			enclaves = a.N
		}
		mean, std := meanStd(times)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.3fs", mean),
			fmt.Sprintf("%.3fs", std),
			fmt.Sprintf("%d", enclaves),
		})
	}
	res.Notes = append(res.Notes,
		"paper anchor: no more than 40 s anywhere in 10K-150K — near-real-time redistribution; this implementation is faster at the same shape (growing with k)")
	return res, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
