package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/netsim"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/pipeline"
	"github.com/innetworkfiltering/vif/internal/rules"
	"github.com/innetworkfiltering/vif/internal/trie"
)

const victimPrefix = "192.0.2.0/24"

// buildRules makes k source-discriminating drop rules over the victim
// prefix, the workload of the paper's data-plane sweeps.
func buildRules(rng *rand.Rand, k int, pAllow float64) (*rules.Set, error) {
	rs := make([]rules.Rule, k)
	dst := rules.MustParsePrefix(victimPrefix)
	for i := range rs {
		rs[i] = rules.Rule{
			Src:    rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst:    dst,
			Proto:  packet.ProtoUDP,
			PAllow: pAllow,
		}
	}
	return rules.NewSet(rs, true)
}

func newFilter(set *rules.Set, mode filter.CopyMode, disablePromotion bool) (*filter.Filter, error) {
	// Stride 4 keeps the multi-bit trie compact (<1 MB at 3,000 rules with
	// the flat node arena), so the 3,000-rule operating point stays
	// cache-resident as on the paper's testbed.
	return newFilterStride(set, mode, disablePromotion, 4)
}

func newFilterStride(set *rules.Set, mode filter.CopyMode, disablePromotion bool, stride int) (*filter.Filter, error) {
	e, err := enclave.New(enclave.CodeIdentity{
		Name: "vif-filter", Version: "exp", BinarySize: 1 << 20,
	}, enclave.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	return filter.New(e, set, filter.Config{
		Mode: mode, Stride: stride, DisablePromotion: disablePromotion,
	})
}

// matchingDescriptors generates descriptors that hit installed rules
// (attack traffic), the hot path of the sweeps.
func matchingDescriptors(rng *rand.Rand, set *rules.Set, n, size int) []packet.Descriptor {
	victim := packet.MustParseIP("192.0.2.77")
	out := make([]packet.Descriptor, n)
	for i := range out {
		r := set.Rules[rng.Intn(set.Len())]
		out[i] = packet.Descriptor{
			Tuple: packet.FiveTuple{
				SrcIP:   r.Src.Addr | (rng.Uint32() &^ r.Src.Mask()),
				DstIP:   victim,
				SrcPort: uint16(rng.Intn(60000) + 1),
				DstPort: 53,
				Proto:   packet.ProtoUDP,
			},
			Size: uint16(size),
			Ref:  packet.NoRef,
		}
	}
	return out
}

// Fig3a regenerates Figure 3a: single-filter throughput (Mpps, 64 B
// packets) as the rule count sweeps from 100 to 10,000 (to 20,000 in full
// mode). The paper's curve is flat near 13-15 Mpps until ≈3,000 rules and
// collapses beyond; the collapse is driven by the lookup table outgrowing
// the cache budget (MEE misses) and eventually the EPC.
func Fig3a(cfg Config) (*Result, error) {
	counts := []int{100, 500, 1000, 2000, 3000, 4000, 6000, 8000, 10000}
	if !cfg.Quick {
		counts = append(counts, 15000, 20000)
	}
	res := &Result{
		ID:     "fig3a",
		Title:  "filter throughput vs number of rules (64 B packets)",
		Header: []string{"rules", "ns/pkt", "Mpps", "Gb/s"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pkts := 20000
	if cfg.Quick {
		pkts = 5000
	}
	var first, last float64
	for _, k := range counts {
		set, err := buildRules(rng, k, 0)
		if err != nil {
			return nil, err
		}
		// Stride 8 — the classic multi-bit configuration of Figure 6 — so
		// the lookup table's footprint sweeps past the LLC budget within
		// the paper's rule range. (The flat node arena made the stride-4
		// table so compact that its cache cliff now sits beyond 25,000
		// rules; the wider fan-out reproduces the testbed's footprint.)
		f, err := newFilterStride(set, filter.CopyModeNearZero, true, 8)
		if err != nil {
			return nil, err
		}
		descs := matchingDescriptors(rng, set, 1024, 64)
		perPkt := pipeline.RunClosedLoop(f, descs, pkts)
		pps, bps := pipeline.ModeledThroughput(perPkt, 64, pipeline.TenGigE)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.0f", perPkt),
			fmt.Sprintf("%.2f", pps/1e6),
			fmt.Sprintf("%.2f", bps/1e9),
		})
		if first == 0 {
			first = pps
		}
		last = pps
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("degradation %0.1fx from first to last point (paper: ≥5x over the same sweep)", first/last),
		"paper anchor: throughput flat until ≈3,000 rules, then rapid degradation")
	return res, nil
}

// Fig3b regenerates Figure 3b: the enclave memory footprint of the filter
// (lookup table + logs) growing linearly with rules toward the 92 MB EPC
// limit.
func Fig3b(cfg Config) (*Result, error) {
	counts := []int{100, 1000, 2000, 4000, 6000, 8000, 10000}
	if !cfg.Quick {
		counts = append(counts, 20000, 40000, 60000)
	}
	res := &Result{
		ID:     "fig3b",
		Title:  "enclave memory footprint vs number of rules",
		Header: []string{"rules", "footprint MB", "EPC limit MB", "exceeded"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	model := enclave.DefaultCostModel()
	for _, k := range counts {
		set, err := buildRules(rng, k, 0)
		if err != nil {
			return nil, err
		}
		f, err := newFilter(set, filter.CopyModeNearZero, true)
		if err != nil {
			return nil, err
		}
		used := f.Enclave().MemoryUsed()
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f", float64(used)/1e6),
			fmt.Sprintf("%.0f", float64(model.EPCBytes)/1e6),
			fmt.Sprintf("%v", f.Enclave().EPCExceeded()),
		})
	}
	res.Notes = append(res.Notes,
		"growth is linear in rules as in the paper; the per-rule footprint of this trie (~2.3 KB) is smaller than the paper's (~15 KB), so the EPC line is crossed later — shape, not scale, is the claim")
	return res, nil
}

var copyModes = []filter.CopyMode{
	filter.CopyModeNative, filter.CopyModeFull, filter.CopyModeNearZero,
}

// throughputBySize runs the Figure 8/13 sweep and returns pps per
// (size, mode).
func throughputBySize(cfg Config) (map[int]map[filter.CopyMode]float64, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	set, err := buildRules(rng, 3000, 0)
	if err != nil {
		return nil, err
	}
	pkts := 20000
	if cfg.Quick {
		pkts = 5000
	}
	out := make(map[int]map[filter.CopyMode]float64)
	for _, size := range netsim.PacketSizes {
		out[size] = make(map[filter.CopyMode]float64)
		for _, mode := range copyModes {
			f, err := newFilter(set, mode, true)
			if err != nil {
				return nil, err
			}
			descs := matchingDescriptors(rng, set, 1024, size)
			perPkt := pipeline.RunClosedLoop(f, descs, pkts)
			pps, _ := pipeline.ModeledThroughput(perPkt, size, pipeline.TenGigE)
			out[size][mode] = pps
		}
	}
	return out, nil
}

// Fig8 regenerates Figure 8: goodput in Gb/s vs packet size for the
// native, SGX-full-copy, and SGX-near-zero-copy filters with 3,000 rules.
func Fig8(cfg Config) (*Result, error) {
	data, err := throughputBySize(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig8",
		Title:  "throughput (Gb/s) vs packet size, 3,000 rules",
		Header: []string{"size B", "native", "sgx full copy", "sgx near zero copy", "line rate"},
	}
	for _, size := range netsim.PacketSizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, mode := range copyModes {
			row = append(row, fmt.Sprintf("%.2f", pipeline.ThroughputBps(data[size][mode], size)/1e9))
		}
		row = append(row, fmt.Sprintf("%.2f",
			pipeline.ThroughputBps(pipeline.LineRatePps(size, pipeline.TenGigE), size)/1e9))
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper anchors: all three at line rate for ≥256 B; near-zero-copy ≈8 Gb/s at 64 B; full copy visibly below")
	return res, nil
}

// Fig13 regenerates Figure 13: the same sweep in Mpps, exposing the
// full-copy cap near 6 Mpps.
func Fig13(cfg Config) (*Result, error) {
	data, err := throughputBySize(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig13",
		Title:  "throughput (Mpps) vs packet size, 3,000 rules",
		Header: []string{"size B", "native", "sgx full copy", "sgx near zero copy", "line rate"},
	}
	for _, size := range netsim.PacketSizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, mode := range copyModes {
			row = append(row, fmt.Sprintf("%.2f", data[size][mode]/1e6))
		}
		row = append(row, fmt.Sprintf("%.2f", pipeline.LineRatePps(size, pipeline.TenGigE)/1e6))
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper anchor: full-copy packet rate capped ≈6 Mpps regardless of size headroom; near zero copy shows no such cap")
	return res, nil
}

// Latency regenerates the §V-B latency table: mean latency of the
// near-zero-copy filter at 8 Gb/s offered load across packet sizes.
func Latency(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	set, err := buildRules(rng, 3000, 0)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "latency",
		Title:  "mean latency at 8 Gb/s offered load (near zero copy, 3,000 rules)",
		Header: []string{"size B", "modeled µs", "paper µs"},
	}
	paper := map[int]string{128: "34", 256: "38", 512: "52", 1024: "80", 1500: "107"}
	m := pipeline.DefaultLatencyModel()
	pkts := 10000
	if cfg.Quick {
		pkts = 3000
	}
	for _, size := range []int{128, 256, 512, 1024, 1500} {
		f, err := newFilter(set, filter.CopyModeNearZero, true)
		if err != nil {
			return nil, err
		}
		descs := matchingDescriptors(rng, set, 1024, size)
		perPkt := pipeline.RunClosedLoop(f, descs, pkts)
		lat := m.Latency(8e9, size, perPkt)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%.1f", float64(lat.Nanoseconds())/1000),
			paper[size],
		})
	}
	res.Notes = append(res.Notes,
		"latency grows with frame size at fixed bit rate because filling a 32-packet burst takes longer (batch-fill dominates)")
	return res, nil
}

// Fig14 regenerates Figure 14: throughput of the 10 Gb/s filter when a
// varying fraction of packets needs the SHA-256 hash-based probabilistic
// decision, across packet sizes. Only 64 B packets degrade visibly
// (≤25% in the paper).
func Fig14(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ratios := []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1.0}
	res := &Result{
		ID:     "fig14",
		Title:  "throughput (Gb/s) vs fraction of hashed packets",
		Header: append([]string{"hash ratio"}, sizesHeader()...),
	}
	pkts := 20000
	if cfg.Quick {
		pkts = 5000
	}
	var base64B, full64B float64
	for _, ratio := range ratios {
		row := []string{fmt.Sprintf("%.2f", ratio)}
		for _, size := range netsim.PacketSizes {
			// Mix: `ratio` of traffic hits a probabilistic rule (hash
			// path, promotion disabled per the ablation), the rest a
			// deterministic rule. One combined 3,000-rule set, half
			// probabilistic, half deterministic.
			dst := rules.MustParsePrefix(victimPrefix)
			both := make([]rules.Rule, 3000)
			for i := range both {
				pAllow := 0.0
				if i < 1500 {
					pAllow = 0.5
				}
				both[i] = rules.Rule{
					Src:    rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
					Dst:    dst,
					Proto:  packet.ProtoUDP,
					PAllow: pAllow,
				}
			}
			set, err := rules.NewSet(both, true)
			if err != nil {
				return nil, err
			}
			probSub := set.Subset(idsOf(set, 0, 1500))
			detSub := set.Subset(idsOf(set, 1500, 3000))
			f, err := newFilter(set, filter.CopyModeNearZero, true)
			if err != nil {
				return nil, err
			}
			probDescs := matchingDescriptors(rng, probSub, 512, size)
			detDescs := matchingDescriptors(rng, detSub, 512, size)
			mixed := make([]packet.Descriptor, 1024)
			for i := range mixed {
				if rng.Float64() < ratio {
					mixed[i] = probDescs[rng.Intn(len(probDescs))]
				} else {
					mixed[i] = detDescs[rng.Intn(len(detDescs))]
				}
			}
			perPkt := pipeline.RunClosedLoop(f, mixed, pkts)
			_, bps := pipeline.ModeledThroughput(perPkt, size, pipeline.TenGigE)
			row = append(row, fmt.Sprintf("%.2f", bps/1e9))
			if size == 64 && ratio == ratios[0] {
				base64B = bps
			}
			if size == 64 && ratio == 1.0 {
				full64B = bps
			}
		}
		res.Rows = append(res.Rows, row)
	}
	if base64B > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"64 B degradation at 100%% hashing: %.0f%% (paper: up to 25%%); larger sizes unaffected",
			(1-full64B/base64B)*100))
	}
	return res, nil
}

// idsOf returns the rule IDs of set.Rules[lo:hi].
func idsOf(set *rules.Set, lo, hi int) map[uint32]bool {
	out := make(map[uint32]bool, hi-lo)
	for _, r := range set.Rules[lo:hi] {
		out[r.ID] = true
	}
	return out
}

func sizesHeader() []string {
	var out []string
	for _, s := range netsim.PacketSizes {
		out = append(out, fmt.Sprintf("%dB", s))
	}
	return out
}

// Table2 regenerates Table II: wall-clock time to batch-insert newly
// promoted exact-match rules into a multi-bit trie already holding 3,000
// rules, for batch sizes 1/10/100/1000.
func Table2(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{
		ID:     "table2",
		Title:  "batch insertion into the multi-bit trie lookup table",
		Header: []string{"batch size", "measured", "paper ms"},
	}
	paper := map[int]string{1: "50", 10: "52", 100: "53", 1000: "75"}
	reps := 200
	if cfg.Quick {
		reps = 50
	}
	for _, batch := range []int{1, 10, 100, 1000} {
		var total time.Duration
		for rep := 0; rep < reps; rep++ {
			base, err := buildRules(rng, 3000, 0)
			if err != nil {
				return nil, err
			}
			tbl := trie.NewDefault()
			tbl.InsertSet(base)
			exact := make([]rules.Rule, batch)
			for i := range exact {
				exact[i] = rules.Rule{
					ID:      uint32(100000 + i),
					Src:     rules.Prefix{Addr: rng.Uint32(), Len: 32},
					Dst:     rules.Prefix{Addr: packet.MustParseIP("192.0.2.8"), Len: 32},
					SrcPort: rules.Port(uint16(rng.Intn(60000) + 1)),
					DstPort: rules.Port(53),
					Proto:   packet.ProtoUDP,
				}
			}
			start := time.Now()
			tbl.InsertBatch(exact, 3000)
			total += time.Since(start)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", batch),
			fmt.Sprintf("%v", (total / time.Duration(reps)).Round(100*time.Nanosecond)),
			paper[batch],
		})
	}
	res.Notes = append(res.Notes,
		"paper's ≈50 ms floor is their enclave-transition + table-locking overhead; the in-memory trie shows the same shape (flat then growing with batch) at µs scale — both are negligible against the 5 s update period")
	return res, nil
}
