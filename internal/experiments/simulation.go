package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/innetworkfiltering/vif/internal/attack"
	"github.com/innetworkfiltering/vif/internal/attest"
	"github.com/innetworkfiltering/vif/internal/bgp"
	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/ixp"
)

// Fig11 regenerates Figure 11: the ratio of attack sources (a: vulnerable
// DNS resolvers, b: Mirai bots) whose route to a random stub victim
// crosses at least one of the top-1..5 IXPs per region. The paper's
// box-and-whisker panels become rows of (P5, Q1, median, Q3, P95).
func Fig11(cfg Config) (*Result, error) {
	genCfg := bgp.DefaultGenConfig()
	genCfg.Seed = cfg.Seed
	victims := 200
	resolverCount := attack.DefaultResolverCount
	miraiCount := attack.DefaultMiraiCount
	if cfg.Quick {
		genCfg.Tier2PerRegion = 20
		genCfg.StubsPerRegion = 200
		victims = 60
		resolverCount /= 4
		miraiCount /= 4
	}
	inet, err := bgp.Generate(genCfg)
	if err != nil {
		return nil, err
	}
	ixps, err := ixp.Build(inet, ixp.BuildConfig{Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	resolvers, err := attack.DNSResolvers(inet, resolverCount, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	mirai, err := attack.MiraiBots(inet, miraiCount, cfg.Seed+3)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	stubs := inet.AllStubs()
	victimASes := make([]bgp.ASN, 0, victims)
	for _, i := range rng.Perm(len(stubs))[:victims] {
		victimASes = append(victimASes, stubs[i])
	}

	res := &Result{
		ID:     "fig11",
		Title:  "ratio of attack sources handled by VIF IXPs (top-n per region)",
		Header: []string{"dataset", "IXPs", "P5", "Q1", "median", "Q3", "P95"},
	}
	for _, ds := range []struct {
		name    string
		sources *ixp.SourceSet
	}{
		{"dns-resolvers", resolvers},
		{"mirai-bots", mirai},
	} {
		for n := 1; n <= 5; n++ {
			selected := ixp.SelectTopN(ixps, n)
			cov, err := ixp.Coverage(inet.Topo, victimASes, ds.sources, selected)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				ds.name,
				fmt.Sprintf("top-%d (%d total)", n, len(selected)),
				fmt.Sprintf("%.2f", cov.P5),
				fmt.Sprintf("%.2f", cov.Q1),
				fmt.Sprintf("%.2f", cov.Median),
				fmt.Sprintf("%.2f", cov.Q3),
				fmt.Sprintf("%.2f", cov.P95),
			})
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("topology: %d ASes, %d victims, %d resolvers, %d bots (paper: CAIDA topology, 1,000 victims, 3M resolvers, 250K bots — ratios are scale-invariant)",
			inet.Topo.Len(), victims, resolvers.Total(), mirai.Total()),
		"paper anchors: ≈60% median at top-1, ≥75% median at top-5, 80-90% upper quartile")
	return res, nil
}

// Attestation regenerates Appendix G: the remote-attestation latency
// decomposition — measured local quote generation/verification on this
// host plus the modelled WAN legs of the paper's deployment (verifier and
// filter in South Asia, attestation service in Ashburn, VA).
func Attestation(cfg Config) (*Result, error) {
	svc, err := attest.NewService()
	if err != nil {
		return nil, err
	}
	platform, err := svc.CertifyPlatform("bench-platform")
	if err != nil {
		return nil, err
	}
	e, err := enclave.New(enclave.CodeIdentity{
		Name: "vif-filter", Version: "exp", BinarySize: 1 << 20,
	}, enclave.DefaultCostModel())
	if err != nil {
		return nil, err
	}

	reps := 50
	if cfg.Quick {
		reps = 10
	}
	var nonce [32]byte
	var quoteTotal, verifyTotal time.Duration
	for i := 0; i < reps; i++ {
		nonce[0] = byte(i)
		start := time.Now()
		q, err := platform.GenerateQuote(e, nonce, [attest.ReportDataSize]byte{})
		if err != nil {
			return nil, err
		}
		quoteTotal += time.Since(start)
		start = time.Now()
		if err := attest.VerifyQuote(svc.RootPublicKey(), svc, q, nonce, e.Measurement()); err != nil {
			return nil, err
		}
		verifyTotal += time.Since(start)
	}

	model := attest.DefaultLatencyModel()
	breakdown := model.EndToEnd(1 << 20)
	res := &Result{
		ID:     "attest",
		Title:  "remote attestation latency (1 MB enclave binary)",
		Header: []string{"component", "value", "paper"},
		Rows: [][]string{
			{"local quote generation (measured ECDSA)", (quoteTotal / time.Duration(reps)).Round(time.Microsecond).String(), "-"},
			{"local quote verification (measured ECDSA)", (verifyTotal / time.Duration(reps)).Round(time.Microsecond).String(), "-"},
			{"platform time (modeled, incl. 1 MB measurement)", breakdown.PlatformTime.Round(100 * time.Microsecond).String(), "28.8 ms"},
			{"WAN legs (modeled)", breakdown.NetworkTime.String(), "-"},
			{"attestation service processing (modeled)", breakdown.ServiceTime.String(), "-"},
			{"end to end", breakdown.Total.Round(10 * time.Millisecond).String(), "3.04 s"},
		},
		Notes: []string{
			"the paper's 3.04 s end-to-end is dominated by the WAN path to the Intel Attestation Service; local cryptography is milliseconds on any platform",
		},
	}
	return res, nil
}

// Table3 regenerates Table III: the top five IXPs per region, with the
// paper's real member counts and this simulation's scaled membership.
func Table3(cfg Config) (*Result, error) {
	genCfg := bgp.DefaultGenConfig()
	genCfg.Seed = cfg.Seed
	if cfg.Quick {
		genCfg.Tier2PerRegion = 20
		genCfg.StubsPerRegion = 200
	}
	inet, err := bgp.Generate(genCfg)
	if err != nil {
		return nil, err
	}
	ixps, err := ixp.Build(inet, ixp.BuildConfig{Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "table3",
		Title:  "top five IXPs per region (paper member counts; simulated membership)",
		Header: []string{"region", "rank", "IXP", "paper members", "simulated members"},
	}
	for _, x := range ixps {
		res.Rows = append(res.Rows, []string{
			ixp.RegionNames[x.Region],
			fmt.Sprintf("%d", x.Rank),
			x.Name,
			fmt.Sprintf("%d", ixp.TableIII[x.Region][x.Rank-1].Members),
			fmt.Sprintf("%d", len(x.Members)),
		})
	}
	return res, nil
}
