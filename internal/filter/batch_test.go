package filter

import (
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/packet"
)

// batchDescs builds a stream mixing deterministic-drop, probabilistic, and
// default-allow traffic, with every flow emitting a train of packets so
// bursts contain duplicates.
func batchDescs(rng *rand.Rand, flows, train int) []packet.Descriptor {
	out := make([]packet.Descriptor, 0, flows*train)
	for i := 0; i < flows; i++ {
		var tup packet.FiveTuple
		switch i % 3 {
		case 0: // hits the deterministic drop rule
			tup = udpTo53("10.9.9.9")
			tup.SrcIP += uint32(i)
		case 1: // hits the probabilistic HTTP rule
			tup = httpFlow(rng.Uint32(), uint16(rng.Intn(60000)+1))
		default: // unmatched → default action
			tup = packet.FiveTuple{
				SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("198.51.100.9"),
				DstPort: 22, Proto: packet.ProtoTCP,
			}
		}
		for j := 0; j < train; j++ {
			out = append(out, desc(tup, 64+j))
		}
	}
	return out
}

// TestProcessBatchMatchesDecision asserts the batch path returns exactly
// the pure decision function's verdict for every packet, across burst
// sizes, with the counters and logs adding up.
func TestProcessBatchMatchesDecision(t *testing.T) {
	for _, burst := range []int{1, 3, 7, 64, 256} {
		f := newFilter(t, Config{DisablePromotion: true})
		rng := rand.New(rand.NewSource(int64(burst)))
		descs := batchDescs(rng, 120, 4)

		want := make([]Verdict, len(descs))
		for i, d := range descs {
			want[i] = f.Decision(d.Tuple)
		}

		var verdicts []Verdict
		var allowed uint64
		for start := 0; start < len(descs); start += burst {
			end := start + burst
			if end > len(descs) {
				end = len(descs)
			}
			verdicts = f.ProcessBatch(descs[start:end], verdicts)
			for i, v := range verdicts {
				if v != want[start+i] {
					t.Fatalf("burst %d: packet %d got %v, Decision says %v",
						burst, start+i, v, want[start+i])
				}
				if v == VerdictAllow {
					allowed++
				}
			}
		}

		st := f.Stats()
		if st.Processed != uint64(len(descs)) {
			t.Fatalf("burst %d: processed %d, want %d", burst, st.Processed, len(descs))
		}
		if st.Allowed != allowed || st.Allowed+st.Dropped != st.Processed {
			t.Fatalf("burst %d: allowed %d dropped %d processed %d (want allowed %d)",
				burst, st.Allowed, st.Dropped, st.Processed, allowed)
		}
		if st.ExactHits+st.RuleHits+st.DefaultHits != st.Processed {
			t.Fatalf("burst %d: classification counts do not partition processed: %+v", burst, st)
		}
		// Every packet is logged incoming; every allowed packet outgoing.
		if got := f.inLog.Total(); got != uint64(len(descs)) {
			t.Fatalf("burst %d: incoming log total %d, want %d", burst, got, len(descs))
		}
		if got := f.outLog.Total(); got != allowed {
			t.Fatalf("burst %d: outgoing log total %d, want %d", burst, got, allowed)
		}
	}
}

// TestProcessBatchDeduplicatesHashing asserts a packet train costs one
// SHA-256 evaluation per burst, not one per packet — the intra-burst
// dedup that makes batch work near-constant per packet.
func TestProcessBatchDeduplicatesHashing(t *testing.T) {
	f := newFilter(t, Config{DisablePromotion: true})
	flow := httpFlow(packet.MustParseIP("203.0.113.9"), 4321)
	batch := make([]packet.Descriptor, 64)
	for i := range batch {
		batch[i] = desc(flow, 64)
	}
	f.ProcessBatch(batch, nil)
	st := f.Stats()
	if st.Processed != 64 || st.RuleHits != 64 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Hashed != 1 {
		t.Fatalf("Hashed = %d, want 1 (one evaluation per distinct flow per burst)", st.Hashed)
	}
	// The verdict still fans out to every duplicate, and the scalar path
	// agrees with it.
	if got := f.Process(desc(flow, 64)); got != f.Decision(flow) {
		t.Fatalf("scalar after batch: %v, Decision %v", got, f.Decision(flow))
	}
}

// TestProcessBatchChargesLikeScalar: over all-distinct flows (no dedup
// savings possible) batching must charge the cost meter what per-packet
// processing charges, modulo fixed-point rounding — amortization changes
// who pays when, never how much work is modeled.
func TestProcessBatchChargesLikeScalar(t *testing.T) {
	mkDescs := func() []packet.Descriptor {
		rng := rand.New(rand.NewSource(11))
		out := make([]packet.Descriptor, 512)
		for i := range out {
			out[i] = desc(packet.FiveTuple{
				SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.30"),
				SrcPort: uint16(i + 1), DstPort: 443, Proto: packet.ProtoTCP,
			}, 128)
		}
		return out
	}

	serial := newFilter(t, Config{DisablePromotion: true})
	serial.Enclave().ResetMeter()
	for _, d := range mkDescs() {
		serial.Process(d)
	}
	serialNs := serial.Enclave().VirtualNs()

	batched := newFilter(t, Config{DisablePromotion: true})
	batched.Enclave().ResetMeter()
	descs := mkDescs()
	var verdicts []Verdict
	for start := 0; start < len(descs); start += 64 {
		verdicts = batched.ProcessBatch(descs[start:start+64], verdicts)
	}
	batchNs := batched.Enclave().VirtualNs()

	// 1/16 ns fixed-point rounding per charge bounds the drift.
	diff := serialNs - batchNs
	if diff < 0 {
		diff = -diff
	}
	if diff > float64(len(descs))*0.125 {
		t.Fatalf("modeled cost diverged: serial %.1f ns vs batched %.1f ns", serialNs, batchNs)
	}
}

// TestProcessBatchReusesVerdictSlice pins the pooling contract: passing
// the previous return value back avoids reallocation.
func TestProcessBatchReusesVerdictSlice(t *testing.T) {
	f := newFilter(t, Config{DisablePromotion: true})
	rng := rand.New(rand.NewSource(5))
	descs := batchDescs(rng, 16, 4)
	v1 := f.ProcessBatch(descs, nil)
	v2 := f.ProcessBatch(descs, v1)
	if &v1[0] != &v2[0] {
		t.Fatal("verdict slice reallocated despite sufficient capacity")
	}
	if got := f.ProcessBatch(nil, v2); len(got) != 0 {
		t.Fatalf("empty batch returned %d verdicts", len(got))
	}
}

// TestProcessBatchPromotionParity: the hybrid design must behave the same
// whether flows were observed via the batch path or the scalar path —
// promotion still converts pending flows and preserves decisions.
func TestProcessBatchPromotionParity(t *testing.T) {
	f := newFilter(t, Config{})
	rng := rand.New(rand.NewSource(6))
	flows := make([]packet.FiveTuple, 200)
	batch := make([]packet.Descriptor, 0, len(flows)*2)
	for i := range flows {
		flows[i] = httpFlow(rng.Uint32(), uint16(rng.Intn(60000)+1))
		batch = append(batch, desc(flows[i], 64), desc(flows[i], 64))
	}
	before := f.ProcessBatch(batch, nil)
	if f.PendingFlows() == 0 {
		t.Fatal("no flows queued for promotion from batch path")
	}
	promoted := f.Promote()
	if promoted == 0 || f.ExactEntries() != promoted {
		t.Fatalf("promoted %d, exact entries %d", promoted, f.ExactEntries())
	}
	after := f.ProcessBatch(batch, nil)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("packet %d verdict changed after promotion: %v -> %v", i, before[i], after[i])
		}
	}
	st := f.Stats()
	if st.ExactHits == 0 {
		t.Fatal("promoted flows not served from the exact table")
	}
}
