package filter

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"math"
	"sync/atomic"
	"time"

	"github.com/innetworkfiltering/vif/internal/classify"
	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
	"github.com/innetworkfiltering/vif/internal/sketch"
	"github.com/innetworkfiltering/vif/internal/telemetry"
	"github.com/innetworkfiltering/vif/internal/trie"
)

// Verdict is the filter's per-packet decision.
type Verdict uint8

// Verdicts.
const (
	VerdictAllow Verdict = iota + 1
	VerdictDrop
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictAllow:
		return "allow"
	case VerdictDrop:
		return "drop"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// CopyMode selects the data-path copy discipline whose costs the enclave
// meter charges (the three implementations of Figure 8).
type CopyMode int

// Copy modes.
const (
	// CopyModeNative is the no-SGX baseline: the filter runs in host
	// memory, packets are processed zero-copy as in plain DPDK.
	CopyModeNative CopyMode = iota + 1
	// CopyModeFull copies every packet byte into the enclave before
	// processing (the naive SGX middlebox design).
	CopyModeFull
	// CopyModeNearZero copies only ⟨five-tuple, size, ref⟩ into the
	// enclave (§V-A's near zero-copy optimization).
	CopyModeNearZero
)

// String renders the copy mode.
func (m CopyMode) String() string {
	switch m {
	case CopyModeNative:
		return "native"
	case CopyModeFull:
		return "sgx-full-copy"
	case CopyModeNearZero:
		return "sgx-near-zero-copy"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// descriptorBytes is what the near-zero-copy path moves across the enclave
// boundary per packet: five-tuple (13) + size (2) + buffer reference (8).
const descriptorBytes = packet.KeySize + 2 + 8

// densifyFactor bounds the sparse priority domain a ReconfigureDelta
// lineage may grow: once MaxPrio+1 would exceed this multiple of the live
// rule count, the delta rebuilds the table dense instead of diffing.
const densifyFactor = 2

// Errors.
var (
	ErrNoRules = errors.New("filter: no rule set installed")
)

// Config configures a Filter.
type Config struct {
	// Mode is the data-path copy discipline. Default CopyModeNearZero.
	Mode CopyMode
	// Stride is the lookup trie stride. Default trie.DefaultStride.
	Stride int
	// MaxPending caps the queue of flows awaiting exact-match promotion;
	// beyond it, new flows are still decided by hashing but not queued
	// (bounding enclave memory). Default 65536.
	MaxPending int
	// DisablePromotion turns off the hybrid design: flows are always
	// decided by hashing. Used by the Fig 14 ablation.
	DisablePromotion bool
}

func (c *Config) fillDefaults() {
	if c.Mode == 0 {
		c.Mode = CopyModeNearZero
	}
	if c.Stride == 0 {
		c.Stride = trie.DefaultStride
	}
	if c.MaxPending == 0 {
		c.MaxPending = 65536
	}
}

// Stats counts data-plane events since the last reset.
type Stats struct {
	Processed uint64
	Allowed   uint64
	Dropped   uint64
	// ExactHits counts verdicts served by the learned exact-match table.
	ExactHits uint64
	// RuleHits counts verdicts served by installed rules (trie).
	RuleHits uint64
	// DefaultHits counts packets matching no rule.
	DefaultHits uint64
	// Hashed counts SHA-256 evaluations for probabilistic rules. The batch
	// path evaluates once per distinct flow per burst, so under packet
	// trains this counts actual hash work, not hash-needing packets.
	Hashed uint64
	// Promoted counts flows promoted to exact-match entries.
	Promoted uint64
	// Misrouted counts packets that matched no local rule but do match a
	// rule assigned to a different enclave — evidence of load-balancer
	// misbehavior (§IV-B), reported to the victim.
	Misrouted uint64
	// Malformed counts undecodable frames (dropped before rule lookup).
	Malformed uint64
}

// statsCounters is the filter's internal counter block. The data-plane
// thread adds to it once per batch (amortized); control-plane readers
// (Stats, HashRatio, cluster.TotalStats) load it atomically at any time —
// this is what makes live monitoring of a running engine race-free.
type statsCounters struct {
	processed   atomic.Uint64
	allowed     atomic.Uint64
	dropped     atomic.Uint64
	exactHits   atomic.Uint64
	ruleHits    atomic.Uint64
	defaultHits atomic.Uint64
	hashed      atomic.Uint64
	promoted    atomic.Uint64
	misrouted   atomic.Uint64
	malformed   atomic.Uint64
}

// ruleView bundles everything a lookup consults about the installed rules:
// the shard, the peer-rule view, the immutable trie snapshot (priority
// allocator and delta lineage), and the compiled multi-attribute
// classifier that serves the packet path. It is swapped wholesale with
// one atomic pointer store, so a reader never sees a shard paired with
// the wrong lookup table.
type ruleView struct {
	set     *rules.Set
	foreign *rules.Set
	snap    *trie.Snapshot
	// prog is the compiled classifier Classify/Decision/Explain/Promote
	// resolve packets against: one interval-table probe per attribute plus
	// a bitset intersection, flat in the rule count where the trie's
	// per-node candidate scans were linear. Immutable, like snap.
	prog *classify.Program
	// prios maps set.Rules[i] to its priority in snap and prog. nil means
	// identity (a full rebuild assigns dense 0..Len-1 priorities); after
	// ReconfigureDelta priorities are sparse — survivors keep theirs and
	// adds extend past snap.MaxPrio — so the mapping is explicit.
	prios []int32
}

// prio returns the trie priority of set.Rules[i].
func (v *ruleView) prio(i int) int32 {
	if v.prios == nil {
		return int32(i)
	}
	return v.prios[i]
}

// Filter is one enclaved filter instance. Data-path methods (Process,
// ProcessBatch, Decision, Promote) must be called from the single filter
// thread, mirroring the paper's pipeline design. Monitoring methods
// (Stats, ExactEntries, PendingFlows, HashRatio) are safe from any
// goroutine while the data plane runs; log snapshots are taken via the
// control-plane methods which copy under the data-plane's quiescence
// points.
type Filter struct {
	encl *enclave.Enclave
	cfg  Config

	// secret caches the enclave's filtering secret (in-enclave state; the
	// filter is in-enclave code).
	secret [32]byte

	view atomic.Pointer[ruleView]

	exact      *exactTable
	exactCount atomic.Int64
	pendingQ   []packet.FiveTuple
	pendingSet map[packet.FiveTuple]bool
	pendingLen atomic.Int64

	inLog  *sketch.Sketch // per-source-IP, incoming packets
	outLog *sketch.Sketch // per-five-tuple, forwarded packets

	// ruleBytes accumulates per-rule traffic volume (the B_i vector each
	// slave uploads to the master during rule redistribution, Figure 5),
	// indexed by rule priority — the rule's position in the installed set —
	// so the hot path writes a flat array slot instead of a map bucket.
	// Pure measurement state: it never influences a verdict, so the
	// statelessness property is preserved. Per §IV footnote 6, counts are
	// bytes, not rates — the enclave's clock is untrusted, so the control
	// plane timestamps collection externally.
	ruleBytes []uint64

	// clsBuildNs records the wall time of the most recent classifier
	// construction — a full Compile (New/Reconfigure/densify) or an
	// incremental Delta patch — for the operational stats lines. Atomic so
	// monitoring can read it while the control plane reconfigures.
	clsBuildNs atomic.Int64

	stats statsCounters

	// sha is the reused SHA-256 state for hash-based filtering: one state,
	// Reset per flow, digest into a persistent buffer — no per-packet
	// allocation. Owned by the filter thread.
	sha       hash.Hash
	shaDigest []byte

	// scratch is the batch working set (flow dedup table, log-key staging).
	scratch batchScratch

	// burst is the staging area between the decomposed burst stages
	// (ClassifyBurst → ApplyBurst → ChargeBurst, see burst.go). Owned by
	// the filter thread.
	burst burstState

	// rec, when set, samples 1-in-N ProcessBatch calls and splits the
	// sampled burst's time into the verdict and charge stage histograms.
	// Owned by whichever single thread drives the data path (the filter-
	// thread discipline all data-path methods already require), so the
	// recorder's sampling counter needs no atomics.
	rec *telemetry.StageRecorder

	// procBuf/procVerdicts back the one-packet Process wrapper.
	procBuf      [1]packet.Descriptor
	procVerdicts []Verdict
}

// New creates a filter inside the given enclave with the given rule shard.
func New(encl *enclave.Enclave, set *rules.Set, cfg Config) (*Filter, error) {
	if set == nil || set.Len() == 0 {
		return nil, ErrNoRules
	}
	cfg.fillDefaults()
	tbl, err := trie.New(cfg.Stride)
	if err != nil {
		return nil, err
	}
	tbl.InsertSet(set)
	f := &Filter{
		encl:       encl,
		cfg:        cfg,
		secret:     encl.Secret(),
		exact:      newExactTable(),
		pendingSet: make(map[packet.FiveTuple]bool),
		ruleBytes:  make([]uint64, set.Len()),
		inLog:      sketch.NewDefault(),
		outLog:     sketch.NewDefault(),
		sha:        sha256.New(),
		shaDigest:  make([]byte, 0, sha256.Size),
	}
	clsStart := time.Now()
	prog := classify.Compile(set.Rules, nil, int32(set.Len()-1))
	f.clsBuildNs.Store(int64(time.Since(clsStart)))
	f.view.Store(&ruleView{
		set:  set,
		snap: tbl.Snapshot(),
		prog: prog,
	})
	f.syncMemory()
	return f, nil
}

// Enclave returns the hosting enclave (for attestation and metering).
func (f *Filter) Enclave() *enclave.Enclave { return f.encl }

// SetStageRecorder installs (or, with nil, removes) the stage-timing
// recorder ProcessBatch samples into. Like the data-path methods it must
// not race them: the engine sets it at attach, before workers can see the
// filter, and clears it after the detach fence.
func (f *Filter) SetStageRecorder(r *telemetry.StageRecorder) { f.rec = r }

// Rules returns the installed shard.
func (f *Filter) Rules() *rules.Set { return f.view.Load().set }

// ForeignRules returns the installed peer-rule view (nil when misroute
// detection is off). With Rules it captures everything Reconfigure needs
// to restore this view — the engine's delta-rollback path uses the pair.
func (f *Filter) ForeignRules() *rules.Set { return f.view.Load().foreign }

// Stats returns a consistent-enough snapshot of the counters: each field
// is loaded atomically, so reading while the data plane runs is race-free
// (fields may straddle a batch boundary, like any /proc counter).
func (f *Filter) Stats() Stats {
	return Stats{
		Processed:   f.stats.processed.Load(),
		Allowed:     f.stats.allowed.Load(),
		Dropped:     f.stats.dropped.Load(),
		ExactHits:   f.stats.exactHits.Load(),
		RuleHits:    f.stats.ruleHits.Load(),
		DefaultHits: f.stats.defaultHits.Load(),
		Hashed:      f.stats.hashed.Load(),
		Promoted:    f.stats.promoted.Load(),
		Misrouted:   f.stats.misrouted.Load(),
		Malformed:   f.stats.malformed.Load(),
	}
}

// syncMemory recomputes the enclave's EPC charge from the actual data
// structure sizes: lookup table snapshot + learned flows + the two packet
// logs.
func (f *Filter) syncMemory() {
	// RetainedBytes, not MemoryBytes: a delta-built snapshot (and a
	// delta-evolved classifier over a sparse priority domain) can carry
	// bounded dead arena slack, and the EPC meter charges what is actually
	// resident.
	view := f.view.Load()
	mem := view.snap.RetainedBytes() +
		view.prog.RetainedBytes() +
		f.exact.memoryBytes() +
		len(f.pendingQ)*packet.KeySize +
		f.inLog.MemoryBytes() + f.outLog.MemoryBytes()
	f.encl.SetMemoryUsed(mem)
}

// Reconfigure installs a new shard (and the peer-rule view used for
// misroute detection) by building a fresh immutable lookup snapshot and
// swapping it in with one atomic pointer store. The swap means readers of
// the view (Decision, a monitoring Rules call) never observe a torn or
// half-built lookup table and the rebuild never parks them — but
// Reconfigure is still a data-plane mutation: it replaces the exact-match
// table, the pending queue, and the per-rule byte counters that
// ProcessBatch writes, so it must not run concurrently with the data-path
// methods. The engine enforces this by quiescing (Session.Reconfigure
// refuses while an engine owns the filters). Learned flows and the
// pending queue are cleared: promoted entries derive from rules that may
// no longer be local.
func (f *Filter) Reconfigure(set *rules.Set, foreign *rules.Set) error {
	if set == nil || set.Len() == 0 {
		return ErrNoRules
	}
	tbl, err := trie.New(f.cfg.Stride)
	if err != nil {
		return err
	}
	tbl.InsertSet(set)
	f.exact = newExactTable()
	f.exactCount.Store(0)
	f.pendingQ = f.pendingQ[:0]
	f.pendingLen.Store(0)
	clear(f.pendingSet)
	f.ruleBytes = make([]uint64, set.Len())
	clsStart := time.Now()
	prog := classify.Compile(set.Rules, nil, int32(set.Len()-1))
	f.clsBuildNs.Store(int64(time.Since(clsStart)))
	f.view.Store(&ruleView{
		set:     set,
		foreign: foreign,
		snap:    tbl.Snapshot(),
		prog:    prog,
	})
	f.syncMemory()
	return nil
}

// SetForeign installs only the peer-rule view.
func (f *Filter) SetForeign(foreign *rules.Set) {
	v := f.view.Load()
	f.view.Store(&ruleView{set: v.set, foreign: foreign, snap: v.snap, prog: v.prog, prios: v.prios})
}

// Delta is an incremental rule-set change for ReconfigureDelta: Removes
// are deleted from the installed set (matched by rule ID; the other fields
// are ignored) and Adds are appended after every existing rule, so
// first-match order is: surviving rules in their installed order, then
// Adds in order. Foreign, when non-nil, replaces the peer-rule view in the
// same atomic swap; nil keeps the current one.
type Delta struct {
	Adds    []rules.Rule
	Removes []rules.Rule
	Foreign *rules.Set
}

// ReconfigureDelta applies an incremental rule-set change by diffing the
// installed lookup snapshot (trie.Snapshot.Diff: untouched subtrees are
// reused by reference, only the delta's root-to-anchor paths are copied)
// and publishing the result with the same single atomic view store a full
// Reconfigure uses — so a 25k-rule tenant adding 50 prefixes pays for the
// 50 paths, not a 25k-rule rebuild, and concurrent readers never observe
// a torn table. Like Reconfigure it is a data-plane mutation and must not
// run concurrently with the data-path methods; in engine mode use
// Engine.ReconfigureNamespaceDelta, which applies it on the shard workers
// at batch boundaries.
//
// Unlike Reconfigure, surviving rules keep their per-rule byte counters
// (the measurement window continues across a live delta) and — when the
// delta removes nothing — the learned exact-match entries survive too:
// adds are appended at the lowest priority, so no existing decision can
// change. Any remove resets the learned table, since its entries may
// derive from the removed rules. Priorities grow monotonically across
// deltas (adds never reuse a removed rule's slot); once the sparse
// priority domain exceeds densifyFactor times the live rule count, the
// delta transparently rebuilds the lookup table dense (same rule set,
// identity priorities, survivor counters remapped) — so unbounded churn
// on a long-lived engine cannot grow prios/ruleBytes without bound, and
// no caller ever needs to leave engine mode to re-densify. The rebuild
// is amortized: it recurs only after churn totalling
// (densifyFactor-1)x the rule set.
//
// On error nothing changes. A failed or partially failed delta across a
// fleet is repaired by a full Reconfigure, which remains the oracle path.
func (f *Filter) ReconfigureDelta(d Delta) error {
	view := f.view.Load()
	if len(d.Adds) == 0 && len(d.Removes) == 0 {
		if d.Foreign != nil {
			f.SetForeign(d.Foreign)
		}
		return nil
	}

	// Resolve removes against the installed set by ID; the installed rule
	// (not the caller's copy) anchors the trie removal.
	removeIdx := make(map[uint32]int, len(d.Removes))
	removes := make([]rules.Rule, 0, len(d.Removes))
	for _, r := range d.Removes {
		if _, dup := removeIdx[r.ID]; dup {
			return fmt.Errorf("filter: delta removes rule %d twice", r.ID)
		}
		removeIdx[r.ID] = -1
	}
	survivors := make([]rules.Rule, 0, view.set.Len()-len(d.Removes)+len(d.Adds))
	survivorPrios := make([]int32, 0, cap(survivors))
	removedPrios := make([]int32, 0, len(d.Removes))
	for i, r := range view.set.Rules {
		if _, ok := removeIdx[r.ID]; ok {
			removeIdx[r.ID] = i
			removes = append(removes, r)
			removedPrios = append(removedPrios, view.prio(i))
			continue
		}
		survivors = append(survivors, r)
		survivorPrios = append(survivorPrios, view.prio(i))
	}
	for id, i := range removeIdx {
		if i < 0 {
			return fmt.Errorf("filter: delta removes unknown rule %d", id)
		}
	}
	if len(survivors)+len(d.Adds) == 0 {
		return ErrNoRules
	}

	// NewSet validates the adds, checks ID uniqueness across the whole new
	// set, and assigns fresh IDs to zero-ID adds.
	newSet, err := rules.NewSet(append(survivors, d.Adds...), view.set.DefaultAllow)
	if err != nil {
		return err
	}
	adds := newSet.Rules[len(survivors):]

	var (
		snap      *trie.Snapshot
		prog      *classify.Program
		prios     []int32
		ruleBytes []uint64
	)
	if int(view.snap.MaxPrio())+1+len(adds) > densifyFactor*newSet.Len() {
		// The sparse priority domain has outgrown the rule set: rebuild
		// dense instead of diffing. Same successor set, identity
		// priorities; survivor counters are remapped from their sparse
		// slots, so the measurement window still rides through. Decisions
		// are unchanged (identical rules in identical order), so the
		// exact-table policy below applies exactly as on the diff path.
		tbl, err := trie.New(f.cfg.Stride)
		if err != nil {
			return err
		}
		tbl.InsertSet(newSet)
		snap = tbl.Snapshot()
		clsStart := time.Now()
		prog = classify.Compile(newSet.Rules, nil, int32(newSet.Len()-1))
		f.clsBuildNs.Store(int64(time.Since(clsStart)))
		ruleBytes = make([]uint64, newSet.Len())
		for i, p := range survivorPrios {
			ruleBytes[i] = f.ruleBytes[p]
		}
	} else {
		snap, err = view.snap.Diff(adds, removes)
		if err != nil {
			return err
		}
		prios = make([]int32, newSet.Len())
		copy(prios, survivorPrios)
		base := view.snap.MaxPrio() // Diff numbered adds base+1, base+2, ...
		for i := range adds {
			prios[len(survivors)+i] = base + 1 + int32(i)
		}
		// The classifier evolves incrementally too: attributes whose
		// interval structure the delta leaves intact are patched (sharing
		// their direct-index tables by reference), the rest patch their
		// changed index chunks; past the churn threshold the whole program
		// recompiles.
		clsStart := time.Now()
		prog = view.prog.Delta(classify.Delta{
			Rules:        newSet.Rules,
			Prios:        prios,
			MaxPrio:      snap.MaxPrio(),
			AddStart:     len(survivors),
			RemovedRules: removes,
			RemovedPrios: removedPrios,
		})
		f.clsBuildNs.Store(int64(time.Since(clsStart)))
		// Per-rule byte counters: survivors keep their (sparse-prio)
		// slots, removed slots are zeroed so they can never leak into a
		// future RuleBytes read, adds start fresh at the end.
		ruleBytes = make([]uint64, snap.MaxPrio()+1)
		copy(ruleBytes, f.ruleBytes)
		for _, i := range removeIdx {
			ruleBytes[view.prio(i)] = 0
		}
	}

	if len(removes) > 0 {
		// Learned entries may derive from removed rules; drop them. The
		// pending queue survives — Promote recomputes against the new view.
		f.exact = newExactTable()
		f.exactCount.Store(0)
	}
	f.ruleBytes = ruleBytes
	foreign := view.foreign
	if d.Foreign != nil {
		foreign = d.Foreign
	}
	f.view.Store(&ruleView{set: newSet, foreign: foreign, snap: snap, prog: prog, prios: prios})
	f.syncMemory()
	return nil
}

// hashBits computes the leading 64 bits of SHA-256(key ‖ secret) through
// the filter's reused hash state (no allocation; filter thread only).
func (f *Filter) hashBits(t packet.FiveTuple) uint64 {
	key := t.Key()
	f.sha.Reset()
	f.sha.Write(key[:])
	f.sha.Write(f.secret[:])
	f.shaDigest = f.sha.Sum(f.shaDigest[:0])
	return binary.BigEndian.Uint64(f.shaDigest[:8])
}

// allowBits is the connection-preserving probabilistic decision: allow iff
// the hash bits fall under pAllow·2^64.
func allowBits(x uint64, pAllow float64) bool {
	// pAllow == 1 must allow everything including x == MaxUint64.
	if pAllow >= 1 {
		return true
	}
	return float64(x) < pAllow*math.MaxUint64
}

// Decision is the pure, stateless decision function f(p) of Eq. 2. It
// consults only the packet bits, the installed rules, the learned
// exact-match entries (which themselves are deterministic functions of
// rules+secret), and the enclave secret. It performs no logging and no
// cost accounting: calling it any number of times, in any order, yields
// identical verdicts. (It shares the filter thread's scratch hash state,
// so like the data-path methods it runs on the filter thread.)
func (f *Filter) Decision(t packet.FiveTuple) Verdict {
	if v, ok := f.exact.get(t, t.Hash64()); ok {
		return v
	}
	view := f.view.Load()
	if ri, _, _, ok := view.prog.Classify(t); ok {
		return f.ruleVerdict(t, view.set.Rules[ri])
	}
	if view.set.DefaultAllow {
		return VerdictAllow
	}
	return VerdictDrop
}

func (f *Filter) ruleVerdict(t packet.FiveTuple, r rules.Rule) Verdict {
	switch {
	case r.PAllow >= 1:
		return VerdictAllow
	case r.PAllow <= 0:
		return VerdictDrop
	case allowBits(f.hashBits(t), r.PAllow):
		return VerdictAllow
	default:
		return VerdictDrop
	}
}

// Process runs the full data-plane path for one packet descriptor. It is
// the one-element special case of ProcessBatch, retained so serial callers
// (the analytical pipeline, the experiment harness) keep working.
func (f *Filter) Process(d packet.Descriptor) Verdict {
	f.procBuf[0] = d
	f.procVerdicts = f.ProcessBatch(f.procBuf[:], f.procVerdicts)
	return f.procVerdicts[0]
}

// flow classification within a batch.
const (
	classDefault uint8 = iota
	classExact
	classRule
)

// batchEntry is one distinct flow observed in the current burst: its
// decision, its classification for stats, and the packet/byte totals of
// its duplicates.
type batchEntry struct {
	tuple    packet.FiveTuple
	hash     uint64
	bytes    uint64
	count    uint32
	prio     int32
	verdict  Verdict
	class    uint8
	hashed   bool
	misroute bool
}

// batchScratch is the reusable per-burst working set: a small open-
// addressing table deduplicating the burst's flows, plus staging for the
// batched sketch updates. Owned by the filter thread; zero steady-state
// allocation.
type batchScratch struct {
	slots []int32 // open addressing → index into ents; -1 empty
	ents  []batchEntry

	// pktEnt maps each descriptor to its flow entry so the verdict
	// fan-out can run as a final pass, after the burst's exact-miss flows
	// were classified breadth-first. clsTuples/clsEnts stage those flows
	// for classify.ClassifyBatch (cls is its reusable scratch).
	pktEnt    []int32
	clsTuples []packet.FiveTuple
	clsEnts   []int32
	cls       classify.BatchScratch

	keyMem     []byte // backing for the log keys below
	inKeys     [][]byte
	inWeights  []uint64
	outKeys    [][]byte
	outWeights []uint64
}

// reset prepares the scratch for a burst of n packets (dedup table sized
// to ≤½ load).
func (sc *batchScratch) reset(n int) {
	need := 1
	for need < 2*n {
		need <<= 1
	}
	if cap(sc.slots) < need {
		sc.slots = make([]int32, need)
	} else {
		sc.slots = sc.slots[:need]
	}
	for i := range sc.slots {
		sc.slots[i] = -1
	}
	sc.ents = sc.ents[:0]
	if cap(sc.pktEnt) < n {
		sc.pktEnt = make([]int32, n)
		sc.clsTuples = make([]packet.FiveTuple, 0, n)
		sc.clsEnts = make([]int32, 0, n)
	}
	sc.pktEnt = sc.pktEnt[:n]
	sc.clsTuples = sc.clsTuples[:0]
	sc.clsEnts = sc.clsEnts[:0]
}

// lookupOrAdd returns the index of t's entry, adding one if the burst has
// not seen this flow yet.
func (sc *batchScratch) lookupOrAdd(t packet.FiveTuple, h uint64) (int, bool) {
	mask := uint64(len(sc.slots) - 1)
	i := h & mask
	for {
		s := sc.slots[i]
		if s < 0 {
			idx := len(sc.ents)
			sc.ents = append(sc.ents, batchEntry{tuple: t, hash: h})
			sc.slots[i] = int32(idx)
			return idx, true
		}
		if sc.ents[s].tuple == t {
			return int(s), false
		}
		i = (i + 1) & mask
	}
}

// ProcessBatch runs the full data-plane path for a burst of descriptors,
// writing one verdict per descriptor into verdicts (grown if its capacity
// is short; pass the previous call's return value to reuse the buffer).
//
// The burst is deduplicated by five-tuple: because the decision function
// is stateless (Eq. 2), every packet of a flow within one burst must get
// the same verdict, so the filter decides each distinct flow once and fans
// the verdict out — a packet train costs one exact probe or trie walk, one
// set of sketch row updates (weighted by the train length), and at most
// one SHA-256 evaluation. All cost-model terms are accumulated into a
// CostVector and charged to the enclave meter once per burst.
func (f *Filter) ProcessBatch(ds []packet.Descriptor, verdicts []Verdict) []Verdict {
	if len(ds) == 0 {
		return verdicts[:0]
	}

	// Stage timing: 1-in-N bursts pay two extra clock reads per stage;
	// the rest pay one counter increment in Sample. The split point is
	// verdict (dedup + classify) vs charge (applyBatch + meter) — the same
	// boundary the decomposed burst stages in burst.go expose.
	sampled := f.rec.Sample()
	var verdictStart time.Time
	if sampled {
		verdictStart = time.Now()
	}

	verdicts = f.ClassifyBurst(ds, verdicts)

	var chargeStart time.Time
	if sampled {
		chargeStart = time.Now()
		f.rec.Record(telemetry.StageVerdict, chargeStart.Sub(verdictStart))
	}
	f.ApplyBurst()
	f.ChargeBurst()
	if sampled {
		f.rec.Record(telemetry.StageCharge, time.Since(chargeStart))
	}
	return verdicts
}

// Explain classifies one flow the way the data path would and reports
// where the verdict came from: the learned exact table, an installed rule
// (with its trie priority), or the default action (priority -1). It is
// the packet-trace tap for live verdict disputes — pure like Decision,
// but it surfaces the provenance Decision hides. Filter thread only (it
// shares the reused hash state).
func (f *Filter) Explain(t packet.FiveTuple) (Verdict, int32, string) {
	if v, ok := f.exact.get(t, t.Hash64()); ok {
		return v, -1, "exact"
	}
	view := f.view.Load()
	if ri, prio, _, ok := view.prog.Classify(t); ok {
		return f.ruleVerdict(t, view.set.Rules[ri]), prio, "rule"
	}
	if view.set.DefaultAllow {
		return VerdictAllow, -1, "default"
	}
	return VerdictDrop, -1, "default"
}

// finishRule finishes one exact-miss flow's decision from its batch
// classification result: cost charging, misroute detection, default
// action, and the probabilistic-rule hash — the post-probe half of the
// data path.
func (f *Filter) finishRule(ent *batchEntry, res classify.Result, view *ruleView, model enclave.CostModel, cv *enclave.CostVector) {
	// The first HotVisits accesses (the attribute tables' always-resident
	// index roots every packet touches) are priced as cache hits
	// regardless of table size; the rest pay the footprint-dependent miss
	// cost — at enclave (MEE/EPC) or native rates.
	refs := int(res.Refs)
	hot := refs
	if hot > model.HotVisits {
		hot = model.HotVisits
	}
	cv.HotRefs += hot
	if f.cfg.Mode == CopyModeNative {
		cv.NativeColdRefs += refs - hot
	} else {
		cv.ColdRefs += refs - hot
	}

	if !res.OK {
		ent.class = classDefault
		if view.foreign != nil {
			// A flow matching no local rule but matching a peer enclave's
			// rule: the untrusted load balancer steered traffic wrongly.
			if _, m := view.foreign.Match(ent.tuple); m {
				ent.misroute = true
			}
		}
		if view.set.DefaultAllow {
			ent.verdict = VerdictAllow
		} else {
			ent.verdict = VerdictDrop
		}
		return
	}

	r := &view.set.Rules[res.Rule]
	ent.class, ent.prio = classRule, res.Prio
	switch {
	case r.PAllow >= 1:
		ent.verdict = VerdictAllow
	case r.PAllow <= 0:
		ent.verdict = VerdictDrop
	default:
		// Probabilistic rule: hash-based connection-preserving decision.
		ent.hashed = true
		cv.SHA256Hashes++
		cv.SHA256Bytes += packet.KeySize + 32
		if allowBits(f.hashBits(ent.tuple), r.PAllow) {
			ent.verdict = VerdictAllow
		} else {
			ent.verdict = VerdictDrop
		}
	}
}

// applyBatch folds the burst's per-flow entries into the logs, the per-rule
// byte counters, the promotion queue, and the stats block — each touched
// once per burst.
func (f *Filter) applyBatch(cv *enclave.CostVector) {
	sc := &f.scratch
	need := len(sc.ents) * (4 + packet.KeySize)
	if cap(sc.keyMem) < need {
		sc.keyMem = make([]byte, 0, need)
	}
	mem := sc.keyMem[:0]
	sc.inKeys = sc.inKeys[:0]
	sc.inWeights = sc.inWeights[:0]
	sc.outKeys = sc.outKeys[:0]
	sc.outWeights = sc.outWeights[:0]

	var processed, allowed, dropped, exactHits, ruleHits, defaultHits, hashed, misrouted uint64
	for i := range sc.ents {
		ent := &sc.ents[i]
		c := uint64(ent.count)
		processed += c

		// Incoming log: per-source-IP counters (drop-before-filter
		// evidence for neighbors).
		start := len(mem)
		mem = binary.BigEndian.AppendUint32(mem, ent.tuple.SrcIP)
		sc.inKeys = append(sc.inKeys, mem[start:])
		sc.inWeights = append(sc.inWeights, c)
		cv.SketchRows += sketch.DefaultRows

		if ent.verdict == VerdictAllow {
			key := ent.tuple.Key()
			start = len(mem)
			mem = append(mem, key[:]...)
			sc.outKeys = append(sc.outKeys, mem[start:])
			sc.outWeights = append(sc.outWeights, c)
			cv.SketchRows += sketch.DefaultRows
			allowed += c
		} else {
			dropped += c
		}

		switch ent.class {
		case classExact:
			exactHits += c
		case classRule:
			ruleHits += c
			f.ruleBytes[ent.prio] += ent.bytes
			if ent.hashed {
				hashed++
				if !f.cfg.DisablePromotion {
					f.enqueuePending(ent.tuple)
				}
			}
		default:
			defaultHits += c
			if ent.misroute {
				misrouted += c
			}
		}
	}
	sc.keyMem = mem

	f.inLog.AddMany(sc.inKeys, sc.inWeights)
	if len(sc.outKeys) > 0 {
		f.outLog.AddMany(sc.outKeys, sc.outWeights)
	}

	f.stats.processed.Add(processed)
	if allowed > 0 {
		f.stats.allowed.Add(allowed)
	}
	if dropped > 0 {
		f.stats.dropped.Add(dropped)
	}
	if exactHits > 0 {
		f.stats.exactHits.Add(exactHits)
	}
	if ruleHits > 0 {
		f.stats.ruleHits.Add(ruleHits)
	}
	if defaultHits > 0 {
		f.stats.defaultHits.Add(defaultHits)
	}
	if hashed > 0 {
		f.stats.hashed.Add(hashed)
	}
	if misrouted > 0 {
		f.stats.misrouted.Add(misrouted)
	}
}

func (f *Filter) enqueuePending(t packet.FiveTuple) {
	if len(f.pendingQ) >= f.cfg.MaxPending || f.pendingSet[t] {
		return
	}
	f.pendingSet[t] = true
	f.pendingQ = append(f.pendingQ, t)
	f.pendingLen.Store(int64(len(f.pendingQ)))
}

// PendingFlows reports how many flows await promotion. Safe to read while
// the data plane runs.
func (f *Filter) PendingFlows() int { return int(f.pendingLen.Load()) }

// Promote converts all pending flows to exact-match entries (Appendix F's
// batch insertion at every rule update period) and returns how many were
// promoted. The verdicts are the same ones hashing produced — promotion is
// a pure performance optimization and cannot change any decision, which
// TestPromotionPreservesDecisions asserts.
func (f *Filter) Promote() int {
	view := f.view.Load()
	n := 0
	for _, t := range f.pendingQ {
		// Recompute via the rule, not the hash cache, so the entry is the
		// deterministic function of (rules, secret).
		if ri, _, _, ok := view.prog.Classify(t); ok && !view.set.Rules[ri].Deterministic() {
			f.exact.put(t, t.Hash64(), f.ruleVerdict(t, view.set.Rules[ri]))
			n++
		}
		delete(f.pendingSet, t)
	}
	f.pendingQ = f.pendingQ[:0]
	f.pendingLen.Store(0)
	f.exactCount.Store(int64(f.exact.len()))
	f.stats.promoted.Add(uint64(n))
	f.syncMemory()
	return n
}

// RuleBytes returns the per-rule byte counters (the B_i vector of the
// redistribution protocol) keyed by rule ID, and optionally resets them
// for the next measurement window.
func (f *Filter) RuleBytes(reset bool) map[uint32]uint64 {
	view := f.view.Load()
	out := make(map[uint32]uint64)
	for i, r := range view.set.Rules {
		p := view.prio(i)
		if b := f.ruleBytes[p]; b > 0 {
			out[r.ID] += b
			if reset {
				f.ruleBytes[p] = 0
			}
		}
	}
	return out
}

// HashRatio returns SHA-256 evaluations per processed packet — the
// x-axis of Figure 14 on the scalar path, where every hash-needing packet
// evaluates. On the batch path intra-burst dedup evaluates once per
// distinct flow per burst, so under packet trains this reports actual
// hash work, which sits below the fraction of hash-needing packets. Safe
// to read while the data plane runs.
func (f *Filter) HashRatio() float64 {
	p := f.stats.processed.Load()
	if p == 0 {
		return 0
	}
	return float64(f.stats.hashed.Load()) / float64(p)
}

// RuleCount returns the number of installed rules (excluding learned
// exact-match entries).
func (f *Filter) RuleCount() int { return f.view.Load().set.Len() }

// RuleMemoryBytes returns the live size of the installed lookup
// structures — trie snapshot plus compiled classifier — the rule-set
// memory weight the multi-victim EPC budgeter apportions by. Both terms
// are numbering-invariant (delta lineages report the same figure a fresh
// rebuild of the same rules would; slack is charged to the EPC meter
// separately). Safe to read while the data plane runs: both structures
// are immutable and reached through one atomic pointer load.
func (f *Filter) RuleMemoryBytes() int {
	view := f.view.Load()
	return view.snap.MemoryBytes() + view.prog.MemoryBytes()
}

// ExactEntries returns the number of learned exact-match entries. Safe to
// read while the data plane runs.
func (f *Filter) ExactEntries() int { return int(f.exactCount.Load()) }

// ClassifierStats reports the installed classifier's footprint split into
// its direct-index translation tables (value→interval arrays, address
// roots and leaf chunks) versus the interval/membership structures, plus
// the wall time of the most recent compile or delta patch. Safe to read
// while the data plane runs: the program is immutable behind one atomic
// pointer load and the build time is an atomic.
func (f *Filter) ClassifierStats() (indexBytes, setBytes int, build time.Duration) {
	view := f.view.Load()
	indexBytes = view.prog.IndexBytes()
	setBytes = view.prog.MemoryBytes() - indexBytes
	return indexBytes, setBytes, time.Duration(f.clsBuildNs.Load())
}
