// Package filter implements VIF's auditable in-enclave traffic filter —
// the paper's core contribution (§III).
//
// The decision function is stateless in the sense of Eq. 2: the verdict for
// a packet depends only on the packet's five-tuple, the installed rule set,
// and the enclave's sealed secret — never on arrival time, packet order, or
// any previous packet. That property (asserted by this package's tests) is
// what makes the filter auditable: the untrusted host controls packet
// timing and can inject traffic, but cannot steer decisions.
//
// Probabilistic rules ("drop 50% of HTTP flows") are executed
// connection-preservingly via hash-based filtering (Appendix A): a flow is
// allowed iff the leading 64 bits of SHA-256(fiveTuple ‖ secret) fall under
// PAllow·2^64, so all packets of a flow share one fate, the host cannot
// predict or bias fates without the secret, and the empirical allow rate
// converges to PAllow. The hybrid design (Appendix F) additionally promotes
// newly observed flows to exact-match entries in batches, trading per-packet
// hashing for lookup-table growth.
package filter

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
	"github.com/innetworkfiltering/vif/internal/sketch"
	"github.com/innetworkfiltering/vif/internal/trie"
)

// Verdict is the filter's per-packet decision.
type Verdict uint8

// Verdicts.
const (
	VerdictAllow Verdict = iota + 1
	VerdictDrop
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictAllow:
		return "allow"
	case VerdictDrop:
		return "drop"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// CopyMode selects the data-path copy discipline whose costs the enclave
// meter charges (the three implementations of Figure 8).
type CopyMode int

// Copy modes.
const (
	// CopyModeNative is the no-SGX baseline: the filter runs in host
	// memory, packets are processed zero-copy as in plain DPDK.
	CopyModeNative CopyMode = iota + 1
	// CopyModeFull copies every packet byte into the enclave before
	// processing (the naive SGX middlebox design).
	CopyModeFull
	// CopyModeNearZero copies only ⟨five-tuple, size, ref⟩ into the
	// enclave (§V-A's near zero-copy optimization).
	CopyModeNearZero
)

// String renders the copy mode.
func (m CopyMode) String() string {
	switch m {
	case CopyModeNative:
		return "native"
	case CopyModeFull:
		return "sgx-full-copy"
	case CopyModeNearZero:
		return "sgx-near-zero-copy"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// descriptorBytes is what the near-zero-copy path moves across the enclave
// boundary per packet: five-tuple (13) + size (2) + buffer reference (8).
const descriptorBytes = packet.KeySize + 2 + 8

// exactEntryBytes approximates the in-enclave cost of one learned
// exact-match flow entry (map bucket share + key + verdict).
const exactEntryBytes = 64

// Errors.
var (
	ErrNoRules = errors.New("filter: no rule set installed")
)

// Config configures a Filter.
type Config struct {
	// Mode is the data-path copy discipline. Default CopyModeNearZero.
	Mode CopyMode
	// Stride is the lookup trie stride. Default trie.DefaultStride.
	Stride int
	// MaxPending caps the queue of flows awaiting exact-match promotion;
	// beyond it, new flows are still decided by hashing but not queued
	// (bounding enclave memory). Default 65536.
	MaxPending int
	// DisablePromotion turns off the hybrid design: flows are always
	// decided by hashing. Used by the Fig 14 ablation.
	DisablePromotion bool
}

func (c *Config) fillDefaults() {
	if c.Mode == 0 {
		c.Mode = CopyModeNearZero
	}
	if c.Stride == 0 {
		c.Stride = trie.DefaultStride
	}
	if c.MaxPending == 0 {
		c.MaxPending = 65536
	}
}

// Stats counts data-plane events since the last reset.
type Stats struct {
	Processed uint64
	Allowed   uint64
	Dropped   uint64
	// ExactHits counts verdicts served by the learned exact-match table.
	ExactHits uint64
	// RuleHits counts verdicts served by installed rules (trie).
	RuleHits uint64
	// DefaultHits counts packets matching no rule.
	DefaultHits uint64
	// Hashed counts SHA-256 evaluations for probabilistic rules.
	Hashed uint64
	// Promoted counts flows promoted to exact-match entries.
	Promoted uint64
	// Misrouted counts packets that matched no local rule but do match a
	// rule assigned to a different enclave — evidence of load-balancer
	// misbehavior (§IV-B), reported to the victim.
	Misrouted uint64
	// Malformed counts undecodable frames (dropped before rule lookup).
	Malformed uint64
}

// Filter is one enclaved filter instance. All methods must be called from
// the single filter thread, mirroring the paper's pipeline design; log
// snapshots are taken via the control-plane methods which copy under the
// data-plane's quiescence points.
type Filter struct {
	encl *enclave.Enclave
	cfg  Config

	set     *rules.Set // this enclave's shard
	foreign *rules.Set // rules assigned to peer enclaves (misroute check)
	table   *trie.Table

	exact      map[packet.FiveTuple]Verdict
	pendingQ   []packet.FiveTuple
	pendingSet map[packet.FiveTuple]bool

	inLog  *sketch.Sketch // per-source-IP, incoming packets
	outLog *sketch.Sketch // per-five-tuple, forwarded packets

	// ruleBytes accumulates per-rule traffic volume (the B_i vector each
	// slave uploads to the master during rule redistribution, Figure 5).
	// Pure measurement state: it never influences a verdict, so the
	// statelessness property is preserved. Per §IV footnote 6, counts are
	// bytes, not rates — the enclave's clock is untrusted, so the control
	// plane timestamps collection externally.
	ruleBytes map[uint32]uint64

	stats Stats
}

// New creates a filter inside the given enclave with the given rule shard.
func New(encl *enclave.Enclave, set *rules.Set, cfg Config) (*Filter, error) {
	if set == nil || set.Len() == 0 {
		return nil, ErrNoRules
	}
	cfg.fillDefaults()
	table, err := trie.New(cfg.Stride)
	if err != nil {
		return nil, err
	}
	f := &Filter{
		encl:       encl,
		cfg:        cfg,
		set:        set,
		table:      table,
		exact:      make(map[packet.FiveTuple]Verdict),
		pendingSet: make(map[packet.FiveTuple]bool),
		ruleBytes:  make(map[uint32]uint64),
		inLog:      sketch.NewDefault(),
		outLog:     sketch.NewDefault(),
	}
	table.InsertSet(set)
	f.syncMemory()
	return f, nil
}

// Enclave returns the hosting enclave (for attestation and metering).
func (f *Filter) Enclave() *enclave.Enclave { return f.encl }

// Rules returns the installed shard.
func (f *Filter) Rules() *rules.Set { return f.set }

// Stats returns a copy of the counters.
func (f *Filter) Stats() Stats { return f.stats }

// syncMemory recomputes the enclave's EPC charge from the actual data
// structure sizes: lookup table + learned flows + the two packet logs.
func (f *Filter) syncMemory() {
	mem := f.table.MemoryBytes() +
		len(f.exact)*exactEntryBytes +
		len(f.pendingQ)*packet.KeySize +
		f.inLog.MemoryBytes() + f.outLog.MemoryBytes()
	f.encl.SetMemoryUsed(mem)
}

// Reconfigure atomically installs a new shard (and the peer-rule view used
// for misroute detection), rebuilding the lookup table. Learned flows and
// the pending queue are cleared: promoted entries derive from rules that
// may no longer be local.
func (f *Filter) Reconfigure(set *rules.Set, foreign *rules.Set) error {
	if set == nil || set.Len() == 0 {
		return ErrNoRules
	}
	table, err := trie.New(f.cfg.Stride)
	if err != nil {
		return err
	}
	table.InsertSet(set)
	f.set = set
	f.foreign = foreign
	f.table = table
	f.exact = make(map[packet.FiveTuple]Verdict)
	f.pendingQ = f.pendingQ[:0]
	clear(f.pendingSet)
	clear(f.ruleBytes)
	f.syncMemory()
	return nil
}

// SetForeign installs only the peer-rule view.
func (f *Filter) SetForeign(foreign *rules.Set) { f.foreign = foreign }

// hashAllow computes the connection-preserving probabilistic decision:
// allow iff the leading 64 bits of SHA-256(key ‖ secret) < pAllow·2^64.
func (f *Filter) hashAllow(t packet.FiveTuple, pAllow float64) bool {
	key := t.Key()
	secret := f.encl.Secret()
	h := sha256.New()
	h.Write(key[:])
	h.Write(secret[:])
	var sum [32]byte
	h.Sum(sum[:0])
	x := binary.BigEndian.Uint64(sum[:8])
	// pAllow == 1 must allow everything including x == MaxUint64.
	if pAllow >= 1 {
		return true
	}
	return float64(x) < pAllow*math.MaxUint64
}

// Decision is the pure, stateless decision function f(p) of Eq. 2. It
// consults only the packet bits, the installed rules, the learned
// exact-match entries (which themselves are deterministic functions of
// rules+secret), and the enclave secret. It performs no logging, no cost
// accounting, and no mutation: calling it any number of times, in any
// order, yields identical verdicts.
func (f *Filter) Decision(t packet.FiveTuple) Verdict {
	if v, ok := f.exact[t]; ok {
		return v
	}
	if r, _, ok := f.table.Lookup(t); ok {
		return f.ruleVerdict(t, r)
	}
	if f.set.DefaultAllow {
		return VerdictAllow
	}
	return VerdictDrop
}

func (f *Filter) ruleVerdict(t packet.FiveTuple, r rules.Rule) Verdict {
	switch {
	case r.PAllow >= 1:
		return VerdictAllow
	case r.PAllow <= 0:
		return VerdictDrop
	case f.hashAllow(t, r.PAllow):
		return VerdictAllow
	default:
		return VerdictDrop
	}
}

// Process runs the full data-plane path for one packet descriptor: charge
// boundary-crossing costs for the configured copy mode, log the packet in
// the incoming sketch, decide, and log forwarded packets in the outgoing
// sketch. It returns the verdict the TX stage applies to the buffer.
func (f *Filter) Process(d packet.Descriptor) Verdict {
	f.encl.Tick() // the clock advances; the decision path never reads it
	f.stats.Processed++

	model := f.encl.Model()
	switch f.cfg.Mode {
	case CopyModeFull:
		f.encl.ChargeFixed()
		f.encl.ChargeFullCopy(int(d.Size))
	case CopyModeNearZero:
		f.encl.ChargeFixed()
		f.encl.ChargeCopyIn(descriptorBytes)
	case CopyModeNative:
		// No boundary crossing; rule access costs are charged at native
		// rates below via the generic access charge.
	}

	// Incoming log: per-source-IP counters (drop-before-filter evidence
	// for neighbors).
	var srcKey [4]byte
	binary.BigEndian.PutUint32(srcKey[:], d.Tuple.SrcIP)
	f.inLog.Add(srcKey[:], 1)
	f.encl.ChargeSketchUpdate(sketch.DefaultRows)

	// Decide, charging lookup costs.
	verdict := f.decideAndCharge(d.Tuple, uint64(d.Size), model)

	if verdict == VerdictAllow {
		key := d.Tuple.Key()
		f.outLog.Add(key[:], 1)
		f.encl.ChargeSketchUpdate(sketch.DefaultRows)
		f.stats.Allowed++
	} else {
		f.stats.Dropped++
	}
	return verdict
}

func (f *Filter) decideAndCharge(t packet.FiveTuple, size uint64, model enclave.CostModel) Verdict {
	if v, ok := f.exact[t]; ok {
		f.encl.ChargeExactMatch()
		f.stats.ExactHits++
		return v
	}
	f.encl.ChargeExactMatch() // the miss probe still costs

	r, _, visited, ok := f.table.LookupTrace(t)
	f.chargeTableAccesses(visited, model)
	if ok {
		f.ruleBytes[r.ID] += size
	}
	if !ok {
		f.stats.DefaultHits++
		f.checkMisroute(t)
		if f.set.DefaultAllow {
			return VerdictAllow
		}
		return VerdictDrop
	}
	f.stats.RuleHits++
	if r.Deterministic() {
		return f.ruleVerdict(t, r)
	}

	// Probabilistic rule: hash-based connection-preserving decision.
	f.stats.Hashed++
	f.encl.ChargeSHA256(packet.KeySize + 32)
	v := f.ruleVerdict(t, r)
	if !f.cfg.DisablePromotion {
		f.enqueuePending(t)
	}
	return v
}

// chargeTableAccesses charges trie node visits. The first HotVisits
// accesses (the upper trie levels every packet touches) are priced as
// cache hits regardless of table size; the rest pay the footprint-
// dependent miss cost — at enclave (MEE/EPC) or native rates.
func (f *Filter) chargeTableAccesses(visited int, model enclave.CostModel) {
	hot := visited
	if hot > model.HotVisits {
		hot = model.HotVisits
	}
	cold := visited - hot
	if f.cfg.Mode == CopyModeNative {
		f.encl.ChargeNative(float64(hot)*model.MemRefNs +
			float64(cold)*model.NativeAccessCost(f.encl.MemoryUsed()))
		return
	}
	f.encl.ChargeNative(float64(hot) * model.MemRefNs)
	f.encl.ChargeAccesses(cold)
}

// checkMisroute flags packets matching no local rule but matching a peer
// enclave's rule: the untrusted load balancer steered traffic wrongly.
func (f *Filter) checkMisroute(t packet.FiveTuple) {
	if f.foreign == nil {
		return
	}
	if _, ok := f.foreign.Match(t); ok {
		f.stats.Misrouted++
	}
}

func (f *Filter) enqueuePending(t packet.FiveTuple) {
	if len(f.pendingQ) >= f.cfg.MaxPending || f.pendingSet[t] {
		return
	}
	f.pendingSet[t] = true
	f.pendingQ = append(f.pendingQ, t)
}

// PendingFlows reports how many flows await promotion.
func (f *Filter) PendingFlows() int { return len(f.pendingQ) }

// Promote converts all pending flows to exact-match entries (Appendix F's
// batch insertion at every rule update period) and returns how many were
// promoted. The verdicts are the same ones hashing produced — promotion is
// a pure performance optimization and cannot change any decision, which
// TestPromotionPreservesDecisions asserts.
func (f *Filter) Promote() int {
	n := 0
	for _, t := range f.pendingQ {
		// Recompute via the rule, not the hash cache, so the entry is the
		// deterministic function of (rules, secret).
		if r, _, ok := f.table.Lookup(t); ok && !r.Deterministic() {
			f.exact[t] = f.ruleVerdict(t, r)
			n++
		}
		delete(f.pendingSet, t)
	}
	f.pendingQ = f.pendingQ[:0]
	f.stats.Promoted += uint64(n)
	f.syncMemory()
	return n
}

// RuleBytes returns a copy of the per-rule byte counters (the B_i vector
// of the redistribution protocol) and optionally resets them for the next
// measurement window.
func (f *Filter) RuleBytes(reset bool) map[uint32]uint64 {
	out := make(map[uint32]uint64, len(f.ruleBytes))
	for id, b := range f.ruleBytes {
		out[id] = b
	}
	if reset {
		clear(f.ruleBytes)
	}
	return out
}

// HashRatio returns the fraction of processed packets that required a
// SHA-256 evaluation — the x-axis of Figure 14.
func (f *Filter) HashRatio() float64 {
	if f.stats.Processed == 0 {
		return 0
	}
	return float64(f.stats.Hashed) / float64(f.stats.Processed)
}

// RuleCount returns the number of installed rules (excluding learned
// exact-match entries).
func (f *Filter) RuleCount() int { return f.set.Len() }

// ExactEntries returns the number of learned exact-match entries.
func (f *Filter) ExactEntries() int { return len(f.exact) }
