package filter

import (
	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/packet"
)

// This file is the burst-staged decomposition of the data path. The three
// exported halves — ClassifyBurst, ApplyBurst, ChargeBurst — are the exact
// pieces ProcessBatch fuses, split so the engine's module chain can run
// them as separate pipeline stages (and interpose other modules between
// them) without changing what any one stage does. ProcessBatch remains the
// fused composition and is the behavioral oracle: classify, then apply,
// then charge, over the same staged state.
//
// Staging discipline: ClassifyBurst decides the burst and leaves the flow
// entries plus the accumulated cost vector staged on the filter.
// ApplyBurst folds the staged entries into the sketches/stats; ChargeBurst
// charges the staged cost vector (including sketch-row costs ApplyBurst
// added) to the enclave meter. Apply and Charge are idempotent per staged
// burst — calling either twice is one application — which is what lets a
// module Flush be safely re-issued. All three are filter-thread-only, like
// every data-path method.

// burstState is the between-stage staging area for one decomposed burst.
type burstState struct {
	cv      enclave.CostVector
	staged  bool
	applied bool
	charged bool
}

// ClassifyBurst is the verdict half of ProcessBatch: it ticks the enclave
// clock, deduplicates the burst by five-tuple, decides each distinct flow
// (exact table, compiled classifier, default action, probabilistic hash),
// and fans verdicts out per descriptor. The per-flow entries and the cost
// vector stay staged on the filter for ApplyBurst/ChargeBurst; nothing is
// logged or charged yet. Unlike ProcessBatch it never touches the stage
// recorder — when the engine runs the decomposed stages, the module chain
// owns stage timing.
func (f *Filter) ClassifyBurst(ds []packet.Descriptor, verdicts []Verdict) []Verdict {
	n := len(ds)
	if cap(verdicts) < n {
		verdicts = make([]Verdict, n)
	} else {
		verdicts = verdicts[:n]
	}
	f.burst = burstState{}
	if n == 0 {
		return verdicts
	}
	f.burst.staged = true

	f.encl.TickN(uint64(n)) // the clock advances; the decision path never reads it
	view := f.view.Load()
	model := f.encl.Model()
	cv := &f.burst.cv

	switch f.cfg.Mode {
	case CopyModeFull:
		cv.FixedPackets = n
		cv.FullCopies = n
		for i := range ds {
			cv.FullCopyBytes += int(ds[i].Size)
		}
	case CopyModeNearZero:
		cv.FixedPackets = n
		cv.CopyInBytes = n * descriptorBytes
	case CopyModeNative:
		// No boundary crossing; rule access costs are charged at native
		// rates below via the access-ref terms.
	}

	sc := &f.scratch
	sc.reset(n)
	// Pass 1 — dedup + exact table. runIdx short-circuits runs of
	// consecutive packets of one flow (the packet-train structure GRO/GSO
	// exists for): only the first packet of a run pays the five-tuple hash
	// and the dedup probe; the rest are a 16-byte compare. Behavior is
	// identical to probing every packet — the run's tuple is bit-equal, so
	// the probe could only return the same entry. Flows the exact table
	// misses are staged for the breadth-first classifier pass.
	runIdx := -1
	for i := range ds {
		d := &ds[i]
		var ei int
		if runIdx >= 0 && d.Tuple == ds[i-1].Tuple {
			ei = runIdx
		} else {
			var fresh bool
			ei, fresh = sc.lookupOrAdd(d.Tuple, d.Tuple.Hash64())
			if fresh {
				ent := &sc.ents[ei]
				cv.ExactProbes++ // the miss probe still costs
				if v, ok := f.exact.get(ent.tuple, ent.hash); ok {
					ent.verdict, ent.class = v, classExact
				} else {
					sc.clsTuples = append(sc.clsTuples, ent.tuple)
					sc.clsEnts = append(sc.clsEnts, int32(ei))
				}
			}
			runIdx = ei
		}
		ent := &sc.ents[ei]
		ent.count++
		ent.bytes += uint64(d.Size)
		sc.pktEnt[i] = int32(ei)
	}

	// Pass 2 — the burst's distinct exact-miss flows go through the
	// compiled classifier as one breadth-first batch (per-attribute index
	// probes overlap across flows), then each verdict is finished with the
	// same cost charging and rule semantics the scalar path had.
	if len(sc.clsTuples) > 0 {
		res := view.prog.ClassifyBatch(sc.clsTuples, &sc.cls)
		for k, ei := range sc.clsEnts {
			f.finishRule(&sc.ents[ei], res[k], view, model, cv)
		}
	}

	// Pass 3 — fan verdicts out per descriptor.
	for i := range ds {
		verdicts[i] = sc.ents[sc.pktEnt[i]].verdict
	}
	return verdicts
}

// ApplyBurst is the sketch/stats half: it folds the staged burst's flow
// entries into the traffic logs, the per-rule byte counters, the promotion
// queue, and the stats block, and adds the sketch-row costs to the staged
// cost vector. Idempotent per staged burst; a no-op when nothing is staged.
func (f *Filter) ApplyBurst() {
	if !f.burst.staged || f.burst.applied {
		return
	}
	f.burst.applied = true
	f.applyBatch(&f.burst.cv)
}

// ChargeBurst is the meter half: it charges the staged cost vector to the
// enclave meter. It must run after ApplyBurst (the sketch-row terms are
// added there); the default chain orders it so. Idempotent per staged
// burst; a no-op when nothing is staged.
func (f *Filter) ChargeBurst() {
	if !f.burst.staged || f.burst.charged {
		return
	}
	f.burst.charged = true
	f.encl.ChargeBatch(f.burst.cv)
}
