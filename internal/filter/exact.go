package filter

import "github.com/innetworkfiltering/vif/internal/packet"

// exactTable is the learned exact-match flow table: open addressing with
// linear probing over flat arrays, keyed by the tuple's Hash64. It replaces
// the Go map the filter used before the batch-first refactor — a probe is
// one hash plus (usually) one cache line, with no per-entry heap objects,
// which is what lets the exact path approach the paper's hash-table cost
// anchor (CostModel.ExactMatchNs).
//
// Slots with verdict 0 are empty (valid verdicts start at 1). Entries are
// only ever added (Promote) or dropped wholesale (Reconfigure), so there
// are no tombstones.
type exactTable struct {
	mask     uint64
	tuples   []packet.FiveTuple
	verdicts []Verdict
	count    int
}

const exactMinSlots = 64

func newExactTable() *exactTable {
	return &exactTable{
		mask:     exactMinSlots - 1,
		tuples:   make([]packet.FiveTuple, exactMinSlots),
		verdicts: make([]Verdict, exactMinSlots),
	}
}

// get probes for t (h must be t.Hash64()).
func (x *exactTable) get(t packet.FiveTuple, h uint64) (Verdict, bool) {
	i := h & x.mask
	for {
		v := x.verdicts[i]
		if v == 0 {
			return 0, false
		}
		if x.tuples[i] == t {
			return v, true
		}
		i = (i + 1) & x.mask
	}
}

// put inserts or overwrites t's verdict, growing at 3/4 load.
func (x *exactTable) put(t packet.FiveTuple, h uint64, v Verdict) {
	if uint64(x.count+1)*4 > uint64(len(x.verdicts))*3 {
		x.grow()
	}
	i := h & x.mask
	for {
		switch {
		case x.verdicts[i] == 0:
			x.tuples[i] = t
			x.verdicts[i] = v
			x.count++
			return
		case x.tuples[i] == t:
			x.verdicts[i] = v
			return
		}
		i = (i + 1) & x.mask
	}
}

func (x *exactTable) grow() {
	oldTuples, oldVerdicts := x.tuples, x.verdicts
	n := len(oldVerdicts) * 2
	x.mask = uint64(n - 1)
	x.tuples = make([]packet.FiveTuple, n)
	x.verdicts = make([]Verdict, n)
	x.count = 0
	for i, v := range oldVerdicts {
		if v != 0 {
			x.put(oldTuples[i], oldTuples[i].Hash64(), v)
		}
	}
}

func (x *exactTable) len() int { return x.count }

// memoryBytes is the table's resident size (tuple slot + verdict slot per
// bucket): the in-enclave cost the EPC accounting charges per learned flow
// capacity.
func (x *exactTable) memoryBytes() int {
	const tupleSlotBytes = 16 // FiveTuple struct (13 bytes padded)
	return len(x.verdicts) * (tupleSlotBytes + 1)
}
