package filter

import (
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

func deltaRule(rng *rand.Rand, id uint32, pAllow float64) rules.Rule {
	return rules.Rule{
		ID:     id,
		Src:    rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
		Dst:    rules.MustParsePrefix("192.0.2.0/24"),
		Proto:  packet.ProtoUDP,
		PAllow: pAllow,
	}
}

func deltaProbe(rng *rand.Rand, live []rules.Rule) packet.Descriptor {
	t := packet.FiveTuple{
		SrcIP:   rng.Uint32(),
		DstIP:   packet.MustParseIP("192.0.2.9"),
		SrcPort: uint16(rng.Intn(60000) + 1),
		DstPort: 53,
		Proto:   packet.ProtoUDP,
	}
	if len(live) > 0 && rng.Intn(3) != 0 {
		r := live[rng.Intn(len(live))]
		t.SrcIP = r.Src.Addr | (rng.Uint32() &^ r.Src.Mask())
	}
	return packet.Descriptor{Tuple: t, Size: 64, Ref: packet.NoRef}
}

// TestReconfigureDeltaMatchesFullRebuild drives a chain of random deltas
// through one filter while a twin filter (same enclave secret is not
// required: every rule here is deterministic) takes the full-Reconfigure
// path with the equivalent rule set, and asserts verdict equality on every
// probe after every step — the full rebuild is the oracle the delta path
// must be indistinguishable from.
func TestReconfigureDeltaMatchesFullRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	var live []rules.Rule
	nextID := uint32(1)
	for i := 0; i < 64; i++ {
		live = append(live, deltaRule(rng, nextID, float64(i%2)))
		nextID++
	}
	set, err := rules.NewSet(live, true)
	if err != nil {
		t.Fatal(err)
	}
	encl := testEnclave(t)
	deltaF, err := New(encl, set, Config{DisablePromotion: true})
	if err != nil {
		t.Fatal(err)
	}
	oracleF, err := New(encl, set, Config{DisablePromotion: true})
	if err != nil {
		t.Fatal(err)
	}

	for step := 0; step < 30; step++ {
		var removes []rules.Rule
		for i := rng.Intn(3); i > 0 && len(live) > 4; i-- {
			j := rng.Intn(len(live))
			removes = append(removes, live[j])
			live = append(live[:j], live[j+1:]...)
		}
		var adds []rules.Rule
		for i := rng.Intn(4); i > 0; i-- {
			adds = append(adds, deltaRule(rng, nextID, float64(i%2)))
			nextID++
		}
		live = append(live, adds...)

		if err := deltaF.ReconfigureDelta(Delta{Adds: adds, Removes: removes}); err != nil {
			t.Fatalf("step %d: ReconfigureDelta: %v", step, err)
		}
		oracleSet, err := rules.NewSet(live, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := oracleF.Reconfigure(oracleSet, nil); err != nil {
			t.Fatalf("step %d: Reconfigure: %v", step, err)
		}

		if got, want := deltaF.RuleCount(), oracleF.RuleCount(); got != want {
			t.Fatalf("step %d: rule count %d, oracle %d", step, got, want)
		}
		for probe := 0; probe < 80; probe++ {
			d := deltaProbe(rng, live)
			if got, want := deltaF.Process(d), oracleF.Process(d); got != want {
				t.Fatalf("step %d: verdict %v, oracle %v for %+v", step, got, want, d.Tuple)
			}
		}
		// The delta filter's live lookup-table footprint must track the
		// rebuilt one exactly (its bounded slack is reported separately and
		// charged to the EPC meter, not to the rule weight).
		if got, want := deltaF.RuleMemoryBytes(), oracleF.RuleMemoryBytes(); got != want {
			t.Fatalf("step %d: RuleMemoryBytes %d, oracle %d", step, got, want)
		}
	}
}

// TestReconfigureDeltaKeepsSurvivorCounters: per-rule byte counters of
// surviving rules ride through a delta (the measurement window continues),
// removed rules' counters vanish, adds start at zero.
func TestReconfigureDeltaKeepsSurvivorCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := deltaRule(rng, 1, 0)
	b := deltaRule(rng, 2, 0)
	set, err := rules.NewSet([]rules.Rule{a, b}, true)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(testEnclave(t), set, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hit := func(r rules.Rule) packet.Descriptor {
		return packet.Descriptor{Tuple: packet.FiveTuple{
			SrcIP: r.Src.Addr, DstIP: packet.MustParseIP("192.0.2.9"),
			SrcPort: 7, DstPort: 53, Proto: packet.ProtoUDP,
		}, Size: 100, Ref: packet.NoRef}
	}
	f.Process(hit(a))
	f.Process(hit(b))

	c := deltaRule(rng, 3, 0)
	if err := f.ReconfigureDelta(Delta{Adds: []rules.Rule{c}, Removes: []rules.Rule{{ID: b.ID}}}); err != nil {
		t.Fatal(err)
	}
	f.Process(hit(a))
	f.Process(hit(c))

	got := f.RuleBytes(false)
	if got[a.ID] != 200 {
		t.Fatalf("survivor counter = %d, want 200 (carried across the delta)", got[a.ID])
	}
	if _, ok := got[b.ID]; ok {
		t.Fatalf("removed rule still reports bytes: %v", got)
	}
	if got[c.ID] != 100 {
		t.Fatalf("added rule counter = %d, want 100", got[c.ID])
	}
}

// TestReconfigureDeltaExactTablePolicy: an adds-only delta preserves the
// learned exact-match entries (appended rules cannot change any existing
// decision); any remove resets them.
func TestReconfigureDeltaExactTablePolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	prob := deltaRule(rng, 1, 0.5) // probabilistic: flows get promoted
	set, err := rules.NewSet([]rules.Rule{prob}, true)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(testEnclave(t), set, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		d := deltaProbe(rng, []rules.Rule{prob})
		f.Process(d)
	}
	if f.Promote() == 0 {
		t.Fatal("no flows promoted; workload bug")
	}
	before := f.ExactEntries()

	if err := f.ReconfigureDelta(Delta{Adds: []rules.Rule{deltaRule(rng, 2, 0)}}); err != nil {
		t.Fatal(err)
	}
	if got := f.ExactEntries(); got != before {
		t.Fatalf("adds-only delta dropped learned entries: %d -> %d", before, got)
	}
	if err := f.ReconfigureDelta(Delta{Removes: []rules.Rule{{ID: 2}}}); err != nil {
		t.Fatal(err)
	}
	if got := f.ExactEntries(); got != 0 {
		t.Fatalf("remove delta kept learned entries: %d", got)
	}
}

// TestReconfigureDeltaDensifyBound: a long add/remove churn lineage can
// never grow the sparse priority domain past densifyFactor x the rule
// count — the dense-rebuild fallback kicks in transparently, survivor
// counters ride through it, and verdicts stay oracle-equivalent.
func TestReconfigureDeltaDensifyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	keep := deltaRule(rng, 1, 0) // permanent rule whose counter must survive every densify
	base := []rules.Rule{keep}
	for i := 0; i < 31; i++ {
		base = append(base, deltaRule(rng, uint32(100+i), 0))
	}
	set, err := rules.NewSet(base, true)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(testEnclave(t), set, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hit := packet.Descriptor{Tuple: packet.FiveTuple{
		SrcIP: keep.Src.Addr, DstIP: packet.MustParseIP("192.0.2.9"),
		SrcPort: 7, DstPort: 53, Proto: packet.ProtoUDP,
	}, Size: 100, Ref: packet.NoRef}
	f.Process(hit)

	// 40 rounds of 16-for-16 churn: without densification the priority
	// domain would reach 32+640; with it, it is bounded by 2x the set.
	prev := []rules.Rule(nil)
	nextID := uint32(5000)
	for round := 0; round < 40; round++ {
		adds := make([]rules.Rule, 16)
		for i := range adds {
			adds[i] = deltaRule(rng, nextID, 0)
			nextID++
		}
		if err := f.ReconfigureDelta(Delta{Adds: adds, Removes: prev}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		prev = adds
	}
	view := f.view.Load()
	n := view.set.Len()
	if domain := int(view.snap.MaxPrio()) + 1; domain > densifyFactor*n {
		t.Fatalf("priority domain %d exceeds bound %d (rules %d): densify never fired", domain, densifyFactor*n, n)
	}
	if got := len(f.ruleBytes); got > densifyFactor*n {
		t.Fatalf("ruleBytes grew to %d slots for %d rules", got, n)
	}
	if got := f.RuleBytes(false)[keep.ID]; got != 100 {
		t.Fatalf("survivor counter lost across densify rebuilds: %d, want 100", got)
	}
	if got := f.Process(hit); got != VerdictDrop {
		t.Fatalf("permanent rule stopped enforcing after churn: %v", got)
	}
}

// TestReconfigureDeltaErrors: unknown removes, duplicate removes, and
// empty results refuse without mutating the filter.
func TestReconfigureDeltaErrors(t *testing.T) {
	f := newFilter(t, Config{})
	before := f.RuleCount()
	if err := f.ReconfigureDelta(Delta{Removes: []rules.Rule{{ID: 999}}}); err == nil {
		t.Fatal("unknown remove accepted")
	}
	if err := f.ReconfigureDelta(Delta{Removes: []rules.Rule{{ID: 1}, {ID: 1}}}); err == nil {
		t.Fatal("duplicate remove accepted")
	}
	if err := f.ReconfigureDelta(Delta{Removes: []rules.Rule{{ID: 1}, {ID: 2}, {ID: 3}}}); err != ErrNoRules {
		t.Fatalf("emptying delta: %v, want ErrNoRules", err)
	}
	if got := f.RuleCount(); got != before {
		t.Fatalf("failed deltas mutated the filter: %d -> %d rules", before, got)
	}
}
