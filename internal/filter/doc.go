// Package filter implements VIF's auditable in-enclave traffic filter —
// the paper's core contribution (§III).
//
// The decision function is stateless in the sense of Eq. 2: the verdict
// for a packet depends only on the packet's five-tuple, the installed rule
// set, and the enclave's sealed secret — never on arrival time, packet
// order, or any previous packet. That property (asserted by this package's
// tests) is what makes the filter auditable: the untrusted host controls
// packet timing and can inject traffic, but cannot steer decisions.
//
// Probabilistic rules ("drop 50% of HTTP flows") are executed
// connection-preservingly via hash-based filtering (Appendix A): a flow is
// allowed iff the leading 64 bits of SHA-256(fiveTuple ‖ secret) fall
// under PAllow·2^64, so all packets of a flow share one fate, the host
// cannot predict or bias fates without the secret, and the empirical allow
// rate converges to PAllow. The hybrid design (Appendix F) additionally
// promotes newly observed flows to exact-match entries in batches, trading
// per-packet hashing for lookup-table growth.
//
// # Data path
//
// The data path is batch-first: ProcessBatch decides a whole burst against
// an immutable rule-table snapshot, deduplicates the burst's flows so a
// packet train costs one decision, accumulates sketch updates and per-rule
// byte counts per batch, and charges the enclave cost meter once per
// burst. Process is the one-packet special case of the same path.
//
// Rule installation has two speeds, both publishing with ONE atomic
// view-pointer store so readers never see a torn table:
//
//   - Reconfigure rebuilds the lookup snapshot from scratch (the oracle
//     path; resets learned state and counters);
//   - ReconfigureDelta applies an incremental changeset via
//     trie.Snapshot.Diff — untouched subtrees are reused, only the
//     delta's paths are copied — so live mid-attack rule updates cost the
//     delta, not the rule count. Surviving rules keep their byte
//     counters; learned exact-match entries survive adds-only deltas.
//
// # Concurrency contract
//
//   - Data-path methods (Process, ProcessBatch, Decision, Promote) and
//     the reconfiguration methods (Reconfigure, ReconfigureDelta,
//     ResetLogs, Snapshot) must all run on the single filter thread: the
//     owner is the control plane in serial mode, or the shard worker in
//     engine mode (which executes reconfigure deltas as batch-boundary
//     tickets precisely to honor this).
//   - Monitoring methods (Stats, ExactEntries, PendingFlows, HashRatio,
//     RuleCount, RuleMemoryBytes) are safe from any goroutine while the
//     data plane runs: counters live in an atomic block the data path
//     updates once per burst, and the rule view is one atomic load.
//
// # Invariants
//
//   - Statelessness (Eq. 2): calling Decision any number of times, in any
//     order, yields identical verdicts; promotion is a pure performance
//     optimization and cannot change any decision.
//   - View atomicity: set, foreign set, trie snapshot, and the
//     priority map travel in one ruleView value; no reader can pair a
//     rule set with the wrong lookup table.
//   - Delta equivalence: after ReconfigureDelta the filter is verdict-
//     equivalent to a filter fully Reconfigured with the successor set
//     (survivors in order + adds appended), with identical
//     RuleMemoryBytes.
package filter
