package filter

import (
	"math"
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

func testEnclave(t testing.TB) *enclave.Enclave {
	t.Helper()
	e, err := enclave.New(enclave.CodeIdentity{
		Name: "vif-filter", Version: "test", BinarySize: 1 << 20,
	}, enclave.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func victimSet(t testing.TB) *rules.Set {
	t.Helper()
	s, err := rules.NewSet([]rules.Rule{
		rules.MustParse("drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53"),
		rules.MustParse("drop 50% tcp from any to 192.0.2.0/24 dport 80"),
		rules.MustParse("allow any from any to 192.0.2.0/24"),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newFilter(t testing.TB, cfg Config) *Filter {
	t.Helper()
	f, err := New(testEnclave(t), victimSet(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func udpTo53(src string) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   packet.MustParseIP(src),
		DstIP:   packet.MustParseIP("192.0.2.10"),
		SrcPort: 5353,
		DstPort: 53,
		Proto:   packet.ProtoUDP,
	}
}

func httpFlow(srcIP uint32, srcPort uint16) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   srcIP,
		DstIP:   packet.MustParseIP("192.0.2.20"),
		SrcPort: srcPort,
		DstPort: 80,
		Proto:   packet.ProtoTCP,
	}
}

func desc(t packet.FiveTuple, size int) packet.Descriptor {
	return packet.Descriptor{Tuple: t, Size: uint16(size), Ref: packet.NoRef}
}

func TestNewRequiresRules(t *testing.T) {
	if _, err := New(testEnclave(t), nil, Config{}); err != ErrNoRules {
		t.Fatalf("err = %v, want ErrNoRules", err)
	}
}

func TestDeterministicRules(t *testing.T) {
	f := newFilter(t, Config{})
	if got := f.Process(desc(udpTo53("10.1.1.1"), 64)); got != VerdictDrop {
		t.Fatalf("DNS amplification packet: %v, want drop", got)
	}
	// Same dport but source outside 10/8 falls through to the allow rule.
	other := udpTo53("172.16.1.1")
	if got := f.Process(desc(other, 64)); got != VerdictAllow {
		t.Fatalf("non-matching source: %v, want allow", got)
	}
	// Traffic to a destination with no rule at all: default allow.
	stray := packet.FiveTuple{
		SrcIP: packet.MustParseIP("8.8.8.8"), DstIP: packet.MustParseIP("198.51.100.1"),
		DstPort: 22, Proto: packet.ProtoTCP,
	}
	if got := f.Process(desc(stray, 64)); got != VerdictAllow {
		t.Fatalf("unmatched traffic: %v, want default allow", got)
	}
	st := f.Stats()
	if st.Processed != 3 || st.Dropped != 1 || st.Allowed != 2 || st.DefaultHits != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestStatelessness(t *testing.T) {
	// Eq. 2: the verdict for p is independent of packet order, interleaved
	// traffic, and clock state. We present the same packets in different
	// orders with adversarial interleavings and demand identical verdicts.
	f := newFilter(t, Config{})
	rng := rand.New(rand.NewSource(1))
	pkts := make([]packet.FiveTuple, 200)
	for i := range pkts {
		pkts[i] = httpFlow(rng.Uint32(), uint16(rng.Intn(60000)+1024))
	}
	want := make(map[packet.FiveTuple]Verdict, len(pkts))
	for _, p := range pkts {
		want[p] = f.Process(desc(p, 64))
	}

	perm := rng.Perm(len(pkts))
	for _, i := range perm {
		// Adversarial injection between evaluations.
		f.Process(desc(httpFlow(rng.Uint32(), 7777), 1500))
		// Clock manipulation by the host.
		for j := 0; j < rng.Intn(5); j++ {
			f.Enclave().Tick()
		}
		if got := f.Process(desc(pkts[i], 64)); got != want[pkts[i]] {
			t.Fatalf("verdict for %v changed to %v after reordering/injection", pkts[i], got)
		}
	}
}

func TestConnectionPreservation(t *testing.T) {
	// All packets of one five-tuple flow share one fate, per Appendix A.
	f := newFilter(t, Config{})
	flow := httpFlow(packet.MustParseIP("203.0.113.50"), 33333)
	first := f.Process(desc(flow, 64))
	for i := 0; i < 100; i++ {
		if got := f.Process(desc(flow, 64+i)); got != first {
			t.Fatalf("packet %d of flow got %v, first got %v", i, got, first)
		}
	}
}

func TestProbabilisticRuleConvergesToPAllow(t *testing.T) {
	// The 50%-drop rule must drop ≈50% of *flows* (law of large numbers).
	f := newFilter(t, Config{})
	rng := rand.New(rand.NewSource(2))
	const flows = 4000
	allowed := 0
	for i := 0; i < flows; i++ {
		flow := httpFlow(rng.Uint32(), uint16(rng.Intn(60000)+1024))
		if f.Process(desc(flow, 64)) == VerdictAllow {
			allowed++
		}
	}
	got := float64(allowed) / flows
	if math.Abs(got-0.5) > 0.03 {
		t.Fatalf("allow rate %.3f, want ≈0.50 (±0.03)", got)
	}
}

func TestProbabilisticRatesAcrossPAllow(t *testing.T) {
	for _, pAllow := range []float64{0.1, 0.25, 0.8} {
		set, err := rules.NewSet([]rules.Rule{{
			Dst:    rules.MustParsePrefix("192.0.2.0/24"),
			Proto:  packet.ProtoTCP,
			PAllow: pAllow,
		}}, false)
		if err != nil {
			t.Fatal(err)
		}
		f, err := New(testEnclave(t), set, Config{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(pAllow * 100)))
		const flows = 4000
		allowed := 0
		for i := 0; i < flows; i++ {
			if f.Process(desc(httpFlow(rng.Uint32(), uint16(rng.Intn(60000)+1)), 64)) == VerdictAllow {
				allowed++
			}
		}
		got := float64(allowed) / flows
		if math.Abs(got-pAllow) > 0.035 {
			t.Fatalf("PAllow=%.2f: allow rate %.3f", pAllow, got)
		}
	}
}

func TestSecretsDifferentiateFilters(t *testing.T) {
	// Two enclaves with the same rules must make *different* probabilistic
	// flow choices (independent secrets), while each being internally
	// deterministic.
	f1 := newFilter(t, Config{})
	f2, err := New(testEnclave(t), victimSet(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	same := 0
	const flows = 500
	for i := 0; i < flows; i++ {
		flow := httpFlow(rng.Uint32(), uint16(rng.Intn(60000)+1))
		if f1.Decision(flow) == f2.Decision(flow) {
			same++
		}
	}
	// Independent fair coins agree ~50%; >90% agreement would imply a
	// shared secret.
	if same > flows*9/10 {
		t.Fatalf("filters agreed on %d/%d flows: secrets not independent", same, flows)
	}
}

func TestPromotionPreservesDecisions(t *testing.T) {
	f := newFilter(t, Config{})
	rng := rand.New(rand.NewSource(4))
	flows := make([]packet.FiveTuple, 300)
	before := make([]Verdict, len(flows))
	for i := range flows {
		flows[i] = httpFlow(rng.Uint32(), uint16(rng.Intn(60000)+1))
		before[i] = f.Process(desc(flows[i], 64))
	}
	if f.PendingFlows() == 0 {
		t.Fatal("no flows queued for promotion")
	}
	promoted := f.Promote()
	if promoted == 0 {
		t.Fatal("promotion promoted nothing")
	}
	if f.ExactEntries() != promoted {
		t.Fatalf("exact entries %d != promoted %d", f.ExactEntries(), promoted)
	}
	for i, flow := range flows {
		if got := f.Process(desc(flow, 64)); got != before[i] {
			t.Fatalf("flow %d verdict changed after promotion: %v -> %v", i, before[i], got)
		}
	}
	// Promoted flows are now exact hits, not hash evaluations.
	preHashed := f.Stats().Hashed
	f.Process(desc(flows[0], 64))
	if f.Stats().Hashed != preHashed {
		t.Fatal("promoted flow still hashed")
	}
}

func TestPromoteOnlyProbabilisticFlows(t *testing.T) {
	f := newFilter(t, Config{})
	f.Process(desc(udpTo53("10.3.3.3"), 64)) // deterministic: no queue
	if f.PendingFlows() != 0 {
		t.Fatal("deterministic flow queued for promotion")
	}
	if n := f.Promote(); n != 0 {
		t.Fatalf("Promote() = %d, want 0", n)
	}
}

func TestMaxPendingBound(t *testing.T) {
	f := newFilter(t, Config{MaxPending: 10})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		f.Process(desc(httpFlow(rng.Uint32(), uint16(i+1)), 64))
	}
	if got := f.PendingFlows(); got > 10 {
		t.Fatalf("pending %d exceeds MaxPending 10", got)
	}
}

func TestDisablePromotion(t *testing.T) {
	f := newFilter(t, Config{DisablePromotion: true})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		f.Process(desc(httpFlow(rng.Uint32(), uint16(i+1)), 64))
	}
	if f.PendingFlows() != 0 {
		t.Fatal("promotion queue grew despite DisablePromotion")
	}
}

func TestDefaultDropSemantics(t *testing.T) {
	set, err := rules.NewSet([]rules.Rule{
		rules.MustParse("allow tcp from any to 192.0.2.0/24 dport 443"),
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(testEnclave(t), set, Config{})
	if err != nil {
		t.Fatal(err)
	}
	allowed := packet.FiveTuple{
		SrcIP: 1, DstIP: packet.MustParseIP("192.0.2.1"), DstPort: 443, Proto: packet.ProtoTCP,
	}
	if got := f.Process(desc(allowed, 64)); got != VerdictAllow {
		t.Fatalf("matching packet: %v", got)
	}
	stray := allowed
	stray.DstPort = 80
	if got := f.Process(desc(stray, 64)); got != VerdictDrop {
		t.Fatalf("unmatched with default drop: %v", got)
	}
}

func TestMisrouteDetection(t *testing.T) {
	mine, err := rules.NewSet([]rules.Rule{
		rules.MustParse("drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53"),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := rules.NewSet([]rules.Rule{
		rules.MustParse("drop tcp from 172.16.0.0/12 to 192.0.2.0/24 dport 80"),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(testEnclave(t), mine, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f.SetForeign(foreign)

	// A packet belonging to the foreign shard arrives here: misroute.
	misrouted := packet.FiveTuple{
		SrcIP: packet.MustParseIP("172.16.5.5"), DstIP: packet.MustParseIP("192.0.2.1"),
		DstPort: 80, Proto: packet.ProtoTCP,
	}
	f.Process(desc(misrouted, 64))
	if got := f.Stats().Misrouted; got != 1 {
		t.Fatalf("Misrouted = %d, want 1", got)
	}
	// Genuinely unmatched traffic is not a misroute.
	stray := packet.FiveTuple{SrcIP: 9, DstIP: 10, DstPort: 22, Proto: packet.ProtoTCP}
	f.Process(desc(stray, 64))
	if got := f.Stats().Misrouted; got != 1 {
		t.Fatalf("stray counted as misroute: %d", got)
	}
}

func TestReconfigureSwapsRules(t *testing.T) {
	f := newFilter(t, Config{})
	pkt := udpTo53("10.1.1.1")
	if got := f.Process(desc(pkt, 64)); got != VerdictDrop {
		t.Fatalf("before: %v", got)
	}
	newSet, err := rules.NewSet([]rules.Rule{
		rules.MustParse("allow udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53"),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Reconfigure(newSet, nil); err != nil {
		t.Fatal(err)
	}
	if got := f.Process(desc(pkt, 64)); got != VerdictAllow {
		t.Fatalf("after reconfigure: %v", got)
	}
	if err := f.Reconfigure(nil, nil); err != ErrNoRules {
		t.Fatalf("nil reconfigure: %v", err)
	}
}

func TestCopyModeCosts(t *testing.T) {
	// Full copy must cost more than near-zero-copy, which must cost more
	// than native, for identical traffic (the Figure 8 ordering).
	const n = 1000
	costs := make(map[CopyMode]float64)
	for _, mode := range []CopyMode{CopyModeNative, CopyModeFull, CopyModeNearZero} {
		f := newFilter(t, Config{Mode: mode})
		rng := rand.New(rand.NewSource(7))
		f.Enclave().ResetMeter()
		for i := 0; i < n; i++ {
			f.Process(desc(httpFlow(rng.Uint32(), uint16(i+1)), 1500))
		}
		costs[mode] = f.Enclave().VirtualNs() / n
	}
	if !(costs[CopyModeNative] < costs[CopyModeNearZero] && costs[CopyModeNearZero] < costs[CopyModeFull]) {
		t.Fatalf("cost ordering violated: native=%.1f zero=%.1f full=%.1f",
			costs[CopyModeNative], costs[CopyModeNearZero], costs[CopyModeFull])
	}
}

func TestHashRatioTracking(t *testing.T) {
	f := newFilter(t, Config{DisablePromotion: true})
	rng := rand.New(rand.NewSource(8))
	// Half the packets hit the probabilistic HTTP rule, half the
	// deterministic allow rule.
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			f.Process(desc(httpFlow(rng.Uint32(), uint16(i+1)), 64))
		} else {
			f.Process(desc(packet.FiveTuple{
				SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.40"),
				DstPort: 22, Proto: packet.ProtoTCP,
			}, 64))
		}
	}
	if got := f.HashRatio(); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("HashRatio = %.3f, want 0.5", got)
	}
}

func TestThroughputDegradesWithRules(t *testing.T) {
	// Figure 3a's shape: per-packet virtual cost grows substantially once
	// the rule table outgrows the cache budget. The traffic must hit rules
	// (the paper's attack workload): since the compiled classifier replaced
	// the per-node candidate scan, a non-matching packet short-circuits on
	// its first empty attribute class and touches no footprint-dependent
	// memory at all — the cliff is a property of the resident table size,
	// observed through the references matching traffic makes into it.
	perPacket := func(nRules int) float64 {
		rng := rand.New(rand.NewSource(9))
		rs := make([]rules.Rule, nRules)
		for i := range rs {
			rs[i] = rules.Rule{
				Src:   rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
				Dst:   rules.MustParsePrefix("192.0.2.0/24"),
				Proto: packet.ProtoUDP,
			}
		}
		set, err := rules.NewSet(rs, true)
		if err != nil {
			t.Fatal(err)
		}
		f, err := New(testEnclave(t), set, Config{})
		if err != nil {
			t.Fatal(err)
		}
		f.Enclave().ResetMeter()
		const n = 2000
		for i := 0; i < n; i++ {
			r := &set.Rules[rng.Intn(set.Len())]
			f.Process(desc(packet.FiveTuple{
				SrcIP: r.Src.Addr | (rng.Uint32() &^ r.Src.Mask()),
				DstIP: packet.MustParseIP("192.0.2.1"), Proto: packet.ProtoUDP,
			}, 64))
		}
		return f.Enclave().VirtualNs() / n
	}
	small := perPacket(100)
	large := perPacket(20000)
	if large < small*2 {
		t.Fatalf("20000 rules (%.0f ns/pkt) not meaningfully slower than 100 (%.0f ns/pkt)", large, small)
	}
}

func TestMemoryAccounting(t *testing.T) {
	f := newFilter(t, Config{})
	used := f.Enclave().MemoryUsed()
	// Binary (1 MiB) + two 1 MiB sketches + table must all be charged.
	if used < (1<<20)+2*(1<<20) {
		t.Fatalf("MemoryUsed = %d, missing sketch/table charges", used)
	}
}

func BenchmarkProcessNearZeroCopy3000Rules(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	rs := make([]rules.Rule, 3000)
	for i := range rs {
		rs[i] = rules.Rule{
			Src:   rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst:   rules.MustParsePrefix("192.0.2.0/24"),
			Proto: packet.ProtoUDP,
		}
	}
	set, err := rules.NewSet(rs, true)
	if err != nil {
		b.Fatal(err)
	}
	f, err := New(testEnclave(b), set, Config{})
	if err != nil {
		b.Fatal(err)
	}
	descs := make([]packet.Descriptor, 1024)
	for i := range descs {
		descs[i] = desc(packet.FiveTuple{
			SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.1"), Proto: packet.ProtoUDP,
		}, 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(descs[i&1023])
	}
}

func BenchmarkDecision(b *testing.B) {
	f, err := New(testEnclave(b), victimSet(b), Config{})
	if err != nil {
		b.Fatal(err)
	}
	flow := httpFlow(packet.MustParseIP("203.0.113.9"), 1234)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Decision(flow)
	}
}
