package filter

import (
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/packet"
)

func TestSnapshotRoundTrip(t *testing.T) {
	f := newFilter(t, Config{})
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 500; i++ {
		f.Process(desc(httpFlow(rng.Uint32(), uint16(i+1)), 64))
	}
	for _, kind := range []LogKind{LogIncoming, LogOutgoing} {
		snap, err := f.Snapshot(kind, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := VerifySnapshot(f.Enclave().MACKey(), snap)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if s.Total() == 0 {
			t.Fatalf("%v snapshot empty", kind)
		}
	}
}

func TestSnapshotOutgoingCountsOnlyAllowed(t *testing.T) {
	f := newFilter(t, Config{})
	// 10 dropped DNS packets, 5 allowed SSH packets.
	for i := 0; i < 10; i++ {
		f.Process(desc(udpTo53("10.1.1.1"), 64))
	}
	ssh := packet.FiveTuple{
		SrcIP: packet.MustParseIP("203.0.113.1"), DstIP: packet.MustParseIP("192.0.2.2"),
		SrcPort: 9999, DstPort: 22, Proto: packet.ProtoTCP,
	}
	for i := 0; i < 5; i++ {
		f.Process(desc(ssh, 64))
	}
	snapOut, err := f.Snapshot(LogOutgoing, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := VerifySnapshot(f.Enclave().MACKey(), snapOut)
	if err != nil {
		t.Fatal(err)
	}
	if out.Total() != 5 {
		t.Fatalf("outgoing total = %d, want 5 (drops must not be logged)", out.Total())
	}
	snapIn, err := f.Snapshot(LogIncoming, 2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := VerifySnapshot(f.Enclave().MACKey(), snapIn)
	if err != nil {
		t.Fatal(err)
	}
	if in.Total() != 15 {
		t.Fatalf("incoming total = %d, want 15 (everything is logged)", in.Total())
	}
}

func TestSnapshotTamperDetected(t *testing.T) {
	f := newFilter(t, Config{})
	f.Process(desc(udpTo53("10.1.1.1"), 64))
	snap, err := f.Snapshot(LogIncoming, 1)
	if err != nil {
		t.Fatal(err)
	}
	key := f.Enclave().MACKey()

	// Host flips a counter byte.
	tampered := *snap
	tampered.Data = append([]byte(nil), snap.Data...)
	tampered.Data[len(tampered.Data)-1] ^= 0xff
	if _, err := VerifySnapshot(key, &tampered); err != ErrBadSnapshotMAC {
		t.Fatalf("data tamper: err = %v, want ErrBadSnapshotMAC", err)
	}

	// Host relabels the log kind (presenting the incoming log as outgoing).
	relabel := *snap
	relabel.Kind = LogOutgoing
	if _, err := VerifySnapshot(key, &relabel); err != ErrBadSnapshotMAC {
		t.Fatalf("kind tamper: err = %v, want ErrBadSnapshotMAC", err)
	}

	// Host rolls back the sequence number.
	rollback := *snap
	rollback.Seq = 0
	if _, err := VerifySnapshot(key, &rollback); err != ErrBadSnapshotMAC {
		t.Fatalf("seq tamper: err = %v, want ErrBadSnapshotMAC", err)
	}

	// Wrong key (host guessing) fails too.
	var badKey [32]byte
	if _, err := VerifySnapshot(badKey, snap); err != ErrBadSnapshotMAC {
		t.Fatalf("wrong key: err = %v, want ErrBadSnapshotMAC", err)
	}
}

func TestSnapshotUnknownKind(t *testing.T) {
	f := newFilter(t, Config{})
	if _, err := f.Snapshot(LogKind(99), 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestResetLogs(t *testing.T) {
	f := newFilter(t, Config{})
	f.Process(desc(udpTo53("10.1.1.1"), 64))
	f.ResetLogs()
	snap, err := f.Snapshot(LogIncoming, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := VerifySnapshot(f.Enclave().MACKey(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total() != 0 {
		t.Fatalf("after reset, incoming total = %d", s.Total())
	}
}
