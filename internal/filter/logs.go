package filter

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/innetworkfiltering/vif/internal/sketch"
)

// LogKind distinguishes the two accountable packet logs of §III-B.
type LogKind uint8

// Log kinds.
const (
	// LogIncoming is the per-source-IP log of packets entering the filter;
	// neighbor ASes compare it with their own sent-traffic logs to detect
	// drop-before-filtering.
	LogIncoming LogKind = iota + 1
	// LogOutgoing is the per-five-tuple log of packets the filter allowed;
	// the victim compares it with its received-traffic log to detect
	// injection-after-filtering and drop-after-filtering.
	LogOutgoing
)

// String renders the log kind.
func (k LogKind) String() string {
	switch k {
	case LogIncoming:
		return "incoming"
	case LogOutgoing:
		return "outgoing"
	default:
		return fmt.Sprintf("logkind(%d)", uint8(k))
	}
}

// ErrBadSnapshotMAC indicates an authenticated snapshot failed to verify:
// the untrusted host modified log data in transit.
var ErrBadSnapshotMAC = errors.New("filter: snapshot MAC verification failed")

// SignedSnapshot is an authenticated copy of one packet log. The MAC key
// is held inside the enclave and released to the verifier only over the
// attested secure channel, so a host that tampers with snapshot bytes is
// caught by Verify.
type SignedSnapshot struct {
	Kind      LogKind
	EnclaveID uint64
	Seq       uint64 // snapshot sequence within the filtering round
	Data      []byte // canonical sketch encoding
	MAC       [32]byte
}

func snapshotMAC(key [32]byte, kind LogKind, enclaveID, seq uint64, data []byte) [32]byte {
	mac := hmac.New(sha256.New, key[:])
	var hdr [17]byte
	hdr[0] = byte(kind)
	binary.BigEndian.PutUint64(hdr[1:9], enclaveID)
	binary.BigEndian.PutUint64(hdr[9:17], seq)
	mac.Write(hdr[:])
	mac.Write(data)
	var out [32]byte
	mac.Sum(out[:0])
	return out
}

// Snapshot returns an authenticated copy of the requested log. seq lets
// the verifier order snapshots and detect rollback within a round.
func (f *Filter) Snapshot(kind LogKind, seq uint64) (*SignedSnapshot, error) {
	var s *sketch.Sketch
	switch kind {
	case LogIncoming:
		s = f.inLog
	case LogOutgoing:
		s = f.outLog
	default:
		return nil, fmt.Errorf("filter: unknown log kind %d", kind)
	}
	data, err := s.Clone().MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("filter: marshal log: %w", err)
	}
	snap := &SignedSnapshot{
		Kind:      kind,
		EnclaveID: f.encl.ID(),
		Seq:       seq,
		Data:      data,
	}
	snap.MAC = snapshotMAC(f.encl.MACKey(), kind, snap.EnclaveID, seq, data)
	return snap, nil
}

// VerifySnapshot checks a snapshot's MAC with the key obtained over the
// attested channel and decodes the sketch.
func VerifySnapshot(key [32]byte, snap *SignedSnapshot) (*sketch.Sketch, error) {
	want := snapshotMAC(key, snap.Kind, snap.EnclaveID, snap.Seq, snap.Data)
	if !hmac.Equal(want[:], snap.MAC[:]) {
		return nil, ErrBadSnapshotMAC
	}
	var s sketch.Sketch
	if err := s.UnmarshalBinary(snap.Data); err != nil {
		return nil, fmt.Errorf("filter: decode snapshot: %w", err)
	}
	return &s, nil
}

// ResetLogs clears both packet logs; the control plane calls it at each
// filtering-round boundary so verifiers compare like-for-like windows.
func (f *Filter) ResetLogs() {
	f.inLog.Reset()
	f.outLog.Reset()
}
