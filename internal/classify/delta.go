package classify

import (
	"math/bits"
	"slices"

	"github.com/innetworkfiltering/vif/internal/rules"
)

// deltaChurnFactor bounds the incremental path: when the touched rules
// (adds + removes) exceed 1/deltaChurnFactor of the successor set, a
// fresh Compile is cheaper and tighter than patching five tables.
const deltaChurnFactor = 4

// Delta describes a reconfiguration step from the program's current rule
// set to a successor set, in the shape the filter's ReconfigureDelta
// already produces.
//
// Rules is the full successor set in ascending-priority order: survivors
// first (keeping their old priorities), then the adds appended at
// Rules[AddStart:]. Prios maps rule index to priority (nil = identity)
// and must be strictly ascending; every add's priority must exceed every
// survivor's (the filter allocates add priorities past the predecessor's
// MaxPrio). RemovedRules/RemovedPrios list the dropped rules in
// ascending-priority order.
type Delta struct {
	Rules        []rules.Rule
	Prios        []int32
	MaxPrio      int32
	AddStart     int
	RemovedRules []rules.Rule
	RemovedPrios []int32
}

// Delta derives the successor program. The receiver is not modified —
// concurrent readers of the old program are unaffected — and shares only
// immutable boundary tables with the result.
//
// Per attribute it first checks whether the step changes the elementary
// interval structure at all (a boundary appearing, or its refcount
// dying). Either way memberships are patched, never recompiled: survivors
// stream from each new interval's source old interval minus the removed
// priorities (dense intervals as word-wise AND-NOT against one removed-
// priority bitmap), adds append over their covered spans. When the
// structure did shift, the successor boundary table is a linear merge of
// the old one with the net changes, and an old→new interval map re-homes
// the streams. The result is provably identical (deep-equal) to a fresh
// compile of the same inputs, in O(memberships + changed·log bounds).
// Past the churn threshold the whole program recompiles instead.
func (p *Program) Delta(d Delta) *Program {
	changed := (len(d.Rules) - d.AddStart) + len(d.RemovedRules)
	if len(d.Rules) == 0 || deltaChurnFactor*changed > len(d.Rules) {
		return Compile(d.Rules, d.Prios, d.MaxPrio)
	}
	q := &Program{
		words:     int(d.MaxPrio+64) >> 6,
		liveRules: len(d.Rules),
	}
	prioOf := identityOr(d.Prios)
	q.ruleOf = make([]int32, int(d.MaxPrio)+1)
	for i := range q.ruleOf {
		q.ruleOf[i] = -1
	}
	for i := range d.Rules {
		q.ruleOf[prioOf(i)] = int32(i)
	}
	for a := 0; a < numAttrs; a++ {
		old := &p.attrs[a]
		net, flip := boundaryLiveness(old, &d, a)
		if flip {
			// The interval structure shifts: merge the boundary tables,
			// re-home memberships via the old→new interval map, and patch
			// the direct-index tables (leaf chunks of untouched /16 blocks
			// are reused by reference).
			nb, nref := mergedBounds(old, net)
			tb := patchAttr(old, &d, a, p.words, q.words, prioOf,
				nb, nref, intervalMap(old.bounds, nb))
			tb.idx = patchIndex(a, nb, old, net)
			q.attrs[a] = tb
		} else {
			// Same intervals: share the old boundary slice (and therefore
			// the old index, a pure function of it), patch the refcounts,
			// stream memberships positionally.
			br := old.boundRef
			if len(net) > 0 {
				br = slices.Clone(old.boundRef)
				for v, dn := range net {
					if dn != 0 {
						br[boundIndex(old.bounds, v)] += dn
					}
				}
			}
			tb := patchAttr(old, &d, a, p.words, q.words, prioOf,
				old.bounds, br, nil)
			tb.idx = old.idx
			q.attrs[a] = tb
		}
	}
	return q
}

// mergedBounds derives the successor boundary table by merging the old
// sorted boundaries with the delta's net refcount changes — O(bounds +
// changed·log changed) instead of re-sorting every boundary of the full
// successor set. Boundaries whose refcount reaches zero are dropped; new
// values are spliced in place.
func mergedBounds(tb *attrTable, net map[uint32]int32) ([]uint32, []int32) {
	keys := make([]uint32, 0, len(net))
	for v, dn := range net {
		if dn != 0 {
			keys = append(keys, v)
		}
	}
	slices.Sort(keys)
	bounds := make([]uint32, 0, len(tb.bounds)+len(keys))
	refs := make([]int32, 0, len(tb.bounds)+len(keys))
	i := 0
	for _, v := range keys {
		for i < len(tb.bounds) && tb.bounds[i] < v {
			bounds = append(bounds, tb.bounds[i])
			refs = append(refs, tb.boundRef[i])
			i++
		}
		n := net[v]
		if i < len(tb.bounds) && tb.bounds[i] == v {
			n += tb.boundRef[i]
			i++
		}
		if n != 0 {
			bounds = append(bounds, v)
			refs = append(refs, n)
		}
	}
	bounds = append(bounds, tb.bounds[i:]...)
	refs = append(refs, tb.boundRef[i:]...)
	if len(bounds) == 0 {
		return nil, nil
	}
	return bounds, refs
}

// intervalMap maps each successor elementary interval (index = number of
// new boundaries at or below its values) to the predecessor interval
// containing its left edge. A split (inserted boundary) maps several new
// intervals to one old one; a merge (dead boundary) picks the leftmost
// constituent, which is safe because a boundary only dies when every rule
// contributing it was removed — so the merged intervals' survivor sets
// are identical.
func intervalMap(oldBounds, newBounds []uint32) []int32 {
	m := make([]int32, len(newBounds)+1)
	i := 0
	for j := 1; j <= len(newBounds); j++ {
		for i < len(oldBounds) && oldBounds[i] <= newBounds[j-1] {
			i++
		}
		m[j] = int32(i)
	}
	return m
}

// boundIndex locates v in the sorted boundary table, or -1.
func boundIndex(bounds []uint32, v uint32) int {
	i := upperBound(bounds, v) - 1
	if i >= 0 && bounds[i] == v {
		return i
	}
	return -1
}

// boundaryLiveness nets the delta's boundary refcount changes on
// attribute a and reports whether any boundary's liveness flips (a new
// boundary value appears, or an existing one's refcount reaches zero) —
// the condition under which the interval structure shifts and the patch
// must merge boundary tables and re-home memberships through an
// interval map.
func boundaryLiveness(tb *attrTable, d *Delta, a int) (map[uint32]int32, bool) {
	var net map[uint32]int32
	acc := func(r *rules.Rule, dn int32) {
		lo, hi, any := attrRange(r, a)
		if any {
			return
		}
		if net == nil {
			net = make(map[uint32]int32)
		}
		if lo > 0 {
			net[lo] += dn
		}
		if hi != ^uint32(0) {
			net[hi+1] += dn
		}
	}
	for i := range d.RemovedRules {
		acc(&d.RemovedRules[i], -1)
	}
	adds := d.Rules[d.AddStart:]
	for i := range adds {
		acc(&adds[i], 1)
	}
	for v, dn := range net {
		if dn == 0 {
			continue
		}
		i := boundIndex(tb.bounds, v)
		if i < 0 || tb.boundRef[i]+dn == 0 {
			return net, true
		}
	}
	return net, false
}

// patchAttr rebuilds attribute a's membership arenas over the successor
// boundary table: every new interval's list is streamed from its source
// old interval (srcIv maps new→old; nil means the structure is unchanged
// and the mapping is the identity) with removed priorities dropped, then
// the adds are appended over their covered spans (their priorities all
// exceed the survivors', so fill order keeps lists sorted). The result
// deep-equals compileAttr over the successor set, in O(memberships +
// changed·log bounds) — no per-survivor binary searches.
func patchAttr(old *attrTable, d *Delta, a, oldWords, words int, prioOf func(int) int32, bounds []uint32, boundRef []int32, srcIv []int32) attrTable {
	nIv := len(bounds) + 1
	oldNIv := len(old.bounds) + 1
	tb := attrTable{bounds: bounds, boundRef: boundRef}

	// One bitmap over all removed priorities, any-rules and specific
	// alike: a removed rule's priority appears in exactly one place per
	// attribute (the any-list or its covered intervals), so a single
	// membership test filters both, and dense intervals shed every
	// removal with a word-wise AND-NOT instead of per-bit iteration.
	remBits := make([]uint64, oldWords)
	for _, pr := range d.RemovedPrios {
		remBits[uint32(pr)>>6] |= 1 << (uint32(pr) & 63)
	}
	removed := func(pr int32) bool {
		return remBits[uint32(pr)>>6]>>(uint32(pr)&63)&1 != 0
	}

	// Removed rules span the OLD intervals (their boundaries were alive
	// there); adds span the NEW ones (their boundaries are merged in).
	var remCount, addCount []uint32
	remAnyCount := 0
	for i := range d.RemovedRules {
		lo, hi, any := attrRange(&d.RemovedRules[i], a)
		if any {
			remAnyCount++
			continue
		}
		if remCount == nil {
			remCount = make([]uint32, oldNIv)
		}
		lb, rb := span(old.bounds, lo, hi)
		for j := lb; j <= rb; j++ {
			remCount[j]++
		}
	}
	adds := d.Rules[d.AddStart:]
	addSpans := make([][2]int32, len(adds))
	addAny := 0
	for i := range adds {
		lo, hi, any := attrRange(&adds[i], a)
		if any {
			addSpans[i] = [2]int32{-1, -1}
			addAny++
			continue
		}
		if addCount == nil {
			addCount = make([]uint32, nIv)
		}
		lb, rb := span(bounds, lo, hi)
		addSpans[i] = [2]int32{int32(lb), int32(rb)}
		for j := lb; j <= rb; j++ {
			addCount[j]++
		}
	}

	srcOf := func(j int) int {
		if srcIv != nil {
			return int(srcIv[j])
		}
		return j
	}
	tb.refs = make([]classRef, nIv)
	sparseTotal := 0
	for j := 0; j < nIv; j++ {
		o := srcOf(j)
		n := old.refs[o].n
		if remCount != nil {
			n -= remCount[o]
		}
		if addCount != nil {
			n += addCount[j]
		}
		if n > sparseMax {
			tb.refs[j] = classRef{off: uint32(tb.denseClasses * words), n: n}
			tb.denseClasses++
		} else {
			tb.refs[j] = classRef{off: uint32(sparseTotal), n: n}
			sparseTotal += int(n)
		}
	}
	tb.sparse = make([]int32, sparseTotal)
	if tb.denseClasses > 0 {
		tb.dense = make([]uint64, tb.denseClasses*words)
	}
	cursor := make([]uint32, nIv)
	emit := func(j int, pr int32) {
		ref := tb.refs[j]
		if ref.dense() {
			tb.dense[ref.off+uint32(pr)>>6] |= 1 << (uint32(pr) & 63)
		} else {
			tb.sparse[ref.off+cursor[j]] = pr
			cursor[j]++
		}
	}
	for j := 0; j < nIv; j++ {
		oref := old.refs[srcOf(j)]
		if oref.n == 0 {
			continue
		}
		if oref.dense() {
			src := old.dense[int(oref.off) : int(oref.off)+oldWords]
			if nref := tb.refs[j]; nref.dense() {
				// Dense stays dense: copy surviving bits a word at a
				// time; adds land later via emit's dense arm. Words
				// past min(oldWords, words) hold only dead priorities.
				dst := tb.dense[int(nref.off) : int(nref.off)+words]
				for w := 0; w < oldWords && w < words; w++ {
					dst[w] = src[w] &^ remBits[w]
				}
				continue
			}
			for w := 0; w < oldWords; w++ {
				x := src[w] &^ remBits[w]
				for x != 0 {
					pr := int32(w<<6 + bits.TrailingZeros64(x))
					x &= x - 1
					emit(j, pr)
				}
			}
		} else {
			for _, pr := range old.sparse[oref.off : oref.off+oref.n] {
				if !removed(pr) {
					emit(j, pr)
				}
			}
		}
	}
	for i := range adds {
		sp := addSpans[i]
		if sp[0] < 0 {
			continue
		}
		pr := prioOf(d.AddStart + i)
		for j := sp[0]; j <= sp[1]; j++ {
			emit(int(j), pr)
		}
	}

	if anyTotal := len(old.anyList) - remAnyCount + addAny; anyTotal > 0 {
		tb.anyList = make([]int32, 0, anyTotal)
		tb.anyBits = make([]uint64, words)
		keep := func(pr int32) {
			tb.anyList = append(tb.anyList, pr)
			tb.anyBits[uint32(pr)>>6] |= 1 << (uint32(pr) & 63)
		}
		for _, pr := range old.anyList {
			if !removed(pr) {
				keep(pr)
			}
		}
		for i := range adds {
			if addSpans[i][0] < 0 {
				keep(prioOf(d.AddStart + i))
			}
		}
	}
	return tb
}
