// Package classify compiles a rule set into a multi-attribute packet
// classifier whose per-packet cost is flat in the rule count: one
// direct-index interval translation per attribute (src addr, dst addr,
// src port, dst port, protocol) plus an intersection of small per-class
// candidate sets, lowest priority winning. It is the bit-vector scheme
// from yanet2's generic filter, adapted to this repo's copy-on-write
// snapshot discipline, with DXR/Poptrie-style lookup tables in front of
// the interval boundaries.
//
// # Role
//
// The filter's hot path (internal/filter) used to resolve a packet by
// walking src-prefix trie levels and then linearly scanning each node's
// candidate rules with rule.Matches — O(rules-per-node) for rule shapes
// that share a src prefix (reflection floods keyed by src port, carpet
// bombing keyed by dst range). A compiled Program replaces that scan:
// Classify(t) answers exactly what the linear first-match oracle
// (ascending priority, rules.Rule.Matches) would, at a cost governed by
// how many rules share a single packet's five attribute classes, not by
// the rule-set size.
//
// Design notes: all five attributes — addresses and ports/proto alike —
// are compiled through one uniform uint32 interval-table representation
// rather than reusing the trie arena for addresses; trie node ids are
// not sound equivalence classes without leaf-pushing, and the uniform
// table keeps the probe loop branch-light. Per-interval memberships are
// adaptive: a sorted priority list in a shared arena while small
// (<= sparseMax), a dense bitset beyond that. Rules leaving an attribute
// unrestricted are factored into one per-attribute any-list instead of
// being duplicated into every interval, keeping compiled size linear in
// the rule count.
//
// Interval resolution is O(1), not a binary search: compile time also
// tabulates value→interval translations (index.go) — a 256-entry array
// for proto, 65536-entry uint16 arrays for the ports, and for addresses
// a two-level chunked table (a 2^16-entry root over the high 16 bits
// whose entry inlines the interval index when no boundary falls inside
// that /16 block, or points to a leaf chunk that is binary-searched
// while small and value-indexed once dense) — one or two dependent loads
// where the search paid log(bounds). Boundary tables small enough to
// stay in one cache line (<= hotBoundsMax bounds) build no index.
// ClassifySearch retains the binary-search probe with identical verdicts
// and ref accounting; it is the property-test oracle and the recorded
// classify_probe baseline. ClassifyBatch classifies bursts breadth-first
// — each attribute resolved for the whole burst as a stage over
// structure-of-arrays scratch, overlapping the index loads across
// packets, then the per-packet intersections — returning per-packet
// Results field-for-field equal to scalar Classify.
//
// # Concurrency contract
//
// A Program is immutable after Compile returns: Classify, ClassifySearch
// and ClassifyBatch perform no writes to it, so any number of goroutines
// may classify against the same Program concurrently without
// synchronization (each ClassifyBatch caller owns its BatchScratch,
// which is mutable and single-caller). Reconfiguration is copy-on-write
// — Delta builds and returns a new Program, sharing only immutable
// boundary and index tables with its predecessor, which concurrent
// readers may still be scanning. The filter swaps Programs through the
// same atomic ruleView pointer as trie snapshots; Compile/Delta are
// called from the single writer (the filter thread), never from the
// packet path.
//
// # Invariants
//
//   - Compile/Delta require rules in strictly ascending priority order
//     (the filter's natural order: survivors keep their slots, adds are
//     appended past the predecessor's MaxPrio). Fill order then keeps
//     every membership list priority-sorted with no explicit sort.
//   - Classify returns the lowest-priority matching rule — identical,
//     priority ties impossible by construction, to scanning the rule
//     slice in priority order calling Matches. ClassifySearch and
//     ClassifyBatch return the same rule, priority, ref count, and ok
//     for every tuple (property- and fuzz-tested, including every
//     elementary-interval boundary value and its neighbors).
//   - A Program evolved by Delta deep-equals a fresh Compile of the same
//     successor set: per attribute, either the boundary structure
//     changed (some boundary's refcount appeared or died) and the
//     attribute's memberships are re-homed through an interval map with
//     only the index chunks of changed /16 blocks rebuilt, or
//     memberships are patched over the unchanged interval table — whose
//     index tables, a pure function of the boundary table, are shared by
//     reference. Past deltaChurnFactor the whole program recompiles.
//   - MemoryBytes is priority-numbering-invariant: it prices bitsets at
//     dense-equivalent width (ceil(liveRules/64) words) and includes the
//     direct-index tables (IndexBytes reports their share; chunk arrays
//     included), so a delta-evolved program over a sparse priority
//     domain reports the same figure as a fresh compile of the same
//     rules — the EPCBudgeter weight and the filter's delta-vs-oracle
//     memory parity stay exact. RetainedBytes reports actual retention;
//     the difference is width slack charged to the EPC meter like trie
//     snapshot slack.
package classify
