// Package classify compiles a rule set into a multi-attribute packet
// classifier whose per-packet cost is flat in the rule count: one
// elementary-interval table probe per attribute (src addr, dst addr, src
// port, dst port, protocol) plus an intersection of small per-class
// candidate sets, lowest priority winning. It is the bit-vector scheme
// from yanet2's generic filter, adapted to this repo's copy-on-write
// snapshot discipline.
//
// # Role
//
// The filter's hot path (internal/filter) used to resolve a packet by
// walking src-prefix trie levels and then linearly scanning each node's
// candidate rules with rule.Matches — O(rules-per-node) for rule shapes
// that share a src prefix (reflection floods keyed by src port, carpet
// bombing keyed by dst range). A compiled Program replaces that scan:
// Classify(t) answers exactly what the linear first-match oracle
// (ascending priority, rules.Rule.Matches) would, at a cost governed by
// how many rules share a single packet's five attribute classes, not by
// the rule-set size.
//
// Design notes: all five attributes — addresses and ports/proto alike —
// are compiled through one uniform uint32 interval-table representation
// rather than reusing the trie arena for addresses; trie node ids are
// not sound equivalence classes without leaf-pushing, and the uniform
// table keeps the probe loop branch-light. Per-interval memberships are
// adaptive: a sorted priority list in a shared arena while small
// (<= sparseMax), a dense bitset beyond that. Rules leaving an attribute
// unrestricted are factored into one per-attribute any-list instead of
// being duplicated into every interval, keeping compiled size linear in
// the rule count.
//
// # Concurrency contract
//
// A Program is immutable after Compile returns: Classify performs no
// writes, so any number of goroutines may classify against the same
// Program concurrently without synchronization. Reconfiguration is
// copy-on-write — Delta builds and returns a new Program, sharing only
// immutable boundary tables with its predecessor, which concurrent
// readers may still be scanning. The filter swaps Programs through the
// same atomic ruleView pointer as trie snapshots; Compile/Delta are
// called from the single writer (the filter thread), never from the
// packet path.
//
// # Invariants
//
//   - Compile/Delta require rules in strictly ascending priority order
//     (the filter's natural order: survivors keep their slots, adds are
//     appended past the predecessor's MaxPrio). Fill order then keeps
//     every membership list priority-sorted with no explicit sort.
//   - Classify returns the lowest-priority matching rule — identical,
//     priority ties impossible by construction, to scanning the rule
//     slice in priority order calling Matches.
//   - A Program evolved by Delta deep-equals a fresh Compile of the same
//     successor set: per attribute, either the boundary structure
//     changed (some boundary's refcount appeared or died) and the
//     attribute recompiles outright, or memberships are patched over the
//     unchanged interval table to the same arenas a fresh compile would
//     emit. Past deltaChurnFactor the whole program recompiles.
//   - MemoryBytes is priority-numbering-invariant: it prices bitsets at
//     dense-equivalent width (ceil(liveRules/64) words), so a
//     delta-evolved program over a sparse priority domain reports the
//     same figure as a fresh compile of the same rules — the EPCBudgeter
//     weight and the filter's delta-vs-oracle memory parity stay exact.
//     RetainedBytes reports actual retention; the difference is width
//     slack charged to the EPC meter like trie snapshot slack.
package classify
