package classify

import (
	"math/bits"
	"slices"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// Attribute indices. Every attribute is compiled the same way — as a
// sorted elementary-interval table over uint32 keys — so ports and the
// protocol byte reuse the address machinery with narrower domains.
const (
	attrSrc = iota
	attrDst
	attrSrcPort
	attrDstPort
	attrProto
	numAttrs
)

// sparseMax is the largest per-interval membership stored as a sorted
// priority list; larger memberships switch to a dense bitset. The sparse
// representation keeps the common case (a /24 carpet block matched by a
// handful of rules) at a few cache lines, while dense bitsets bound the
// worst case (thousands of rules sharing one protocol) at one word-AND
// per 64 rules.
const sparseMax = 48

// hotBoundsMax is the largest boundary table whose probe is priced as
// free in the EPC cost model: at <=16 uint32 bounds the whole table is
// one cache line that every packet touches, so it never leaves cache —
// the classifier analog of the trie's always-hot upper levels. Larger
// tables charge one footprint-dependent reference per probe.
const hotBoundsMax = 16

// classRef locates one elementary interval's rule membership inside the
// per-attribute shared arenas: sparse (off into attrTable.sparse, n
// entries, ascending priorities) when n <= sparseMax, dense (off into
// attrTable.dense, Program.words words) when n > sparseMax.
type classRef struct {
	off uint32
	n   uint32
}

func (c classRef) dense() bool { return c.n > sparseMax }

// attrTable is one attribute's compiled range→class table.
//
// bounds holds the attribute's live elementary-interval boundaries in
// ascending order; value v falls in interval upperBound(bounds, v), so
// there are len(bounds)+1 intervals. boundRef counts, per boundary, how
// many live rules contribute it — the delta path uses it to detect when a
// reconfigure changes the interval structure itself (boundary appears or
// dies) versus merely editing memberships within fixed intervals.
//
// Rules that leave the attribute unrestricted ("any") are factored out of
// the per-interval memberships entirely: they appear once in anyList
// (ascending priorities) and anyBits (bitset), not once per interval.
// This keeps compiled size linear in the rule count regardless of how
// many wildcards the set mixes in.
type attrTable struct {
	bounds       []uint32
	boundRef     []int32
	refs         []classRef
	sparse       []int32
	dense        []uint64
	anyList      []int32
	anyBits      []uint64
	denseClasses int
	// idx is the attribute's direct-index translation (index.go): value →
	// interval in one or two loads where the bounds search paid log(n).
	// A pure function of bounds, shared by reference across deltas that
	// leave the boundary structure untouched.
	idx attrIndex
}

// Program is an immutable compiled classifier over a rule set. Build it
// with Compile (or evolve it with Delta, which returns a new Program) and
// share it freely across readers; Classify never mutates.
//
// Priorities are the rule-set order: rule i has priority prios[i]
// (identity when prios is nil), lower wins. The priority domain may be
// sparse — survivors of deletions keep their slots — so the bitset width
// (words) tracks maxPrio, not the live-rule count.
type Program struct {
	attrs     [numAttrs]attrTable
	ruleOf    []int32 // priority -> rule index; -1 for dead slots
	words     int     // bitset words: ceil((maxPrio+1)/64)
	liveRules int
}

// attrRange reports rule r's restriction on attribute a as an inclusive
// [lo, hi] uint32 range, or any=true when the attribute is unrestricted.
func attrRange(r *rules.Rule, a int) (lo, hi uint32, any bool) {
	switch a {
	case attrSrc:
		if r.Src.IsAny() {
			return 0, 0, true
		}
		m := r.Src.Mask()
		base := r.Src.Addr & m
		return base, base | ^m, false
	case attrDst:
		if r.Dst.IsAny() {
			return 0, 0, true
		}
		m := r.Dst.Mask()
		base := r.Dst.Addr & m
		return base, base | ^m, false
	case attrSrcPort:
		if r.SrcPort.IsAny() {
			return 0, 0, true
		}
		return uint32(r.SrcPort.Lo), uint32(r.SrcPort.Hi), false
	case attrDstPort:
		if r.DstPort.IsAny() {
			return 0, 0, true
		}
		return uint32(r.DstPort.Lo), uint32(r.DstPort.Hi), false
	default: // attrProto
		if r.Proto == 0 {
			return 0, 0, true
		}
		return uint32(r.Proto), uint32(r.Proto), false
	}
}

// upperBound returns the number of elements of b that are <= v, which is
// also the index of the elementary interval containing v. Branch-light
// binary search (the loop body compiles to a conditional move).
func upperBound(b []uint32, v uint32) int {
	lo, n := 0, len(b)
	for n > 0 {
		half := n >> 1
		if b[lo+half] <= v {
			lo += half + 1
			n -= half + 1
		} else {
			n = half
		}
	}
	return lo
}

// span returns the inclusive elementary-interval index range covered by
// rule range [lo, hi] under the boundary table b.
func span(b []uint32, lo, hi uint32) (int, int) {
	return upperBound(b, lo), upperBound(b, hi)
}

// appendBounds appends rule r's boundary contributions on attribute a:
// lo (unless 0) and hi+1 (unless the range reaches the domain top).
// A rule with range [lo, hi] changes the match set exactly at lo and at
// hi+1; 0 and the domain top are implicit interval edges.
func appendBounds(vals []uint32, r *rules.Rule, a int) []uint32 {
	lo, hi, any := attrRange(r, a)
	if any {
		return vals
	}
	if lo > 0 {
		vals = append(vals, lo)
	}
	if hi != ^uint32(0) {
		vals = append(vals, hi+1)
	}
	return vals
}

// compileAttr builds one attribute's table from scratch. rs must be in
// ascending-priority order (prioOf(i) strictly increasing) so that fill
// order alone leaves every membership list sorted.
func compileAttr(rs []rules.Rule, prioOf func(int) int32, a, words int) attrTable {
	vals := make([]uint32, 0, 2*len(rs))
	for i := range rs {
		vals = appendBounds(vals, &rs[i], a)
	}
	slices.Sort(vals)

	var tb attrTable
	for i := 0; i < len(vals); {
		j := i
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		tb.bounds = append(tb.bounds, vals[i])
		tb.boundRef = append(tb.boundRef, int32(j-i))
		i = j
	}

	nIv := len(tb.bounds) + 1
	counts := make([]uint32, nIv)
	spans := make([][2]int32, len(rs)) // cached; {-1,-1} marks any
	anyCount := 0
	for i := range rs {
		lo, hi, any := attrRange(&rs[i], a)
		if any {
			spans[i] = [2]int32{-1, -1}
			anyCount++
			continue
		}
		lb, rb := span(tb.bounds, lo, hi)
		spans[i] = [2]int32{int32(lb), int32(rb)}
		for j := lb; j <= rb; j++ {
			counts[j]++
		}
	}

	tb.refs = make([]classRef, nIv)
	sparseTotal := 0
	for j, n := range counts {
		if n > sparseMax {
			tb.refs[j] = classRef{off: uint32(tb.denseClasses * words), n: n}
			tb.denseClasses++
		} else {
			tb.refs[j] = classRef{off: uint32(sparseTotal), n: n}
			sparseTotal += int(n)
		}
	}

	tb.sparse = make([]int32, sparseTotal)
	if tb.denseClasses > 0 {
		tb.dense = make([]uint64, tb.denseClasses*words)
	}
	if anyCount > 0 {
		tb.anyList = make([]int32, 0, anyCount)
		tb.anyBits = make([]uint64, words)
	}
	cursor := make([]uint32, nIv)
	for i := range rs {
		p := prioOf(i)
		sp := spans[i]
		if sp[0] < 0 {
			tb.anyList = append(tb.anyList, p)
			tb.anyBits[uint32(p)>>6] |= 1 << (uint32(p) & 63)
			continue
		}
		for j := sp[0]; j <= sp[1]; j++ {
			ref := tb.refs[j]
			if ref.dense() {
				tb.dense[ref.off+uint32(p)>>6] |= 1 << (uint32(p) & 63)
			} else {
				tb.sparse[ref.off+cursor[j]] = p
				cursor[j]++
			}
		}
	}
	tb.idx = buildIndex(a, tb.bounds)
	return tb
}

// Compile builds a Program for rs. prios maps rule index to priority
// (nil means identity) and must be strictly ascending — the order the
// filter maintains for survivors-plus-appended-adds. maxPrio is the top
// of the (possibly sparse) priority domain; all prios are <= maxPrio.
func Compile(rs []rules.Rule, prios []int32, maxPrio int32) *Program {
	if len(rs) == 0 {
		maxPrio = -1
	}
	p := &Program{
		words:     int(maxPrio+64) >> 6,
		liveRules: len(rs),
	}
	prioOf := identityOr(prios)
	p.ruleOf = make([]int32, int(maxPrio)+1)
	for i := range p.ruleOf {
		p.ruleOf[i] = -1
	}
	for i := range rs {
		p.ruleOf[prioOf(i)] = int32(i)
	}
	for a := 0; a < numAttrs; a++ {
		p.attrs[a] = compileAttr(rs, prioOf, a, p.words)
	}
	return p
}

func identityOr(prios []int32) func(int) int32 {
	if prios == nil {
		return func(i int) int32 { return int32(i) }
	}
	return func(i int) int32 { return prios[i] }
}

// member reports whether priority pr matches this attribute given the
// probed class ref, plus a count of memory words touched at the same
// granularity the trie charged node visits (for the EPC cost model: one
// per bitset word probed, one per cache line of sparse entries scanned).
func (tb *attrTable) member(ref classRef, pr int32) (bool, int) {
	if tb.anyBits != nil && tb.anyBits[uint32(pr)>>6]>>(uint32(pr)&63)&1 != 0 {
		return true, 1
	}
	if ref.dense() {
		return tb.dense[ref.off+uint32(pr)>>6]>>(uint32(pr)&63)&1 != 0, 1
	}
	s := tb.sparse[ref.off : ref.off+ref.n]
	for i, q := range s {
		if q >= pr {
			return q == pr, 1 + i/16
		}
	}
	return false, 1 + len(s)/16
}

// word assembles bitset word w of this attribute's match set (specific
// class ∪ any-rules). cursor tracks the sparse scan position across
// ascending w; entries below the window that were skipped by an early
// exit in a previous word are discarded, not replayed.
func (tb *attrTable) word(ref classRef, w int, cursor *int) uint64 {
	var x uint64
	if tb.anyBits != nil {
		x = tb.anyBits[w]
	}
	if ref.dense() {
		return x | tb.dense[int(ref.off)+w]
	}
	s := tb.sparse[ref.off : ref.off+ref.n]
	lo, hi := int32(w)<<6, int32(w+1)<<6
	for *cursor < len(s) && s[*cursor] < hi {
		if s[*cursor] >= lo {
			x |= 1 << (uint32(s[*cursor]) & 63)
		}
		*cursor++
	}
	return x
}

// Classify matches t against the compiled rule set. It returns the
// winning rule's index in the compiled slice and its priority (lowest
// priority wins, mirroring the linear-scan first-match oracle), plus a
// count of memory references touched for cost accounting. ok=false means
// no rule matched.
//
// The fast path resolves one elementary interval per attribute through
// the direct-index tables (one or two dependent loads — index.go), picks
// the attribute with the smallest candidate set as the driver, and
// membership-tests the driver's candidates in ascending priority order
// against the other four attributes — so the first hit is the final
// answer. When even the smallest candidate set is dense the path
// degrades to a word-wise five-way AND with early exit, bounding the
// worst case at one word op per attribute per 64 priorities. For whole
// bursts, ClassifyBatch runs the same stages breadth-first.
func (p *Program) Classify(t packet.FiveTuple) (rule, prio int32, refs int, ok bool) {
	keys := [numAttrs]uint32{
		t.SrcIP, t.DstIP, uint32(t.SrcPort), uint32(t.DstPort), uint32(t.Proto),
	}
	var cls [numAttrs]classRef
	driver, driverScore := 0, int(^uint(0) >> 1)
	for a := 0; a < numAttrs; a++ {
		tb := &p.attrs[a]
		// One ref per probe of a multi-cache-line table — the granularity
		// the trie charged per node visit; a root+chunk (or direct-array)
		// access lands in one or two lines the same way the retained
		// search's steps shared a few. Single-line tables are free (see
		// hotBoundsMax).
		if len(tb.bounds) > hotBoundsMax {
			refs++
		}
		ref := tb.refs[tb.interval(keys[a])]
		score := int(ref.n) + len(tb.anyList)
		if score == 0 {
			return 0, 0, refs, false
		}
		cls[a] = ref
		if score < driverScore {
			driver, driverScore = a, score
		}
	}
	r, pr, irefs, ok := p.intersect(&cls, driver)
	return r, pr, refs + irefs, ok
}

// ClassifySearch is the retained binary-search probe: same verdicts,
// priorities, and ref accounting as Classify, but every attribute
// resolves its interval by upperBound over the boundary table instead of
// the direct-index tables. It is the oracle the index path's property
// and fuzz tests check against, and the baseline the classify_probe
// bench gate compares to.
func (p *Program) ClassifySearch(t packet.FiveTuple) (rule, prio int32, refs int, ok bool) {
	keys := [numAttrs]uint32{
		t.SrcIP, t.DstIP, uint32(t.SrcPort), uint32(t.DstPort), uint32(t.Proto),
	}
	var cls [numAttrs]classRef
	driver, driverScore := 0, int(^uint(0) >> 1)
	for a := 0; a < numAttrs; a++ {
		tb := &p.attrs[a]
		if len(tb.bounds) > hotBoundsMax {
			refs++
		}
		ref := tb.refs[upperBound(tb.bounds, keys[a])]
		score := int(ref.n) + len(tb.anyList)
		if score == 0 {
			return 0, 0, refs, false
		}
		cls[a] = ref
		if score < driverScore {
			driver, driverScore = a, score
		}
	}
	r, pr, irefs, ok := p.intersect(&cls, driver)
	return r, pr, refs + irefs, ok
}

// intersect runs the smallest-set-driven candidate intersection over one
// packet's five resolved classes — the shared tail of Classify,
// ClassifySearch, and ClassifyBatch.
func (p *Program) intersect(cls *[numAttrs]classRef, driver int) (rule, prio int32, refs int, ok bool) {
	dtb := &p.attrs[driver]
	dref := cls[driver]
	if !dref.dense() {
		// Sparse driver: merge the driver's specific membership with its
		// any-list (both ascending) and test candidates lowest-first.
		spec := dtb.sparse[dref.off : dref.off+dref.n]
		anyL := dtb.anyList
		si, ai := 0, 0
		for si < len(spec) || ai < len(anyL) {
			var pr int32
			if ai >= len(anyL) || (si < len(spec) && spec[si] < anyL[ai]) {
				pr = spec[si]
				si++
			} else {
				pr = anyL[ai]
				ai++
			}
			refs++
			matched := true
			for a := 0; a < numAttrs; a++ {
				if a == driver {
					continue
				}
				m, touched := p.attrs[a].member(cls[a], pr)
				refs += touched
				if !m {
					matched = false
					break
				}
			}
			if matched {
				return p.ruleOf[pr], pr, refs, true
			}
		}
		return 0, 0, refs, false
	}

	// Dense driver: every attribute's candidate set is large — AND the
	// five match-set bitsets word by word, lowest word first.
	var cursors [numAttrs]int
	for w := 0; w < p.words; w++ {
		x := ^uint64(0)
		for a := 0; a < numAttrs && x != 0; a++ {
			x &= p.attrs[a].word(cls[a], w, &cursors[a])
		}
		refs += numAttrs
		if x != 0 {
			pr := int32(w<<6 + bits.TrailingZeros64(x))
			return p.ruleOf[pr], pr, refs, true
		}
	}
	return 0, 0, refs, false
}

// Len reports the number of live rules the program was compiled over.
func (p *Program) Len() int { return p.liveRules }

const (
	programOverheadBytes = 192 // Program struct + slice headers, amortized
	attrOverheadBytes    = 64  // per-attrTable slice headers
	classRefBytes        = 8
	prioBytes            = 4
	boundBytes           = 4
)

// memoryBytes computes the program's footprint with bitsets priced at w
// words each. Everything except bitset widths — boundary tables, class
// counts, membership sizes, sparse/dense representation choices — is a
// function of the rule set alone, invariant under priority renumbering.
func (p *Program) memoryBytes(w int) int {
	total := programOverheadBytes + p.liveRules*prioBytes // ruleOf at dense width
	for a := 0; a < numAttrs; a++ {
		tb := &p.attrs[a]
		total += attrOverheadBytes +
			len(tb.bounds)*boundBytes +
			len(tb.boundRef)*prioBytes +
			len(tb.refs)*classRefBytes +
			len(tb.sparse)*prioBytes +
			tb.denseClasses*w*8 +
			len(tb.anyList)*prioBytes +
			tb.idx.indexBytes()
		if len(tb.anyList) > 0 {
			total += w * 8
		}
	}
	return total
}

// MemoryBytes reports the program's footprint at dense-equivalent bitset
// width (ceil(liveRules/64) words) — the size an identical rule set
// compiles to with contiguous priorities. A delta-evolved program over a
// sparse priority domain reports the same figure as a fresh compile of
// the same rules, so EPCBudgeter weights and the delta-vs-oracle memory
// parity the filter tests assert stay exact; the width slack a sparse
// domain actually retains is RetainedBytes - MemoryBytes and is charged
// to the EPC meter as slack, exactly like trie snapshot slack.
func (p *Program) MemoryBytes() int {
	return p.memoryBytes((p.liveRules + 63) >> 6)
}

// RetainedBytes reports the bytes actually held live by this program,
// including bitset width slack from a sparse priority domain and the
// full ruleOf table.
func (p *Program) RetainedBytes() int {
	total := p.memoryBytes(p.words)
	total += (len(p.ruleOf) - p.liveRules) * prioBytes
	return total
}

