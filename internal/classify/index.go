package classify

// Direct-index interval translation. The compiled probe's cost used to be
// one upperBound binary search per attribute — log(bounds) dependent
// loads, each a likely cache miss at 100k-rule boundary tables. The
// structures here translate value → elementary-interval index in one or
// two dependent loads instead:
//
//   - proto: a 256-entry uint16 array, value-indexed;
//   - src/dst port: a 65536-entry uint16 array, value-indexed;
//   - src/dst address: a two-level chunked table, DXR/Poptrie-style — a
//     2^16-entry root indexed by the address's high 16 bits whose entry
//     either inlines the interval index directly (no boundary falls
//     strictly inside that /16 block — the overwhelmingly common case)
//     or points to a leaf chunk holding the block's boundary low-16
//     values: binary-searched while small, value-indexed (a 65536-entry
//     offset array) once the block carries >= denseChunkMin boundaries.
//
// Boundary tables at or under hotBoundsMax entries build no index at
// all: the whole table is one cache line, the binary search never leaves
// it, and the probe is priced as free by the cost model either way.
//
// Every structure is a pure function of the attribute's boundary table,
// so index bytes are priority-numbering-invariant (MemoryBytes contract)
// and Delta can share them by reference whenever a step leaves the
// boundary structure untouched.

// denseChunkMin is the boundary count at which a leaf chunk switches
// from a binary-searched low-16 list to a value-indexed 65536-entry
// offset array (128 KiB). Below it the list spans at most ~1 KiB of
// contiguous cache lines; above it the direct array costs at most 256
// bytes per boundary and turns the probe into a single load.
const denseChunkMin = 512

// addrChunk is one /16 block's leaf in the two-level address table.
// bounds holds the block's boundary low-16 values (ascending, all >= 1 —
// a boundary at the block start is absorbed into base). The interval
// index of address v inside the block is base + (number of bounds <=
// low16(v)); dense, when present, tabulates that count per low-16 value.
type addrChunk struct {
	base   uint32
	bounds []uint16
	dense  []uint16
}

// attrIndex is one attribute's direct-index translation. Exactly one of
// direct (ports, proto) or root (addresses) is set on indexed tables;
// both nil means the boundary table is single-cache-line and the probe
// binary-searches it directly.
type attrIndex struct {
	direct []uint16
	root   []int32 // >= 0: inlined interval index; < 0: ^chunkIndex
	chunks []addrChunk
}

// upperBound16 returns the number of elements of b that are <= v.
func upperBound16(b []uint16, v uint16) int {
	lo, n := 0, len(b)
	for n > 0 {
		half := n >> 1
		if b[lo+half] <= v {
			lo += half + 1
			n -= half + 1
		} else {
			n = half
		}
	}
	return lo
}

// interval returns the index of the elementary interval containing v —
// the direct-index fast path, falling back to the retained binary search
// for single-cache-line boundary tables.
func (tb *attrTable) interval(v uint32) int {
	if tb.idx.direct != nil {
		return int(tb.idx.direct[v])
	}
	if tb.idx.root != nil {
		e := tb.idx.root[v>>16]
		if e >= 0 {
			return int(e)
		}
		c := &tb.idx.chunks[^e]
		lo := uint16(v)
		if c.dense != nil {
			return int(c.base) + int(c.dense[lo])
		}
		return int(c.base) + upperBound16(c.bounds, lo)
	}
	return upperBound(tb.bounds, v)
}

// buildIndex constructs attribute a's direct-index tables over its
// boundary table. Deterministic in bounds alone: a delta-evolved program
// builds (or shares) byte-identical tables to a fresh compile's.
func buildIndex(a int, bounds []uint32) attrIndex {
	if len(bounds) <= hotBoundsMax {
		return attrIndex{}
	}
	switch a {
	case attrProto:
		return attrIndex{direct: buildDirect(bounds, 1<<8)}
	case attrSrcPort, attrDstPort:
		return attrIndex{direct: buildDirect(bounds, 1<<16)}
	default:
		return buildChunked(bounds, nil, nil)
	}
}

// buildDirect tabulates upperBound(bounds, v) for every v in the
// attribute's domain. Counts fit uint16: boundary values are distinct
// and >= 1, so at most v of them are <= v for any in-domain v.
func buildDirect(bounds []uint32, size int) []uint16 {
	d := make([]uint16, size)
	iv := 0
	for v := 0; v < size; v++ {
		for iv < len(bounds) && bounds[iv] <= uint32(v) {
			iv++
		}
		d[v] = uint16(iv)
	}
	return d
}

// buildChunkDense tabulates upperBound16(cb, v) for every low-16 value.
func buildChunkDense(cb []uint16) []uint16 {
	d := make([]uint16, 1<<16)
	iv := 0
	for v := 0; v < 1<<16; v++ {
		for iv < len(cb) && int(cb[iv]) <= v {
			iv++
		}
		d[v] = uint16(iv)
	}
	return d
}

// chunkAt returns the leaf chunk serving /16 block blk, or nil when the
// block's interval index is inlined in the root.
func (ix *attrIndex) chunkAt(blk int) *addrChunk {
	if ix.root == nil {
		return nil
	}
	if e := ix.root[blk]; e < 0 {
		return &ix.chunks[^e]
	}
	return nil
}

// buildChunked constructs the two-level address table. When old and
// stale are given (the delta patch path), blocks NOT marked stale reuse
// the old index's leaf arrays by reference — their boundary content is
// unchanged, only the interval base below them shifted — so a delta
// rebuilds leaf storage only for the /16 blocks whose boundary tables
// actually changed.
func buildChunked(bounds []uint32, old *attrIndex, stale map[uint32]bool) attrIndex {
	ix := attrIndex{root: make([]int32, 1<<16)}
	i := 0
	for blk := 0; blk < 1<<16; blk++ {
		start := uint32(blk) << 16
		// A boundary exactly at the block start is absorbed into base.
		if i < len(bounds) && bounds[i] == start {
			i++
		}
		base := i
		j := i
		top := start | 0xFFFF
		for j < len(bounds) && bounds[j] <= top {
			j++
		}
		if j == i {
			ix.root[blk] = int32(base)
			continue
		}
		ix.root[blk] = ^int32(len(ix.chunks))
		if old != nil && !stale[uint32(blk)] {
			if c := old.chunkAt(blk); c != nil && len(c.bounds) == j-i {
				ix.chunks = append(ix.chunks, addrChunk{base: uint32(base), bounds: c.bounds, dense: c.dense})
				i = j
				continue
			}
		}
		cb := make([]uint16, j-i)
		for k := i; k < j; k++ {
			cb[k-i] = uint16(bounds[k])
		}
		c := addrChunk{base: uint32(base), bounds: cb}
		if len(cb) >= denseChunkMin {
			c.dense = buildChunkDense(cb)
		}
		ix.chunks = append(ix.chunks, c)
		i = j
	}
	return ix
}

// patchIndex rebuilds attribute a's direct-index tables after a delta
// flipped the boundary structure. Port/proto direct arrays retabulate in
// one linear pass; the address tables rebuild only the /16 blocks a
// flipped boundary falls in, sharing every other block's leaf arrays
// with the predecessor by reference. The result is byte-identical to
// buildIndex over the merged boundary table.
func patchIndex(a int, bounds []uint32, old *attrTable, net map[uint32]int32) attrIndex {
	if len(bounds) <= hotBoundsMax {
		return attrIndex{}
	}
	switch a {
	case attrProto:
		return attrIndex{direct: buildDirect(bounds, 1<<8)}
	case attrSrcPort, attrDstPort:
		return attrIndex{direct: buildDirect(bounds, 1<<16)}
	}
	stale := make(map[uint32]bool)
	for v, dn := range net {
		if dn == 0 {
			continue
		}
		if i := boundIndex(old.bounds, v); i < 0 || old.boundRef[i]+dn == 0 {
			stale[v>>16] = true
		}
	}
	return buildChunked(bounds, &old.idx, stale)
}

// Index memory pricing (see memoryBytes). Like the other constants these
// are amortized header figures, not exact heap accounting; what matters
// is that they are a pure function of the structures' lengths so the
// delta-equals-rebuild identity holds.
const (
	indexOverheadBytes = 72 // attrIndex slice headers
	chunkBytes         = 56 // addrChunk struct + slice headers
)

// indexBytes prices one attribute's direct-index tables.
func (ix *attrIndex) indexBytes() int {
	total := indexOverheadBytes + len(ix.direct)*2 + len(ix.root)*4
	for c := range ix.chunks {
		total += chunkBytes + len(ix.chunks[c].bounds)*2 + len(ix.chunks[c].dense)*2
	}
	return total
}

// IndexBytes reports the direct-index tables' share of MemoryBytes: the
// value→interval translation arrays (port/proto direct tables, address
// roots and leaf chunks), as opposed to the interval membership sets.
// Like MemoryBytes it is numbering-invariant — a pure function of the
// rule set's boundary structure.
func (p *Program) IndexBytes() int {
	total := 0
	for a := 0; a < numAttrs; a++ {
		total += p.attrs[a].idx.indexBytes()
	}
	return total
}
