package classify

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// boundaryProbes builds the adversarial probe set for a program: for
// every attribute, tuples carrying each elementary-interval boundary
// value and both its neighbors (v-1, v, v+1), plus the domain extremes
// (0, MaxUint32, port 0/65535, proto 0/255) — every value where the
// direct-index translation could disagree with the binary search by one
// interval.
func boundaryProbes(p *Program, rng *rand.Rand, rs []rules.Rule) []packet.FiveTuple {
	var out []packet.FiveTuple
	base := func() packet.FiveTuple { return randProbe(rng, rs) }
	addAttr := func(a int, v uint32) {
		t := base()
		switch a {
		case attrSrc:
			t.SrcIP = v
		case attrDst:
			t.DstIP = v
		case attrSrcPort:
			t.SrcPort = uint16(v)
		case attrDstPort:
			t.DstPort = uint16(v)
		default:
			t.Proto = packet.Protocol(v)
		}
		out = append(out, t)
	}
	domainTop := func(a int) uint32 {
		switch a {
		case attrSrc, attrDst:
			return ^uint32(0)
		case attrProto:
			return 0xFF
		default:
			return 0xFFFF
		}
	}
	for a := 0; a < numAttrs; a++ {
		addAttr(a, 0)
		addAttr(a, domainTop(a))
		for _, v := range p.attrs[a].bounds {
			for _, w := range [3]uint32{v - 1, v, v + 1} {
				if w <= domainTop(a) {
					addAttr(a, w)
				}
			}
		}
	}
	return out
}

// checkIndexAgainstSearch asserts the full Classify 4-tuple — rule,
// priority, ref count, ok — equals ClassifySearch's for every probe, and
// that every attribute's direct-index interval translation equals the
// binary search's over the same values.
func checkIndexAgainstSearch(t *testing.T, p *Program, probes []packet.FiveTuple) {
	t.Helper()
	for _, tu := range probes {
		ir, ip, irefs, iok := p.Classify(tu)
		sr, sp, srefs, sok := p.ClassifySearch(tu)
		if ir != sr || ip != sp || irefs != srefs || iok != sok {
			t.Fatalf("probe %v: index path (%d,%d,%d,%v) != search path (%d,%d,%d,%v)",
				tu, ir, ip, irefs, iok, sr, sp, srefs, sok)
		}
		keys := [numAttrs]uint32{
			tu.SrcIP, tu.DstIP, uint32(tu.SrcPort), uint32(tu.DstPort), uint32(tu.Proto),
		}
		for a := 0; a < numAttrs; a++ {
			tb := &p.attrs[a]
			if got, want := tb.interval(keys[a]), upperBound(tb.bounds, keys[a]); got != want {
				t.Fatalf("probe %v attr %d: interval %d want %d", tu, a, got, want)
			}
		}
	}
}

// TestIndexMatchesSearchOracle: across random rule sets, the chunked
// direct-index probe must agree with the retained binary-search oracle
// on boundary-adjacent values and steered probes alike.
func TestIndexMatchesSearchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(300)
		rs := make([]rules.Rule, k)
		for i := range rs {
			rs[i] = randRule(rng)
		}
		p := Compile(rs, nil, int32(k-1))
		probes := boundaryProbes(p, rng, rs)
		for n := 0; n < 200; n++ {
			probes = append(probes, randProbe(rng, rs))
		}
		checkIndexAgainstSearch(t, p, probes)
	}
}

// TestIndexMatchesSearchAcrossDeltas drives filter-shaped delta chains
// and re-checks index-vs-search agreement after every step — the chunk
// reuse and index sharing paths must stay byte-faithful to a rebuild.
func TestIndexMatchesSearchAcrossDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 4; trial++ {
		k := 60 + rng.Intn(120)
		w := &ruleWorld{maxPrio: int32(k - 1)}
		w.rs = make([]rules.Rule, k)
		w.prios = make([]int32, k)
		for i := range w.rs {
			w.rs[i] = randRule(rng)
			w.prios[i] = int32(i)
		}
		p := Compile(w.rs, w.prios, w.maxPrio)
		for step := 0; step < 10; step++ {
			bound := len(w.rs)/8 + 1
			p = p.Delta(w.step(rng, rng.Intn(bound), rng.Intn(bound)))
			probes := boundaryProbes(p, rng, w.rs)
			for n := 0; n < 60; n++ {
				probes = append(probes, randProbe(rng, w.rs))
			}
			checkIndexAgainstSearch(t, p, probes)
		}
	}
}

// TestDenseChunk forces one /16 block past denseChunkMin boundaries so
// the value-indexed leaf array builds, and checks translation and
// accounting both see it.
func TestDenseChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const k = 600 // 2 boundaries per /32 rule, all in block 0x0A0A
	rs := make([]rules.Rule, k)
	for i := range rs {
		rs[i] = rules.Rule{Src: rules.Prefix{Addr: 0x0A0A0000 + uint32(i)*4, Len: 32}}
	}
	p := Compile(rs, nil, int32(k-1))
	srcIdx := &p.attrs[attrSrc].idx
	hasDense := false
	for i := range srcIdx.chunks {
		if srcIdx.chunks[i].dense != nil {
			hasDense = true
			if len(srcIdx.chunks[i].bounds) < denseChunkMin {
				t.Fatalf("dense chunk with only %d bounds", len(srcIdx.chunks[i].bounds))
			}
		}
	}
	if !hasDense {
		t.Fatalf("no dense chunk built for %d boundaries in one /16 block", 2*k)
	}
	if p.IndexBytes() < 2*(1<<16) {
		t.Fatalf("IndexBytes %d does not cover the dense chunk array", p.IndexBytes())
	}
	probes := boundaryProbes(p, rng, rs)
	checkIndexAgainstSearch(t, p, probes)
}

// TestIndexBytesAccounting pins the memory-accounting contract: the
// index tables are priced inside MemoryBytes (EPC budgeting sees them),
// IndexBytes is numbering-invariant and delta-stable, and tables small
// enough to skip indexing price only headers.
func TestIndexBytesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(24))

	// One rule: every attribute is <= hotBoundsMax bounds, so no index
	// tables build and IndexBytes is headers only.
	small := Compile([]rules.Rule{randRule(rng)}, nil, 0)
	if got := small.IndexBytes(); got != numAttrs*indexOverheadBytes {
		t.Fatalf("small program IndexBytes=%d want %d (headers only)", got, numAttrs*indexOverheadBytes)
	}

	k := 400
	w := &ruleWorld{maxPrio: int32(k - 1)}
	w.rs = make([]rules.Rule, k)
	w.prios = make([]int32, k)
	for i := range w.rs {
		w.rs[i] = randRule(rng)
		w.prios[i] = int32(i)
	}
	p := Compile(w.rs, w.prios, w.maxPrio)
	if p.IndexBytes() <= numAttrs*indexOverheadBytes {
		t.Fatalf("large program built no index tables")
	}
	// MemoryBytes must include the index: repricing without it must fall
	// short by exactly IndexBytes.
	withoutIdx := 0
	for a := 0; a < numAttrs; a++ {
		withoutIdx += p.attrs[a].idx.indexBytes()
	}
	if p.MemoryBytes() <= withoutIdx {
		t.Fatalf("MemoryBytes %d does not cover IndexBytes %d", p.MemoryBytes(), withoutIdx)
	}
	for step := 0; step < 8; step++ {
		p = p.Delta(w.step(rng, 1+rng.Intn(10), 1+rng.Intn(10)))
		fresh := Compile(w.rs, nil, int32(len(w.rs)-1))
		if got, want := p.IndexBytes(), fresh.IndexBytes(); got != want {
			t.Fatalf("step %d: delta-evolved IndexBytes %d != fresh compile %d", step, got, want)
		}
		if got, want := p.MemoryBytes(), fresh.MemoryBytes(); got != want {
			t.Fatalf("step %d: delta-evolved MemoryBytes %d != fresh compile %d", step, got, want)
		}
		if p.RetainedBytes() < p.MemoryBytes() {
			t.Fatalf("step %d: RetainedBytes %d < MemoryBytes %d", step, p.RetainedBytes(), p.MemoryBytes())
		}
	}
}

// burstOf draws a burst mixing fresh tuples, duplicates of earlier burst
// members, and consecutive same-flow runs — the shapes ProcessBatch
// feeds through after dedup and the shapes ClassifyBatch's same-run
// short-circuit must stay faithful on.
func burstOf(rng *rand.Rand, rs []rules.Rule, n int) []packet.FiveTuple {
	ts := make([]packet.FiveTuple, 0, n)
	for len(ts) < n {
		switch {
		case len(ts) > 0 && rng.Intn(3) == 0: // extend a run
			ts = append(ts, ts[len(ts)-1])
		case len(ts) > 2 && rng.Intn(4) == 0: // duplicate an earlier flow
			ts = append(ts, ts[rng.Intn(len(ts))])
		default:
			ts = append(ts, randProbe(rng, rs))
		}
	}
	return ts
}

// TestClassifyBatchMatchesScalar: every Result field — rule, priority,
// refs, ok — must equal the scalar Classify's for the same tuple.
func TestClassifyBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	var sc BatchScratch
	for trial := 0; trial < 25; trial++ {
		k := 1 + rng.Intn(250)
		rs := make([]rules.Rule, k)
		for i := range rs {
			rs[i] = randRule(rng)
		}
		p := Compile(rs, nil, int32(k-1))
		ts := burstOf(rng, rs, 1+rng.Intn(200))
		ts = append(ts, boundaryProbes(p, rng, rs)...)
		res := p.ClassifyBatch(ts, &sc)
		if len(res) != len(ts) {
			t.Fatalf("ClassifyBatch returned %d results for %d tuples", len(res), len(ts))
		}
		for i, tu := range ts {
			r, pr, refs, ok := p.Classify(tu)
			got := res[i]
			if got.Rule != r || got.Prio != pr || int(got.Refs) != refs || got.OK != ok {
				t.Fatalf("tuple %d %v: batch (%d,%d,%d,%v) != scalar (%d,%d,%d,%v)",
					i, tu, got.Rule, got.Prio, got.Refs, got.OK, r, pr, refs, ok)
			}
		}
	}
}

// TestClassifyBatchEmpty covers the degenerate shapes.
func TestClassifyBatchEmpty(t *testing.T) {
	var sc BatchScratch
	p := Compile(nil, nil, -1)
	if res := p.ClassifyBatch(nil, &sc); len(res) != 0 {
		t.Fatalf("empty burst returned %d results", len(res))
	}
	if res := p.ClassifyBatch([]packet.FiveTuple{{SrcIP: 1}}, &sc); len(res) != 1 || res[0].OK {
		t.Fatalf("empty program matched: %+v", res)
	}
}

// TestClassifyBatchConcurrentWithDelta exercises the batch path's
// concurrency surface under -race: readers run ClassifyBatch (each with
// its own scratch) against a program while a writer evolves delta
// successors from it — the copy-on-write contract the filter's atomic
// view swap relies on.
func TestClassifyBatchConcurrentWithDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	k := 150
	w := &ruleWorld{maxPrio: int32(k - 1)}
	w.rs = make([]rules.Rule, k)
	w.prios = make([]int32, k)
	for i := range w.rs {
		w.rs[i] = randRule(rng)
		w.prios[i] = int32(i)
	}
	p := Compile(w.rs, w.prios, w.maxPrio)
	frozen := append([]rules.Rule(nil), w.rs...)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			var sc BatchScratch
			for n := 0; n < 60; n++ {
				ts := burstOf(r, frozen, 64)
				res := p.ClassifyBatch(ts, &sc)
				for i, tu := range ts {
					wantIdx, wantOK := oracleMatch(frozen, tu)
					if res[i].OK != wantOK || (wantOK && int(res[i].Rule) != wantIdx) {
						t.Errorf("concurrent batch diverged: got (%d,%v) want (%d,%v)",
							res[i].Rule, res[i].OK, wantIdx, wantOK)
						return
					}
				}
			}
		}(int64(g))
	}
	cur := p
	for step := 0; step < 6; step++ {
		cur = cur.Delta(w.step(rng, 1+rng.Intn(5), 1+rng.Intn(5)))
	}
	wg.Wait()
	_ = cur
}

// FuzzClassifyBatch feeds arbitrary tuples through the batch path as a
// three-packet run and cross-checks the scalar path (which the linear
// oracle already pins via FuzzClassify).
func FuzzClassifyBatch(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint16(0), uint16(0), uint8(0))
	f.Add(^uint32(0), ^uint32(0), uint16(65535), uint16(65535), uint8(255))
	f.Add(uint32(0xC0000201), uint32(0xC6336401), uint16(53), uint16(443), uint8(17))
	f.Fuzz(func(t *testing.T, src, dst uint32, sp, dp uint16, proto uint8) {
		_, p := fuzzProgram()
		tu := packet.FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: packet.Protocol(proto)}
		alt := tu
		alt.SrcIP ^= 0x00010000
		ts := []packet.FiveTuple{tu, tu, alt, tu}
		var sc BatchScratch
		res := p.ClassifyBatch(ts, &sc)
		for i, x := range ts {
			r, pr, refs, ok := p.Classify(x)
			if res[i].Rule != r || res[i].Prio != pr || int(res[i].Refs) != refs || res[i].OK != ok {
				t.Fatalf("tuple %d %v: batch (%d,%d,%d,%v) != scalar (%d,%d,%d,%v)",
					i, x, res[i].Rule, res[i].Prio, res[i].Refs, res[i].OK, r, pr, refs, ok)
			}
			sr, sp2, srefs, sok := p.ClassifySearch(x)
			if sr != r || sp2 != pr || srefs != refs || sok != ok {
				t.Fatalf("tuple %d %v: search oracle diverged from index path", i, x)
			}
		}
	})
}
