package classify

import (
	"encoding/binary"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// randRule draws a rule with an independent mix of wildcard and restricted
// attributes — the shapes the paper's rule language spans (§III-A).
func randRule(rng *rand.Rand) rules.Rule {
	var r rules.Rule
	if rng.Intn(4) != 0 {
		l := uint8(4 + rng.Intn(29)) // /4../32
		r.Src = rules.Prefix{Addr: rng.Uint32(), Len: l}.Canonical()
	}
	if rng.Intn(3) != 0 {
		l := uint8(4 + rng.Intn(29))
		r.Dst = rules.Prefix{Addr: rng.Uint32(), Len: l}.Canonical()
	}
	if rng.Intn(2) == 0 {
		lo := uint16(rng.Intn(65536))
		hi := lo + uint16(rng.Intn(int(65535-lo)+1))
		r.SrcPort = rules.PortRange{Lo: lo, Hi: hi}
	}
	if rng.Intn(3) == 0 {
		lo := uint16(rng.Intn(65536))
		hi := lo + uint16(rng.Intn(int(65535-lo)+1))
		r.DstPort = rules.PortRange{Lo: lo, Hi: hi}
	}
	if rng.Intn(2) == 0 {
		r.Proto = []packet.Protocol{1, 6, 17}[rng.Intn(3)]
	}
	return r
}

// randProbe mixes uniform tuples with tuples steered into a random rule's
// ranges, so matches are common enough to exercise the intersection path.
func randProbe(rng *rand.Rand, rs []rules.Rule) packet.FiveTuple {
	t := packet.FiveTuple{
		SrcIP:   rng.Uint32(),
		DstIP:   rng.Uint32(),
		SrcPort: uint16(rng.Intn(65536)),
		DstPort: uint16(rng.Intn(65536)),
		Proto:   []packet.Protocol{1, 6, 17}[rng.Intn(3)],
	}
	if len(rs) == 0 || rng.Intn(3) == 0 {
		return t
	}
	r := rs[rng.Intn(len(rs))]
	if !r.Src.IsAny() {
		t.SrcIP = r.Src.Addr | (rng.Uint32() &^ r.Src.Mask())
	}
	if !r.Dst.IsAny() {
		t.DstIP = r.Dst.Addr | (rng.Uint32() &^ r.Dst.Mask())
	}
	if !r.SrcPort.IsAny() {
		t.SrcPort = r.SrcPort.Lo + uint16(rng.Intn(int(r.SrcPort.Hi-r.SrcPort.Lo)+1))
	}
	if !r.DstPort.IsAny() {
		t.DstPort = r.DstPort.Lo + uint16(rng.Intn(int(r.DstPort.Hi-r.DstPort.Lo)+1))
	}
	if r.Proto != 0 {
		t.Proto = r.Proto
	}
	return t
}

// oracleMatch is the linear first-match scan the classifier must agree
// with: lowest index (= lowest priority) wins.
func oracleMatch(rs []rules.Rule, t packet.FiveTuple) (int, bool) {
	for i := range rs {
		if rs[i].Matches(t) {
			return i, true
		}
	}
	return 0, false
}

func checkAgainstOracle(t *testing.T, p *Program, rs []rules.Rule, prios []int32, probes int, rng *rand.Rand) {
	t.Helper()
	for n := 0; n < probes; n++ {
		tu := randProbe(rng, rs)
		wantIdx, wantOK := oracleMatch(rs, tu)
		gotIdx, gotPrio, refs, gotOK := p.Classify(tu)
		if gotOK != wantOK {
			t.Fatalf("probe %v: ok=%v want %v", tu, gotOK, wantOK)
		}
		if refs < 0 {
			t.Fatalf("probe %v: negative ref count %d", tu, refs)
		}
		if !gotOK {
			continue
		}
		if int(gotIdx) != wantIdx {
			t.Fatalf("probe %v: matched rule %d want %d", tu, gotIdx, wantIdx)
		}
		wantPrio := int32(wantIdx)
		if prios != nil {
			wantPrio = prios[wantIdx]
		}
		if gotPrio != wantPrio {
			t.Fatalf("probe %v: priority %d want %d", tu, gotPrio, wantPrio)
		}
	}
}

func TestClassifyMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(200)
		rs := make([]rules.Rule, k)
		for i := range rs {
			rs[i] = randRule(rng)
		}
		p := Compile(rs, nil, int32(k-1))
		if p.Len() != k {
			t.Fatalf("Len=%d want %d", p.Len(), k)
		}
		checkAgainstOracle(t, p, rs, nil, 300, rng)
	}
}

// TestClassifyPriorityOrder pins first-match-wins on deliberately
// overlapping rules: a broad low-priority rule must lose to every
// narrower rule above it, and win once they are gone.
func TestClassifyPriorityOrder(t *testing.T) {
	mk := func(s string) rules.Rule {
		r, err := rules.Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return r
	}
	rs := []rules.Rule{
		mk("drop udp from 192.0.2.0/24 to any sport 53"),
		mk("drop udp from 192.0.2.0/24 to any"),
		mk("drop any from 192.0.2.0/16 to any"),
	}
	p := Compile(rs, nil, 2)
	tu := packet.FiveTuple{SrcIP: 0xC0000201, SrcPort: 53, DstPort: 9, Proto: 17}
	if idx, prio, _, ok := p.Classify(tu); !ok || idx != 0 || prio != 0 {
		t.Fatalf("dns probe: got idx=%d prio=%d ok=%v, want rule 0", idx, prio, ok)
	}
	tu.SrcPort = 54
	if idx, _, _, ok := p.Classify(tu); !ok || idx != 1 {
		t.Fatalf("udp probe: got idx=%d ok=%v, want rule 1", idx, ok)
	}
	tu.Proto = 6
	if idx, _, _, ok := p.Classify(tu); !ok || idx != 2 {
		t.Fatalf("tcp probe: got idx=%d ok=%v, want rule 2", idx, ok)
	}
	tu.SrcIP = 0xC1000000
	if _, _, _, ok := p.Classify(tu); ok {
		t.Fatalf("out-of-range probe matched")
	}
}

// TestClassifyDenseDriver forces every attribute's candidate set past
// sparseMax so the word-wise AND fallback runs, and checks it still
// returns the lowest priority.
func TestClassifyDenseDriver(t *testing.T) {
	const k = 3 * sparseMax
	rs := make([]rules.Rule, k)
	for i := range rs {
		rs[i] = rules.Rule{
			Src:     rules.Prefix{Addr: 0x0A000000, Len: 16},
			Dst:     rules.Prefix{Addr: 0xC6336400, Len: 24},
			SrcPort: rules.PortRange{Lo: 1000, Hi: 2000},
			Proto:   17,
		}
	}
	p := Compile(rs, nil, k-1)
	tu := packet.FiveTuple{SrcIP: 0x0A00BEEF, DstIP: 0xC6336407, SrcPort: 1500, DstPort: 9, Proto: 17}
	if idx, prio, _, ok := p.Classify(tu); !ok || idx != 0 || prio != 0 {
		t.Fatalf("dense driver: got idx=%d prio=%d ok=%v, want rule 0", idx, prio, ok)
	}
	// Knock out the first word's worth of priorities via a delta and
	// confirm the AND scan finds the next live one.
	removed := rs[:70]
	removedPrios := make([]int32, 70)
	for i := range removedPrios {
		removedPrios[i] = int32(i)
	}
	survivors := rs[70:]
	prios := make([]int32, len(survivors))
	for i := range prios {
		prios[i] = int32(70 + i)
	}
	q := p.Delta(Delta{
		Rules: survivors, Prios: prios, MaxPrio: k - 1,
		AddStart: len(survivors), RemovedRules: removed, RemovedPrios: removedPrios,
	})
	if idx, prio, _, ok := q.Classify(tu); !ok || idx != 0 || prio != 70 {
		t.Fatalf("dense driver after delta: got idx=%d prio=%d ok=%v, want idx 0 prio 70", idx, prio, ok)
	}
	if _, _, _, ok := q.Classify(packet.FiveTuple{SrcIP: 0x0A00BEEF, DstIP: 0xC6336407, SrcPort: 999, Proto: 17}); ok {
		t.Fatalf("sport outside range matched")
	}
}

// applyStep mutates a tracked rule world the way filter.ReconfigureDelta
// does: survivors keep their priorities, adds take fresh priorities past
// the old maximum.
type ruleWorld struct {
	rs      []rules.Rule
	prios   []int32
	maxPrio int32
}

func (w *ruleWorld) step(rng *rand.Rand, removeN, addN int) Delta {
	removeIdx := rng.Perm(len(w.rs))[:removeN]
	sort.Ints(removeIdx)
	isRemoved := make(map[int]bool, removeN)
	for _, i := range removeIdx {
		isRemoved[i] = true
	}
	var removedRules []rules.Rule
	var removedPrios []int32
	var survivors []rules.Rule
	var survivorPrios []int32
	for i := range w.rs {
		if isRemoved[i] {
			removedRules = append(removedRules, w.rs[i])
			removedPrios = append(removedPrios, w.prios[i])
			continue
		}
		survivors = append(survivors, w.rs[i])
		survivorPrios = append(survivorPrios, w.prios[i])
	}
	addStart := len(survivors)
	for i := 0; i < addN; i++ {
		survivors = append(survivors, randRule(rng))
		survivorPrios = append(survivorPrios, w.maxPrio+1+int32(i))
	}
	w.rs, w.prios = survivors, survivorPrios
	w.maxPrio += int32(addN)
	return Delta{
		Rules: survivors, Prios: survivorPrios, MaxPrio: w.maxPrio,
		AddStart: addStart, RemovedRules: removedRules, RemovedPrios: removedPrios,
	}
}

// TestDeltaEquivalentToCompile drives random delta chains and asserts the
// evolved program deep-equals a fresh compile of the same successor set —
// arenas, boundary refcounts, representation choices, everything — and
// that both agree with the linear oracle.
func TestDeltaEquivalentToCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		k := 40 + rng.Intn(120)
		w := &ruleWorld{maxPrio: int32(k - 1)}
		w.rs = make([]rules.Rule, k)
		w.prios = make([]int32, k)
		for i := range w.rs {
			w.rs[i] = randRule(rng)
			w.prios[i] = int32(i)
		}
		p := Compile(w.rs, w.prios, w.maxPrio)
		for step := 0; step < 12; step++ {
			// Mostly small steps (patch path), occasionally heavy churn
			// to cross the recompile threshold.
			bound := len(w.rs)/10 + 1
			if step%5 == 4 {
				bound = len(w.rs)/2 + 1
			}
			d := w.step(rng, rng.Intn(bound), rng.Intn(bound))
			p = p.Delta(d)
			fresh := Compile(w.rs, w.prios, w.maxPrio)
			if !reflect.DeepEqual(p, fresh) {
				t.Fatalf("trial %d step %d: delta program diverged from fresh compile", trial, step)
			}
			checkAgainstOracle(t, p, w.rs, w.prios, 120, rng)
		}
	}
}

// TestMemoryBytesNumberingInvariant: a delta-evolved program (sparse
// priority domain) must report the same MemoryBytes as compiling the
// same live rules densely from scratch — the figure EPCBudgeter weights
// and the filter's delta-vs-oracle parity rely on — while RetainedBytes
// covers the actual, slack-bearing arrays.
func TestMemoryBytesNumberingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k := 200
	w := &ruleWorld{maxPrio: int32(k - 1)}
	w.rs = make([]rules.Rule, k)
	w.prios = make([]int32, k)
	for i := range w.rs {
		w.rs[i] = randRule(rng)
		w.prios[i] = int32(i)
	}
	p := Compile(w.rs, w.prios, w.maxPrio)
	for step := 0; step < 10; step++ {
		d := w.step(rng, 1+rng.Intn(8), 1+rng.Intn(8))
		p = p.Delta(d)
		dense := Compile(w.rs, nil, int32(len(w.rs)-1))
		if got, want := p.MemoryBytes(), dense.MemoryBytes(); got != want {
			t.Fatalf("step %d: sparse-domain MemoryBytes %d != dense compile %d", step, got, want)
		}
		if p.RetainedBytes() < p.MemoryBytes() {
			t.Fatalf("step %d: RetainedBytes %d < MemoryBytes %d", step, p.RetainedBytes(), p.MemoryBytes())
		}
	}
}

func TestCompileEmpty(t *testing.T) {
	p := Compile(nil, nil, -1)
	if _, _, _, ok := p.Classify(packet.FiveTuple{SrcIP: 1}); ok {
		t.Fatalf("empty program matched")
	}
	if p.MemoryBytes() <= 0 || p.RetainedBytes() < p.MemoryBytes() {
		t.Fatalf("empty program memory accounting: mem=%d retained=%d", p.MemoryBytes(), p.RetainedBytes())
	}
}

func TestUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		b := make([]uint32, rng.Intn(40))
		for i := range b {
			b[i] = uint32(rng.Intn(1000))
		}
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for n := 0; n < 50; n++ {
			v := uint32(rng.Intn(1100))
			want := sort.Search(len(b), func(i int) bool { return b[i] > v })
			if got := upperBound(b, v); got != want {
				t.Fatalf("upperBound(%v, %d)=%d want %d", b, v, got, want)
			}
		}
	}
}

// TestClassifyConcurrentWithDelta exercises the copy-on-write contract
// under -race: readers classify against a program while the writer
// evolves successors from it.
func TestClassifyConcurrentWithDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k := 120
	w := &ruleWorld{maxPrio: int32(k - 1)}
	w.rs = make([]rules.Rule, k)
	w.prios = make([]int32, k)
	for i := range w.rs {
		w.rs[i] = randRule(rng)
		w.prios[i] = int32(i)
	}
	p := Compile(w.rs, w.prios, w.maxPrio)
	frozen := append([]rules.Rule(nil), w.rs...)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for n := 0; n < 5000; n++ {
				tu := randProbe(r, frozen)
				wantIdx, wantOK := oracleMatch(frozen, tu)
				gotIdx, _, _, gotOK := p.Classify(tu)
				if gotOK != wantOK || (gotOK && int(gotIdx) != wantIdx) {
					t.Errorf("concurrent probe diverged: got (%d,%v) want (%d,%v)", gotIdx, gotOK, wantIdx, wantOK)
					return
				}
			}
		}(int64(g))
	}
	cur := p
	for step := 0; step < 6; step++ {
		cur = cur.Delta(w.step(rng, 1+rng.Intn(5), 1+rng.Intn(5)))
	}
	wg.Wait()
	if _, _, _, ok := cur.Classify(packet.FiveTuple{}); ok && len(w.rs) == 0 {
		t.Fatalf("empty successor matched")
	}
}

var fuzzOnce struct {
	sync.Once
	rs []rules.Rule
	p  *Program
}

func fuzzProgram() ([]rules.Rule, *Program) {
	fuzzOnce.Do(func() {
		rng := rand.New(rand.NewSource(6))
		fuzzOnce.rs = make([]rules.Rule, 150)
		for i := range fuzzOnce.rs {
			fuzzOnce.rs[i] = randRule(rng)
		}
		fuzzOnce.p = Compile(fuzzOnce.rs, nil, int32(len(fuzzOnce.rs)-1))
	})
	return fuzzOnce.rs, fuzzOnce.p
}

// FuzzClassify feeds arbitrary five-tuples through the compiled program
// and cross-checks the linear oracle.
func FuzzClassify(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint16(0), uint16(0), uint8(0))
	f.Add(uint32(0xC0000201), uint32(0xC6336401), uint16(53), uint16(443), uint8(17))
	f.Add(^uint32(0), ^uint32(0), uint16(65535), uint16(65535), uint8(255))
	var seed [13]byte
	binary.BigEndian.PutUint32(seed[0:], 0x0A000001)
	f.Add(binary.BigEndian.Uint32(seed[0:]), uint32(0x0A000002), uint16(1024), uint16(80), uint8(6))
	f.Fuzz(func(t *testing.T, src, dst uint32, sp, dp uint16, proto uint8) {
		rs, p := fuzzProgram()
		tu := packet.FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: packet.Protocol(proto)}
		wantIdx, wantOK := oracleMatch(rs, tu)
		gotIdx, gotPrio, _, gotOK := p.Classify(tu)
		if gotOK != wantOK {
			t.Fatalf("tuple %v: ok=%v want %v", tu, gotOK, wantOK)
		}
		if gotOK && (int(gotIdx) != wantIdx || gotPrio != int32(wantIdx)) {
			t.Fatalf("tuple %v: got (%d,%d) want %d", tu, gotIdx, gotPrio, wantIdx)
		}
	})
}
