package classify

import "github.com/innetworkfiltering/vif/internal/packet"

// Breadth-first burst classification. The scalar Classify resolves a
// packet's five attributes back to back, so each direct-index load's
// latency serializes behind the previous one. ClassifyBatch runs the
// same stages across the whole burst instead: one pass per attribute
// resolving every packet's interval (independent loads the memory system
// overlaps), then the per-packet smallest-set-driven intersections. The
// verdicts, priorities, and ref accounting are exactly Classify's —
// property tests assert the equivalence packet by packet.

// Result is one packet's classification verdict, equal field for field
// to the corresponding Classify return.
type Result struct {
	Rule int32
	Prio int32
	Refs int32
	OK   bool
}

// BatchScratch holds ClassifyBatch's structure-of-arrays working state.
// Reuse one per caller (it is not safe for concurrent use); the zero
// value is ready.
type BatchScratch struct {
	cls  [numAttrs][]classRef
	same []bool
	out  []Result
}

func (sc *BatchScratch) grow(n int) {
	if cap(sc.out) < n {
		for a := 0; a < numAttrs; a++ {
			sc.cls[a] = make([]classRef, n)
		}
		sc.same = make([]bool, n)
		sc.out = make([]Result, n)
	}
	for a := 0; a < numAttrs; a++ {
		sc.cls[a] = sc.cls[a][:n]
	}
	sc.same = sc.same[:n]
	sc.out = sc.out[:n]
}

// ClassifyBatch classifies a burst, returning one Result per tuple in a
// slice owned by sc (valid until the next call). Runs of consecutive
// identical tuples — the shape the filter's dedup pass feeds it — are
// resolved once and copied, preserving the same-flow short-circuit of
// the scalar path.
func (p *Program) ClassifyBatch(ts []packet.FiveTuple, sc *BatchScratch) []Result {
	n := len(ts)
	sc.grow(n)
	same := sc.same
	for i := 0; i < n; i++ {
		same[i] = i > 0 && ts[i] == ts[i-1]
	}

	// Stage 1: per-attribute interval resolution for the whole burst.
	// miss[i] flags a packet whose candidate set went empty on some
	// attribute; its intersect stage is skipped but its refs (charged per
	// probed attribute up to and including the empty one, like the scalar
	// early exit) are already final.
	var big [numAttrs]bool
	for a := 0; a < numAttrs; a++ {
		tb := &p.attrs[a]
		big[a] = len(tb.bounds) > hotBoundsMax
		cls := sc.cls[a]
		switch a {
		case attrSrc:
			for i := 0; i < n; i++ {
				if same[i] {
					cls[i] = cls[i-1]
					continue
				}
				cls[i] = tb.refs[tb.interval(ts[i].SrcIP)]
			}
		case attrDst:
			for i := 0; i < n; i++ {
				if same[i] {
					cls[i] = cls[i-1]
					continue
				}
				cls[i] = tb.refs[tb.interval(ts[i].DstIP)]
			}
		case attrSrcPort:
			for i := 0; i < n; i++ {
				if same[i] {
					cls[i] = cls[i-1]
					continue
				}
				cls[i] = tb.refs[tb.interval(uint32(ts[i].SrcPort))]
			}
		case attrDstPort:
			for i := 0; i < n; i++ {
				if same[i] {
					cls[i] = cls[i-1]
					continue
				}
				cls[i] = tb.refs[tb.interval(uint32(ts[i].DstPort))]
			}
		default: // attrProto
			for i := 0; i < n; i++ {
				if same[i] {
					cls[i] = cls[i-1]
					continue
				}
				cls[i] = tb.refs[tb.interval(uint32(ts[i].Proto))]
			}
		}
	}

	// Stage 2: per-packet driver selection + intersection, mirroring the
	// scalar probe's accounting exactly (one ref per multi-line table
	// probed, stopping at the first empty candidate set).
	out := sc.out
	for i := 0; i < n; i++ {
		if same[i] {
			out[i] = out[i-1]
			continue
		}
		var cls [numAttrs]classRef
		refs := 0
		driver, driverScore := 0, int(^uint(0)>>1)
		miss := false
		for a := 0; a < numAttrs; a++ {
			if big[a] {
				refs++
			}
			ref := sc.cls[a][i]
			score := int(ref.n) + len(p.attrs[a].anyList)
			if score == 0 {
				miss = true
				break
			}
			cls[a] = ref
			if score < driverScore {
				driver, driverScore = a, score
			}
		}
		if miss {
			out[i] = Result{Refs: int32(refs)}
			continue
		}
		r, pr, irefs, ok := p.intersect(&cls, driver)
		out[i] = Result{Rule: r, Prio: pr, Refs: int32(refs + irefs), OK: ok}
	}
	return out
}
