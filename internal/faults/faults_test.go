package faults

import (
	"sync"
	"testing"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if in.Should(RingFull) {
			t.Fatal("nil injector fired")
		}
	}
	if in.Evaluations(RingFull) != 0 || in.Fired(RingFull) != 0 {
		t.Fatal("nil injector counted")
	}
}

func TestNoSpecNeverFires(t *testing.T) {
	in := New(1)
	for i := 0; i < 100; i++ {
		if in.Should(DeltaApply) {
			t.Fatal("unspecced point fired")
		}
	}
	if in.Evaluations(DeltaApply) != 100 {
		t.Fatalf("evaluations %d, want 100", in.Evaluations(DeltaApply))
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	in := New(7)
	in.Enable(RingFull, Spec{Every: 3})
	var fires []int
	for i := 1; i <= 12; i++ {
		if in.Should(RingFull) {
			fires = append(fires, i)
		}
	}
	want := []int{3, 6, 9, 12}
	if len(fires) != len(want) {
		t.Fatalf("fires %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires %v, want %v", fires, want)
		}
	}
}

func TestProbDeterministicAcrossInjectors(t *testing.T) {
	a, b := New(42), New(42)
	a.Enable(PagingSpike, Spec{Prob: 0.3})
	b.Enable(PagingSpike, Spec{Prob: 0.3})
	fired := 0
	for i := 0; i < 10000; i++ {
		fa, fb := a.Should(PagingSpike), b.Should(PagingSpike)
		if fa != fb {
			t.Fatalf("ordinal %d: injectors with one seed diverged", i+1)
		}
		if fa {
			fired++
		}
	}
	// The hash is uniform; 0.3 +- a wide tolerance.
	if fired < 2500 || fired > 3500 {
		t.Fatalf("fired %d of 10000 at p=0.3", fired)
	}
	// A different seed yields a different schedule.
	c := New(43)
	c.Enable(PagingSpike, Spec{Prob: 0.3})
	d2, same := New(42), 0
	d2.Enable(PagingSpike, Spec{Prob: 0.3})
	diverged := false
	for i := 0; i < 1000; i++ {
		if c.Should(PagingSpike) != d2.Should(PagingSpike) {
			diverged = true
		} else {
			same++
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical schedules over 1000 ordinals")
	}
}

func TestLimitBoundsFires(t *testing.T) {
	in := New(5)
	in.Enable(AuditFailure, Spec{Every: 1, Limit: 4})
	fired := 0
	for i := 0; i < 50; i++ {
		if in.Should(AuditFailure) {
			fired++
		}
	}
	if fired != 4 {
		t.Fatalf("fired %d, limit 4", fired)
	}
	if in.Fired(AuditFailure) != 4 {
		t.Fatalf("Fired %d, want 4", in.Fired(AuditFailure))
	}
}

func TestUnknownPointPanicsOnEnable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Enable of unknown point did not panic")
		}
	}()
	New(1).Enable(Point("typo"), Spec{Every: 1})
}

// TestConcurrentShouldIsRaceFreeAndCounted drives one point from many
// goroutines: counters must be exact and the run race-clean (-race in CI).
func TestConcurrentShouldIsRaceFreeAndCounted(t *testing.T) {
	in := New(99)
	in.Enable(RingFull, Spec{Every: 2})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				in.Should(RingFull)
			}
		}()
	}
	wg.Wait()
	if got := in.Evaluations(RingFull); got != workers*per {
		t.Fatalf("evaluations %d, want %d", got, workers*per)
	}
	if got := in.Fired(RingFull); got != workers*per/2 {
		t.Fatalf("fired %d, want %d (Every=2 over a totally ordered counter)", got, workers*per/2)
	}
}
