// Package faults is the deterministic fault-injection harness behind the
// engine's chaos test suite. An Injector owns a small fixed set of named
// injection points (ring-full storms, enclave paging spikes, delta-apply
// failures, audit failures); production code threads an Injector through
// its config and asks Should(point) at each hook. A nil Injector — the
// production default — answers false from a nil-receiver method, so the
// shipped hot path pays one nil check and nothing else.
//
// Determinism is the point: every fire decision is a pure function of
// (seed, point, evaluation ordinal). The ordinal comes from an atomic
// per-point counter, so a schedule is reproducible for a given seed and
// evaluation count even when the evaluations themselves race across
// goroutines — the counter imposes a total order on them. Probabilistic
// specs hash the ordinal through SplitMix64; periodic specs fire on every
// Nth ordinal exactly.
//
// Concurrency contract: Should, Evaluations, and Fired are safe from any
// number of goroutines, lock-free, and allocation-free. Enable and
// Disable swap a spec with one atomic store and may run concurrently with
// Should (an in-flight evaluation uses whichever spec it loaded).
// Injectors have no background goroutines and nothing to close.
//
// Invariants: a nil *Injector never fires and never panics; a point with
// no spec installed never fires; Fired(p) <= Evaluations(p) always; with
// Spec.Limit > 0 at most Limit evaluations fire for that spec's lifetime;
// two Injectors built with the same seed and driven through the same
// per-point evaluation sequence fire on identical ordinals.
package faults
