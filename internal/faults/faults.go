package faults

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Point names one injection site. The set is closed: production hooks and
// the chaos suite agree on these names at compile time.
type Point string

// Injection points the engine and session layers consult.
const (
	// RingFull simulates a shard ring refusing an enqueue (a backpressure
	// storm): the injection paths treat a fire exactly like a full ring.
	RingFull Point = "ring_full"
	// PagingSpike inflates one namespace's observed EPC demand during a
	// rebalance, modeling an enclave working set blowing past its share.
	PagingSpike Point = "paging_spike"
	// DeltaApply fails a shard's ReconfigureNamespaceDelta apply mid-
	// flight, leaving the namespace partially reconfigured so the
	// automatic full-rebuild rollback path runs.
	DeltaApply Point = "delta_apply"
	// AuditFailure corrupts an epoch audit so the victim-side check
	// reports a violation where none occurred.
	AuditFailure Point = "audit_failure"
	// ModuleFault panics a burst module mid-burst: the chain consults the
	// point before each module invocation, so a fire exercises the worker
	// supervisor's faulted-packet accounting from inside the pipeline.
	ModuleFault Point = "module_fault"
)

// points is the closed universe, in the order the state array uses.
var points = [...]Point{RingFull, PagingSpike, DeltaApply, AuditFailure, ModuleFault}

// ErrInjected is the error surfaced by hooks that fail an operation
// (rather than silently degrade it) when their point fires.
var ErrInjected = errors.New("faults: injected failure")

// Spec says when a point fires. Exactly one of Prob or Every should be
// set; with both zero the spec never fires (equivalent to Disable).
type Spec struct {
	// Prob fires each evaluation independently with this probability,
	// decided by a deterministic hash of (seed, point, ordinal).
	Prob float64
	// Every fires on every Nth evaluation (1 = always). Takes precedence
	// over Prob when nonzero.
	Every uint64
	// Limit bounds total fires for this spec; 0 is unlimited.
	Limit uint64
}

type pointState struct {
	spec  atomic.Pointer[Spec]
	evals atomic.Uint64
	fired atomic.Uint64
}

// Injector is one seeded fault schedule. The zero value is not usable;
// build with New. A nil *Injector is the production no-op.
type Injector struct {
	seed  uint64
	state [len(points)]pointState
}

// New builds an injector whose probabilistic decisions derive from seed.
func New(seed uint64) *Injector {
	return &Injector{seed: seed}
}

// index maps a point to its state slot (-1 for an unknown point).
func index(p Point) int {
	for i, q := range points {
		if q == p {
			return i
		}
	}
	return -1
}

// Enable installs a spec for a point, replacing any previous one (and its
// fire budget). Enabling an unknown point panics: a typo in a chaos
// schedule must not silently test nothing.
func (in *Injector) Enable(p Point, s Spec) {
	i := index(p)
	if i < 0 {
		panic(fmt.Sprintf("faults: unknown point %q", p))
	}
	spec := s
	in.state[i].spec.Store(&spec)
}

// Disable removes a point's spec; subsequent evaluations never fire.
func (in *Injector) Disable(p Point) {
	if i := index(p); i >= 0 {
		in.state[i].spec.Store(nil)
	}
}

// Should records one evaluation of a point and reports whether the fault
// fires. Nil-safe: a nil injector (production) always answers false.
func (in *Injector) Should(p Point) bool {
	if in == nil {
		return false
	}
	i := index(p)
	if i < 0 {
		return false
	}
	st := &in.state[i]
	n := st.evals.Add(1)
	spec := st.spec.Load()
	if spec == nil {
		return false
	}
	fire := false
	switch {
	case spec.Every > 0:
		fire = n%spec.Every == 0
	case spec.Prob > 0:
		// Deterministic per-ordinal coin: hash (seed, point, ordinal) and
		// compare against the probability as a 64-bit threshold.
		h := splitmix64(in.seed ^ pointHash(p) ^ n)
		fire = float64(h) < spec.Prob*float64(1<<63)*2
	}
	if fire && spec.Limit > 0 {
		// Claim a fire slot; losers past the budget do not fire.
		for {
			f := st.fired.Load()
			if f >= spec.Limit {
				return false
			}
			if st.fired.CompareAndSwap(f, f+1) {
				return true
			}
		}
	}
	if fire {
		st.fired.Add(1)
	}
	return fire
}

// Evaluations returns how many times a point has been consulted.
func (in *Injector) Evaluations(p Point) uint64 {
	if in == nil {
		return 0
	}
	if i := index(p); i >= 0 {
		return in.state[i].evals.Load()
	}
	return 0
}

// Fired returns how many evaluations of a point fired.
func (in *Injector) Fired(p Point) uint64 {
	if in == nil {
		return 0
	}
	if i := index(p); i >= 0 {
		return in.state[i].fired.Load()
	}
	return 0
}

// pointHash folds a point name into the seed domain (FNV-1a).
func pointHash(p Point) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the standard finalizer-quality mixer: any counter in,
// uniform bits out, no state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
