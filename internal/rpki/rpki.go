// Package rpki is a minimal Resource Public Key Infrastructure registry
// used to authorize VIF filtering requests (§VI-B: "the victim network can
// easily authenticate to the IXP via RPKI", and §VII: "filter rules are
// first validated with RPKI" so a malicious network cannot black-hole
// someone else's prefix by requesting filters for it).
//
// Only origin validation is modelled — ROAs binding a prefix to the AS
// authorized to originate it — because that is all VIF consumes: a
// filtering request for destination prefix P from AS V is honored only if
// a ROA authorizes V for P.
package rpki

import (
	"errors"
	"fmt"
	"sync"

	"github.com/innetworkfiltering/vif/internal/bgp"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// Validity is the RPKI origin-validation outcome.
type Validity int

// Outcomes.
const (
	// Valid: a ROA covers the prefix and authorizes the AS.
	Valid Validity = iota + 1
	// Invalid: a ROA covers the prefix but for a different AS or a
	// shorter max length.
	Invalid
	// NotFound: no ROA covers the prefix.
	NotFound
)

// String renders the outcome.
func (v Validity) String() string {
	switch v {
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	case NotFound:
		return "not-found"
	default:
		return fmt.Sprintf("validity(%d)", int(v))
	}
}

// ErrUnauthorized rejects filtering requests that fail origin validation.
var ErrUnauthorized = errors.New("rpki: requester not authorized for prefix")

// ROA is a route origin authorization: asn may originate prefix up to
// MaxLength.
type ROA struct {
	Prefix    rules.Prefix
	ASN       bgp.ASN
	MaxLength uint8
}

// Registry is a thread-safe ROA store (the IXP keeps a validated cache).
type Registry struct {
	mu   sync.RWMutex
	roas []ROA
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add registers a ROA. MaxLength zero defaults to the prefix length.
func (r *Registry) Add(roa ROA) error {
	if roa.MaxLength == 0 {
		roa.MaxLength = roa.Prefix.Len
	}
	if roa.MaxLength < roa.Prefix.Len || roa.MaxLength > 32 {
		return fmt.Errorf("rpki: max length %d invalid for %v", roa.MaxLength, roa.Prefix)
	}
	roa.Prefix = roa.Prefix.Canonical()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.roas = append(r.roas, roa)
	return nil
}

// Validate performs origin validation of (prefix, origin).
func (r *Registry) Validate(prefix rules.Prefix, origin bgp.ASN) Validity {
	prefix = prefix.Canonical()
	r.mu.RLock()
	defer r.mu.RUnlock()
	covered := false
	for _, roa := range r.roas {
		if roa.Prefix.Len > prefix.Len || !roa.Prefix.Contains(prefix.Addr) {
			continue // ROA does not cover this prefix
		}
		covered = true
		if roa.ASN == origin && prefix.Len <= roa.MaxLength {
			return Valid
		}
	}
	if covered {
		return Invalid
	}
	return NotFound
}

// AuthorizeFilterRequest checks that every rule in a requested set targets
// destination space the requesting AS is authorized for — the gate that
// stops a malicious "victim" from asking an IXP to drop someone else's
// traffic (§VII). Rules whose destination is unbounded (shorter than /8)
// are rejected outright: a victim names its own networks.
func (r *Registry) AuthorizeFilterRequest(requester bgp.ASN, set *rules.Set) error {
	if set == nil || set.Len() == 0 {
		return rules.ErrEmptySet
	}
	for _, rule := range set.Rules {
		if rule.Dst.Len < 8 {
			return fmt.Errorf("%w: rule %d destination %v too broad",
				ErrUnauthorized, rule.ID, rule.Dst)
		}
		if v := r.Validate(rule.Dst, requester); v != Valid {
			return fmt.Errorf("%w: rule %d destination %v is %v for AS%d",
				ErrUnauthorized, rule.ID, rule.Dst, v, requester)
		}
	}
	return nil
}
