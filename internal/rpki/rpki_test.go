package rpki

import (
	"errors"
	"testing"

	"github.com/innetworkfiltering/vif/internal/bgp"
	"github.com/innetworkfiltering/vif/internal/rules"
)

func TestValidateOutcomes(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(ROA{Prefix: rules.MustParsePrefix("192.0.2.0/24"), ASN: 64500}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(ROA{Prefix: rules.MustParsePrefix("10.0.0.0/8"), ASN: 64501, MaxLength: 16}); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name   string
		prefix string
		origin uint32
		want   Validity
	}{
		{"exact valid", "192.0.2.0/24", 64500, Valid},
		{"wrong origin", "192.0.2.0/24", 64999, Invalid},
		{"more specific within maxlen", "10.1.0.0/16", 64501, Valid},
		{"more specific beyond maxlen", "10.1.1.0/24", 64501, Invalid},
		{"uncovered", "203.0.113.0/24", 64500, NotFound},
		{"less specific than roa", "192.0.0.0/16", 64500, NotFound},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := r.Validate(rules.MustParsePrefix(tt.prefix), bgp.ASN(tt.origin))
			if got != tt.want {
				t.Errorf("Validate(%s, AS%d) = %v, want %v", tt.prefix, tt.origin, got, tt.want)
			}
		})
	}
}

func TestAddValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(ROA{Prefix: rules.MustParsePrefix("10.0.0.0/16"), ASN: 1, MaxLength: 8}); err == nil {
		t.Fatal("max length shorter than prefix accepted")
	}
	if err := r.Add(ROA{Prefix: rules.MustParsePrefix("10.0.0.0/16"), ASN: 1, MaxLength: 33}); err == nil {
		t.Fatal("max length 33 accepted")
	}
}

func TestAuthorizeFilterRequest(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(ROA{Prefix: rules.MustParsePrefix("192.0.2.0/24"), ASN: 64500, MaxLength: 32}); err != nil {
		t.Fatal(err)
	}

	good, err := rules.NewSet([]rules.Rule{
		rules.MustParse("drop udp from any to 192.0.2.0/24 dport 53"),
		rules.MustParse("drop 50% tcp from any to 192.0.2.10/32 dport 80"),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AuthorizeFilterRequest(64500, good); err != nil {
		t.Fatalf("legitimate victim rejected: %v", err)
	}

	// A different AS asking to filter the same prefix: denied.
	if err := r.AuthorizeFilterRequest(64666, good); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("hijacker allowed: %v", err)
	}

	// Rules covering someone else's space: denied even for a valid AS.
	foreign, err := rules.NewSet([]rules.Rule{
		rules.MustParse("drop udp from any to 198.51.100.0/24"),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AuthorizeFilterRequest(64500, foreign); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("foreign prefix allowed: %v", err)
	}

	// Overly broad destinations: denied outright (DoS-by-filtering guard).
	broad, err := rules.NewSet([]rules.Rule{
		rules.MustParse("drop udp from any to 0.0.0.0/0"),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AuthorizeFilterRequest(64500, broad); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("0.0.0.0/0 allowed: %v", err)
	}

	if err := r.AuthorizeFilterRequest(64500, nil); err == nil {
		t.Fatal("nil set accepted")
	}
}

func TestValidityString(t *testing.T) {
	tests := []struct {
		v    Validity
		want string
	}{
		{Valid, "valid"}, {Invalid, "invalid"}, {NotFound, "not-found"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("%d.String() = %q", tt.v, got)
		}
	}
}
