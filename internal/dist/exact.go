// The exact solver: a branch-and-bound stand-in for the paper's CPLEX
// baseline (Table I). It searches whole-rule placements — splitting is the
// greedy's privilege; an integer program would model it with many more
// variables — on the MinEnclaves lower-bound fleet, minimizing the same
// max-load + Alpha·max-memory objective. Like the paper's CPLEX runs it is
// operated with a deadline and an optional stop-at-first-incumbent mode.
package dist

import (
	"math"
	"sort"
	"time"
)

// ExactOptions configures SolveExact.
type ExactOptions struct {
	// StopAtFirst returns as soon as the first incumbent (any complete
	// assignment) is found, mirroring the paper's "stop CPLEX at the first
	// sub-optimal solution" configuration.
	StopAtFirst bool
	// Deadline bounds the search wall clock; on expiry the best incumbent
	// found so far is returned with Proven=false. Zero means 30 s.
	Deadline time.Duration
}

// ExactResult reports the exact solver's outcome and timings.
type ExactResult struct {
	// Allocation is the best whole-rule placement found (nil only if the
	// instance is invalid). Allocation.Proven reports whether the search
	// space was exhausted before the deadline.
	Allocation *Allocation
	// FirstIncumbent is the wall-clock time to the first complete
	// assignment (Table I's "first incumbent" column).
	FirstIncumbent time.Duration
	// Elapsed is the total search time.
	Elapsed time.Duration
}

// exactState carries the DFS state.
type exactState struct {
	in       Instance
	n        int
	order    []int     // rule indices, bandwidth-descending
	suffix   []float64 // suffix[i] = sum of B over order[i:]
	maxRules int
	deadline time.Time
	nodes    uint64
	timedOut bool
	stopOne  bool

	assign []int // per order position, enclave index
	load   []float64
	rules  []int

	best      []int
	bestObj   float64
	firstAt   time.Duration
	started   time.Time
	incumbent bool
}

// SolveExact runs the branch-and-bound search. The returned allocation is
// always hard-feasible on memory (rule counts); the line-rate cap is soft —
// exceeding it is penalized through the max-load objective term exactly as
// an overloaded enclave would be in deployment — because whole-rule bin
// packing onto the lower-bound fleet may admit no G-respecting solution at
// all (that is *why* VIF's balancer splits rules).
func SolveExact(in Instance, opts ExactOptions) (*ExactResult, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if opts.Deadline <= 0 {
		opts.Deadline = 30 * time.Second
	}
	k := len(in.B)
	st := &exactState{
		in:       in,
		n:        in.MinEnclaves(),
		order:    make([]int, k),
		suffix:   make([]float64, k+1),
		maxRules: in.MaxRulesPerEnclave(),
		stopOne:  opts.StopAtFirst,
		assign:   make([]int, k),
		bestObj:  math.Inf(1),
		started:  time.Now(),
	}
	st.deadline = st.started.Add(opts.Deadline)
	for i := range st.order {
		st.order[i] = i
	}
	sort.Slice(st.order, func(a, b int) bool { return in.B[st.order[a]] > in.B[st.order[b]] })
	for i := k - 1; i >= 0; i-- {
		st.suffix[i] = st.suffix[i+1] + in.B[st.order[i]]
	}
	st.load = make([]float64, st.n)
	st.rules = make([]int, st.n)

	st.dfs(0, 0)

	res := &ExactResult{Elapsed: time.Since(st.started), FirstIncumbent: st.firstAt}
	if st.best != nil {
		a := &Allocation{N: st.n, X: make([][]float64, k), Proven: !st.timedOut && !st.stopOne}
		for pos, j := range st.best {
			row := make([]float64, st.n)
			row[j] = 1
			a.X[st.order[pos]] = row
		}
		if err := in.finalize(a); err != nil {
			return nil, err
		}
		res.Allocation = a
	}
	return res, nil
}

// dfs assigns the rule at position pos; used is the number of non-empty
// enclaves (symmetry breaking: a rule may open at most one new enclave).
func (st *exactState) dfs(pos, used int) {
	if st.timedOut || (st.stopOne && st.incumbent) {
		return
	}
	st.nodes++
	if st.nodes&0xfff == 0 && time.Now().After(st.deadline) {
		st.timedOut = true
		return
	}
	if pos == len(st.order) {
		obj := st.in.objectiveOf(st.load, st.rules)
		if !st.incumbent {
			st.incumbent = true
			st.firstAt = time.Since(st.started)
		}
		if obj < st.bestObj {
			st.bestObj = obj
			st.best = append(st.best[:0], st.assign[:pos]...)
		}
		return
	}

	// Lower bound: the bottleneck load can't drop below the current max nor
	// below the perfectly balanced average of everything placed so far plus
	// everything remaining; the bottleneck memory can't drop below a fleet
	// holding rules in perfectly even counts.
	var curMax, placed float64
	for _, l := range st.load {
		if l > curMax {
			curMax = l
		}
		placed += l
	}
	lbLoad := math.Max(curMax, (placed+st.suffix[pos])/float64(st.n))
	minMaxRules := (len(st.order) + st.n - 1) / st.n
	lbMem := st.in.V + st.in.U*float64(minMaxRules)
	if lbLoad+st.in.Alpha*lbMem >= st.bestObj {
		return
	}

	b := st.in.B[st.order[pos]]
	limit := used
	if limit >= st.n {
		limit = st.n - 1
	}
	// Visit enclaves least-loaded first so the DFS's first plunge is a
	// greedy-quality incumbent (fast FirstIncumbent, strong initial bound).
	cand := make([]int, 0, limit+1)
	for j := 0; j <= limit; j++ {
		if st.rules[j] < st.maxRules {
			cand = append(cand, j)
		}
	}
	sort.Slice(cand, func(a, c int) bool { return st.load[cand[a]] < st.load[cand[c]] })
	for _, j := range cand {
		st.assign[pos] = j
		st.load[j] += b
		st.rules[j]++
		nu := used
		if j == used {
			nu++
		}
		st.dfs(pos+1, nu)
		st.load[j] -= b
		st.rules[j]--
		if st.timedOut || (st.stopOne && st.incumbent) {
			return
		}
	}
}
