// Package dist solves VIF's rule-distribution problem (§IV-B, Appendix C):
// place k filter rules with measured bandwidths onto the smallest fleet of
// identical enclaves such that no enclave exceeds its line rate G or its
// EPC-derived memory budget M, balancing the bottleneck load.
//
// Two solvers are provided, mirroring the paper's Table I comparison:
//
//   - Greedy is Algorithm 1: rules sorted by bandwidth, placed
//     longest-processing-time-first, split across enclaves only when no
//     single enclave can absorb them whole. It runs in O(k log k + k log n)
//     and handles the paper's 150K-rule / 500 Gb/s sweep in well under the
//     40 s ceiling of §V-C.
//   - SolveExact is the CPLEX stand-in: branch-and-bound over whole-rule
//     placements with the same objective, reporting time-to-first-incumbent
//     and time-to-proven-optimal, so the harness can regenerate the
//     "exact needs orders of magnitude longer" headline.
//
// Splitting a rule across r enclaves is allowed (the load balancer hashes
// flows within the rule) but not free: every replica must hold the rule and
// the per-flow hash boundary work inflates the replicated traffic by a
// factor Lambda per extra replica, which is why the greedy prefers whole
// placements and the exact solver never splits.
package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Errors.
var (
	ErrBadInstance = errors.New("dist: invalid instance")
	ErrInfeasible  = errors.New("dist: no feasible allocation")
)

// Instance is one rule-distribution problem.
type Instance struct {
	// B is the measured (or estimated) per-rule bandwidth in bits/s.
	// Precondition: every B[i] ≤ G (callers split oversize rules first,
	// see netsim.ClampToCapacity).
	B []float64
	// G is each enclave's line rate in bits/s (paper: 10 Gb/s).
	G float64
	// M is each enclave's memory budget in bytes (paper: ≈92 MB usable EPC).
	M float64
	// U is the per-rule memory cost in bytes (lookup-table share).
	U float64
	// V is the fixed per-enclave memory overhead in bytes (the two
	// count-min-sketch logs plus control state; ≈2 MB).
	V float64
	// Alpha weighs the memory-balance term against the load-balance term
	// in the objective (Appendix C: "α balances two maximums").
	Alpha float64
	// Lambda is the fractional traffic inflation charged per extra replica
	// when a rule is split across enclaves.
	Lambda float64
}

// validate checks instance preconditions shared by both solvers.
func (in Instance) validate() error {
	if len(in.B) == 0 {
		return fmt.Errorf("%w: no rules", ErrBadInstance)
	}
	if in.G <= 0 || in.M <= 0 || in.U <= 0 {
		return fmt.Errorf("%w: G=%g M=%g U=%g", ErrBadInstance, in.G, in.M, in.U)
	}
	if in.V < 0 || in.Lambda < 0 || in.Alpha < 0 {
		return fmt.Errorf("%w: V=%g Lambda=%g Alpha=%g", ErrBadInstance, in.V, in.Lambda, in.Alpha)
	}
	if in.MaxRulesPerEnclave() < 1 {
		return fmt.Errorf("%w: memory budget below one rule", ErrBadInstance)
	}
	for i, b := range in.B {
		if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("%w: B[%d]=%g", ErrBadInstance, i, b)
		}
		if b > in.G {
			return fmt.Errorf("%w: B[%d]=%g exceeds per-enclave rate %g (split it first)", ErrBadInstance, i, b, in.G)
		}
	}
	return nil
}

// MaxRulesPerEnclave returns how many rules fit in one enclave's memory
// budget after the fixed overhead: ⌊(M−V)/U⌋ (≈3,000 for the paper's
// parameters).
func (in Instance) MaxRulesPerEnclave() int {
	if in.U <= 0 {
		return 0
	}
	return int((in.M - in.V) / in.U)
}

// MinEnclaves returns the lower bound on the fleet size: the larger of the
// bandwidth bound ⌈ΣB/G⌉ and the memory bound ⌈k/maxRules⌉.
func (in Instance) MinEnclaves() int {
	var sum float64
	for _, b := range in.B {
		sum += b
	}
	n := 1
	if in.G > 0 {
		if bw := int(math.Ceil(sum / in.G * (1 - 1e-12))); bw > n {
			n = bw
		}
	}
	if mr := in.MaxRulesPerEnclave(); mr > 0 {
		if mem := (len(in.B) + mr - 1) / mr; mem > n {
			n = mem
		}
	}
	return n
}

// Allocation is a solved placement.
type Allocation struct {
	// N is the fleet size.
	N int
	// X[i][j] is the fraction of rule i's traffic steered to enclave j;
	// each row sums to 1. Whole placements have a single 1.0 entry.
	X [][]float64
	// Objective is max-load + Alpha·max-memory, the quantity both solvers
	// minimize (lower is better; see Instance.Objective).
	Objective float64
	// MaxLoad is the bottleneck enclave's load in bits/s, including the
	// Lambda inflation of split rules.
	MaxLoad float64
	// MaxRules is the bottleneck enclave's installed-rule count.
	MaxRules int
	// Proven is set by the exact solver when optimality was proven before
	// the deadline (greedy allocations are heuristic, never proven).
	Proven bool
}

// loads returns per-enclave effective loads (bits/s, Lambda-inflated) and
// per-enclave rule counts for an allocation.
func (in Instance) loads(a *Allocation) (loads []float64, nrules []int, err error) {
	if a == nil || a.N < 1 || len(a.X) != len(in.B) {
		return nil, nil, fmt.Errorf("%w: malformed allocation", ErrBadInstance)
	}
	loads = make([]float64, a.N)
	nrules = make([]int, a.N)
	for i, row := range a.X {
		if len(row) != a.N {
			return nil, nil, fmt.Errorf("%w: rule %d has %d shares, want %d", ErrBadInstance, i, len(row), a.N)
		}
		replicas := 0
		var sum float64
		for _, x := range row {
			if x < -1e-9 {
				return nil, nil, fmt.Errorf("%w: rule %d negative share", ErrBadInstance, i)
			}
			if x > 0 {
				replicas++
			}
			sum += x
		}
		if replicas == 0 || math.Abs(sum-1) > 1e-6 {
			return nil, nil, fmt.Errorf("%w: rule %d shares sum to %g", ErrBadInstance, i, sum)
		}
		inflate := 1 + in.Lambda*float64(replicas-1)
		for j, x := range row {
			if x > 0 {
				loads[j] += x * in.B[i] * inflate
				nrules[j]++
			}
		}
	}
	return loads, nrules, nil
}

// Objective computes max-load + Alpha·max-memory for an allocation, the
// balance objective of the Appendix C formulation.
func (in Instance) Objective(a *Allocation) (float64, error) {
	loads, nrules, err := in.loads(a)
	if err != nil {
		return 0, err
	}
	return in.objectiveOf(loads, nrules), nil
}

func (in Instance) objectiveOf(loads []float64, nrules []int) float64 {
	var maxLoad, maxMem float64
	for j := range loads {
		if loads[j] > maxLoad {
			maxLoad = loads[j]
		}
		if mem := in.V + in.U*float64(nrules[j]); mem > maxMem {
			maxMem = mem
		}
	}
	return maxLoad + in.Alpha*maxMem
}

// Check validates an allocation against the hard constraints: shares sum
// to 1, every enclave's effective load stays within G and its memory
// (fixed overhead + installed rules) within M.
func (in Instance) Check(a *Allocation) error {
	loads, nrules, err := in.loads(a)
	if err != nil {
		return err
	}
	const slack = 1 + 1e-9
	for j := range loads {
		if loads[j] > in.G*slack {
			return fmt.Errorf("%w: enclave %d load %.3g exceeds G=%.3g", ErrInfeasible, j, loads[j], in.G)
		}
		if mem := in.V + in.U*float64(nrules[j]); mem > in.M*slack {
			return fmt.Errorf("%w: enclave %d memory %.3g exceeds M=%.3g", ErrInfeasible, j, mem, in.M)
		}
	}
	return nil
}

// finalize fills the derived Allocation fields from the placement.
func (in Instance) finalize(a *Allocation) error {
	loads, nrules, err := in.loads(a)
	if err != nil {
		return err
	}
	a.MaxLoad, a.MaxRules = 0, 0
	for j := range loads {
		if loads[j] > a.MaxLoad {
			a.MaxLoad = loads[j]
		}
		if nrules[j] > a.MaxRules {
			a.MaxRules = nrules[j]
		}
	}
	a.Objective = in.objectiveOf(loads, nrules)
	return nil
}

// GreedyOptions tunes the greedy solver.
type GreedyOptions struct {
	// MaxEnclaves caps the fleet the greedy may open; 0 means
	// 4·MinEnclaves+8 (generous headroom over the lower bound).
	MaxEnclaves int
}

// greedyEnclave is one bin during greedy packing.
type greedyEnclave struct {
	load  float64 // effective bits/s
	rules int
}

// Greedy is Algorithm 1: sort rules by bandwidth descending and place each
// on the least-loaded enclave that can take it whole; when none can, either
// split the rule across the enclaves with spare bandwidth (paying the
// Lambda inflation) or open a new enclave, whichever keeps the fleet
// smallest. The fleet starts at the MinEnclaves lower bound and grows only
// when the hard constraints force it.
func Greedy(in Instance, opts GreedyOptions) (*Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	k := len(in.B)
	maxRules := in.MaxRulesPerEnclave()
	limit := opts.MaxEnclaves
	if limit <= 0 {
		limit = 4*in.MinEnclaves() + 8
	}

	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return in.B[order[a]] > in.B[order[b]] })

	encl := make([]greedyEnclave, in.MinEnclaves())
	placement := make([]map[int]float64, k) // rule -> enclave -> share
	for _, i := range order {
		if err := greedyPlace(in, i, &encl, placement, maxRules, limit); err != nil {
			return nil, err
		}
	}

	a := &Allocation{N: len(encl), X: make([][]float64, k)}
	for i := range placement {
		row := make([]float64, a.N)
		for j, x := range placement[i] {
			row[j] = x
		}
		a.X[i] = row
	}
	if err := in.finalize(a); err != nil {
		return nil, err
	}
	return a, nil
}

// greedyPlace installs rule i, growing the fleet when necessary.
func greedyPlace(in Instance, i int, encl *[]greedyEnclave, placement []map[int]float64, maxRules, limit int) error {
	b := in.B[i]
	for {
		// Whole placement on the least-loaded enclave with spare capacity.
		best := -1
		for j := range *encl {
			e := &(*encl)[j]
			if e.rules >= maxRules || e.load+b > in.G {
				continue
			}
			if best < 0 || e.load < (*encl)[best].load {
				best = j
			}
		}
		if best >= 0 {
			(*encl)[best].load += b
			(*encl)[best].rules++
			placement[i] = map[int]float64{best: 1}
			return nil
		}

		// Split across enclaves with spare bandwidth and rule slots,
		// least-loaded first, charging the Lambda inflation up front
		// (conservatively assuming the final replica count).
		if shares := greedySplit(in, b, *encl, maxRules); shares != nil {
			inflate := 1 + in.Lambda*float64(len(shares)-1)
			for j, x := range shares {
				(*encl)[j].load += x * b * inflate
				(*encl)[j].rules++
			}
			placement[i] = shares
			return nil
		}

		// Open a new enclave and retry (the whole placement will succeed
		// unless the fleet cap is hit).
		if len(*encl) >= limit {
			return fmt.Errorf("%w: rule %d (b=%.3g) with %d enclaves", ErrInfeasible, i, b, len(*encl))
		}
		*encl = append(*encl, greedyEnclave{})
	}
}

// greedySplit tries to split bandwidth b across enclaves with headroom.
// It returns nil when the fleet cannot absorb the rule even split.
func greedySplit(in Instance, b float64, encl []greedyEnclave, maxRules int) map[int]float64 {
	type slot struct {
		j    int
		free float64
	}
	var slots []slot
	for j := range encl {
		if encl[j].rules >= maxRules {
			continue
		}
		if free := in.G - encl[j].load; free > 0 {
			slots = append(slots, slot{j, free})
		}
	}
	if len(slots) < 2 {
		return nil
	}
	sort.Slice(slots, func(a, c int) bool { return slots[a].free > slots[c].free })

	// Find the smallest replica count r whose combined headroom covers the
	// inflated bandwidth.
	for r := 2; r <= len(slots); r++ {
		var capSum float64
		for _, s := range slots[:r] {
			capSum += s.free
		}
		need := b * (1 + in.Lambda*float64(r-1))
		if capSum < need {
			continue
		}
		// Fill proportionally to headroom: enclave j takes the fraction
		// free_j/capSum of the rule, so its inflated load share
		// need·free_j/capSum never exceeds free_j.
		shares := make(map[int]float64, r)
		var acc float64
		for idx, s := range slots[:r] {
			x := s.free / capSum
			if idx == r-1 {
				x = 1 - acc // absorb rounding
			}
			shares[s.j] = x
			acc += x
		}
		return shares
	}
	return nil
}
