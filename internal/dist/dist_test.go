package dist

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func testInstance(k int, totalBps float64, seed int64) Instance {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, k)
	var sum float64
	for i := range b {
		b[i] = math.Exp(rng.NormFloat64() * 1.5)
		sum += b[i]
	}
	for i := range b {
		b[i] *= totalBps / sum
		if b[i] > 10e9 {
			b[i] = 10e9
		}
	}
	return Instance{B: b, G: 10e9, M: 92e6, U: 92e6 / 3000, V: 2e6, Alpha: 1, Lambda: 0.2}
}

func TestInstanceBounds(t *testing.T) {
	in := testInstance(3000, 100e9, 1)
	if mr := in.MaxRulesPerEnclave(); mr < 2900 || mr > 3000 {
		t.Fatalf("MaxRulesPerEnclave = %d, want ≈2934", mr)
	}
	if mn := in.MinEnclaves(); mn < 10 {
		t.Fatalf("MinEnclaves = %d, want ≥10 for 100 Gb/s at 10 Gb/s each", mn)
	}
}

func TestGreedyFeasible(t *testing.T) {
	for _, k := range []int{10, 100, 3000} {
		in := testInstance(k, 50e9, int64(k))
		a, err := Greedy(in, GreedyOptions{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := in.Check(a); err != nil {
			t.Fatalf("k=%d: allocation infeasible: %v", k, err)
		}
		if a.N < in.MinEnclaves() {
			t.Fatalf("k=%d: N=%d below lower bound %d", k, a.N, in.MinEnclaves())
		}
		if a.MaxLoad > in.G {
			t.Fatalf("k=%d: bottleneck %.3g exceeds G", k, a.MaxLoad)
		}
	}
}

func TestGreedySplitsOversubscribedRules(t *testing.T) {
	// Three rules of 6 Gb/s on 10 Gb/s enclaves: total 18 Gb/s needs 2
	// enclaves, but no pair of whole rules fits one enclave — the greedy
	// must split.
	in := Instance{
		B: []float64{6e9, 6e9, 6e9}, G: 10e9, M: 92e6, U: 1e4, V: 0,
		Alpha: 0, Lambda: 0.1,
	}
	a, err := Greedy(in, GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Check(a); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	split := 0
	for _, row := range a.X {
		replicas := 0
		for _, x := range row {
			if x > 0 {
				replicas++
			}
		}
		if replicas > 1 {
			split++
		}
	}
	if split == 0 {
		t.Fatal("expected at least one split rule")
	}
}

func TestGreedyRuleCapacityForcesFleetGrowth(t *testing.T) {
	// 10 near-zero-bandwidth rules but memory for only 3 rules per enclave.
	in := Instance{
		B: []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		G: 10e9, M: 40, U: 10, V: 5, Alpha: 1, Lambda: 0.2,
	}
	// (40-5)/10 = 3 rules per enclave -> at least 4 enclaves.
	a, err := Greedy(in, GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.N < 4 {
		t.Fatalf("N = %d, want ≥4 (rule capacity 3)", a.N)
	}
	if err := in.Check(a); err != nil {
		t.Fatal(err)
	}
}

func TestExactProvenOnSmallInstance(t *testing.T) {
	in := testInstance(12, 25e9, 7)
	res, err := SolveExact(in, ExactOptions{Deadline: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocation == nil || !res.Allocation.Proven {
		t.Fatal("small instance should be proven optimal within the deadline")
	}
	if res.FirstIncumbent <= 0 || res.Elapsed < res.FirstIncumbent {
		t.Fatalf("timings inconsistent: first=%v elapsed=%v", res.FirstIncumbent, res.Elapsed)
	}
	// The proven optimum must not beat a direct evaluation of its own
	// allocation (internal consistency).
	obj, err := in.Objective(res.Allocation)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-res.Allocation.Objective) > 1e-6*obj {
		t.Fatalf("objective mismatch: %g vs %g", obj, res.Allocation.Objective)
	}
}

func TestExactStopAtFirstIsFast(t *testing.T) {
	in := testInstance(500, 100e9, 9)
	start := time.Now()
	res, err := SolveExact(in, ExactOptions{StopAtFirst: true, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocation == nil {
		t.Fatal("no incumbent found")
	}
	if res.Allocation.Proven {
		t.Fatal("stop-at-first must not claim a proof")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("first incumbent took %v", time.Since(start))
	}
}

func TestValidationRejectsBadInstances(t *testing.T) {
	cases := []Instance{
		{},                                  // no rules
		{B: []float64{1}, G: 0, M: 1, U: 1}, // no line rate
		{B: []float64{20e9}, G: 10e9, M: 92e6, U: 1e4}, // oversize rule
		{B: []float64{-1}, G: 10e9, M: 92e6, U: 1e4},   // negative bandwidth
		{B: []float64{1}, G: 10e9, M: 5, U: 10},        // memory below one rule
	}
	for i, in := range cases {
		if _, err := Greedy(in, GreedyOptions{}); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestCheckRejectsMalformedAllocations(t *testing.T) {
	in := testInstance(4, 5e9, 11)
	a, err := Greedy(in, GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bad := &Allocation{N: a.N, X: make([][]float64, len(a.X))}
	for i := range bad.X {
		bad.X[i] = append([]float64(nil), a.X[i]...)
	}
	bad.X[0][0] += 0.5 // shares no longer sum to 1
	if err := in.Check(bad); err == nil {
		t.Fatal("expected share-sum violation")
	}
}
