package secure

import (
	"bytes"
	"testing"
)

func handshake(t *testing.T) (*Channel, *Channel) {
	t.Helper()
	ek, err := NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	vk, err := NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	encl, err := Establish(ek, vk.PublicBytes(), RoleEnclave)
	if err != nil {
		t.Fatal(err)
	}
	vict, err := Establish(vk, ek.PublicBytes(), RoleVictim)
	if err != nil {
		t.Fatal(err)
	}
	return encl, vict
}

func TestChannelRoundTrip(t *testing.T) {
	encl, vict := handshake(t)
	msgs := [][]byte{
		[]byte("default allow\n1: drop udp from any to 192.0.2.0/24 dport 53"),
		[]byte(""),
		bytes.Repeat([]byte{0xab}, 1<<16), // a sketch-sized payload
	}
	for _, m := range msgs {
		rec := vict.Seal(m)
		got, err := encl.Open(rec)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if !bytes.Equal(got, m) {
			t.Fatalf("round trip mismatch: %d bytes vs %d", len(got), len(m))
		}
	}
	// And the reverse direction.
	rec := encl.Seal([]byte("log snapshot"))
	got, err := vict.Open(rec)
	if err != nil || string(got) != "log snapshot" {
		t.Fatalf("reverse direction: %q, %v", got, err)
	}
}

func TestDirectionKeysDiffer(t *testing.T) {
	encl, _ := handshake(t)
	rec := encl.Seal([]byte("hello"))
	// The enclave must not accept its own record (send key != recv key).
	if _, err := encl.Open(rec); err == nil {
		t.Fatal("reflected record accepted: direction keys are shared")
	}
}

func TestReplayRejected(t *testing.T) {
	encl, vict := handshake(t)
	rec := vict.Seal([]byte("rule update"))
	if _, err := encl.Open(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := encl.Open(rec); err != ErrReplay {
		t.Fatalf("replay: err = %v, want ErrReplay", err)
	}
}

func TestReorderRejected(t *testing.T) {
	encl, vict := handshake(t)
	r1 := vict.Seal([]byte("first"))
	r2 := vict.Seal([]byte("second"))
	if _, err := encl.Open(r2); err != nil {
		t.Fatal(err)
	}
	if _, err := encl.Open(r1); err != ErrReplay {
		t.Fatalf("reorder: err = %v, want ErrReplay", err)
	}
}

func TestTamperRejected(t *testing.T) {
	encl, vict := handshake(t)
	rec := vict.Seal([]byte("drop 50% tcp"))
	for _, idx := range []int{0, 7, 8, len(rec) - 1} {
		bad := append([]byte(nil), rec...)
		bad[idx] ^= 0x01
		if _, err := encl.Open(bad); err == nil {
			t.Fatalf("tampered byte %d accepted", idx)
		}
	}
	if _, err := encl.Open(rec[:5]); err != ErrShortBuf {
		t.Fatalf("short record: err = %v, want ErrShortBuf", err)
	}
}

func TestMITMGetsGarbage(t *testing.T) {
	// A malicious host substituting its own key pair derives different
	// channel keys, so records fail authentication on both ends.
	ek, _ := NewKeyPair()
	vk, _ := NewKeyPair()
	mk, _ := NewKeyPair() // the host in the middle

	vict, err := Establish(vk, mk.PublicBytes(), RoleVictim) // victim duped
	if err != nil {
		t.Fatal(err)
	}
	encl, err := Establish(ek, vk.PublicBytes(), RoleEnclave)
	if err != nil {
		t.Fatal(err)
	}
	rec := vict.Seal([]byte("secret rules"))
	if _, err := encl.Open(rec); err == nil {
		t.Fatal("MITM-derived record accepted by enclave")
	}
}

func TestBindingReportData(t *testing.T) {
	k, _ := NewKeyPair()
	rd := BindingReportData(k.PublicBytes())
	if !VerifyBinding(rd, k.PublicBytes()) {
		t.Fatal("binding must verify for matching key")
	}
	other, _ := NewKeyPair()
	if VerifyBinding(rd, other.PublicBytes()) {
		t.Fatal("binding must fail for substituted key")
	}
	// Second half must be zero padding per the SGX report-data layout.
	for _, b := range rd[32:] {
		if b != 0 {
			t.Fatal("report data padding not zero")
		}
	}
}

func TestEstablishRejectsGarbageKey(t *testing.T) {
	k, _ := NewKeyPair()
	if _, err := Establish(k, []byte{1, 2, 3}, RoleVictim); err == nil {
		t.Fatal("garbage peer key accepted")
	}
	if _, err := Establish(k, k.PublicBytes(), Role(99)); err == nil {
		t.Fatal("bad role accepted")
	}
}

func BenchmarkSealOpen1KiB(b *testing.B) {
	ek, _ := NewKeyPair()
	vk, _ := NewKeyPair()
	encl, _ := Establish(ek, vk.PublicBytes(), RoleEnclave)
	vict, _ := Establish(vk, ek.PublicBytes(), RoleVictim)
	msg := bytes.Repeat([]byte{0x5a}, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := vict.Seal(msg)
		if _, err := encl.Open(rec); err != nil {
			b.Fatal(err)
		}
	}
}
