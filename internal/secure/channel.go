// Package secure implements the attested secure channel between a DDoS
// victim and a VIF filter enclave (§VI-B: "the victim network establishes a
// secure channel with the enclaves (e.g., TLS channels) and submits the
// filtering rules").
//
// The handshake is an ECDH key agreement bound to remote attestation: the
// enclave's ephemeral public key is hashed into the attestation quote's
// report data, so a victim that verifies the quote knows the peer holding
// the other end of the channel is the measured enclave — the untrusted host
// cannot man-in-the-middle it. Record protection is AES-256-GCM with
// direction-separated keys and strictly monotonic sequence numbers
// (replay and reorder of control messages are detected).
package secure

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by channel operations.
var (
	ErrReplay   = errors.New("secure: replayed or reordered record")
	ErrTampered = errors.New("secure: record authentication failed")
	ErrShortBuf = errors.New("secure: record too short")
	ErrBadKey   = errors.New("secure: invalid peer public key")
)

// Role distinguishes the two ends for key derivation.
type Role int

// Channel roles.
const (
	RoleEnclave Role = iota + 1
	RoleVictim
)

// KeyPair is an ephemeral ECDH key pair for one handshake.
type KeyPair struct {
	priv *ecdh.PrivateKey
}

// NewKeyPair generates a P-256 ephemeral key pair.
func NewKeyPair() (*KeyPair, error) {
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("secure: generate key: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// PublicBytes returns the public key share exchanged in the handshake.
func (k *KeyPair) PublicBytes() []byte { return k.priv.PublicKey().Bytes() }

// BindingReportData returns the attestation report data binding a public
// key share to a quote: SHA-256 of the share in the first half, zero
// padding in the second (matching SGX's 64-byte report-data field).
func BindingReportData(pub []byte) [64]byte {
	var rd [64]byte
	sum := sha256.Sum256(pub)
	copy(rd[:32], sum[:])
	return rd
}

// VerifyBinding checks that report data from a verified quote matches the
// public key share presented in the handshake.
func VerifyBinding(reportData [64]byte, pub []byte) bool {
	want := BindingReportData(pub)
	return hmac.Equal(reportData[:], want[:])
}

// Channel is an established AEAD channel. Not safe for concurrent use by
// multiple senders; VIF's control plane is sequential per session.
type Channel struct {
	send    cipher.AEAD
	recv    cipher.AEAD
	sendSeq uint64
	recvSeq uint64
}

// Establish derives the channel from our private key and the peer's public
// share. Both sides derive identical, direction-separated keys: the enclave
// sends with the "e2v" key and receives with "v2e"; the victim mirrors.
func Establish(k *KeyPair, peerPub []byte, role Role) (*Channel, error) {
	peer, err := ecdh.P256().NewPublicKey(peerPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadKey, err)
	}
	shared, err := k.priv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("secure: ecdh: %w", err)
	}
	e2v := deriveKey(shared, "vif-channel e2v")
	v2e := deriveKey(shared, "vif-channel v2e")

	var sendKey, recvKey []byte
	switch role {
	case RoleEnclave:
		sendKey, recvKey = e2v, v2e
	case RoleVictim:
		sendKey, recvKey = v2e, e2v
	default:
		return nil, fmt.Errorf("secure: bad role %d", role)
	}
	send, err := newGCM(sendKey)
	if err != nil {
		return nil, err
	}
	recv, err := newGCM(recvKey)
	if err != nil {
		return nil, err
	}
	return &Channel{send: send, recv: recv}, nil
}

// deriveKey is HKDF-extract+expand (RFC 5869) specialized to one 32-byte
// output block, built on HMAC-SHA-256 from the standard library.
func deriveKey(secret []byte, info string) []byte {
	extract := hmac.New(sha256.New, []byte("vif-hkdf-salt/v1"))
	extract.Write(secret)
	prk := extract.Sum(nil)

	expand := hmac.New(sha256.New, prk)
	expand.Write([]byte(info))
	expand.Write([]byte{1})
	return expand.Sum(nil)
}

func newGCM(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("secure: aes: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secure: gcm: %w", err)
	}
	return aead, nil
}

// Seal encrypts and authenticates plaintext as the next record. The record
// layout is seq(8) ‖ ciphertext; the sequence number doubles as the GCM
// nonce prefix and as the anti-replay counter.
func (c *Channel) Seal(plaintext []byte) []byte {
	c.sendSeq++
	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[4:], c.sendSeq)
	out := make([]byte, 8, 8+len(plaintext)+c.send.Overhead())
	binary.BigEndian.PutUint64(out, c.sendSeq)
	return c.send.Seal(out, nonce[:], plaintext, out[:8])
}

// Open authenticates and decrypts a record, enforcing strictly increasing
// sequence numbers.
func (c *Channel) Open(record []byte) ([]byte, error) {
	if len(record) < 8+c.recv.Overhead() {
		return nil, ErrShortBuf
	}
	seq := binary.BigEndian.Uint64(record[:8])
	if seq <= c.recvSeq {
		return nil, ErrReplay
	}
	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[4:], seq)
	pt, err := c.recv.Open(nil, nonce[:], record[8:], record[:8])
	if err != nil {
		return nil, ErrTampered
	}
	c.recvSeq = seq
	return pt, nil
}
