package ixp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/innetworkfiltering/vif/internal/bgp"
)

// SourceSet is a distribution of attack-source IPs over origin ASes (3M
// open resolvers, 250K Mirai bots in the paper; package attack synthesizes
// scaled equivalents).
type SourceSet struct {
	Name  string
	PerAS map[bgp.ASN]int
}

// Total returns the number of source IPs in the set.
func (s *SourceSet) Total() int {
	t := 0
	for _, n := range s.PerAS {
		t += n
	}
	return t
}

// CoverageResult summarizes the per-victim coverage ratios behind one box
// of Figure 11's box-and-whisker plots.
type CoverageResult struct {
	// Ratios holds, per victim, the fraction of attack source IPs whose
	// path to the victim crosses at least one selected IXP.
	Ratios []float64
	// P5, Q1, Median, Q3, P95 summarize Ratios like the paper's whiskers
	// (5th/95th percentiles) and box (quartiles, median).
	P5, Q1, Median, Q3, P95 float64
}

// Coverage runs the Figure 11 experiment: for every victim, compute the
// policy-routed path from every source AS and test whether any selected
// IXP transits it; the covered *IP-weighted* fraction is the victim's
// ratio.
func Coverage(topo *bgp.Topology, victims []bgp.ASN, sources *SourceSet, selected []*IXP) (*CoverageResult, error) {
	if len(victims) == 0 || sources == nil || sources.Total() == 0 {
		return nil, errors.New("ixp: empty victims or sources")
	}
	res := &CoverageResult{Ratios: make([]float64, 0, len(victims))}
	for _, v := range victims {
		tree, err := topo.Routes(v)
		if err != nil {
			return nil, fmt.Errorf("ixp: routes to victim AS%d: %w", v, err)
		}
		covered, total := 0, 0
		for src, ips := range sources.PerAS {
			if src == v {
				continue
			}
			total += ips
			path, err := tree.Path(src)
			if err != nil {
				continue // unreachable sources cannot attack
			}
			for _, x := range selected {
				if x.Transits(path) {
					covered += ips
					break
				}
			}
		}
		if total == 0 {
			continue
		}
		res.Ratios = append(res.Ratios, float64(covered)/float64(total))
	}
	if len(res.Ratios) == 0 {
		return nil, errors.New("ixp: no victim had any reachable source")
	}
	res.summarize()
	return res, nil
}

func (r *CoverageResult) summarize() {
	s := append([]float64(nil), r.Ratios...)
	sort.Float64s(s)
	r.P5 = percentile(s, 0.05)
	r.Q1 = percentile(s, 0.25)
	r.Median = percentile(s, 0.50)
	r.Q3 = percentile(s, 0.75)
	r.P95 = percentile(s, 0.95)
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
