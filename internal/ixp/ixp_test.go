package ixp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/bgp"
)

func smallInternet(t testing.TB) *bgp.Internet {
	t.Helper()
	inet, err := bgp.Generate(bgp.GenConfig{
		Regions: 5, Tier1PerRegion: 2, Tier2PerRegion: 15, StubsPerRegion: 150, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inet
}

func TestTableIIIShape(t *testing.T) {
	if len(TableIII) != 5 || len(RegionNames) != 5 {
		t.Fatal("five regions required")
	}
	for r, entries := range TableIII {
		prev := math.MaxInt
		for rank, e := range entries {
			if e.Members <= 0 || e.Name == "" {
				t.Fatalf("region %d rank %d malformed: %+v", r, rank, e)
			}
			if e.Members > prev {
				t.Fatalf("region %s not ordered by member count", RegionNames[r])
			}
			prev = e.Members
		}
	}
	// Spot-check the paper's numbers.
	if TableIII[0][0].Name != "AMS-IX" || TableIII[0][0].Members != 1660 {
		t.Fatalf("Europe #1 = %+v, want AMS-IX/1660", TableIII[0][0])
	}
	if TableIII[4][4].Name != "IXPN Lagos" || TableIII[4][4].Members != 69 {
		t.Fatalf("Africa #5 = %+v", TableIII[4][4])
	}
}

func TestBuildProducesRegionalIXPs(t *testing.T) {
	inet := smallInternet(t)
	ixps, err := Build(inet, BuildConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ixps) != 25 {
		t.Fatalf("built %d IXPs, want 25 (5 regions x 5)", len(ixps))
	}
	for _, x := range ixps {
		if len(x.Members) < 2 {
			t.Fatalf("%s has %d members", x.Name, len(x.Members))
		}
		// Members must be from the IXP's own region.
		for m := range x.Members {
			r, err := inet.Topo.RegionOf(m)
			if err != nil {
				t.Fatal(err)
			}
			if r != x.Region {
				t.Fatalf("%s (region %d) contains AS%d of region %d", x.Name, x.Region, m, r)
			}
		}
	}
	// The region's #1 must not be smaller than its #5.
	for r := 0; r < 5; r++ {
		sel := SelectTopN(ixps, 5)
		var first, last *IXP
		for _, x := range sel {
			if x.Region != r {
				continue
			}
			if x.Rank == 1 {
				first = x
			}
			if x.Rank == 5 {
				last = x
			}
		}
		if first == nil || last == nil {
			t.Fatalf("region %d missing ranks", r)
		}
		if len(first.Members) < len(last.Members) {
			t.Fatalf("region %d: rank1 (%d members) smaller than rank5 (%d)",
				r, len(first.Members), len(last.Members))
		}
	}
}

func TestBuildValidatesConfig(t *testing.T) {
	inet := smallInternet(t)
	if _, err := Build(inet, BuildConfig{Tier2Share: 1.5}); err == nil {
		t.Fatal("Tier2Share > 1 accepted")
	}
	if _, err := Build(inet, BuildConfig{StubShare: -0.1}); err == nil {
		t.Fatal("negative StubShare accepted")
	}
}

func TestSelectTopN(t *testing.T) {
	inet := smallInternet(t)
	ixps, err := Build(inet, BuildConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 5; n++ {
		sel := SelectTopN(ixps, n)
		if len(sel) != 5*n {
			t.Fatalf("SelectTopN(%d) = %d IXPs, want %d", n, len(sel), 5*n)
		}
		for _, x := range sel {
			if x.Rank > n {
				t.Fatalf("rank %d leaked into top-%d", x.Rank, n)
			}
		}
	}
}

func TestTransits(t *testing.T) {
	x := &IXP{Name: "test", Members: map[bgp.ASN]bool{10: true, 11: true, 12: true}}
	tests := []struct {
		name string
		path []bgp.ASN
		want bool
	}{
		{"consecutive members", []bgp.ASN{1, 10, 11, 2}, true},
		{"members not adjacent", []bgp.ASN{10, 1, 11}, false},
		{"single member", []bgp.ASN{1, 10, 2}, false},
		{"no members", []bgp.ASN{1, 2, 3}, false},
		{"empty path", nil, false},
		{"member endpoints", []bgp.ASN{11, 12}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := x.Transits(tt.path); got != tt.want {
				t.Errorf("Transits(%v) = %v, want %v", tt.path, got, tt.want)
			}
		})
	}
}

func uniformSources(inet *bgp.Internet, perStub int) *SourceSet {
	s := &SourceSet{Name: "uniform", PerAS: make(map[bgp.ASN]int)}
	for _, a := range inet.AllStubs() {
		s.PerAS[a] = perStub
	}
	return s
}

func pickVictims(inet *bgp.Internet, n int, seed int64) []bgp.ASN {
	rng := rand.New(rand.NewSource(seed))
	stubs := inet.AllStubs()
	victims := make([]bgp.ASN, 0, n)
	for _, i := range rng.Perm(len(stubs))[:n] {
		victims = append(victims, stubs[i])
	}
	return victims
}

func TestCoverageMonotoneInIXPCount(t *testing.T) {
	// Figure 11's headline shape: more VIF IXPs can only cover more
	// attack sources, and top-1-per-region already covers a majority.
	inet := smallInternet(t)
	ixps, err := Build(inet, BuildConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sources := uniformSources(inet, 3)
	victims := pickVictims(inet, 30, 4)

	var prevMedian float64
	for n := 1; n <= 5; n++ {
		res, err := Coverage(inet.Topo, victims, sources, SelectTopN(ixps, n))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Ratios) != len(victims) {
			t.Fatalf("top-%d: %d ratios for %d victims", n, len(res.Ratios), len(victims))
		}
		if res.Median+1e-9 < prevMedian {
			t.Fatalf("median coverage fell from %.3f to %.3f at top-%d", prevMedian, res.Median, n)
		}
		if !(res.P5 <= res.Q1 && res.Q1 <= res.Median && res.Median <= res.Q3 && res.Q3 <= res.P95) {
			t.Fatalf("top-%d: summary not ordered: %+v", n, res)
		}
		prevMedian = res.Median
	}
	if prevMedian < 0.5 {
		t.Fatalf("top-5 median coverage %.3f; paper reports ≥0.75 — topology or membership model off", prevMedian)
	}
}

func TestCoverageEmptyInputs(t *testing.T) {
	inet := smallInternet(t)
	ixps, _ := Build(inet, BuildConfig{Seed: 5})
	sources := uniformSources(inet, 1)
	if _, err := Coverage(inet.Topo, nil, sources, ixps); err == nil {
		t.Fatal("no victims accepted")
	}
	empty := &SourceSet{Name: "empty", PerAS: map[bgp.ASN]int{}}
	if _, err := Coverage(inet.Topo, pickVictims(inet, 2, 1), empty, ixps); err == nil {
		t.Fatal("empty sources accepted")
	}
}

func TestCoverageZeroWithoutIXPs(t *testing.T) {
	inet := smallInternet(t)
	sources := uniformSources(inet, 1)
	res, err := Coverage(inet.Topo, pickVictims(inet, 5, 6), sources, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Median != 0 || res.P95 != 0 {
		t.Fatalf("coverage without IXPs: %+v", res)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2},
	}
	for _, tt := range tests {
		if got := percentile(s, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := percentile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single element: %v", got)
	}
	if !math.IsNaN(percentile(nil, 0.5)) {
		t.Error("empty slice must be NaN")
	}
}
