// Package ixp models Internet exchange points and the VIF-at-IXP
// deployment of §VI: the Table III catalogue of the top five IXPs per
// region, degree-weighted membership over a synthetic AS topology, the
// path-transit test, and the Figure 11 coverage experiment (what fraction
// of attack sources cross at least one VIF-equipped IXP on their way to a
// victim).
package ixp

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/innetworkfiltering/vif/internal/bgp"
)

// RegionNames are the five regions of Table III, indexed like the
// generator's region indices.
var RegionNames = []string{
	"Europe", "North America", "South America", "Asia Pacific", "Africa",
}

// CatalogEntry is one row of Table III: a real IXP and its member count.
type CatalogEntry struct {
	Name    string
	Members int
}

// TableIII reproduces the paper's Table III: the top five IXPs of each of
// the five regions with their membership sizes (from the CAIDA IXP
// dataset the paper used).
var TableIII = [5][5]CatalogEntry{
	{ // Europe
		{Name: "AMS-IX", Members: 1660},
		{Name: "DE-CIX", Members: 1494},
		{Name: "LINX Juniper", Members: 755},
		{Name: "EPIX Katowice", Members: 732},
		{Name: "LINX LON1", Members: 697},
	},
	{ // North America
		{Name: "Equinix Ashburn", Members: 598},
		{Name: "Any2", Members: 557},
		{Name: "SIX", Members: 462},
		{Name: "TorIX", Members: 426},
		{Name: "Equinix Chicago", Members: 384},
	},
	{ // South America
		{Name: "IX.br São Paulo", Members: 2082},
		{Name: "PTT Porto Alegre", Members: 258},
		{Name: "PTT Rio de Janeiro", Members: 246},
		{Name: "CABASE-BUE", Members: 183},
		{Name: "PTT Curitiba", Members: 140},
	},
	{ // Asia Pacific
		{Name: "Equinix Singapore", Members: 504},
		{Name: "Equinix Sydney", Members: 393},
		{Name: "Megaport Sydney", Members: 383},
		{Name: "BBIX Tokyo", Members: 286},
		{Name: "HKIX", Members: 281},
	},
	{ // Africa
		{Name: "NAPAfrica Johannesburg", Members: 506},
		{Name: "NAPAfrica Cape Town", Members: 258},
		{Name: "JINX", Members: 180},
		{Name: "NAPAfrica Durban", Members: 122},
		{Name: "IXPN Lagos", Members: 69},
	},
}

// IXP is one exchange point with its member ASes.
type IXP struct {
	Name    string
	Region  int
	Rank    int // 1 = largest in its region
	Members map[bgp.ASN]bool
}

// Transits reports whether an AS path crosses this IXP: per §VI-C, "a
// traffic flow is said to be transited at an IXP if it traverses along an
// AS-path that include two consecutive ASes that are the members of the
// IXP".
func (x *IXP) Transits(path []bgp.ASN) bool {
	for i := 0; i+1 < len(path); i++ {
		if x.Members[path[i]] && x.Members[path[i+1]] {
			return true
		}
	}
	return false
}

// BuildConfig tunes membership synthesis.
type BuildConfig struct {
	// Seed drives membership sampling.
	Seed int64
	// Tier2Share is the probability that a regional tier-2 ISP is a
	// member of the region's *largest* IXP; smaller IXPs scale it by
	// their Table III member ratio. Default 0.65 — large exchanges
	// connect most but not all regional transit, which is what puts the
	// Figure 11 top-1 coverage median near the paper's ≈60%.
	Tier2Share float64
	// Tier1Share is the same for tier-1 backbones (default 0.9: the
	// major carriers peer at every large exchange).
	Tier1Share float64
	// StubShare is the same for edge ASes (default 0.10: content-heavy
	// edge networks do join big IXPs, most stubs do not).
	StubShare float64
}

func (c *BuildConfig) fillDefaults() {
	if c.Tier2Share == 0 {
		c.Tier2Share = 0.65
	}
	if c.Tier1Share == 0 {
		c.Tier1Share = 0.9
	}
	if c.StubShare == 0 {
		c.StubShare = 0.10
	}
}

// Build synthesizes the Table III IXPs over a generated topology. Each
// AS of an IXP's region joins with a per-tier probability scaled by the
// IXP's Table III member count relative to the region's largest exchange:
// the biggest IXPs connect most regional transit providers plus a slice
// of the edge, smaller ones proportionally less. Transit membership is
// what places an IXP on attack paths (the Transits test needs two
// *consecutive* member ASes), so these shares directly set the Figure 11
// coverage levels.
func Build(inet *bgp.Internet, cfg BuildConfig) ([]*IXP, error) {
	cfg.fillDefaults()
	for _, p := range []float64{cfg.Tier1Share, cfg.Tier2Share, cfg.StubShare} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("ixp: membership share %v out of range", p)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []*IXP
	regions := len(inet.Tier1)
	if regions > len(TableIII) {
		regions = len(TableIII)
	}
	for r := 0; r < regions; r++ {
		maxMembers := TableIII[r][0].Members
		for rank, entry := range TableIII[r] {
			ratio := float64(entry.Members) / float64(maxMembers)
			members := make(map[bgp.ASN]bool)
			include := func(ases []bgp.ASN, p float64) {
				for _, a := range ases {
					if rng.Float64() < p*ratio {
						members[a] = true
					}
				}
			}
			include(inet.Tier1[r], cfg.Tier1Share)
			include(inet.Tier2[r], cfg.Tier2Share)
			include(inet.Stubs[r], cfg.StubShare)
			// An exchange needs at least two members to exist.
			for len(members) < 2 {
				members[inet.Tier2[r][rng.Intn(len(inet.Tier2[r]))]] = true
			}
			out = append(out, &IXP{
				Name:    entry.Name,
				Region:  r,
				Rank:    rank + 1,
				Members: members,
			})
		}
	}
	return out, nil
}

// SelectTopN returns, for each region, its top-n IXPs (the paper's
// "Top-n IXPs in each of the five regions": n per region, 5n globally).
func SelectTopN(all []*IXP, n int) []*IXP {
	var out []*IXP
	for _, x := range all {
		if x.Rank <= n {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Region != out[j].Region {
			return out[i].Region < out[j].Region
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}
