package attest

import (
	"crypto/rand"
	"testing"
	"time"

	"github.com/innetworkfiltering/vif/internal/enclave"
)

func newTestEnclave(t *testing.T) *enclave.Enclave {
	t.Helper()
	e, err := enclave.New(enclave.CodeIdentity{
		Name: "vif-filter", Version: "1.0.0", Config: "test", BinarySize: 1 << 20,
	}, enclave.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func nonce(t *testing.T) [32]byte {
	t.Helper()
	var n [32]byte
	if _, err := rand.Read(n[:]); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAttestationHappyPath(t *testing.T) {
	svc, err := NewService()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := svc.CertifyPlatform("ixp-rack-01")
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEnclave(t)

	n := nonce(t)
	var report [ReportDataSize]byte
	copy(report[:], "channel-key-share-binding")
	q, err := platform.GenerateQuote(e, n, report)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(svc.RootPublicKey(), svc, q, n, e.Measurement()); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
	if q.ReportData != report {
		t.Fatal("report data not carried through")
	}
}

func TestVerifyRejectsWrongMeasurement(t *testing.T) {
	svc, _ := NewService()
	platform, _ := svc.CertifyPlatform("p")
	e := newTestEnclave(t)
	n := nonce(t)
	q, err := platform.GenerateQuote(e, n, [ReportDataSize]byte{})
	if err != nil {
		t.Fatal(err)
	}
	var other [32]byte
	other[0] = 0xff
	if err := VerifyQuote(svc.RootPublicKey(), svc, q, n, other); err != ErrMeasurement {
		t.Fatalf("err = %v, want ErrMeasurement", err)
	}
}

func TestVerifyRejectsWrongNonce(t *testing.T) {
	svc, _ := NewService()
	platform, _ := svc.CertifyPlatform("p")
	e := newTestEnclave(t)
	q, err := platform.GenerateQuote(e, nonce(t), [ReportDataSize]byte{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(svc.RootPublicKey(), svc, q, nonce(t), e.Measurement()); err != ErrBadNonce {
		t.Fatalf("err = %v, want ErrBadNonce (replay must fail)", err)
	}
}

func TestVerifyRejectsTamperedQuote(t *testing.T) {
	svc, _ := NewService()
	platform, _ := svc.CertifyPlatform("p")
	e := newTestEnclave(t)
	n := nonce(t)
	q, err := platform.GenerateQuote(e, n, [ReportDataSize]byte{})
	if err != nil {
		t.Fatal(err)
	}

	tampered := *q
	tampered.ReportData[0] ^= 0xff // host flips the bound channel key
	if err := VerifyQuote(svc.RootPublicKey(), svc, &tampered, n, e.Measurement()); err != ErrBadQuoteSig {
		t.Fatalf("tampered report: err = %v, want ErrBadQuoteSig", err)
	}

	tampered = *q
	tampered.Signature = append([]byte(nil), q.Signature...)
	tampered.Signature[4] ^= 0xff
	if err := VerifyQuote(svc.RootPublicKey(), svc, &tampered, n, e.Measurement()); err == nil {
		t.Fatal("mangled signature accepted")
	}
}

func TestVerifyRejectsForeignPlatform(t *testing.T) {
	// A platform certified by a *different* service (a fake IAS run by the
	// malicious filtering network) must not verify against the real root.
	realSvc, _ := NewService()
	fakeSvc, _ := NewService()
	platform, _ := fakeSvc.CertifyPlatform("evil-rack")
	e := newTestEnclave(t)
	n := nonce(t)
	q, err := platform.GenerateQuote(e, n, [ReportDataSize]byte{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(realSvc.RootPublicKey(), realSvc, q, n, e.Measurement()); err != ErrBadPlatformCert {
		t.Fatalf("err = %v, want ErrBadPlatformCert", err)
	}
}

func TestVerifyRejectsRevokedPlatform(t *testing.T) {
	svc, _ := NewService()
	platform, _ := svc.CertifyPlatform("compromised")
	e := newTestEnclave(t)
	n := nonce(t)
	q, err := platform.GenerateQuote(e, n, [ReportDataSize]byte{})
	if err != nil {
		t.Fatal(err)
	}
	svc.Revoke("compromised")
	if err := VerifyQuote(svc.RootPublicKey(), svc, q, n, e.Measurement()); err != ErrRevoked {
		t.Fatalf("err = %v, want ErrRevoked", err)
	}
	// Offline verification (svc == nil) cannot check revocation but the
	// signature chain still verifies.
	if err := VerifyQuote(svc.RootPublicKey(), nil, q, n, e.Measurement()); err != nil {
		t.Fatalf("offline verify: %v", err)
	}
}

func TestQuoteBindsPlatformName(t *testing.T) {
	svc, _ := NewService()
	pa, _ := svc.CertifyPlatform("a")
	pb, _ := svc.CertifyPlatform("b")
	e := newTestEnclave(t)
	n := nonce(t)
	q, err := pa.GenerateQuote(e, n, [ReportDataSize]byte{})
	if err != nil {
		t.Fatal(err)
	}
	// Splice platform B's credentials onto platform A's quote.
	q.PlatformName = pb.Name
	q.PlatformPub = pb.pub
	q.PlatformCert = pb.cert
	if err := VerifyQuote(svc.RootPublicKey(), svc, q, n, e.Measurement()); err == nil {
		t.Fatal("credential splice accepted")
	}
}

func TestLatencyModelMatchesAppendixG(t *testing.T) {
	m := DefaultLatencyModel()
	b := m.EndToEnd(1 << 20)
	// Appendix G: ~28.8 ms platform time for a 1 MB binary.
	if b.PlatformTime < 25*time.Millisecond || b.PlatformTime > 35*time.Millisecond {
		t.Errorf("platform time %v, want ≈28.8 ms", b.PlatformTime)
	}
	// Appendix G: ~3.04 s end to end.
	if b.Total < 2500*time.Millisecond || b.Total > 3600*time.Millisecond {
		t.Errorf("end-to-end %v, want ≈3.04 s", b.Total)
	}
	if b.Total != b.PlatformTime+b.NetworkTime+b.ServiceTime {
		t.Error("breakdown does not sum")
	}
}

func TestLatencyScalesWithBinarySize(t *testing.T) {
	m := DefaultLatencyModel()
	small := m.EndToEnd(1 << 18)
	large := m.EndToEnd(8 << 20)
	if small.PlatformTime >= large.PlatformTime {
		t.Error("platform time must grow with binary size")
	}
	if small.NetworkTime != large.NetworkTime {
		t.Error("network time must not depend on binary size")
	}
}

func BenchmarkGenerateQuote(b *testing.B) {
	svc, _ := NewService()
	platform, _ := svc.CertifyPlatform("bench")
	e, _ := enclave.New(enclave.CodeIdentity{Name: "f", BinarySize: 1 << 20}, enclave.DefaultCostModel())
	var n [32]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.GenerateQuote(e, n, [ReportDataSize]byte{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyQuote(b *testing.B) {
	svc, _ := NewService()
	platform, _ := svc.CertifyPlatform("bench")
	e, _ := enclave.New(enclave.CodeIdentity{Name: "f", BinarySize: 1 << 20}, enclave.DefaultCostModel())
	var n [32]byte
	q, _ := platform.GenerateQuote(e, n, [ReportDataSize]byte{})
	root := svc.RootPublicKey()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyQuote(root, svc, q, n, e.Measurement()); err != nil {
			b.Fatal(err)
		}
	}
}
