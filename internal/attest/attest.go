// Package attest implements VIF's remote attestation substrate: the
// challenge → quote → verification flow of §II-C and Appendix G.
//
// In production VIF, the filter platform signs a report with a hardware
// attestation key whose provenance the Intel Attestation Service (IAS)
// vouches for. Here the IAS is a simulated Service holding an ECDSA root:
// it certifies platform attestation keys (provisioning), and verifiers
// check quotes against the service root — the same two-link chain
// (root → platform key → quote) with the same failure modes (unknown
// platform, revoked platform, forged signature, wrong measurement, stale
// nonce). Network and processing delays are modelled by LatencyModel so the
// Appendix G end-to-end numbers can be regenerated.
package attest

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/innetworkfiltering/vif/internal/enclave"
)

// Errors returned by verification.
var (
	ErrBadPlatformCert = errors.New("attest: platform certificate invalid")
	ErrBadQuoteSig     = errors.New("attest: quote signature invalid")
	ErrRevoked         = errors.New("attest: platform revoked")
	ErrMeasurement     = errors.New("attest: measurement mismatch")
	ErrBadNonce        = errors.New("attest: nonce mismatch")
)

// ReportDataSize is the size of caller-bound data embedded in a quote
// (SGX uses 64 bytes; VIF binds the attested channel's key share to it).
const ReportDataSize = 64

// Service is the simulated attestation authority (IAS analogue).
type Service struct {
	mu      sync.Mutex
	root    *ecdsa.PrivateKey
	revoked map[string]bool
}

// NewService creates an attestation service with a fresh root key.
func NewService() (*Service, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attest: generate root: %w", err)
	}
	return &Service{root: key, revoked: make(map[string]bool)}, nil
}

// RootPublicKey returns the service verification key that verifiers pin
// (the analogue of Intel's published IAS signing certificate).
func (s *Service) RootPublicKey() ecdsa.PublicKey { return s.root.PublicKey }

// Revoke marks a platform as compromised; subsequent verifications of its
// quotes fail with ErrRevoked.
func (s *Service) Revoke(platformName string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revoked[platformName] = true
}

// IsRevoked reports the revocation status of a platform.
func (s *Service) IsRevoked(platformName string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.revoked[platformName]
}

// Platform is an SGX-capable machine with a service-certified attestation
// key (the EPID/DCAP provisioning outcome).
type Platform struct {
	Name string

	key  *ecdsa.PrivateKey
	cert []byte // service signature over (name, pubkey)
	pub  []byte // PKIX encoding of the platform public key
}

// CertifyPlatform provisions a new platform: generates its attestation key
// and issues the service certificate binding name to key.
func (s *Service) CertifyPlatform(name string) (*Platform, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attest: platform key: %w", err)
	}
	pub, err := x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("attest: marshal platform key: %w", err)
	}
	cert, err := ecdsa.SignASN1(rand.Reader, s.root, platformDigest(name, pub))
	if err != nil {
		return nil, fmt.Errorf("attest: sign platform cert: %w", err)
	}
	return &Platform{Name: name, key: key, cert: cert, pub: pub}, nil
}

func platformDigest(name string, pub []byte) []byte {
	h := sha256.New()
	h.Write([]byte("vif-platform-cert/v1\x00"))
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write(pub)
	return h.Sum(nil)
}

// Quote is the attestation evidence for one enclave: the platform's
// signature over (measurement, report data, nonce), plus the certificate
// chain material a verifier needs.
type Quote struct {
	Measurement  [32]byte
	ReportData   [ReportDataSize]byte
	Nonce        [32]byte
	PlatformName string
	PlatformPub  []byte
	PlatformCert []byte
	Signature    []byte
}

func (q *Quote) digest() []byte {
	h := sha256.New()
	h.Write([]byte("vif-quote/v1\x00"))
	h.Write(q.Measurement[:])
	h.Write(q.ReportData[:])
	h.Write(q.Nonce[:])
	h.Write([]byte(q.PlatformName))
	return h.Sum(nil)
}

// GenerateQuote produces attestation evidence for e in response to a
// verifier challenge nonce, binding reportData (e.g. the enclave's channel
// key share) into the signed report.
func (p *Platform) GenerateQuote(e *enclave.Enclave, nonce [32]byte, reportData [ReportDataSize]byte) (*Quote, error) {
	q := &Quote{
		Measurement:  e.Measurement(),
		ReportData:   reportData,
		Nonce:        nonce,
		PlatformName: p.Name,
		PlatformPub:  p.pub,
		PlatformCert: p.cert,
	}
	sig, err := ecdsa.SignASN1(rand.Reader, p.key, q.digest())
	if err != nil {
		return nil, fmt.Errorf("attest: sign quote: %w", err)
	}
	q.Signature = sig
	return q, nil
}

// VerifyQuote checks the full chain: the platform certificate against the
// pinned service root, revocation, the quote signature, the challenge
// nonce, and the expected enclave measurement. A nil service skips the
// revocation check (offline verification).
func VerifyQuote(root ecdsa.PublicKey, svc *Service, q *Quote, nonce [32]byte, wantMeasurement [32]byte) error {
	if q.Nonce != nonce {
		return ErrBadNonce
	}
	if svc != nil && svc.IsRevoked(q.PlatformName) {
		return ErrRevoked
	}
	if !ecdsa.VerifyASN1(&root, platformDigest(q.PlatformName, q.PlatformPub), q.PlatformCert) {
		return ErrBadPlatformCert
	}
	pubAny, err := x509.ParsePKIXPublicKey(q.PlatformPub)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadPlatformCert, err)
	}
	pub, ok := pubAny.(*ecdsa.PublicKey)
	if !ok {
		return fmt.Errorf("%w: not an ECDSA key", ErrBadPlatformCert)
	}
	if !ecdsa.VerifyASN1(pub, q.digest(), q.Signature) {
		return ErrBadQuoteSig
	}
	if q.Measurement != wantMeasurement {
		return ErrMeasurement
	}
	return nil
}

// LatencyModel decomposes end-to-end attestation time the way Appendix G
// reports it: local quote generation on the platform (scales with enclave
// binary size) plus WAN round trips to the attestation service and between
// verifier and platform.
type LatencyModel struct {
	// QuoteFixed and QuotePerByte model local report generation +
	// signing; Appendix G measures 28.8 ms for a 1 MB binary.
	QuoteFixed   time.Duration
	QuotePerByte time.Duration
	// VerifierPlatformRTT is the verifier↔filtering-network round trip
	// (challenge out, quote back).
	VerifierPlatformRTT time.Duration
	// ServiceRTT is the verifier↔attestation-service round trip
	// (Appendix G: South Asia ↔ Ashburn, Virginia).
	ServiceRTT time.Duration
	// ServiceProcessing is the attestation service's verification time.
	ServiceProcessing time.Duration
}

// DefaultLatencyModel matches the Appendix G deployment: a 1 MB enclave
// quoted in ~28.8 ms and an end-to-end time of ~3.04 s dominated by the
// WAN legs to the attestation service.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		QuoteFixed:          8 * time.Millisecond,
		QuotePerByte:        20 * time.Nanosecond, // ~20.8 ms for 1 MB
		VerifierPlatformRTT: 120 * time.Millisecond,
		ServiceRTT:          280 * time.Millisecond,
		ServiceProcessing:   2450 * time.Millisecond,
	}
}

// Breakdown is the modelled attestation timing decomposition.
type Breakdown struct {
	PlatformTime time.Duration // local quote generation
	NetworkTime  time.Duration // WAN legs
	ServiceTime  time.Duration // attestation service processing
	Total        time.Duration
}

// EndToEnd returns the modelled attestation latency for an enclave binary
// of the given size.
func (m LatencyModel) EndToEnd(binarySize int) Breakdown {
	platform := m.QuoteFixed + time.Duration(binarySize)*m.QuotePerByte
	network := m.VerifierPlatformRTT + m.ServiceRTT
	b := Breakdown{
		PlatformTime: platform,
		NetworkTime:  network,
		ServiceTime:  m.ServiceProcessing,
	}
	b.Total = b.PlatformTime + b.NetworkTime + b.ServiceTime
	return b
}
