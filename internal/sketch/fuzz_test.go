package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestUnmarshalNeverPanicsOnGarbage feeds arbitrary bytes to the decoder:
// the enclave log parser handles attacker-relayed data, so it must reject
// garbage gracefully, never panic or over-allocate.
func TestUnmarshalNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		var s Sketch
		_ = s.UnmarshalBinary(data) // must not panic; error is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestUnmarshalBitFlipsRejectedOrEquivalent flips bits in valid encodings:
// every mutation must either fail to decode or decode to a structurally
// valid sketch (no crashes downstream).
func TestUnmarshalBitFlipsRejectedOrEquivalent(t *testing.T) {
	s, err := New(2, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		var k [8]byte
		k[0] = byte(i)
		s.Add(k[:], i)
	}
	valid, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		mutated := append([]byte(nil), valid...)
		for flips := 0; flips < 1+rng.Intn(4); flips++ {
			mutated[rng.Intn(len(mutated))] ^= 1 << rng.Intn(8)
		}
		var out Sketch
		if err := out.UnmarshalBinary(mutated); err != nil {
			continue // rejected: fine
		}
		// Accepted: the sketch must be usable without panics.
		var k [8]byte
		out.Add(k[:], 1)
		_ = out.Estimate(k[:])
		if _, err := out.MarshalBinary(); err != nil {
			t.Fatalf("accepted mutation cannot re-marshal: %v", err)
		}
	}
}

// TestEstimateNeverUndercountsProperty is the count-min guarantee under
// random geometry, keys, and weights.
func TestEstimateNeverUndercountsProperty(t *testing.T) {
	f := func(seed int64, rows, bins uint8, n uint16) bool {
		s, err := New(int(rows%4)+1, int(bins%64)+1)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		truth := make(map[byte]uint64)
		for i := 0; i < int(n%500)+1; i++ {
			k := byte(rng.Intn(32))
			w := uint64(rng.Intn(100))
			s.Add([]byte{k}, w)
			truth[k] += w
		}
		for k, want := range truth {
			if s.Estimate([]byte{k}) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
