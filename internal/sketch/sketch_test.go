package sketch

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func key(i uint64) []byte {
	var b [13]byte
	binary.BigEndian.PutUint64(b[:8], i)
	return b[:]
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		rows, bins int
		ok         bool
	}{
		{2, 65536, true},
		{1, 1, true},
		{0, 10, false},
		{2, 0, false},
		{-1, -1, false},
	}
	for _, tt := range tests {
		_, err := New(tt.rows, tt.bins)
		if (err == nil) != tt.ok {
			t.Errorf("New(%d,%d): err=%v, want ok=%v", tt.rows, tt.bins, err, tt.ok)
		}
	}
}

func TestBinsRoundedToPowerOfTwo(t *testing.T) {
	s, err := New(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if s.bins != 1024 {
		t.Fatalf("bins = %d, want 1024", s.bins)
	}
}

func TestDefaultGeometryIsOneMiB(t *testing.T) {
	s := NewDefault()
	if got := s.MemoryBytes(); got != 2*65536*8 {
		t.Fatalf("MemoryBytes = %d, want %d", got, 2*65536*8)
	}
}

func TestEstimateNeverUndercounts(t *testing.T) {
	// Core count-min property: estimate >= true count, always.
	s, _ := New(2, 256) // deliberately tiny: force collisions
	truth := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(800))
		w := uint64(rng.Intn(10) + 1)
		s.Add(key(k), w)
		truth[k] += w
	}
	for k, want := range truth {
		if got := s.Estimate(key(k)); got < want {
			t.Fatalf("Estimate(key %d) = %d < true %d", k, got, want)
		}
	}
}

func TestEstimateExactWithoutCollisions(t *testing.T) {
	s := NewDefault()
	for i := uint64(0); i < 100; i++ {
		s.Add(key(i), i+1)
	}
	for i := uint64(0); i < 100; i++ {
		if got := s.Estimate(key(i)); got != i+1 {
			t.Fatalf("Estimate(key %d) = %d, want %d", i, got, i+1)
		}
	}
	if s.Total() != 100*101/2 {
		t.Fatalf("Total = %d", s.Total())
	}
}

func TestEstimateUnseenKeyUsuallyZero(t *testing.T) {
	s := NewDefault()
	for i := uint64(0); i < 1000; i++ {
		s.Add(key(i), 1)
	}
	if got := s.Estimate(key(999999)); got > 2 {
		t.Fatalf("unseen key estimate = %d, want ~0", got)
	}
}

func TestReset(t *testing.T) {
	s := NewDefault()
	s.Add(key(1), 5)
	s.Reset()
	if s.Total() != 0 || s.Estimate(key(1)) != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestDiffIdenticalStreamsEmpty(t *testing.T) {
	a, b := NewDefault(), NewDefault()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		k := key(uint64(rng.Intn(500)))
		a.Add(k, 1)
		b.Add(k, 1)
	}
	d, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("identical streams: discrepancy %+v", d)
	}
}

func TestDiffDetectsInjection(t *testing.T) {
	// local saw 50 packets the enclave never logged -> Missing >= 50.
	encl, local := NewDefault(), NewDefault()
	for i := 0; i < 1000; i++ {
		k := key(uint64(i))
		encl.Add(k, 1)
		local.Add(k, 1)
	}
	for i := 0; i < 50; i++ {
		local.Add(key(uint64(100000+i)), 1)
	}
	d, err := encl.Diff(local)
	if err != nil {
		t.Fatal(err)
	}
	if d.Missing < 50 {
		t.Fatalf("Missing = %d, want >= 50", d.Missing)
	}
	if d.Excess != 0 {
		t.Fatalf("Excess = %d, want 0", d.Excess)
	}
}

func TestDiffDetectsDrop(t *testing.T) {
	// The enclave logged 30 packets the local observer never received
	// -> Excess >= 30.
	encl, local := NewDefault(), NewDefault()
	for i := 0; i < 1000; i++ {
		k := key(uint64(i))
		encl.Add(k, 1)
		if i >= 30 {
			local.Add(k, 1)
		}
	}
	d, err := encl.Diff(local)
	if err != nil {
		t.Fatal(err)
	}
	if d.Excess < 30 {
		t.Fatalf("Excess = %d, want >= 30", d.Excess)
	}
	if d.Missing != 0 {
		t.Fatalf("Missing = %d, want 0", d.Missing)
	}
}

func TestDiffDetectsDeltaAtLeastTruth(t *testing.T) {
	// Property: for arbitrary drop/inject mixes, each direction's reported
	// weight is at least the true one-sided delta can't exceed... the row
	// with no aliasing in the opposite direction bounds it from below only
	// when deltas don't cancel within a bin. We verify the weaker guaranteed
	// property: a non-empty one-sided manipulation is always detected.
	f := func(seed int64, drops, injects uint8) bool {
		if drops == 0 && injects == 0 {
			return true
		}
		encl, local := NewDefault(), NewDefault()
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(200)
		for i := 0; i < n; i++ {
			k := key(uint64(rng.Intn(100000)))
			encl.Add(k, 1)
			local.Add(k, 1)
		}
		for i := 0; i < int(drops); i++ {
			encl.Add(key(uint64(1<<40+i)), 1) // enclave-only traffic
		}
		for i := 0; i < int(injects); i++ {
			local.Add(key(uint64(1<<41+i)), 1) // local-only traffic
		}
		d, err := encl.Diff(local)
		if err != nil {
			return false
		}
		if drops > 0 && d.Excess == 0 {
			return false
		}
		if injects > 0 && d.Missing == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDiffShapeMismatch(t *testing.T) {
	a, _ := New(2, 1024)
	b, _ := New(3, 1024)
	if _, err := a.Diff(b); err != ErrShapeMismatch {
		t.Fatalf("err = %v, want ErrShapeMismatch", err)
	}
	if err := a.Merge(b); err != ErrShapeMismatch {
		t.Fatalf("Merge err = %v, want ErrShapeMismatch", err)
	}
	if _, err := a.Diff(nil); err != ErrShapeMismatch {
		t.Fatalf("Diff(nil) err = %v, want ErrShapeMismatch", err)
	}
}

func TestMergeEquivalentToCombinedStream(t *testing.T) {
	a, b, both := NewDefault(), NewDefault(), NewDefault()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		k := key(uint64(rng.Intn(1000)))
		if i%2 == 0 {
			a.Add(k, 1)
		} else {
			b.Add(k, 1)
		}
		both.Add(k, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	d, err := a.Diff(both)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("merged != combined: %+v", d)
	}
	if a.Total() != both.Total() {
		t.Fatalf("Total %d != %d", a.Total(), both.Total())
	}
}

func TestCloneIndependent(t *testing.T) {
	s := NewDefault()
	s.Add(key(1), 1)
	c := s.Clone()
	s.Add(key(1), 1)
	if c.Estimate(key(1)) != 1 {
		t.Fatal("clone mutated by original")
	}
	if s.Estimate(key(1)) != 2 {
		t.Fatal("original lost update")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := NewDefault()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		s.Add(key(uint64(rng.Intn(500))), uint64(rng.Intn(100)))
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Sketch
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	d, err := s.Diff(&got)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() || got.Total() != s.Total() {
		t.Fatalf("round trip mismatch: %+v", d)
	}
	// Re-marshal must be byte-identical (the MAC in package attest relies
	// on a canonical encoding).
	data2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("encoding not canonical")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	s := NewDefault()
	s.Add(key(9), 3)
	data, _ := s.MarshalBinary()

	tests := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short", func(b []byte) []byte { return b[:8] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-1] }},
		{"huge rows", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[4:8], 1<<20)
			return b
		}},
		{"non-pow2 bins", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[8:12], 65535)
			return b
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := tt.mangle(append([]byte(nil), data...))
			var got Sketch
			if err := got.UnmarshalBinary(b); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestHashDeterministicAcrossInstances(t *testing.T) {
	// Protocol requirement: victim-side and enclave-side sketches built
	// independently must agree bit-for-bit on identical streams.
	a, _ := New(2, 65536)
	b, _ := New(2, 65536)
	for i := uint64(0); i < 1000; i++ {
		a.Add(key(i), i)
		b.Add(key(i), i)
	}
	da, _ := a.MarshalBinary()
	db, _ := b.MarshalBinary()
	if !bytes.Equal(da, db) {
		t.Fatal("independent instances disagree on identical input")
	}
}

func BenchmarkAdd(b *testing.B) {
	s := NewDefault()
	k := key(123456)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(k, 1)
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := NewDefault()
	k := key(123456)
	s.Add(k, 10)
	for i := 0; i < b.N; i++ {
		_ = s.Estimate(k)
	}
}

func BenchmarkDiff(b *testing.B) {
	x, y := NewDefault(), NewDefault()
	for i := uint64(0); i < 10000; i++ {
		x.Add(key(i), 1)
		y.Add(key(i), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.Diff(y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAddManyMatchesAdd(t *testing.T) {
	a, b := NewDefault(), NewDefault()
	keys := make([][]byte, 200)
	weights := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = []byte{byte(i), byte(i >> 3), byte(i * 7), 0xab}
		weights[i] = uint64(i%9) + 1
		a.Add(keys[i], weights[i])
	}
	b.AddMany(keys, weights)
	if a.Total() != b.Total() {
		t.Fatalf("totals differ: %d vs %d", a.Total(), b.Total())
	}
	d, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("AddMany diverged from Add: %+v", d)
	}
}
