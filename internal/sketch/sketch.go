// Package sketch implements the count-min sketch (Cormode & Muthukrishnan)
// used for VIF's accountable packet logs. The paper's configuration — 2
// independent hash rows, 64K bins, 64-bit counters, ≈1 MB per instance —
// is the package default.
//
// Two sketches live inside each filter enclave: an incoming log keyed by
// source IP (so neighbor ASes can detect drop-before-filtering) and an
// outgoing log keyed by the full five-tuple (so the victim can detect
// injection-after-filtering and drop-after-filtering). Victims and neighbors
// maintain local counterparts on commodity hardware and compare (Diff).
package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Paper-default geometry: 2 rows x 64K bins x 8-byte counters = 1 MiB.
const (
	DefaultRows = 2
	DefaultBins = 1 << 16
)

// Errors returned by sketch operations.
var (
	ErrShapeMismatch = errors.New("sketch: geometry or seed mismatch")
	ErrCorrupt       = errors.New("sketch: corrupt encoding")
)

// Sketch is a count-min sketch over byte-string keys with 64-bit counters.
// The zero value is not usable; construct with New.
type Sketch struct {
	rows  int
	bins  int
	seeds []uint64
	cnt   [][]uint64
	total uint64 // sum of all Add weights, for occupancy stats
}

// New creates a rows x bins sketch. Each row uses an independent seeded
// 64-bit hash. rows and bins must be positive; bins is rounded up to a
// power of two so the bin index is a mask operation on the hot path.
func New(rows, bins int) (*Sketch, error) {
	if rows <= 0 || bins <= 0 {
		return nil, fmt.Errorf("sketch: invalid geometry %dx%d", rows, bins)
	}
	pow := 1
	for pow < bins {
		pow <<= 1
	}
	s := &Sketch{
		rows:  rows,
		bins:  pow,
		seeds: make([]uint64, rows),
		cnt:   make([][]uint64, rows),
	}
	for r := 0; r < rows; r++ {
		// Fixed, distinct odd seeds: the sketch must be reproducible across
		// the enclave and the victim's local instance, so seeds are part of
		// the protocol, not random state.
		s.seeds[r] = 0x9e3779b97f4a7c15*uint64(r+1) | 1
		s.cnt[r] = make([]uint64, pow)
	}
	return s, nil
}

// NewDefault creates a sketch with the paper's 2x64K geometry.
func NewDefault() *Sketch {
	s, err := New(DefaultRows, DefaultBins)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return s
}

// hash is a seeded splitmix-style mix over the key bytes. It is fast
// (a few ns for 13-byte keys) and pairwise-independent enough for
// count-min guarantees in practice.
func hash(seed uint64, key []byte) uint64 {
	h := seed
	i := 0
	for ; i+8 <= len(key); i += 8 {
		h ^= binary.LittleEndian.Uint64(key[i:])
		h = mix(h)
	}
	var tail uint64
	for j := len(key) - 1; j >= i; j-- {
		tail = tail<<8 | uint64(key[j])
	}
	h ^= tail ^ uint64(len(key))
	return mix(h)
}

func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add increments the key's counters by weight. Weight is typically 1
// (packet counts) or the frame size (byte counts).
func (s *Sketch) Add(key []byte, weight uint64) {
	mask := uint64(s.bins - 1)
	for r := 0; r < s.rows; r++ {
		s.cnt[r][hash(s.seeds[r], key)&mask] += weight
	}
	s.total += weight
}

// AddMany increments each keys[i]'s counters by weights[i] — the batch
// data path's amortized equivalent of per-packet Add, letting a burst's
// deduplicated flow keys land in one call with the row loop hoisted.
// keys and weights must have equal length.
func (s *Sketch) AddMany(keys [][]byte, weights []uint64) {
	mask := uint64(s.bins - 1)
	for r := 0; r < s.rows; r++ {
		seed := s.seeds[r]
		row := s.cnt[r]
		for i, k := range keys {
			row[hash(seed, k)&mask] += weights[i]
		}
	}
	for _, w := range weights {
		s.total += w
	}
}

// Estimate returns the count-min estimate for key: the minimum of the key's
// row counters. It never under-counts.
func (s *Sketch) Estimate(key []byte) uint64 {
	mask := uint64(s.bins - 1)
	est := uint64(math.MaxUint64)
	for r := 0; r < s.rows; r++ {
		if c := s.cnt[r][hash(s.seeds[r], key)&mask]; c < est {
			est = c
		}
	}
	return est
}

// Total returns the sum of all added weights.
func (s *Sketch) Total() uint64 { return s.total }

// Reset zeroes all counters. Filtering rounds are short (the paper suggests
// a few minutes) and each round starts from empty logs.
func (s *Sketch) Reset() {
	for r := range s.cnt {
		clear(s.cnt[r])
	}
	s.total = 0
}

// Clone returns a deep copy, used when snapshotting logs for a query
// response while the data plane keeps appending.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{
		rows:  s.rows,
		bins:  s.bins,
		seeds: append([]uint64(nil), s.seeds...),
		cnt:   make([][]uint64, s.rows),
		total: s.total,
	}
	for r := range s.cnt {
		c.cnt[r] = append([]uint64(nil), s.cnt[r]...)
	}
	return c
}

// Merge adds other's counters into s. Both must share geometry and seeds.
// Victims use this to combine logs from parallel enclaves into the view
// "everything the VIF deployment forwarded to me".
func (s *Sketch) Merge(other *Sketch) error {
	if !s.sameShape(other) {
		return ErrShapeMismatch
	}
	for r := range s.cnt {
		for i := range s.cnt[r] {
			s.cnt[r][i] += other.cnt[r][i]
		}
	}
	s.total += other.total
	return nil
}

// Discrepancy summarizes a comparison of two sketches of (allegedly) the
// same packet stream.
type Discrepancy struct {
	// Excess is the total counter weight present in the reference (enclave)
	// sketch but absent locally: evidence of injection after filtering when
	// found by a victim comparing its local log against the enclave's
	// outgoing log — wait, see Diff for orientation.
	Excess uint64
	// Missing is the total counter weight present locally but absent in the
	// reference sketch.
	Missing uint64
	// Bins is the number of bins that disagree in either direction,
	// across all rows.
	Bins int
}

// Empty reports whether the two streams were indistinguishable.
func (d Discrepancy) Empty() bool { return d.Excess == 0 && d.Missing == 0 }

// Diff compares s (the authenticated enclave log) against local (the
// verifier's own measurement of the same stream).
//
//   - Excess > 0: the enclave logged traffic the verifier never saw. For a
//     victim comparing the enclave's *outgoing* log with its own received
//     traffic, this means drop-after-filtering (packets the filter allowed
//     were dropped before reaching the victim). For a neighbor comparing its
//     *sent* traffic with the enclave's incoming log this cannot happen
//     absent corruption.
//   - Missing > 0: the verifier saw traffic the enclave never logged. For a
//     victim this means injection-after-filtering; for a neighbor, comparing
//     its own sent-log as reference against the enclave incoming log is done
//     with the operands swapped, so see Verifier in package bypass.
//
// Because a row counter is a sum over colliding keys, per-row differences
// are computed bin-wise; the per-direction totals take the max across rows
// (each row alone never under-counts a one-sided difference).
func (s *Sketch) Diff(local *Sketch) (Discrepancy, error) {
	if !s.sameShape(local) {
		return Discrepancy{}, ErrShapeMismatch
	}
	var d Discrepancy
	for r := range s.cnt {
		var excess, missing uint64
		for i := range s.cnt[r] {
			a, b := s.cnt[r][i], local.cnt[r][i]
			switch {
			case a > b:
				excess += a - b
				d.Bins++
			case b > a:
				missing += b - a
				d.Bins++
			}
		}
		if excess > d.Excess {
			d.Excess = excess
		}
		if missing > d.Missing {
			d.Missing = missing
		}
	}
	return d, nil
}

func (s *Sketch) sameShape(o *Sketch) bool {
	if o == nil || s.rows != o.rows || s.bins != o.bins {
		return false
	}
	for i := range s.seeds {
		if s.seeds[i] != o.seeds[i] {
			return false
		}
	}
	return true
}

// MemoryBytes returns the counter memory consumed, which is what the
// enclave's EPC accounting charges (≈1 MiB for the default geometry).
func (s *Sketch) MemoryBytes() int { return s.rows * s.bins * 8 }

// encoding layout: magic, rows, bins, seeds, total, counters.
const encMagic = 0x56494653 // "VIFS"

// MarshalBinary serializes the sketch for a log query response. The enclave
// signs/MACs the result before release; see package attest.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+4+4+8*len(s.seeds)+8+s.rows*s.bins*8)
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put32(encMagic)
	put32(uint32(s.rows))
	put32(uint32(s.bins))
	for _, seed := range s.seeds {
		put64(seed)
	}
	put64(s.total)
	for r := range s.cnt {
		for _, c := range s.cnt[r] {
			put64(c)
		}
	}
	return buf, nil
}

// UnmarshalBinary reverses MarshalBinary.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 12 {
		return ErrCorrupt
	}
	if binary.BigEndian.Uint32(data[0:4]) != encMagic {
		return ErrCorrupt
	}
	rows := int(binary.BigEndian.Uint32(data[4:8]))
	bins := int(binary.BigEndian.Uint32(data[8:12]))
	if rows <= 0 || rows > 64 || bins <= 0 || bins > 1<<26 {
		return ErrCorrupt
	}
	need := 12 + 8*rows + 8 + rows*bins*8
	if len(data) != need {
		return ErrCorrupt
	}
	ns, err := New(rows, bins)
	if err != nil {
		return err
	}
	if ns.bins != bins {
		return ErrCorrupt // bins in encoding must already be a power of two
	}
	off := 12
	for r := 0; r < rows; r++ {
		ns.seeds[r] = binary.BigEndian.Uint64(data[off:])
		off += 8
	}
	ns.total = binary.BigEndian.Uint64(data[off:])
	off += 8
	for r := 0; r < rows; r++ {
		for i := 0; i < bins; i++ {
			ns.cnt[r][i] = binary.BigEndian.Uint64(data[off:])
			off += 8
		}
	}
	*s = *ns
	return nil
}
