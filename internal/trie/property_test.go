package trie

import (
	"math"
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// oracle is the naive reference: a flat list of (rule, priority) entries,
// looked up by linear scan with lowest-priority-wins — exactly the
// semantics the trie must preserve under any mutation sequence.
type oracle struct {
	ents []entry
}

func (o *oracle) insert(r rules.Rule, prio int) {
	o.ents = append(o.ents, entry{rule: r, prio: int32(prio)})
}

func (o *oracle) remove(r rules.Rule) {
	kept := o.ents[:0]
	for _, e := range o.ents {
		if e.rule.ID != r.ID {
			kept = append(kept, e)
		}
	}
	o.ents = kept
}

func (o *oracle) lookup(t packet.FiveTuple) (rules.Rule, int, bool) {
	var (
		best     rules.Rule
		bestPrio int32 = math.MaxInt32
		found    bool
	)
	for _, e := range o.ents {
		if e.prio < bestPrio && e.rule.Matches(t) {
			best, bestPrio, found = e.rule, e.prio, true
		}
	}
	return best, int(bestPrio), found
}

func propRule(rng *rand.Rand, id uint32) rules.Rule {
	plens := []uint8{0, 4, 8, 12, 16, 20, 24, 28, 32}
	protos := []packet.Protocol{0, packet.ProtoTCP, packet.ProtoUDP}
	r := rules.Rule{
		ID:    id,
		Src:   rules.Prefix{Addr: rng.Uint32(), Len: plens[rng.Intn(len(plens))]}.Canonical(),
		Dst:   rules.Prefix{Addr: rng.Uint32(), Len: plens[rng.Intn(len(plens))]}.Canonical(),
		Proto: protos[rng.Intn(len(protos))],
	}
	if rng.Intn(2) == 0 {
		r.DstPort = rules.Port(uint16(rng.Intn(1024)))
	}
	return r
}

func propProbe(rng *rand.Rand, live []rules.Rule) packet.FiveTuple {
	t := packet.FiveTuple{
		SrcIP:   rng.Uint32(),
		DstIP:   rng.Uint32(),
		SrcPort: uint16(rng.Intn(2048)),
		DstPort: uint16(rng.Intn(2048)),
		Proto:   packet.ProtoUDP,
	}
	// Bias half the probes toward live rule space so matches happen.
	if len(live) > 0 && rng.Intn(2) == 0 {
		r := live[rng.Intn(len(live))]
		t.SrcIP = r.Src.Addr | (rng.Uint32() &^ r.Src.Mask())
		t.DstIP = r.Dst.Addr | (rng.Uint32() &^ r.Dst.Mask())
		if r.Proto != 0 {
			t.Proto = r.Proto
		}
	}
	return t
}

// TestMutationSequenceMatchesOracle drives random Insert/Remove/rebuild
// (Reset + reinsert, the Reconfigure pattern) sequences against the naive
// linear-scan oracle: after every operation, both the mutable Table and a
// freshly published Snapshot must agree with the oracle on every probe.
func TestMutationSequenceMatchesOracle(t *testing.T) {
	for _, stride := range []int{4, 8} {
		rng := rand.New(rand.NewSource(int64(stride) * 77))
		tbl, err := New(stride)
		if err != nil {
			t.Fatal(err)
		}
		ref := &oracle{}
		var live []rules.Rule
		nextID := uint32(1)
		nextPrio := 0

		for op := 0; op < 400; op++ {
			switch k := rng.Intn(10); {
			case k < 5 || len(live) == 0: // insert
				r := propRule(rng, nextID)
				nextID++
				tbl.Insert(r, nextPrio)
				ref.insert(r, nextPrio)
				nextPrio++
				live = append(live, r)
			case k < 8: // remove a random live rule
				i := rng.Intn(len(live))
				r := live[i]
				removed := tbl.Remove(r)
				if removed != 1 {
					t.Fatalf("stride %d op %d: Remove(%v) = %d, want 1", stride, op, r, removed)
				}
				ref.remove(r)
				live = append(live[:i], live[i+1:]...)
			default: // rebuild from scratch (the Reconfigure pattern)
				tbl.Reset()
				ref.ents = ref.ents[:0]
				keep := live[:0]
				for _, r := range live {
					if rng.Intn(4) != 0 { // drop ~¼ of the rules in the "new shard"
						keep = append(keep, r)
					}
				}
				live = keep
				nextPrio = 0
				for _, r := range live {
					tbl.Insert(r, nextPrio)
					ref.insert(r, nextPrio)
					nextPrio++
				}
			}

			snap := tbl.Snapshot()
			if snap.Len() != tbl.Len() || snap.Len() != len(ref.ents) {
				t.Fatalf("stride %d op %d: len table=%d snap=%d oracle=%d",
					stride, op, tbl.Len(), snap.Len(), len(ref.ents))
			}
			for probe := 0; probe < 40; probe++ {
				tup := propProbe(rng, live)
				wantR, wantPrio, wantOK := ref.lookup(tup)
				gotR, gotPrio, gotOK := tbl.Lookup(tup)
				if wantOK != gotOK || (wantOK && (wantR.ID != gotR.ID || wantPrio != gotPrio)) {
					t.Fatalf("stride %d op %d: table disagrees with oracle on %v:\n table: %+v %d %v\n oracle: %+v %d %v",
						stride, op, tup, gotR, gotPrio, gotOK, wantR, wantPrio, wantOK)
				}
				sR, sPrio, sOK := snap.Lookup(tup)
				if wantOK != sOK || (wantOK && (wantR.ID != sR.ID || wantPrio != sPrio)) {
					t.Fatalf("stride %d op %d: snapshot disagrees with oracle on %v",
						stride, op, tup)
				}
			}
		}
	}
}

// TestSnapshotImmutableUnderMutation pins the copy-on-write contract: a
// snapshot taken before further Insert/Remove/Reset keeps answering
// exactly as at capture time — the property that lets the data plane keep
// looking up lock-free while Reconfigure builds its replacement.
func TestSnapshotImmutableUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tbl := NewDefault()
	var live []rules.Rule
	for i := 0; i < 120; i++ {
		r := propRule(rng, uint32(i+1))
		tbl.Insert(r, i)
		live = append(live, r)
	}
	old := tbl.Snapshot()

	// Record the old snapshot's answers on a probe set.
	probes := make([]packet.FiveTuple, 500)
	type ans struct {
		id   uint32
		prio int
		ok   bool
	}
	want := make([]ans, len(probes))
	for i := range probes {
		probes[i] = propProbe(rng, live)
		r, prio, ok := old.Lookup(probes[i])
		want[i] = ans{id: r.ID, prio: prio, ok: ok}
	}

	// Mutate heavily: remove half, insert a fresh population, then reset
	// and rebuild with entirely different rules.
	for i := 0; i < len(live); i += 2 {
		tbl.Remove(live[i])
	}
	for i := 0; i < 200; i++ {
		tbl.Insert(propRule(rng, uint32(1000+i)), i)
	}
	if tbl.Snapshot() == old {
		t.Fatal("Snapshot returned the same object after mutation")
	}
	tbl.Reset()
	for i := 0; i < 50; i++ {
		tbl.Insert(propRule(rng, uint32(5000+i)), i)
	}
	tbl.Snapshot()

	for i, p := range probes {
		r, prio, ok := old.Lookup(p)
		if ok != want[i].ok || r.ID != want[i].id || prio != want[i].prio {
			t.Fatalf("old snapshot changed its answer for %v: (%d,%d,%v) want (%d,%d,%v)",
				p, r.ID, prio, ok, want[i].id, want[i].prio, want[i].ok)
		}
	}
}

// TestSnapshotReusedWhenClean asserts Snapshot() is cheap when nothing
// changed: the same published object comes back until the next mutation.
func TestSnapshotReusedWhenClean(t *testing.T) {
	tbl := NewDefault()
	tbl.Insert(propRule(rand.New(rand.NewSource(1)), 1), 0)
	a := tbl.Snapshot()
	if b := tbl.Snapshot(); a != b {
		t.Fatal("clean Snapshot() rebuilt")
	}
	if got := tbl.Loaded(); got != a {
		t.Fatal("Loaded() is not the published snapshot")
	}
	tbl.Insert(propRule(rand.New(rand.NewSource(2)), 2), 1)
	if b := tbl.Snapshot(); a == b {
		t.Fatal("dirty Snapshot() not rebuilt")
	}
}
