// Incremental snapshot construction: Snapshot.Diff builds the successor of
// an immutable snapshot from a rule changeset by path copying, instead of
// re-inserting every rule the way a full rebuild does. Untouched subtrees
// are shared by reference with the source snapshot (its base segment is
// adopted wholesale); only the root-to-anchor paths the delta actually
// touches are copied into the new snapshot's ext segment. Removals prune
// emptied subtrees bottom-up so the live node population stays exactly
// what a from-scratch rebuild of the same rule set would allocate — the
// property the equivalence tests pin. Dead old copies of path-copied nodes
// accumulate as slack in the shared arenas; Diff compacts (one structural
// copy of the live trie, still no re-insertion) once slack would exceed
// 1/compactSlackDen of the live size, so retained memory stays within a
// constant factor of a fresh build.

package trie

import (
	"fmt"

	"github.com/innetworkfiltering/vif/internal/rules"
)

// compactSlackDen bounds retained dead arena bytes: a Diff result carrying
// more than live/compactSlackDen dead nodes (or entries) is compacted
// before being returned.
const compactSlackDen = 2

// ovNode is one mutable overlay copy of a trie node while a diff is being
// applied. Overlay nodes exist only for nodes on touched root-to-anchor
// paths; everything else stays shared.
type ovNode struct {
	children []uint32
	entries  []entry
	existed  bool // had an id in the source snapshot (its old copy becomes slack)
	pruned   bool // emptied by removals; not emitted, parent slot cleared
}

// differ accumulates a delta over a source snapshot before serializing the
// touched overlay into the successor's ext segment.
type differ struct {
	src   *Snapshot
	ov    map[uint32]*ovNode
	order []uint32 // touched ids in first-touch order (deterministic emit)
	next  uint32   // next temporary id for freshly created nodes

	removedEntries int
	addedEntries   int
}

// touch returns the overlay copy of an existing node, materializing it
// from the source on first touch.
func (d *differ) touch(id uint32) *ovNode {
	if n, ok := d.ov[id]; ok {
		return n
	}
	s := d.src
	n := &ovNode{
		children: append([]uint32(nil), s.childSlots(id)...),
		entries:  append([]entry(nil), s.nodeEntries(id)...),
		existed:  true,
	}
	d.ov[id] = n
	d.order = append(d.order, id)
	return n
}

// newNode creates a fresh overlay node under a temporary id (>= the source
// snapshot's id space, remapped at build time).
func (d *differ) newNode() (uint32, *ovNode) {
	id := d.next
	d.next++
	n := &ovNode{children: make([]uint32, 1<<d.src.stride)}
	d.ov[id] = n
	d.order = append(d.order, id)
	return id, n
}

// remove deletes every entry with r's rule ID at r's anchor, pruning
// emptied nodes bottom-up (never the root). The caller passes the rule as
// it was inserted so the anchor is recomputable.
func (d *differ) remove(r rules.Rule) error {
	s := d.src
	depth := int(r.Src.Len) / s.stride
	if depth > s.levels {
		depth = s.levels
	}
	addr := r.Src.Addr & r.Src.Mask()
	var pathBuf [33]uint32 // stride >= 1 bounds the path at 32 levels + root
	id := s.root
	node := d.touch(id)
	path := append(pathBuf[:0], id)
	for level := 0; level < depth; level++ {
		c := node.children[chunk(addr, level, s.stride)]
		if c == 0 {
			return fmt.Errorf("trie: diff: remove rule %d: no node at its anchor", r.ID)
		}
		id = c
		node = d.touch(id)
		path = append(path, id)
	}
	kept := node.entries[:0]
	removed := 0
	for _, e := range node.entries {
		if e.rule.ID == r.ID {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	if removed == 0 {
		return fmt.Errorf("trie: diff: remove rule %d: not present at its anchor", r.ID)
	}
	node.entries = kept
	d.removedEntries += removed
	// Prune emptied nodes bottom-up along the copied path so the live node
	// set matches what a from-scratch rebuild would allocate.
	for level := depth; level > 0; level-- {
		nd := d.ov[path[level]]
		if len(nd.entries) > 0 || !allZero(nd.children) {
			break
		}
		nd.pruned = true
		d.ov[path[level-1]].children[chunk(addr, level-1, s.stride)] = 0
	}
	return nil
}

// add anchors r with the given priority, creating path nodes as needed.
func (d *differ) add(r rules.Rule, prio int32) {
	s := d.src
	depth := int(r.Src.Len) / s.stride
	if depth > s.levels {
		depth = s.levels
	}
	addr := r.Src.Addr & r.Src.Mask()
	node := d.touch(s.root)
	for level := 0; level < depth; level++ {
		idx := chunk(addr, level, s.stride)
		c := node.children[idx]
		if c == 0 {
			nid, nn := d.newNode()
			node.children[idx] = nid
			node = nn
			continue
		}
		node = d.touch(c)
	}
	node.entries = append(node.entries, entry{rule: r, prio: prio})
	d.addedEntries++
}

func allZero(slots []uint32) bool {
	for _, c := range slots {
		if c != 0 {
			return false
		}
	}
	return true
}

// entryCount is node id's entry-span length in the source snapshot.
func (s *Snapshot) entryCount(id uint32) int {
	if id < s.baseNodes {
		return int(s.baseEntryStart[id+1] - s.baseEntryStart[id])
	}
	m := id - s.baseNodes
	return int(s.extEntryStart[m+1] - s.extEntryStart[m])
}

// Diff constructs the immutable successor of this snapshot under a rule
// changeset: removes are deleted (matched by rule ID at the rule's anchor
// — pass the rules as originally inserted) and adds are appended with
// consecutive priorities starting at MaxPrio()+1, preserving first-match
// order: existing rules first, then adds in order.
//
// The successor reuses every untouched subtree of this snapshot by
// reference and copies only the root-to-anchor paths the delta touches,
// so its cost is O(|delta| · levels · 2^stride) plus the (slack-bounded)
// ext-segment carry-over — not O(rules) like a full rebuild. This
// snapshot is never modified: both remain valid, and publishing the
// successor is the caller's single atomic pointer store.
//
// MemoryBytes of the result equals that of a from-scratch rebuild of the
// equivalent rule set, provided this snapshot itself is garbage-free (it
// came from an inserts-only Table or a prior Diff — the Reconfigure
// pattern; Table.Remove leaves garbage nodes that a rebuild would not
// allocate). Errors (a remove that matches nothing) leave everything
// untouched and return nil.
func (s *Snapshot) Diff(adds, removes []rules.Rule) (*Snapshot, error) {
	if len(adds) == 0 && len(removes) == 0 {
		return s, nil
	}
	d := &differ{src: s, ov: make(map[uint32]*ovNode), next: s.totalNodes()}
	for _, r := range removes {
		if err := d.remove(r); err != nil {
			return nil, err
		}
	}
	prio := s.maxPrio
	for _, r := range adds {
		prio++
		d.add(r, prio)
	}
	out := d.build(prio)
	if out.deadNodes*compactSlackDen > out.liveNodes ||
		out.deadEntries*compactSlackDen > out.liveEntries {
		out = out.compact()
	}
	return out, nil
}

// build serializes the overlay into the successor snapshot: the source's
// base segment is adopted by reference, its ext segment is carried over by
// copy (ids preserved), and live overlay nodes are appended under fresh
// ext ids with child pointers remapped.
func (d *differ) build(maxPrio int32) *Snapshot {
	s := d.src
	out := &Snapshot{
		stride:         s.stride,
		levels:         s.levels,
		baseNodes:      s.baseNodes,
		baseChildren:   s.baseChildren,
		baseEntryStart: s.baseEntryStart,
		baseEntries:    s.baseEntries,
		maxPrio:        maxPrio,
	}

	touchedExisting, prunedExisting, createdLive, oldEntries, newEntries := 0, 0, 0, 0, 0
	for _, id := range d.order {
		n := d.ov[id]
		if n.existed {
			touchedExisting++
			oldEntries += s.entryCount(id)
			if n.pruned {
				prunedExisting++
			}
		} else if !n.pruned {
			createdLive++
		}
		if !n.pruned {
			newEntries += len(n.entries)
		}
	}

	extOld := s.extNodes()
	remap := make(map[uint32]uint32, len(d.order))
	nid := s.baseNodes + uint32(extOld)
	for _, id := range d.order {
		if d.ov[id].pruned {
			continue
		}
		remap[id] = nid
		nid++
	}
	extNew := int(nid - s.baseNodes)

	out.extChildren = make([]uint32, extNew<<s.stride)
	copy(out.extChildren, s.extChildren)
	out.extEntryStart = make([]uint32, extNew+1)
	copy(out.extEntryStart, s.extEntryStart)
	out.extEntries = make([]entry, len(s.extEntries), len(s.extEntries)+newEntries)
	copy(out.extEntries, s.extEntries)

	for _, id := range d.order {
		n := d.ov[id]
		if n.pruned {
			continue
		}
		m := uint64(remap[id] - s.baseNodes)
		slots := out.extChildren[m<<s.stride : (m+1)<<s.stride]
		for i, c := range n.children {
			if c == 0 {
				continue
			}
			if nc, ok := remap[c]; ok {
				slots[i] = nc
				continue
			}
			slots[i] = c
		}
		out.extEntries = append(out.extEntries, n.entries...)
		out.extEntryStart[m+1] = uint32(len(out.extEntries))
	}

	out.root = remap[s.root]
	out.liveNodes = s.liveNodes - prunedExisting + createdLive
	out.liveEntries = s.liveEntries - d.removedEntries + d.addedEntries
	out.deadNodes = s.deadNodes + touchedExisting
	out.deadEntries = s.deadEntries + oldEntries
	return out
}

// compact rebuilds the snapshot as a single garbage-free base segment by
// traversing the live trie — a structural copy, no rule re-insertion. The
// result is what Table.Snapshot would have produced for the same contents
// (up to node numbering, which MemoryBytes does not observe).
func (s *Snapshot) compact() *Snapshot {
	remap := make([]int32, s.totalNodes())
	for i := range remap {
		remap[i] = -1
	}
	order := make([]uint32, 0, s.liveNodes)
	remap[s.root] = 0
	order = append(order, s.root)
	for i := 0; i < len(order); i++ {
		for _, c := range s.childSlots(order[i]) {
			if c != 0 && remap[c] < 0 {
				remap[c] = int32(len(order))
				order = append(order, c)
			}
		}
	}

	nodes := len(order)
	out := &Snapshot{
		stride:         s.stride,
		levels:         s.levels,
		baseNodes:      uint32(nodes),
		baseChildren:   make([]uint32, nodes<<s.stride),
		baseEntryStart: make([]uint32, nodes+1),
		baseEntries:    make([]entry, 0, s.liveEntries),
		liveNodes:      nodes,
		maxPrio:        s.maxPrio,
	}
	for newID, old := range order {
		slots := out.baseChildren[uint64(newID)<<s.stride : (uint64(newID)+1)<<s.stride]
		for i, c := range s.childSlots(old) {
			if c != 0 {
				slots[i] = uint32(remap[c])
			}
		}
		out.baseEntryStart[newID] = uint32(len(out.baseEntries))
		out.baseEntries = append(out.baseEntries, s.nodeEntries(old)...)
	}
	out.baseEntryStart[nodes] = uint32(len(out.baseEntries))
	out.liveEntries = len(out.baseEntries)
	return out
}
