// Package trie implements the multi-bit trie rule lookup table used inside
// the VIF enclave (the paper's "state-of-the-art multi-bit tries data
// structure for looking up the filter rules", §IV-A and Figure 6).
//
// The trie is keyed by source address — the dimension along which DDoS
// filter rules discriminate (attack sources) — with each rule anchored at
// the deepest node whose path is a prefix of the rule's source prefix.
// Lookup walks at most 32/stride nodes, collecting candidate rules and
// verifying their remaining fields (destination, ports, protocol), and
// returns the highest-priority (first-submitted) match: the same
// first-match-wins semantics as the reference linear matcher in
// package rules, against which this implementation is property-tested.
//
// The table tracks its own memory footprint; the enclave package charges
// that footprint against the EPC budget, which is what produces the
// paper's Figure 3b (linear growth toward the EPC limit).
package trie

import (
	"fmt"
	"math"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// DefaultStride is the number of address bits consumed per trie level.
// 8 gives a four-level trie over IPv4, the classic multi-bit configuration.
const DefaultStride = 8

type entry struct {
	rule rules.Rule
	prio int32
}

type node struct {
	children []*node
	entries  []entry
}

// Table is a multi-bit trie over rule source prefixes. It is not safe for
// concurrent mutation; the enclave filter thread owns it, matching the
// paper's single-writer data-plane design.
type Table struct {
	stride  int
	levels  int
	root    *node
	nodes   int
	entries int
}

// Memory accounting constants (bytes). These approximate the Go object
// sizes so MemoryBytes tracks real heap usage of the table.
const (
	nodeOverheadBytes  = 48 // node struct + slice headers
	entryBytes         = 56 // rules.Rule (≈48) + priority + padding
	childPointerBytes  = 8
	tableOverheadBytes = 64
)

// New creates a table with the given stride. Stride must divide 32 evenly
// and be between 1 and 16 (a 2^16-wide root is the widest sane fan-out).
func New(stride int) (*Table, error) {
	if stride < 1 || stride > 16 || 32%stride != 0 {
		return nil, fmt.Errorf("trie: invalid stride %d (must divide 32, 1..16)", stride)
	}
	t := &Table{stride: stride, levels: 32 / stride}
	t.root = t.newNode()
	return t, nil
}

// NewDefault creates a table with DefaultStride.
func NewDefault() *Table {
	t, err := New(DefaultStride)
	if err != nil {
		panic(err) // unreachable: constant is valid
	}
	return t
}

func (t *Table) newNode() *node {
	t.nodes++
	return &node{children: make([]*node, 1<<t.stride)}
}

// anchorDepth is the deepest level whose full path bits are determined by
// the rule's source prefix: floor(prefixLen / stride), capped at levels.
func (t *Table) anchorDepth(prefixLen uint8) int {
	d := int(prefixLen) / t.stride
	if d > t.levels {
		d = t.levels
	}
	return d
}

// chunk extracts the level-th stride of addr (level 0 = most significant).
func (t *Table) chunk(addr uint32, level int) uint32 {
	shift := 32 - (level+1)*t.stride
	return (addr >> shift) & (1<<t.stride - 1)
}

// Insert adds a rule with the given priority (lower wins, mirroring rule
// order in a Set). Inserting two rules with the same ID is allowed only via
// Replace semantics in the caller; the table itself does not deduplicate.
func (t *Table) Insert(r rules.Rule, prio int) {
	n := t.root
	depth := t.anchorDepth(r.Src.Len)
	addr := r.Src.Addr & r.Src.Mask()
	for level := 0; level < depth; level++ {
		c := t.chunk(addr, level)
		if n.children[c] == nil {
			n.children[c] = t.newNode()
		}
		n = n.children[c]
	}
	n.entries = append(n.entries, entry{rule: r, prio: int32(prio)})
	t.entries++
}

// InsertBatch inserts rules with consecutive priorities starting at
// basePrio. This is the operation Table II of the paper benchmarks: the
// hybrid connection-preserving filter converts newly observed flows into
// exact-match rules in batches at every update period.
func (t *Table) InsertBatch(rs []rules.Rule, basePrio int) {
	for i, r := range rs {
		t.Insert(r, basePrio+i)
	}
}

// InsertSet loads an entire rule set with priorities matching its order.
func (t *Table) InsertSet(s *rules.Set) {
	for i, r := range s.Rules {
		t.Insert(r, i)
	}
}

// Remove deletes all entries whose rule ID matches id under the given
// source prefix (the anchor must be recomputable, so the caller passes the
// rule it originally inserted). It reports how many entries were removed.
func (t *Table) Remove(r rules.Rule) int {
	n := t.root
	depth := t.anchorDepth(r.Src.Len)
	addr := r.Src.Addr & r.Src.Mask()
	for level := 0; level < depth; level++ {
		c := t.chunk(addr, level)
		if n.children[c] == nil {
			return 0
		}
		n = n.children[c]
	}
	kept := n.entries[:0]
	removed := 0
	for _, e := range n.entries {
		if e.rule.ID == r.ID {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	n.entries = kept
	t.entries -= removed
	return removed
}

// Lookup returns the highest-priority rule matching the tuple, its
// priority, and whether any rule matched. NodesVisited-style stats are
// available via LookupTrace for the performance model.
func (t *Table) Lookup(tuple packet.FiveTuple) (rules.Rule, int, bool) {
	r, prio, _, ok := t.lookup(tuple)
	return r, prio, ok
}

// LookupTrace is Lookup plus the number of trie nodes visited, which the
// enclave cost model charges per-access (EPC/LLC behaviour).
func (t *Table) LookupTrace(tuple packet.FiveTuple) (rules.Rule, int, int, bool) {
	return t.lookup(tuple)
}

func (t *Table) lookup(tuple packet.FiveTuple) (rules.Rule, int, int, bool) {
	var (
		best     rules.Rule
		bestPrio int32 = math.MaxInt32
		found    bool
	)
	n := t.root
	visited := 0
	for level := 0; ; level++ {
		visited++
		for _, e := range n.entries {
			if e.prio < bestPrio && e.rule.Matches(tuple) {
				best, bestPrio, found = e.rule, e.prio, true
			}
		}
		if level == t.levels {
			break
		}
		c := t.chunk(tuple.SrcIP, level)
		if n.children[c] == nil {
			break
		}
		n = n.children[c]
	}
	if !found {
		return rules.Rule{}, 0, visited, false
	}
	return best, int(bestPrio), visited, true
}

// Len returns the number of entries (rules) stored.
func (t *Table) Len() int { return t.entries }

// NodeCount returns the number of trie nodes allocated.
func (t *Table) NodeCount() int { return t.nodes }

// MemoryBytes estimates the table's resident size: what the enclave's EPC
// accounting charges. It is linear in rules (entries) with a node component
// that depends on prefix sharing, reproducing Figure 3b's linear growth.
func (t *Table) MemoryBytes() int {
	return tableOverheadBytes +
		t.nodes*(nodeOverheadBytes+childPointerBytes<<t.stride) +
		t.entries*entryBytes
}

// Reset discards all entries and nodes.
func (t *Table) Reset() {
	t.nodes = 0
	t.entries = 0
	t.root = t.newNode()
}

// Stride returns the configured stride.
func (t *Table) Stride() int { return t.stride }
