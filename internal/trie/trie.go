// Package trie implements the multi-bit trie rule lookup table used inside
// the VIF enclave (the paper's "state-of-the-art multi-bit tries data
// structure for looking up the filter rules", §IV-A and Figure 6).
//
// The trie is keyed by source address — the dimension along which DDoS
// filter rules discriminate (attack sources) — with each rule anchored at
// the deepest node whose path is a prefix of the rule's source prefix.
// Lookup walks at most 32/stride nodes, collecting candidate rules and
// verifying their remaining fields (destination, ports, protocol), and
// returns the highest-priority (first-submitted) match: the same
// first-match-wins semantics as the reference linear matcher in
// package rules, against which this implementation is property-tested.
//
// Layout: instead of one heap object per node, all nodes live in flat
// arrays. A node is an index; node i's child table is the slice
// children[i<<stride : (i+1)<<stride] of node indices (0 = no child — the
// root is node 0 and is never anyone's child, so 0 doubles as the nil
// sentinel). This removes per-node pointer chasing from the hot lookup
// path and makes the memory footprint exact arena arithmetic, which is
// what the enclave package charges against the EPC budget (the paper's
// Figure 3b: linear growth toward the EPC limit).
//
// Table is the single-writer builder. Snapshot() compacts the current
// contents into an immutable Snapshot and publishes it with one atomic
// pointer store, so a data plane doing lock-free lookups against the last
// published Snapshot never observes a partially applied reconfiguration
// and never stops the world for a rebuild.
package trie

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// DefaultStride is the number of address bits consumed per trie level.
// 8 gives a four-level trie over IPv4, the classic multi-bit configuration.
const DefaultStride = 8

type entry struct {
	rule rules.Rule
	prio int32
}

// Memory accounting constants (bytes). The arena layout makes these exact:
// a child slot is one uint32 index, an entry slot is one entry struct
// (rules.Rule ≈ 40 bytes plus the int32 priority, padded to 48).
const (
	childSlotBytes     = 4
	entrySlotBytes     = 48
	entrySpanBytes     = 4 // one uint32 span boundary per node (Snapshot)
	entrySliceBytes    = 24 // one slice header per node (Table builder)
	tableOverheadBytes = 64
)

// Table is a flat-arena multi-bit trie over rule source prefixes. It is the
// mutable builder half of the pair: one goroutine owns it (the control
// plane, matching the paper's single-writer design) — even Lookup may
// publish a fresh snapshot and so requires the owner's discipline.
// Concurrent readers use the immutable views Snapshot publishes.
type Table struct {
	stride int
	levels int

	// children is the node arena: node i's child table occupies
	// children[i<<stride:(i+1)<<stride]; 0 means no child.
	children []uint32
	// entries[i] holds node i's anchored rules.
	entries    [][]entry
	numEntries int

	// snap is the last published immutable view; nil until Snapshot() runs.
	snap  atomic.Pointer[Snapshot]
	dirty bool
}

// New creates a table with the given stride. Stride must divide 32 evenly
// and be between 1 and 16 (a 2^16-wide root is the widest sane fan-out).
func New(stride int) (*Table, error) {
	if stride < 1 || stride > 16 || 32%stride != 0 {
		return nil, fmt.Errorf("trie: invalid stride %d (must divide 32, 1..16)", stride)
	}
	t := &Table{stride: stride, levels: 32 / stride}
	t.newNode()
	return t, nil
}

// NewDefault creates a table with DefaultStride.
func NewDefault() *Table {
	t, err := New(DefaultStride)
	if err != nil {
		panic(err) // unreachable: constant is valid
	}
	return t
}

// newNode appends a fresh all-empty node to the arena and returns its index.
func (t *Table) newNode() uint32 {
	idx := uint32(len(t.entries))
	t.children = append(t.children, make([]uint32, 1<<t.stride)...)
	t.entries = append(t.entries, nil)
	return idx
}

// anchorDepth is the deepest level whose full path bits are determined by
// the rule's source prefix: floor(prefixLen / stride), capped at levels.
func (t *Table) anchorDepth(prefixLen uint8) int {
	d := int(prefixLen) / t.stride
	if d > t.levels {
		d = t.levels
	}
	return d
}

// chunk extracts the level-th stride of addr (level 0 = most significant).
func chunk(addr uint32, level, stride int) uint32 {
	shift := 32 - (level+1)*stride
	return (addr >> shift) & (1<<stride - 1)
}

// Insert adds a rule with the given priority (lower wins, mirroring rule
// order in a Set). Inserting two rules with the same ID is allowed only via
// Replace semantics in the caller; the table itself does not deduplicate.
func (t *Table) Insert(r rules.Rule, prio int) {
	var n uint32
	depth := t.anchorDepth(r.Src.Len)
	addr := r.Src.Addr & r.Src.Mask()
	for level := 0; level < depth; level++ {
		slot := (uint64(n) << t.stride) + uint64(chunk(addr, level, t.stride))
		c := t.children[slot]
		if c == 0 {
			c = t.newNode()
			t.children[slot] = c
		}
		n = c
	}
	t.entries[n] = append(t.entries[n], entry{rule: r, prio: int32(prio)})
	t.numEntries++
	t.dirty = true
}

// InsertBatch inserts rules with consecutive priorities starting at
// basePrio. This is the operation Table II of the paper benchmarks: the
// hybrid connection-preserving filter converts newly observed flows into
// exact-match rules in batches at every update period.
func (t *Table) InsertBatch(rs []rules.Rule, basePrio int) {
	for i, r := range rs {
		t.Insert(r, basePrio+i)
	}
}

// InsertSet loads an entire rule set with priorities matching its order.
func (t *Table) InsertSet(s *rules.Set) {
	for i, r := range s.Rules {
		t.Insert(r, i)
	}
}

// Remove deletes all entries whose rule ID matches id under the given
// source prefix (the anchor must be recomputable, so the caller passes the
// rule it originally inserted). It reports how many entries were removed.
// Emptied nodes stay in the arena (they are reclaimed by the next full
// rebuild, i.e. Reset+reinsert, which is how Reconfigure works).
func (t *Table) Remove(r rules.Rule) int {
	var n uint32
	depth := t.anchorDepth(r.Src.Len)
	addr := r.Src.Addr & r.Src.Mask()
	for level := 0; level < depth; level++ {
		c := t.children[(uint64(n)<<t.stride)+uint64(chunk(addr, level, t.stride))]
		if c == 0 {
			return 0
		}
		n = c
	}
	kept := t.entries[n][:0]
	removed := 0
	for _, e := range t.entries[n] {
		if e.rule.ID == r.ID {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	t.entries[n] = kept
	t.numEntries -= removed
	if removed > 0 {
		t.dirty = true
	}
	return removed
}

// Lookup returns the highest-priority rule matching the tuple, its
// priority, and whether any rule matched. NodesVisited-style stats are
// available via LookupTrace for the performance model. Both delegate to
// the compacted snapshot (rebuilt only when the table changed since the
// last publish), so there is exactly one matcher implementation.
func (t *Table) Lookup(tuple packet.FiveTuple) (rules.Rule, int, bool) {
	return t.Snapshot().Lookup(tuple)
}

// LookupTrace is Lookup plus the number of trie nodes visited, which the
// enclave cost model charges per-access (EPC/LLC behaviour).
func (t *Table) LookupTrace(tuple packet.FiveTuple) (rules.Rule, int, int, bool) {
	return t.Snapshot().LookupTrace(tuple)
}

// Len returns the number of entries (rules) stored.
func (t *Table) Len() int { return t.numEntries }

// NodeCount returns the number of trie nodes allocated.
func (t *Table) NodeCount() int { return len(t.entries) }

// MemoryBytes is the table's resident size: exact arena arithmetic (child
// index arena + per-node entry storage), which is what the enclave's EPC
// accounting charges. It is linear in rules with a node component that
// depends on prefix sharing, reproducing Figure 3b's linear growth.
func (t *Table) MemoryBytes() int {
	return tableOverheadBytes +
		len(t.children)*childSlotBytes +
		len(t.entries)*entrySliceBytes +
		t.numEntries*entrySlotBytes
}

// Reset discards all entries and nodes.
func (t *Table) Reset() {
	t.children = t.children[:0]
	t.entries = t.entries[:0]
	t.numEntries = 0
	t.newNode()
	t.dirty = true
}

// Stride returns the configured stride.
func (t *Table) Stride() int { return t.stride }

// Snapshot compacts the table's current contents into an immutable
// Snapshot and publishes it with a single atomic pointer store. Readers
// holding older snapshots are unaffected (copy-on-write: the new snapshot
// shares no memory with the builder or with prior snapshots), so a
// reconfiguration never blocks or tears a concurrent lookup.
func (t *Table) Snapshot() *Snapshot {
	if !t.dirty {
		if s := t.snap.Load(); s != nil {
			return s
		}
	}
	nodes := len(t.entries)
	s := &Snapshot{
		stride:     t.stride,
		levels:     t.levels,
		children:   append([]uint32(nil), t.children...),
		entryStart: make([]uint32, nodes+1),
		entries:    make([]entry, 0, t.numEntries),
	}
	for i, es := range t.entries {
		s.entryStart[i] = uint32(len(s.entries))
		s.entries = append(s.entries, es...)
	}
	s.entryStart[nodes] = uint32(len(s.entries))
	t.snap.Store(s)
	t.dirty = false
	return s
}

// Loaded returns the last published snapshot (nil before the first
// Snapshot call). Concurrent readers may call it at any time.
func (t *Table) Loaded() *Snapshot { return t.snap.Load() }

// Snapshot is an immutable compacted trie: the flat child-index arena plus
// all entries in node order, addressed by per-node spans. Safe for any
// number of concurrent readers; never mutated after construction.
type Snapshot struct {
	stride     int
	levels     int
	children   []uint32
	entryStart []uint32 // node i's entries: entries[entryStart[i]:entryStart[i+1]]
	entries    []entry
}

// Lookup returns the highest-priority rule matching the tuple, its
// priority, and whether any rule matched.
func (s *Snapshot) Lookup(tuple packet.FiveTuple) (rules.Rule, int, bool) {
	r, prio, _, ok := s.lookup(tuple)
	return r, prio, ok
}

// LookupTrace is Lookup plus the number of trie nodes visited, for the
// enclave cost model.
func (s *Snapshot) LookupTrace(tuple packet.FiveTuple) (rules.Rule, int, int, bool) {
	return s.lookup(tuple)
}

func (s *Snapshot) lookup(tuple packet.FiveTuple) (rules.Rule, int, int, bool) {
	var (
		best     rules.Rule
		bestPrio int32 = math.MaxInt32
		found    bool
	)
	var n uint32
	visited := 0
	for level := 0; ; level++ {
		visited++
		for i := s.entryStart[n]; i < s.entryStart[n+1]; i++ {
			e := &s.entries[i]
			if e.prio < bestPrio && e.rule.Matches(tuple) {
				best, bestPrio, found = e.rule, e.prio, true
			}
		}
		if level == s.levels {
			break
		}
		c := s.children[(uint64(n)<<s.stride)+uint64(chunk(tuple.SrcIP, level, s.stride))]
		if c == 0 {
			break
		}
		n = c
	}
	if !found {
		return rules.Rule{}, 0, visited, false
	}
	return best, int(bestPrio), visited, true
}

// Len returns the number of entries (rules) stored.
func (s *Snapshot) Len() int { return len(s.entries) }

// NodeCount returns the number of trie nodes in the snapshot.
func (s *Snapshot) NodeCount() int { return len(s.entryStart) - 1 }

// MemoryBytes is the snapshot's resident size: exact arena arithmetic.
func (s *Snapshot) MemoryBytes() int {
	return tableOverheadBytes +
		len(s.children)*childSlotBytes +
		len(s.entryStart)*entrySpanBytes +
		len(s.entries)*entrySlotBytes
}

// Stride returns the configured stride.
func (s *Snapshot) Stride() int { return s.stride }
