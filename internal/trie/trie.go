package trie

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// DefaultStride is the number of address bits consumed per trie level.
// 8 gives a four-level trie over IPv4, the classic multi-bit configuration.
const DefaultStride = 8

type entry struct {
	rule rules.Rule
	prio int32
}

// Memory accounting constants (bytes). The arena layout makes these exact:
// a child slot is one uint32 index, an entry slot is one entry struct
// (rules.Rule ≈ 40 bytes plus the int32 priority, padded to 48).
const (
	childSlotBytes     = 4
	entrySlotBytes     = 48
	entrySpanBytes     = 4 // one uint32 span boundary per node (Snapshot)
	entrySliceBytes    = 24 // one slice header per node (Table builder)
	tableOverheadBytes = 64
)

// Table is a flat-arena multi-bit trie over rule source prefixes. It is the
// mutable builder half of the pair: one goroutine owns it (the control
// plane, matching the paper's single-writer design) — even Lookup may
// publish a fresh snapshot and so requires the owner's discipline.
// Concurrent readers use the immutable views Snapshot publishes.
type Table struct {
	stride int
	levels int

	// children is the node arena: node i's child table occupies
	// children[i<<stride:(i+1)<<stride]; 0 means no child.
	children []uint32
	// entries[i] holds node i's anchored rules.
	entries    [][]entry
	numEntries int
	// maxPrio is the highest priority inserted since the last Reset (-1
	// when empty); Snapshot carries it so Diff can append new rules after
	// every existing priority.
	maxPrio int32

	// snap is the last published immutable view; nil until Snapshot() runs.
	snap  atomic.Pointer[Snapshot]
	dirty bool
}

// New creates a table with the given stride. Stride must divide 32 evenly
// and be between 1 and 16 (a 2^16-wide root is the widest sane fan-out).
func New(stride int) (*Table, error) {
	if stride < 1 || stride > 16 || 32%stride != 0 {
		return nil, fmt.Errorf("trie: invalid stride %d (must divide 32, 1..16)", stride)
	}
	t := &Table{stride: stride, levels: 32 / stride, maxPrio: -1}
	t.newNode()
	return t, nil
}

// NewDefault creates a table with DefaultStride.
func NewDefault() *Table {
	t, err := New(DefaultStride)
	if err != nil {
		panic(err) // unreachable: constant is valid
	}
	return t
}

// newNode appends a fresh all-empty node to the arena and returns its index.
func (t *Table) newNode() uint32 {
	idx := uint32(len(t.entries))
	t.children = append(t.children, make([]uint32, 1<<t.stride)...)
	t.entries = append(t.entries, nil)
	return idx
}

// anchorDepth is the deepest level whose full path bits are determined by
// the rule's source prefix: floor(prefixLen / stride), capped at levels.
func (t *Table) anchorDepth(prefixLen uint8) int {
	d := int(prefixLen) / t.stride
	if d > t.levels {
		d = t.levels
	}
	return d
}

// chunk extracts the level-th stride of addr (level 0 = most significant).
func chunk(addr uint32, level, stride int) uint32 {
	shift := 32 - (level+1)*stride
	return (addr >> shift) & (1<<stride - 1)
}

// Insert adds a rule with the given priority (lower wins, mirroring rule
// order in a Set). Inserting two rules with the same ID is allowed only via
// Replace semantics in the caller; the table itself does not deduplicate.
func (t *Table) Insert(r rules.Rule, prio int) {
	var n uint32
	depth := t.anchorDepth(r.Src.Len)
	addr := r.Src.Addr & r.Src.Mask()
	for level := 0; level < depth; level++ {
		slot := (uint64(n) << t.stride) + uint64(chunk(addr, level, t.stride))
		c := t.children[slot]
		if c == 0 {
			c = t.newNode()
			t.children[slot] = c
		}
		n = c
	}
	t.entries[n] = append(t.entries[n], entry{rule: r, prio: int32(prio)})
	t.numEntries++
	if int32(prio) > t.maxPrio {
		t.maxPrio = int32(prio)
	}
	t.dirty = true
}

// InsertBatch inserts rules with consecutive priorities starting at
// basePrio. This is the operation Table II of the paper benchmarks: the
// hybrid connection-preserving filter converts newly observed flows into
// exact-match rules in batches at every update period.
func (t *Table) InsertBatch(rs []rules.Rule, basePrio int) {
	for i, r := range rs {
		t.Insert(r, basePrio+i)
	}
}

// InsertSet loads an entire rule set with priorities matching its order.
func (t *Table) InsertSet(s *rules.Set) {
	for i, r := range s.Rules {
		t.Insert(r, i)
	}
}

// Remove deletes all entries whose rule ID matches id under the given
// source prefix (the anchor must be recomputable, so the caller passes the
// rule it originally inserted). It reports how many entries were removed.
// Emptied nodes stay in the arena (they are reclaimed by the next full
// rebuild, i.e. Reset+reinsert, which is how Reconfigure works).
func (t *Table) Remove(r rules.Rule) int {
	var n uint32
	depth := t.anchorDepth(r.Src.Len)
	addr := r.Src.Addr & r.Src.Mask()
	for level := 0; level < depth; level++ {
		c := t.children[(uint64(n)<<t.stride)+uint64(chunk(addr, level, t.stride))]
		if c == 0 {
			return 0
		}
		n = c
	}
	kept := t.entries[n][:0]
	removed := 0
	for _, e := range t.entries[n] {
		if e.rule.ID == r.ID {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	t.entries[n] = kept
	t.numEntries -= removed
	if removed > 0 {
		t.dirty = true
	}
	return removed
}

// Lookup returns the highest-priority rule matching the tuple, its
// priority, and whether any rule matched. NodesVisited-style stats are
// available via LookupTrace for the performance model. Both delegate to
// the compacted snapshot (rebuilt only when the table changed since the
// last publish), so there is exactly one matcher implementation.
func (t *Table) Lookup(tuple packet.FiveTuple) (rules.Rule, int, bool) {
	return t.Snapshot().Lookup(tuple)
}

// LookupTrace is Lookup plus the number of trie nodes visited, which the
// enclave cost model charges per-access (EPC/LLC behaviour).
func (t *Table) LookupTrace(tuple packet.FiveTuple) (rules.Rule, int, int, bool) {
	return t.Snapshot().LookupTrace(tuple)
}

// Len returns the number of entries (rules) stored.
func (t *Table) Len() int { return t.numEntries }

// NodeCount returns the number of trie nodes allocated.
func (t *Table) NodeCount() int { return len(t.entries) }

// MemoryBytes is the table's resident size: exact arena arithmetic (child
// index arena + per-node entry storage), which is what the enclave's EPC
// accounting charges. It is linear in rules with a node component that
// depends on prefix sharing, reproducing Figure 3b's linear growth.
func (t *Table) MemoryBytes() int {
	return tableOverheadBytes +
		len(t.children)*childSlotBytes +
		len(t.entries)*entrySliceBytes +
		t.numEntries*entrySlotBytes
}

// Reset discards all entries and nodes.
func (t *Table) Reset() {
	t.children = t.children[:0]
	t.entries = t.entries[:0]
	t.numEntries = 0
	t.maxPrio = -1
	t.newNode()
	t.dirty = true
}

// Stride returns the configured stride.
func (t *Table) Stride() int { return t.stride }

// Snapshot compacts the table's current contents into an immutable
// Snapshot and publishes it with a single atomic pointer store. Readers
// holding older snapshots are unaffected (copy-on-write: the new snapshot
// shares no memory with the builder or with prior snapshots), so a
// reconfiguration never blocks or tears a concurrent lookup.
func (t *Table) Snapshot() *Snapshot {
	if !t.dirty {
		if s := t.snap.Load(); s != nil {
			return s
		}
	}
	nodes := len(t.entries)
	s := &Snapshot{
		stride:         t.stride,
		levels:         t.levels,
		baseNodes:      uint32(nodes),
		baseChildren:   append([]uint32(nil), t.children...),
		baseEntryStart: make([]uint32, nodes+1),
		baseEntries:    make([]entry, 0, t.numEntries),
		liveNodes:      nodes,
		liveEntries:    t.numEntries,
		maxPrio:        t.maxPrio,
	}
	for i, es := range t.entries {
		s.baseEntryStart[i] = uint32(len(s.baseEntries))
		s.baseEntries = append(s.baseEntries, es...)
	}
	s.baseEntryStart[nodes] = uint32(len(s.baseEntries))
	t.snap.Store(s)
	t.dirty = false
	return s
}

// Loaded returns the last published snapshot (nil before the first
// Snapshot call). Concurrent readers may call it at any time.
func (t *Table) Loaded() *Snapshot { return t.snap.Load() }

// Snapshot is an immutable compacted trie: a flat child-index arena plus
// all entries in node order, addressed by per-node spans. Safe for any
// number of concurrent readers; never mutated after construction.
//
// A snapshot stores its arena in two segments so Diff can share structure
// with its source instead of copying the world:
//
//   - the base segment (nodes [0, baseNodes)) is shared BY REFERENCE with
//     the snapshot Diff derived it from — these are the reused untouched
//     subtrees;
//   - the ext segment (nodes [baseNodes, baseNodes+extNodes)) is owned by
//     this snapshot and holds the root-to-leaf path copies the last delta
//     actually touched, plus any ext nodes inherited (by copy) from the
//     source.
//
// A snapshot built from scratch by Table.Snapshot or compact() has
// everything in base and an empty ext. The root is not node 0 in general:
// every Diff re-roots into the ext segment (path copying always reaches
// the root), so lookups start at root.
//
// Node id resolution never chases pointers: id < baseNodes indexes the
// base arrays, anything else indexes ext at (id - baseNodes) — one
// predictable branch per level on the hot lookup path.
type Snapshot struct {
	stride int
	levels int
	root   uint32

	// base segment: shared, never written after construction.
	baseNodes      uint32
	baseChildren   []uint32
	baseEntryStart []uint32 // node i's entries: baseEntries[baseEntryStart[i]:baseEntryStart[i+1]]
	baseEntries    []entry

	// ext segment: owned by this snapshot.
	extChildren   []uint32
	extEntryStart []uint32
	extEntries    []entry

	// Live arena arithmetic: the node/entry population an equivalent
	// from-scratch rebuild would contain. Dead counts are the unreachable
	// old copies of path-copied or pruned nodes still retained by the
	// shared segments (slack); Diff compacts when slack crosses
	// compactSlackDen.
	liveNodes   int
	liveEntries int
	deadNodes   int
	deadEntries int

	// maxPrio is the highest priority present or ever diffed in; Diff
	// appends adds at maxPrio+1 so relative rule order is stable.
	maxPrio int32
}

// extNodes returns the number of nodes in the ext segment.
func (s *Snapshot) extNodes() int {
	if len(s.extEntryStart) == 0 {
		return 0
	}
	return len(s.extEntryStart) - 1
}

// totalNodes returns the number of node ids in use (live + dead).
func (s *Snapshot) totalNodes() uint32 { return s.baseNodes + uint32(s.extNodes()) }

// child resolves node n's child at slot idx across the two segments.
func (s *Snapshot) child(n uint32, idx uint64) uint32 {
	slot := (uint64(n) << s.stride) + idx
	if n < s.baseNodes {
		return s.baseChildren[slot]
	}
	return s.extChildren[slot-(uint64(s.baseNodes)<<s.stride)]
}

// childSlots returns node n's full child table.
func (s *Snapshot) childSlots(n uint32) []uint32 {
	if n < s.baseNodes {
		return s.baseChildren[uint64(n)<<s.stride : (uint64(n)+1)<<s.stride]
	}
	m := uint64(n - s.baseNodes)
	return s.extChildren[m<<s.stride : (m+1)<<s.stride]
}

// nodeEntries returns node n's entry span.
func (s *Snapshot) nodeEntries(n uint32) []entry {
	if n < s.baseNodes {
		return s.baseEntries[s.baseEntryStart[n]:s.baseEntryStart[n+1]]
	}
	m := n - s.baseNodes
	return s.extEntries[s.extEntryStart[m]:s.extEntryStart[m+1]]
}

// Lookup returns the highest-priority rule matching the tuple, its
// priority, and whether any rule matched.
func (s *Snapshot) Lookup(tuple packet.FiveTuple) (rules.Rule, int, bool) {
	r, prio, _, ok := s.lookup(tuple)
	return r, prio, ok
}

// LookupTrace is Lookup plus the number of memory touches the walk made:
// one per trie node visited plus one per candidate entry scanned in the
// visited nodes' lists. The scan term is what dominates on rule shapes
// that pile many rules onto one src-prefix node (reflection floods,
// carpet-bombing dst ranges) — under-reporting it would hide exactly the
// work the compiled classifier exists to eliminate, and the cost model
// and before/after benchmarks need the honest figure.
func (s *Snapshot) LookupTrace(tuple packet.FiveTuple) (rules.Rule, int, int, bool) {
	return s.lookup(tuple)
}

func (s *Snapshot) lookup(tuple packet.FiveTuple) (rules.Rule, int, int, bool) {
	if len(s.extChildren) == 0 {
		return s.lookupBase(tuple)
	}
	var (
		best     rules.Rule
		bestPrio int32 = math.MaxInt32
		found    bool
	)
	n := s.root
	visited := 0
	for level := 0; ; level++ {
		visited++
		ents := s.nodeEntries(n)
		visited += len(ents)
		for i := range ents {
			e := &ents[i]
			if e.prio < bestPrio && e.rule.Matches(tuple) {
				best, bestPrio, found = e.rule, e.prio, true
			}
		}
		if level == s.levels {
			break
		}
		c := s.child(n, uint64(chunk(tuple.SrcIP, level, s.stride)))
		if c == 0 {
			break
		}
		n = c
	}
	if !found {
		return rules.Rule{}, 0, visited, false
	}
	return best, int(bestPrio), visited, true
}

// lookupBase is the single-segment fast path: every snapshot built by
// Table.Snapshot or compact() — i.e. every snapshot outside an active
// Diff lineage — has an empty ext segment, so the per-level segment
// branch of the general walk is pure overhead for the common case. This
// loop indexes the base arrays directly, exactly as the pre-diffing
// arena did.
func (s *Snapshot) lookupBase(tuple packet.FiveTuple) (rules.Rule, int, int, bool) {
	var (
		best     rules.Rule
		bestPrio int32 = math.MaxInt32
		found    bool
	)
	n := s.root
	visited := 0
	for level := 0; ; level++ {
		visited++
		visited += int(s.baseEntryStart[n+1] - s.baseEntryStart[n])
		for i := s.baseEntryStart[n]; i < s.baseEntryStart[n+1]; i++ {
			e := &s.baseEntries[i]
			if e.prio < bestPrio && e.rule.Matches(tuple) {
				best, bestPrio, found = e.rule, e.prio, true
			}
		}
		if level == s.levels {
			break
		}
		c := s.baseChildren[(uint64(n)<<s.stride)+uint64(chunk(tuple.SrcIP, level, s.stride))]
		if c == 0 {
			break
		}
		n = c
	}
	if !found {
		return rules.Rule{}, 0, visited, false
	}
	return best, int(bestPrio), visited, true
}

// Len returns the number of live entries (rules) stored.
func (s *Snapshot) Len() int { return s.liveEntries }

// NodeCount returns the number of live trie nodes in the snapshot.
func (s *Snapshot) NodeCount() int { return s.liveNodes }

// MemoryBytes is the snapshot's live resident size: exact arena arithmetic
// over the node and entry population an equivalent from-scratch rebuild
// would contain. For a snapshot built by Table.Snapshot this is exactly
// the arena array sizes; for a diffed snapshot, dead old copies of
// path-copied nodes retained by the shared segments are reported
// separately by SlackBytes (Diff bounds them to under half the live size
// by compacting). This is the quantity the EPC budgeter weighs rule sets
// by — the working set a tenant's rules genuinely need.
func (s *Snapshot) MemoryBytes() int {
	return tableOverheadBytes +
		(s.liveNodes<<s.stride)*childSlotBytes +
		(s.liveNodes+1)*entrySpanBytes +
		s.liveEntries*entrySlotBytes
}

// SlackBytes is the retained-but-dead portion of the snapshot's arenas:
// old copies of nodes a Diff path-copied or pruned, still held alive by
// the shared base segment. Zero for from-scratch snapshots; bounded below
// liveBytes/compactSlackDen for diffed ones.
func (s *Snapshot) SlackBytes() int {
	return (s.deadNodes<<s.stride)*childSlotBytes +
		s.deadNodes*entrySpanBytes +
		s.deadEntries*entrySlotBytes
}

// RetainedBytes is the snapshot's true resident footprint: live arena
// bytes plus slack. This is what the enclave memory meter charges.
func (s *Snapshot) RetainedBytes() int { return s.MemoryBytes() + s.SlackBytes() }

// MaxPrio returns the highest entry priority ever present in this
// snapshot's lineage (-1 when empty). Diff assigns its adds consecutive
// priorities starting at MaxPrio()+1, in order.
func (s *Snapshot) MaxPrio() int32 { return s.maxPrio }

// Stride returns the configured stride.
func (s *Snapshot) Stride() int { return s.stride }
