// Package trie implements the multi-bit trie rule lookup table used inside
// the VIF enclave (the paper's "state-of-the-art multi-bit tries data
// structure for looking up the filter rules", §IV-A and Figure 6).
//
// The trie is keyed by source address — the dimension along which DDoS
// filter rules discriminate (attack sources) — with each rule anchored at
// the deepest node whose path is a prefix of the rule's source prefix.
// Lookup walks at most 32/stride nodes, collecting candidate rules and
// verifying their remaining fields (destination, ports, protocol), and
// returns the highest-priority (first-submitted) match: the same
// first-match-wins semantics as the reference linear matcher in package
// rules, against which this implementation is property-tested.
//
// # Layout
//
// Instead of one heap object per node, all nodes live in flat arrays. A
// node is an index; node i's child table is the slice
// children[i<<stride : (i+1)<<stride] of node indices (0 = no child in the
// builder, whose root is node 0). This removes per-node pointer chasing
// from the hot lookup path and makes the memory footprint exact arena
// arithmetic, which is what the enclave package charges against the EPC
// budget (the paper's Figure 3b: linear growth toward the EPC limit).
//
// A Snapshot splits that arena into two segments so incremental updates
// can share structure: a base segment adopted by reference from the
// snapshot it was diffed from (the reused untouched subtrees) and an ext
// segment owned by the snapshot (the delta's root-to-leaf path copies).
// Snapshot.Diff builds a successor from a changeset in
// O(|delta|·levels·2^stride) instead of re-inserting every rule; removals
// prune emptied subtrees so the live population stays exactly what a
// from-scratch rebuild would allocate, and dead old copies (slack,
// reported by SlackBytes, charged via RetainedBytes) are bounded by
// periodic compaction inside Diff.
//
// # Concurrency contract
//
//   - Table is single-writer: one goroutine (the control plane) owns all
//     mutation and even Lookup, since Lookup may publish a fresh snapshot.
//   - Snapshot is deeply immutable after construction and safe for any
//     number of concurrent lock-free readers. Table.Snapshot publishes
//     with a single atomic pointer store; Loaded may be called from any
//     goroutine.
//   - Snapshot.Diff only reads its receiver; the source and the successor
//     remain independently valid, so a reader holding the old snapshot is
//     never blocked, torn, or invalidated by a reconfiguration. Multiple
//     Diffs from one source are safe (each copies the ext segment it
//     extends).
//
// # Invariants
//
//   - Verdict equivalence: a Diff chain answers every lookup exactly as a
//     from-scratch rebuild of the equivalent rule list (survivors in
//     order, adds appended); priorities are sparse after diffs but order-
//     isomorphic to the dense rebuild numbering.
//   - Arena equivalence: Len, NodeCount, and MemoryBytes of a Diff result
//     equal the from-scratch rebuild's, provided the lineage is
//     garbage-free (built by InsertSet/Diff, not Table.Remove — see
//     Diff's note).
//   - MaxPrio is monotonic along a Diff lineage; adds never reuse a
//     removed rule's priority.
package trie
