package trie

import (
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// rebuildSnapshot is the from-scratch oracle for structure: a fresh Table
// loaded with exactly the live rules in first-match order, as Reconfigure
// would build it.
func rebuildSnapshot(t *testing.T, stride int, live []rules.Rule) *Snapshot {
	t.Helper()
	tbl, err := New(stride)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range live {
		tbl.Insert(r, i)
	}
	return tbl.Snapshot()
}

// TestDiffMatchesRebuild drives random delta chains (Diff after Diff, the
// live-reconfigure pattern) and checks after every delta that the diffed
// snapshot is verdict-equivalent to the linear-scan oracle AND arena-
// equivalent (MemoryBytes, Len, NodeCount) to a from-scratch rebuild of
// the same rule list — the property the ISSUE's acceptance pins.
func TestDiffMatchesRebuild(t *testing.T) {
	for _, stride := range []int{4, 8} {
		rng := rand.New(rand.NewSource(int64(stride) * 1031))
		var live []rules.Rule
		nextID := uint32(1)
		for i := 0; i < 60; i++ {
			live = append(live, propRule(rng, nextID))
			nextID++
		}
		snap := rebuildSnapshot(t, stride, live)

		for op := 0; op < 120; op++ {
			// Random delta: up to 8 removes of live rules, up to 8 adds.
			var removes []rules.Rule
			nRem := rng.Intn(4)
			if len(live) > nRem {
				for i := 0; i < nRem; i++ {
					j := rng.Intn(len(live))
					removes = append(removes, live[j])
					live = append(live[:j], live[j+1:]...)
				}
			}
			var adds []rules.Rule
			for i := rng.Intn(8); i > 0; i-- {
				adds = append(adds, propRule(rng, nextID))
				nextID++
			}
			next, err := snap.Diff(adds, removes)
			if err != nil {
				t.Fatalf("stride %d op %d: Diff: %v", stride, op, err)
			}
			snap = next
			live = append(live, adds...)

			ref := rebuildSnapshot(t, stride, live)
			if snap.Len() != ref.Len() || snap.NodeCount() != ref.NodeCount() {
				t.Fatalf("stride %d op %d: live arena mismatch: diff len=%d nodes=%d, rebuild len=%d nodes=%d",
					stride, op, snap.Len(), snap.NodeCount(), ref.Len(), ref.NodeCount())
			}
			if snap.MemoryBytes() != ref.MemoryBytes() {
				t.Fatalf("stride %d op %d: MemoryBytes diff=%d rebuild=%d",
					stride, op, snap.MemoryBytes(), ref.MemoryBytes())
			}
			// Diff's compaction invariant: dead nodes and entries each stay
			// at or under 1/compactSlackDen of their live counterparts, so
			// slack bytes can never exceed live bytes / compactSlackDen.
			if s, m := snap.SlackBytes(), snap.MemoryBytes(); s*compactSlackDen > m {
				t.Fatalf("stride %d op %d: slack %d exceeds bound vs live %d", stride, op, s, m)
			}
			for probe := 0; probe < 60; probe++ {
				tup := propProbe(rng, live)
				// First-match-wins over the live list, in order — the
				// semantics both snapshots must share. Priorities are dense
				// in the rebuild and sparse in the diff chain, so compare
				// the winning rule, not the priority value.
				wantR, wantOK := firstMatch(live, tup)
				gotR, _, gotOK := snap.Lookup(tup)
				refR, _, refOK := ref.Lookup(tup)
				if refOK != wantOK || (wantOK && refR.ID != wantR.ID) {
					t.Fatalf("stride %d op %d: rebuild oracle drift on %v", stride, op, tup)
				}
				if gotOK != wantOK || (wantOK && gotR.ID != wantR.ID) {
					t.Fatalf("stride %d op %d: diff snapshot disagrees on %v: got (%d,%v) want (%d,%v)",
						stride, op, tup, gotR.ID, gotOK, wantR.ID, wantOK)
				}
			}
		}
	}
}

func firstMatch(live []rules.Rule, tup packet.FiveTuple) (rules.Rule, bool) {
	for _, r := range live {
		if r.Matches(tup) {
			return r, true
		}
	}
	return rules.Rule{}, false
}

// TestDiffLeavesSourceUntouched pins immutability: a snapshot keeps
// answering exactly as at capture time after arbitrarily many diffs have
// been derived from it — the property that lets the data plane keep doing
// lock-free lookups against the previous table while a delta installs.
func TestDiffLeavesSourceUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	var live []rules.Rule
	for i := 0; i < 200; i++ {
		live = append(live, propRule(rng, uint32(i+1)))
	}
	old := rebuildSnapshot(t, DefaultStride, live)

	probes := make([]packet.FiveTuple, 600)
	type ans struct {
		id uint32
		ok bool
	}
	want := make([]ans, len(probes))
	for i := range probes {
		probes[i] = propProbe(rng, live)
		r, _, ok := old.Lookup(probes[i])
		want[i] = ans{id: r.ID, ok: ok}
	}
	oldMem, oldSlack := old.MemoryBytes(), old.SlackBytes()

	// Derive a long diff chain (and a second branch from the same parent,
	// which must not share mutable state with the first).
	snap := old
	branch, err := old.Diff([]rules.Rule{propRule(rng, 9999)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cur := append([]rules.Rule(nil), live...)
	for op := 0; op < 50; op++ {
		j := rng.Intn(len(cur))
		removes := []rules.Rule{cur[j]}
		cur = append(cur[:j], cur[j+1:]...)
		adds := []rules.Rule{propRule(rng, uint32(10000+op))}
		cur = append(cur, adds...)
		if snap, err = snap.Diff(adds, removes); err != nil {
			t.Fatal(err)
		}
	}
	_ = branch

	for i, p := range probes {
		r, _, ok := old.Lookup(p)
		if ok != want[i].ok || r.ID != want[i].id {
			t.Fatalf("source snapshot changed its answer for %v after diffing: (%d,%v) want (%d,%v)",
				p, r.ID, ok, want[i].id, want[i].ok)
		}
	}
	if old.MemoryBytes() != oldMem || old.SlackBytes() != oldSlack {
		t.Fatal("source snapshot's memory accounting changed after diffing")
	}
}

// TestDiffRemoveMissing: a remove that matches nothing is an error and the
// source is returned unharmed.
func TestDiffRemoveMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	live := []rules.Rule{propRule(rng, 1), propRule(rng, 2)}
	snap := rebuildSnapshot(t, DefaultStride, live)
	missing := propRule(rng, 77)
	if _, err := snap.Diff(nil, []rules.Rule{missing}); err == nil {
		t.Fatal("Diff removed a rule that was never inserted")
	}
	if got, _, ok := snap.Lookup(propProbe(rng, live)); ok && got.ID == 77 {
		t.Fatal("failed Diff mutated the source")
	}
}

// TestDiffEmptyDelta returns the receiver itself: nothing to copy.
func TestDiffEmptyDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	snap := rebuildSnapshot(t, DefaultStride, []rules.Rule{propRule(rng, 1)})
	out, err := snap.Diff(nil, nil)
	if err != nil || out != snap {
		t.Fatalf("empty Diff: got (%p,%v), want the receiver", out, err)
	}
}

// TestDiffPriorityAppend: adds land after every existing priority so
// existing rules keep winning ties, matching append-at-end first-match
// semantics.
func TestDiffPriorityAppend(t *testing.T) {
	a := rules.Rule{ID: 1, Src: rules.MustParsePrefix("10.0.0.0/8"), PAllow: 1}
	b := rules.Rule{ID: 2, Src: rules.MustParsePrefix("10.0.0.0/8"), PAllow: 0}
	snap := rebuildSnapshot(t, DefaultStride, []rules.Rule{a})
	next, err := snap.Diff([]rules.Rule{b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tup := packet.FiveTuple{SrcIP: packet.MustParseIP("10.1.2.3")}
	r, prio, ok := next.Lookup(tup)
	if !ok || r.ID != 1 {
		t.Fatalf("existing rule should still win: got id=%d ok=%v", r.ID, ok)
	}
	if int32(prio) != snap.MaxPrio() || next.MaxPrio() != snap.MaxPrio()+1 {
		t.Fatalf("priority bookkeeping off: prio=%d src max=%d next max=%d", prio, snap.MaxPrio(), next.MaxPrio())
	}
}
