package trie

import (
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		stride int
		ok     bool
	}{
		{1, true}, {2, true}, {4, true}, {8, true}, {16, true},
		{0, false}, {3, false}, {5, false}, {32, false}, {-8, false},
	}
	for _, tt := range tests {
		_, err := New(tt.stride)
		if (err == nil) != tt.ok {
			t.Errorf("New(%d): err=%v, want ok=%v", tt.stride, err, tt.ok)
		}
	}
}

func mkRule(src string, dst string, proto packet.Protocol, id uint32) rules.Rule {
	return rules.Rule{
		ID:    id,
		Src:   rules.MustParsePrefix(src),
		Dst:   rules.MustParsePrefix(dst),
		Proto: proto,
	}
}

func TestLookupBasics(t *testing.T) {
	tbl := NewDefault()
	r1 := mkRule("10.0.0.0/8", "192.0.2.0/24", packet.ProtoUDP, 1)
	r2 := mkRule("10.1.0.0/16", "192.0.2.0/24", packet.ProtoUDP, 2)
	tbl.Insert(r1, 0)
	tbl.Insert(r2, 1)

	pkt := packet.FiveTuple{
		SrcIP: packet.MustParseIP("10.1.2.3"),
		DstIP: packet.MustParseIP("192.0.2.1"),
		Proto: packet.ProtoUDP,
	}
	got, prio, ok := tbl.Lookup(pkt)
	if !ok || got.ID != 1 || prio != 0 {
		t.Fatalf("Lookup = %+v prio=%d ok=%v, want rule 1 (first wins)", got, prio, ok)
	}

	pkt.SrcIP = packet.MustParseIP("172.16.0.1")
	if _, _, ok := tbl.Lookup(pkt); ok {
		t.Fatal("unmatched source must miss")
	}

	pkt.SrcIP = packet.MustParseIP("10.1.2.3")
	pkt.Proto = packet.ProtoTCP
	if _, _, ok := tbl.Lookup(pkt); ok {
		t.Fatal("wrong protocol must miss")
	}
}

func TestPriorityOrderIndependentOfDepth(t *testing.T) {
	// A later (worse-priority) rule anchored deeper must not beat an
	// earlier shallow rule.
	tbl := NewDefault()
	shallow := mkRule("0.0.0.0/0", "192.0.2.0/24", packet.ProtoUDP, 10)
	deep := mkRule("10.1.2.3/32", "192.0.2.0/24", packet.ProtoUDP, 20)
	tbl.Insert(shallow, 0)
	tbl.Insert(deep, 1)
	pkt := packet.FiveTuple{
		SrcIP: packet.MustParseIP("10.1.2.3"),
		DstIP: packet.MustParseIP("192.0.2.1"),
		Proto: packet.ProtoUDP,
	}
	got, _, ok := tbl.Lookup(pkt)
	if !ok || got.ID != 10 {
		t.Fatalf("got rule %d, want shallow rule 10", got.ID)
	}
}

func TestNonStrideAlignedPrefixes(t *testing.T) {
	// /12 anchors at depth 1 with stride 8; matching must still be exact.
	tbl := NewDefault()
	r := mkRule("172.16.0.0/12", "0.0.0.0/0", packet.ProtoTCP, 5)
	tbl.Insert(r, 0)

	in := packet.FiveTuple{SrcIP: packet.MustParseIP("172.31.255.1"), Proto: packet.ProtoTCP}
	if _, _, ok := tbl.Lookup(in); !ok {
		t.Fatal("address inside /12 must match")
	}
	// 172.32.0.0 shares the first 8 bits (172) but not the /12.
	out := packet.FiveTuple{SrcIP: packet.MustParseIP("172.32.0.1"), Proto: packet.ProtoTCP}
	if _, _, ok := tbl.Lookup(out); ok {
		t.Fatal("address outside /12 must not match")
	}
}

func TestRemove(t *testing.T) {
	tbl := NewDefault()
	r := mkRule("10.0.0.0/8", "192.0.2.0/24", packet.ProtoUDP, 1)
	tbl.Insert(r, 0)
	if tbl.Len() != 1 {
		t.Fatal("len after insert")
	}
	if n := tbl.Remove(r); n != 1 {
		t.Fatalf("Remove = %d, want 1", n)
	}
	if tbl.Len() != 0 {
		t.Fatal("len after remove")
	}
	pkt := packet.FiveTuple{
		SrcIP: packet.MustParseIP("10.1.2.3"),
		DstIP: packet.MustParseIP("192.0.2.1"),
		Proto: packet.ProtoUDP,
	}
	if _, _, ok := tbl.Lookup(pkt); ok {
		t.Fatal("removed rule still matches")
	}
	if n := tbl.Remove(r); n != 0 {
		t.Fatalf("second Remove = %d, want 0", n)
	}
	other := mkRule("203.0.113.0/24", "0.0.0.0/0", packet.ProtoTCP, 9)
	if n := tbl.Remove(other); n != 0 {
		t.Fatalf("Remove of absent path = %d, want 0", n)
	}
}

func randomRule(rng *rand.Rand, id uint32) rules.Rule {
	plens := []uint8{0, 8, 12, 16, 20, 24, 28, 32}
	protos := []packet.Protocol{0, packet.ProtoTCP, packet.ProtoUDP}
	r := rules.Rule{
		ID:    id,
		Src:   rules.Prefix{Addr: rng.Uint32(), Len: plens[rng.Intn(len(plens))]}.Canonical(),
		Dst:   rules.Prefix{Addr: rng.Uint32(), Len: plens[rng.Intn(len(plens))]}.Canonical(),
		Proto: protos[rng.Intn(len(protos))],
	}
	if rng.Intn(2) == 0 {
		r.DstPort = rules.Port(uint16(rng.Intn(1024)))
	}
	return r
}

func TestLookupEquivalentToLinearScan(t *testing.T) {
	// Core property: for random rule sets and random packets, the trie
	// agrees exactly with rules.Set.Match (first match wins).
	for _, stride := range []int{4, 8, 16} {
		rng := rand.New(rand.NewSource(int64(stride)))
		tbl, err := New(stride)
		if err != nil {
			t.Fatal(err)
		}
		var rs []rules.Rule
		for i := 0; i < 300; i++ {
			rs = append(rs, randomRule(rng, uint32(i+1)))
		}
		set, err := rules.NewSet(rs, true)
		if err != nil {
			t.Fatal(err)
		}
		tbl.InsertSet(set)

		for i := 0; i < 5000; i++ {
			pkt := packet.FiveTuple{
				SrcIP:   rng.Uint32(),
				DstIP:   rng.Uint32(),
				SrcPort: uint16(rng.Intn(2048)),
				DstPort: uint16(rng.Intn(2048)),
				Proto:   packet.ProtoUDP,
			}
			// Bias half the packets toward rule space so matches happen.
			if i%2 == 0 {
				r := rs[rng.Intn(len(rs))]
				pkt.SrcIP = r.Src.Addr | (rng.Uint32() &^ r.Src.Mask())
				pkt.DstIP = r.Dst.Addr | (rng.Uint32() &^ r.Dst.Mask())
			}
			wantRule, wantOK := set.Match(pkt)
			gotRule, _, gotOK := tbl.Lookup(pkt)
			if wantOK != gotOK || (wantOK && wantRule.ID != gotRule.ID) {
				t.Fatalf("stride %d: trie disagrees with linear scan on %v:\n trie: %+v %v\n scan: %+v %v",
					stride, pkt, gotRule, gotOK, wantRule, wantOK)
			}
		}
	}
}

func TestMemoryGrowsLinearly(t *testing.T) {
	// Figure 3b's premise: lookup table memory grows linearly with rules.
	tbl := NewDefault()
	rng := rand.New(rand.NewSource(42))
	base := tbl.MemoryBytes()
	var at1000, at2000 int
	for i := 1; i <= 2000; i++ {
		tbl.Insert(randomRule(rng, uint32(i)), i)
		switch i {
		case 1000:
			at1000 = tbl.MemoryBytes()
		case 2000:
			at2000 = tbl.MemoryBytes()
		}
	}
	grow1 := at1000 - base
	grow2 := at2000 - at1000
	if grow1 <= 0 || grow2 <= 0 {
		t.Fatalf("memory must grow: %d, %d", grow1, grow2)
	}
	ratio := float64(grow2) / float64(grow1)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("growth not roughly linear: first 1000 cost %d, second 1000 cost %d", grow1, grow2)
	}
}

func TestInsertBatchMatchesSequentialInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var rs []rules.Rule
	for i := 0; i < 200; i++ {
		rs = append(rs, randomRule(rng, uint32(i+1)))
	}
	a, b := NewDefault(), NewDefault()
	a.InsertBatch(rs, 0)
	for i, r := range rs {
		b.Insert(r, i)
	}
	if a.Len() != b.Len() || a.NodeCount() != b.NodeCount() {
		t.Fatalf("batch differs: len %d/%d nodes %d/%d", a.Len(), b.Len(), a.NodeCount(), b.NodeCount())
	}
	probe := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		pkt := packet.FiveTuple{SrcIP: probe.Uint32(), DstIP: probe.Uint32(), Proto: packet.ProtoTCP}
		ra, _, oka := a.Lookup(pkt)
		rb, _, okb := b.Lookup(pkt)
		if oka != okb || (oka && ra.ID != rb.ID) {
			t.Fatal("batch table disagrees with sequential table")
		}
	}
}

func TestReset(t *testing.T) {
	tbl := NewDefault()
	tbl.Insert(mkRule("10.0.0.0/8", "0.0.0.0/0", packet.ProtoUDP, 1), 0)
	tbl.Reset()
	if tbl.Len() != 0 || tbl.NodeCount() != 1 {
		t.Fatalf("after Reset: len=%d nodes=%d", tbl.Len(), tbl.NodeCount())
	}
	pkt := packet.FiveTuple{SrcIP: packet.MustParseIP("10.0.0.1"), Proto: packet.ProtoUDP}
	if _, _, ok := tbl.Lookup(pkt); ok {
		t.Fatal("reset table still matches")
	}
}

func TestLookupTraceVisitBounds(t *testing.T) {
	// 100 rules anchored at one /8 node: the walk visits at most levels+1
	// nodes and must also count the 100-entry candidate scan at the anchor
	// — the linear work the trace exists to attribute.
	tbl := NewDefault()
	for i := 0; i < 100; i++ {
		tbl.Insert(mkRule("10.0.0.0/8", "0.0.0.0/0", packet.ProtoUDP, uint32(i+1)), i)
	}
	pkt := packet.FiveTuple{SrcIP: packet.MustParseIP("10.1.2.3"), Proto: packet.ProtoUDP}
	_, _, visited, ok := tbl.LookupTrace(pkt)
	if !ok {
		t.Fatal("want match")
	}
	if visited <= 100 {
		t.Fatalf("visited = %d, candidate-list scans not counted", visited)
	}
	if visited > tbl.levels+1+100 {
		t.Fatalf("visited = %d, want <= %d", visited, tbl.levels+1+100)
	}
	// A probe outside 10/8 scans no candidates: nodes only.
	miss := packet.FiveTuple{SrcIP: packet.MustParseIP("11.1.2.3"), Proto: packet.ProtoUDP}
	if _, _, v, ok := tbl.LookupTrace(miss); ok || v < 1 || v > tbl.levels+1 {
		t.Fatalf("miss probe: visited=%d ok=%v, want 1..%d and no match", v, ok, tbl.levels+1)
	}
}

func benchTable(b *testing.B, n int) (*Table, []packet.FiveTuple) {
	rng := rand.New(rand.NewSource(9))
	tbl := NewDefault()
	dst := rules.MustParsePrefix("192.0.2.0/24")
	for i := 0; i < n; i++ {
		r := rules.Rule{
			ID:    uint32(i + 1),
			Src:   rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst:   dst,
			Proto: packet.ProtoUDP,
		}
		tbl.Insert(r, i)
	}
	pkts := make([]packet.FiveTuple, 1024)
	for i := range pkts {
		pkts[i] = packet.FiveTuple{
			SrcIP: rng.Uint32(),
			DstIP: packet.MustParseIP("192.0.2.7"),
			Proto: packet.ProtoUDP,
		}
	}
	return tbl, pkts
}

func benchmarkLookup(b *testing.B, n int) {
	tbl, pkts := benchTable(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(pkts[i&1023])
	}
}

func BenchmarkLookup100(b *testing.B)   { benchmarkLookup(b, 100) }
func BenchmarkLookup1000(b *testing.B)  { benchmarkLookup(b, 1000) }
func BenchmarkLookup3000(b *testing.B)  { benchmarkLookup(b, 3000) }
func BenchmarkLookup10000(b *testing.B) { benchmarkLookup(b, 10000) }

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	rs := make([]rules.Rule, b.N)
	for i := range rs {
		rs[i] = randomRule(rng, uint32(i+1))
	}
	tbl := NewDefault()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Insert(rs[i], i)
	}
}
