package engine

import (
	"sync"
	"testing"
)

// TestStatsReadableWhileEngineRuns pins the control-plane monitoring
// contract: Filter.Stats, ExactEntries, PendingFlows and HashRatio (and
// the engine's own Metrics) may be read from any goroutine while the
// shard workers are mutating the filters. Before the batch-first refactor
// the filter kept plain counter fields, so this exact pattern — which is
// what cluster.TotalStats and any operator dashboard do against a live
// engine — was a data race the race detector flags; the counters are now
// an atomic block the worker updates once per burst. Run under -race
// (tier-1 CI does) to keep it honest.
func TestStatsReadableWhileEngineRuns(t *testing.T) {
	set := testRules(t, 64)
	fs := testFilters(t, set, 2)
	eng, err := New(Config{Filters: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	descs := testDescriptors(t, set, 4096)

	var producers, readers sync.WaitGroup
	stop := make(chan struct{})

	// Control-plane readers: exactly what a monitoring loop does.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var sink uint64
			var ratio float64
			for {
				select {
				case <-stop:
					_ = sink
					_ = ratio
					return
				default:
				}
				for _, f := range fs {
					st := f.Stats()
					sink += st.Processed + st.Allowed + st.Dropped + st.Hashed
					sink += uint64(f.ExactEntries() + f.PendingFlows())
					ratio += f.HashRatio()
				}
				m := eng.Metrics()
				sink += m.Processed
			}
		}()
	}

	// Producers: the data plane mutating the same filters.
	for p := 0; p < 2; p++ {
		producers.Add(1)
		go func(p int) {
			defer producers.Done()
			for i := p; i < len(descs); i += 2 {
				for !eng.Inject(descs[i]) {
				}
			}
		}(p)
	}

	producers.Wait()
	eng.WaitDrained()
	close(stop)
	readers.Wait()
	eng.Stop()

	m := eng.Metrics()
	if m.Processed != m.Accepted {
		t.Fatalf("processed %d != accepted %d", m.Processed, m.Accepted)
	}
}
