package engine

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/innetworkfiltering/vif/internal/pipeline"
)

// ShardMetrics is one shard's live counter snapshot. All fields are read
// from the shard's atomic metrics block without synchronizing with the
// worker, so a snapshot is internally consistent only when the engine is
// quiesced (after WaitDrained or Stop); live snapshots are monitoring-
// grade, like any /proc counter.
type ShardMetrics struct {
	// Shard is the shard index.
	Shard int
	// Processed, Allowed, Dropped count filter verdicts.
	Processed, Allowed, Dropped uint64
	// Backpressure counts producer enqueue failures on a full ring.
	Backpressure uint64
	// QueueDepth is the ring occupancy at snapshot time.
	QueueDepth int
	// Epochs is the number of epoch rotations this shard has sealed.
	Epochs uint64
	// Promoted counts flows the worker promoted to exact-match entries at
	// epoch boundaries (the hybrid design's learning step in engine mode).
	Promoted uint64
	// PPS is the shard's average processed-packet rate since Start.
	PPS float64
	// Batches counts bursts drained from the ring; AvgBatch is the mean
	// burst occupancy (Processed/Batches) — how full the batch path
	// actually runs, the amortization factor of the per-burst costs.
	Batches  uint64
	AvgBatch float64
	// NsPerPacket is the shard's modeled enclave time per processed packet
	// (the SGX cost meter's virtual nanoseconds divided by packets) — the
	// per-packet cost floor behind the paper's throughput figures.
	NsPerPacket float64
}

// Metrics is an engine-wide snapshot.
type Metrics struct {
	// Shards holds one entry per shard, in shard order.
	Shards []ShardMetrics
	// Accepted counts descriptors successfully enqueued across all shards.
	Accepted uint64
	// LBDrops counts descriptors the (faulty) balancer discarded before
	// any shard saw them.
	LBDrops uint64
	// Processed, Allowed, Dropped, Backpressure aggregate the shard blocks.
	Processed, Allowed, Dropped, Backpressure uint64
	// Elapsed is the wall-clock time since Start.
	Elapsed time.Duration
	// PPS is the aggregate average processed-packet rate since Start.
	PPS float64
}

// Metrics snapshots the per-shard atomic metric blocks.
func (e *Engine) Metrics() Metrics {
	m := Metrics{
		Shards:  make([]ShardMetrics, len(e.shards)),
		LBDrops: e.lbDrops.Load(),
	}
	m.Accepted = e.accepted.Load()
	elapsed := time.Since(e.started)
	if e.started.IsZero() {
		elapsed = 0
	}
	m.Elapsed = elapsed
	secs := elapsed.Seconds()
	for i, s := range e.shards {
		sm := ShardMetrics{
			Shard:        i,
			Processed:    s.processed.Load(),
			Allowed:      s.allowed.Load(),
			Dropped:      s.dropped.Load(),
			Backpressure: s.backpressure.Load(),
			QueueDepth:   s.ring.Len(),
			Epochs:       s.epochs.Load(),
			Promoted:     s.promoted.Load(),
			Batches:      s.batches.Load(),
		}
		if secs > 0 {
			sm.PPS = float64(sm.Processed) / secs
		}
		if sm.Batches > 0 {
			sm.AvgBatch = float64(sm.Processed) / float64(sm.Batches)
		}
		if sm.Processed > 0 {
			base := math.Float64frombits(s.baseVirtualNs.Load())
			sm.NsPerPacket = (s.f.Enclave().VirtualNs() - base) / float64(sm.Processed)
		}
		m.Shards[i] = sm
		m.Processed += sm.Processed
		m.Allowed += sm.Allowed
		m.Dropped += sm.Dropped
		m.Backpressure += sm.Backpressure
	}
	if secs > 0 {
		m.PPS = float64(m.Processed) / secs
	}
	return m
}

// AggregateModeledPps returns the fleet's aggregate modeled capacity in
// packets/s for the given frame size: each shard's measured SGX virtual
// time per packet (the calibrated cost-model meter driven by the packets
// the shard actually processed) converted to a line-rate-capped rate and
// summed — the paper's Figure 4 quantity, where filtering capacity grows
// linearly with the number of parallel enclaves. Shards that processed
// nothing contribute nothing.
func (e *Engine) AggregateModeledPps(frameSize int) float64 {
	var total float64
	for _, s := range e.shards {
		n := s.processed.Load()
		if n == 0 {
			continue
		}
		encl := s.f.Enclave()
		base := math.Float64frombits(s.baseVirtualNs.Load())
		perPkt := (encl.VirtualNs()-base)/float64(n) + encl.Model().PipelineNs
		pps, _ := pipeline.ModeledThroughput(perPkt, frameSize, pipeline.TenGigE)
		total += pps
	}
	return total
}

// String renders a compact operator summary.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine{shards=%d accepted=%d processed=%d allowed=%d dropped=%d lbdrops=%d backpressure=%d pps=%.0f}",
		len(m.Shards), m.Accepted, m.Processed, m.Allowed, m.Dropped, m.LBDrops, m.Backpressure, m.PPS)
	return b.String()
}
