package engine

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/innetworkfiltering/vif/internal/engine/module"
	"github.com/innetworkfiltering/vif/internal/pipeline"
)

// ShardMetrics is one shard's live counter snapshot, aggregated over every
// namespace the shard serves. All fields are read from the shard's atomic
// metrics block without synchronizing with the worker, so a snapshot is
// internally consistent only when the engine is quiesced (after
// WaitDrained or Stop); live snapshots are monitoring-grade, like any
// /proc counter.
type ShardMetrics struct {
	// Shard is the shard index.
	Shard int
	// Processed, Allowed, Dropped count filter verdicts.
	Processed, Allowed, Dropped uint64
	// Orphaned counts packets dequeued for a namespace that detached while
	// they sat in the ring: dropped, attributed to no victim.
	Orphaned uint64
	// Faulted counts packets lost to a worker panic mid-burst: counted as
	// processed (the drain invariant holds) but carrying no verdict.
	Faulted uint64
	// Restarts counts worker panic recoveries (worker_restart events).
	Restarts uint64
	// Backpressure counts producer enqueue failures on a full ring.
	Backpressure uint64
	// QueueDepth is the ring occupancy at snapshot time.
	QueueDepth int
	// Epochs is the number of (namespace) epoch rotations this shard has
	// sealed.
	Epochs uint64
	// Promoted counts flows the worker promoted to exact-match entries at
	// epoch boundaries (the hybrid design's learning step in engine mode).
	Promoted uint64
	// PPS is the shard's average processed-packet rate since Start.
	PPS float64
	// Batches counts bursts drained from the ring; AvgBatch is the mean
	// burst occupancy (Processed/Batches) — how full the batch path
	// actually runs, the amortization factor of the per-burst costs.
	Batches  uint64
	AvgBatch float64
	// NsPerPacket is the shard's modeled enclave time per filtered packet
	// (the SGX cost meters' virtual nanoseconds, summed over the shard's
	// namespace filters, divided by the packets they decided) — the
	// per-packet cost floor behind the paper's throughput figures.
	NsPerPacket float64
	// Stages is the measured per-module cost breakdown of the shard's
	// burst chains, aggregated by module name across the shard's
	// namespace cells. Figures come from the telemetry recorder's
	// 1-in-N sampled bursts (empty without telemetry).
	Stages []StageMetrics
}

// StageMetrics is one burst module's sampled wall cost on one shard.
type StageMetrics struct {
	// Stage is the module name (classify, sketch, charge, capture, ...).
	Stage string
	// SampledPackets is how many packets sampled bursts carried through
	// the module; NsPerPacket is the module's measured wall nanoseconds
	// per such packet.
	SampledPackets uint64
	NsPerPacket    float64
}

// NamespaceMetrics is one victim namespace's live counter snapshot,
// aggregated across shards.
type NamespaceMetrics struct {
	// NS is the namespace id.
	NS int
	// Processed, Allowed, Dropped count this victim's filter verdicts.
	Processed, Allowed, Dropped uint64
	// Admitted and Throttled are the victim's ingress SLO counters under
	// admission control (Config.Admission): packets past the token-bucket
	// gate (they may still hit ring backpressure) and packets the gate
	// refused. Both zero without admission.
	Admitted, Throttled uint64
	// AdmitRatePps is the victim's current admitted-rate cap in packets/s
	// (0 = uncapped): an explicit AdmitPps, or its weighted share of the
	// engine's TotalPps budget.
	AdmitRatePps float64
	// Epochs is the number of epochs sealed (rotations × shards).
	Epochs uint64
	// Promoted counts flows promoted to exact-match entries.
	Promoted uint64
	// EPCShareBytes is the namespace's apportioned share of each shard
	// machine's EPC.
	EPCShareBytes int
	// PagingPressure is the worst paging exposure across the namespace's
	// enclaves: the fraction of a working set that cannot be EPC-resident
	// under the share (0 when every shard's set fits).
	PagingPressure float64
	// NsPerPacket is the namespace's modeled enclave time per processed
	// packet.
	NsPerPacket float64
}

// NamespaceTombstone is one detached victim namespace's final, exact
// accounting, retained engine-side (bounded by Config.TombstoneLimit) so
// operators of long-lived shared engines can audit tenants after they
// leave.
type NamespaceTombstone struct {
	// Final is exactly what DetachNamespace returned: counters folded
	// after the quiescing fence, so nothing ran for the victim afterwards.
	Final NamespaceMetrics
	// DetachedAt is the control-plane wall-clock detach time. (Enclave
	// clocks are untrusted; this is operator bookkeeping, not evidence.)
	DetachedAt time.Time
}

// Metrics is an engine-wide snapshot.
type Metrics struct {
	// Shards holds one entry per shard, in shard order.
	Shards []ShardMetrics
	// Namespaces holds one entry per attached victim namespace, in
	// namespace-id order.
	Namespaces []NamespaceMetrics
	// Accepted counts descriptors successfully enqueued across all shards.
	Accepted uint64
	// LBDrops counts descriptors a (faulty) balancer discarded before any
	// shard saw them.
	LBDrops uint64
	// NSDrops counts descriptors stamped with an unattached namespace
	// (typically injections racing a detach): dropped before any shard.
	NSDrops uint64
	// Processed, Allowed, Dropped, Orphaned, Backpressure, Faulted,
	// Restarts aggregate the shard blocks.
	Processed, Allowed, Dropped, Orphaned, Backpressure, Faulted, Restarts uint64
	// Throttled aggregates the namespaces' admission-refused counters.
	Throttled uint64
	// QueueDepth sums the shard rings' occupancy at snapshot time.
	QueueDepth int
	// Elapsed is the wall-clock time since Start.
	Elapsed time.Duration
	// PPS is the aggregate average processed-packet rate since Start.
	PPS float64
}

// stageAcc accumulates one module name's sampled cost on one shard.
type stageAcc struct {
	name     string
	ns, pkts uint64
}

// mergeStageCosts folds one cell chain's per-module costs into a shard's
// accumulator, keyed by module name, preserving first-seen chain order.
// Chains hold a handful of modules, so the linear scan beats a map.
func mergeStageCosts(acc []stageAcc, costs []module.StageCost) []stageAcc {
	for _, c := range costs {
		found := false
		for j := range acc {
			if acc[j].name == c.Module {
				acc[j].ns += c.Ns
				acc[j].pkts += c.Packets
				found = true
				break
			}
		}
		if !found {
			acc = append(acc, stageAcc{name: c.Module, ns: c.Ns, pkts: c.Packets})
		}
	}
	return acc
}

// nsVirtualDelta returns a cell's engine-era modeled nanoseconds.
func (t *nsShard) virtualDelta() float64 {
	base := math.Float64frombits(t.baseVirtualNs.Load())
	return t.f.Enclave().VirtualNs() - base
}

// Metrics snapshots the per-shard and per-namespace atomic metric blocks.
func (e *Engine) Metrics() Metrics {
	m := Metrics{
		Shards:  make([]ShardMetrics, len(e.shards)),
		LBDrops: e.lbDrops.Load(),
		NSDrops: e.nsDrops.Load(),
	}
	m.Accepted = e.accepted.Load()
	// Guard before computing: time.Since on the zero time of a never-
	// started engine would yield a unix-epoch-sized nonsense duration.
	var elapsed time.Duration
	if !e.started.IsZero() {
		elapsed = time.Since(e.started)
	}
	m.Elapsed = elapsed
	secs := elapsed.Seconds()

	nss := *e.nss.Load()
	// Per-shard modeled time: summed over the shard's namespace cells.
	shardVirtual := make([]float64, len(e.shards))
	shardFiltered := make([]uint64, len(e.shards))
	// Per-shard sampled module costs, merged by module name across the
	// shard's namespace cells (only populated with telemetry: without a
	// recorder no burst is ever sampled, so the accumulators stay zero).
	var shardStages [][]stageAcc
	if e.tel != nil {
		shardStages = make([][]stageAcc, len(e.shards))
	}
	for _, ns := range nss {
		if ns == nil {
			continue
		}
		nm := NamespaceMetrics{NS: ns.id}
		var virtual float64
		for i, t := range ns.shards {
			p := t.processed.Load()
			nm.Processed += p
			nm.Allowed += t.allowed.Load()
			nm.Dropped += t.dropped.Load()
			nm.Epochs += t.epochs.Load()
			nm.Promoted += t.promoted.Load()
			if pr := t.f.Enclave().PagingPressure(); pr > nm.PagingPressure {
				nm.PagingPressure = pr
			}
			d := t.virtualDelta()
			virtual += d
			shardVirtual[i] += d
			shardFiltered[i] += p
			if shardStages != nil {
				shardStages[i] = mergeStageCosts(shardStages[i], t.chain.StageCosts())
			}
		}
		if budget := e.budget.Load(); budget != nil {
			nm.EPCShareBytes = budget.Share(ns.id)
		}
		if nm.Processed > 0 {
			nm.NsPerPacket = virtual / float64(nm.Processed)
		}
		if ns.adm != nil {
			nm.Admitted = ns.adm.admitted.Load()
			nm.Throttled = ns.adm.throttled.Load()
			nm.AdmitRatePps = ns.adm.rate()
			m.Throttled += nm.Throttled
		}
		m.Namespaces = append(m.Namespaces, nm)
	}

	for i, s := range e.shards {
		sm := ShardMetrics{
			Shard:        i,
			Processed:    s.processed.Load(),
			Allowed:      s.allowed.Load(),
			Dropped:      s.dropped.Load(),
			Orphaned:     s.orphaned.Load(),
			Faulted:      s.faulted.Load(),
			Restarts:     s.restarts.Load(),
			Backpressure: s.backpressure.Load(),
			QueueDepth:   s.ring.Len(),
			Epochs:       s.epochs.Load(),
			Promoted:     s.promoted.Load(),
			Batches:      s.batches.Load(),
		}
		if secs > 0 {
			sm.PPS = float64(sm.Processed) / secs
		}
		if sm.Batches > 0 {
			sm.AvgBatch = float64(sm.Processed) / float64(sm.Batches)
		}
		if shardFiltered[i] > 0 {
			sm.NsPerPacket = shardVirtual[i] / float64(shardFiltered[i])
		}
		if shardStages != nil {
			for _, a := range shardStages[i] {
				st := StageMetrics{Stage: a.name, SampledPackets: a.pkts}
				if a.pkts > 0 {
					st.NsPerPacket = float64(a.ns) / float64(a.pkts)
				}
				sm.Stages = append(sm.Stages, st)
			}
		}
		m.Shards[i] = sm
		m.Processed += sm.Processed
		m.Allowed += sm.Allowed
		m.Dropped += sm.Dropped
		m.Orphaned += sm.Orphaned
		m.Faulted += sm.Faulted
		m.Restarts += sm.Restarts
		m.Backpressure += sm.Backpressure
		m.QueueDepth += sm.QueueDepth
	}
	if secs > 0 {
		m.PPS = float64(m.Processed) / secs
	}
	return m
}

// AggregateModeledPps returns the fleet's aggregate modeled capacity in
// packets/s for the given frame size: each (namespace, shard) cell's
// measured SGX virtual time per packet (the calibrated cost-model meter
// driven by the packets the cell actually processed) converted to a
// line-rate-capped rate and summed per shard — the paper's Figure 4
// quantity, where filtering capacity grows linearly with the number of
// parallel enclaves. Cells that processed nothing contribute nothing.
func (e *Engine) AggregateModeledPps(frameSize int) float64 {
	nss := *e.nss.Load()
	shardVirtual := make([]float64, len(e.shards))
	shardProcessed := make([]uint64, len(e.shards))
	// Per-shard pipeline pricing: tenants may run under different platform
	// models, and a shard's fixed pipeline cost is a property of its
	// machine, so weight each cell's PipelineNs by the packets it decided
	// rather than letting any one cell's constant speak for the shard.
	shardPipelineNs := make([]float64, len(e.shards))
	for _, ns := range nss {
		if ns == nil {
			continue
		}
		for i, t := range ns.shards {
			n := t.processed.Load()
			if n == 0 {
				continue
			}
			shardProcessed[i] += n
			shardVirtual[i] += t.virtualDelta()
			shardPipelineNs[i] += float64(n) * t.f.Enclave().Model().PipelineNs
		}
	}
	var total float64
	for i := range e.shards {
		if shardProcessed[i] == 0 {
			continue
		}
		perPkt := (shardVirtual[i] + shardPipelineNs[i]) / float64(shardProcessed[i])
		pps, _ := pipeline.ModeledThroughput(perPkt, frameSize, pipeline.TenGigE)
		total += pps
	}
	return total
}

// String renders a compact operator summary covering every drop class
// (filter verdicts, balancer drops, namespace drops, orphans,
// backpressure) plus the live ring occupancy.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine{shards=%d namespaces=%d accepted=%d processed=%d allowed=%d dropped=%d throttled=%d lbdrops=%d nsdrops=%d orphaned=%d faulted=%d restarts=%d backpressure=%d queue=%d pps=%.0f}",
		len(m.Shards), len(m.Namespaces), m.Accepted, m.Processed, m.Allowed, m.Dropped, m.Throttled, m.LBDrops, m.NSDrops, m.Orphaned, m.Faulted, m.Restarts, m.Backpressure, m.QueueDepth, m.PPS)
	return b.String()
}
