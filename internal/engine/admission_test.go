package engine

import (
	"math"
	"testing"

	"github.com/innetworkfiltering/vif/internal/telemetry"
)

// admissionClock is a hand-cranked bucket clock: tests advance it
// explicitly, so refill arithmetic is exact instead of wall-clock-shaped.
type admissionClock struct{ ns int64 }

func (c *admissionClock) now() int64       { return c.ns }
func (c *admissionClock) advance(ms int64) { c.ns += ms * 1e6 }

// TestAdmissionExplicitCapExact: a namespace with an explicit AdmitPps cap
// admits exactly burst-then-refill packets, refuses the rest, and both SLO
// counters account for every offered packet.
func TestAdmissionExplicitCapExact(t *testing.T) {
	set := testRules(t, 16)
	clk := &admissionClock{}
	tel := telemetry.New(telemetry.Config{Shards: 1, TraceEvery: -1})
	eng, err := New(Config{
		Shards:    1,
		Telemetry: tel,
		Admission: &AdmissionConfig{Burst: 100, Now: clk.now},
	})
	if err != nil {
		t.Fatal(err)
	}
	ns, err := eng.AttachNamespace(NamespaceConfig{
		Filters: testFilters(t, set, 1), AdmitPps: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	descs := testDescriptors(t, set, 256)

	// Full bucket: a 150-packet burst admits the 100-token burst capacity.
	if n := eng.InjectBatch(descs[:150]); n != 100 {
		t.Fatalf("burst admit: %d, want 100", n)
	}
	// 50ms at 1000 pps refills 50 tokens.
	clk.advance(50)
	if n := eng.InjectBatch(descs[:80]); n != 50 {
		t.Fatalf("refill admit: %d, want 50", n)
	}
	// Scalar path shares the bucket: empty now, so Inject refuses.
	if eng.Inject(descs[0]) {
		t.Fatal("scalar inject passed an empty bucket")
	}
	clk.advance(2) // 2 tokens
	if !eng.Inject(descs[0]) {
		t.Fatal("scalar inject refused with tokens available")
	}
	eng.WaitDrained()

	m := eng.Metrics()
	nm := m.Namespaces[0]
	// 50 + 30 refused from the two batches, plus the scalar refusal.
	if nm.Admitted != 151 || nm.Throttled != 81 {
		t.Fatalf("SLO counters admitted=%d throttled=%d, want 151/81", nm.Admitted, nm.Throttled)
	}
	if m.Throttled != 81 {
		t.Fatalf("engine aggregate throttled %d, want 81", m.Throttled)
	}
	if nm.AdmitRatePps != 1000 {
		t.Fatalf("AdmitRatePps %v, want 1000", nm.AdmitRatePps)
	}
	// Admitted packets all landed and were processed; throttled ones never
	// reached a ring.
	if m.Accepted != 151 || m.Processed != 151 {
		t.Fatalf("accepted=%d processed=%d, want 151/151", m.Accepted, m.Processed)
	}
	_ = ns
}

// TestAdmissionThrottleEventEdges: the admission_throttle journal event is
// edge-triggered per episode — one event when throttling begins, cleared
// by a fully-admitted run, re-armed for the next episode.
func TestAdmissionThrottleEventEdges(t *testing.T) {
	set := testRules(t, 16)
	clk := &admissionClock{}
	tel := telemetry.New(telemetry.Config{Shards: 1, TraceEvery: -1, JournalSize: 64})
	eng, err := New(Config{
		Shards:    1,
		Telemetry: tel,
		Admission: &AdmissionConfig{Burst: 10, Now: clk.now},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AttachNamespace(NamespaceConfig{
		Filters: testFilters(t, set, 1), AdmitPps: 1000,
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	descs := testDescriptors(t, set, 64)

	countThrottle := func() int {
		n := 0
		for _, ev := range tel.Journal().Events() {
			if ev.Type == telemetry.EvAdmissionThrottle {
				n++
			}
		}
		return n
	}

	eng.InjectBatch(descs[:20]) // episode 1 begins: 10 admitted, 10 refused
	eng.InjectBatch(descs[:20]) // still inside episode 1: no second event
	if got := countThrottle(); got != 1 {
		t.Fatalf("first episode journaled %d events, want 1", got)
	}
	clk.advance(20)             // 20 tokens
	eng.InjectBatch(descs[:5])  // fully admitted: episode closes
	eng.InjectBatch(descs[:40]) // episode 2 begins
	if got := countThrottle(); got != 2 {
		t.Fatalf("second episode journaled %d events total, want 2", got)
	}
	eng.WaitDrained()
}

// TestAdmissionWeightedShares: with an engine-wide TotalPps budget the
// uncapped namespaces split it by weight; an explicit cap opts its
// namespace out of the split entirely; detach rebalances the survivors.
func TestAdmissionWeightedShares(t *testing.T) {
	set := testRules(t, 16)
	eng, err := New(Config{
		Shards:    1,
		Admission: &AdmissionConfig{TotalPps: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	nsA, err := eng.AttachNamespace(NamespaceConfig{Filters: testFilters(t, set, 1), Weight: 3})
	if err != nil {
		t.Fatal(err)
	}
	nsB, err := eng.AttachNamespace(NamespaceConfig{Filters: testFilters(t, set, 1)}) // weight 1
	if err != nil {
		t.Fatal(err)
	}
	nsC, err := eng.AttachNamespace(NamespaceConfig{
		Filters: testFilters(t, set, 1), Weight: 5, AdmitPps: 50, // explicit cap wins; weight ignored
	})
	if err != nil {
		t.Fatal(err)
	}

	rates := func() map[int]float64 {
		out := map[int]float64{}
		for _, nm := range eng.Metrics().Namespaces {
			out[nm.NS] = nm.AdmitRatePps
		}
		return out
	}
	r := rates()
	if r[nsA] != 750 || r[nsB] != 250 || r[nsC] != 50 {
		t.Fatalf("shares %v, want A=750 B=250 C=50", r)
	}

	// Detaching the heavy tenant hands its share to the survivor.
	if _, err := eng.DetachNamespace(nsA); err != nil {
		t.Fatal(err)
	}
	r = rates()
	if r[nsB] != 1000 || r[nsC] != 50 {
		t.Fatalf("post-detach shares %v, want B=1000 C=50", r)
	}
}

// TestAdmissionTombstoneCarriesSLO: a detached victim's tombstone carries
// its final admission counters, and a full reconfigure folds the counters
// forward instead of resetting them.
func TestAdmissionTombstoneCarriesSLO(t *testing.T) {
	set := testRules(t, 16)
	clk := &admissionClock{}
	eng, err := New(Config{
		Shards:    1,
		Admission: &AdmissionConfig{Burst: 10, Now: clk.now},
	})
	if err != nil {
		t.Fatal(err)
	}
	ns, err := eng.AttachNamespace(NamespaceConfig{
		Filters: testFilters(t, set, 1), AdmitPps: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	descs := testDescriptors(t, set, 64)
	eng.InjectBatch(descs[:25]) // 10 admitted, 15 throttled
	eng.WaitDrained()

	// Counters survive a full reconfigure (fresh filters, same bucket
	// identity folded forward).
	if err := eng.ReconfigureNamespace(ns, NamespaceConfig{
		Filters: testFilters(t, set, 1), AdmitPps: 1000,
	}); err != nil {
		t.Fatal(err)
	}
	nm := eng.Metrics().Namespaces[0]
	if nm.Admitted != 10 || nm.Throttled != 15 {
		t.Fatalf("post-reconfigure SLO admitted=%d throttled=%d, want 10/15", nm.Admitted, nm.Throttled)
	}

	final, err := eng.DetachNamespace(ns)
	if err != nil {
		t.Fatal(err)
	}
	eng.Stop()
	if final.Admitted != 10 || final.Throttled != 15 {
		t.Fatalf("tombstone SLO admitted=%d throttled=%d, want 10/15", final.Admitted, final.Throttled)
	}
	if math.Abs(final.AdmitRatePps-1000) > 1e-9 {
		t.Fatalf("tombstone AdmitRatePps %v, want 1000", final.AdmitRatePps)
	}
	tombs := eng.Tombstones()
	if got := tombs[len(tombs)-1].Final; got != final {
		t.Fatalf("tombstone %+v != detach return %+v", got, final)
	}
}
