package engine

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// TestReconfigureNamespaceDeltaLive applies rule deltas to a running
// engine under live traffic and checks, after quiescing, that the
// namespace's filters ended up with exactly the rule set a full
// ReconfigureNamespace (the oracle path) would have installed, that the
// new rules genuinely filter, and that the EPC budget tracked the changed
// rule-memory weight.
func TestReconfigureNamespaceDeltaLive(t *testing.T) {
	set := nsTestRules(t, 64, "192.0.2.0/24", 5)
	fs := testFilters(t, set, 2)
	eng, err := New(Config{Filters: fs, EPCBytes: 92 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	descs := nsTestDescriptors(t, set, 4096, "192.0.2.9", 0, 6)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i = (i + 256) % 4096 {
			eng.InjectBatch(descs[i : i+256])
		}
	}()

	shareBefore := eng.EPCShares()[0]
	// Push three live deltas: add a drop rule for a fresh prefix, remove
	// two originals, add another.
	rng := rand.New(rand.NewSource(99))
	added := []rules.Rule{{
		ID: 9001, Src: rules.MustParsePrefix("198.51.100.0/24"),
		Dst: rules.MustParsePrefix("192.0.2.0/24"), Proto: packet.ProtoUDP,
	}}
	for step := 0; step < 3; step++ {
		var d filter.Delta
		switch step {
		case 0:
			d.Adds = added
		case 1:
			d.Removes = []rules.Rule{{ID: set.Rules[0].ID}, {ID: set.Rules[1].ID}}
		case 2:
			d.Adds = []rules.Rule{{
				ID: 9002, Src: rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
				Dst: rules.MustParsePrefix("192.0.2.0/24"), Proto: packet.ProtoUDP,
			}}
		}
		deltas := []filter.Delta{d, d} // both shards hold the full set here
		if err := eng.ReconfigureNamespaceDelta(0, deltas, nil, nil); err != nil {
			t.Fatalf("delta step %d: %v", step, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	eng.WaitDrained()

	// Expected final set: originals minus the two removed, plus the two adds.
	wantCount := set.Len() - 2 + 2
	for i, f := range eng.NamespaceFilters(0) {
		if got := f.RuleCount(); got != wantCount {
			t.Fatalf("shard %d: %d rules, want %d", i, got, wantCount)
		}
		if _, ok := f.Rules().ByID(9001); !ok {
			t.Fatalf("shard %d: added rule 9001 missing", i)
		}
		if _, ok := f.Rules().ByID(set.Rules[0].ID); ok {
			t.Fatalf("shard %d: removed rule still installed", i)
		}
	}

	// The added rule must actually drop: inject matching traffic and watch
	// the namespace drop counter move.
	droppedBefore := eng.Metrics().Namespaces[0].Dropped
	hit := make([]packet.Descriptor, 64)
	for i := range hit {
		hit[i] = packet.Descriptor{Tuple: packet.FiveTuple{
			SrcIP: packet.MustParseIP("198.51.100.7") + uint32(i),
			DstIP: packet.MustParseIP("192.0.2.9"),
			SrcPort: 1000 + uint16(i), DstPort: 53, Proto: packet.ProtoUDP,
		}, Size: 64, Ref: packet.NoRef}
	}
	if n := eng.InjectBatch(hit); n == 0 {
		t.Fatal("inject after delta refused")
	}
	eng.WaitDrained()
	if got := eng.Metrics().Namespaces[0].Dropped; got <= droppedBefore {
		t.Fatalf("added drop rule not filtering: dropped %d -> %d", droppedBefore, got)
	}

	if shareAfter := eng.EPCShares()[0]; shareAfter != shareBefore {
		// Single tenant: the share is the whole EPC regardless of weight.
		t.Fatalf("single-tenant EPC share changed: %d -> %d", shareBefore, shareAfter)
	}
}

// TestReconfigureNamespaceDeltaRebalancesEPC: with two tenants, a delta
// that grows one tenant's rule memory shifts the EPC apportionment toward
// it without detaching anyone.
func TestReconfigureNamespaceDeltaRebalancesEPC(t *testing.T) {
	setA := nsTestRules(t, 100, "192.0.2.0/24", 11)
	setB := nsTestRules(t, 100, "198.51.100.0/24", 12)
	eng, err := New(Config{Shards: 2, EPCBytes: 92 << 20})
	if err != nil {
		t.Fatal(err)
	}
	nsA, err := eng.AttachNamespace(NamespaceConfig{Filters: testFilters(t, setA, 2)})
	if err != nil {
		t.Fatal(err)
	}
	nsB, err := eng.AttachNamespace(NamespaceConfig{Filters: testFilters(t, setB, 2)})
	if err != nil {
		t.Fatal(err)
	}
	before := eng.EPCShares()

	rng := rand.New(rand.NewSource(13))
	adds := make([]rules.Rule, 400)
	for i := range adds {
		adds[i] = rules.Rule{
			ID:  uint32(50000 + i),
			Src: rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst: rules.MustParsePrefix("198.51.100.0/24"), Proto: packet.ProtoUDP,
		}
	}
	d := filter.Delta{Adds: adds}
	if err := eng.ReconfigureNamespaceDelta(nsB, []filter.Delta{d, d}, nil, nil); err != nil {
		t.Fatal(err)
	}
	after := eng.EPCShares()
	if !(after[nsB] > before[nsB] && after[nsA] < before[nsA]) {
		t.Fatalf("EPC shares did not follow the delta: before %v after %v", before, after)
	}
	if after[nsA]+after[nsB] != 92<<20 {
		t.Fatalf("shares no longer sum to the EPC: %v", after)
	}
}

// TestReconfigureNamespaceDeltaErrors: unknown namespace, shard-count
// mismatch, and an invalid per-shard delta all error; the full-rebuild
// path still repairs the namespace afterwards.
func TestReconfigureNamespaceDeltaErrors(t *testing.T) {
	set := nsTestRules(t, 8, "192.0.2.0/24", 21)
	fs := testFilters(t, set, 2)
	eng, err := New(Config{Filters: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ReconfigureNamespaceDelta(7, make([]filter.Delta, 2), nil, nil); !errors.Is(err, ErrUnknownNamespace) {
		t.Fatalf("unknown namespace: %v", err)
	}
	if err := eng.ReconfigureNamespaceDelta(0, make([]filter.Delta, 1), nil, nil); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("shard mismatch: %v", err)
	}
	bad := filter.Delta{Removes: []rules.Rule{{ID: 4242}}}
	if err := eng.ReconfigureNamespaceDelta(0, []filter.Delta{bad, bad}, nil, nil); err == nil {
		t.Fatal("invalid delta accepted")
	}
	// Oracle repair: a full ReconfigureNamespace still lands.
	if err := eng.ReconfigureNamespace(0, NamespaceConfig{Filters: testFilters(t, set, 2)}); err != nil {
		t.Fatalf("repair: %v", err)
	}
}

// TestReconfigureNamespaceDeltaRoutingSwap: supplying a routing programme
// with the delta swaps it atomically — subsequent injections follow the
// new programme (everything to shard 1), and a concurrent rotation never
// errors across the swap.
func TestReconfigureNamespaceDeltaRoutingSwap(t *testing.T) {
	set := nsTestRules(t, 8, "192.0.2.0/24", 31)
	fs := testFilters(t, set, 2)
	eng, err := New(Config{Filters: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	descs := nsTestDescriptors(t, set, 512, "192.0.2.9", 0, 32)
	eng.InjectBatch(descs[:256])
	eng.WaitDrained()

	toShard1 := func(packet.FiveTuple) (int, bool) { return 1, true }
	if err := eng.ReconfigureNamespaceDelta(0, make([]filter.Delta, 2), toShard1, nil); err != nil {
		t.Fatal(err)
	}
	before := eng.Metrics().Shards[0].Processed
	eng.InjectBatch(descs[256:])
	eng.WaitDrained()
	m := eng.Metrics()
	if got := m.Shards[0].Processed; got != before {
		t.Fatalf("shard 0 still receiving after routing swap: %d -> %d", before, got)
	}
	if _, err := eng.RotateEpoch(0); err != nil {
		t.Fatalf("rotation across routing swap: %v", err)
	}
}

// TestTombstones: detached victims' final counters are retained exactly,
// oldest evicted first under the bound.
func TestTombstones(t *testing.T) {
	const limit = 3
	eng, err := New(Config{Shards: 1, TombstoneLimit: limit, EPCBytes: 92 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	finals := make([]NamespaceMetrics, 0, 5)
	for v := 0; v < 5; v++ {
		set := nsTestRules(t, 4, "192.0.2.0/24", int64(40+v))
		ns, err := eng.AttachNamespace(NamespaceConfig{Filters: testFilters(t, set, 1)})
		if err != nil {
			t.Fatal(err)
		}
		descs := nsTestDescriptors(t, set, 256+64*v, "192.0.2.9", uint16(ns), int64(50+v))
		for off := 0; off < len(descs); off += 64 {
			for eng.InjectBatch(descs[off:off+64]) == 0 {
				time.Sleep(time.Millisecond)
			}
		}
		eng.WaitDrained()
		final, err := eng.DetachNamespace(ns)
		if err != nil {
			t.Fatal(err)
		}
		if final.Processed != uint64(256+64*v) {
			t.Fatalf("victim %d: final processed %d, want %d", v, final.Processed, 256+64*v)
		}
		finals = append(finals, final)
	}

	tombs := eng.Tombstones()
	if len(tombs) != limit {
		t.Fatalf("retained %d tombstones, want %d", len(tombs), limit)
	}
	for i, tb := range tombs {
		want := finals[len(finals)-limit+i]
		if tb.Final != want {
			t.Fatalf("tombstone %d mismatch:\n got %+v\nwant %+v", i, tb.Final, want)
		}
		if tb.DetachedAt.IsZero() {
			t.Fatalf("tombstone %d has no detach time", i)
		}
	}
	if tombs[0].Final.Processed >= tombs[limit-1].Final.Processed {
		t.Fatal("tombstones not in oldest-first order")
	}
}

// TestTombstonesDisabled: a negative limit retains nothing.
func TestTombstonesDisabled(t *testing.T) {
	eng, err := New(Config{Shards: 1, TombstoneLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	set := nsTestRules(t, 4, "192.0.2.0/24", 61)
	ns, err := eng.AttachNamespace(NamespaceConfig{Filters: testFilters(t, set, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DetachNamespace(ns); err != nil {
		t.Fatal(err)
	}
	if got := eng.Tombstones(); len(got) != 0 {
		t.Fatalf("disabled tombstones retained %d entries", len(got))
	}
}
