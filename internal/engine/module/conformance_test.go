package module_test

import (
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/engine/module"
	"github.com/innetworkfiltering/vif/internal/engine/module/moduletest"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// confFilter builds a deterministic filter (k drop rules over the
// victim prefix, default-allow) for the conformance runs.
func confFilter(t *testing.T, k int) *filter.Filter {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	rs := make([]rules.Rule, k)
	dst := rules.MustParsePrefix("192.0.2.0/24")
	for i := range rs {
		rs[i] = rules.Rule{
			Src:   rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst:   dst,
			Proto: packet.ProtoUDP,
		}
	}
	set, err := rules.NewSet(rs, true)
	if err != nil {
		t.Fatal(err)
	}
	e, err := enclave.New(enclave.CodeIdentity{
		Name: "vif-filter", Version: "conformance", BinarySize: 1 << 20,
	}, enclave.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	f, err := filter.New(e, set, filter.Config{Stride: 4, DisablePromotion: true})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// seq composes sub-modules in order, the way a chain would, so the
// harness can exercise the full classify→sketch→charge data path as one
// unit (sketch and charge consume the burst classify staged).
type seq struct{ mods []module.Module }

func (s *seq) Name() string { return "seq" }
func (s *seq) ProcessBurst(ctx *module.BurstCtx) {
	for _, m := range s.mods {
		m.ProcessBurst(ctx)
	}
}
func (s *seq) Flush() {
	for _, m := range s.mods {
		m.Flush()
	}
}

// nop is the minimal conforming module: observes nothing, touches
// nothing.
type nop struct{}

func (nop) Name() string                  { return "nop" }
func (nop) ProcessBurst(*module.BurstCtx) {}
func (nop) Flush()                        {}

// panicky fails on odd-sized bursts, modeling a module bug the worker
// supervisor must absorb as faulted packets.
type panicky struct{}

func (panicky) Name() string { return "panicky" }
func (panicky) ProcessBurst(ctx *module.BurstCtx) {
	if ctx.Len()%2 == 1 {
		panic("panicky: injected module failure")
	}
}
func (panicky) Flush() {}

// TestConformance runs the moduletest property suite over every shipped
// module (and a few adversarial ones), one table entry each — the same
// single-entry cost a third-party module pays.
func TestConformance(t *testing.T) {
	t.Run("classify", func(t *testing.T) {
		moduletest.Run(t, moduletest.Config{
			New: func(t *testing.T) module.Module {
				return &module.Classify{F: confFilter(t, 64)}
			},
			VerdictStage: true,
			PreMask:      true,
		})
	})

	t.Run("sketch", func(t *testing.T) {
		// Standalone (nothing staged): must be a verdict-neutral no-op.
		moduletest.Run(t, moduletest.Config{
			New: func(t *testing.T) module.Module {
				return &module.Sketch{F: confFilter(t, 8)}
			},
			VerdictNeutral: true,
			PreVerdict:     true,
			PreMask:        true,
		})
	})

	t.Run("charge", func(t *testing.T) {
		moduletest.Run(t, moduletest.Config{
			New: func(t *testing.T) module.Module {
				return &module.Charge{F: confFilter(t, 8)}
			},
			VerdictNeutral: true,
			PreVerdict:     true,
			PreMask:        true,
		})
	})

	t.Run("classify+sketch+charge", func(t *testing.T) {
		// The full default chain as one unit: sketch and charge apply the
		// burst classify staged, so filter stats and the enclave meter
		// advance. Observe proves the applied state is copies, not
		// references into the burst arena.
		var f *filter.Filter
		moduletest.Run(t, moduletest.Config{
			New: func(t *testing.T) module.Module {
				f = confFilter(t, 64)
				return &seq{mods: []module.Module{
					&module.Classify{F: f},
					&module.Sketch{F: f},
					&module.Charge{F: f},
				}}
			},
			Observe: func(module.Module) any {
				return struct {
					Stats filter.Stats
					Mem   int
				}{f.Stats(), f.Enclave().Meter().MemoryUsed}
			},
			VerdictStage: true,
			PreMask:      true,
		})
		if f.Stats().Processed == 0 {
			t.Fatal("composite chain processed nothing through the filter")
		}
	})

	t.Run("fused", func(t *testing.T) {
		// The legacy-loop module: requires an unmasked burst (PreMask off —
		// the fixed loop predates the mask).
		moduletest.Run(t, moduletest.Config{
			New: func(t *testing.T) module.Module {
				return &module.Fused{F: confFilter(t, 64)}
			},
			VerdictStage: true,
		})
	})

	t.Run("admission-uncapped", func(t *testing.T) {
		moduletest.Run(t, moduletest.Config{
			New: func(t *testing.T) module.Module {
				return &module.Admission{Take: func(n int) int { return n }}
			},
			VerdictNeutral: true,
			PreVerdict:     true,
			PreMask:        true,
		})
	})

	t.Run("admission-capped", func(t *testing.T) {
		var throttled int
		moduletest.Run(t, moduletest.Config{
			New: func(t *testing.T) module.Module {
				return &module.Admission{
					Take:       func(n int) int { return min(n, 11) },
					OnThrottle: func(refused int) { throttled += refused },
				}
			},
			PreVerdict: true,
			PreMask:    true,
		})
		if throttled == 0 {
			t.Fatal("capped admission never throttled — workload never exceeded the cap")
		}
	})

	t.Run("capture", func(t *testing.T) {
		var tap *module.Capture
		moduletest.Run(t, moduletest.Config{
			New: func(t *testing.T) module.Module {
				tap = module.NewCapture(3, 16)
				return tap
			},
			Observe: func(module.Module) any {
				return struct {
					Total uint64
					Snap  []module.CapturedPacket
				}{tap.Captured(), tap.Snapshot()}
			},
			VerdictNeutral: true,
			PreVerdict:     true,
			PreMask:        true,
		})
		if tap.Captured() == 0 {
			t.Fatal("capture tap sampled nothing")
		}
	})

	t.Run("nop", func(t *testing.T) {
		moduletest.Run(t, moduletest.Config{
			New:            func(*testing.T) module.Module { return nop{} },
			VerdictNeutral: true,
			PreVerdict:     true,
			PreMask:        true,
		})
	})

	t.Run("panicky", func(t *testing.T) {
		// A buggy module's panics must fold into faulted without breaking
		// the accounting identity.
		moduletest.Run(t, moduletest.Config{
			New: func(*testing.T) module.Module { return panicky{} },
		})
	})
}
