package module

import (
	"sync"

	"github.com/innetworkfiltering/vif/internal/filter"
)

// DefaultCaptureBuf bounds a capture tap's retained packet ring when the
// caller passes 0.
const DefaultCaptureBuf = 1024

// CapturedPacket is one sampled packet copied out of the data path: the
// canonical flow key (packet.FiveTuple flow-key rendering, shared with
// the packet tracer), the verdict as of the tap's chain position (0 when
// the tap runs before the verdict stage), and the placement of the
// packet.
type CapturedPacket struct {
	Flow    string
	Verdict filter.Verdict
	Shard   int
	NS      int
	Size    uint16
}

// Capture is a pdump-style sampled capture tap: every Nth packet through
// the chain position it occupies is copied (flow key, verdict, size)
// into a bounded ring. It is verdict-neutral — it never touches
// verdicts or the drop mask — so it can sit anywhere in a chain; placed
// after the verdict stage it records decisions too. One instance per
// shard: the sampling counter is worker-owned. Snapshot and Captured
// are safe from any goroutine (the ring is mutex-guarded; the mutex is
// taken only for the 1-in-N sampled packets, not per packet).
type Capture struct {
	every uint64
	ctr   uint64 // worker-owned packet counter
	key   []byte // worker-owned flow-key scratch

	mu    sync.Mutex
	ring  []CapturedPacket
	next  int
	total uint64
}

// NewCapture builds a tap sampling one packet in every (1-in-every),
// retaining the most recent buf captures (DefaultCaptureBuf when 0).
// every < 1 is clamped to 1 (capture everything).
func NewCapture(every, buf int) *Capture {
	if every < 1 {
		every = 1
	}
	if buf <= 0 {
		buf = DefaultCaptureBuf
	}
	return &Capture{every: uint64(every), ring: make([]CapturedPacket, 0, buf)}
}

// Name implements Module.
func (c *Capture) Name() string { return "capture" }

// ProcessBurst implements Module.
func (c *Capture) ProcessBurst(ctx *BurstCtx) {
	n := uint64(ctx.Len())
	// First sampled offset in this burst: the smallest i with
	// (ctr+i) % every == 0.
	off := (c.every - c.ctr%c.every) % c.every
	c.ctr += n
	if off >= n {
		return
	}
	for i := off; i < n; i += c.every {
		d := &ctx.Pkts[i]
		c.key = d.Tuple.AppendFlowKey(c.key[:0])
		cp := CapturedPacket{
			Flow:  string(c.key), // copy — the scratch is reused
			Shard: ctx.Shard,
			NS:    ctx.NS,
			Size:  d.Size,
		}
		if int(i) < len(ctx.Verdicts) {
			cp.Verdict = ctx.Verdicts[i]
		}
		c.record(cp)
	}
}

func (c *Capture) record(cp CapturedPacket) {
	c.mu.Lock()
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, cp)
	} else {
		c.ring[c.next] = cp
		c.next = (c.next + 1) % len(c.ring)
	}
	c.total++
	c.mu.Unlock()
}

// Flush implements Module (captures publish immediately).
func (c *Capture) Flush() {}

// Captured is the total number of packets sampled since creation
// (including ones the bounded ring has since evicted).
func (c *Capture) Captured() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Snapshot copies the retained captures, oldest first.
func (c *Capture) Snapshot() []CapturedPacket {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CapturedPacket, 0, len(c.ring))
	out = append(out, c.ring[c.next:]...)
	out = append(out, c.ring[:c.next]...)
	return out
}
