package module

// Admission adapts an ingress admission gate — any take(n) → granted
// token discipline, like the engine's per-namespace weighted buckets —
// into a module, so future chains can run admission inside the pipeline
// instead of at ingress. Packets beyond the granted count are
// drop-masked before the verdict stage (they skip classification and
// cost charging, exactly like the ingress gate's refusals skip the
// ring). The engine's production admission stays at ingress; this is
// the chain-shaped form of the same contract.
type Admission struct {
	// Take requests n admission tokens and returns how many were
	// granted (0..n). Called once per burst with the burst's unmasked
	// packet count.
	Take func(n int) int
	// OnThrottle, when set, observes each refused packet count (for
	// counter plumbing). Called only when packets were refused.
	OnThrottle func(refused int)
}

// Name implements Module.
func (m *Admission) Name() string { return "admission" }

// ProcessBurst implements Module.
func (m *Admission) ProcessBurst(ctx *BurstCtx) {
	n := ctx.Len() - ctx.MaskedDrops()
	if n == 0 {
		return
	}
	granted := m.Take(n)
	if granted >= n {
		return
	}
	// Refuse from the tail, preserving the granted prefix: the ingress
	// gate admits in arrival order, and so does the adapter.
	seen := 0
	for i := 0; i < ctx.Len(); i++ {
		if ctx.Dropped(i) {
			continue
		}
		if seen >= granted {
			ctx.MarkDrop(i)
		}
		seen++
	}
	if m.OnThrottle != nil {
		m.OnThrottle(n - granted)
	}
}

// Flush implements Module (admission stages nothing).
func (m *Admission) Flush() {}
