// Package module is the shard worker's pluggable burst pipeline: the
// fixed classify → sketch → charge sequence the engine once hard-coded,
// decomposed into composable stages (Module) run over a shared per-burst
// scratch arena (BurstCtx) by a per-(namespace, shard) Chain. New
// per-packet behaviors — sampled capture taps, admission adapters, rate
// limiters — become modules appended to a chain instead of engine
// surgery.
//
// Concurrency contract: a Chain and its BurstCtx are owned by exactly one
// shard worker goroutine; ProcessBurst and Flush are never called
// concurrently, so modules keep plain (non-atomic) burst state. Anything
// a module exposes to other goroutines (the capture tap's Snapshot, the
// chain's sampled stage costs) must be independently synchronized —
// atomics or a mutex touched off the per-packet path. Chains are swapped
// atomically with the namespace view tables (copy-on-write), never
// mutated in place: an in-flight burst always runs against exactly one
// chain.
//
// Invariants: modules may set drop-mask bits but never clear one; a
// masked packet is never delivered (the verdict stage writes it
// VerdictDrop before classification, and the engine treats mask bits set
// after the verdict stage as overriding an allow). Verdicts are either
// absent (before the verdict stage) or exactly one per packet. Modules
// must not retain references into BurstCtx slices past ProcessBurst —
// the arena is reused by the next burst — and must copy anything they
// keep. Flush is idempotent: flushing an already-flushed burst is a
// no-op. Under these rules the engine's accounting identity
// Allowed+Dropped+Faulted+Orphaned == Processed holds for any chain; the
// moduletest package property-checks all of it for third-party modules.
package module
