// Package moduletest is the reusable conformance harness for burst
// modules: given any module.Module, Run property-tests the package
// contract — mask discipline (bits set, never cleared; pre-masked
// packets leave the verdict stage as VerdictDrop), verdict-slice shape
// (absent or exactly one per packet, values valid), no retained
// references into the burst arena (the backing arrays are garbled after
// every call and observable state must not move), idempotent Flush, and
// the engine accounting identity Allowed+Dropped+Faulted+Orphaned ==
// Processed replayed through a miniature supervised worker loop.
// Third-party modules get the same scrutiny the core stages ship with
// by writing one table entry.
package moduletest

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/innetworkfiltering/vif/internal/engine/module"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/netsim"
	"github.com/innetworkfiltering/vif/internal/packet"
)

// Config describes one module under test.
type Config struct {
	// New returns a fresh module instance. Required. Called once per
	// Run; the instance sees every generated burst, like a worker-owned
	// module sees every burst of its shard.
	New func(t *testing.T) module.Module
	// Observe snapshots the module's externally visible state (captured
	// packets, counters) as a deep value — reflect.DeepEqual-comparable.
	// The retention and flush checks compare snapshots; nil limits them
	// to crash-freedom.
	Observe func(m module.Module) any
	// VerdictStage marks a module that assigns verdicts: after
	// ProcessBurst every packet must carry one, and packets masked
	// before the call must carry VerdictDrop.
	VerdictStage bool
	// VerdictNeutral asserts the module never alters pre-existing
	// verdicts nor the drop mask (taps, observers).
	VerdictNeutral bool
	// PreVerdict feeds bursts whose verdicts are already assigned, as a
	// module placed after the verdict stage sees them. Ignored for
	// verdict stages.
	PreVerdict bool
	// PreMask, when set, pre-marks a deterministic subset of packets
	// dropped before some calls, exercising the mask-discipline checks.
	// Leave false for modules whose contract requires an unmasked burst
	// (the fused legacy loop).
	PreMask bool
	// Seed varies the generated workload (0 = fixed default).
	Seed int64
	// Bursts is the number of generated bursts (0 = 64).
	Bursts int
}

// Run drives the module through the conformance property suite.
func Run(t *testing.T, cfg Config) {
	t.Helper()
	if cfg.New == nil {
		t.Fatal("moduletest: Config.New is required")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 20250808
	}
	bursts := cfg.Bursts
	if bursts == 0 {
		bursts = 64
	}
	m := cfg.New(t)
	if m.Name() == "" {
		t.Fatal("moduletest: module Name() is empty")
	}
	if n2 := m.Name(); n2 != m.Name() {
		t.Fatalf("moduletest: module Name() unstable: %q then %q", m.Name(), n2)
	}

	rng := rand.New(rand.NewSource(seed))
	gen := netsim.NewFlowGen(seed, packet.MustParseIP("192.0.2.0"), 24)
	var ctx module.BurstCtx

	// Accounting tally across the whole run, engine-style.
	var processed, allowed, dropped, faulted, orphaned uint64

	sizes := []int{0, 1, 3, 17, 64, 257}
	for b := 0; b < bursts; b++ {
		n := sizes[b%len(sizes)]
		pkts := makeBurst(gen, rng, n)

		// A few rounds model a detached namespace: the worker never runs
		// the chain, the packets count as orphaned.
		if b%13 == 5 {
			processed += uint64(len(pkts))
			orphaned += uint64(len(pkts))
			continue
		}

		verdicts := make([]filter.Verdict, 0, n)
		ctx.Reset(0, 1, pkts, verdicts)
		if cfg.PreVerdict && !cfg.VerdictStage {
			ctx.Verdicts = ctx.Verdicts[:0]
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					ctx.Verdicts = append(ctx.Verdicts, filter.VerdictAllow)
				} else {
					ctx.Verdicts = append(ctx.Verdicts, filter.VerdictDrop)
				}
			}
		}
		premasked := map[int]bool{}
		if cfg.PreMask && b%3 == 1 {
			for i := 0; i < n; i += 7 {
				ctx.MarkDrop(i)
				premasked[i] = true
			}
		}
		preVerdicts := append([]filter.Verdict(nil), ctx.Verdicts...)
		preMaskCount := ctx.MaskedDrops()

		faultedBurst := runRecovered(t, m, &ctx)
		processed += uint64(len(pkts))
		if faultedBurst {
			// The supervisor folds a panicked burst's packets into
			// faulted: processed without a verdict.
			faulted += uint64(len(pkts))
			continue
		}

		// Shape: the packet slice is the worker's; its length is fixed.
		if len(ctx.Pkts) != n {
			t.Fatalf("burst %d: module resized Pkts: %d -> %d", b, n, len(ctx.Pkts))
		}
		// Verdict-slice discipline: absent or exactly one per packet.
		if len(ctx.Verdicts) != 0 && len(ctx.Verdicts) != n {
			t.Fatalf("burst %d: %d verdicts for %d packets", b, len(ctx.Verdicts), n)
		}
		for i, v := range ctx.Verdicts {
			if v != 0 && v != filter.VerdictAllow && v != filter.VerdictDrop {
				t.Fatalf("burst %d: packet %d: invalid verdict %d", b, i, v)
			}
		}
		// Mask discipline: monotone — every pre-set bit survives.
		for i := range premasked {
			if !ctx.Dropped(i) {
				t.Fatalf("burst %d: module cleared drop bit of packet %d", b, i)
			}
		}
		if ctx.MaskedDrops() < preMaskCount {
			t.Fatalf("burst %d: masked count shrank %d -> %d", b, preMaskCount, ctx.MaskedDrops())
		}
		if cfg.VerdictStage {
			if n > 0 && len(ctx.Verdicts) != n {
				t.Fatalf("burst %d: verdict stage left %d of %d packets unverdicted", b, n-len(ctx.Verdicts), n)
			}
			for i := range premasked {
				if ctx.Verdicts[i] != filter.VerdictDrop {
					t.Fatalf("burst %d: pre-masked packet %d left verdict stage as %v", b, i, ctx.Verdicts[i])
				}
			}
		}
		if cfg.VerdictNeutral {
			if got, want := ctx.Verdicts, preVerdicts; !verdictsEqual(got, want) {
				t.Fatalf("burst %d: verdict-neutral module changed verdicts: %v -> %v", b, want, got)
			}
			if ctx.MaskedDrops() != preMaskCount {
				t.Fatalf("burst %d: verdict-neutral module changed mask: %d -> %d", b, preMaskCount, ctx.MaskedDrops())
			}
		}

		// Accounting, engine-style: mask overrides allow; a burst with no
		// verdict stage downstream would get one in a real chain, so the
		// harness finishes unverdicted packets as a minimal verdict stage
		// would (masked drop, rest allow).
		for i := 0; i < n; i++ {
			var v filter.Verdict
			if i < len(ctx.Verdicts) {
				v = ctx.Verdicts[i]
			}
			if v == 0 {
				if ctx.Dropped(i) {
					v = filter.VerdictDrop
				} else {
					v = filter.VerdictAllow
				}
			}
			if v == filter.VerdictAllow && !ctx.Dropped(i) {
				allowed++
			} else {
				dropped++
			}
		}

		// Retention: garble the burst's backing memory; the module's
		// observable state must not move (anything kept must be a copy).
		if cfg.Observe != nil {
			before := cfg.Observe(m)
			garble(pkts, ctx.Verdicts)
			after := cfg.Observe(m)
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("burst %d: module state changed when the burst arena was garbled — retained reference?\nbefore: %#v\nafter:  %#v", b, before, after)
			}
		} else {
			garble(pkts, ctx.Verdicts)
		}
	}

	// Idempotent flush: a second Flush observes nothing new.
	m.Flush()
	if cfg.Observe != nil {
		s1 := cfg.Observe(m)
		m.Flush()
		s2 := cfg.Observe(m)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("Flush not idempotent:\nfirst:  %#v\nsecond: %#v", s1, s2)
		}
	} else {
		m.Flush()
	}

	if allowed+dropped+faulted+orphaned != processed {
		t.Fatalf("accounting identity broken: allowed %d + dropped %d + faulted %d + orphaned %d != processed %d",
			allowed, dropped, faulted, orphaned, processed)
	}
	if processed == 0 {
		t.Fatal("moduletest: generated no packets — workload config broken")
	}
}

// runRecovered invokes ProcessBurst under the worker supervisor's
// recover discipline, reporting whether the burst faulted.
func runRecovered(t *testing.T, m module.Module, ctx *module.BurstCtx) (faulted bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			faulted = true
		}
	}()
	m.ProcessBurst(ctx)
	return false
}

// makeBurst synthesizes n descriptors with netsim flows, folding in the
// packet trains (duplicate runs) the dedup paths special-case.
func makeBurst(gen *netsim.FlowGen, rng *rand.Rand, n int) []packet.Descriptor {
	pkts := make([]packet.Descriptor, n)
	for i := 0; i < n; i++ {
		if i > 0 && rng.Intn(4) == 0 {
			pkts[i] = pkts[i-1] // train
			continue
		}
		pkts[i] = packet.Descriptor{Tuple: gen.Next(), Size: uint16(64 + rng.Intn(1400)), NS: 1}
	}
	return pkts
}

// garble overwrites the burst's backing arrays with junk, so any module
// that retained a reference instead of copying sees its state change.
func garble(pkts []packet.Descriptor, verdicts []filter.Verdict) {
	for i := range pkts {
		pkts[i] = packet.Descriptor{Tuple: packet.FiveTuple{SrcIP: 0xdeadbeef, DstIP: 0xdeadbeef, SrcPort: 0xffff, DstPort: 0xffff, Proto: 0xfe}, Size: 0xffff, NS: 0xffff}
	}
	for i := range verdicts {
		verdicts[i] = filter.Verdict(0xff)
	}
}

func verdictsEqual(a, b []filter.Verdict) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
