package module

import (
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/telemetry"
)

// The core stages: the paper's fixed in-enclave sequence (classify →
// sketch/audit charge → verdict) decomposed onto the filter's burst
// halves. A default chain is [Classify, Sketch, Charge]; the legacy
// fused loop is [Fused]. Both orderings run the identical filter code
// (burst.go is the split of ProcessBatch), which is what the
// differential equivalence suite pins down.

// Classify is the verdict stage: it decides the burst via
// Filter.ClassifyBurst and fans one verdict out per packet. Packets
// already drop-masked by earlier modules skip classification entirely —
// they are written VerdictDrop without touching the filter (no cost
// charge, no filter-stats attribution), exactly like an ingress drop.
type Classify struct {
	F *filter.Filter
}

// Name implements Module.
func (m *Classify) Name() string { return "classify" }

// TelemetryStage maps the stage's sampled time onto StageVerdict.
func (m *Classify) TelemetryStage() telemetry.Stage { return telemetry.StageVerdict }

// ProcessBurst implements Module.
func (m *Classify) ProcessBurst(ctx *BurstCtx) {
	if ctx.MaskedDrops() == 0 {
		ctx.Verdicts = m.F.ClassifyBurst(ctx.Pkts, ctx.Verdicts)
		return
	}
	// Compact the unmasked packets, classify them, scatter the verdicts
	// back; masked slots become VerdictDrop.
	ps := ctx.pktScratch[:0]
	for i := range ctx.Pkts {
		if !ctx.Dropped(i) {
			ps = append(ps, ctx.Pkts[i])
		}
	}
	ctx.pktScratch = ps
	ctx.vScratch = m.F.ClassifyBurst(ps, ctx.vScratch)
	n := len(ctx.Pkts)
	if cap(ctx.Verdicts) < n {
		ctx.Verdicts = make([]filter.Verdict, n)
	} else {
		ctx.Verdicts = ctx.Verdicts[:n]
	}
	k := 0
	for i := range ctx.Pkts {
		if ctx.Dropped(i) {
			ctx.Verdicts[i] = filter.VerdictDrop
		} else {
			ctx.Verdicts[i] = ctx.vScratch[k]
			k++
		}
	}
}

// Flush implements Module (the classify stage stages no deferred state).
func (m *Classify) Flush() {}

// Sketch is the log/stats stage: it folds the staged burst into the
// traffic sketches, per-rule byte counters, the promotion queue, and the
// stats block via Filter.ApplyBurst.
type Sketch struct {
	F *filter.Filter
}

// Name implements Module.
func (m *Sketch) Name() string { return "sketch" }

// TelemetryStage maps the stage's sampled time onto StageCharge.
func (m *Sketch) TelemetryStage() telemetry.Stage { return telemetry.StageCharge }

// ProcessBurst implements Module.
func (m *Sketch) ProcessBurst(ctx *BurstCtx) { m.F.ApplyBurst() }

// Flush implements Module: ApplyBurst is idempotent per staged burst.
func (m *Sketch) Flush() { m.F.ApplyBurst() }

// Charge is the meter stage: it charges the staged burst's accumulated
// cost vector to the enclave meter via Filter.ChargeBurst. It must run
// after Sketch (the sketch-row cost terms are added there).
type Charge struct {
	F *filter.Filter
}

// Name implements Module.
func (m *Charge) Name() string { return "charge" }

// TelemetryStage maps the stage's sampled time onto StageCharge.
func (m *Charge) TelemetryStage() telemetry.Stage { return telemetry.StageCharge }

// ProcessBurst implements Module.
func (m *Charge) ProcessBurst(ctx *BurstCtx) { m.F.ChargeBurst() }

// Flush implements Module: ChargeBurst is idempotent per staged burst.
func (m *Charge) Flush() { m.F.ChargeBurst() }

// Fused is the pre-refactor fixed loop as a single module: one
// Filter.ProcessBatch call doing classify + apply + charge, with the
// filter's own internal stage sampling. It is the differential suite's
// oracle and the Legacy benchmark baseline. Fused ignores the drop mask
// (the fixed loop predates it); chains using masks must use the split
// stages.
type Fused struct {
	F *filter.Filter
}

// Name implements Module.
func (m *Fused) Name() string { return "fused" }

// ProcessBurst implements Module.
func (m *Fused) ProcessBurst(ctx *BurstCtx) {
	ctx.Verdicts = m.F.ProcessBatch(ctx.Pkts, ctx.Verdicts)
}

// Flush implements Module (ProcessBatch leaves nothing staged).
func (m *Fused) Flush() {}
