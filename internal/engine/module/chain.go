package module

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/innetworkfiltering/vif/internal/faults"
	"github.com/innetworkfiltering/vif/internal/telemetry"
)

// Stager is optionally implemented by modules whose sampled wall time
// should additionally land in one of the fixed telemetry stage
// histograms (the verdict stage maps to StageVerdict, the sketch and
// charge stages to StageCharge). The chain resolves it once at
// construction; durations of modules sharing a stage are summed so a
// sampled burst still contributes exactly one observation per stage —
// the same shape the fused pre-refactor path recorded.
type Stager interface {
	TelemetryStage() telemetry.Stage
}

// stageStat is one module's sampled cost accumulator. The owning worker
// adds on sampled bursts; metrics readers load concurrently.
type stageStat struct {
	ns   atomic.Uint64
	pkts atomic.Uint64
}

// StageCost is one module's accumulated sampled cost, for metrics.
type StageCost struct {
	// Module is the module's Name.
	Module string
	// Packets is how many packets sampled bursts carried through the
	// module; Ns is the wall time those bursts spent in it. Ns/Packets is
	// the per-stage ns/pkt figure ShardMetrics and /metrics expose.
	Packets uint64
	Ns      uint64
}

// Chain is one (namespace, shard) cell's ordered module pipeline. Built
// immutably and swapped with the copy-on-write namespace views; Run is
// worker-only, StageCosts is safe from any goroutine.
type Chain struct {
	mods   []Module
	names  []string
	stages []telemetry.Stage // parallel to mods; -1 = no fixed stage
	stats  []stageStat
	faults *faults.Injector
}

// NewChain builds a chain over mods in order. A non-nil injector arms
// the module_fault chaos point: the chain consults it before every
// module invocation and panics in the worker when it fires, exercising
// the supervisor's faulted-burst accounting.
func NewChain(inj *faults.Injector, mods ...Module) *Chain {
	c := &Chain{
		mods:   mods,
		names:  make([]string, len(mods)),
		stages: make([]telemetry.Stage, len(mods)),
		stats:  make([]stageStat, len(mods)),
		faults: inj,
	}
	for i, m := range mods {
		c.names[i] = m.Name()
		c.stages[i] = -1
		if s, ok := m.(Stager); ok {
			c.stages[i] = s.TelemetryStage()
		}
	}
	return c
}

// Modules returns the module names in chain order.
func (c *Chain) Modules() []string {
	return append([]string(nil), c.names...)
}

// Run executes the chain over one burst. On sampled bursts each module's
// wall time is accumulated into its stage stats and the fixed-stage
// histograms; every other burst pays only the interface dispatches.
func (c *Chain) Run(ctx *BurstCtx, rec *telemetry.StageRecorder, sampled bool) {
	if sampled {
		c.runTimed(ctx, rec)
		return
	}
	for i, m := range c.mods {
		if c.faults != nil && c.faults.Should(faults.ModuleFault) {
			panic(fmt.Sprintf("faults: injected module fault before %q (shard %d ns %d)", c.names[i], ctx.Shard, ctx.NS))
		}
		m.ProcessBurst(ctx)
	}
}

func (c *Chain) runTimed(ctx *BurstCtx, rec *telemetry.StageRecorder) {
	var stageNs [telemetry.NumStages]time.Duration
	var stageHit [telemetry.NumStages]bool
	n := uint64(ctx.Len())
	for i, m := range c.mods {
		if c.faults != nil && c.faults.Should(faults.ModuleFault) {
			panic(fmt.Sprintf("faults: injected module fault before %q (shard %d ns %d)", c.names[i], ctx.Shard, ctx.NS))
		}
		start := time.Now()
		m.ProcessBurst(ctx)
		d := time.Since(start)
		c.stats[i].ns.Add(uint64(d))
		c.stats[i].pkts.Add(n)
		if s := c.stages[i]; s >= 0 {
			stageNs[s] += d
			stageHit[s] = true
		}
	}
	for s := range stageNs {
		if stageHit[s] {
			rec.Record(telemetry.Stage(s), stageNs[s])
		}
	}
}

// Flush flushes every module in chain order (idempotent, worker-only).
func (c *Chain) Flush() {
	for _, m := range c.mods {
		m.Flush()
	}
}

// StageCosts snapshots the per-module sampled cost accumulators, in
// chain order. Safe from any goroutine.
func (c *Chain) StageCosts() []StageCost {
	out := make([]StageCost, len(c.mods))
	for i := range c.mods {
		out[i] = StageCost{
			Module:  c.names[i],
			Packets: c.stats[i].pkts.Load(),
			Ns:      c.stats[i].ns.Load(),
		}
	}
	return out
}
