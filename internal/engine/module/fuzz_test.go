package module_test

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/engine/module"
	"github.com/innetworkfiltering/vif/internal/packet"
)

// FuzzModuleChainEquivalence: for an arbitrary burst and an arbitrary
// placement of verdict-neutral modules (taps, uncapped admission, nops)
// among the core stages, the chain's verdicts must be exactly the
// filter-only chain's verdicts — neutrality is a contract, not a
// convention. Both chains run identically-constructed filters, so any
// divergence is a module touching state it must not.
func FuzzModuleChainEquivalence(f *testing.F) {
	f.Add([]byte{}, int64(1))
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b}, int64(7))
	seed := make([]byte, 11*67)
	for i := range seed {
		seed[i] = byte(i * 31)
	}
	f.Add(seed, int64(42))

	f.Fuzz(func(t *testing.T, data []byte, order int64) {
		pkts := fuzzBurst(data)

		// Reference: the core stages alone.
		fRef := confFilter(t, 16)
		ref := module.NewChain(nil,
			&module.Classify{F: fRef}, &module.Sketch{F: fRef}, &module.Charge{F: fRef})

		// Candidate: the same core order with verdict-neutral modules
		// spliced in at rng-chosen positions.
		fCand := confFilter(t, 16)
		core := []module.Module{
			&module.Classify{F: fCand}, &module.Sketch{F: fCand}, &module.Charge{F: fCand}}
		neutral := []module.Module{
			module.NewCapture(2, 32),
			&module.Admission{Take: func(n int) int { return n }},
			nop{},
		}
		rng := rand.New(rand.NewSource(order))
		rng.Shuffle(len(neutral), func(i, j int) { neutral[i], neutral[j] = neutral[j], neutral[i] })
		mods := make([]module.Module, 0, len(core)+len(neutral))
		mods = append(mods, core...)
		for _, m := range neutral {
			at := rng.Intn(len(mods) + 1)
			mods = append(mods[:at], append([]module.Module{m}, mods[at:]...)...)
		}
		cand := module.NewChain(nil, mods...)

		var refCtx, candCtx module.BurstCtx
		refCtx.Reset(0, 1, pkts, nil)
		candCtx.Reset(0, 1, append([]packet.Descriptor{}, pkts...), nil)
		ref.Run(&refCtx, nil, false)
		cand.Run(&candCtx, nil, false)

		if len(refCtx.Verdicts) != len(candCtx.Verdicts) {
			t.Fatalf("verdict count diverges: %d vs %d (order %d)",
				len(refCtx.Verdicts), len(candCtx.Verdicts), order)
		}
		for i := range refCtx.Verdicts {
			if refCtx.Verdicts[i] != candCtx.Verdicts[i] {
				t.Fatalf("packet %d: verdict diverges: %v vs %v (order %d, tuple %s)",
					i, refCtx.Verdicts[i], candCtx.Verdicts[i], order, pkts[i].Tuple)
			}
		}
		if candCtx.MaskedDrops() != refCtx.MaskedDrops() {
			t.Fatalf("neutral modules changed the drop mask: %d vs %d",
				candCtx.MaskedDrops(), refCtx.MaskedDrops())
		}
	})
}

// fuzzBurst decodes up to 256 descriptors, 11 bytes each, biasing half
// the flows toward the conformance filter's victim prefix so both
// verdict classes appear.
func fuzzBurst(data []byte) []packet.Descriptor {
	const rec = 11
	n := len(data) / rec
	if n > 256 {
		n = 256
	}
	victim := packet.MustParseIP("192.0.2.0")
	pkts := make([]packet.Descriptor, n)
	for i := 0; i < n; i++ {
		b := data[i*rec : (i+1)*rec]
		tup := packet.FiveTuple{
			SrcIP:   binary.LittleEndian.Uint32(b[0:4]),
			DstIP:   binary.LittleEndian.Uint32(b[4:8]),
			SrcPort: binary.LittleEndian.Uint16(b[8:10]),
			DstPort: 53,
			Proto:   packet.ProtoUDP,
		}
		if b[10]%2 == 0 {
			tup.DstIP = victim | uint32(b[10])
		}
		if b[10]%3 == 0 {
			tup.Proto = packet.ProtoTCP
			tup.DstPort = 443
		}
		pkts[i] = packet.Descriptor{Tuple: tup, Size: uint16(64 + int(b[10])*4), NS: 1}
	}
	return pkts
}
