package module

import (
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
)

// Module is one composable burst-pipeline stage. Implementations follow
// the package contract (see the package comment): single-goroutine
// ProcessBurst/Flush, no retained BurstCtx references, monotone drop
// mask, idempotent Flush.
type Module interface {
	// Name identifies the stage in metrics (vif_shard_stage_ns_per_packet)
	// and chain dumps. Stable and non-empty.
	Name() string
	// ProcessBurst transforms the burst in place: decide verdicts, mask
	// drops, observe packets, update module state.
	ProcessBurst(ctx *BurstCtx)
	// Flush forces out any per-burst state the module staged (the sketch
	// and charge stages re-issue their idempotent halves; stateless
	// modules no-op). Must be idempotent.
	Flush()
}

// BurstCtx is the shared per-burst scratch arena a chain's modules
// operate on. One instance is owned by each shard worker and reused for
// every burst, so modules must not retain references into its slices.
// Pkts is the namespace run dequeued from the ring; Verdicts is parallel
// to Pkts once a verdict stage ran (empty before); the drop mask marks
// packets that must not be delivered regardless of verdict.
type BurstCtx struct {
	// Shard and NS identify the (shard, namespace) cell the burst belongs
	// to.
	Shard int
	NS    int
	// Pkts is the burst. Modules may read descriptors freely but must not
	// reorder, grow, or shrink the slice — the engine's verdict fan-out
	// and trace completion index into it positionally.
	Pkts []packet.Descriptor
	// Verdicts is the per-packet decision, parallel to Pkts after the
	// verdict stage ran (len 0 before). A verdict stage must leave
	// exactly len(Pkts) verdicts. Chains hand the slice back to the
	// worker's pool, so modules growing it must do so via append/resize
	// on the field itself.
	Verdicts []filter.Verdict

	// drop is the mask of force-dropped packets, one bit per packet.
	// Bits are set via MarkDrop and never cleared within a burst.
	drop   []uint64
	masked int

	// pktScratch/vScratch are the compaction arena the verdict stage uses
	// when earlier modules masked packets (the masked ones skip
	// classification entirely).
	pktScratch []packet.Descriptor
	vScratch   []filter.Verdict
}

// Reset re-arms the arena for a new burst, clearing the mask and the
// verdicts while keeping the backing arrays.
func (c *BurstCtx) Reset(shard, ns int, pkts []packet.Descriptor, verdicts []filter.Verdict) {
	c.Shard, c.NS = shard, ns
	c.Pkts = pkts
	c.Verdicts = verdicts[:0]
	words := (len(pkts) + 63) / 64
	if cap(c.drop) < words {
		c.drop = make([]uint64, words)
	} else {
		c.drop = c.drop[:words]
		for i := range c.drop {
			c.drop[i] = 0
		}
	}
	c.masked = 0
}

// Len is the burst length.
func (c *BurstCtx) Len() int { return len(c.Pkts) }

// MarkDrop sets packet i's drop bit. Idempotent; bits are never cleared.
func (c *BurstCtx) MarkDrop(i int) {
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	if c.drop[w]&b == 0 {
		c.drop[w] |= b
		c.masked++
	}
}

// Dropped reports whether packet i's drop bit is set.
func (c *BurstCtx) Dropped(i int) bool {
	return c.drop[i>>6]&(uint64(1)<<(uint(i)&63)) != 0
}

// MaskedDrops is the number of distinct packets marked dropped.
func (c *BurstCtx) MaskedDrops() int { return c.masked }
