package engine

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/innetworkfiltering/vif/internal/telemetry"
)

// AdmissionConfig enables weighted per-victim admission control at the
// injection paths. With it set, every attached namespace carries a token
// bucket consulted once per namespace run (InjectBatch) or per packet
// (scalar Inject) BEFORE routing: a tenant whose offered load exceeds its
// admitted rate is throttled at ingress — its excess never reaches the
// shared rings, so it degrades itself, not its neighbors. Nil disables
// admission entirely; the injection paths then pay one nil check.
type AdmissionConfig struct {
	// TotalPps is the engine-wide admitted-packet budget in packets/s,
	// divided across attached namespaces by weight — the deficit-round-
	// robin shares recomputed at every attach/detach. 0 means no shared
	// budget: only namespaces with an explicit NamespaceConfig.AdmitPps
	// cap are throttled (the usual overload posture: quiet victims run
	// uncapped, the attacked victim's flood is clipped).
	TotalPps float64
	// Burst is each bucket's capacity in packets — the largest burst a
	// namespace can land at once after idling. 0 defaults to
	// DefaultRingSize.
	Burst float64
	// Now overrides the bucket clock (nanoseconds); nil uses the wall
	// clock. Tests use it to make refill deterministic.
	Now func() int64
}

// admission is one namespace's ingress gate: a token bucket plus the
// per-victim SLO counters. It survives routing swaps (the successor
// namespace object carries the same pointer) and full reconfigures fold
// its counters forward, exactly like the verdict cells.
type admission struct {
	// weight and explicitPps are the attachment's configured shares,
	// written only under nsMu (rebalanceAdmission is the other reader).
	weight      int
	explicitPps float64

	// ratePps is the current refill rate (float64 bits; 0 = uncapped),
	// recomputed by rebalanceAdmission and read lock-free by take.
	ratePps atomic.Uint64

	burst float64
	now   func() int64

	// Bucket state, under mu: taken once per namespace run, so the cost
	// amortizes over the run like every other per-burst cost.
	mu     sync.Mutex
	tokens float64
	last   int64

	// SLO counters. admitted counts packets past the gate (they may still
	// hit ring backpressure); throttled counts packets the gate refused.
	admitted  atomic.Uint64
	throttled atomic.Uint64
	// throttling edge-detects an episode for the journal, like bpActive.
	throttling atomic.Bool
}

func newAdmission(cfg *AdmissionConfig, weight int, explicitPps float64) *admission {
	if cfg == nil {
		return nil
	}
	if weight <= 0 {
		weight = 1
	}
	burst := cfg.Burst
	if burst <= 0 {
		burst = DefaultRingSize
	}
	now := cfg.Now
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	a := &admission{
		weight:      weight,
		explicitPps: explicitPps,
		burst:       burst,
		now:         now,
		tokens:      burst,
	}
	a.last = now()
	return a
}

// rate returns the current cap in packets/s (0 = uncapped).
func (a *admission) rate() float64 {
	return math.Float64frombits(a.ratePps.Load())
}

// take admits up to n packets, refilling the bucket from elapsed time
// first, and returns how many passed. Uncapped namespaces pay one atomic
// load and one atomic add — no lock, no clock read.
func (a *admission) take(n int) int {
	rate := a.rate()
	if rate <= 0 {
		a.admitted.Add(uint64(n))
		return n
	}
	a.mu.Lock()
	now := a.now()
	if el := now - a.last; el > 0 {
		a.tokens += float64(el) * rate / 1e9
		if a.tokens > a.burst {
			a.tokens = a.burst
		}
	}
	a.last = now
	k := n
	if a.tokens < float64(n) {
		k = int(a.tokens)
		if k < 0 {
			k = 0
		}
	}
	a.tokens -= float64(k)
	a.mu.Unlock()
	if k > 0 {
		a.admitted.Add(uint64(k))
	}
	return k
}

// noteThrottle journals the onset of an admission episode (edge-
// triggered); take clearing the gate resets the edge in noteAdmitted.
func (e *Engine) noteThrottle(nsID int, a *admission, refused int) {
	a.throttled.Add(uint64(refused))
	if a.throttling.CompareAndSwap(false, true) {
		e.emit(telemetry.EvAdmissionThrottle, nsID, -1, fmt.Sprintf(
			"rate_pps=%.0f refused=%d", a.rate(), refused))
	}
}

// noteAdmitted closes an episode once a run passes the gate whole.
func (a *admission) noteAdmitted() {
	if a.throttling.Load() {
		a.throttling.Store(false)
	}
}

// rebalanceAdmission recomputes every namespace's admitted rate: an
// explicit per-namespace cap wins; otherwise the engine budget is split
// by weight (the DRR shares); with no budget the namespace is uncapped.
// Called under nsMu at attach/detach (the only weight readers/writers).
func (e *Engine) rebalanceAdmission() {
	cfg := e.cfg.Admission
	if cfg == nil {
		return
	}
	nss := *e.nss.Load()
	totalW := 0
	for _, ns := range nss {
		if ns != nil && ns.adm != nil && ns.adm.explicitPps <= 0 {
			totalW += ns.adm.weight
		}
	}
	for _, ns := range nss {
		if ns == nil || ns.adm == nil {
			continue
		}
		var rate float64
		switch {
		case ns.adm.explicitPps > 0:
			rate = ns.adm.explicitPps
		case cfg.TotalPps > 0 && totalW > 0:
			rate = cfg.TotalPps * float64(ns.adm.weight) / float64(totalW)
		}
		ns.adm.ratePps.Store(math.Float64bits(rate))
	}
}
