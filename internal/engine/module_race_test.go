package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/innetworkfiltering/vif/internal/engine/module"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/telemetry"
)

// These tests are the module pipeline's -race coverage (CI runs this
// package with -race -count=2): chains being swapped by the control
// plane while workers run in-flight bursts through them, and module
// panics crossing the worker supervisor.

// TestModuleChainSwapRace hammers the two chain-replacement paths —
// in-place rule deltas (chains persist) and full namespace reconfigures
// (chains rebuilt from NamespaceConfig.Modules) — under live traffic.
// A worker must always run one consistent (filter, chain) pair: the race
// detector sees any torn swap, and the drain invariant catches any lost
// burst.
func TestModuleChainSwapRace(t *testing.T) {
	set := nsTestRules(t, 32, "192.0.2.0/24", 71)
	tel := telemetry.New(telemetry.Config{Shards: 2, TraceEvery: -1, JournalSize: 256})
	eng, err := New(Config{Shards: 2, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}

	// Every generation's taps, so the final subset check covers chains
	// that were swapped out mid-run too.
	var tapMu sync.Mutex
	var taps []*module.Capture
	modules := func(shard int) []module.Module {
		tap := module.NewCapture(7, 64)
		tapMu.Lock()
		taps = append(taps, tap)
		tapMu.Unlock()
		return []module.Module{tap}
	}

	ns, err := eng.AttachNamespace(NamespaceConfig{
		Filters: testFilters(t, set, 2), Modules: modules,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	descs := nsTestDescriptors(t, set, 4096, "192.0.2.9", uint16(ns), 72)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i = (i + 256) % 4096 {
			eng.InjectBatch(descs[i : i+256])
		}
	}()

	add := renumber(nsTestRules(t, 4, "192.0.2.0/24", 73).Rules, 9000)
	for round := 0; round < 24; round++ {
		if round%2 == 0 {
			// In-place deltas: rule views rotate twice under the live
			// chain (add, then remove — the following full reconfigure
			// resets to the base set either way).
			d := filter.Delta{Adds: add}
			if err := eng.ReconfigureNamespaceDelta(ns, []filter.Delta{d, d}, nil, nil); err != nil {
				t.Errorf("round %d delta add: %v", round, err)
			}
			d = filter.Delta{Removes: add}
			if err := eng.ReconfigureNamespaceDelta(ns, []filter.Delta{d, d}, nil, nil); err != nil {
				t.Errorf("round %d delta remove: %v", round, err)
			}
		} else {
			// Full reconfigure: fresh filters, fresh chains, COW swap
			// racing the workers' in-flight bursts.
			err := eng.ReconfigureNamespace(ns, NamespaceConfig{
				Filters: testFilters(t, set, 2), Modules: modules,
			})
			if err != nil {
				t.Errorf("round %d reconfigure: %v", round, err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	eng.WaitDrained()
	eng.Stop()

	m := eng.Metrics()
	if m.Processed != m.Accepted {
		t.Fatalf("lost bursts across swaps: processed %d != accepted %d", m.Processed, m.Accepted)
	}
	if got := m.Allowed + m.Dropped + m.Faulted + m.Orphaned; got != m.Processed {
		t.Fatalf("verdict classes %d != processed %d", got, m.Processed)
	}
	// Sampled captures across every chain generation are a subset of
	// what the engine processed.
	var captured uint64
	tapMu.Lock()
	for _, tap := range taps {
		captured += tap.Captured()
	}
	tapMu.Unlock()
	if captured == 0 || captured > m.Processed {
		t.Fatalf("capture taps sampled %d of %d processed", captured, m.Processed)
	}
}

// TestModulePanicRecoveryRace: a buggy configured module panicking
// mid-chain under concurrent producers must behave exactly like any
// worker panic — supervisor restart, burst folded into faulted, no lost
// packets — with the race detector watching the restart path.
func TestModulePanicRecoveryRace(t *testing.T) {
	set := testRules(t, 32)
	tel := telemetry.New(telemetry.Config{Shards: 2, TraceEvery: -1, JournalSize: 256})
	eng, err := New(Config{
		Filters:   testFilters(t, set, 2),
		Telemetry: tel,
		Modules: func(shard int) []module.Module {
			return []module.Module{&flakyModule{every: 50}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	descs := testDescriptors(t, set, 8192)
	var accepted atomic.Uint64
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for lo := off * 4096; lo < off*4096+4096; lo += 256 {
				accepted.Add(uint64(eng.InjectBatch(descs[lo : lo+256])))
			}
		}(p)
	}
	wg.Wait()
	eng.WaitDrained()
	eng.Stop()

	m := eng.Metrics()
	if m.Restarts == 0 || m.Faulted == 0 {
		t.Fatalf("module panics unaccounted: restarts=%d faulted=%d", m.Restarts, m.Faulted)
	}
	if m.Processed != m.Accepted || m.Accepted != accepted.Load() {
		t.Fatalf("drain invariant broken: accepted %d (produced %d), processed %d",
			m.Accepted, accepted.Load(), m.Processed)
	}
	if got := m.Allowed + m.Dropped + m.Faulted + m.Orphaned; got != m.Processed {
		t.Fatalf("verdict classes %d != processed %d", got, m.Processed)
	}
	if !journalHas(tel, telemetry.EvWorkerRestart) {
		t.Fatal("no worker_restart journaled for module panics")
	}
}

// flakyModule panics on every Nth burst it sees (worker-owned counter).
type flakyModule struct {
	every int
	seen  int
}

func (f *flakyModule) Name() string { return "flaky" }
func (f *flakyModule) ProcessBurst(ctx *module.BurstCtx) {
	f.seen++
	if f.seen%f.every == 0 {
		panic("flaky module blew up mid-chain")
	}
}
func (f *flakyModule) Flush() {}
