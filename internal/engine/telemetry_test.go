package engine

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/innetworkfiltering/vif/internal/telemetry"
)

// hasEvent reports whether the journal holds an event of the given type,
// optionally scoped to one namespace (ns >= 0).
func hasEvent(evs []telemetry.Event, typ telemetry.EventType, ns int) bool {
	for _, e := range evs {
		if e.Type == typ && (ns < 0 || e.NS == ns) {
			return true
		}
	}
	return false
}

// TestEngineTelemetryEndToEnd is the tentpole acceptance test: an engine
// with the observability plane attached processes traffic, and the stage
// histograms, journal, sampled traces, and /metrics exposition all carry
// coherent data about what actually happened.
func TestEngineTelemetryEndToEnd(t *testing.T) {
	set := testRules(t, 64)
	tel := telemetry.New(telemetry.Config{
		Shards: 2, SampleEvery: 1, TraceEvery: 1, JournalSize: 64, TraceBuf: 64,
	})
	eng, err := New(Config{Filters: testFilters(t, set, 2), Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Telemetry() != tel {
		t.Fatal("Telemetry() accessor lost the registry")
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	descs := testDescriptors(t, set, 4096)
	// Many small batches: every one is trace-sampled (TraceEvery=1), so
	// plenty of inject→verdict journeys complete.
	for lo := 0; lo < len(descs); lo += 256 {
		hi := lo + 256
		if hi > len(descs) {
			hi = len(descs)
		}
		eng.InjectBatch(descs[lo:hi])
		eng.WaitDrained() // force idle gaps so StageDequeueWait observes real waits
	}
	if _, err := eng.RotateEpoch(0); err != nil {
		t.Fatal(err)
	}
	eng.Stop()

	// Stage histograms: every stage of every shard that processed traffic
	// must have sampled observations (SampleEvery=1 samples every burst).
	snaps := tel.StageSnapshot()
	m := eng.Metrics()
	for shard, snap := range snaps {
		if m.Shards[shard].Processed == 0 {
			continue
		}
		for st := 0; st < telemetry.NumStages; st++ {
			if snap[st].Count == 0 {
				t.Errorf("shard %d stage %s: no observations despite %d processed",
					shard, telemetry.Stage(st), m.Shards[shard].Processed)
			}
		}
	}

	// Journal: lifecycle and epoch-seal events with correct scoping.
	evs := tel.Journal().Events()
	if !hasEvent(evs, telemetry.EvEngineStart, -1) {
		t.Error("journal missing engine_start")
	}
	if !hasEvent(evs, telemetry.EvEpochSeal, 0) {
		t.Error("journal missing epoch_seal for namespace 0")
	}
	if !hasEvent(evs, telemetry.EvEngineStop, -1) {
		t.Error("journal missing engine_stop")
	}

	// Traces: complete inject→verdict journeys with ordered timestamps.
	traces := tel.Tracer().Traces()
	if len(traces) == 0 {
		t.Fatal("no completed traces despite TraceEvery=1")
	}
	for _, tr := range traces {
		if tr.Flow == "" {
			t.Errorf("trace missing flow: %+v", tr)
		}
		if tr.NS != 0 {
			t.Errorf("trace NS = %d, want 0", tr.NS)
		}
		if tr.Shard < 0 || tr.Shard >= 2 {
			t.Errorf("trace shard = %d out of range", tr.Shard)
		}
		if tr.Verdict != "allow" && tr.Verdict != "drop" {
			t.Errorf("trace verdict = %q", tr.Verdict)
		}
		if tr.Rule == "" {
			t.Errorf("trace missing rule origin: %+v", tr)
		}
		ts := []int64{tr.InjectNS, tr.RouteNS, tr.EnqueueNS, tr.DequeueNS, tr.VerdictNS}
		for i := 1; i < len(ts); i++ {
			if ts[i] < ts[i-1] {
				t.Errorf("trace timestamps not nondecreasing: %+v", tr)
				break
			}
		}
	}
	started, completed := tel.Tracer().Counts()
	if completed == 0 || completed > started {
		t.Errorf("trace counts started=%d completed=%d", started, completed)
	}

	// Exposition: the scrape carries the engine counters, per-shard and
	// per-namespace families, and the stage histograms.
	srv, err := telemetry.NewServer(tel, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"vif_engine_processed_total",
		`vif_shard_processed_total{shard="0"}`,
		`vif_shard_processed_total{shard="1"}`,
		`vif_namespace_processed_total{ns="0"}`,
		`vif_namespace_epc_share_bytes{ns="0"}`,
		"# TYPE vif_stage_latency_ns histogram",
		`vif_stage_latency_ns_bucket{shard="0",stage="verdict"`,
		`vif_stage_latency_ns_count{shard="1",stage="charge"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestEngineRejectsMismatchedTelemetry(t *testing.T) {
	set := testRules(t, 8)
	tel := telemetry.New(telemetry.Config{Shards: 3})
	if _, err := New(Config{Filters: testFilters(t, set, 2), Telemetry: tel}); err == nil {
		t.Fatal("engine accepted telemetry sized for the wrong shard count")
	}
}

func TestEngineAttachDetachJournaled(t *testing.T) {
	tel := telemetry.New(telemetry.Config{Shards: 2, TraceEvery: -1})
	eng, err := New(Config{Shards: 2, EPCBytes: 1 << 26, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	set := nsTestRules(t, 16, "192.0.2.0/24", 1)
	ns, _ := attachVictim(t, eng, set)
	if _, err := eng.DetachNamespace(ns); err != nil {
		t.Fatal(err)
	}
	eng.Stop()
	evs := tel.Journal().Events()
	if !hasEvent(evs, telemetry.EvAttach, ns) {
		t.Error("journal missing ns_attach")
	}
	if !hasEvent(evs, telemetry.EvDetach, ns) {
		t.Error("journal missing ns_detach")
	}
	if !hasEvent(evs, telemetry.EvEPCRebalance, -1) {
		t.Error("journal missing epc_rebalance")
	}
}

func TestEngineBackpressureJournaled(t *testing.T) {
	set := testRules(t, 8)
	tel := telemetry.New(telemetry.Config{Shards: 1, TraceEvery: -1})
	eng, err := New(Config{Filters: testFilters(t, set, 1), RingSize: 64, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	// Flood far past the tiny ring so some enqueues must fail.
	descs := testDescriptors(t, set, 8192)
	for i := 0; i < 64; i++ {
		eng.InjectBatch(descs)
	}
	eng.WaitDrained()
	if eng.Metrics().Backpressure == 0 {
		t.Skip("flood never overflowed the ring on this machine")
	}
	if !hasEvent(tel.Journal().Events(), telemetry.EvBackpressureOn, -1) {
		t.Error("journal missing backpressure_on despite backpressure drops")
	}
	// The worker clears the episode when it finds the ring drained.
	deadline := time.Now().Add(2 * time.Second)
	for !hasEvent(tel.Journal().Events(), telemetry.EvBackpressureOff, -1) {
		if time.Now().After(deadline) {
			t.Error("journal missing backpressure_off after drain")
			break
		}
		time.Sleep(time.Millisecond)
	}
	eng.Stop()
}

// TestEngineTelemetryOffIsInert pins the disabled path: no telemetry, no
// events, no traces, no recorder writes — and everything still works.
func TestEngineTelemetryOffIsInert(t *testing.T) {
	set := testRules(t, 16)
	eng, err := New(Config{Filters: testFilters(t, set, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Telemetry() != nil {
		t.Fatal("engine invented a telemetry registry")
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	eng.InjectBatch(testDescriptors(t, set, 1024))
	eng.WaitDrained()
	eng.Stop()
	m := eng.Metrics()
	if m.Processed == 0 {
		t.Fatal("engine without telemetry processed nothing")
	}
}
