package engine

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/innetworkfiltering/vif/internal/bypass"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// nsTestRules builds k deterministic drop rules over the given victim
// prefix plus default-allow, so per-victim verdict counts are
// reproducible.
func nsTestRules(t testing.TB, k int, dstPrefix string, seed int64) *rules.Set {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rs := make([]rules.Rule, k)
	dst := rules.MustParsePrefix(dstPrefix)
	for i := range rs {
		rs[i] = rules.Rule{
			Src:   rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst:   dst,
			Proto: packet.ProtoUDP,
		}
	}
	set, err := rules.NewSet(rs, true)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// nsTestDescriptors mixes flows hitting the set's drop rules with flows
// that miss, all toward the victim inside dstPrefix, stamped with ns.
func nsTestDescriptors(t testing.TB, set *rules.Set, n int, victimIP string, ns uint16, seed int64) []packet.Descriptor {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	victim := packet.MustParseIP(victimIP)
	out := make([]packet.Descriptor, n)
	for i := range out {
		var tup packet.FiveTuple
		if i%2 == 0 {
			r := set.Rules[rng.Intn(set.Len())]
			tup = packet.FiveTuple{
				SrcIP: r.Src.Addr | (rng.Uint32() &^ r.Src.Mask()),
				DstIP: victim, SrcPort: uint16(rng.Intn(60000) + 1),
				DstPort: 53, Proto: packet.ProtoUDP,
			}
		} else {
			tup = packet.FiveTuple{
				SrcIP: rng.Uint32(), DstIP: victim,
				SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 443,
				Proto: packet.ProtoTCP,
			}
		}
		out[i] = packet.Descriptor{Tuple: tup, Size: 64, Ref: packet.NoRef, NS: ns}
	}
	return out
}

// attachVictim builds a fleet for one victim's rules and attaches it.
func attachVictim(t testing.TB, eng *Engine, set *rules.Set) (int, []*filter.Filter) {
	t.Helper()
	fs := testFilters(t, set, eng.Shards())
	ns, err := eng.AttachNamespace(NamespaceConfig{Filters: fs})
	if err != nil {
		t.Fatal(err)
	}
	return ns, fs
}

// TestEngineTwoNamespacesDisjointVerdicts is the tentpole acceptance
// check at the engine layer: two victims with disjoint rule sets filter
// interleaved traffic through one shard fleet, and each namespace's
// verdict counters match its own serial reference exactly — no
// cross-victim leakage in either direction.
func TestEngineTwoNamespacesDisjointVerdicts(t *testing.T) {
	setA := nsTestRules(t, 32, "192.0.2.0/24", 1)
	setB := nsTestRules(t, 32, "198.51.100.0/24", 2)

	eng, err := New(Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	nsA, _ := attachVictim(t, eng, setA)
	nsB, _ := attachVictim(t, eng, setB)
	if nsA == nsB {
		t.Fatalf("namespace ids collide: %d", nsA)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	descsA := nsTestDescriptors(t, setA, 2048, "192.0.2.9", uint16(nsA), 3)
	descsB := nsTestDescriptors(t, setB, 2048, "198.51.100.9", uint16(nsB), 4)

	// Serial references: one filter per victim processes everything.
	refA := testFilters(t, setA, 1)[0]
	for _, d := range descsA {
		refA.Process(d)
	}
	refB := testFilters(t, setB, 1)[0]
	for _, d := range descsB {
		refB.Process(d)
	}

	// Interleave the two victims' streams through mixed bursts.
	mixed := make([]packet.Descriptor, 0, len(descsA)+len(descsB))
	for i := range descsA {
		mixed = append(mixed, descsA[i], descsB[i])
	}
	for off := 0; off < len(mixed); off += 256 {
		end := min(off+256, len(mixed))
		if n := eng.InjectBatch(mixed[off:end]); n != end-off {
			t.Fatalf("burst at %d: accepted %d of %d with roomy rings", off, n, end-off)
		}
	}
	eng.WaitDrained()
	eng.Stop()

	m := eng.Metrics()
	if len(m.Namespaces) != 2 {
		t.Fatalf("namespace metrics: %d entries", len(m.Namespaces))
	}
	byNS := map[int]NamespaceMetrics{}
	for _, nm := range m.Namespaces {
		byNS[nm.NS] = nm
	}
	sa, sb := refA.Stats(), refB.Stats()
	if got := byNS[nsA]; got.Allowed != sa.Allowed || got.Dropped != sa.Dropped {
		t.Fatalf("victim A allowed/dropped %d/%d, serial %d/%d", got.Allowed, got.Dropped, sa.Allowed, sa.Dropped)
	}
	if got := byNS[nsB]; got.Allowed != sb.Allowed || got.Dropped != sb.Dropped {
		t.Fatalf("victim B allowed/dropped %d/%d, serial %d/%d", got.Allowed, got.Dropped, sb.Allowed, sb.Dropped)
	}
	if got := byNS[nsA].Processed + byNS[nsB].Processed; got != m.Processed {
		t.Fatalf("namespace processed %d, engine %d", got, m.Processed)
	}
	if m.Orphaned != 0 || m.NSDrops != 0 {
		t.Fatalf("orphaned=%d nsdrops=%d on a clean run", m.Orphaned, m.NSDrops)
	}
}

// TestEnginePerNamespaceEpochsIndependent rotates one victim's epoch
// without touching the other's: sequence numbers advance independently
// and each namespace's merged outgoing logs across all its epochs total
// exactly its allowed count.
func TestEnginePerNamespaceEpochsIndependent(t *testing.T) {
	setA := nsTestRules(t, 16, "192.0.2.0/24", 5)
	setB := nsTestRules(t, 16, "198.51.100.0/24", 6)
	eng, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	nsA, fsA := attachVictim(t, eng, setA)
	nsB, fsB := attachVictim(t, eng, setB)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	descsA := nsTestDescriptors(t, setA, 1200, "192.0.2.9", uint16(nsA), 7)
	descsB := nsTestDescriptors(t, setB, 1200, "198.51.100.9", uint16(nsB), 8)

	inject := func(ds []packet.Descriptor) {
		for _, d := range ds {
			for !eng.Inject(d) {
			}
		}
	}

	inject(descsA[:600])
	inject(descsB)
	eng.WaitDrained()

	// Rotate A only: B's window must stay open.
	logsA1, err := eng.RotateEpoch(nsA)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Epoch(nsA); got != 1 {
		t.Fatalf("A epoch %d after one rotation", got)
	}
	if got := eng.Epoch(nsB); got != 0 {
		t.Fatalf("B epoch %d, never rotated", got)
	}
	for _, l := range logsA1 {
		if l.Namespace != nsA || l.Seq != 1 {
			t.Fatalf("log namespace/seq %d/%d", l.Namespace, l.Seq)
		}
	}

	inject(descsA[600:])
	eng.WaitDrained()
	logsA2, err := eng.RotateEpoch(nsA)
	if err != nil {
		t.Fatal(err)
	}
	logsB1, err := eng.RotateEpoch(nsB)
	if err != nil {
		t.Fatal(err)
	}
	eng.Stop()

	merge := func(fs []*filter.Filter, epochs ...[]EpochLog) uint64 {
		keys := make(map[uint64][32]byte)
		for _, f := range fs {
			keys[f.Enclave().ID()] = f.Enclave().MACKey()
		}
		var total uint64
		for _, logs := range epochs {
			snaps := make([]*filter.SignedSnapshot, 0, len(logs))
			for _, l := range logs {
				snaps = append(snaps, l.Outgoing)
			}
			merged, err := bypass.MergeSnapshots(keys, snaps)
			if err != nil {
				t.Fatal(err)
			}
			total += merged.Total()
		}
		return total
	}

	m := eng.Metrics()
	byNS := map[int]NamespaceMetrics{}
	for _, nm := range m.Namespaces {
		byNS[nm.NS] = nm
	}
	if got := merge(fsA, logsA1, logsA2); got != byNS[nsA].Allowed {
		t.Fatalf("A logs across epochs total %d, allowed %d", got, byNS[nsA].Allowed)
	}
	if got := merge(fsB, logsB1); got != byNS[nsB].Allowed {
		t.Fatalf("B logs total %d, allowed %d", got, byNS[nsB].Allowed)
	}
}

// TestEngineConcurrentRotationsTwoNamespaces drives live traffic into two
// namespaces while two goroutines rotate them concurrently — one victim's
// audit cadence must never block or corrupt another's. Run under -race in
// CI.
func TestEngineConcurrentRotationsTwoNamespaces(t *testing.T) {
	setA := nsTestRules(t, 16, "192.0.2.0/24", 9)
	setB := nsTestRules(t, 16, "198.51.100.0/24", 10)
	eng, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	nsA, _ := attachVictim(t, eng, setA)
	nsB, _ := attachVictim(t, eng, setB)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	descsA := nsTestDescriptors(t, setA, 2048, "192.0.2.9", uint16(nsA), 11)
	descsB := nsTestDescriptors(t, setB, 2048, "198.51.100.9", uint16(nsB), 12)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, stream := range [][]packet.Descriptor{descsA, descsB} {
		wg.Add(1)
		go func(ds []packet.Descriptor) {
			defer wg.Done()
			for i := 0; ; i = (i + 1) & 2047 {
				select {
				case <-stop:
					return
				default:
				}
				eng.Inject(ds[i])
			}
		}(stream)
	}

	const rotations = 20
	var rotWG sync.WaitGroup
	for _, id := range []int{nsA, nsB} {
		rotWG.Add(1)
		go func(id int) {
			defer rotWG.Done()
			for i := 0; i < rotations; i++ {
				logs, err := eng.RotateEpoch(id)
				if err != nil {
					t.Errorf("rotate ns %d: %v", id, err)
					return
				}
				for _, l := range logs {
					if l.Namespace != id || l.Seq != uint64(i+1) {
						t.Errorf("ns %d rotation %d: got namespace/seq %d/%d", id, i, l.Namespace, l.Seq)
						return
					}
				}
			}
		}(id)
	}
	rotWG.Wait()
	close(stop)
	wg.Wait()

	if got := eng.Epoch(nsA); got != rotations {
		t.Fatalf("A epoch %d, want %d", got, rotations)
	}
	if got := eng.Epoch(nsB); got != rotations {
		t.Fatalf("B epoch %d, want %d", got, rotations)
	}
}

// TestEngineInjectBatchRacesDetach hammers mixed-namespace InjectBatch
// from producers while the victim being injected detaches mid-stream: no
// panic, no misattribution — every injected descriptor is accounted as
// accepted, lb-dropped, ns-dropped, or ring backpressure; every accepted
// one is processed (drain invariant) and attributed to its namespace or
// to the shard orphan counter, never to the other victim. Run under
// -race in CI.
func TestEngineInjectBatchRacesDetach(t *testing.T) {
	setA := nsTestRules(t, 16, "192.0.2.0/24", 13)
	setB := nsTestRules(t, 16, "198.51.100.0/24", 14)
	eng, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	nsA, _ := attachVictim(t, eng, setA)
	nsB, fsB := attachVictim(t, eng, setB)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	descsA := nsTestDescriptors(t, setA, 1024, "192.0.2.9", uint16(nsA), 15)
	descsB := nsTestDescriptors(t, setB, 1024, "198.51.100.9", uint16(nsB), 16)
	mixed := make([]packet.Descriptor, 0, 2048)
	for i := range descsA {
		mixed = append(mixed, descsA[i], descsB[i])
	}

	const producers = 3
	var injected atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			off := (p * 512) % len(mixed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				end := min(off+256, len(mixed))
				win := mixed[off:end]
				off = end % len(mixed)
				injected.Add(uint64(len(win)))
				eng.InjectBatch(win)
			}
		}(p)
	}

	// Let traffic flow, then detach B under fire.
	for eng.Metrics().Processed < 10000 {
	}
	finalB, err := eng.DetachNamespace(nsB)
	if err != nil {
		t.Fatal(err)
	}
	// Post-detach, B's filters are engine-free: serial use must be safe
	// while producers keep offering B-stamped descriptors (now ns drops).
	for _, f := range fsB {
		f.ResetLogs()
	}
	for eng.Metrics().NSDrops == 0 {
	}
	close(stop)
	wg.Wait()
	eng.WaitDrained()
	eng.Stop()

	m := eng.Metrics()
	if m.Processed != m.Accepted {
		t.Fatalf("processed %d != accepted %d after drain", m.Processed, m.Accepted)
	}
	// Exact attribution: the survivor's live counters plus B's final
	// (quiesced) counters plus the orphaned in-ring remainder must cover
	// every processed packet — nothing misattributed, nothing lost.
	total := finalB.Processed
	for _, nm := range m.Namespaces {
		total += nm.Processed
	}
	if total+m.Orphaned != m.Processed {
		t.Fatalf("namespace processed %d + orphaned %d != processed %d", total, m.Orphaned, m.Processed)
	}
	if finalB.Processed == 0 {
		t.Fatal("victim B processed nothing before detach")
	}
	if m.NSDrops == 0 {
		t.Fatal("detach race produced no ns drops")
	}
	if m.Accepted+m.NSDrops+m.Backpressure+m.LBDrops != injected.Load() {
		t.Fatalf("accepted %d + nsdrops %d + backpressure %d + lbdrops %d != injected %d",
			m.Accepted, m.NSDrops, m.Backpressure, m.LBDrops, injected.Load())
	}
	// A survived untouched: its namespace still answers rotations.
	if _, err := eng.RotateEpoch(nsA); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("rotate after stop: %v", err)
	}
}

// TestEngineAttachDetachLifecycle covers the control-plane contract: id
// assignment and reuse, shard-count validation, detach of unknown ids,
// and rotation errors on detached namespaces.
func TestEngineAttachDetachLifecycle(t *testing.T) {
	set := nsTestRules(t, 8, "192.0.2.0/24", 17)
	eng, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AttachNamespace(NamespaceConfig{Filters: testFilters(t, set, 1)}); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("short filter slice: %v", err)
	}
	ns0, _ := attachVictim(t, eng, set)
	ns1, _ := attachVictim(t, eng, set)
	if ns0 != 0 || ns1 != 1 {
		t.Fatalf("ids %d,%d want 0,1", ns0, ns1)
	}
	if _, err := eng.DetachNamespace(ns0); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DetachNamespace(ns0); !errors.Is(err, ErrUnknownNamespace) {
		t.Fatalf("double detach: %v", err)
	}
	// Freed id is reused.
	nsAgain, _ := attachVictim(t, eng, set)
	if nsAgain != ns0 {
		t.Fatalf("id %d not reused, got %d", ns0, nsAgain)
	}
	if got := eng.Namespaces(); len(got) != 2 {
		t.Fatalf("namespaces %v", got)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RotateEpoch(99); !errors.Is(err, ErrUnknownNamespace) {
		t.Fatalf("rotate unknown ns: %v", err)
	}
	eng.Stop()
}

// TestEngineEPCBudgetShares pins the budget arbitration: shares are
// weighted by rule-set memory, sum to exactly the machine EPC, rebalance
// on attach/detach, and land in every enclave of the namespace (where
// paging pressure is priced against the share, not the platform total).
func TestEngineEPCBudgetShares(t *testing.T) {
	const epc = 10_000_000
	small := nsTestRules(t, 8, "192.0.2.0/24", 18)
	big := nsTestRules(t, 2048, "198.51.100.0/24", 19)
	eng, err := New(Config{Shards: 2, EPCBytes: epc})
	if err != nil {
		t.Fatal(err)
	}
	nsSmall, fsSmall := attachVictim(t, eng, small)
	if got := eng.EPCShares()[nsSmall]; got != epc {
		t.Fatalf("single namespace share %d, want whole EPC %d", got, epc)
	}
	nsBig, fsBig := attachVictim(t, eng, big)

	shares := eng.EPCShares()
	if len(shares) != 2 {
		t.Fatalf("shares %v", shares)
	}
	if got := shares[nsSmall] + shares[nsBig]; got != epc {
		t.Fatalf("shares sum %d, want %d", got, epc)
	}
	if shares[nsBig] <= shares[nsSmall] {
		t.Fatalf("2048-rule victim got %d, 8-rule victim %d — weight inverted", shares[nsBig], shares[nsSmall])
	}
	for _, f := range fsSmall {
		if got := f.Enclave().EPCBudget(); got != shares[nsSmall] {
			t.Fatalf("small enclave budget %d, share %d", got, shares[nsSmall])
		}
	}
	for _, f := range fsBig {
		if got := f.Enclave().EPCBudget(); got != shares[nsBig] {
			t.Fatalf("big enclave budget %d, share %d", got, shares[nsBig])
		}
		// The 2048-rule victim's working set (two 1 MiB sketches + table)
		// exceeds its slice of the 10 MB machine: pressure must surface.
		if f.Enclave().PagingPressure() == 0 && f.Enclave().MemoryUsed() > shares[nsBig] {
			t.Fatal("working set beyond budget reports zero paging pressure")
		}
	}
	// Detach returns the EPC to the survivor and lifts the cap on the
	// released enclaves.
	if _, err := eng.DetachNamespace(nsBig); err != nil {
		t.Fatal(err)
	}
	if got := eng.EPCShares()[nsSmall]; got != epc {
		t.Fatalf("survivor share %d after detach, want %d", got, epc)
	}
	model := fsBig[0].Enclave().Model()
	for _, f := range fsBig {
		if got := f.Enclave().EPCBudget(); got != model.EPCBytes {
			t.Fatalf("released enclave budget %d, want full EPC %d", got, model.EPCBytes)
		}
	}
}

// TestEngineReconfigureNamespace swaps a namespace's rule set in place
// while the engine runs: counters carry over, the new rules take effect,
// and the old filters are quiesced when the call returns.
func TestEngineReconfigureNamespace(t *testing.T) {
	dropAll := nsTestRules(t, 8, "192.0.2.0/24", 20)
	eng, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ns, _ := attachVictim(t, eng, dropAll)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	descs := nsTestDescriptors(t, dropAll, 512, "192.0.2.9", uint16(ns), 21)
	for _, d := range descs {
		for !eng.Inject(d) {
		}
	}
	eng.WaitDrained()
	before := eng.Metrics()

	// Replace with a default-drop set matching nothing: every subsequent
	// packet must drop.
	denySet, err := rules.NewSet([]rules.Rule{{
		Src: rules.MustParsePrefix("203.0.113.0/24"), Dst: rules.MustParsePrefix("203.0.113.0/24"),
	}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ReconfigureNamespace(ns, NamespaceConfig{Filters: testFilters(t, denySet, 2)}); err != nil {
		t.Fatal(err)
	}
	for _, d := range descs {
		for !eng.Inject(d) {
		}
	}
	eng.WaitDrained()
	after := eng.Metrics()
	var nmBefore, nmAfter NamespaceMetrics
	for _, nm := range before.Namespaces {
		if nm.NS == ns {
			nmBefore = nm
		}
	}
	for _, nm := range after.Namespaces {
		if nm.NS == ns {
			nmAfter = nm
		}
	}
	if nmAfter.Processed != nmBefore.Processed+uint64(len(descs)) {
		t.Fatalf("processed %d after reconfigure, want %d carried + %d new",
			nmAfter.Processed, nmBefore.Processed, len(descs))
	}
	if got := nmAfter.Dropped - nmBefore.Dropped; got != uint64(len(descs)) {
		t.Fatalf("default-drop set dropped %d of %d", got, len(descs))
	}
	if _, err := eng.RotateEpoch(ns); err != nil {
		t.Fatalf("rotate after reconfigure: %v", err)
	}
}
