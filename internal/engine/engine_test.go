package engine

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/innetworkfiltering/vif/internal/bypass"
	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// testRules builds k deterministic drop rules over the victim prefix plus
// default-allow, so verdict counts are reproducible across shards.
func testRules(t testing.TB, k int) *rules.Set {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	rs := make([]rules.Rule, k)
	dst := rules.MustParsePrefix("192.0.2.0/24")
	for i := range rs {
		rs[i] = rules.Rule{
			Src:   rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst:   dst,
			Proto: packet.ProtoUDP,
		}
	}
	set, err := rules.NewSet(rs, true)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func testFilters(t testing.TB, set *rules.Set, n int) []*filter.Filter {
	t.Helper()
	fs := make([]*filter.Filter, n)
	for i := range fs {
		e, err := enclave.New(enclave.CodeIdentity{
			Name: "vif-filter", Version: "engine-test", BinarySize: 1 << 20,
		}, enclave.DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		f, err := filter.New(e, set, filter.Config{Stride: 4, DisablePromotion: true})
		if err != nil {
			t.Fatal(err)
		}
		fs[i] = f
	}
	return fs
}

// testDescriptors mixes flows that hit drop rules with flows that miss.
func testDescriptors(t testing.TB, set *rules.Set, n int) []packet.Descriptor {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	victim := packet.MustParseIP("192.0.2.9")
	out := make([]packet.Descriptor, n)
	for i := range out {
		var tup packet.FiveTuple
		if i%2 == 0 {
			r := set.Rules[rng.Intn(set.Len())]
			tup = packet.FiveTuple{
				SrcIP: r.Src.Addr | (rng.Uint32() &^ r.Src.Mask()),
				DstIP: victim, SrcPort: uint16(rng.Intn(60000) + 1),
				DstPort: 53, Proto: packet.ProtoUDP,
			}
		} else {
			tup = packet.FiveTuple{
				SrcIP: rng.Uint32(), DstIP: victim,
				SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 443,
				Proto: packet.ProtoTCP,
			}
		}
		out[i] = packet.Descriptor{Tuple: tup, Size: 64, Ref: packet.NoRef}
	}
	return out
}

func TestEngineProcessesEverythingAccepted(t *testing.T) {
	set := testRules(t, 64)
	eng, err := New(Config{Filters: testFilters(t, set, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	descs := testDescriptors(t, set, 4096)

	const producers = 4
	var wg sync.WaitGroup
	var acceptedTotal [producers]uint64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(descs); i += producers {
				if eng.Inject(descs[i]) {
					acceptedTotal[p]++
				}
			}
		}(p)
	}
	wg.Wait()
	eng.WaitDrained()
	eng.Stop()

	m := eng.Metrics()
	var want uint64
	for _, a := range acceptedTotal {
		want += a
	}
	if m.Accepted != want {
		t.Fatalf("accepted %d, producers counted %d", m.Accepted, want)
	}
	if m.Processed != m.Accepted {
		t.Fatalf("processed %d != accepted %d after drain", m.Processed, m.Accepted)
	}
	if m.Allowed+m.Dropped != m.Processed {
		t.Fatalf("allowed %d + dropped %d != processed %d", m.Allowed, m.Dropped, m.Processed)
	}
	if m.Dropped == 0 || m.Allowed == 0 {
		t.Fatalf("workload should mix verdicts: allowed=%d dropped=%d", m.Allowed, m.Dropped)
	}
}

func TestEngineMatchesSerialVerdicts(t *testing.T) {
	set := testRules(t, 32)
	descs := testDescriptors(t, set, 2048)

	// Serial reference: one filter processes everything.
	ref := testFilters(t, set, 1)[0]
	for _, d := range descs {
		ref.Process(d)
	}
	refStats := ref.Stats()

	// Engine: four shards, deterministic rules, so aggregate verdict
	// counts must match the serial run exactly.
	eng, err := New(Config{Filters: testFilters(t, set, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	for _, d := range descs {
		for !eng.Inject(d) {
		}
	}
	eng.WaitDrained()
	eng.Stop()
	m := eng.Metrics()
	if m.Allowed != refStats.Allowed || m.Dropped != refStats.Dropped {
		t.Fatalf("engine allowed/dropped %d/%d, serial %d/%d",
			m.Allowed, m.Dropped, refStats.Allowed, refStats.Dropped)
	}
}

func TestEngineEpochRotationPartitionsLogs(t *testing.T) {
	set := testRules(t, 32)
	fs := testFilters(t, set, 3)
	eng, err := New(Config{Filters: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	descs := testDescriptors(t, set, 3000)

	// Rotate epochs while a producer is still injecting: no stop-the-world.
	var epochs [][]EpochLog
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, d := range descs {
			for !eng.Inject(d) {
			}
		}
	}()
	for i := 0; i < 3; i++ {
		logs, err := eng.RotateEpoch(0)
		if err != nil {
			t.Errorf("rotate %d: %v", i, err)
			return
		}
		epochs = append(epochs, logs)
	}
	<-done
	eng.WaitDrained()
	// Final epoch seals the remainder.
	logs, err := eng.RotateEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	epochs = append(epochs, logs)
	eng.Stop()

	// MAC keys as the victim would hold them after attestation.
	keys := make(map[uint64][32]byte)
	for _, f := range fs {
		keys[f.Enclave().ID()] = f.Enclave().MACKey()
	}

	// Every epoch's outgoing snapshots must authenticate and merge; the
	// per-epoch totals must sum to exactly the engine's allowed count —
	// each packet logged in exactly one epoch.
	var loggedOut uint64
	for ei, logs := range epochs {
		snaps := make([]*filter.SignedSnapshot, 0, len(logs))
		for _, l := range logs {
			if l.Seq != uint64(ei+1) {
				t.Fatalf("epoch %d: snapshot seq %d", ei, l.Seq)
			}
			snaps = append(snaps, l.Outgoing)
		}
		merged, err := bypass.MergeSnapshots(keys, snaps)
		if err != nil {
			t.Fatalf("epoch %d: %v", ei, err)
		}
		loggedOut += merged.Total()
	}
	m := eng.Metrics()
	if loggedOut != m.Allowed {
		t.Fatalf("outgoing logs across epochs total %d, engine allowed %d", loggedOut, m.Allowed)
	}
	if got := eng.Epoch(0); got != uint64(len(epochs)) {
		t.Fatalf("epoch counter %d, rotated %d times", got, len(epochs))
	}
}

func TestEngineBackpressureCounted(t *testing.T) {
	set := testRules(t, 8)
	eng, err := New(Config{Filters: testFilters(t, set, 1), RingSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Workers not started: the ring must fill and then refuse.
	d := testDescriptors(t, set, 1)[0]
	accepted := 0
	for i := 0; i < 64; i++ {
		if eng.Inject(d) {
			accepted++
		}
	}
	if accepted != 8 {
		t.Fatalf("accepted %d, ring capacity 8", accepted)
	}
	m := eng.Metrics()
	if m.Backpressure != 64-8 {
		t.Fatalf("backpressure %d, want %d", m.Backpressure, 64-8)
	}
	if m.Shards[0].QueueDepth != 8 {
		t.Fatalf("queue depth %d, want 8", m.Shards[0].QueueDepth)
	}
}

func TestEngineRouteDropCounted(t *testing.T) {
	set := testRules(t, 8)
	eng, err := New(Config{
		Filters: testFilters(t, set, 2),
		Route:   func(packet.FiveTuple) (int, bool) { return 0, false },
	})
	if err != nil {
		t.Fatal(err)
	}
	d := testDescriptors(t, set, 1)[0]
	if eng.Inject(d) {
		t.Fatal("balancer drop must report false")
	}
	if m := eng.Metrics(); m.LBDrops != 1 || m.Accepted != 0 {
		t.Fatalf("lbdrops=%d accepted=%d", m.LBDrops, m.Accepted)
	}
}

func TestEngineLifecycle(t *testing.T) {
	set := testRules(t, 8)
	eng, err := New(Config{Filters: testFilters(t, set, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RotateEpoch(0); err != ErrNotRunning {
		t.Fatalf("rotate before start: %v", err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != ErrRunning {
		t.Fatalf("double start: %v", err)
	}
	eng.Stop()
	eng.Stop() // idempotent
	if _, err := eng.RotateEpoch(0); err != ErrNotRunning {
		t.Fatalf("rotate after stop: %v", err)
	}
	if err := eng.Start(); err != ErrRunning {
		t.Fatalf("restart must be refused: %v", err)
	}
	if _, err := New(Config{}); err != ErrNoShards {
		t.Fatalf("empty config: %v", err)
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	set := testRules(t, 4)
	if _, err := New(Config{Filters: testFilters(t, set, 1), Batch: -1}); err == nil {
		t.Fatal("negative batch accepted")
	}
	if _, err := New(Config{Filters: testFilters(t, set, 1), RingSize: -1}); err == nil {
		t.Fatal("negative ring size accepted")
	}
	if _, err := New(Config{Filters: []*filter.Filter{nil}}); err == nil {
		t.Fatal("nil filter accepted")
	}
}

func TestEngineInjectRefusedAfterStop(t *testing.T) {
	set := testRules(t, 8)
	eng, err := New(Config{Filters: testFilters(t, set, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	d := testDescriptors(t, set, 1)[0]
	for !eng.Inject(d) {
	}
	eng.WaitDrained()
	eng.Stop()
	if eng.Inject(d) {
		t.Fatal("Inject accepted after Stop")
	}
	m := eng.Metrics()
	if m.Accepted != 1 || m.Processed != 1 {
		t.Fatalf("accepted=%d processed=%d after post-stop inject", m.Accepted, m.Processed)
	}
	// The drain invariant must survive a stop: nothing accepted is ever
	// left unprocessed, so WaitDrained returns immediately.
	eng.WaitDrained()
}

// TestInjectBatchMatchesScalarCounters drives the same traffic through
// scalar Inject and through InjectBatch on identical engines: accepted,
// processed, and verdict counters must agree exactly — batching is a pure
// producer-cost optimization, invisible to every other subsystem.
func TestInjectBatchMatchesScalarCounters(t *testing.T) {
	set := testRules(t, 32)
	descs := testDescriptors(t, set, 4096)

	run := func(batched bool) Metrics {
		eng, err := New(Config{Filters: testFilters(t, set, 4)})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Start(); err != nil {
			t.Fatal(err)
		}
		if batched {
			// Default rings (4096/shard) hold the whole stream even if no
			// worker ever drains, so every burst must be fully accepted —
			// InjectBatch's count is not a resumable prefix, and this test
			// must not depend on resumption.
			for off := 0; off < len(descs); off += 256 {
				end := min(off+256, len(descs))
				if n := eng.InjectBatch(descs[off:end]); n != end-off {
					t.Fatalf("burst at %d: accepted %d of %d with roomy rings", off, n, end-off)
				}
			}
		} else {
			for _, d := range descs {
				for !eng.Inject(d) {
				}
			}
		}
		eng.WaitDrained()
		eng.Stop()
		return eng.Metrics()
	}

	scalar, batched := run(false), run(true)
	if scalar.Accepted != batched.Accepted ||
		scalar.Processed != batched.Processed ||
		scalar.Allowed != batched.Allowed ||
		scalar.Dropped != batched.Dropped {
		t.Fatalf("scalar accepted/processed/allowed/dropped %d/%d/%d/%d, batched %d/%d/%d/%d",
			scalar.Accepted, scalar.Processed, scalar.Allowed, scalar.Dropped,
			batched.Accepted, batched.Processed, batched.Allowed, batched.Dropped)
	}
	if batched.Processed != uint64(len(descs)) {
		t.Fatalf("processed %d of %d", batched.Processed, len(descs))
	}
}

// TestInjectBatchPartialAcceptance fills unconsumed rings (workers never
// started) and checks the accepted count, backpressure accounting, and
// that accepted descriptors stay within ring capacity per shard.
func TestInjectBatchPartialAcceptance(t *testing.T) {
	set := testRules(t, 16)
	eng, err := New(Config{Filters: testFilters(t, set, 2), RingSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	descs := testDescriptors(t, set, 64)
	accepted := eng.InjectBatch(descs)
	// Both rings can hold at most 8 each; the rest of the burst must be
	// refused and counted as backpressure, per packet.
	if accepted > 16 || accepted == 0 {
		t.Fatalf("accepted %d, rings hold at most 16", accepted)
	}
	m := eng.Metrics()
	if m.Accepted != uint64(accepted) {
		t.Fatalf("metrics accepted %d, InjectBatch returned %d", m.Accepted, accepted)
	}
	if m.Backpressure != uint64(len(descs)-accepted) {
		t.Fatalf("backpressure %d, want %d", m.Backpressure, len(descs)-accepted)
	}
	// A second burst on full rings is refused outright.
	if n := eng.InjectBatch(descs); n != 0 {
		t.Fatalf("full rings accepted %d", n)
	}
}

// TestInjectBatchRefusedAfterStop mirrors the scalar drain-invariant
// contract: once Stop begins, InjectBatch returns 0 and touches no counter.
func TestInjectBatchRefusedAfterStop(t *testing.T) {
	set := testRules(t, 8)
	eng, err := New(Config{Filters: testFilters(t, set, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	descs := testDescriptors(t, set, 128)
	n := eng.InjectBatch(descs)
	eng.WaitDrained()
	eng.Stop()
	if got := eng.InjectBatch(descs); got != 0 {
		t.Fatalf("InjectBatch accepted %d after Stop", got)
	}
	m := eng.Metrics()
	if m.Accepted != uint64(n) || m.Processed != uint64(n) {
		t.Fatalf("accepted=%d processed=%d, pre-stop batch was %d", m.Accepted, m.Processed, n)
	}
	eng.WaitDrained() // must return immediately: invariant intact
}

// TestInjectBatchCountsLBDrops routes through a balancer that drops every
// other packet: drops are counted per packet and never charged as accepted.
func TestInjectBatchCountsLBDrops(t *testing.T) {
	set := testRules(t, 8)
	var calls int
	eng, err := New(Config{
		Filters: testFilters(t, set, 2),
		Route: func(t packet.FiveTuple) (int, bool) {
			calls++
			return 0, calls%2 == 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	descs := testDescriptors(t, set, 100)
	accepted := eng.InjectBatch(descs)
	if accepted != 50 {
		t.Fatalf("accepted %d, want 50", accepted)
	}
	eng.WaitDrained()
	m := eng.Metrics()
	if m.LBDrops != 50 {
		t.Fatalf("lbdrops %d, want 50", m.LBDrops)
	}
	if m.Accepted != 50 || m.Processed != 50 {
		t.Fatalf("accepted=%d processed=%d", m.Accepted, m.Processed)
	}
}

// TestInjectBatchUsesRouteBatch verifies the burst routing hook is used
// when configured: one call per burst, and its -1 verdicts count as lb
// drops.
func TestInjectBatchUsesRouteBatch(t *testing.T) {
	set := testRules(t, 8)
	batchCalls := 0
	eng, err := New(Config{
		Filters: testFilters(t, set, 2),
		Route:   func(packet.FiveTuple) (int, bool) { t.Error("scalar Route called on batch path"); return 0, true },
		RouteBatch: func(ds []packet.Descriptor, shards []int32) {
			batchCalls++
			for i := range ds {
				if i%4 == 0 {
					shards[i] = -1
					continue
				}
				shards[i] = int32(i % 2)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	descs := testDescriptors(t, set, 64)
	accepted := eng.InjectBatch(descs)
	if batchCalls != 1 {
		t.Fatalf("RouteBatch called %d times for one burst", batchCalls)
	}
	if accepted != 48 {
		t.Fatalf("accepted %d, want 48", accepted)
	}
	eng.WaitDrained()
	if m := eng.Metrics(); m.LBDrops != 16 {
		t.Fatalf("lbdrops %d, want 16", m.LBDrops)
	}
}

// TestEnginePromotesAtEpochBoundary covers the hybrid design's learning
// step on the engine path: probabilistic rules leave flows pending, and
// the worker promotes them to exact-match entries when it seals an epoch.
func TestEnginePromotesAtEpochBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rs := make([]rules.Rule, 16)
	dst := rules.MustParsePrefix("192.0.2.0/24")
	for i := range rs {
		rs[i] = rules.Rule{
			Src:    rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst:    dst,
			Proto:  packet.ProtoUDP,
			PAllow: 0.5, // probabilistic: flows queue for promotion
		}
	}
	set, err := rules.NewSet(rs, true)
	if err != nil {
		t.Fatal(err)
	}
	fs := make([]*filter.Filter, 2)
	for i := range fs {
		e, err := enclave.New(enclave.CodeIdentity{
			Name: "vif-filter", Version: "promote-test", BinarySize: 1 << 20,
		}, enclave.DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		f, err := filter.New(e, set, filter.Config{Stride: 4}) // promotion enabled
		if err != nil {
			t.Fatal(err)
		}
		fs[i] = f
	}
	eng, err := New(Config{Filters: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	// Traffic that hits the probabilistic rules on every packet.
	descs := make([]packet.Descriptor, 1024)
	for i := range descs {
		r := rs[rng.Intn(len(rs))]
		descs[i] = packet.Descriptor{
			Tuple: packet.FiveTuple{
				SrcIP:   r.Src.Addr | (rng.Uint32() &^ r.Src.Mask()),
				DstIP:   packet.MustParseIP("192.0.2.9"),
				SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 53,
				Proto: packet.ProtoUDP,
			},
			Size: 64, Ref: packet.NoRef,
		}
	}
	// 1024 descriptors fit either default ring outright, so the burst must
	// be accepted whole.
	if n := eng.InjectBatch(descs); n != len(descs) {
		t.Fatalf("accepted %d of %d with roomy rings", n, len(descs))
	}
	eng.WaitDrained()

	pendingBefore := fs[0].PendingFlows() + fs[1].PendingFlows()
	if pendingBefore == 0 {
		t.Fatal("probabilistic traffic left no flows pending promotion")
	}
	if _, err := eng.RotateEpoch(0); err != nil {
		t.Fatal(err)
	}
	eng.Stop()

	m := eng.Metrics()
	var promoted uint64
	for _, sm := range m.Shards {
		promoted += sm.Promoted
	}
	if promoted == 0 {
		t.Fatal("epoch rotation promoted nothing in engine mode")
	}
	if got := fs[0].PendingFlows() + fs[1].PendingFlows(); got != 0 {
		t.Fatalf("pending flows after rotation: %d", got)
	}
	var fromStats uint64
	for _, f := range fs {
		fromStats += f.Stats().Promoted
	}
	if fromStats != promoted {
		t.Fatalf("shard metrics promoted %d, filter stats %d", promoted, fromStats)
	}
	// Promotion must not change any verdict: replaying the same flows now
	// served by the exact table yields identical allow/drop splits per
	// flow, which the filter's own promotion tests assert; here we check
	// the learned entries are actually consulted.
	var exact int
	for _, f := range fs {
		exact += f.ExactEntries()
	}
	if exact == 0 {
		t.Fatal("no exact-match entries after promotion")
	}
}

func TestEngineSinkObservesAllowed(t *testing.T) {
	set := testRules(t, 16)
	var mu sync.Mutex
	seen := 0
	eng, err := New(Config{
		Filters: testFilters(t, set, 2),
		Sink: func(shard int, d packet.Descriptor) {
			mu.Lock()
			seen++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	for _, d := range testDescriptors(t, set, 512) {
		for !eng.Inject(d) {
		}
	}
	eng.WaitDrained()
	eng.Stop()
	m := eng.Metrics()
	mu.Lock()
	defer mu.Unlock()
	if uint64(seen) != m.Allowed {
		t.Fatalf("sink saw %d, engine allowed %d", seen, m.Allowed)
	}
}

func TestNsPerPacketExcludesPreEngineWork(t *testing.T) {
	set := testRules(t, 32)
	fs := testFilters(t, set, 1)
	descs := testDescriptors(t, set, 2048)

	// Burn serial virtual time on the same filter before the engine owns
	// it: the shard metric must reflect engine-era work only.
	for _, d := range descs {
		fs[0].Process(d)
	}
	serialNs := fs[0].Enclave().VirtualNs()
	if serialNs == 0 {
		t.Fatal("serial warm-up charged nothing")
	}

	eng, err := New(Config{Filters: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	for _, d := range descs[:256] {
		for !eng.Inject(d) {
		}
	}
	eng.WaitDrained()
	eng.Stop()

	sm := eng.Metrics().Shards[0]
	if sm.NsPerPacket <= 0 {
		t.Fatalf("ns/packet %.2f", sm.NsPerPacket)
	}
	// Engine-era per-packet cost is well under the serial total; if the
	// lifetime meter leaked into the numerator the value would exceed
	// serialNs/256 by orders of magnitude.
	if sm.NsPerPacket > serialNs/256/2 {
		t.Fatalf("ns/packet %.1f contaminated by pre-engine meter (serial total %.1f over 2048 pkts)",
			sm.NsPerPacket, serialNs)
	}
}
