package engine

import (
	"strconv"

	"github.com/innetworkfiltering/vif/internal/telemetry"
)

// registerCollector publishes the engine's counters as telemetry metric
// families. The dependency points engine → telemetry only: telemetry
// renders whatever families this collector returns, without knowing the
// engine exists. Collect runs on the scrape goroutine and reads the same
// atomic snapshot path Metrics() gives every other consumer.
func (e *Engine) registerCollector() {
	e.tel.Register(telemetry.CollectorFunc(e.collect))
}

func (e *Engine) collect() []telemetry.Metric {
	m := e.Metrics()
	out := make([]telemetry.Metric, 0, 32)

	single := func(name, help string, typ telemetry.MetricType, v float64) {
		out = append(out, telemetry.Metric{
			Name: name, Help: help, Type: typ,
			Samples: []telemetry.Sample{{Value: v}},
		})
	}
	single("vif_engine_shards", "Number of filter shards.", telemetry.Gauge, float64(len(m.Shards)))
	single("vif_engine_namespaces", "Number of attached victim namespaces.", telemetry.Gauge, float64(len(m.Namespaces)))
	single("vif_engine_accepted_total", "Descriptors accepted into shard rings.", telemetry.Counter, float64(m.Accepted))
	single("vif_engine_processed_total", "Descriptors decided by a filter.", telemetry.Counter, float64(m.Processed))
	single("vif_engine_allowed_total", "Descriptors the filters allowed.", telemetry.Counter, float64(m.Allowed))
	single("vif_engine_dropped_total", "Descriptors the filters dropped.", telemetry.Counter, float64(m.Dropped))
	single("vif_engine_orphaned_total", "Descriptors whose namespace detached while they sat in a ring.", telemetry.Counter, float64(m.Orphaned))
	single("vif_engine_lb_drops_total", "Descriptors the balancer discarded before any shard.", telemetry.Counter, float64(m.LBDrops))
	single("vif_engine_ns_drops_total", "Descriptors stamped with an unattached namespace.", telemetry.Counter, float64(m.NSDrops))
	single("vif_engine_backpressure_total", "Producer enqueue failures on full shard rings.", telemetry.Counter, float64(m.Backpressure))
	single("vif_engine_throttled_total", "Descriptors refused at ingress by admission control.", telemetry.Counter, float64(m.Throttled))
	single("vif_engine_faulted_total", "Descriptors lost to worker panics (processed without a verdict).", telemetry.Counter, float64(m.Faulted))
	single("vif_engine_worker_restarts_total", "Shard worker panic recoveries.", telemetry.Counter, float64(m.Restarts))
	single("vif_engine_queue_depth", "Descriptors sitting in shard rings.", telemetry.Gauge, float64(m.QueueDepth))
	single("vif_engine_uptime_seconds", "Wall-clock time since Start.", telemetry.Gauge, m.Elapsed.Seconds())
	single("vif_engine_pps", "Average processed packets per second since Start.", telemetry.Gauge, m.PPS)
	single("vif_engine_epc_bytes", "Per-machine EPC apportioned across namespaces.", telemetry.Gauge, float64(e.EPCBytes()))

	shardFam := func(name, help string, typ telemetry.MetricType, get func(ShardMetrics) float64) {
		samples := make([]telemetry.Sample, len(m.Shards))
		for i, sm := range m.Shards {
			samples[i] = telemetry.Sample{
				Labels: []telemetry.Label{{Key: "shard", Value: strconv.Itoa(sm.Shard)}},
				Value:  get(sm),
			}
		}
		out = append(out, telemetry.Metric{Name: name, Help: help, Type: typ, Samples: samples})
	}
	shardFam("vif_shard_processed_total", "Descriptors this shard decided.", telemetry.Counter, func(s ShardMetrics) float64 { return float64(s.Processed) })
	shardFam("vif_shard_allowed_total", "Descriptors this shard allowed.", telemetry.Counter, func(s ShardMetrics) float64 { return float64(s.Allowed) })
	shardFam("vif_shard_dropped_total", "Descriptors this shard dropped.", telemetry.Counter, func(s ShardMetrics) float64 { return float64(s.Dropped) })
	shardFam("vif_shard_orphaned_total", "Orphaned descriptors this shard drained.", telemetry.Counter, func(s ShardMetrics) float64 { return float64(s.Orphaned) })
	shardFam("vif_shard_faulted_total", "Descriptors this shard lost to worker panics.", telemetry.Counter, func(s ShardMetrics) float64 { return float64(s.Faulted) })
	shardFam("vif_shard_restarts_total", "Worker panic recoveries on this shard.", telemetry.Counter, func(s ShardMetrics) float64 { return float64(s.Restarts) })
	shardFam("vif_shard_backpressure_total", "Enqueue failures on this shard's ring.", telemetry.Counter, func(s ShardMetrics) float64 { return float64(s.Backpressure) })
	shardFam("vif_shard_queue_depth", "This shard's ring occupancy.", telemetry.Gauge, func(s ShardMetrics) float64 { return float64(s.QueueDepth) })
	shardFam("vif_shard_epochs_total", "Epoch rotations this shard sealed.", telemetry.Counter, func(s ShardMetrics) float64 { return float64(s.Epochs) })
	shardFam("vif_shard_batches_total", "Bursts this shard drained.", telemetry.Counter, func(s ShardMetrics) float64 { return float64(s.Batches) })
	shardFam("vif_shard_avg_batch", "Mean burst occupancy (processed/batches).", telemetry.Gauge, func(s ShardMetrics) float64 { return s.AvgBatch })
	shardFam("vif_shard_ns_per_packet", "Modeled enclave nanoseconds per packet.", telemetry.Gauge, func(s ShardMetrics) float64 { return s.NsPerPacket })

	// Per-module pipeline costs: one sample per (shard, stage) with
	// sampled data — the burst-chain decomposition of the shard's wall
	// time, measured on the telemetry recorder's sampled bursts.
	var stageSamples, stagePkts []telemetry.Sample
	for _, sm := range m.Shards {
		for _, st := range sm.Stages {
			labels := []telemetry.Label{
				{Key: "shard", Value: strconv.Itoa(sm.Shard)},
				{Key: "stage", Value: st.Stage},
			}
			stageSamples = append(stageSamples, telemetry.Sample{Labels: labels, Value: st.NsPerPacket})
			stagePkts = append(stagePkts, telemetry.Sample{Labels: labels, Value: float64(st.SampledPackets)})
		}
	}
	if len(stageSamples) > 0 {
		out = append(out, telemetry.Metric{
			Name: "vif_shard_stage_ns_per_packet", Help: "Measured wall nanoseconds per packet per burst module (sampled bursts).",
			Type: telemetry.Gauge, Samples: stageSamples,
		})
		out = append(out, telemetry.Metric{
			Name: "vif_shard_stage_sampled_packets_total", Help: "Packets carried through each burst module by sampled bursts.",
			Type: telemetry.Counter, Samples: stagePkts,
		})
	}

	if len(m.Namespaces) > 0 {
		nsFam := func(name, help string, typ telemetry.MetricType, get func(NamespaceMetrics) float64) {
			samples := make([]telemetry.Sample, len(m.Namespaces))
			for i, nm := range m.Namespaces {
				samples[i] = telemetry.Sample{
					Labels: []telemetry.Label{{Key: "ns", Value: strconv.Itoa(nm.NS)}},
					Value:  get(nm),
				}
			}
			out = append(out, telemetry.Metric{Name: name, Help: help, Type: typ, Samples: samples})
		}
		nsFam("vif_namespace_processed_total", "Descriptors decided for this victim.", telemetry.Counter, func(n NamespaceMetrics) float64 { return float64(n.Processed) })
		nsFam("vif_namespace_allowed_total", "Descriptors allowed for this victim.", telemetry.Counter, func(n NamespaceMetrics) float64 { return float64(n.Allowed) })
		nsFam("vif_namespace_dropped_total", "Descriptors dropped for this victim.", telemetry.Counter, func(n NamespaceMetrics) float64 { return float64(n.Dropped) })
		nsFam("vif_namespace_admitted_total", "Descriptors past this victim's admission gate.", telemetry.Counter, func(n NamespaceMetrics) float64 { return float64(n.Admitted) })
		nsFam("vif_namespace_throttled_total", "Descriptors refused at ingress for this victim.", telemetry.Counter, func(n NamespaceMetrics) float64 { return float64(n.Throttled) })
		nsFam("vif_namespace_admit_rate_pps", "This victim's admitted-rate cap (0 = uncapped).", telemetry.Gauge, func(n NamespaceMetrics) float64 { return n.AdmitRatePps })
		nsFam("vif_namespace_epochs_total", "Epochs sealed for this victim (rotations x shards).", telemetry.Counter, func(n NamespaceMetrics) float64 { return float64(n.Epochs) })
		nsFam("vif_namespace_promoted_total", "Flows promoted to exact-match entries.", telemetry.Counter, func(n NamespaceMetrics) float64 { return float64(n.Promoted) })
		nsFam("vif_namespace_epc_share_bytes", "This victim's apportioned EPC share.", telemetry.Gauge, func(n NamespaceMetrics) float64 { return float64(n.EPCShareBytes) })
		nsFam("vif_namespace_paging_pressure", "Worst-shard fraction of the working set beyond the EPC share.", telemetry.Gauge, func(n NamespaceMetrics) float64 { return n.PagingPressure })
		nsFam("vif_namespace_ns_per_packet", "Modeled enclave nanoseconds per packet.", telemetry.Gauge, func(n NamespaceMetrics) float64 { return n.NsPerPacket })
		nsFam("vif_namespace_epc_used_bytes", "Worst-shard live EPC consumption of this victim's enclaves.", telemetry.Gauge, e.nsEPCUsed)
	}

	single("vif_engine_tombstones", "Retained final-counter records of detached namespaces.", telemetry.Gauge, float64(len(e.Tombstones())))
	return out
}

// nsEPCUsed reads the worst-shard live enclave memory of an attached
// namespace (enclave.Meter reading; 0 once detached).
func (e *Engine) nsEPCUsed(nm NamespaceMetrics) float64 {
	ns := e.lookup(nm.NS)
	if ns == nil {
		return 0
	}
	worst := 0
	for _, t := range ns.shards {
		if u := t.f.Enclave().Meter().MemoryUsed; u > worst {
			worst = u
		}
	}
	return float64(worst)
}
