// Package engine is VIF's concurrent data-plane runtime: the scalable
// architecture of §IV-B (Figure 4) executing for real instead of being
// modeled analytically. N enclaved filter shards each run on their own
// worker goroutine, fed by a bounded multi-producer/single-consumer ring
// (package pipeline's MPSCRing) that any number of RX threads may enqueue
// into concurrently. Workers drain their ring in bursts (default 64
// packets), run the stateless filter verdict plus the count-min-sketch
// log updates for each packet, and maintain an atomic metrics block that
// the control plane reads without synchronizing with the hot path.
//
// # Multi-victim namespaces
//
// One engine serves many victims at once — the paper's actual deployment
// model, where a transit AS or IXP filters for N downstream victims with
// heterogeneous rule sets. Each victim is a *namespace*: a set of filters
// (one per shard), a routing programme, independent epoch/audit cadence,
// and an apportioned share of the machines' EPC (enclave.EPCBudgeter,
// rebalanced on every attach/detach/reconfigure). packet.Descriptor
// carries the namespace id, stamped at ingress (e.g. lb.VictimMap); each
// shard worker holds a flat copy-on-write view slice indexed by namespace
// id and dispatches per-burst runs with zero locks on the hot path.
// Namespace 0 is the default, so single-victim callers never see any of
// this. Detached victims' final counters are retained as a bounded
// tombstone history (Tombstones) so long-lived shared engines stay
// auditable after tenants leave.
//
// # Control actions at batch boundaries
//
// Everything the control plane asks of a running worker is delivered as a
// ticket the worker serves between two bursts, so the data plane never
// parks and no filter is ever touched by two goroutines:
//
//   - RotateEpoch seals a namespace's sketch logs (authenticated, via the
//     enclave MAC key) so merged per-epoch snapshots form a consistent
//     audit window; rotations of different namespaces run concurrently.
//   - ReconfigureNamespaceDelta applies an incremental rule changeset
//     (filter.ReconfigureDelta, trie snapshot diffing underneath) on the
//     worker goroutine — the live rule-update path that must not stall
//     the enclave data path (§IV). ReconfigureNamespace remains the
//     full-rebuild fallback and oracle.
//   - Attach/Detach/Reconfigure swap copy-on-write view tables with
//     single atomic stores and use a fence ticket to prove quiescence
//     before old filters are released.
//
// # Concurrency contract
//
//   - Inject/InjectBatch: any number of producer goroutines, any time;
//     they refuse once Stop begins. InjectBatch's count is accounting,
//     NOT a resumable prefix — unaccepted descriptors are dropped
//     NIC-style (see its comment).
//   - Attached filters are owned exclusively by the engine between Start
//     and Stop; no other goroutine may call filter data-path methods in
//     that window. Filter monitoring methods stay safe throughout.
//   - Control methods (Attach/Detach/Reconfigure*/RotateEpoch) may be
//     called from any goroutine; nsMu serializes namespace-table
//     mutation, lifeMu orders them against Start/Stop, per-namespace
//     mutexes order rotations against detach.
//   - Metrics/Tombstones/EPCShares are safe from any goroutine and never
//     contend with workers.
//
// # Invariants
//
//   - accepted == processed once WaitDrained returns: every descriptor
//     counted as accepted is filtered exactly once, by exactly one
//     namespace's filter, or counted (orphaned / nsDrops) — never
//     misattributed to another victim.
//   - Every packet is logged in exactly one epoch per (namespace, shard).
//   - EPC shares of attached namespaces always sum to the machine EPC.
package engine
