package engine

import (
	"fmt"
	"testing"

	"github.com/innetworkfiltering/vif/internal/engine/module"
	"github.com/innetworkfiltering/vif/internal/faults"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
	"github.com/innetworkfiltering/vif/internal/telemetry"
)

// The differential suite replays seeded netsim-style workloads through
// two engines that differ only in loop shape — Config.LegacyLoop (the
// pre-refactor fused Filter.ProcessBatch per namespace run) versus the
// decomposed classify/sketch/charge module chain — and asserts the
// observable behavior is bit-identical: per-shard verdict streams, every
// per-namespace and engine counter, the control-plane journal sequence,
// rule memory, and EPC shares. This is the refactor's safety proof: the
// chain is the fused loop, relaid as modules.
//
// Determinism notes: one producer goroutine gives each shard ring a
// deterministic packet order; rings are sized so nothing backpressures
// except where a fault schedule injects refusals (seeded, producer-side,
// so ordinals match across runs); admission legs pin the bucket clock;
// promotion is disabled (testFilters) so learned state cannot depend on
// burst boundaries, which the two runs do not share.

// diffRecord is one packet as it left a namespace chain on one shard.
type diffRecord struct {
	Tuple   packet.FiveTuple
	Verdict filter.Verdict
	Masked  bool
}

// diffRecorder is a verdict-neutral module appended after the core
// stages (both loop shapes), capturing the cell's full verdict stream.
// Worker-owned while running; read only after Stop.
type diffRecorder struct {
	recs []diffRecord
}

func (r *diffRecorder) Name() string { return "diff-recorder" }
func (r *diffRecorder) ProcessBurst(ctx *module.BurstCtx) {
	for i := range ctx.Pkts {
		var v filter.Verdict
		if i < len(ctx.Verdicts) {
			v = ctx.Verdicts[i]
		}
		r.recs = append(r.recs, diffRecord{ctx.Pkts[i].Tuple, v, ctx.Dropped(i)})
	}
}
func (r *diffRecorder) Flush() {}

type diffEngineCounters struct {
	Accepted, Processed, Allowed, Dropped  uint64
	Orphaned, Faulted, Throttled           uint64
	Backpressure, LBDrops, NSDrops, Epochs uint64
}

type diffNSCounters struct {
	NS                          int
	Processed, Allowed, Dropped uint64
	Admitted, Throttled         uint64
	Epochs, Promoted            uint64
	EPCShareBytes               int
}

// diffOutcome is everything one run exposes that must match its twin.
type diffOutcome struct {
	Engine     diffEngineCounters
	Namespaces []diffNSCounters
	Streams    map[int][][]diffRecord // ns → shard → verdict stream
	Journal    []string               // deterministic control-plane events, "type ns=N"
	EPC        map[int]int            // ns → EPC share bytes
	Mem        map[int]int            // ns → worst-shard rule memory bytes
}

// diffJournalKeep is the set of events whose order is fully determined
// by the (single-threaded) producer + control plane. Worker-emitted
// events (backpressure_off on drain, epoch seals) interleave with these
// racily and are excluded; their counters are compared instead.
var diffJournalKeep = map[telemetry.EventType]bool{
	telemetry.EvEngineStart:       true,
	telemetry.EvEngineStop:        true,
	telemetry.EvAttach:            true,
	telemetry.EvDetach:            true,
	telemetry.EvReconfigure:       true,
	telemetry.EvReconfigureDelta:  true,
	telemetry.EvDeltaRollback:     true,
	telemetry.EvEPCRebalance:      true,
	telemetry.EvAdmissionThrottle: true,
}

func diffTelemetry(shards int) *telemetry.Telemetry {
	return telemetry.New(telemetry.Config{Shards: shards, TraceEvery: -1, JournalSize: 4096})
}

// diffAttach attaches one victim with a per-shard verdict recorder.
func diffAttach(t *testing.T, eng *Engine, set *rules.Set, cfg NamespaceConfig) (int, []*diffRecorder) {
	t.Helper()
	recs := make([]*diffRecorder, eng.Shards())
	cfg.Filters = testFilters(t, set, eng.Shards())
	cfg.Modules = func(shard int) []module.Module {
		r := &diffRecorder{}
		recs[shard] = r
		return []module.Module{r}
	}
	id, err := eng.AttachNamespace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return id, recs
}

// diffInject pushes descriptors through the single producer in fixed
// chunks, returning how many the engine accepted.
func diffInject(eng *Engine, ds []packet.Descriptor) uint64 {
	var accepted uint64
	for lo := 0; lo < len(ds); lo += 128 {
		hi := lo + 128
		if hi > len(ds) {
			hi = len(ds)
		}
		accepted += uint64(eng.InjectBatch(ds[lo:hi]))
	}
	return accepted
}

// diffCollect snapshots the run's observable state after Stop.
func diffCollect(eng *Engine, tel *telemetry.Telemetry, streams map[int][]*diffRecorder) diffOutcome {
	m := eng.Metrics()
	out := diffOutcome{
		Engine: diffEngineCounters{
			Accepted: m.Accepted, Processed: m.Processed, Allowed: m.Allowed,
			Dropped: m.Dropped, Orphaned: m.Orphaned, Faulted: m.Faulted,
			Throttled: m.Throttled, Backpressure: m.Backpressure,
			LBDrops: m.LBDrops, NSDrops: m.NSDrops,
		},
		Streams: map[int][][]diffRecord{},
		EPC:     eng.EPCShares(),
		Mem:     map[int]int{},
	}
	for _, nm := range m.Namespaces {
		out.Namespaces = append(out.Namespaces, diffNSCounters{
			NS: nm.NS, Processed: nm.Processed, Allowed: nm.Allowed,
			Dropped: nm.Dropped, Admitted: nm.Admitted, Throttled: nm.Throttled,
			Epochs: nm.Epochs, Promoted: nm.Promoted, EPCShareBytes: nm.EPCShareBytes,
		})
		worst := 0
		for _, f := range eng.NamespaceFilters(nm.NS) {
			if b := f.RuleMemoryBytes(); b > worst {
				worst = b
			}
		}
		out.Mem[nm.NS] = worst
	}
	for ns, recs := range streams {
		perShard := make([][]diffRecord, len(recs))
		for i, r := range recs {
			perShard[i] = r.recs
		}
		out.Streams[ns] = perShard
	}
	for _, ev := range tel.Journal().Events() {
		if diffJournalKeep[ev.Type] {
			out.Journal = append(out.Journal, fmt.Sprintf("%s ns=%d", ev.Type, ev.NS))
		}
	}
	return out
}

// diffCompare asserts two runs are observably identical, reporting the
// first divergence precisely.
func diffCompare(t *testing.T, legacy, chain diffOutcome) {
	t.Helper()
	if legacy.Engine != chain.Engine {
		t.Errorf("engine counters diverge:\nlegacy: %+v\nchain:  %+v", legacy.Engine, chain.Engine)
	}
	if len(legacy.Namespaces) != len(chain.Namespaces) {
		t.Fatalf("namespace count diverges: %d vs %d", len(legacy.Namespaces), len(chain.Namespaces))
	}
	for i := range legacy.Namespaces {
		if legacy.Namespaces[i] != chain.Namespaces[i] {
			t.Errorf("namespace %d counters diverge:\nlegacy: %+v\nchain:  %+v",
				legacy.Namespaces[i].NS, legacy.Namespaces[i], chain.Namespaces[i])
		}
	}
	if len(legacy.Journal) != len(chain.Journal) {
		t.Errorf("journal length diverges: %d vs %d\nlegacy: %v\nchain:  %v",
			len(legacy.Journal), len(chain.Journal), legacy.Journal, chain.Journal)
	} else {
		for i := range legacy.Journal {
			if legacy.Journal[i] != chain.Journal[i] {
				t.Errorf("journal[%d] diverges: %q vs %q", i, legacy.Journal[i], chain.Journal[i])
				break
			}
		}
	}
	for ns, lm := range legacy.Mem {
		if cm := chain.Mem[ns]; cm != lm {
			t.Errorf("ns %d rule memory diverges: %d vs %d", ns, lm, cm)
		}
	}
	for ns, ls := range legacy.EPC {
		if cs := chain.EPC[ns]; cs != ls {
			t.Errorf("ns %d EPC share diverges: %d vs %d", ns, ls, cs)
		}
	}
	for ns, lStreams := range legacy.Streams {
		cStreams, ok := chain.Streams[ns]
		if !ok {
			t.Errorf("chain run lost namespace %d's streams", ns)
			continue
		}
		for sh := range lStreams {
			l, c := lStreams[sh], cStreams[sh]
			if len(l) != len(c) {
				t.Errorf("ns %d shard %d: stream length diverges: %d vs %d", ns, sh, len(l), len(c))
				continue
			}
			for i := range l {
				if l[i] != c[i] {
					t.Errorf("ns %d shard %d packet %d: verdict diverges:\nlegacy: %+v\nchain:  %+v",
						ns, sh, i, l[i], c[i])
					break
				}
			}
		}
	}
	// A vacuous equivalence proves nothing: require real traffic with
	// both verdict classes.
	if legacy.Engine.Processed == 0 || legacy.Engine.Allowed == 0 || legacy.Engine.Dropped == 0 {
		t.Fatalf("degenerate workload: %+v", legacy.Engine)
	}
}

// renumber reassigns rule IDs from base so delta adds cannot collide
// with the installed set's IDs.
func renumber(rs []rules.Rule, base uint32) []rules.Rule {
	out := append([]rules.Rule{}, rs...)
	for i := range out {
		out[i].ID = base + uint32(i)
	}
	return out
}

// interleave merges per-victim descriptor slices round-robin, the
// arrival pattern a shared deployment sees.
func interleave(lists ...[]packet.Descriptor) []packet.Descriptor {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]packet.Descriptor, 0, total)
	for i := 0; len(out) < total; i++ {
		for _, l := range lists {
			if i < len(l) {
				out = append(out, l[i])
			}
		}
	}
	return out
}

// --- Workload 1: multi-victim steady state ---------------------------

func runDiffMultiVictim(t *testing.T, legacy bool) diffOutcome {
	t.Helper()
	tel := diffTelemetry(2)
	eng, err := New(Config{Shards: 2, RingSize: 1 << 14, Telemetry: tel, LegacyLoop: legacy})
	if err != nil {
		t.Fatal(err)
	}

	setA := nsTestRules(t, 48, "192.0.2.0/24", 1)
	setB := nsTestRules(t, 32, "198.51.100.0/24", 2)
	setC := nsTestRules(t, 16, "203.0.113.0/24", 3)
	nsA, recA := diffAttach(t, eng, setA, NamespaceConfig{})
	nsB, recB := diffAttach(t, eng, setB, NamespaceConfig{})
	nsC, recC := diffAttach(t, eng, setC, NamespaceConfig{})

	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	ds := interleave(
		nsTestDescriptors(t, setA, 3000, "192.0.2.9", uint16(nsA), 11),
		nsTestDescriptors(t, setB, 3000, "198.51.100.9", uint16(nsB), 12),
		nsTestDescriptors(t, setC, 1500, "203.0.113.9", uint16(nsC), 13),
	)
	if got := diffInject(eng, ds); got != uint64(len(ds)) {
		t.Fatalf("ring backpressure broke determinism: accepted %d of %d", got, len(ds))
	}
	eng.WaitDrained()
	eng.Stop()
	return diffCollect(eng, tel, map[int][]*diffRecorder{nsA: recA, nsB: recB, nsC: recC})
}

// TestDifferentialMultiVictim: three victims' interleaved traffic
// through both loop shapes — identical verdict streams per (ns, shard),
// counters, journal, memory, EPC split.
func TestDifferentialMultiVictim(t *testing.T) {
	diffCompare(t, runDiffMultiVictim(t, true), runDiffMultiVictim(t, false))
}

// --- Workload 2: rule churn across live deltas -----------------------

func runDiffChurn(t *testing.T, legacy bool) diffOutcome {
	t.Helper()
	tel := diffTelemetry(2)
	eng, err := New(Config{Shards: 2, RingSize: 1 << 14, Telemetry: tel, LegacyLoop: legacy})
	if err != nil {
		t.Fatal(err)
	}
	set := nsTestRules(t, 48, "192.0.2.0/24", 21)
	ns, recs := diffAttach(t, eng, set, NamespaceConfig{})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	// Phase 1: the original rules.
	p1 := nsTestDescriptors(t, set, 3000, "192.0.2.9", uint16(ns), 31)
	if got := diffInject(eng, p1); got != uint64(len(p1)) {
		t.Fatalf("phase 1 backpressure: %d of %d", got, len(p1))
	}
	eng.WaitDrained() // quiesce so the delta point is deterministic

	// Delta 1: drop 8 original rules, add 16 fresh ones. The chain (and
	// any attached modules) must survive in place — deltas swap rule
	// views, not cells.
	adds := renumber(nsTestRules(t, 16, "192.0.2.0/24", 22).Rules, 9000)
	d1 := filter.Delta{Adds: adds, Removes: set.Rules[:8]}
	if err := eng.ReconfigureNamespaceDelta(ns, []filter.Delta{d1, d1}, nil, nil); err != nil {
		t.Fatal(err)
	}

	// Phase 2: traffic drawn against the post-delta rule set, so both
	// removed-rule misses and added-rule hits appear in the streams.
	postRules := append(append([]rules.Rule{}, set.Rules[8:]...), adds...)
	postSet, err := rules.NewSet(postRules, true)
	if err != nil {
		t.Fatal(err)
	}
	p2 := nsTestDescriptors(t, postSet, 3000, "192.0.2.9", uint16(ns), 32)
	if got := diffInject(eng, p2); got != uint64(len(p2)) {
		t.Fatalf("phase 2 backpressure: %d of %d", got, len(p2))
	}
	eng.WaitDrained()

	// Delta 2: pure adds (the learned-state-preserving path).
	adds2 := renumber(nsTestRules(t, 8, "192.0.2.0/24", 23).Rules, 9100)
	d2 := filter.Delta{Adds: adds2}
	if err := eng.ReconfigureNamespaceDelta(ns, []filter.Delta{d2, d2}, nil, nil); err != nil {
		t.Fatal(err)
	}
	p3 := nsTestDescriptors(t, postSet, 1500, "192.0.2.9", uint16(ns), 33)
	if got := diffInject(eng, p3); got != uint64(len(p3)) {
		t.Fatalf("phase 3 backpressure: %d of %d", got, len(p3))
	}
	eng.WaitDrained()
	eng.Stop()
	return diffCollect(eng, tel, map[int][]*diffRecorder{ns: recs})
}

// TestDifferentialChurn: two live rule deltas between traffic phases —
// the module chains persist across delta swaps with identical verdicts.
func TestDifferentialChurn(t *testing.T) {
	diffCompare(t, runDiffChurn(t, true), runDiffChurn(t, false))
}

// --- Workload 3: overload under admission control --------------------

func runDiffOverload(t *testing.T, legacy bool) diffOutcome {
	t.Helper()
	tel := diffTelemetry(2)
	eng, err := New(Config{
		Shards: 2, RingSize: 1 << 14, Telemetry: tel, LegacyLoop: legacy,
		// Pinned bucket clock: no refill, so the token arithmetic — and
		// therefore exactly which packets are throttled — is a pure
		// function of the injection sequence.
		Admission: &AdmissionConfig{Burst: 1024, Now: func() int64 { return 0 }},
	})
	if err != nil {
		t.Fatal(err)
	}
	setHot := nsTestRules(t, 32, "192.0.2.0/24", 41)
	setCold := nsTestRules(t, 32, "198.51.100.0/24", 42)
	nsHot, recHot := diffAttach(t, eng, setHot, NamespaceConfig{AdmitPps: 1000})
	nsCold, recCold := diffAttach(t, eng, setCold, NamespaceConfig{})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	ds := interleave(
		nsTestDescriptors(t, setHot, 4000, "192.0.2.9", uint16(nsHot), 51),
		nsTestDescriptors(t, setCold, 2000, "198.51.100.9", uint16(nsCold), 52),
	)
	diffInject(eng, ds) // the hot victim's tail is refused by design
	eng.WaitDrained()
	eng.Stop()

	out := diffCollect(eng, tel, map[int][]*diffRecorder{nsHot: recHot, nsCold: recCold})
	if out.Engine.Throttled == 0 {
		t.Fatal("overload workload never throttled — admission leg exercised nothing")
	}
	return out
}

// TestDifferentialOverload: a flooding victim clipped by admission
// control next to an uncapped neighbor — identical admitted/throttled
// splits and verdict streams for what got through.
func TestDifferentialOverload(t *testing.T) {
	diffCompare(t, runDiffOverload(t, true), runDiffOverload(t, false))
}

// --- Workload 4: fault schedules -------------------------------------

func runDiffFaults(t *testing.T, legacy bool) diffOutcome {
	t.Helper()
	tel := diffTelemetry(2)
	in := faults.New(97)
	in.Enable(faults.RingFull, faults.Spec{Prob: 0.25})
	eng, err := New(Config{Shards: 2, RingSize: 1 << 14, Telemetry: tel, Faults: in, LegacyLoop: legacy})
	if err != nil {
		t.Fatal(err)
	}
	set := nsTestRules(t, 32, "192.0.2.0/24", 61)
	ns, recs := diffAttach(t, eng, set, NamespaceConfig{})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	// RingFull refusals are producer-side: the same seeded schedule sees
	// the same ordinal sequence in both runs, so the accepted subsequence
	// reaching each shard is identical.
	p1 := nsTestDescriptors(t, set, 4000, "192.0.2.9", uint16(ns), 62)
	diffInject(eng, p1)
	eng.WaitDrained()

	// A delta that fails on every shard (Prob 1): rollback restores the
	// pre-delta rules identically under both loop shapes.
	in.Enable(faults.DeltaApply, faults.Spec{Prob: 1})
	adds := renumber(nsTestRules(t, 8, "192.0.2.0/24", 63).Rules, 9000)
	d := filter.Delta{Adds: adds}
	if err := eng.ReconfigureNamespaceDelta(ns, []filter.Delta{d, d}, nil, nil); err == nil {
		t.Fatal("delta succeeded under a Prob-1 DeltaApply schedule")
	}
	in.Disable(faults.DeltaApply)

	// Post-rollback traffic must classify against the original rules.
	p2 := nsTestDescriptors(t, set, 2000, "192.0.2.9", uint16(ns), 64)
	diffInject(eng, p2)
	eng.WaitDrained()
	eng.Stop()

	out := diffCollect(eng, tel, map[int][]*diffRecorder{ns: recs})
	if in.Fired(faults.RingFull) == 0 {
		t.Fatal("fault schedule never fired")
	}
	if out.Engine.Backpressure == 0 {
		t.Fatal("RingFull schedule produced no backpressure")
	}
	if !journalHas(tel, telemetry.EvDeltaRollback) {
		t.Fatal("failed delta was not journaled as a rollback")
	}
	return out
}

// TestDifferentialFaults: a seeded ring-full storm plus a failing
// delta's rollback — loss and repair behave identically in both shapes.
func TestDifferentialFaults(t *testing.T) {
	diffCompare(t, runDiffFaults(t, true), runDiffFaults(t, false))
}
