package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/engine/module"
	"github.com/innetworkfiltering/vif/internal/faults"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/pipeline"
	"github.com/innetworkfiltering/vif/internal/rules"
	"github.com/innetworkfiltering/vif/internal/telemetry"
)

// Defaults.
const (
	// DefaultRingSize is each shard's ingress ring capacity.
	DefaultRingSize = 4096
	// DefaultBatch is the worker burst size (the engine's dequeue batching,
	// double the classic 32-packet DPDK burst because the worker amortizes
	// a rotation poll per burst).
	DefaultBatch = 64
	// MaxNamespaces bounds attached victim namespaces (Descriptor.NS is a
	// uint16).
	MaxNamespaces = 1 << 16
	// DefaultTombstoneLimit is how many detached namespaces' final
	// counters a long-lived shared engine retains for operators.
	DefaultTombstoneLimit = 64
)

// Errors.
var (
	ErrNotRunning       = errors.New("engine: not running")
	ErrRunning          = errors.New("engine: already running")
	ErrNoShards         = errors.New("engine: no filter shards")
	ErrUnknownNamespace = errors.New("engine: unknown namespace")
	ErrShardMismatch    = errors.New("engine: namespace needs one filter per shard")
)

// Sink observes packets the filter allowed, called on the shard's worker
// goroutine (keep it cheap; nil discards). The descriptor carries the
// namespace id of the victim it was filtered for.
type Sink func(shard int, d packet.Descriptor)

// Config assembles an Engine.
type Config struct {
	// Filters, when set, become the default namespace (id 0): one enclave
	// shard per filter, with Route/RouteBatch/Sink as its programme. The
	// engine owns attached filters exclusively between Start and Stop (and
	// between attach and detach while running): no other goroutine may call
	// filter methods during that window.
	Filters []*filter.Filter
	// Shards fixes the shard count for an engine assembled empty (no
	// Filters) so victim namespaces can be attached later — the shared
	// multi-victim deployment shape. Ignored when Filters is set (the shard
	// count is then len(Filters)).
	Shards int
	// Route maps a flow to its shard index for the default namespace,
	// returning ok=false when the (untrusted, possibly faulty) balancer
	// drops the packet. Typically lb.Balancer.Route. Nil falls back to
	// five-tuple hashing.
	Route func(packet.FiveTuple) (int, bool)
	// RouteBatch, when set, routes a whole burst of the default namespace
	// in one call (typically lb.Balancer.RouteBatch), writing each
	// descriptor's shard index to shards[i] (-1 when the balancer drops
	// it). InjectBatch prefers it over per-packet Route calls so the
	// balancer can amortize its per-packet costs (the faulty paths' lock,
	// the call overhead) across the burst. Nil falls back to looping Route.
	RouteBatch func(ds []packet.Descriptor, shards []int32)
	// RingSize is each shard's ingress ring capacity. Default
	// DefaultRingSize.
	RingSize int
	// Batch is the worker burst size. Default DefaultBatch.
	Batch int
	// Sink observes allowed packets of every namespace. Nil discards.
	// Namespaces may additionally attach their own sink.
	Sink Sink
	// EPCBytes is each shard machine's usable EPC, apportioned across
	// attached namespaces by rule-set memory weight (enclave.EPCBudgeter).
	// 0 defaults to the first attached filter's platform model.
	EPCBytes int
	// TombstoneLimit bounds the retained history of detached namespaces'
	// final counters (Engine.Tombstones): the newest TombstoneLimit
	// detaches are kept, older ones fall off. 0 defaults to
	// DefaultTombstoneLimit; negative disables retention.
	TombstoneLimit int
	// Telemetry, when set, threads the observability layer through the
	// engine: sampled per-shard stage histograms, journal events for every
	// control action, 1-in-N packet traces, and the engine's metric
	// families registered for /metrics. It must be sized for this engine
	// (telemetry.New with Shards equal to the shard count). Nil disables
	// all instrumentation; the hot path then carries only nil checks.
	Telemetry *telemetry.Telemetry
	// Admission, when set, gates every namespace's ingress behind a
	// weighted token bucket (see AdmissionConfig) so one victim's
	// volumetric flood throttles itself instead of starving its
	// neighbors' ring and EPC shares. Nil disables admission.
	Admission *AdmissionConfig
	// Faults threads the deterministic fault-injection harness through
	// the engine's hooks (ring-full storms, paging spikes, delta-apply
	// failures, module faults). Nil — the production default — disables
	// every hook at the cost of one nil check each.
	Faults *faults.Injector
	// Modules, when set, appends extra burst modules to the default
	// namespace's per-shard chains, after the core stages (so they see
	// verdicts). Called once per shard at attach; instances must not be
	// shared across shards (chains are worker-owned). The capture tap
	// rides here.
	Modules func(shard int) []module.Module
	// LegacyLoop runs every namespace chain as the pre-refactor fused
	// loop — one Filter.ProcessBatch per namespace run — instead of the
	// decomposed classify/sketch/charge stages. The differential
	// equivalence suite and the pipeline-overhead benchmark use it as
	// the fixed-loop oracle; production leaves it false.
	LegacyLoop bool
}

func (c *Config) fillDefaults() {
	if c.RingSize == 0 {
		c.RingSize = DefaultRingSize
	}
	if c.Batch == 0 {
		c.Batch = DefaultBatch
	}
}

// NamespaceConfig attaches one victim's rule namespace to a running (or
// not-yet-started) engine.
type NamespaceConfig struct {
	// Filters holds the victim's enclave filters, one per engine shard
	// (len must equal Engine.Shards()). The engine owns them exclusively
	// while the namespace is attached and the engine runs.
	Filters []*filter.Filter
	// Route maps a flow to its shard index (the victim's balancer
	// programme). Nil falls back to five-tuple hashing.
	Route func(packet.FiveTuple) (int, bool)
	// RouteBatch routes a whole burst at once; nil falls back to Route.
	RouteBatch func(ds []packet.Descriptor, shards []int32)
	// Sink observes this namespace's allowed packets (in addition to the
	// engine-wide Config.Sink). Nil discards.
	Sink Sink
	// Weight is the namespace's admission weight when Config.Admission
	// sets an engine-wide TotalPps budget: admitted rates are apportioned
	// weight/Σweights across attached namespaces. <= 0 defaults to 1.
	// Ignored without Config.Admission.
	Weight int
	// AdmitPps, when > 0, caps this namespace's admitted packet rate
	// explicitly, overriding any weighted share — the knob an operator
	// turns on an attacked victim. Ignored without Config.Admission.
	AdmitPps float64
	// Modules appends extra burst modules to this namespace's per-shard
	// chains, after the core stages. Called once per shard at attach (and
	// again on a full ReconfigureNamespace); instances must not be shared
	// across shards.
	Modules func(shard int) []module.Module
}

// rotateTicket asks one worker to act at its next batch boundary: seal the
// ticket's namespace epoch; run an apply closure (a rule-set delta — on
// the worker goroutine, so the filter's single-thread discipline holds
// without parking the data plane); or — for a fence — just acknowledge,
// proving the worker has moved past any burst dispatched under a previous
// view.
type rotateTicket struct {
	ns    *nsShard
	nsID  int
	seq   uint64
	fence bool
	apply func() error
	reply chan shardEpoch
}

type shardEpoch struct {
	log EpochLog
	err error
}

// EpochLog is one (namespace, shard) sealed audit window: authenticated
// snapshots of both packet logs covering exactly the packets the shard
// processed for that victim while the epoch was current.
type EpochLog struct {
	// Namespace is the victim namespace id.
	Namespace int
	// Shard is the shard index.
	Shard int
	// Seq is the epoch sequence number (monotonic per namespace).
	Seq uint64
	// Incoming is the per-source-IP log snapshot (drop-before-filter
	// evidence for neighbors).
	Incoming *filter.SignedSnapshot
	// Outgoing is the per-five-tuple log snapshot (injection/drop-after-
	// filter evidence for the victim).
	Outgoing *filter.SignedSnapshot
}

// nsShard is one (namespace, shard) cell: the victim's filter on that
// shard plus the per-cell counters the worker publishes. The worker-
// written counters share the cell with nothing producer-written, so the
// per-burst updates stay on lines only the owning worker dirties.
type nsShard struct {
	f *filter.Filter
	// chain is the cell's burst-module pipeline (the decomposed
	// classify/sketch/charge stages plus any configured extras, or the
	// legacy fused loop). Immutable once the cell is published; swapped
	// with the copy-on-write views exactly like the filter, so a worker
	// burst always runs one consistent (filter, chain) pair.
	chain *module.Chain
	// sink is the namespace's allowed-packet observer (nil discards),
	// copied here so the worker needs no second table lookup.
	sink Sink

	// baseVirtualNs is the enclave meter reading when the engine took
	// ownership (float64 bits), so NsPerPacket reflects only work done
	// under this engine. Atomic: metrics may be polled concurrently.
	baseVirtualNs atomic.Uint64

	_         [64]byte
	processed atomic.Uint64
	allowed   atomic.Uint64
	dropped   atomic.Uint64
	epochs    atomic.Uint64
	promoted  atomic.Uint64
	_         [24]byte
}

// namespace is one victim's attachment: filters (one per shard), routing
// programme, and independent epoch state.
type namespace struct {
	id         int
	route      func(packet.FiveTuple) (int, bool)
	routeBatch func(ds []packet.Descriptor, shards []int32)
	sink       Sink
	shards     []*nsShard // indexed by shard id
	// adm is the victim's ingress admission gate (nil without
	// Config.Admission). Like the nsShard cells it survives routing
	// swaps: successor namespace objects carry the same pointer.
	adm *admission

	mu       sync.Mutex // serializes this namespace's rotations vs its detach
	epoch    uint64     // last sealed epoch seq, under mu
	detached bool       // set under mu once DetachNamespace wins
}

// shard is one worker: an MPSC ring drained into per-namespace filters.
type shard struct {
	id   int
	ring *pipeline.MPSCRing

	// views is the flat copy-on-write namespace table, indexed by
	// namespace id (nil holes for detached ids). The worker loads it once
	// per burst; attach/detach swap it with one atomic store.
	views atomic.Pointer[[]*nsShard]

	rotate chan *rotateTicket
	done   chan struct{}

	// verdicts is the pooled verdict slice the worker hands the chain
	// every burst (allocated once, reused for the shard's lifetime).
	verdicts []filter.Verdict

	// bctx is the worker's burst-module scratch arena, reset per
	// namespace run and handed to the cell's chain.
	bctx module.BurstCtx

	// claimed is the worker-owned scratch holding packet traces claimed
	// from the tracer for the current burst (normally empty; tracing is
	// 1-in-N inject batches).
	claimed []claimedTrace

	// Panic-supervision scratch, touched only by the owning worker (its
	// loop and the recover in the same goroutine): how much of the burst
	// in flight has been attributed to verdict counters, and which ticket
	// is being served, so a panicked burst is folded into processed/
	// faulted and an in-flight control caller gets an error instead of a
	// hang.
	inflight  int
	accounted int
	curTicket *rotateTicket

	// Atomic metrics block. The worker-owned counters and the producer-
	// written backpressure counter live on separate cache lines: producers
	// hammering backpressure on a full ring must not invalidate the line
	// the worker updates once per burst (the false sharing that made
	// adding shards slow the whole fleet down).
	_         [64]byte
	processed atomic.Uint64 // worker-written line
	allowed   atomic.Uint64
	dropped   atomic.Uint64
	epochs    atomic.Uint64
	batches   atomic.Uint64
	promoted  atomic.Uint64
	orphaned  atomic.Uint64 // packets whose namespace detached while they sat in the ring
	faulted   atomic.Uint64 // packets lost to a worker panic mid-burst (counted processed, no verdict)
	restarts  atomic.Uint64 // worker panic recoveries
	_         [56]byte
	// backpressure is written by any producer whose enqueue hit a full
	// ring — the only cross-thread counter in the block.
	backpressure atomic.Uint64
	// bpActive edge-detects backpressure onset for the journal: the first
	// producer to hit the full ring CASes it true (and emits one event);
	// the worker clears it when the ring drains. It shares the producer-
	// written line deliberately — producers only touch it on the enqueue-
	// failure slow path.
	bpActive atomic.Bool
	_        [55]byte
}

// claimedTrace is one pending packet trace a worker claimed out of the
// current burst, remembered until the burst's verdicts are known.
type claimedTrace struct {
	idx int
	p   *telemetry.Pending
}

// Engine runs the sharded multi-victim data plane.
type Engine struct {
	cfg    Config
	shards []*shard

	// nss is the engine-level copy-on-write namespace table (indexed by
	// namespace id, nil holes), consulted by the injection paths for
	// routing. Swapped wholesale under nsMu.
	nss atomic.Pointer[[]*namespace]

	// budget apportions each shard machine's EPC across attached
	// namespaces, weighted by rule-set memory. Created lazily at the
	// first attach (the EPC size may come from that filter's platform
	// model) and only ever written under nsMu; an atomic pointer because
	// the metrics paths read it without any lock.
	budget atomic.Pointer[enclave.EPCBudgeter]

	// scratch pools the per-producer scatter buffers InjectBatch stages
	// bursts in, so the hot path allocates nothing per call.
	scratch sync.Pool

	// accepted and lbDrops are each on their own cache line: every
	// producer updates accepted once per burst, and sharing its line with
	// anything else would put that write on every producer's critical path.
	_        [64]byte
	accepted atomic.Uint64 // descriptors successfully enqueued
	_        [56]byte
	lbDrops  atomic.Uint64 // descriptors a namespace's balancer discarded
	_        [56]byte
	nsDrops  atomic.Uint64 // descriptors stamped with an unattached namespace
	_        [56]byte

	// tombMu guards tombstones, the bounded history of detached
	// namespaces' final counters (oldest first). Its own mutex: readers
	// (Tombstones) must not contend with nsMu-holding control actions.
	tombMu     sync.Mutex
	tombstones []NamespaceTombstone

	// lifeMu orders the lifecycle against in-flight control actions:
	// Start/Stop take the write side; rotations and attach/detach fences
	// take the read side, so any number of victims rotate concurrently
	// while workers are guaranteed alive to serve their tickets.
	lifeMu sync.RWMutex
	// nsMu serializes namespace-table mutations (attach/detach/
	// reconfigure).
	nsMu sync.Mutex

	running  atomic.Bool
	stopping atomic.Bool // set at Stop entry: Inject refuses from here on
	stopped  bool
	stop     chan struct{}
	started  time.Time

	// tel is the observability layer (Config.Telemetry; nil disables).
	// tracer and traceMask are cached off it so the injection paths pay a
	// nil check, not two pointer chases, per burst.
	tel       *telemetry.Telemetry
	tracer    *telemetry.Tracer
	traceMask uint64
}

// injectScratch is one producer's staging area for a burst: the routing
// output and the per-shard descriptor runs the burst is scattered into
// before each run is flushed with a single ring reservation.
type injectScratch struct {
	shards []int32
	runs   [][]packet.Descriptor
	// traceCtr is this scratch's packet-trace sampling counter. It lives
	// in the pooled scratch — not on the engine — so sampling adds no
	// shared write to the injection path; each pooled scratch samples its
	// own 1-in-N of the bursts it stages.
	traceCtr uint64
}

// shard markers inside injectScratch.shards beyond valid indices.
const (
	shardLBDrop  int32 = -1 // balancer discarded the packet
	shardNSDrop  int32 = -2 // no such namespace attached
	shardAdmDrop int32 = -3 // admission throttled the packet at ingress
)

// New assembles an engine; call Start to launch the workers. When
// cfg.Filters is set they become namespace 0 (the single-victim shape);
// an empty engine (cfg.Shards > 0) starts with no namespaces and serves
// whatever AttachNamespace installs.
func New(cfg Config) (*Engine, error) {
	cfg.fillDefaults()
	n := len(cfg.Filters)
	if n == 0 {
		n = cfg.Shards
	}
	if n == 0 {
		return nil, ErrNoShards
	}
	if cfg.Batch < 1 {
		return nil, fmt.Errorf("engine: batch size %d", cfg.Batch)
	}
	e := &Engine{cfg: cfg, tel: cfg.Telemetry}
	if e.tel != nil {
		if e.tel.Shards() != n {
			return nil, fmt.Errorf("engine: telemetry sized for %d shards, engine has %d", e.tel.Shards(), n)
		}
		e.tracer = e.tel.Tracer()
		if mask, ok := e.tracer.SampleMask(); ok {
			e.traceMask = mask
		}
		e.registerCollector()
	}
	e.scratch.New = func() any {
		return &injectScratch{runs: make([][]packet.Descriptor, n)}
	}
	for i := 0; i < n; i++ {
		ring, err := pipeline.NewMPSCRing(cfg.RingSize)
		if err != nil {
			return nil, err
		}
		s := &shard{
			id:     i,
			ring:   ring,
			rotate: make(chan *rotateTicket, 1),
			done:   make(chan struct{}),
		}
		empty := make([]*nsShard, 0)
		s.views.Store(&empty)
		e.shards = append(e.shards, s)
	}
	emptyNS := make([]*namespace, 0)
	e.nss.Store(&emptyNS)
	if len(cfg.Filters) > 0 {
		if _, err := e.AttachNamespace(NamespaceConfig{
			Filters:    cfg.Filters,
			Route:      cfg.Route,
			RouteBatch: cfg.RouteBatch,
			Modules:    cfg.Modules,
		}); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Telemetry returns the engine's observability layer (nil when disabled).
// Session/cluster layers emit their own events — audits, for one — through
// its journal.
func (e *Engine) Telemetry() *telemetry.Telemetry { return e.tel }

// emit journals one structured event; a no-op without telemetry.
func (e *Engine) emit(t telemetry.EventType, ns, shard int, detail string) {
	e.tel.Journal().Emit(telemetry.Event{Type: t, NS: ns, Shard: shard, Detail: detail})
}

// noteBackpressure edge-detects a shard ring filling up: the first
// producer refused by the full ring journals the onset; the worker clears
// the flag once the ring drains (emitting the matching off event). Called
// only on the enqueue-failure slow path.
func (e *Engine) noteBackpressure(s *shard) {
	if e.tel == nil {
		return
	}
	if s.bpActive.CompareAndSwap(false, true) {
		e.emit(telemetry.EvBackpressureOn, -1, s.id, "ring full")
	}
}

// Filter returns shard i's default-namespace filter (nil when namespace 0
// is not attached). For attestation and post-Stop queries; do not call
// filter methods while the engine runs.
func (e *Engine) Filter(i int) *filter.Filter {
	ns := e.lookup(0)
	if ns == nil {
		return nil
	}
	return ns.shards[i].f
}

// NamespaceFilters returns a namespace's filters in shard order, or nil if
// it is not attached. Same ownership caveat as Filter.
func (e *Engine) NamespaceFilters(ns int) []*filter.Filter {
	n := e.lookup(ns)
	if n == nil {
		return nil
	}
	out := make([]*filter.Filter, len(n.shards))
	for i, t := range n.shards {
		out[i] = t.f
	}
	return out
}

// Namespaces returns the attached namespace ids in ascending order.
func (e *Engine) Namespaces() []int {
	nss := *e.nss.Load()
	out := make([]int, 0, len(nss))
	for id, ns := range nss {
		if ns != nil {
			out = append(out, id)
		}
	}
	return out
}

// lookup resolves a namespace id against the current table (nil if
// detached or never attached).
func (e *Engine) lookup(id int) *namespace {
	nss := *e.nss.Load()
	if id < 0 || id >= len(nss) {
		return nil
	}
	return nss[id]
}

// buildNamespace validates a NamespaceConfig and assembles the namespace
// object (routing defaults mirror the engine's historical single-victim
// behavior).
func (e *Engine) buildNamespace(id int, cfg NamespaceConfig) (*namespace, error) {
	n := len(e.shards)
	if len(cfg.Filters) != n {
		return nil, fmt.Errorf("%w: got %d filters for %d shards", ErrShardMismatch, len(cfg.Filters), n)
	}
	ns := &namespace{
		id:         id,
		route:      cfg.Route,
		routeBatch: cfg.RouteBatch,
		sink:       cfg.Sink,
		shards:     make([]*nsShard, n),
		adm:        newAdmission(e.cfg.Admission, cfg.Weight, cfg.AdmitPps),
	}
	for i, f := range cfg.Filters {
		if f == nil {
			return nil, fmt.Errorf("engine: namespace shard %d: nil filter", i)
		}
		t := &nsShard{f: f, sink: cfg.Sink}
		t.baseVirtualNs.Store(math.Float64bits(f.Enclave().VirtualNs()))
		// Each filter gets its own recorder into its shard's stage block
		// (the filter thread and the worker thread must not share one).
		// Set before the view is published, so the store is ordered ahead
		// of any worker ProcessBatch call.
		f.SetStageRecorder(e.tel.Recorder(i))
		// The cell's module chain: the decomposed core stages (or the
		// legacy fused loop), then any configured extras. Built per cell
		// so chains swap with the copy-on-write views.
		var mods []module.Module
		if e.cfg.LegacyLoop {
			mods = append(mods, &module.Fused{F: f})
		} else {
			mods = append(mods, &module.Classify{F: f}, &module.Sketch{F: f}, &module.Charge{F: f})
		}
		if cfg.Modules != nil {
			mods = append(mods, cfg.Modules(i)...)
		}
		t.chain = module.NewChain(e.cfg.Faults, mods...)
		ns.shards[i] = t
	}
	ns.finishRouting(n)
	return ns, nil
}

// finishRouting fills the namespace's routing defaults for an n-shard
// engine (shared by attach and the delta-reconfigure routing swap).
func (ns *namespace) finishRouting(n int) {
	if ns.route == nil {
		ns.route = func(t packet.FiveTuple) (int, bool) {
			return int(t.Hash64() % uint64(n)), true
		}
		if ns.routeBatch == nil {
			// Both hooks defaulted: the five-tuple hash route is pure, so a
			// run of consecutive packets of one flow (a packet train) is
			// routed once — a 16-byte compare instead of a hash per packet.
			// A user-supplied Route is NOT run-cached below: it may be
			// impure (fault injection drops per packet), so it is called
			// per packet.
			ns.routeBatch = func(ds []packet.Descriptor, shards []int32) {
				for i := range ds {
					if i > 0 && ds[i].Tuple == ds[i-1].Tuple {
						shards[i] = shards[i-1]
						continue
					}
					shards[i] = int32(ds[i].Tuple.Hash64() % uint64(n))
				}
			}
		}
	}
	if ns.routeBatch == nil {
		route := ns.route
		ns.routeBatch = func(ds []packet.Descriptor, shards []int32) {
			for i := range ds {
				j, ok := route(ds[i].Tuple)
				if !ok {
					shards[i] = shardLBDrop
					continue
				}
				shards[i] = int32(j)
			}
		}
	}
}

// AttachNamespace installs a victim namespace — one filter per shard plus
// its routing programme — and returns its namespace id (the value ingress
// stamps into Descriptor.NS). Safe while the engine runs: the shard
// workers observe the new copy-on-write view at their next burst, and the
// injection paths the moment the engine table is swapped. The machine EPC
// budget is re-apportioned across all attached namespaces, weighted by
// rule-set memory.
func (e *Engine) AttachNamespace(cfg NamespaceConfig) (int, error) {
	e.nsMu.Lock()
	defer e.nsMu.Unlock()
	e.lifeMu.RLock()
	defer e.lifeMu.RUnlock()

	cur := *e.nss.Load()
	id := -1
	for i, ns := range cur {
		if ns == nil {
			id = i
			break
		}
	}
	if id < 0 {
		if len(cur) >= MaxNamespaces {
			return 0, fmt.Errorf("engine: namespace limit %d reached", MaxNamespaces)
		}
		id = len(cur)
	}
	ns, err := e.buildNamespace(id, cfg)
	if err != nil {
		return 0, err
	}

	// Publish to the workers first, then to the injection paths: no
	// descriptor can be routed to a namespace a worker cannot dispatch.
	for i, s := range e.shards {
		s.views.Store(cowSet(s.views.Load(), id, ns.shards[i]))
	}
	e.nss.Store(cowSet(&cur, id, ns))
	e.rebalanceEPC()
	e.rebalanceAdmission()
	e.emit(telemetry.EvAttach, id, -1, fmt.Sprintf("filters=%d", len(cfg.Filters)))
	return id, nil
}

// DetachNamespace removes a victim namespace, releases its EPC budget
// share back to the remaining tenants, and returns once no worker will
// touch its filters again (the caller may then reuse them on the serial
// path). The returned NamespaceMetrics is the victim's final, exact
// accounting — taken after the workers quiesced, so nothing can bump it
// afterwards. Descriptors of the namespace still in flight are dropped —
// never misattributed: in-ring packets count as shard "orphaned", and
// injections racing the detach count as engine nsDrops. Concurrent
// RotateEpoch calls on the same namespace either complete before the
// detach or fail with ErrUnknownNamespace.
func (e *Engine) DetachNamespace(id int) (NamespaceMetrics, error) {
	e.nsMu.Lock()
	defer e.nsMu.Unlock()
	e.lifeMu.RLock()
	defer e.lifeMu.RUnlock()

	ns := e.lookup(id)
	if ns == nil {
		return NamespaceMetrics{}, ErrUnknownNamespace
	}
	// Win the race against in-flight rotations of this namespace: after
	// this flag flips under ns.mu, no new rotation sends tickets. The
	// table swap commits under the same critical section, so a rotation
	// that observes detached=true also observes the id gone from the
	// table — it can always tell this detach from a reconfigure (which
	// publishes a fresh object instead) and retries or errors correctly.
	// Injection unpublishes before the workers so no descriptor can be
	// routed to a namespace a worker cannot dispatch.
	ns.mu.Lock()
	ns.detached = true
	cur := *e.nss.Load()
	e.nss.Store(cowSet(&cur, id, (*namespace)(nil)))
	for _, s := range e.shards {
		s.views.Store(cowSet(s.views.Load(), id, (*nsShard)(nil)))
	}
	ns.mu.Unlock()
	e.fence()
	// Quiesced: fold the victim's final counters before anything about it
	// is released.
	final := NamespaceMetrics{NS: id}
	var virtual float64
	for _, t := range ns.shards {
		final.Processed += t.processed.Load()
		final.Allowed += t.allowed.Load()
		final.Dropped += t.dropped.Load()
		final.Epochs += t.epochs.Load()
		final.Promoted += t.promoted.Load()
		virtual += t.virtualDelta()
	}
	if final.Processed > 0 {
		final.NsPerPacket = virtual / float64(final.Processed)
	}
	if ns.adm != nil {
		final.Admitted = ns.adm.admitted.Load()
		final.Throttled = ns.adm.throttled.Load()
		final.AdmitRatePps = ns.adm.rate()
	}
	if budget := e.budget.Load(); budget != nil {
		final.EPCShareBytes = budget.Share(id)
	}
	// The filters leave the engine's ownership: lift their tenant EPC cap
	// and detach their stage recorders.
	for _, t := range ns.shards {
		t.f.Enclave().SetEPCBudget(0)
		t.f.SetStageRecorder(nil)
	}
	if budget := e.budget.Load(); budget != nil {
		budget.Remove(id)
	}
	e.rebalanceEPC()
	e.rebalanceAdmission()
	e.recordTombstone(final)
	e.emit(telemetry.EvDetach, id, -1, fmt.Sprintf(
		"processed=%d allowed=%d dropped=%d tombstoned", final.Processed, final.Allowed, final.Dropped))
	return final, nil
}

// recordTombstone appends a detached victim's final counters to the
// bounded history (oldest evicted first).
func (e *Engine) recordTombstone(final NamespaceMetrics) {
	limit := e.cfg.TombstoneLimit
	if limit == 0 {
		limit = DefaultTombstoneLimit
	}
	if limit < 0 {
		return
	}
	e.tombMu.Lock()
	defer e.tombMu.Unlock()
	if len(e.tombstones) >= limit {
		drop := len(e.tombstones) - limit + 1
		copy(e.tombstones, e.tombstones[drop:])
		e.tombstones = e.tombstones[:len(e.tombstones)-drop]
	}
	e.tombstones = append(e.tombstones, NamespaceTombstone{
		Final:      final,
		DetachedAt: time.Now(),
	})
}

// Tombstones returns the retained final counters of detached victim
// namespaces, oldest first — the audit trail that keeps a long-lived
// shared engine accountable after tenants leave. Each entry is exact: it
// is the NamespaceMetrics DetachNamespace returned, taken after the
// workers quiesced, so no later traffic can have touched it. Bounded by
// Config.TombstoneLimit; namespace ids recycle, so entries for one id can
// recur across tenancies. Safe from any goroutine.
func (e *Engine) Tombstones() []NamespaceTombstone {
	e.tombMu.Lock()
	defer e.tombMu.Unlock()
	return append([]NamespaceTombstone(nil), e.tombstones...)
}

// ReconfigureNamespace atomically replaces a namespace's filters and
// routing programme — the engine-level analogue of Filter.Reconfigure's
// view swap. Counters carry over; epoch state continues (the old filters'
// unsealed log contents are abandoned with them, so rotate first if the
// current window matters). Returns once no worker will touch the old
// filters again.
func (e *Engine) ReconfigureNamespace(id int, cfg NamespaceConfig) error {
	e.nsMu.Lock()
	defer e.nsMu.Unlock()
	e.lifeMu.RLock()
	defer e.lifeMu.RUnlock()

	old := e.lookup(id)
	if old == nil {
		return ErrUnknownNamespace
	}
	ns, err := e.buildNamespace(id, cfg)
	if err != nil {
		return err
	}
	// Retire the old object and publish the new one in one ns.mu critical
	// section: a rotation racing this call either completes on the old
	// filters first (this lock waits for it; the new object then inherits
	// the advanced epoch), or sees detached=true together with the fresh
	// object already in the table and retries against it — it never
	// reports a still-attached namespace as unknown.
	old.mu.Lock()
	ns.epoch = old.epoch
	old.detached = true
	for i, s := range e.shards {
		s.views.Store(cowSet(s.views.Load(), id, ns.shards[i]))
	}
	cur := *e.nss.Load()
	e.nss.Store(cowSet(&cur, id, ns))
	old.mu.Unlock()
	e.fence()
	// Old cells are quiesced now; fold their final counters into the new
	// cells so per-victim totals survive the swap (atomic adds: workers
	// may already be bumping the new cells).
	for i, t := range ns.shards {
		o := old.shards[i]
		t.processed.Add(o.processed.Load())
		t.allowed.Add(o.allowed.Load())
		t.dropped.Add(o.dropped.Load())
		t.epochs.Add(o.epochs.Load())
		t.promoted.Add(o.promoted.Load())
		o.f.Enclave().SetEPCBudget(0)
		o.f.SetStageRecorder(nil)
	}
	if ns.adm != nil && old.adm != nil {
		// Per-victim SLO counters ride through a full reconfigure like the
		// verdict cells; the bucket itself starts fresh under the new
		// weight/cap.
		ns.adm.admitted.Add(old.adm.admitted.Load())
		ns.adm.throttled.Add(old.adm.throttled.Load())
	}
	e.rebalanceEPC()
	e.rebalanceAdmission()
	e.emit(telemetry.EvReconfigure, id, -1, "full rebuild")
	return nil
}

// ReconfigureNamespaceDelta applies an incremental rule-set change to a
// live namespace WITHOUT replacing its filters: each shard's filter.Delta
// is executed by that shard's worker goroutine at its next batch boundary
// (a rotate-channel apply ticket), so the filter's single-thread data-path
// discipline holds while every other namespace — and every other shard of
// this one — keeps filtering. This is the paper's live rule-update path
// (§IV: updates must not stall the enclave data path): a victim pushing
// "add these 50 prefixes, drop these 20" pays the delta's path copies,
// not a full table rebuild, and counters, epochs, and learned state ride
// through (see Filter.ReconfigureDelta for what survives).
//
// deltas must hold one entry per shard, in shard order — rule sets are
// distributed across shards, so each shard receives its own changeset
// (identical entries are fine when every shard holds the full set). When
// route/routeBatch are non-nil the namespace's routing programme is
// swapped after the deltas apply, so a rebuilt balancer programme
// covering the added rules takes over atomically for subsequent
// injections (in-flight bursts complete under the old programme, exactly
// as with ReconfigureNamespace). The EPC budget is rebalanced from the
// filters' changed rule-memory weights before returning.
//
// On error (an invalid delta refused by some shard's filter, or an
// injected fault) the namespace is REPAIRED AUTOMATICALLY: every shard is
// rolled back to its pre-delta rule view through the full-rebuild oracle
// path (Filter.Reconfigure on the worker goroutine), a delta_rollback
// event is journaled, and the error is returned. The rollback restores
// the rule sets exactly; learned exact-match state and pending
// promotions are sacrificed, as any full reconfigure does. The routing
// swap is skipped in that case.
func (e *Engine) ReconfigureNamespaceDelta(id int, deltas []filter.Delta, route func(packet.FiveTuple) (int, bool), routeBatch func(ds []packet.Descriptor, shards []int32)) error {
	e.nsMu.Lock()
	defer e.nsMu.Unlock()
	e.lifeMu.RLock()
	defer e.lifeMu.RUnlock()

	ns := e.lookup(id)
	if ns == nil {
		return ErrUnknownNamespace
	}
	if len(deltas) != len(e.shards) {
		return fmt.Errorf("%w: got %d deltas for %d shards", ErrShardMismatch, len(deltas), len(e.shards))
	}

	// Capture every shard's pre-delta rule view first: on a partial
	// failure the rollback below restores exactly this, even on shards
	// whose filter state a failed apply corrupted.
	saved := make([]savedRules, len(e.shards))
	for i := range e.shards {
		f := ns.shards[i].f
		saved[i] = savedRules{set: f.Rules(), foreign: f.ForeignRules()}
	}

	var errs []error
	if e.running.Load() {
		tickets := make([]*rotateTicket, len(e.shards))
		for i, s := range e.shards {
			f, d := ns.shards[i].f, deltas[i]
			t := &rotateTicket{
				apply: func() error {
					if e.cfg.Faults.Should(faults.DeltaApply) {
						return fmt.Errorf("engine: delta apply: %w", faults.ErrInjected)
					}
					return f.ReconfigureDelta(d)
				},
				reply: make(chan shardEpoch, 1),
			}
			tickets[i] = t
			s.rotate <- t
		}
		for i, t := range tickets {
			if se := <-t.reply; se.err != nil {
				errs = append(errs, fmt.Errorf("engine: shard %d delta: %w", i, se.err))
			}
		}
	} else {
		// Workers are not running: the control plane owns the filters.
		for i := range e.shards {
			if e.cfg.Faults.Should(faults.DeltaApply) {
				errs = append(errs, fmt.Errorf("engine: shard %d delta: %w", i, faults.ErrInjected))
				continue
			}
			if err := ns.shards[i].f.ReconfigureDelta(deltas[i]); err != nil {
				errs = append(errs, fmt.Errorf("engine: shard %d delta: %w", i, err))
			}
		}
	}
	if len(errs) > 0 {
		// Partial failure: some shards applied, others refused (or were
		// left mid-apply). Roll every shard back to its captured pre-delta
		// view through the full-rebuild path, on the worker goroutines, so
		// the namespace is never left split-brained; then rebalance EPC
		// from the restored weights and surface the error (routing swap
		// skipped).
		rbErrs := e.rollbackDelta(ns, saved)
		e.rebalanceEPC()
		e.emit(telemetry.EvDeltaRollback, id, -1, fmt.Sprintf(
			"failed_shards=%d rollback_errs=%d", len(errs), len(rbErrs)))
		if len(rbErrs) > 0 {
			errs = append(errs, rbErrs...)
			return fmt.Errorf("engine: delta failed and rollback incomplete: %w", errors.Join(errs...))
		}
		return fmt.Errorf("engine: delta failed, namespace rolled back to pre-delta rules: %w", errors.Join(errs...))
	}

	if route != nil || routeBatch != nil {
		// Swap only the routing programme: a successor namespace object
		// sharing the same cells (filters, counters, admission gate),
		// published with the same retire-then-commit critical section
		// ReconfigureNamespace uses so concurrent rotations retry against
		// the successor. No fence and no counter folding — the workers'
		// views are unchanged.
		ns2 := &namespace{id: id, route: route, routeBatch: routeBatch, sink: ns.sink, shards: ns.shards, adm: ns.adm}
		ns2.finishRouting(len(e.shards))
		ns.mu.Lock()
		ns2.epoch = ns.epoch
		ns.detached = true
		cur := *e.nss.Load()
		e.nss.Store(cowSet(&cur, id, ns2))
		ns.mu.Unlock()
	}
	e.rebalanceEPC()
	if e.tel != nil {
		adds, removes := 0, 0
		for i := range deltas {
			adds += len(deltas[i].Adds)
			removes += len(deltas[i].Removes)
		}
		e.emit(telemetry.EvReconfigureDelta, id, -1, fmt.Sprintf(
			"adds=%d removes=%d routing_swap=%t", adds, removes, route != nil || routeBatch != nil))
	}
	return nil
}

// savedRules is one shard's captured pre-delta rule view — everything
// Filter.Reconfigure needs to restore it.
type savedRules struct {
	set, foreign *rules.Set
}

// rollbackDelta restores every shard of a namespace to its captured
// pre-delta view via the full-rebuild path, on the worker goroutines when
// they run (the same apply-ticket discipline as the delta itself), so a
// partial ReconfigureNamespaceDelta failure never leaves the namespace
// split-brained. Called under nsMu + lifeMu.RLock.
func (e *Engine) rollbackDelta(ns *namespace, saved []savedRules) []error {
	var errs []error
	if e.running.Load() {
		tickets := make([]*rotateTicket, len(e.shards))
		for i, s := range e.shards {
			f, sv := ns.shards[i].f, saved[i]
			t := &rotateTicket{
				apply: func() error { return f.Reconfigure(sv.set, sv.foreign) },
				reply: make(chan shardEpoch, 1),
			}
			tickets[i] = t
			s.rotate <- t
		}
		for i, t := range tickets {
			if se := <-t.reply; se.err != nil {
				errs = append(errs, fmt.Errorf("engine: shard %d rollback: %w", i, se.err))
			}
		}
		return errs
	}
	for i := range e.shards {
		if err := ns.shards[i].f.Reconfigure(saved[i].set, saved[i].foreign); err != nil {
			errs = append(errs, fmt.Errorf("engine: shard %d rollback: %w", i, err))
		}
	}
	return errs
}

// cowSet returns a copy of *p with index id set to v, growing as needed —
// the copy-on-write step behind every namespace table swap.
func cowSet[T any](p *[]T, id int, v T) *[]T {
	old := *p
	n := len(old)
	if id >= n {
		n = id + 1
	}
	next := make([]T, n)
	copy(next, old)
	next[id] = v
	return &next
}

// fence waits until every live worker has passed a batch boundary, which
// proves no burst dispatched under a previously published view is still
// in flight. No-op when the workers are not running (then nobody touches
// views at all — lifeMu excludes Stop's final sweep).
func (e *Engine) fence() {
	if !e.running.Load() {
		return
	}
	tickets := make([]*rotateTicket, len(e.shards))
	for i, s := range e.shards {
		t := &rotateTicket{fence: true, reply: make(chan shardEpoch, 1)}
		tickets[i] = t
		s.rotate <- t
	}
	for _, t := range tickets {
		<-t.reply
	}
}

// RebalanceEPC re-apportions the machine EPC across attached namespaces
// from their enclaves' OBSERVED working sets — the live demand signal
// behind PagingPressure — instead of the static rule-memory weights the
// attach-time split starts from. A victim whose learned flows, pending
// promotions, and packet logs outgrow its share pulls budget toward
// itself at the operator's (or audit cadence's) next call, which is what
// drives its paging pressure back down; a shrinking victim releases
// budget the same way. Safe to call from any goroutine at any time: it
// takes only the namespace-table lock, so it composes with a concurrent
// rotation or audit without ordering against the engine lifecycle.
func (e *Engine) RebalanceEPC() {
	e.nsMu.Lock()
	defer e.nsMu.Unlock()
	e.rebalanceEPC()
}

// rebalanceEPC recomputes every namespace's EPC share and pushes the
// allowance into each enclave, where the cost model prices accesses
// beyond it as paging. The weight is the namespace's observed demand:
// the sum of its enclaves' live working sets (enclave.MemoryUsed — rule
// tables plus learned flows plus the packet logs), which at attach time
// equals the rule-memory footprint and then tracks what the victim
// actually keeps resident. A PagingSpike fault inflates one victim's
// demand to chaos-test the reapportionment. Called under nsMu (the only
// budget writer).
func (e *Engine) rebalanceEPC() {
	nss := *e.nss.Load()
	budget := e.budget.Load()
	if budget == nil {
		epc := e.cfg.EPCBytes
		if epc == 0 {
			for _, ns := range nss {
				if ns != nil {
					epc = ns.shards[0].f.Enclave().Model().EPCBytes
					break
				}
			}
		}
		if epc == 0 {
			return
		}
		budget = enclave.NewEPCBudgeter(epc)
		e.budget.Store(budget)
	}
	for _, ns := range nss {
		if ns == nil {
			continue
		}
		w := 0
		for _, t := range ns.shards {
			w += t.f.Enclave().MemoryUsed()
		}
		if e.cfg.Faults.Should(faults.PagingSpike) {
			// Injected paging spike: this victim's working set "blew up"
			// eightfold; the apportionment must absorb it without
			// disturbing the shares-sum-to-EPC invariant.
			w *= 8
		}
		budget.Set(ns.id, w)
	}
	attached := 0
	for _, ns := range nss {
		if ns == nil {
			continue
		}
		attached++
		share := budget.Share(ns.id)
		for _, t := range ns.shards {
			t.f.Enclave().SetEPCBudget(share)
		}
	}
	e.emit(telemetry.EvEPCRebalance, -1, -1, fmt.Sprintf(
		"epc_bytes=%d namespaces=%d", budget.EPCBytes(), attached))
}

// EPCShares returns each attached namespace's EPC allowance in bytes.
// Shares sum to exactly the machine EPC whenever a namespace is attached.
func (e *Engine) EPCShares() map[int]int {
	budget := e.budget.Load()
	if budget == nil {
		return map[int]int{}
	}
	return budget.Shares()
}

// EPCBytes returns the per-machine EPC the engine apportions (0 until the
// first namespace attaches when Config.EPCBytes was unset).
func (e *Engine) EPCBytes() int {
	budget := e.budget.Load()
	if budget == nil {
		return e.cfg.EPCBytes
	}
	return budget.EPCBytes()
}

// Start launches one worker goroutine per shard. An engine runs at most
// once; after Stop it cannot be restarted (build a new one — filters can
// be reused once the old engine has fully stopped).
func (e *Engine) Start() error {
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	if e.running.Load() || e.stopped {
		return ErrRunning
	}
	e.stop = make(chan struct{})
	e.started = time.Now()
	for _, ns := range *e.nss.Load() {
		if ns == nil {
			continue
		}
		for _, t := range ns.shards {
			t.baseVirtualNs.Store(math.Float64bits(t.f.Enclave().VirtualNs()))
		}
	}
	e.running.Store(true)
	for _, s := range e.shards {
		go s.run(e)
	}
	e.emit(telemetry.EvEngineStart, -1, -1, fmt.Sprintf("shards=%d", len(e.shards)))
	return nil
}

// Stop drains every shard ring and terminates the workers. Idempotent.
// Producers should stop injecting first (Inject refuses from the moment
// Stop begins); any descriptor accepted before that is still processed —
// by its worker, or by the final sweep below once the workers have
// exited and the filters are safe to drive from this goroutine.
func (e *Engine) Stop() {
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	if !e.running.Load() {
		return
	}
	e.stopping.Store(true)
	close(e.stop)
	for _, s := range e.shards {
		<-s.done
	}
	// Final sweep: a producer that raced Stop's flag may have published
	// entries after its worker's last poll. Len counts claimed-but-
	// unpublished slots too, so spin those few stores out.
	for _, s := range e.shards {
		batch := make([]packet.Descriptor, e.cfg.Batch)
		for s.ring.Len() > 0 {
			if n := s.ring.DequeueBatch(batch); n > 0 {
				s.process(e, batch[:n], nil, false)
			} else {
				runtime.Gosched()
			}
		}
	}
	e.running.Store(false)
	e.stopped = true
	e.emit(telemetry.EvEngineStop, -1, -1, "")
}

// Running reports whether workers are live.
func (e *Engine) Running() bool { return e.running.Load() }

// Inject routes one descriptor to its namespace's shard and enqueues it.
// Safe for any number of concurrent producer goroutines (the rings are
// MPSC). It reports false when the descriptor names an unattached
// namespace (counted as an ns drop — the InjectBatch-racing-Detach case),
// the namespace's balancer dropped the packet, the shard ring is full (a
// backpressure event: the producer drops, as a NIC does when a descriptor
// ring backs up), or the engine is stopping — late injections are refused
// uncounted so the accepted==processed drain invariant holds.
func (e *Engine) Inject(d packet.Descriptor) bool {
	if e.stopping.Load() {
		return false
	}
	ns := e.lookup(int(d.NS))
	if ns == nil {
		e.nsDrops.Add(1)
		return false
	}
	if a := ns.adm; a != nil {
		if a.take(1) == 0 {
			e.noteThrottle(ns.id, a, 1)
			return false
		}
		a.noteAdmitted()
	}
	j, ok := ns.route(d.Tuple)
	if !ok {
		e.lbDrops.Add(1)
		return false
	}
	s := e.shards[j]
	if e.cfg.Faults.Should(faults.RingFull) || !s.ring.Enqueue(d) {
		s.backpressure.Add(1)
		e.noteBackpressure(s)
		return false
	}
	e.accepted.Add(1)
	return true
}

// InjectBatch routes a whole burst, scatters it into per-shard runs, and
// flushes each run with a single ring reservation — one route pass and one
// CAS per (producer, shard, burst) instead of one of each per packet, the
// producer-side analogue of the workers' batched drain. A burst may mix
// namespaces: it is split into namespace runs and each run is routed by
// its own victim's balancer in one call (single-victim producers pay
// exactly one route pass, as before). It returns how many descriptors
// were accepted; the remainder were discarded by a balancer (counted as
// lb drops), stamped with an unattached namespace (counted as ns drops —
// a detach racing the injection), or refused by a full shard ring
// (counted as backpressure, per packet, exactly as scalar Inject would),
// and in all cases they are DROPPED, as a NIC drops on ring overflow.
// The count is for accounting, not resumption: refusals happen per shard,
// so the unaccepted descriptors may sit anywhere in ds — retrying ds[n:]
// would re-inject accepted packets. A producer that must deliver a burst
// losslessly sizes the rings for it, or falls back to scalar Inject with
// retry. Partial acceptance keeps the accepted==processed drain
// invariant: only descriptors that actually landed in a ring are counted
// as accepted. Safe for any number of concurrent producer goroutines;
// returns 0 without touching any counter once the engine is stopping,
// like Inject.
func (e *Engine) InjectBatch(ds []packet.Descriptor) int {
	if len(ds) == 0 || e.stopping.Load() {
		return 0
	}
	sc := e.scratch.Get().(*injectScratch)
	if cap(sc.shards) < len(ds) {
		sc.shards = make([]int32, len(ds))
	}
	shards := sc.shards[:len(ds)]

	// Packet tracing: 1-in-N inject batches (per pooled scratch) follow
	// their first descriptor through the engine. The unsampled path pays
	// one local increment; the sampled path allocates its Pending here.
	var pend *telemetry.Pending
	if e.tracer != nil {
		sc.traceCtr++
		if sc.traceCtr&e.traceMask == 0 {
			pend = &telemetry.Pending{Trace: telemetry.Trace{
				InjectNS: telemetry.Now(), RulePrio: -1,
			}}
		}
	}

	nss := *e.nss.Load()
	var nsDrops uint64
	for i := 0; i < len(ds); {
		id := ds[i].NS
		j := i + 1
		for j < len(ds) && ds[j].NS == id {
			j++
		}
		var ns *namespace
		if int(id) < len(nss) {
			ns = nss[id]
		}
		if ns == nil {
			for k := i; k < j; k++ {
				shards[k] = shardNSDrop
			}
			nsDrops += uint64(j - i)
		} else {
			// Admission gate, once per namespace run: the throttled tail of
			// the run is marked and never routed — an overdriven victim's
			// excess costs its neighbors a marker write per packet, not a
			// route + ring reservation.
			admit := j - i
			if a := ns.adm; a != nil {
				admit = a.take(j - i)
				if admit < j-i {
					e.noteThrottle(int(id), a, j-i-admit)
					for k := i + admit; k < j; k++ {
						shards[k] = shardAdmDrop
					}
				} else {
					a.noteAdmitted()
				}
			}
			if admit > 0 {
				ns.routeBatch(ds[i:i+admit], shards[i:i+admit])
			}
		}
		i = j
	}
	if pend != nil {
		// The traced descriptor is ds[0]: routed (or not) by the loop
		// above. It is the first descriptor scattered into its shard's
		// run, so below it is accepted iff that run accepts >= 1.
		if j := shards[0]; j >= 0 {
			pend.Hash = ds[0].Tuple.Hash64()
			pend.Trace.Flow = ds[0].Tuple.String()
			pend.Trace.NS = int(ds[0].NS)
			pend.Trace.Shard = int(j)
			pend.Trace.RouteNS = telemetry.Now()
		} else {
			pend = nil // balancer or namespace drop: journey ends here
		}
	}
	var lbDrops uint64
	for i := range ds {
		j := shards[i]
		if j < 0 {
			if j == shardLBDrop {
				lbDrops++
			}
			continue
		}
		sc.runs[j] = append(sc.runs[j], ds[i])
	}
	accepted := 0
	for j := range sc.runs {
		run := sc.runs[j]
		if len(run) == 0 {
			continue
		}
		s := e.shards[j]
		traced := pend != nil && pend.Trace.Shard == j
		if traced {
			// Publish before the enqueue: the worker may dequeue the
			// descriptor the instant it lands, and must find the Pending.
			// After Publish only Abandon may touch pend.
			pend.Trace.EnqueueNS = telemetry.Now()
			e.tracer.Publish(pend)
		}
		n := 0
		if !e.cfg.Faults.Should(faults.RingFull) {
			n = s.ring.EnqueueBatch(run)
		}
		if n < len(run) {
			s.backpressure.Add(uint64(len(run) - n))
			e.noteBackpressure(s)
			if traced && n == 0 {
				// The traced descriptor heads its run: refused with it.
				e.tracer.Abandon(pend)
			}
		}
		accepted += n
		sc.runs[j] = run[:0]
	}
	if lbDrops > 0 {
		e.lbDrops.Add(lbDrops)
	}
	if nsDrops > 0 {
		e.nsDrops.Add(nsDrops)
	}
	if accepted > 0 {
		e.accepted.Add(uint64(accepted))
	}
	e.scratch.Put(sc)
	return accepted
}

// WaitDrained spins until every accepted descriptor has been processed.
// Call after producers finish and before reading final counters or
// rotating a final epoch.
func (e *Engine) WaitDrained() {
	for {
		var processed uint64
		for _, s := range e.shards {
			processed += s.processed.Load()
		}
		if processed >= e.accepted.Load() {
			return
		}
		runtime.Gosched()
	}
}

// RotateEpoch seals the namespace's current epoch on every shard and
// returns the per-shard authenticated log snapshots, ordered by shard
// index. Workers rotate at their next batch boundary; the data plane never
// stops, and rotations of different namespaces proceed concurrently — one
// victim's audit cadence never blocks another's. The returned logs of one
// epoch, merged across shards (bypass.MergeSnapshots), cover exactly the
// packets the fleet processed for this victim between this rotation and
// the previous one.
func (e *Engine) RotateEpoch(id int) ([]EpochLog, error) {
	e.lifeMu.RLock()
	defer e.lifeMu.RUnlock()
	if !e.running.Load() {
		return nil, ErrNotRunning
	}
	var ns *namespace
	for {
		ns = e.lookup(id)
		if ns == nil {
			return nil, ErrUnknownNamespace
		}
		ns.mu.Lock()
		if !ns.detached {
			break
		}
		// Retired object: its detach/reconfigure committed the table swap
		// in the same critical section, so the next lookup either finds
		// the id gone (a real detach — unknown) or the reconfigured
		// replacement (retry against it).
		ns.mu.Unlock()
	}
	defer ns.mu.Unlock()
	ns.epoch++
	seq := ns.epoch
	tickets := make([]*rotateTicket, len(e.shards))
	for i, s := range e.shards {
		t := &rotateTicket{
			ns:    ns.shards[i],
			nsID:  id,
			seq:   seq,
			reply: make(chan shardEpoch, 1),
		}
		tickets[i] = t
		s.rotate <- t
	}
	logs := make([]EpochLog, len(e.shards))
	for i, t := range tickets {
		se := <-t.reply
		if se.err != nil {
			return nil, fmt.Errorf("engine: shard %d rotate: %w", i, se.err)
		}
		logs[i] = se.log
	}
	return logs, nil
}

// Epoch returns a namespace's last sealed epoch sequence number (0 when
// the namespace is unknown).
func (e *Engine) Epoch(id int) uint64 {
	ns := e.lookup(id)
	if ns == nil {
		return 0
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.epoch
}

// run is the shard worker supervisor: it launches the loop and re-enters
// it after a recovered panic, so a poisoned packet, a panicking sink, or
// a filter bug degrades one burst — accounted as faulted, journaled as a
// worker_restart — instead of silently killing the shard and parking the
// data plane. Views, the ring, and every counter survive the restart
// untouched.
func (s *shard) run(e *Engine) {
	defer close(s.done)
	batch := make([]packet.Descriptor, e.cfg.Batch)
	rec := e.tel.Recorder(s.id)
	for s.loop(e, batch, rec) {
	}
}

// recoverWorker repairs the books after a worker panic: an in-flight
// control ticket gets an error reply (its caller must not hang on a
// channel nobody will ever send to), and the interrupted burst's
// unattributed remainder is folded into processed — as faulted, since no
// verdict exists for it — so the accepted==processed drain invariant
// holds exactly across the restart.
func (s *shard) recoverWorker(e *Engine, r any) {
	if t := s.curTicket; t != nil {
		s.curTicket = nil
		t.reply <- shardEpoch{err: fmt.Errorf("engine: shard %d worker panic: %v", s.id, r)}
	}
	if n := s.inflight; n > 0 {
		if rem := n - s.accounted; rem > 0 {
			s.faulted.Add(uint64(rem))
		}
		s.processed.Add(uint64(n))
		s.inflight, s.accounted = 0, 0
	}
	s.restarts.Add(1)
	e.emit(telemetry.EvWorkerRestart, -1, s.id, fmt.Sprintf("recovered: %v", r))
}

// loop is one supervised incarnation of the worker: burst-dequeue,
// filter, honor rotation and fence tickets at batch boundaries, drain on
// stop. It returns false on clean shutdown; a panic anywhere inside is
// recovered and accounted, and the supervisor re-enters. With telemetry
// the worker holds its own stage recorder: a sampled burst additionally
// pays the clock reads bounding its stages; every other burst pays one
// counter increment (Sample) and one atomic tracer load (inside process).
func (s *shard) loop(e *Engine, batch []packet.Descriptor, rec *telemetry.StageRecorder) (again bool) {
	defer func() {
		if r := recover(); r != nil {
			s.recoverWorker(e, r)
			again = true
		}
	}()
	var waitStart time.Time
	waiting := false
	for {
		n := s.ring.DequeueBatch(batch)
		if n > 0 {
			sampled := rec.Sample()
			if waiting {
				waiting = false
				if sampled {
					rec.Record(telemetry.StageDequeueWait, time.Since(waitStart))
				}
			}
			s.process(e, batch[:n], rec, sampled)
			s.drainTickets(e)
			continue
		}
		select {
		case t := <-s.rotate:
			s.serveTicket(e, t)
		case <-e.stop:
			// Final drain: producers may have raced descriptors in after
			// the stop signal.
			for {
				n := s.ring.DequeueBatch(batch)
				if n == 0 {
					return
				}
				s.process(e, batch[:n], rec, false)
			}
		default:
			if rec != nil {
				if !waiting {
					waiting = true
					waitStart = time.Now()
				}
				// The ring is empty: any backpressure episode is over.
				if s.bpActive.Load() && s.bpActive.CompareAndSwap(true, false) {
					e.emit(telemetry.EvBackpressureOff, -1, s.id, "ring drained")
				}
			}
			runtime.Gosched()
		}
	}
}

// drainTickets serves every pending ticket at a batch boundary, so
// concurrent rotations of several namespaces all land between the same
// two bursts instead of one per burst.
func (s *shard) drainTickets(e *Engine) {
	for {
		select {
		case t := <-s.rotate:
			s.serveTicket(e, t)
		default:
			return
		}
	}
}

func (s *shard) serveTicket(e *Engine, t *rotateTicket) {
	// Remember the ticket across the call: if serving it panics (an apply
	// closure, a snapshot), the recovery path replies with the error so
	// the control-plane caller never hangs. Replies are buffered, and
	// every path below replies exactly once as its last action, so the
	// recovery reply can never double-send.
	s.curTicket = t
	switch {
	case t.fence:
		t.reply <- shardEpoch{}
	case t.apply != nil:
		t.reply <- shardEpoch{err: t.apply()}
	default:
		s.doRotate(e, t)
	}
	s.curTicket = nil
}

// process pushes one burst through the per-namespace module chains,
// splitting it into namespace runs: each run is one chain execution over
// the worker's burst arena — one pooled verdict slice, one cost-meter
// charge — so the multi-victim dispatch costs a 2-byte compare per
// packet and one atomic view load per burst, nothing on the per-packet
// path. Packets of detached namespaces are dropped and counted as
// orphaned (never attributed to any victim). Verdict counters publish
// per run (worker-owned lines, so the extra adds are cheap) and
// inflight/accounted track progress, so a panic mid-burst — including a
// panic inside a module — leaves recoverWorker an exact picture:
// completed runs keep their verdicts, the remainder counts as faulted.
func (s *shard) process(e *Engine, batch []packet.Descriptor, rec *telemetry.StageRecorder, sampled bool) {
	views := *s.views.Load()
	s.inflight, s.accounted = len(batch), 0

	// Packet tracing: one atomic load per burst; only when a sampled
	// descriptor is actually in flight does the worker hash-scan the burst
	// to claim it (DequeueNS now, verdict after its run is processed).
	s.claimed = s.claimed[:0]
	if e.tracer.Outstanding() {
		now := telemetry.Now()
		for i := range batch {
			if p := e.tracer.Claim(batch[i].Tuple.Hash64(), s.id); p != nil {
				p.Trace.DequeueNS = now
				s.claimed = append(s.claimed, claimedTrace{idx: i, p: p})
			}
		}
	}

	// Stage timing on sampled bursts: StageFlush is everything process
	// adds around the filter — dispatch, sink fanout, counter publication
	// — so the burst total minus the timed ProcessBatch calls.
	var start time.Time
	var filterTime time.Duration
	if sampled {
		start = time.Now()
	}

	for i := 0; i < len(batch); {
		id := batch[i].NS
		j := i + 1
		for j < len(batch) && batch[j].NS == id {
			j++
		}
		run := batch[i:j]
		var t *nsShard
		if int(id) < len(views) {
			t = views[id]
		}
		if t == nil {
			s.orphaned.Add(uint64(len(run)))
			s.accounted += len(run)
			s.completeTraces(e, t, i, j, batch)
			i = j
			continue
		}
		ctx := &s.bctx
		ctx.Reset(s.id, int(id), run, s.verdicts)
		if sampled {
			fs := time.Now()
			t.chain.Run(ctx, rec, true)
			filterTime += time.Since(fs)
		} else {
			t.chain.Run(ctx, rec, false)
		}
		s.verdicts = ctx.Verdicts
		masked := ctx.MaskedDrops() > 0
		var runAllowed, runDropped uint64
		for k, v := range s.verdicts {
			// A drop-mask bit set after the verdict stage overrides an
			// allow (the verdict stage already folds earlier bits into
			// VerdictDrop); the default chain never masks, so the extra
			// check is off the common path.
			if v == filter.VerdictAllow && !(masked && ctx.Dropped(k)) {
				runAllowed++
				if e.cfg.Sink != nil {
					e.cfg.Sink(s.id, run[k])
				}
				if t.sink != nil {
					t.sink(s.id, run[k])
				}
			} else {
				runDropped++
			}
		}
		t.processed.Add(uint64(len(run)))
		t.allowed.Add(runAllowed)
		t.dropped.Add(runDropped)
		s.allowed.Add(runAllowed)
		s.dropped.Add(runDropped)
		s.accounted += len(run)
		s.completeTraces(e, t, i, j, batch)
		i = j
	}
	s.processed.Add(uint64(len(batch)))
	s.inflight = 0
	s.batches.Add(1)
	if sampled {
		rec.Record(telemetry.StageFlush, time.Since(start)-filterTime)
	}
}

// completeTraces finishes any claimed packet trace whose descriptor sits
// in the just-processed run [i, j): verdict from the run's verdict slice,
// rule provenance from the filter's Explain (we are on the filter's
// thread), both dropped runs and orphaned runs (t == nil) included.
func (s *shard) completeTraces(e *Engine, t *nsShard, i, j int, batch []packet.Descriptor) {
	if len(s.claimed) == 0 {
		return
	}
	for ci := range s.claimed {
		c := &s.claimed[ci]
		if c.p == nil || c.idx < i || c.idx >= j {
			continue
		}
		tr := &c.p.Trace
		tr.VerdictNS = telemetry.Now()
		if t == nil {
			tr.Verdict = "orphaned"
		} else {
			tr.Verdict = s.verdicts[c.idx-i].String()
			_, prio, origin := t.f.Explain(batch[c.idx].Tuple)
			tr.RulePrio = prio
			tr.Rule = origin
		}
		e.tracer.Complete(*tr)
		c.p = nil
	}
}

// doRotate seals the ticket namespace's epoch on this shard:
// authenticated snapshots of both logs, then reset. Runs on the worker
// goroutine, so it is ordered with ProcessBatch calls — no packet
// straddles the epoch boundary.
func (s *shard) doRotate(e *Engine, t *rotateTicket) {
	in, err := t.ns.f.Snapshot(filter.LogIncoming, t.seq)
	if err != nil {
		t.reply <- shardEpoch{err: err}
		return
	}
	out, err := t.ns.f.Snapshot(filter.LogOutgoing, t.seq)
	if err != nil {
		t.reply <- shardEpoch{err: err}
		return
	}
	t.ns.f.ResetLogs()
	// Promote pending flows to exact-match entries at the epoch boundary —
	// the hybrid design's learning step (Appendix F). Promotion is filter-
	// thread state, and the rotation ticket runs on the worker goroutine,
	// so engine mode gets the same periodic batch promotion the serial
	// path performs at rule-update boundaries.
	promoted := uint64(t.ns.f.Promote())
	t.ns.promoted.Add(promoted)
	t.ns.epochs.Add(1)
	s.promoted.Add(promoted)
	s.epochs.Add(1)
	e.emit(telemetry.EvEpochSeal, t.nsID, s.id, fmt.Sprintf("seq=%d promoted=%d", t.seq, promoted))
	t.reply <- shardEpoch{log: EpochLog{
		Namespace: t.nsID,
		Shard:     s.id,
		Seq:       t.seq,
		Incoming:  in,
		Outgoing:  out,
	}}
}
