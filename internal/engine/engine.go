// Package engine is VIF's concurrent data-plane runtime: the scalable
// architecture of §IV-B (Figure 4) executing for real instead of being
// modeled analytically. N enclaved filter shards each run on their own
// worker goroutine, fed by a bounded multi-producer/single-consumer ring
// (package pipeline's MPSCRing) that any number of RX threads may enqueue
// into concurrently. Workers drain their ring in bursts (default 64
// packets), run the stateless filter verdict plus the count-min-sketch log
// updates for each packet, and maintain an atomic metrics block (packets,
// verdicts, queue depth, backpressure events) that the control plane reads
// without synchronizing with the hot path.
//
// Shard assignment is the untrusted load balancer's job: Config.Route is
// typically lb.Balancer.Route, so the rule-distribution output of the
// greedy algorithm (package dist, via package cluster) directly drives
// which shard sees which flow, and a misbehaving balancer is caught by the
// filters' misroute counters exactly as in the single-threaded path.
//
// Epoch rotation solves the audit-consistency problem of a running fleet:
// the victim's bypass detection (package bypass) must compare logs that
// cover an exact packet population, but stopping N shards to snapshot
// would forfeit the paper's line-rate claim. RotateEpoch instead hands
// each worker a rotation ticket that it honors at its next batch boundary:
// the worker snapshots both sketch logs (authenticated, via the enclave's
// MAC key) and resets them, so every packet is logged in exactly one epoch
// per shard and the merged per-epoch snapshots form a consistent audit
// window — without ever parking the data plane.
package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/pipeline"
)

// Defaults.
const (
	// DefaultRingSize is each shard's ingress ring capacity.
	DefaultRingSize = 4096
	// DefaultBatch is the worker burst size (the engine's dequeue batching,
	// double the classic 32-packet DPDK burst because the worker amortizes
	// a rotation poll per burst).
	DefaultBatch = 64
)

// Errors.
var (
	ErrNotRunning = errors.New("engine: not running")
	ErrRunning    = errors.New("engine: already running")
	ErrNoShards   = errors.New("engine: no filter shards")
)

// Sink observes packets the filter allowed, called on the shard's worker
// goroutine (keep it cheap; nil discards).
type Sink func(shard int, d packet.Descriptor)

// Config assembles an Engine.
type Config struct {
	// Filters are the enclave shards, one worker each. The engine owns
	// them exclusively between Start and Stop: no other goroutine may call
	// filter methods while the engine runs.
	Filters []*filter.Filter
	// Route maps a flow to its shard index, returning ok=false when the
	// (untrusted, possibly faulty) balancer drops the packet. Typically
	// lb.Balancer.Route. Nil falls back to five-tuple hashing.
	Route func(packet.FiveTuple) (int, bool)
	// RouteBatch, when set, routes a whole burst in one call (typically
	// lb.Balancer.RouteBatch), writing each descriptor's shard index to
	// shards[i] (-1 when the balancer drops it). InjectBatch prefers it
	// over per-packet Route calls so the balancer can amortize its
	// per-packet costs (the faulty paths' lock, the call overhead) across
	// the burst. Nil falls back to looping Route.
	RouteBatch func(ds []packet.Descriptor, shards []int32)
	// RingSize is each shard's ingress ring capacity. Default
	// DefaultRingSize.
	RingSize int
	// Batch is the worker burst size. Default DefaultBatch.
	Batch int
	// Sink observes allowed packets. Nil discards.
	Sink Sink
}

func (c *Config) fillDefaults() {
	if c.RingSize == 0 {
		c.RingSize = DefaultRingSize
	}
	if c.Batch == 0 {
		c.Batch = DefaultBatch
	}
}

// rotateTicket asks one worker to seal the current epoch at its next batch
// boundary.
type rotateTicket struct {
	seq   uint64
	reply chan shardEpoch
}

type shardEpoch struct {
	log EpochLog
	err error
}

// EpochLog is one shard's sealed audit window: authenticated snapshots of
// both packet logs covering exactly the packets the shard processed while
// the epoch was current.
type EpochLog struct {
	// Shard is the shard index.
	Shard int
	// Seq is the epoch sequence number (monotonic per engine).
	Seq uint64
	// Incoming is the per-source-IP log snapshot (drop-before-filter
	// evidence for neighbors).
	Incoming *filter.SignedSnapshot
	// Outgoing is the per-five-tuple log snapshot (injection/drop-after-
	// filter evidence for the victim).
	Outgoing *filter.SignedSnapshot
}

// shard is one worker: an enclave filter behind an MPSC ring.
type shard struct {
	id   int
	f    *filter.Filter
	ring *pipeline.MPSCRing

	rotate chan *rotateTicket
	done   chan struct{}

	// verdicts is the pooled verdict slice the worker hands ProcessBatch
	// every burst (allocated once, reused for the shard's lifetime).
	verdicts []filter.Verdict

	// baseVirtualNs is the enclave meter reading at Start (float64 bits),
	// so NsPerPacket reflects only work done under this engine (the
	// filters may have served the serial path before). Atomic like the
	// rest of the block: metrics may be polled concurrently with Start.
	baseVirtualNs atomic.Uint64

	// Atomic metrics block. The worker-owned counters and the producer-
	// written backpressure counter live on separate cache lines: producers
	// hammering backpressure on a full ring must not invalidate the line
	// the worker updates once per burst (the false sharing that made
	// adding shards slow the whole fleet down).
	_         [64]byte
	processed atomic.Uint64 // worker-written line
	allowed   atomic.Uint64
	dropped   atomic.Uint64
	epochs    atomic.Uint64
	batches   atomic.Uint64
	promoted  atomic.Uint64
	_         [16]byte
	// backpressure is written by any producer whose enqueue hit a full
	// ring — the only cross-thread counter in the block.
	backpressure atomic.Uint64
	_            [56]byte
}

// Engine runs the sharded data plane.
type Engine struct {
	cfg        Config
	shards     []*shard
	route      func(packet.FiveTuple) (int, bool)
	routeBatch func(ds []packet.Descriptor, shards []int32)

	// scratch pools the per-producer scatter buffers InjectBatch stages
	// bursts in, so the hot path allocates nothing per call.
	scratch sync.Pool

	// accepted and lbDrops are each on their own cache line: every
	// producer updates accepted once per burst, and sharing its line with
	// anything else would put that write on every producer's critical path.
	_        [64]byte
	accepted atomic.Uint64 // descriptors successfully enqueued
	_        [56]byte
	lbDrops  atomic.Uint64 // descriptors the balancer discarded
	_        [56]byte

	mu       sync.Mutex // serializes Start/Stop/RotateEpoch
	running  atomic.Bool
	stopping atomic.Bool // set at Stop entry: Inject refuses from here on
	stopped  bool
	stop     chan struct{}
	epoch    uint64 // last rotated epoch seq, under mu
	started  time.Time
}

// injectScratch is one producer's staging area for a burst: the routing
// output and the per-shard descriptor runs the burst is scattered into
// before each run is flushed with a single ring reservation.
type injectScratch struct {
	shards []int32
	runs   [][]packet.Descriptor
}

// New assembles an engine; call Start to launch the workers.
func New(cfg Config) (*Engine, error) {
	cfg.fillDefaults()
	if len(cfg.Filters) == 0 {
		return nil, ErrNoShards
	}
	if cfg.Batch < 1 {
		return nil, fmt.Errorf("engine: batch size %d", cfg.Batch)
	}
	e := &Engine{cfg: cfg}
	n := len(cfg.Filters)
	e.route = cfg.Route
	if e.route == nil {
		e.route = func(t packet.FiveTuple) (int, bool) {
			return int(t.Hash64() % uint64(n)), true
		}
	}
	e.routeBatch = cfg.RouteBatch
	if e.routeBatch == nil && cfg.Route == nil {
		// Both hooks defaulted: the five-tuple hash route is pure, so a run
		// of consecutive packets of one flow (a packet train) is routed
		// once — a 16-byte compare instead of a hash per packet. A
		// user-supplied Route is NOT run-cached below: it may be impure
		// (fault injection drops per packet), so it is called per packet.
		e.routeBatch = func(ds []packet.Descriptor, shards []int32) {
			for i := range ds {
				if i > 0 && ds[i].Tuple == ds[i-1].Tuple {
					shards[i] = shards[i-1]
					continue
				}
				shards[i] = int32(ds[i].Tuple.Hash64() % uint64(n))
			}
		}
	}
	if e.routeBatch == nil {
		route := e.route
		e.routeBatch = func(ds []packet.Descriptor, shards []int32) {
			for i := range ds {
				j, ok := route(ds[i].Tuple)
				if !ok {
					shards[i] = -1
					continue
				}
				shards[i] = int32(j)
			}
		}
	}
	e.scratch.New = func() any {
		return &injectScratch{runs: make([][]packet.Descriptor, n)}
	}
	for i, f := range cfg.Filters {
		if f == nil {
			return nil, fmt.Errorf("engine: shard %d: nil filter", i)
		}
		ring, err := pipeline.NewMPSCRing(cfg.RingSize)
		if err != nil {
			return nil, err
		}
		e.shards = append(e.shards, &shard{
			id:     i,
			f:      f,
			ring:   ring,
			rotate: make(chan *rotateTicket, 1),
			done:   make(chan struct{}),
		})
	}
	return e, nil
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Filter returns shard i's filter (for attestation and post-Stop queries;
// do not call filter methods while the engine runs).
func (e *Engine) Filter(i int) *filter.Filter { return e.shards[i].f }

// Start launches one worker goroutine per shard. An engine runs at most
// once; after Stop it cannot be restarted (build a new one — filters can
// be reused once the old engine has fully stopped).
func (e *Engine) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running.Load() || e.stopped {
		return ErrRunning
	}
	e.stop = make(chan struct{})
	e.started = time.Now()
	for _, s := range e.shards {
		s.baseVirtualNs.Store(math.Float64bits(s.f.Enclave().VirtualNs()))
	}
	e.running.Store(true)
	for _, s := range e.shards {
		go s.run(e)
	}
	return nil
}

// Stop drains every shard ring and terminates the workers. Idempotent.
// Producers should stop injecting first (Inject refuses from the moment
// Stop begins); any descriptor accepted before that is still processed —
// by its worker, or by the final sweep below once the workers have
// exited and the filters are safe to drive from this goroutine.
func (e *Engine) Stop() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.running.Load() {
		return
	}
	e.stopping.Store(true)
	close(e.stop)
	for _, s := range e.shards {
		<-s.done
	}
	// Final sweep: a producer that raced Stop's flag may have published
	// entries after its worker's last poll. Len counts claimed-but-
	// unpublished slots too, so spin those few stores out.
	for _, s := range e.shards {
		batch := make([]packet.Descriptor, e.cfg.Batch)
		for s.ring.Len() > 0 {
			if n := s.ring.DequeueBatch(batch); n > 0 {
				s.process(e, batch[:n])
			} else {
				runtime.Gosched()
			}
		}
	}
	e.running.Store(false)
	e.stopped = true
}

// Running reports whether workers are live.
func (e *Engine) Running() bool { return e.running.Load() }

// Inject routes one descriptor to its shard and enqueues it. Safe for any
// number of concurrent producer goroutines (the rings are MPSC). It
// reports false when the balancer dropped the packet, the shard ring is
// full (a backpressure event: the producer drops, as a NIC does when a
// descriptor ring backs up), or the engine is stopping — late injections
// are refused uncounted so the accepted==processed drain invariant holds.
func (e *Engine) Inject(d packet.Descriptor) bool {
	if e.stopping.Load() {
		return false
	}
	j, ok := e.route(d.Tuple)
	if !ok {
		e.lbDrops.Add(1)
		return false
	}
	s := e.shards[j]
	if !s.ring.Enqueue(d) {
		s.backpressure.Add(1)
		return false
	}
	e.accepted.Add(1)
	return true
}

// InjectBatch routes a whole burst, scatters it into per-shard runs, and
// flushes each run with a single ring reservation — one route pass and one
// CAS per (producer, shard, burst) instead of one of each per packet, the
// producer-side analogue of the workers' batched drain. It returns how
// many descriptors were accepted; the remainder were either discarded by
// the balancer (counted as lb drops) or refused by a full shard ring
// (counted as backpressure, per packet, exactly as scalar Inject would),
// and in both cases they are DROPPED, as a NIC drops on ring overflow.
// The count is for accounting, not resumption: refusals happen per shard,
// so the unaccepted descriptors may sit anywhere in ds — retrying ds[n:]
// would re-inject accepted packets. A producer that must deliver a burst
// losslessly sizes the rings for it, or falls back to scalar Inject with
// retry. Partial acceptance keeps the accepted==processed drain
// invariant: only descriptors that actually landed in a ring are counted
// as accepted. Safe for any number of concurrent producer goroutines;
// returns 0 without touching any counter once the engine is stopping,
// like Inject.
func (e *Engine) InjectBatch(ds []packet.Descriptor) int {
	if len(ds) == 0 || e.stopping.Load() {
		return 0
	}
	sc := e.scratch.Get().(*injectScratch)
	if cap(sc.shards) < len(ds) {
		sc.shards = make([]int32, len(ds))
	}
	shards := sc.shards[:len(ds)]
	e.routeBatch(ds, shards)
	var lbDrops uint64
	for i := range ds {
		j := shards[i]
		if j < 0 {
			lbDrops++
			continue
		}
		sc.runs[j] = append(sc.runs[j], ds[i])
	}
	accepted := 0
	for j := range sc.runs {
		run := sc.runs[j]
		if len(run) == 0 {
			continue
		}
		s := e.shards[j]
		n := s.ring.EnqueueBatch(run)
		if n < len(run) {
			s.backpressure.Add(uint64(len(run) - n))
		}
		accepted += n
		sc.runs[j] = run[:0]
	}
	if lbDrops > 0 {
		e.lbDrops.Add(lbDrops)
	}
	if accepted > 0 {
		e.accepted.Add(uint64(accepted))
	}
	e.scratch.Put(sc)
	return accepted
}

// WaitDrained spins until every accepted descriptor has been processed.
// Call after producers finish and before reading final counters or
// rotating a final epoch.
func (e *Engine) WaitDrained() {
	for {
		var processed uint64
		for _, s := range e.shards {
			processed += s.processed.Load()
		}
		if processed >= e.accepted.Load() {
			return
		}
		runtime.Gosched()
	}
}

// RotateEpoch seals the current epoch on every shard and returns the
// per-shard authenticated log snapshots, ordered by shard index. Workers
// rotate at their next batch boundary; the data plane never stops. The
// returned logs of one epoch, merged across shards (bypass.MergeSnapshots),
// cover exactly the packets processed between this rotation and the
// previous one.
func (e *Engine) RotateEpoch() ([]EpochLog, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.running.Load() {
		return nil, ErrNotRunning
	}
	e.epoch++
	seq := e.epoch
	tickets := make([]*rotateTicket, len(e.shards))
	for i, s := range e.shards {
		t := &rotateTicket{seq: seq, reply: make(chan shardEpoch, 1)}
		tickets[i] = t
		s.rotate <- t // capacity 1, serialized by e.mu: never blocks
	}
	logs := make([]EpochLog, len(e.shards))
	for i, t := range tickets {
		se := <-t.reply
		if se.err != nil {
			return nil, fmt.Errorf("engine: shard %d rotate: %w", i, se.err)
		}
		logs[i] = se.log
	}
	return logs, nil
}

// Epoch returns the last sealed epoch sequence number.
func (e *Engine) Epoch() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epoch
}

// run is the shard worker loop: burst-dequeue, filter, honor rotation
// tickets at batch boundaries, drain on stop.
func (s *shard) run(e *Engine) {
	defer close(s.done)
	batch := make([]packet.Descriptor, e.cfg.Batch)
	for {
		n := s.ring.DequeueBatch(batch)
		if n > 0 {
			s.process(e, batch[:n])
			select {
			case t := <-s.rotate:
				s.doRotate(t)
			default:
			}
			continue
		}
		select {
		case t := <-s.rotate:
			s.doRotate(t)
		case <-e.stop:
			// Final drain: producers may have raced descriptors in after
			// the stop signal.
			for {
				n := s.ring.DequeueBatch(batch)
				if n == 0 {
					return
				}
				s.process(e, batch[:n])
			}
		default:
			runtime.Gosched()
		}
	}
}

// process pushes one burst through the filter's batch path: one call, one
// pooled verdict slice, one cost-meter charge — the amortization the
// paper's near-constant per-packet work depends on.
func (s *shard) process(e *Engine, batch []packet.Descriptor) {
	s.verdicts = s.f.ProcessBatch(batch, s.verdicts)
	var allowed, dropped uint64
	for i, v := range s.verdicts {
		if v == filter.VerdictAllow {
			allowed++
			if e.cfg.Sink != nil {
				e.cfg.Sink(s.id, batch[i])
			}
		} else {
			dropped++
		}
	}
	s.allowed.Add(allowed)
	s.dropped.Add(dropped)
	s.processed.Add(uint64(len(batch)))
	s.batches.Add(1)
}

// doRotate seals the epoch: authenticated snapshots of both logs, then
// reset. Runs on the worker goroutine, so it is ordered with Process calls
// — no packet straddles the epoch boundary.
func (s *shard) doRotate(t *rotateTicket) {
	in, err := s.f.Snapshot(filter.LogIncoming, t.seq)
	if err != nil {
		t.reply <- shardEpoch{err: err}
		return
	}
	out, err := s.f.Snapshot(filter.LogOutgoing, t.seq)
	if err != nil {
		t.reply <- shardEpoch{err: err}
		return
	}
	s.f.ResetLogs()
	// Promote pending flows to exact-match entries at the epoch boundary —
	// the hybrid design's learning step (Appendix F). Promotion is filter-
	// thread state, and the rotation ticket runs on the worker goroutine,
	// so engine mode gets the same periodic batch promotion the serial
	// path performs at rule-update boundaries.
	s.promoted.Add(uint64(s.f.Promote()))
	s.epochs.Add(1)
	t.reply <- shardEpoch{log: EpochLog{
		Shard:    s.id,
		Seq:      t.seq,
		Incoming: in,
		Outgoing: out,
	}}
}
