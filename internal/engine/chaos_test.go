package engine

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/innetworkfiltering/vif/internal/faults"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
	"github.com/innetworkfiltering/vif/internal/telemetry"
)

// The chaos suite drives the engine through deterministic fault schedules
// (internal/faults) and asserts the robustness invariants that define
// "graceful" degradation:
//
//   - No packet is lost or misattributed: every injected descriptor lands
//     in exactly one counter class (accepted, throttled, backpressure,
//     lb drop, ns drop), and every accepted descriptor is processed.
//   - The data plane never parks: WaitDrained terminates under every
//     schedule, including mid-burst worker panics.
//   - Control-plane failures repair themselves: a failed delta rolls the
//     namespace back to its pre-delta rules on every shard.
//
// All schedules are seeded, so a failure reproduces byte-for-byte.

func chaosTelemetry(shards int) *telemetry.Telemetry {
	return telemetry.New(telemetry.Config{
		Shards: shards, TraceEvery: -1, JournalSize: 512,
	})
}

func journalHas(tel *telemetry.Telemetry, typ telemetry.EventType) bool {
	for _, ev := range tel.Journal().Events() {
		if ev.Type == typ {
			return true
		}
	}
	return false
}

// TestChaosRingFullStorm: with the RingFull point firing on a hashed coin,
// injections are refused as backpressure exactly as a genuinely full ring
// would refuse them — and the accounting identity holds packet-for-packet
// across both injection paths.
func TestChaosRingFullStorm(t *testing.T) {
	set := testRules(t, 64)
	in := faults.New(1)
	in.Enable(faults.RingFull, faults.Spec{Prob: 0.4})
	tel := chaosTelemetry(2)
	eng, err := New(Config{Filters: testFilters(t, set, 2), Telemetry: tel, Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	descs := testDescriptors(t, set, 8192)

	var attempts, accepted uint64
	for lo := 0; lo < len(descs); lo += 128 {
		hi := lo + 128
		if hi > len(descs) {
			hi = len(descs)
		}
		accepted += uint64(eng.InjectBatch(descs[lo:hi]))
		attempts += uint64(hi - lo)
	}
	for i := 0; i < 1024; i++ { // scalar path pays the same hook
		if eng.Inject(descs[i]) {
			accepted++
		}
		attempts++
	}
	eng.WaitDrained()
	eng.Stop()

	if in.Fired(faults.RingFull) == 0 {
		t.Fatal("schedule never fired; the test exercised nothing")
	}
	m := eng.Metrics()
	if m.Accepted != accepted {
		t.Fatalf("engine accepted %d, producers counted %d", m.Accepted, accepted)
	}
	if m.Processed != m.Accepted {
		t.Fatalf("processed %d != accepted %d after drain", m.Processed, m.Accepted)
	}
	if m.Accepted+m.Backpressure != attempts {
		t.Fatalf("lost packets: accepted %d + backpressure %d != attempts %d",
			m.Accepted, m.Backpressure, attempts)
	}
	if !journalHas(tel, telemetry.EvBackpressureOn) {
		t.Fatal("no backpressure_on event for the injected storm")
	}
}

// TestChaosWorkerPanicRecovery: a sink that blows up mid-burst must not
// take the shard down. The supervisor restarts the worker, the panicked
// burst is folded into faulted (counted processed, no verdict), the drain
// invariant holds, and the restarts are journaled.
func TestChaosWorkerPanicRecovery(t *testing.T) {
	set := testRules(t, 64)
	var hits atomic.Uint64
	sink := func(_ int, _ packet.Descriptor) {
		if hits.Add(1)%97 == 0 {
			panic("chaos: sink blew up")
		}
	}
	tel := chaosTelemetry(2)
	eng, err := New(Config{Filters: testFilters(t, set, 2), Sink: sink, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	descs := testDescriptors(t, set, 8192)
	var accepted uint64
	for lo := 0; lo < len(descs); lo += 256 {
		accepted += uint64(eng.InjectBatch(descs[lo : lo+256]))
	}
	eng.WaitDrained() // must terminate: faulted packets count as processed
	if _, err := eng.RotateEpoch(0); err != nil {
		t.Fatalf("rotation after recoveries: %v", err)
	}
	eng.Stop()

	m := eng.Metrics()
	if m.Restarts == 0 {
		t.Fatal("no worker restarts; the panic schedule never tripped")
	}
	if m.Faulted == 0 {
		t.Fatal("restarts without faulted packets: panicked bursts unaccounted")
	}
	if m.Processed != m.Accepted || m.Accepted != accepted {
		t.Fatalf("drain invariant broken: accepted %d (produced %d), processed %d",
			m.Accepted, accepted, m.Processed)
	}
	if got := m.Allowed + m.Dropped + m.Faulted + m.Orphaned; got != m.Processed {
		t.Fatalf("verdict classes %d != processed %d (allowed=%d dropped=%d faulted=%d orphaned=%d)",
			got, m.Processed, m.Allowed, m.Dropped, m.Faulted, m.Orphaned)
	}
	if !journalHas(tel, telemetry.EvWorkerRestart) {
		t.Fatal("no worker_restart event journaled")
	}
}

// TestChaosDeltaApplyRollback: a delta that fails on one shard mid-apply
// (the other shard already committed it) must leave the namespace on its
// pre-delta rules EVERYWHERE — the automatic full-Reconfigure rollback —
// and the data plane must keep filtering afterwards.
func TestChaosDeltaApplyRollback(t *testing.T) {
	set := nsTestRules(t, 32, "192.0.2.0/24", 77)
	in := faults.New(7)
	tel := chaosTelemetry(2)
	eng, err := New(Config{Filters: testFilters(t, set, 2), Telemetry: tel, Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	// TCP/443 flows miss every UDP drop rule: allowed until a delta adds
	// a covering TCP rule. They are the probe for "is the delta active".
	tcp := make([]packet.Descriptor, 512)
	rng := rand.New(rand.NewSource(9))
	victim := packet.MustParseIP("192.0.2.9")
	for i := range tcp {
		tcp[i] = packet.Descriptor{Tuple: packet.FiveTuple{
			SrcIP: rng.Uint32(), DstIP: victim,
			SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 443,
			Proto: packet.ProtoTCP,
		}, Size: 64, Ref: packet.NoRef}
	}
	add := rules.Rule{
		ID: 9001, Src: rules.MustParsePrefix("0.0.0.0/0"),
		Dst: rules.MustParsePrefix("192.0.2.0/24"), Proto: packet.ProtoTCP,
	}
	d := filter.Delta{Adds: []rules.Rule{add}}

	// Every=2: shard 0's apply survives (eval 1), shard 1's fails (eval
	// 2) — the partial-application shape that forces a cross-shard repair.
	in.Enable(faults.DeltaApply, faults.Spec{Every: 2})
	err = eng.ReconfigureNamespaceDelta(0, []filter.Delta{d, d}, nil, nil)
	if err == nil {
		t.Fatal("delta succeeded under an apply fault")
	}
	if !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("error does not report the rollback: %v", err)
	}
	if !journalHas(tel, telemetry.EvDeltaRollback) {
		t.Fatal("no delta_rollback event journaled")
	}

	// The rolled-back namespace must filter as if the delta never
	// happened, on BOTH shards: all TCP probes still pass.
	allowedBefore := eng.Metrics().Allowed
	if n := eng.InjectBatch(tcp); n != len(tcp) {
		t.Fatalf("inject after rollback: %d of %d", n, len(tcp))
	}
	eng.WaitDrained()
	if got := eng.Metrics().Allowed - allowedBefore; got != uint64(len(tcp)) {
		t.Fatalf("rollback incomplete: %d of %d TCP probes allowed (a shard kept the delta)",
			got, len(tcp))
	}

	// With the fault gone the same delta lands, and the probes now drop.
	in.Disable(faults.DeltaApply)
	if err := eng.ReconfigureNamespaceDelta(0, []filter.Delta{d, d}, nil, nil); err != nil {
		t.Fatalf("delta after fault cleared: %v", err)
	}
	droppedBefore := eng.Metrics().Dropped
	eng.InjectBatch(tcp)
	eng.WaitDrained()
	eng.Stop()
	if got := eng.Metrics().Dropped - droppedBefore; got != uint64(len(tcp)) {
		t.Fatalf("delta not active after rollback recovery: %d of %d dropped", got, len(tcp))
	}
	for i := 0; i < 2; i++ {
		if got := eng.Filter(i).Rules().Len(); got != set.Len()+1 {
			t.Fatalf("shard %d holds %d rules, want %d", i, got, set.Len()+1)
		}
	}
}

// TestChaosPagingSpikeRebalance: an injected paging spike inflates one
// victim's observed demand; the reapportionment must follow the demand
// while the shares keep summing to exactly the machine EPC.
func TestChaosPagingSpikeRebalance(t *testing.T) {
	const epc = 64 << 20
	setA := nsTestRules(t, 100, "192.0.2.0/24", 11)
	setB := nsTestRules(t, 100, "198.51.100.0/24", 12)
	in := faults.New(3)
	eng, err := New(Config{Shards: 2, EPCBytes: epc, Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	nsA, err := eng.AttachNamespace(NamespaceConfig{Filters: testFilters(t, setA, 2)})
	if err != nil {
		t.Fatal(err)
	}
	nsB, err := eng.AttachNamespace(NamespaceConfig{Filters: testFilters(t, setB, 2)})
	if err != nil {
		t.Fatal(err)
	}
	eng.RebalanceEPC()
	before := eng.EPCShares()

	// Every=2 with two tenants per rebalance: exactly one tenant spikes
	// (which one depends on the evaluation ordinal — deterministic for
	// the seed, but not part of the contract). The shares must follow
	// the spiked demand and still sum to the machine EPC exactly.
	in.Enable(faults.PagingSpike, faults.Spec{Every: 2})
	eng.RebalanceEPC()
	after := eng.EPCShares()
	if after[nsA]+after[nsB] != epc {
		t.Fatalf("shares no longer sum to the EPC under a spike: %v", after)
	}
	grewA := after[nsA] > before[nsA] && after[nsB] < before[nsB]
	grewB := after[nsB] > before[nsB] && after[nsA] < before[nsA]
	if !grewA && !grewB {
		t.Fatalf("shares did not follow the spiked demand: before %v after %v", before, after)
	}
}

// TestChaosRandomizedSchedule: a seeded random schedule of fault flips,
// injections, rotations, and rebalances. After every drain the global
// accounting identities must hold exactly — nothing lost, nothing
// double-counted, the engine never wedged. Two seeds guard against a
// schedule that happens to dodge the interesting interleavings.
func TestChaosRandomizedSchedule(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		seed := seed
		t.Run("", func(t *testing.T) {
			set := testRules(t, 64)
			in := faults.New(seed)
			rng := rand.New(rand.NewSource(int64(seed)))
			var hits atomic.Uint64
			sink := func(_ int, _ packet.Descriptor) {
				if hits.Add(1)%503 == 0 {
					panic("chaos: scheduled sink panic")
				}
			}
			tel := chaosTelemetry(2)
			eng, err := New(Config{
				Filters: testFilters(t, set, 2), Sink: sink,
				Telemetry: tel, Faults: in, EPCBytes: 64 << 20,
				Admission: &AdmissionConfig{}, // explicit caps only; ns 0 uncapped
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Start(); err != nil {
				t.Fatal(err)
			}
			descs := testDescriptors(t, set, 4096)

			check := func(stage int) {
				eng.WaitDrained()
				m := eng.Metrics()
				if m.Processed != m.Accepted {
					t.Fatalf("round %d: processed %d != accepted %d", stage, m.Processed, m.Accepted)
				}
				if got := m.Allowed + m.Dropped + m.Faulted + m.Orphaned; got != m.Processed {
					t.Fatalf("round %d: verdict classes %d != processed %d", stage, got, m.Processed)
				}
			}
			for round := 0; round < 40; round++ {
				switch rng.Intn(6) {
				case 0:
					in.Enable(faults.RingFull, faults.Spec{Prob: rng.Float64() * 0.5})
				case 1:
					in.Disable(faults.RingFull)
				case 2:
					if _, err := eng.RotateEpoch(0); err != nil {
						t.Fatalf("round %d: rotate: %v", round, err)
					}
				case 3:
					in.Enable(faults.PagingSpike, faults.Spec{Every: uint64(rng.Intn(3) + 1)})
					eng.RebalanceEPC()
					in.Disable(faults.PagingSpike)
				case 4:
					check(round)
				}
				lo := rng.Intn(len(descs) - 256)
				eng.InjectBatch(descs[lo : lo+rng.Intn(256)])
			}
			check(-1)
			eng.Stop()
			check(-2) // final: stop drained everything, counters still exact
		})
	}
}

// TestDetachDuringBackpressure: detaching a namespace in the middle of an
// active backpressure episode (tiny ring, flooding producer) must yield
// exact final counters — the fence quiesces the victim before folding —
// and the shard's backpressure episode must still close with its
// backpressure_off event once the flood stops.
func TestDetachDuringBackpressure(t *testing.T) {
	set := nsTestRules(t, 256, "192.0.2.0/24", 99)
	tel := telemetry.New(telemetry.Config{
		Shards: 1, SampleEvery: 1, TraceEvery: -1, JournalSize: 512,
	})
	eng, err := New(Config{Shards: 1, RingSize: 8, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	ns, err := eng.AttachNamespace(NamespaceConfig{Filters: testFilters(t, set, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	descs := nsTestDescriptors(t, set, 2048, "192.0.2.9", uint16(ns), 3)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				eng.InjectBatch(descs)
			}
		}
	}()

	// An 8-slot ring under 2048-packet floods: backpressure is immediate.
	deadline := time.Now().Add(10 * time.Second)
	for eng.Metrics().Backpressure == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flood never backpressured the ring")
		}
		time.Sleep(time.Millisecond)
	}

	final, err := eng.DetachNamespace(ns)
	if err != nil {
		t.Fatalf("detach under backpressure: %v", err)
	}
	close(stop)
	wg.Wait()

	// Exactness: the fold happened after the fence, so the victim's
	// verdict classes partition its processed count with no slack.
	if final.Processed != final.Allowed+final.Dropped {
		t.Fatalf("tombstone counters inexact: processed %d != allowed %d + dropped %d",
			final.Processed, final.Allowed, final.Dropped)
	}
	tombs := eng.Tombstones()
	if len(tombs) == 0 || tombs[len(tombs)-1].Final != final {
		t.Fatalf("tombstone does not match the detach return: %+v", tombs)
	}

	// The episode closes: the worker drains the orphaned remainder and
	// emits backpressure_off from its idle loop.
	eng.WaitDrained()
	deadline = time.Now().Add(10 * time.Second)
	for !journalHas(tel, telemetry.EvBackpressureOff) {
		if time.Now().After(deadline) {
			t.Fatal("backpressure_off never fired after the flood stopped")
		}
		time.Sleep(time.Millisecond)
	}
	eng.Stop()
	m := eng.Metrics()
	if m.Processed != m.Accepted {
		t.Fatalf("drain invariant broken across detach: processed %d accepted %d", m.Processed, m.Accepted)
	}
}

// TestChaosModuleFaultStorm: the module_fault point fires inside the
// burst chain — before a module invocation, on the worker goroutine —
// so every trip panics mid-pipeline. The supervisor must absorb each
// one exactly like a module bug: burst folded into faulted, worker
// restarted, drain invariant intact, restarts journaled.
func TestChaosModuleFaultStorm(t *testing.T) {
	set := testRules(t, 64)
	in := faults.New(5)
	in.Enable(faults.ModuleFault, faults.Spec{Prob: 0.02})
	tel := chaosTelemetry(2)
	eng, err := New(Config{Filters: testFilters(t, set, 2), Telemetry: tel, Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	descs := testDescriptors(t, set, 8192)
	var accepted uint64
	for lo := 0; lo < len(descs); lo += 256 {
		accepted += uint64(eng.InjectBatch(descs[lo : lo+256]))
	}
	eng.WaitDrained() // must terminate: faulted bursts count as processed
	eng.Stop()

	if in.Fired(faults.ModuleFault) == 0 {
		t.Fatal("module_fault schedule never fired; the chain hook is dead")
	}
	m := eng.Metrics()
	if m.Restarts == 0 || m.Faulted == 0 {
		t.Fatalf("chain panics unaccounted: restarts=%d faulted=%d", m.Restarts, m.Faulted)
	}
	if m.Processed != m.Accepted || m.Accepted != accepted {
		t.Fatalf("drain invariant broken: accepted %d (produced %d), processed %d",
			m.Accepted, accepted, m.Processed)
	}
	if got := m.Allowed + m.Dropped + m.Faulted + m.Orphaned; got != m.Processed {
		t.Fatalf("verdict classes %d != processed %d (allowed=%d dropped=%d faulted=%d orphaned=%d)",
			got, m.Processed, m.Allowed, m.Dropped, m.Faulted, m.Orphaned)
	}
	if !journalHas(tel, telemetry.EvWorkerRestart) {
		t.Fatal("no worker_restart event journaled for chain panics")
	}
}
