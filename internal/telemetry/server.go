package telemetry

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a Telemetry over HTTP:
//
//	/metrics       Prometheus text exposition (collectors + stage histograms)
//	/events        event journal as JSONL, oldest first
//	/traces        completed sampled packet traces as JSONL, oldest first
//	/debug/pprof/  the standard Go profiling endpoints
//
// NewServer binds the listener immediately (so addr ":0" resolves to a
// concrete port readable via Addr) and serves on a background goroutine.
type Server struct {
	t   *Telemetry
	ln  net.Listener
	srv *http.Server
}

// NewServer binds addr and starts serving t.
func NewServer(t *Telemetry, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.WriteMetrics(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = t.Journal().WriteJSONL(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = t.Tracer().WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{t: t, ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down, waiting briefly for in-flight scrapes.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
