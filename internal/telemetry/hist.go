package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Stage identifies one instrumented hot-path stage. The four stages tile a
// burst's life inside a shard worker: the idle gap before the burst was
// pulled off the ring, the filter's classification loop, the batched
// sketch/meter charge, and the flush (sink fanout + counter publication).
type Stage int

const (
	// StageDequeueWait is the worker-side gap between going idle and the
	// next successful burst dequeue — ring starvation, not processing.
	StageDequeueWait Stage = iota
	// StageVerdict is the filter's per-burst classify + dedup loop
	// (exact-table hit or trie walk per fresh flow).
	StageVerdict
	// StageCharge is the batched bookkeeping after verdicts are known:
	// sketch AddMany, per-rule byte accounting, and the single enclave
	// meter ChargeBatch.
	StageCharge
	// StageFlush is everything the engine adds around the filter per
	// burst: namespace-run dispatch, sink fanout, and the once-per-burst
	// atomic counter publication.
	StageFlush

	numStages
)

// NumStages is the number of instrumented stages.
const NumStages = int(numStages)

var stageNames = [NumStages]string{
	"dequeue_wait", "verdict", "charge", "flush",
}

func (s Stage) String() string {
	if s < 0 || int(s) >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// NumBuckets is the bucket count of every stage histogram. Bucket i holds
// durations whose nanosecond count has bit-length i — i.e. bucket 0 is
// exactly 0ns, bucket i (i >= 1) is [2^(i-1), 2^i). 40 buckets reach
// 2^39ns ≈ 9 minutes; anything slower lands in the last bucket.
const NumBuckets = 40

// Hist is a lock-free power-of-two-bucket latency histogram. Record is one
// atomic add; there is no other write path. Readers snapshot bucket by
// bucket, so a snapshot taken against concurrent recorders is a slightly
// torn but monotone view — fine for monitoring, never corrupt.
type Hist struct {
	buckets [NumBuckets]atomic.Uint64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	b := bits.Len64(uint64(d))
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// Record counts one observation. Exactly one atomic.Add, no allocation.
func (h *Hist) Record(d time.Duration) {
	h.buckets[bucketOf(d)].Add(1)
}

// BucketUpper returns the inclusive upper bound, in nanoseconds, of bucket
// i: 0 for bucket 0, 2^i - 1 for i >= 1. The last bucket is unbounded
// (+Inf in the exposition).
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// bucketMid is the midpoint of bucket i in nanoseconds, used to
// approximate the histogram sum at snapshot time.
func bucketMid(i int) uint64 {
	if i <= 0 {
		return 0
	}
	lo := uint64(1) << uint(i-1)
	return lo + (lo-1)/2
}

// HistSnapshot is a point-in-time copy of one histogram.
type HistSnapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	// SumNS approximates the total observed time from bucket midpoints;
	// it is the exposition's _sum, not an exact figure.
	SumNS uint64
}

// Snapshot copies the live buckets.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
		s.SumNS += c * bucketMid(i)
	}
	return s
}

// Merge adds another snapshot into this one.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.SumNS += o.SumNS
}

// ShardStages is one shard's block of stage histograms. Blocks are padded
// so adjacent shards' workers never share a cache line even when the
// blocks sit contiguously in the Telemetry slice.
type ShardStages struct {
	hists [NumStages]Hist
	_     [64]byte
}

// Hist exposes one stage's histogram (for tests and snapshots).
func (b *ShardStages) Hist(s Stage) *Hist { return &b.hists[s] }

// StagesSnapshot is the per-shard snapshot of all stages.
type StagesSnapshot [NumStages]HistSnapshot

// Snapshot copies all stage histograms of the block.
func (b *ShardStages) Snapshot() StagesSnapshot {
	var s StagesSnapshot
	for i := range b.hists {
		s[i] = b.hists[i].Snapshot()
	}
	return s
}

// StageRecorder decides, once per burst, whether this burst is sampled for
// stage timing, and records sampled durations into its shard's block. It
// is deliberately NOT safe for concurrent use: every hot-path thread owns
// its own recorder (the engine worker holds one; the filter that worker
// drives holds another), so the sampling counter needs no atomics. All
// recorders of a shard write the same padded block — the histogram adds
// are the only cross-thread writes, and those are atomic.
//
// A nil *StageRecorder is valid and records nothing, so call sites need no
// telemetry-enabled branch of their own.
type StageRecorder struct {
	stages *ShardStages
	mask   uint64 // sample when ctr&mask == 0; every = mask+1 bursts
	ctr    uint64
}

// Sample advances the burst counter and reports whether this burst should
// be timed. One increment, one mask — no atomics.
func (r *StageRecorder) Sample() bool {
	if r == nil {
		return false
	}
	r.ctr++
	return r.ctr&r.mask == 0
}

// Record counts one stage duration for a sampled burst.
func (r *StageRecorder) Record(s Stage, d time.Duration) {
	if r == nil {
		return
	}
	r.stages.hists[s].Record(d)
}
