package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one completed sampled-packet record: the descriptor's journey
// from producer injection to worker verdict, with stage timestamps in
// UnixNano. RulePrio is -1 when no rule matched (default verdict).
type Trace struct {
	Flow     string `json:"flow"`
	NS       int    `json:"ns"`
	Shard    int    `json:"shard"`
	Verdict  string `json:"verdict"`
	Rule     string `json:"rule,omitempty"`
	RulePrio int32  `json:"rule_prio"`

	InjectNS  int64 `json:"t_inject_ns"`  // entry to InjectBatch
	RouteNS   int64 `json:"t_route_ns"`   // shard chosen by the balancer
	EnqueueNS int64 `json:"t_enqueue_ns"` // accepted by the shard ring
	DequeueNS int64 `json:"t_dequeue_ns"` // pulled by the worker in a burst
	VerdictNS int64 `json:"t_verdict_ns"` // classified + charged
}

// Pending is a trace the producer side has started but a worker has not
// yet completed. The producer fills the identity and producer-side
// timestamps, then hands it to Tracer.Publish; exactly one worker claims
// it (Claim) and fills the rest.
type Pending struct {
	Hash  uint64
	Trace Trace
}

// Tracer samples 1-in-N injected bursts and follows one descriptor of
// each through the engine. The hot-path contract is asymmetric:
//
//   - Producers pay nothing until their (pool-local, non-atomic) sampling
//     counter fires; a sampled batch allocates one Pending and does one
//     atomic store + add to publish it.
//   - Workers pay one atomic load per burst (Outstanding) while no trace
//     is pending — the common case — and only hash-scan a burst when one
//     is.
//
// Completed traces land in a small mutex-guarded ring: completion is
// rare (sampled), so a lock there costs nothing measurable.
type Tracer struct {
	everyMask   uint64
	pendingMask uint64
	pending     []atomic.Pointer[Pending]
	outstanding atomic.Int64

	mu   sync.Mutex
	ring []Trace
	next int
	full bool

	started   atomic.Uint64 // pendings published
	completed atomic.Uint64 // traces completed
}

// NewTracer samples one inject batch in `every` (rounded up to a power of
// two) and retains the last `buf` completed traces. every <= 0 disables
// tracing (NewTracer returns nil, and every method tolerates nil).
func NewTracer(every, buf int) *Tracer {
	if every <= 0 {
		return nil
	}
	return &Tracer{
		everyMask:   uint64(ceilPow2(every, 1) - 1),
		pendingMask: uint64(ceilPow2(64, 64) - 1),
		pending:     make([]atomic.Pointer[Pending], 64),
		ring:        make([]Trace, ceilPow2(buf, 16)),
	}
}

// SampleMask returns the producer-side sampling mask: sample the batch
// when localCtr&mask == 0. Producers keep the counter themselves (in
// pooled scratch) so sampling adds no shared write.
func (tr *Tracer) SampleMask() (uint64, bool) {
	if tr == nil {
		return 0, false
	}
	return tr.everyMask, true
}

// Publish makes a producer-filled Pending visible to workers.
func (tr *Tracer) Publish(p *Pending) {
	if tr == nil || p == nil {
		return
	}
	slot := &tr.pending[p.Hash&tr.pendingMask]
	if old := slot.Swap(p); old == nil {
		tr.outstanding.Add(1)
	}
	tr.started.Add(1)
}

// Outstanding reports whether any pending trace awaits a worker. One
// atomic load — the only per-burst cost tracing adds to workers.
func (tr *Tracer) Outstanding() bool {
	return tr != nil && tr.outstanding.Load() > 0
}

// Claim removes and returns the pending trace for a flow hash routed to
// this shard, or nil. Exactly one worker wins a given Pending.
func (tr *Tracer) Claim(hash uint64, shard int) *Pending {
	if tr == nil {
		return nil
	}
	slot := &tr.pending[hash&tr.pendingMask]
	p := slot.Load()
	if p == nil || p.Hash != hash || p.Trace.Shard != shard {
		return nil
	}
	if !slot.CompareAndSwap(p, nil) {
		return nil
	}
	tr.outstanding.Add(-1)
	return p
}

// Abandon drops a published Pending that will never reach a worker (its
// descriptor was dropped before the ring). Unpublished Pendings are just
// garbage-collected; only published ones hold an outstanding count.
func (tr *Tracer) Abandon(p *Pending) {
	if tr == nil || p == nil {
		return
	}
	slot := &tr.pending[p.Hash&tr.pendingMask]
	if slot.CompareAndSwap(p, nil) {
		tr.outstanding.Add(-1)
	}
}

// Complete records a finished trace.
func (tr *Tracer) Complete(t Trace) {
	if tr == nil {
		return
	}
	tr.completed.Add(1)
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next++
	if tr.next == len(tr.ring) {
		tr.next = 0
		tr.full = true
	}
	tr.mu.Unlock()
}

// Traces returns the retained completed traces, oldest first.
func (tr *Tracer) Traces() []Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !tr.full {
		return append([]Trace(nil), tr.ring[:tr.next]...)
	}
	out := make([]Trace, 0, len(tr.ring))
	out = append(out, tr.ring[tr.next:]...)
	out = append(out, tr.ring[:tr.next]...)
	return out
}

// Counts reports how many traces were started and completed.
func (tr *Tracer) Counts() (started, completed uint64) {
	if tr == nil {
		return 0, 0
	}
	return tr.started.Load(), tr.completed.Load()
}

// WriteJSONL streams the retained traces as one JSON object per line.
func (tr *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, t := range tr.Traces() {
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	return nil
}

// Now returns the current time as UnixNano, the trace timestamp unit.
func Now() int64 { return time.Now().UnixNano() }
