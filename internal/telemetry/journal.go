package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// EventType names a structured control-plane event.
type EventType string

// Event types emitted by the engine, session, and cluster layers. The set
// is open — the journal stores whatever it is given — but these are the
// ones the runtime emits and docs/OBSERVABILITY.md documents.
const (
	EvEngineStart      EventType = "engine_start"
	EvEngineStop       EventType = "engine_stop"
	EvEpochSeal        EventType = "epoch_seal"
	EvAttach           EventType = "ns_attach"
	EvDetach           EventType = "ns_detach"
	EvReconfigure      EventType = "ns_reconfigure"
	EvReconfigureDelta EventType = "ns_reconfigure_delta"
	EvEPCRebalance     EventType = "epc_rebalance"
	EvAuditPass        EventType = "audit_pass"
	EvAuditFail        EventType = "audit_fail"
	EvBackpressureOn   EventType = "backpressure_on"
	EvBackpressureOff  EventType = "backpressure_off"
	// EvAdmissionThrottle marks the onset of an admission-control episode:
	// a namespace's token bucket started refusing packets at ingress. Edge-
	// triggered like backpressure_on — one event per episode, not per drop.
	EvAdmissionThrottle EventType = "admission_throttle"
	// EvWorkerRestart records a shard worker recovering from a panic and
	// re-entering its loop with views intact.
	EvWorkerRestart EventType = "worker_restart"
	// EvDeltaRollback records a partial ReconfigureNamespaceDelta failure
	// being repaired automatically by a full per-shard rebuild.
	EvDeltaRollback EventType = "delta_rollback"
)

// Event is one journal entry. NS and Shard are -1 when the event is not
// scoped to a namespace or shard. Seq and Time are stamped by Emit.
type Event struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Type   EventType `json:"type"`
	NS     int       `json:"ns"`
	Shard  int       `json:"shard"`
	Detail string    `json:"detail,omitempty"`
}

// Journal is a bounded lock-free ring of recent events. Writers claim a
// sequence number with one atomic add and publish the event pointer with
// one atomic store; an old event in the reused slot is simply overwritten,
// which is the retention policy: the journal keeps the newest `size`
// events and nothing else. Readers reconstruct the current window without
// blocking writers.
type Journal struct {
	mask  uint64
	seq   atomic.Uint64
	slots []atomic.Pointer[Event]
}

// NewJournal creates a journal retaining at least size events (rounded up
// to a power of two, minimum 16).
func NewJournal(size int) *Journal {
	n := ceilPow2(size, 16)
	return &Journal{mask: uint64(n - 1), slots: make([]atomic.Pointer[Event], n)}
}

// Cap returns the retention bound.
func (j *Journal) Cap() int { return len(j.slots) }

// Emit stamps the event with a sequence number and wall-clock time and
// publishes it. Safe from any goroutine; a nil journal drops the event.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	e.Seq = j.seq.Add(1)
	e.Time = time.Now()
	ev := e
	j.slots[e.Seq&j.mask].Store(&ev)
}

// Events returns the retained window in sequence order (oldest first). The
// view may miss an event being published concurrently — it is a monitoring
// read, not a barrier.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	out := make([]Event, 0, len(j.slots))
	for i := range j.slots {
		if p := j.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// WriteJSONL streams the retained window as one JSON object per line.
func (j *Journal) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range j.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ceilPow2 rounds n up to a power of two, with a floor.
func ceilPow2(n, floor int) int {
	if n < floor {
		n = floor
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
