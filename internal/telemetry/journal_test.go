package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestJournalRetentionBound(t *testing.T) {
	j := NewJournal(16)
	if j.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", j.Cap())
	}
	const emitted = 100
	for i := 0; i < emitted; i++ {
		j.Emit(Event{Type: EvEpochSeal, NS: i, Shard: -1})
	}
	evs := j.Events()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	// The window is the newest 16, in ascending sequence order.
	for i, e := range evs {
		if want := uint64(emitted - 16 + 1 + i); e.Seq != want {
			t.Errorf("event %d Seq = %d, want %d", i, e.Seq, want)
		}
		if i > 0 && evs[i-1].Seq >= e.Seq {
			t.Errorf("events not strictly ordered at %d", i)
		}
	}
	if evs[len(evs)-1].NS != emitted-1 {
		t.Errorf("newest event NS = %d, want %d", evs[len(evs)-1].NS, emitted-1)
	}
}

func TestJournalSizeRounding(t *testing.T) {
	if got := NewJournal(0).Cap(); got != 16 {
		t.Errorf("Cap(0) = %d, want floor 16", got)
	}
	if got := NewJournal(100).Cap(); got != 128 {
		t.Errorf("Cap(100) = %d, want 128", got)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Emit(Event{Type: EvEngineStart}) // must not panic
	if j.Events() != nil {
		t.Error("nil journal returned events")
	}
	var tel *Telemetry
	tel.Journal().Emit(Event{Type: EvEngineStop}) // full nil chain
}

func TestJournalJSONL(t *testing.T) {
	j := NewJournal(16)
	j.Emit(Event{Type: EvAttach, NS: 3, Shard: -1, Detail: "filters=4"})
	j.Emit(Event{Type: EvBackpressureOn, NS: -1, Shard: 2})
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var got []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		got = append(got, e)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d lines, want 2", len(got))
	}
	if got[0].Type != EvAttach || got[0].NS != 3 || got[0].Detail != "filters=4" {
		t.Errorf("first event round-trip = %+v", got[0])
	}
	if got[1].Type != EvBackpressureOn || got[1].Shard != 2 {
		t.Errorf("second event round-trip = %+v", got[1])
	}
	if got[0].Time.IsZero() {
		t.Error("Emit did not stamp Time")
	}
}

func TestJournalConcurrentEmitters(t *testing.T) {
	j := NewJournal(64)
	const (
		workers = 8
		each    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				j.Emit(Event{Type: EvEpochSeal, NS: w, Shard: i, Detail: fmt.Sprintf("w%d", w)})
			}
		}(w)
	}
	// Concurrent readers must never see torn or unordered views.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			evs := j.Events()
			for k := 1; k < len(evs); k++ {
				if evs[k-1].Seq >= evs[k].Seq {
					t.Error("concurrent Events() view unordered")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	evs := j.Events()
	if len(evs) != j.Cap() {
		t.Fatalf("retained %d, want full window %d", len(evs), j.Cap())
	}
	if top := evs[len(evs)-1].Seq; top != workers*each {
		t.Errorf("newest Seq = %d, want %d", top, workers*each)
	}
}
