package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func TestTracerLifecycle(t *testing.T) {
	tr := NewTracer(1, 16)
	if mask, ok := tr.SampleMask(); !ok || mask != 0 {
		t.Fatalf("SampleMask = %d, %t; want 0, true (every batch)", mask, ok)
	}
	p := &Pending{Hash: 0xdeadbeef, Trace: Trace{Flow: "f", NS: 1, Shard: 2, InjectNS: 10, RouteNS: 20, EnqueueNS: 30}}
	if tr.Outstanding() {
		t.Fatal("outstanding before publish")
	}
	tr.Publish(p)
	if !tr.Outstanding() {
		t.Fatal("not outstanding after publish")
	}
	// Wrong shard or wrong hash must not claim.
	if tr.Claim(0xdeadbeef, 3) != nil {
		t.Fatal("claimed with wrong shard")
	}
	if tr.Claim(0xbeef, 2) != nil {
		t.Fatal("claimed with wrong hash")
	}
	got := tr.Claim(0xdeadbeef, 2)
	if got != p {
		t.Fatal("right (hash, shard) did not claim the pending")
	}
	if tr.Outstanding() {
		t.Fatal("still outstanding after claim")
	}
	if tr.Claim(0xdeadbeef, 2) != nil {
		t.Fatal("double claim succeeded")
	}
	got.Trace.DequeueNS = 40
	got.Trace.VerdictNS = 50
	got.Trace.Verdict = "allow"
	tr.Complete(got.Trace)
	started, completed := tr.Counts()
	if started != 1 || completed != 1 {
		t.Fatalf("Counts = %d, %d; want 1, 1", started, completed)
	}
	ts := tr.Traces()
	if len(ts) != 1 || ts[0].Verdict != "allow" || ts[0].VerdictNS != 50 {
		t.Fatalf("Traces = %+v", ts)
	}
}

func TestTracerAbandon(t *testing.T) {
	tr := NewTracer(4, 16)
	p := &Pending{Hash: 7, Trace: Trace{Shard: 0}}
	tr.Publish(p)
	tr.Abandon(p)
	if tr.Outstanding() {
		t.Fatal("outstanding after abandon")
	}
	// Abandoning twice, or abandoning something never published, is a no-op.
	tr.Abandon(p)
	tr.Abandon(&Pending{Hash: 9})
	if tr.Outstanding() {
		t.Fatal("abandon corrupted the outstanding count")
	}
}

func TestTracerSlotCollision(t *testing.T) {
	tr := NewTracer(1, 16)
	// Two pendings hashing to the same slot: the newer one wins the slot,
	// the older becomes unclaimable garbage, and the outstanding count
	// still drops to zero after one claim.
	a := &Pending{Hash: 5, Trace: Trace{Shard: 0}}
	b := &Pending{Hash: 5 + 64, Trace: Trace{Shard: 1}} // same slot (64 slots)
	tr.Publish(a)
	tr.Publish(b)
	if tr.Claim(5, 0) != nil {
		t.Fatal("claimed the overwritten pending")
	}
	if got := tr.Claim(5+64, 1); got != b {
		t.Fatal("newest pending not claimable")
	}
	if tr.Outstanding() {
		t.Fatal("outstanding leaked after slot collision")
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(1, 16) // ring rounds to 16
	const total = 40
	for i := 0; i < total; i++ {
		tr.Complete(Trace{NS: i})
	}
	ts := tr.Traces()
	if len(ts) != 16 {
		t.Fatalf("retained %d traces, want 16", len(ts))
	}
	for i, tc := range ts {
		if want := total - 16 + i; tc.NS != want {
			t.Errorf("trace %d NS = %d, want %d (oldest first)", i, tc.NS, want)
		}
	}
}

func TestTracerDisabled(t *testing.T) {
	for _, every := range []int{0, -1} {
		if NewTracer(every, 16) != nil {
			t.Fatalf("NewTracer(%d) != nil", every)
		}
	}
	var tr *Tracer
	if _, ok := tr.SampleMask(); ok {
		t.Error("nil tracer samples")
	}
	tr.Publish(&Pending{})
	tr.Abandon(&Pending{})
	tr.Complete(Trace{})
	if tr.Outstanding() || tr.Claim(0, 0) != nil || tr.Traces() != nil {
		t.Error("nil tracer not inert")
	}
	if s, c := tr.Counts(); s != 0 || c != 0 {
		t.Error("nil tracer counts nonzero")
	}
}

func TestTracerJSONL(t *testing.T) {
	tr := NewTracer(1, 16)
	tr.Complete(Trace{Flow: "10.0.0.1:1 > 192.0.2.1:53 udp", NS: 0, Shard: 1,
		Verdict: "drop", Rule: "rule", RulePrio: 2,
		InjectNS: 1, RouteNS: 2, EnqueueNS: 3, DequeueNS: 4, VerdictNS: 5})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var tc Trace
		if err := json.Unmarshal(sc.Bytes(), &tc); err != nil {
			t.Fatalf("bad trace JSONL %q: %v", sc.Text(), err)
		}
		if tc.Verdict != "drop" || tc.RulePrio != 2 || tc.VerdictNS != 5 {
			t.Errorf("trace round-trip = %+v", tc)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("decoded %d lines, want 1", n)
	}
}

func TestTracerSamplingMaskRounding(t *testing.T) {
	tr := NewTracer(1000, 16) // rounds to 1024
	mask, ok := tr.SampleMask()
	if !ok || mask != 1023 {
		t.Fatalf("mask = %d, %t; want 1023, true", mask, ok)
	}
	// The mask is how producers sample: ctr&mask == 0 fires once per 1024.
	fired := 0
	for ctr := uint64(1); ctr <= 4096; ctr++ {
		if ctr&mask == 0 {
			fired++
		}
	}
	if fired != 4 {
		t.Errorf("mask fired %d times in 4096, want 4", fired)
	}
}
