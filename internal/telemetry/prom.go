package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MetricType is the Prometheus metric kind of a Metric.
type MetricType int

const (
	Counter MetricType = iota
	Gauge
)

func (t MetricType) String() string {
	if t == Gauge {
		return "gauge"
	}
	return "counter"
}

// Label is one name="value" pair on a sample.
type Label struct {
	Key, Value string
}

// Sample is one time series of a metric family: a label set and a value.
type Sample struct {
	Labels []Label
	Value  float64
}

// Metric is one family in the Prometheus text exposition: a name, help
// string, type, and its samples. Collectors return these so telemetry can
// render metrics from packages (engine, pipeline) it cannot import.
type Metric struct {
	Name    string
	Help    string
	Type    MetricType
	Samples []Sample
}

// Collector is a source of metric families, snapshotted per scrape.
type Collector interface {
	Collect() []Metric
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func() []Metric

func (f CollectorFunc) Collect() []Metric { return f() }

// WriteMetrics renders the full Prometheus text exposition (format 0.0.4):
// every registered collector's families, then the per-shard stage
// histograms.
func (t *Telemetry) WriteMetrics(w io.Writer) error {
	for _, m := range t.Gather() {
		if err := writeFamily(w, m); err != nil {
			return err
		}
	}
	return t.writeStageHistograms(w)
}

func writeFamily(w io.Writer, m Metric) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		m.Name, escapeHelp(m.Help), m.Name, m.Type); err != nil {
		return err
	}
	for _, s := range m.Samples {
		if _, err := fmt.Fprintf(w, "%s%s %s\n",
			m.Name, renderLabels(s.Labels), formatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// writeStageHistograms renders vif_stage_latency_ns as one Prometheus
// histogram per (shard, stage), with cumulative le buckets in nanoseconds.
// Empty series are skipped so an idle engine scrapes small.
func (t *Telemetry) writeStageHistograms(w io.Writer) error {
	snaps := t.StageSnapshot()
	if len(snaps) == 0 {
		return nil
	}
	const name = "vif_stage_latency_ns"
	if _, err := fmt.Fprintf(w,
		"# HELP %s Sampled per-burst stage latency (power-of-two buckets, nanoseconds).\n# TYPE %s histogram\n",
		name, name); err != nil {
		return err
	}
	for shard, snap := range snaps {
		for st := 0; st < NumStages; st++ {
			h := snap[st]
			if h.Count == 0 {
				continue
			}
			base := fmt.Sprintf(`shard="%d",stage="%s"`, shard, Stage(st))
			cum := uint64(0)
			for i := 0; i < NumBuckets; i++ {
				cum += h.Buckets[i]
				if h.Buckets[i] == 0 && i != NumBuckets-1 {
					continue // only emit boundaries that gained counts, plus +Inf
				}
				le := strconv.FormatUint(BucketUpper(i), 10)
				if i == NumBuckets-1 {
					le = "+Inf"
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"%s\"} %d\n",
					name, base, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum{%s} %d\n%s_count{%s} %d\n",
				name, base, h.SumNS, name, base, h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	ls = append([]Label(nil), ls...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
