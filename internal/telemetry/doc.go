// Package telemetry is the engine's zero-dependency observability layer:
// per-shard stage-latency histograms sampled off the hot path, a bounded
// lock-free journal of structured control-plane events, 1-in-N sampled
// packet traces, and an HTTP server exposing all of it as Prometheus text
// (/metrics), JSONL (/events, /traces), and the standard Go profiling
// endpoints (/debug/pprof). The engine imports telemetry — never the
// reverse — so packages telemetry cannot see (engine, pipeline) publish
// their counters by registering a Collector that returns neutral Metric
// families.
//
// # Concurrency contract
//
//   - Hist.Record is one atomic add; any number of recorders may write a
//     histogram while any number of readers Snapshot it. Snapshots are
//     per-bucket-atomic (a concurrent snapshot may split a burst across
//     buckets, never corrupt a count).
//   - StageRecorder is single-thread: each hot-path goroutine holds its
//     own (the shard worker one, the filter it drives another). Recorders
//     of one shard share that shard's padded ShardStages block; the only
//     cross-thread writes are the atomic histogram adds. A nil recorder
//     records nothing, so call sites carry no enabled/disabled branch.
//   - Journal.Emit is wait-free for writers (one atomic add + one atomic
//     store) and safe from any goroutine; Events reconstructs the newest
//     window without blocking writers.
//   - Tracer: producers Publish with pool-local sampling counters (no
//     shared write on unsampled batches); workers pay one atomic load per
//     burst (Outstanding) unless a trace is pending. Claim hands each
//     Pending to exactly one worker via CompareAndSwap.
//   - Telemetry.Register may race Gather; the collector list is
//     mutex-guarded. Collect implementations must be safe to call from
//     the scrape goroutine while the engine runs.
//
// # Invariants
//
//   - A histogram's bucket counts only grow; Snapshot sums equal the
//     number of Record calls observed.
//   - The journal retains at most Cap() events — the newest ones; Seq is
//     dense and strictly increasing across Emit calls.
//   - Every completed Trace carries the full inject → route → enqueue →
//     dequeue → verdict timestamp chain, in nondecreasing order.
//   - Telemetry never blocks, allocates on, or adds more than the costs
//     above to the engine hot path; the bench gate
//     telemetry_overhead_ge_097 (scripts/bench_engine.sh) enforces that
//     enabling it keeps wall throughput within 3% of telemetry-off.
package telemetry
