package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

// promLine matches one Prometheus text-format sample line:
// name{label="v",...} value
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ([0-9eE+.\-]+|[+-]Inf)$`)

// checkPromText asserts every non-comment line of a /metrics body parses as
// a sample line.
func checkPromText(t *testing.T, body string) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
}

func TestWriteMetricsRendersCollectorsAndHistograms(t *testing.T) {
	tel := New(Config{Shards: 2, SampleEvery: 1})
	tel.Register(CollectorFunc(func() []Metric {
		return []Metric{
			{Name: "demo_total", Help: "A demo counter.", Type: Counter,
				Samples: []Sample{
					{Labels: []Label{{Key: "ns", Value: "0"}}, Value: 3},
					{Labels: []Label{{Key: "ns", Value: "1"}}, Value: 4.5},
				}},
			{Name: "demo_gauge", Help: "Escaped \"help\"\nwith newline.", Type: Gauge,
				Samples: []Sample{{Value: -1}}},
		}
	}))
	r := tel.Recorder(1)
	r.Sample()
	r.Record(StageVerdict, 100)
	r.Record(StageVerdict, 5000)
	r.Record(StageCharge, 0)

	var buf bytes.Buffer
	if err := tel.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	checkPromText(t, body)
	for _, want := range []string{
		"# TYPE demo_total counter",
		`demo_total{ns="0"} 3`,
		`demo_total{ns="1"} 4.5`,
		"# TYPE demo_gauge gauge",
		"demo_gauge -1",
		"# TYPE vif_stage_latency_ns histogram",
		`vif_stage_latency_ns_bucket{shard="1",stage="verdict",le="127"} 1`,
		`vif_stage_latency_ns_bucket{shard="1",stage="verdict",le="8191"} 2`,
		`vif_stage_latency_ns_bucket{shard="1",stage="verdict",le="+Inf"} 2`,
		`vif_stage_latency_ns_count{shard="1",stage="verdict"} 2`,
		`vif_stage_latency_ns_bucket{shard="1",stage="charge",le="0"} 1`,
		`vif_stage_latency_ns_count{shard="1",stage="charge"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	// Idle series are skipped: shard 0 recorded nothing.
	if strings.Contains(body, `shard="0"`) {
		t.Error("idle shard 0 series rendered")
	}
	// Buckets are cumulative and last bucket equals the count.
	if strings.Contains(body, `stage="flush"`) {
		t.Error("unrecorded stage rendered")
	}
}

func TestServerEndpoints(t *testing.T) {
	tel := New(Config{Shards: 1, SampleEvery: 1, TraceEvery: 1, JournalSize: 16, TraceBuf: 16})
	tel.Register(CollectorFunc(func() []Metric {
		return []Metric{{Name: "up", Help: "Up.", Type: Gauge, Samples: []Sample{{Value: 1}}}}
	}))
	rec := tel.Recorder(0)
	rec.Sample()
	rec.Record(StageFlush, 42)
	tel.Journal().Emit(Event{Type: EvEngineStart, NS: -1, Shard: -1, Detail: "shards=1"})
	tel.Tracer().Complete(Trace{Flow: "f", Verdict: "allow", RulePrio: -1})

	srv, err := NewServer(tel, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(b), resp
	}

	body, resp := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	checkPromText(t, body)
	for _, want := range []string{"up 1", "vif_stage_latency_ns_bucket", `stage="flush"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, resp = get("/events")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/jsonl") {
		t.Errorf("events Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	found := false
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad /events line %q: %v", sc.Text(), err)
		}
		if e.Type == EvEngineStart && e.Detail == "shards=1" {
			found = true
		}
	}
	if !found {
		t.Errorf("/events missing engine_start:\n%s", body)
	}

	body, _ = get("/traces")
	var tc Trace
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &tc); err != nil {
		t.Fatalf("bad /traces body %q: %v", body, err)
	}
	if tc.Verdict != "allow" || tc.RulePrio != -1 {
		t.Errorf("trace round-trip = %+v", tc)
	}

	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed server refuses new connections (eventually).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err != nil {
			return
		}
	}
	t.Error("server still serving after Close")
}
