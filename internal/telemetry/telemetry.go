package telemetry

import "sync"

// Config sizes a Telemetry instance. Zero values get sane defaults.
type Config struct {
	// Shards is the number of per-shard stage-histogram blocks — the
	// engine's shard count. Minimum 1.
	Shards int
	// SampleEvery samples 1-in-N bursts for stage timing (rounded up to a
	// power of two). Default 64.
	SampleEvery int
	// TraceEvery samples 1-in-N inject batches for packet traces (rounded
	// up to a power of two). Default 4096; < 0 disables tracing.
	TraceEvery int
	// JournalSize bounds the event journal. Default 1024.
	JournalSize int
	// TraceBuf bounds the completed-trace ring. Default 256.
	TraceBuf int
}

// Telemetry is the engine-side observability hub: per-shard stage
// histograms, the event journal, and the packet tracer, plus a registry
// of metric collectors (the engine registers its counter snapshot there)
// for the /metrics endpoint. One Telemetry serves one engine.
type Telemetry struct {
	shards  []ShardStages
	journal *Journal
	tracer  *Tracer
	mask    uint64

	mu         sync.Mutex
	collectors []Collector
}

// New builds a Telemetry for an engine with cfg.Shards shards.
func New(cfg Config) *Telemetry {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 64
	}
	if cfg.TraceEvery == 0 {
		cfg.TraceEvery = 4096
	}
	if cfg.JournalSize <= 0 {
		cfg.JournalSize = 1024
	}
	if cfg.TraceBuf <= 0 {
		cfg.TraceBuf = 256
	}
	return &Telemetry{
		shards:  make([]ShardStages, cfg.Shards),
		journal: NewJournal(cfg.JournalSize),
		tracer:  NewTracer(cfg.TraceEvery, cfg.TraceBuf),
		mask:    uint64(ceilPow2(cfg.SampleEvery, 1) - 1),
	}
}

// Shards returns the number of per-shard blocks.
func (t *Telemetry) Shards() int {
	if t == nil {
		return 0
	}
	return len(t.shards)
}

// Recorder creates a new single-thread recorder writing shard's block.
// Each hot-path thread must hold its own recorder; recorders of the same
// shard share the block, and the block's histogram writes are atomic. A
// nil Telemetry yields a nil recorder, which records nothing.
func (t *Telemetry) Recorder(shard int) *StageRecorder {
	if t == nil || shard < 0 || shard >= len(t.shards) {
		return nil
	}
	return &StageRecorder{stages: &t.shards[shard], mask: t.mask}
}

// Journal returns the event journal (nil-safe: a nil Telemetry has a nil
// journal, and Journal.Emit on nil drops events).
func (t *Telemetry) Journal() *Journal {
	if t == nil {
		return nil
	}
	return t.journal
}

// Tracer returns the packet tracer (nil when tracing is disabled).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// StageSnapshot copies every shard's stage histograms.
func (t *Telemetry) StageSnapshot() []StagesSnapshot {
	if t == nil {
		return nil
	}
	out := make([]StagesSnapshot, len(t.shards))
	for i := range t.shards {
		out[i] = t.shards[i].Snapshot()
	}
	return out
}

// Register adds a metric collector consulted by Gather. The engine
// registers its counter snapshot; the classic pipeline registers its
// stage counters.
func (t *Telemetry) Register(c Collector) {
	if t == nil || c == nil {
		return
	}
	t.mu.Lock()
	t.collectors = append(t.collectors, c)
	t.mu.Unlock()
}

// Gather collects every registered collector's metrics. The stage
// histograms are rendered separately by WriteMetrics.
func (t *Telemetry) Gather() []Metric {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	cs := append([]Collector(nil), t.collectors...)
	t.mu.Unlock()
	var out []Metric
	for _, c := range cs {
		out = append(out, c.Collect()...)
	}
	return out
}
