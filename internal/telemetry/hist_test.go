package telemetry

import (
	"sync"
	"testing"
	"time"
)

// naiveBucketOf is the reference implementation the property test checks
// bucketOf against: linear scan for the first bucket whose inclusive upper
// bound (BucketUpper) reaches the value.
func naiveBucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	for i := 1; i < NumBuckets-1; i++ {
		if uint64(d) <= BucketUpper(i) {
			return i
		}
	}
	return NumBuckets - 1
}

func TestBucketOfMatchesNaiveReference(t *testing.T) {
	// Every power-of-two boundary, its neighbors, and the edge cases.
	cases := []time.Duration{-5, -1, 0, 1, 2, 3}
	for k := 1; k < 64; k++ {
		v := time.Duration(1) << uint(k)
		cases = append(cases, v-1, v, v+1)
	}
	for _, d := range cases {
		if got, want := bucketOf(d), naiveBucketOf(d); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestBucketUpperSemantics(t *testing.T) {
	// Bucket 0 holds exactly 0ns; bucket i holds (BucketUpper(i-1),
	// BucketUpper(i)] — i.e. [2^(i-1), 2^i).
	if BucketUpper(0) != 0 {
		t.Errorf("BucketUpper(0) = %d, want 0", BucketUpper(0))
	}
	for i := 1; i < NumBuckets; i++ {
		lo := time.Duration(BucketUpper(i-1) + 1)
		hi := time.Duration(BucketUpper(i))
		if got := bucketOf(lo); got != i {
			t.Errorf("bucketOf(lower edge %d) = %d, want %d", lo, got, i)
		}
		if i < NumBuckets-1 {
			if got := bucketOf(hi); got != i {
				t.Errorf("bucketOf(upper edge %d) = %d, want %d", hi, got, i)
			}
		}
	}
	// Beyond the last finite boundary everything clamps to the last bucket.
	if got := bucketOf(time.Duration(1) << 62); got != NumBuckets-1 {
		t.Errorf("huge duration bucket = %d, want %d", got, NumBuckets-1)
	}
}

func TestHistSnapshot(t *testing.T) {
	var h Hist
	obs := []time.Duration{0, 1, 1, 2, 3, 4, 1000, time.Second}
	for _, d := range obs {
		h.Record(d)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(obs)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(obs))
	}
	want := map[int]uint64{}
	for _, d := range obs {
		want[naiveBucketOf(d)]++
	}
	for i, c := range s.Buckets {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if s.SumNS == 0 {
		t.Error("SumNS = 0 after nonzero observations")
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	var a, b Hist
	a.Record(1)
	a.Record(100)
	b.Record(100)
	b.Record(1 << 20)
	sa, sb := a.Snapshot(), b.Snapshot()
	wantSum := sa.SumNS + sb.SumNS
	sa.Merge(sb)
	if sa.Count != 4 {
		t.Errorf("merged Count = %d, want 4", sa.Count)
	}
	if sa.SumNS != wantSum {
		t.Errorf("merged SumNS = %d, want %d", sa.SumNS, wantSum)
	}
	if got := sa.Buckets[naiveBucketOf(100)]; got != 2 {
		t.Errorf("merged bucket for 100ns = %d, want 2", got)
	}
}

// TestHistConcurrentRecorders hammers one histogram from many goroutines
// while a reader snapshots concurrently; run under -race this is the
// lock-freedom proof, and the final count must be exact.
func TestHistConcurrentRecorders(t *testing.T) {
	const (
		workers = 8
		each    = 10000
	)
	var h Hist
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				var n uint64
				for _, c := range s.Buckets {
					n += c
				}
				if n != s.Count {
					t.Error("snapshot buckets do not sum to Count")
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Record(time.Duration(w*each + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if s := h.Snapshot(); s.Count != workers*each {
		t.Fatalf("final Count = %d, want %d", s.Count, workers*each)
	}
}

func TestStageRecorderSampling(t *testing.T) {
	tel := New(Config{Shards: 1, SampleEvery: 4})
	r := tel.Recorder(0)
	sampled := 0
	for i := 0; i < 64; i++ {
		if r.Sample() {
			sampled++
			r.Record(StageVerdict, 10)
		}
	}
	if sampled != 16 {
		t.Errorf("sampled %d of 64 bursts at 1-in-4, want 16", sampled)
	}
	snap := tel.StageSnapshot()[0]
	if snap[StageVerdict].Count != uint64(sampled) {
		t.Errorf("verdict histogram count = %d, want %d", snap[StageVerdict].Count, sampled)
	}
}

func TestStageRecorderNil(t *testing.T) {
	var r *StageRecorder
	if r.Sample() {
		t.Error("nil recorder sampled")
	}
	r.Record(StageFlush, time.Second) // must not panic

	var tel *Telemetry
	if tel.Recorder(0) != nil {
		t.Error("nil telemetry returned a recorder")
	}
	if tel.Shards() != 0 || tel.StageSnapshot() != nil {
		t.Error("nil telemetry not inert")
	}
}

// TestSharedBlockTwoRecorders models the real layout: the engine worker and
// the filter it drives each hold a recorder over the same shard block.
func TestSharedBlockTwoRecorders(t *testing.T) {
	tel := New(Config{Shards: 2, SampleEvery: 1})
	worker := tel.Recorder(1)
	filt := tel.Recorder(1)
	for i := 0; i < 10; i++ {
		if worker.Sample() {
			worker.Record(StageFlush, 5)
		}
		if filt.Sample() {
			filt.Record(StageVerdict, 7)
			filt.Record(StageCharge, 3)
		}
	}
	snap := tel.StageSnapshot()
	if snap[1][StageFlush].Count != 10 || snap[1][StageVerdict].Count != 10 || snap[1][StageCharge].Count != 10 {
		t.Errorf("shared block counts = %+v, want 10 each", snap[1])
	}
	// Shard 0 untouched.
	for st, h := range snap[0] {
		if h.Count != 0 {
			t.Errorf("shard 0 stage %d count = %d, want 0", st, h.Count)
		}
	}
}

func TestStageString(t *testing.T) {
	if StageDequeueWait.String() != "dequeue_wait" || StageFlush.String() != "flush" {
		t.Error("stage names wrong")
	}
	if Stage(99).String() != "unknown" {
		t.Error("out-of-range stage not unknown")
	}
}
