package bgp

import (
	"math/rand"
	"testing"
)

// diamond builds the classic test topology:
//
//	    T1a --peer-- T1b
//	    /  \          \
//	  T2a  T2b        T2c      (customers of T1s)
//	  /      \        /
//	S1        S2    S3         (stubs)
//
// plus a peering T2a--T2b.
func diamond(t *testing.T) *Topology {
	t.Helper()
	topo := NewTopology()
	for _, a := range []struct {
		asn  ASN
		tier Tier
	}{
		{1, Tier1}, {2, Tier1},
		{11, Tier2}, {12, Tier2}, {13, Tier2},
		{101, Stub}, {102, Stub}, {103, Stub},
	} {
		if err := topo.AddAS(a.asn, a.tier, 0); err != nil {
			t.Fatal(err)
		}
	}
	links := []struct{ p, c ASN }{
		{1, 11}, {1, 12}, {2, 13},
		{11, 101}, {12, 102}, {13, 103},
	}
	for _, l := range links {
		if err := topo.AddProviderCustomer(l.p, l.c); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.AddPeering(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddPeering(11, 12); err != nil {
		t.Fatal(err)
	}
	topo.Freeze()
	return topo
}

func TestTopologyValidation(t *testing.T) {
	topo := NewTopology()
	if err := topo.AddAS(1, Tier1, 0); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddAS(1, Tier1, 0); err == nil {
		t.Fatal("duplicate AS accepted")
	}
	if err := topo.AddProviderCustomer(1, 1); err != ErrSelfLink {
		t.Fatalf("self link: %v", err)
	}
	if err := topo.AddProviderCustomer(1, 99); err == nil {
		t.Fatal("unknown AS accepted")
	}
	if err := topo.AddPeering(1, 99); err == nil {
		t.Fatal("unknown peer accepted")
	}
}

func TestCustomerRoutePreferred(t *testing.T) {
	topo := diamond(t)
	// Destination S1 (AS101). AS1 has a customer route (1→11→101).
	tree, err := topo.Routes(101)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.TypeOf(1); got != RouteCustomer {
		t.Fatalf("AS1 route type = %v, want customer", got)
	}
	path, err := tree.Path(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []ASN{1, 11, 101}
	if !equalPath(path, want) {
		t.Fatalf("Path(1) = %v, want %v", path, want)
	}
}

func TestPeerRouteWhenNoCustomerRoute(t *testing.T) {
	topo := diamond(t)
	// Destination S1. AS12 has no customer path to 101; its peer 11 has a
	// customer route, so 12 uses the peer route 12→11→101.
	tree, err := topo.Routes(101)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.TypeOf(12); got != RoutePeer {
		t.Fatalf("AS12 route type = %v, want peer", got)
	}
	path, _ := tree.Path(12)
	if !equalPath(path, []ASN{12, 11, 101}) {
		t.Fatalf("Path(12) = %v", path)
	}
}

func TestProviderRouteAsLastResort(t *testing.T) {
	topo := diamond(t)
	// Destination S1. S2 (AS102) must go up to its provider 12, which
	// peers with 11: 102→12→11→101.
	tree, err := topo.Routes(101)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.TypeOf(102); got != RouteProvider {
		t.Fatalf("AS102 route type = %v, want provider", got)
	}
	path, _ := tree.Path(102)
	if !equalPath(path, []ASN{102, 12, 11, 101}) {
		t.Fatalf("Path(102) = %v", path)
	}
	// S3 must cross the tier-1 peering: 103→13→2→1→11→101.
	path, _ = tree.Path(103)
	if !equalPath(path, []ASN{103, 13, 2, 1, 11, 101}) {
		t.Fatalf("Path(103) = %v", path)
	}
}

func TestValleyFreeProperty(t *testing.T) {
	// No path may go down (provider→customer) and then up (customer→
	// provider), nor traverse two peering links.
	inet, err := Generate(GenConfig{Regions: 3, Tier1PerRegion: 2, Tier2PerRegion: 10, StubsPerRegion: 60, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	topo := inet.Topo
	rng := rand.New(rand.NewSource(1))
	stubs := inet.AllStubs()
	linkType := buildLinkTypes(topo)

	for trial := 0; trial < 20; trial++ {
		dst := stubs[rng.Intn(len(stubs))]
		tree, err := topo.Routes(dst)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 200; probe++ {
			src := stubs[rng.Intn(len(stubs))]
			if src == dst || !tree.Reachable(src) {
				continue
			}
			path, err := tree.Path(src)
			if err != nil {
				t.Fatal(err)
			}
			assertValleyFree(t, linkType, path)
		}
	}
}

type linkKey struct{ a, b ASN }

// buildLinkTypes maps each directed AS pair to its relationship seen from
// the first element: "up" (customer→provider), "down", or "peer".
func buildLinkTypes(topo *Topology) map[linkKey]string {
	m := make(map[linkKey]string)
	for i, a := range topo.asn {
		for _, p := range topo.providers[i] {
			m[linkKey{a, topo.asn[p]}] = "up"
			m[linkKey{topo.asn[p], a}] = "down"
		}
		for _, q := range topo.peers[i] {
			m[linkKey{a, topo.asn[q]}] = "peer"
		}
	}
	return m
}

func assertValleyFree(t *testing.T, linkType map[linkKey]string, path []ASN) {
	t.Helper()
	wentDownOrPeered := false
	peersSeen := 0
	for i := 0; i+1 < len(path); i++ {
		lt := linkType[linkKey{path[i], path[i+1]}]
		switch lt {
		case "up":
			if wentDownOrPeered {
				t.Fatalf("valley in path %v at hop %d", path, i)
			}
		case "peer":
			peersSeen++
			if peersSeen > 1 {
				t.Fatalf("two peering links in path %v", path)
			}
			wentDownOrPeered = true
		case "down":
			wentDownOrPeered = true
		default:
			t.Fatalf("path %v uses nonexistent link %v-%v", path, path[i], path[i+1])
		}
	}
}

func TestAllStubsReachEachOther(t *testing.T) {
	inet, err := Generate(DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	stubs := inet.AllStubs()
	for trial := 0; trial < 5; trial++ {
		dst := stubs[rng.Intn(len(stubs))]
		tree, err := inet.Topo.Routes(dst)
		if err != nil {
			t.Fatal(err)
		}
		unreachable := 0
		for _, src := range inet.Topo.ASNs() {
			if !tree.Reachable(src) {
				unreachable++
			}
		}
		if unreachable > 0 {
			t.Fatalf("dst AS%d: %d ASes unreachable", dst, unreachable)
		}
	}
}

func TestRoutesAvoidingExcludesAS(t *testing.T) {
	topo := diamond(t)
	// S3→S1 normally crosses AS1 (tier-1). Avoiding AS1 leaves S3 with
	// no policy-compliant path in this tiny topology... except via
	// 13→2? AS2 without AS1 has no route to 101 at all. So expect
	// unreachable.
	tree, err := topo.RoutesAvoiding(101, map[ASN]bool{1: true})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Reachable(103) {
		path, _ := tree.Path(103)
		for _, a := range path {
			if a == 1 {
				t.Fatalf("avoided AS1 still on path %v", path)
			}
		}
		t.Fatalf("unexpected path around AS1: reachable")
	}
	// The victim-side test of Appendix B: avoiding AS12 must leave S2
	// reachable via... S2's only provider is 12, so unreachable; avoid
	// AS11 instead and S1 is the destination — AS12's peer route dies but
	// provider path 12→1→11 also dies; this asserts exclusion semantics.
	tree2, err := topo.RoutesAvoiding(101, map[ASN]bool{12: true})
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Reachable(102) {
		t.Fatal("AS102's only provider was avoided; must be unreachable")
	}
	if !tree2.Reachable(1) {
		t.Fatal("AS1 should still reach 101 via 11")
	}
}

func TestRerouteAroundIntermediateAS(t *testing.T) {
	// The richer generated topology must usually offer an alternate path
	// around a single avoided transit AS (the Appendix B use case).
	inet, err := Generate(DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	stubs := inet.AllStubs()
	rerouted, attempts := 0, 0
	for trial := 0; trial < 30 && attempts < 15; trial++ {
		src := stubs[rng.Intn(len(stubs))]
		dst := stubs[rng.Intn(len(stubs))]
		if src == dst {
			continue
		}
		tree, err := inet.Topo.Routes(dst)
		if err != nil {
			t.Fatal(err)
		}
		path, err := tree.Path(src)
		if err != nil || len(path) < 4 {
			continue
		}
		mid := path[len(path)/2]
		attempts++
		avoided, err := inet.Topo.RoutesAvoiding(dst, map[ASN]bool{mid: true})
		if err != nil {
			t.Fatal(err)
		}
		if !avoided.Reachable(src) {
			continue
		}
		newPath, err := avoided.Path(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range newPath {
			if a == mid {
				t.Fatalf("avoided AS%d still on path %v", mid, newPath)
			}
		}
		rerouted++
	}
	if rerouted == 0 {
		t.Fatal("no reroute ever succeeded; topology too fragile for Appendix B test")
	}
}

func TestDeterministicRouting(t *testing.T) {
	inet, err := Generate(GenConfig{Regions: 2, Tier1PerRegion: 2, Tier2PerRegion: 8, StubsPerRegion: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	stubs := inet.AllStubs()
	dst := stubs[0]
	t1, err := inet.Topo.Routes(dst)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := inet.Topo.Routes(dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range inet.Topo.ASNs() {
		if src == dst {
			continue
		}
		p1, e1 := t1.Path(src)
		p2, e2 := t2.Path(src)
		if (e1 == nil) != (e2 == nil) || !equalPath(p1, p2) {
			t.Fatalf("nondeterministic route for AS%d: %v vs %v", src, p1, p2)
		}
	}
}

func TestPathLenConsistency(t *testing.T) {
	topo := diamond(t)
	tree, err := topo.Routes(101)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range topo.ASNs() {
		if !tree.Reachable(a) {
			continue
		}
		path, err := tree.Path(a)
		if err != nil {
			t.Fatal(err)
		}
		if got := tree.PathLen(a); got != len(path)-1 {
			t.Fatalf("PathLen(%d) = %d, path %v", a, got, path)
		}
	}
	if tree.PathLen(9999) != -1 {
		t.Fatal("unknown AS must report -1")
	}
}

func equalPath(a, b []ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkRoutesDefaultInternet(b *testing.B) {
	inet, err := Generate(DefaultGenConfig())
	if err != nil {
		b.Fatal(err)
	}
	stubs := inet.AllStubs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inet.Topo.Routes(stubs[i%len(stubs)]); err != nil {
			b.Fatal(err)
		}
	}
}
