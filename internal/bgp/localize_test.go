package bgp

import (
	"math/rand"
	"testing"
)

// localizeFixture finds, in a generated topology, a (filterAS, victim)
// pair whose path has a midpoint that can be detoured around, and returns
// the pieces the tests need.
func localizeFixture(t *testing.T) (topo *Topology, filterAS, victim, culprit ASN) {
	t.Helper()
	inet, err := Generate(DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	topo = inet.Topo
	rng := rand.New(rand.NewSource(17))
	stubs := inet.AllStubs()
	for trial := 0; trial < 200; trial++ {
		victim = stubs[rng.Intn(len(stubs))]
		filterAS = stubs[rng.Intn(len(stubs))]
		if victim == filterAS {
			continue
		}
		tree, err := topo.Routes(victim)
		if err != nil {
			t.Fatal(err)
		}
		path, err := tree.Path(filterAS)
		if err != nil || len(path) < 4 {
			continue
		}
		mid := path[len(path)/2]
		avoided, err := topo.RoutesAvoiding(victim, map[ASN]bool{mid: true})
		if err != nil {
			t.Fatal(err)
		}
		if avoided.Reachable(filterAS) {
			return topo, filterAS, victim, mid
		}
	}
	t.Fatal("no localizable fixture found")
	return
}

// dropOracleFor simulates an intermediate AS `bad` that drops the victim's
// inbound traffic whenever it is on the path.
func dropOracleFor(filterAS ASN, bad ASN) DropOracle {
	return func(tree *Tree) (bool, error) {
		path, err := tree.Path(filterAS)
		if err != nil {
			return false, nil // unreachable: nothing arrives, nothing measured
		}
		for _, a := range path {
			if a == bad {
				return true, nil
			}
		}
		return false, nil
	}
}

func TestLocalizeFindsDroppingAS(t *testing.T) {
	topo, filterAS, victim, culprit := localizeFixture(t)
	loc, err := topo.LocalizeDrops(filterAS, victim, dropOracleFor(filterAS, culprit))
	if err != nil {
		t.Fatal(err)
	}
	if loc.FilteringNetworkSuspected {
		t.Fatalf("filtering network suspected though AS%d drops: %+v", culprit, loc)
	}
	found := false
	for _, s := range loc.Suspects {
		if s == culprit {
			found = true
		}
	}
	if !found {
		t.Fatalf("culprit AS%d not among suspects %v", culprit, loc.Suspects)
	}
}

func TestLocalizeSuspectsFilteringNetworkWhenLossPersists(t *testing.T) {
	topo, filterAS, victim, _ := localizeFixture(t)
	// The filtering network itself drops: loss persists on every detour.
	alwaysLossy := func(*Tree) (bool, error) { return true, nil }
	loc, err := topo.LocalizeDrops(filterAS, victim, alwaysLossy)
	if err != nil {
		t.Fatal(err)
	}
	if !loc.FilteringNetworkSuspected {
		t.Fatalf("persistent loss must implicate the filtering network: %+v", loc)
	}
	if len(loc.Suspects) != 0 {
		t.Fatalf("no intermediate AS should be a suspect: %v", loc.Suspects)
	}
}

func TestLocalizeRequiresBaselineLoss(t *testing.T) {
	topo, filterAS, victim, _ := localizeFixture(t)
	neverLossy := func(*Tree) (bool, error) { return false, nil }
	if _, err := topo.LocalizeDrops(filterAS, victim, neverLossy); err != ErrNoBaselineLoss {
		t.Fatalf("err = %v, want ErrNoBaselineLoss", err)
	}
}

func TestLocalizeUnknownASes(t *testing.T) {
	topo, filterAS, victim, culprit := localizeFixture(t)
	if _, err := topo.LocalizeDrops(99999999, victim, dropOracleFor(filterAS, culprit)); err == nil {
		t.Fatal("unknown filter AS accepted")
	}
	if _, err := topo.LocalizeDrops(filterAS, 99999999, dropOracleFor(filterAS, culprit)); err == nil {
		t.Fatal("unknown victim accepted")
	}
}
