package bgp

import (
	"errors"
	"fmt"
)

// Appendix B: when a victim sees VIF-allowed packets go missing (the
// outgoing log is clean but traffic doesn't arrive), the drop happened
// somewhere between the filtering network and the victim — by an
// intermediate AS or by the filtering network itself lying about its logs.
// Classic fault localization needs global cooperation; VIF instead has the
// victim *test* intermediate ASes one at a time, using BGP-poisoning
// inbound rerouting (LIFEGUARD/Nyx style) to detour around each candidate
// for a short window and watching whether the loss stops.

// DropOracle reports whether the victim still observes loss when its
// inbound traffic follows the given routing tree. In deployment this is a
// measurement over a short test window; in simulation the test harness
// supplies it.
type DropOracle func(tree *Tree) (lossObserved bool, err error)

// Localization is the outcome of the Appendix B procedure.
type Localization struct {
	// Suspects are intermediate ASes whose avoidance stopped the loss.
	Suspects []ASN
	// Untestable are intermediate ASes that could not be detoured around
	// (no alternate policy-compliant path); the victim cannot rule on
	// them without cooperation.
	Untestable []ASN
	// FilteringNetworkSuspected is set when loss persists across every
	// testable detour: per Appendix B, the victim "may conclude that the
	// VIF IXP itself has been misbehaving" and abort the contract.
	FilteringNetworkSuspected bool
}

// Errors.
var (
	ErrNoBaselinePath = errors.New("bgp: no baseline path from filtering network to victim")
	ErrNoBaselineLoss = errors.New("bgp: no loss on the baseline path; nothing to localize")
)

// LocalizeDrops runs the Appendix B test for victim dst whose inbound
// traffic from the filtering network filterAS is experiencing unexplained
// loss. It reroutes around each intermediate AS of the current path in
// turn and consults the oracle.
func (t *Topology) LocalizeDrops(filterAS, dst ASN, oracle DropOracle) (*Localization, error) {
	baseline, err := t.Routes(dst)
	if err != nil {
		return nil, err
	}
	path, err := baseline.Path(filterAS)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoBaselinePath, err)
	}
	lossy, err := oracle(baseline)
	if err != nil {
		return nil, err
	}
	if !lossy {
		return nil, ErrNoBaselineLoss
	}
	if len(path) <= 2 {
		// Direct adjacency: no intermediate AS exists, the counterparty
		// is the filtering network.
		return &Localization{FilteringNetworkSuspected: true}, nil
	}

	out := &Localization{}
	testable := 0
	for _, mid := range path[1 : len(path)-1] {
		avoided, err := t.RoutesAvoiding(dst, map[ASN]bool{mid: true})
		if err != nil {
			return nil, err
		}
		if !avoided.Reachable(filterAS) {
			out.Untestable = append(out.Untestable, mid)
			continue
		}
		testable++
		stillLossy, err := oracle(avoided)
		if err != nil {
			return nil, err
		}
		if !stillLossy {
			out.Suspects = append(out.Suspects, mid)
		}
	}
	// Loss survived every detour we could make: either an untestable AS
	// or the filtering network itself. With no suspects and at least one
	// completed test, Appendix B tells the victim to suspect the VIF
	// network (it can then abort the contract at its discretion).
	if len(out.Suspects) == 0 && testable > 0 {
		out.FilteringNetworkSuspected = true
	}
	return out, nil
}
