// Package bgp is VIF's inter-domain routing substrate: an AS-level model
// of the Internet with business relationships (customer/provider/peer) and
// Gao-Rexford policy routing, standing in for the CAIDA AS-relationship
// dataset driving the paper's §VI-C simulations.
//
// Route selection follows the three policies the paper states: (1) prefer
// customer routes over peer routes over provider routes, (2) prefer the
// shortest AS-path, (3) break remaining ties with the lower next-hop AS
// number. Export follows the valley-free rules those preferences imply:
// customer routes are exported to everyone; peer and provider routes only
// to customers.
//
// The package also implements the BGP-poisoning reroute of Appendix B:
// computing routes with selected ASes excluded, which a victim uses to
// test intermediate ASes for packet drops without their cooperation.
package bgp

import (
	"errors"
	"fmt"
	"sort"
)

// ASN is an autonomous system number.
type ASN uint32

// Tier classifies ASes in the synthetic topology generator.
type Tier int

// Tiers.
const (
	Tier1 Tier = iota + 1
	Tier2
	Stub
)

// String renders the tier.
func (t Tier) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Tier2:
		return "tier2"
	case Stub:
		return "stub"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Errors.
var (
	ErrUnknownAS = errors.New("bgp: unknown AS")
	ErrSelfLink  = errors.New("bgp: self link")
)

// Topology is an immutable-after-build AS graph. Build with NewTopology +
// AddProviderCustomer/AddPeering, then call Freeze before routing.
type Topology struct {
	idx    map[ASN]int
	asn    []ASN
	region []int
	tier   []Tier

	providers [][]int32 // of each AS (edges up)
	customers [][]int32 // of each AS (edges down)
	peers     [][]int32

	frozen bool
}

// NewTopology creates an empty topology.
func NewTopology() *Topology {
	return &Topology{idx: make(map[ASN]int)}
}

// AddAS registers an AS with metadata. Adding twice is an error.
func (t *Topology) AddAS(a ASN, tier Tier, region int) error {
	if _, ok := t.idx[a]; ok {
		return fmt.Errorf("bgp: AS%d added twice", a)
	}
	t.idx[a] = len(t.asn)
	t.asn = append(t.asn, a)
	t.tier = append(t.tier, tier)
	t.region = append(t.region, region)
	t.providers = append(t.providers, nil)
	t.customers = append(t.customers, nil)
	t.peers = append(t.peers, nil)
	return nil
}

func (t *Topology) lookup(a ASN) (int, error) {
	i, ok := t.idx[a]
	if !ok {
		return 0, fmt.Errorf("%w: AS%d", ErrUnknownAS, a)
	}
	return i, nil
}

// AddProviderCustomer records that provider sells transit to customer.
func (t *Topology) AddProviderCustomer(provider, customer ASN) error {
	if provider == customer {
		return ErrSelfLink
	}
	p, err := t.lookup(provider)
	if err != nil {
		return err
	}
	c, err := t.lookup(customer)
	if err != nil {
		return err
	}
	t.customers[p] = append(t.customers[p], int32(c))
	t.providers[c] = append(t.providers[c], int32(p))
	return nil
}

// AddPeering records a settlement-free peering between a and b.
func (t *Topology) AddPeering(a, b ASN) error {
	if a == b {
		return ErrSelfLink
	}
	i, err := t.lookup(a)
	if err != nil {
		return err
	}
	j, err := t.lookup(b)
	if err != nil {
		return err
	}
	t.peers[i] = append(t.peers[i], int32(j))
	t.peers[j] = append(t.peers[j], int32(i))
	return nil
}

// Freeze canonicalizes adjacency order (deterministic routing ties) and
// deduplicates accidental parallel links.
func (t *Topology) Freeze() {
	dedup := func(adj [][]int32) {
		for i := range adj {
			s := adj[i]
			sort.Slice(s, func(a, b int) bool { return t.asn[s[a]] < t.asn[s[b]] })
			out := s[:0]
			var prev int32 = -1
			for _, v := range s {
				if v != prev {
					out = append(out, v)
				}
				prev = v
			}
			adj[i] = out
		}
	}
	dedup(t.providers)
	dedup(t.customers)
	dedup(t.peers)
	t.frozen = true
}

// Len returns the number of ASes.
func (t *Topology) Len() int { return len(t.asn) }

// ASNs returns all AS numbers (in registration order; do not mutate).
func (t *Topology) ASNs() []ASN { return t.asn }

// TierOf returns an AS's tier.
func (t *Topology) TierOf(a ASN) (Tier, error) {
	i, err := t.lookup(a)
	if err != nil {
		return 0, err
	}
	return t.tier[i], nil
}

// RegionOf returns an AS's region index.
func (t *Topology) RegionOf(a ASN) (int, error) {
	i, err := t.lookup(a)
	if err != nil {
		return 0, err
	}
	return t.region[i], nil
}

// Degree returns an AS's total adjacency count (providers + customers +
// peers); IXP membership sampling weights by it.
func (t *Topology) Degree(a ASN) (int, error) {
	i, err := t.lookup(a)
	if err != nil {
		return 0, err
	}
	return len(t.providers[i]) + len(t.customers[i]) + len(t.peers[i]), nil
}
