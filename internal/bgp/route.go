package bgp

import (
	"errors"
	"fmt"
)

// RouteType orders route preference: customer > peer > provider (§VI-C
// policy 1).
type RouteType uint8

// Route types in preference order.
const (
	RouteNone RouteType = iota
	RouteCustomer
	RoutePeer
	RouteProvider
)

// String renders the route type.
func (rt RouteType) String() string {
	switch rt {
	case RouteCustomer:
		return "customer"
	case RoutePeer:
		return "peer"
	case RouteProvider:
		return "provider"
	default:
		return "none"
	}
}

// ErrNoRoute indicates the source has no policy-compliant path.
var ErrNoRoute = errors.New("bgp: no route")

// Tree is the routing tree toward one destination: every AS's selected
// next hop under Gao-Rexford policy. Immutable once computed.
type Tree struct {
	topo    *Topology
	dst     int
	nextHop []int32 // -1 = unreachable, self for dst
	rtype   []RouteType
	pathLen []int32
}

// Routes computes the routing tree toward dst with no exclusions.
func (t *Topology) Routes(dst ASN) (*Tree, error) {
	return t.RoutesAvoiding(dst, nil)
}

// RoutesAvoiding computes the routing tree toward dst while excluding the
// given ASes entirely (the Appendix B BGP-poisoning reroute: the victim
// poisons an AS so that no path traverses it). The destination itself
// cannot be avoided.
func (t *Topology) RoutesAvoiding(dst ASN, avoid map[ASN]bool) (*Tree, error) {
	if !t.frozen {
		t.Freeze()
	}
	d, err := t.lookup(dst)
	if err != nil {
		return nil, err
	}
	n := t.Len()
	tr := &Tree{
		topo:    t,
		dst:     d,
		nextHop: make([]int32, n),
		rtype:   make([]RouteType, n),
		pathLen: make([]int32, n),
	}
	for i := range tr.nextHop {
		tr.nextHop[i] = -1
	}
	excluded := make([]bool, n)
	for a, on := range avoid {
		if !on {
			continue
		}
		if i, ok := t.idx[a]; ok && i != d {
			excluded[i] = true
		}
	}

	tr.nextHop[d] = int32(d)
	tr.rtype[d] = RouteCustomer // the origin exports like a customer route
	tr.pathLen[d] = 0

	// Phase 1 — customer routes, BFS up provider edges level by level.
	// Processing whole levels before assignment keeps the lowest-ASN
	// tiebreak exact.
	frontier := []int32{int32(d)}
	for level := int32(1); len(frontier) > 0; level++ {
		type cand struct{ via int32 }
		cands := make(map[int32]int32) // provider -> best (lowest-ASN) via
		for _, u := range frontier {
			for _, p := range t.providers[u] {
				if tr.nextHop[p] != -1 || excluded[p] {
					continue
				}
				if best, ok := cands[p]; !ok || t.asn[u] < t.asn[best] {
					cands[p] = u
				}
			}
		}
		next := make([]int32, 0, len(cands))
		for p, via := range cands {
			tr.nextHop[p] = via
			tr.rtype[p] = RouteCustomer
			tr.pathLen[p] = level
			next = append(next, p)
		}
		// Deterministic order for the next level's tiebreaks.
		sortByASN(t, next)
		frontier = next
	}

	// Phase 2 — peer routes: one peer hop from any AS holding a customer
	// route (valley-free: peers only accept customer-learned routes).
	type peerCand struct {
		via int32
		len int32
	}
	peerBest := make(map[int32]peerCand)
	for u := 0; u < n; u++ {
		if tr.rtype[u] != RouteCustomer || excluded[u] || tr.nextHop[u] == -1 {
			continue
		}
		for _, v := range t.peers[u] {
			if tr.nextHop[v] != -1 || excluded[v] {
				continue // already has a (better) customer route
			}
			nl := tr.pathLen[u] + 1
			cur, ok := peerBest[v]
			if !ok || nl < cur.len || (nl == cur.len && t.asn[u] < t.asn[cur.via]) {
				peerBest[v] = peerCand{via: int32(u), len: nl}
			}
		}
	}
	for v, c := range peerBest {
		tr.nextHop[v] = c.via
		tr.rtype[v] = RoutePeer
		tr.pathLen[v] = c.len
	}

	// Phase 3 — provider routes: BFS down customer edges from every routed
	// AS, shortest-first (bucket queue by path length).
	maxLen := int32(n + 1)
	buckets := make([][]int32, maxLen+2)
	for u := 0; u < n; u++ {
		if tr.nextHop[u] != -1 && !excluded[u] {
			buckets[tr.pathLen[u]] = append(buckets[tr.pathLen[u]], int32(u))
		}
	}
	for l := int32(0); l <= maxLen; l++ {
		sortByASN(t, buckets[l])
		for _, u := range buckets[l] {
			if tr.pathLen[u] != l {
				continue // superseded
			}
			for _, c := range t.customers[u] {
				if tr.nextHop[c] != -1 || excluded[c] {
					continue
				}
				tr.nextHop[c] = u
				tr.rtype[c] = RouteProvider
				tr.pathLen[c] = l + 1
				if l+1 <= maxLen {
					buckets[l+1] = append(buckets[l+1], c)
				}
			}
		}
	}
	return tr, nil
}

func sortByASN(t *Topology, s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && t.asn[s[j]] < t.asn[s[j-1]]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Reachable reports whether src has a route to the destination.
func (tr *Tree) Reachable(src ASN) bool {
	i, ok := tr.topo.idx[src]
	return ok && tr.nextHop[i] != -1
}

// TypeOf returns the route type src selected.
func (tr *Tree) TypeOf(src ASN) RouteType {
	i, ok := tr.topo.idx[src]
	if !ok || tr.nextHop[i] == -1 {
		return RouteNone
	}
	return tr.rtype[i]
}

// Path returns the AS path from src to the destination, inclusive of both.
func (tr *Tree) Path(src ASN) ([]ASN, error) {
	i, err := tr.topo.lookup(src)
	if err != nil {
		return nil, err
	}
	if tr.nextHop[i] == -1 {
		return nil, fmt.Errorf("%w: AS%d", ErrNoRoute, src)
	}
	path := []ASN{src}
	cur := int32(i)
	for cur != int32(tr.dst) {
		cur = tr.nextHop[cur]
		path = append(path, tr.topo.asn[cur])
		if len(path) > tr.topo.Len() {
			return nil, fmt.Errorf("bgp: routing loop from AS%d", src)
		}
	}
	return path, nil
}

// PathLen returns the AS-path length (hops) from src, or -1.
func (tr *Tree) PathLen(src ASN) int {
	i, ok := tr.topo.idx[src]
	if !ok || tr.nextHop[i] == -1 {
		return -1
	}
	return int(tr.pathLen[i])
}
