package bgp

import (
	"fmt"
	"math/rand"
)

// GenConfig sizes the synthetic Internet. The defaults produce a
// five-region hierarchy of a few thousand ASes whose degree distribution
// is skewed like the real Internet's: a small full-mesh tier-1 core,
// regional tier-2 transit ISPs, and a long tail of stub (edge) ASes —
// the substrate for the Figure 11 IXP-coverage simulation.
type GenConfig struct {
	// Regions is the number of geographic regions (the paper uses five:
	// Europe, North America, South America, Asia-Pacific, Africa).
	Regions int
	// Tier1PerRegion is the number of tier-1 backbone ASes per region.
	Tier1PerRegion int
	// Tier2PerRegion is the number of regional transit ISPs per region.
	Tier2PerRegion int
	// StubsPerRegion is the number of edge ASes per region.
	StubsPerRegion int
	// Seed drives all sampling.
	Seed int64
}

// DefaultGenConfig returns the configuration the experiments use.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Regions:        5,
		Tier1PerRegion: 3,
		Tier2PerRegion: 40,
		StubsPerRegion: 600,
		Seed:           1,
	}
}

// Internet is a generated topology plus the AS inventory per region/tier.
type Internet struct {
	Topo *Topology
	// ByRegionTier[region][tier] lists ASes.
	Tier1 [][]ASN // [region]
	Tier2 [][]ASN
	Stubs [][]ASN
}

// AllStubs returns every stub AS.
func (n *Internet) AllStubs() []ASN {
	var out []ASN
	for _, s := range n.Stubs {
		out = append(out, s...)
	}
	return out
}

// Generate builds the synthetic Internet:
//
//   - Tier-1s form a full mesh of peerings (global reachability without
//     providers, the defining property of the clique).
//   - Each tier-2 buys transit from 1-2 same-region tier-1s (occasionally
//     one remote), and peers with a few same-region tier-2s — the links
//     that large IXPs host.
//   - Each stub buys transit from 1-3 same-region tier-2s, with a small
//     chance of multihoming to a tier-1.
func Generate(cfg GenConfig) (*Internet, error) {
	if cfg.Regions <= 0 || cfg.Tier1PerRegion <= 0 || cfg.Tier2PerRegion <= 0 || cfg.StubsPerRegion <= 0 {
		return nil, fmt.Errorf("bgp: invalid generator config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	topo := NewTopology()
	inet := &Internet{
		Topo:  topo,
		Tier1: make([][]ASN, cfg.Regions),
		Tier2: make([][]ASN, cfg.Regions),
		Stubs: make([][]ASN, cfg.Regions),
	}

	next := ASN(100)
	newAS := func(tier Tier, region int) (ASN, error) {
		a := next
		next++
		if err := topo.AddAS(a, tier, region); err != nil {
			return 0, err
		}
		return a, nil
	}

	for r := 0; r < cfg.Regions; r++ {
		for i := 0; i < cfg.Tier1PerRegion; i++ {
			a, err := newAS(Tier1, r)
			if err != nil {
				return nil, err
			}
			inet.Tier1[r] = append(inet.Tier1[r], a)
		}
	}
	// Tier-1 clique.
	var allT1 []ASN
	for _, t1s := range inet.Tier1 {
		allT1 = append(allT1, t1s...)
	}
	for i := 0; i < len(allT1); i++ {
		for j := i + 1; j < len(allT1); j++ {
			if err := topo.AddPeering(allT1[i], allT1[j]); err != nil {
				return nil, err
			}
		}
	}

	for r := 0; r < cfg.Regions; r++ {
		for i := 0; i < cfg.Tier2PerRegion; i++ {
			a, err := newAS(Tier2, r)
			if err != nil {
				return nil, err
			}
			inet.Tier2[r] = append(inet.Tier2[r], a)
			// Providers: 1-2 same-region tier-1s, sometimes one remote.
			nProv := 1 + rng.Intn(2)
			for p := 0; p < nProv; p++ {
				prov := inet.Tier1[r][rng.Intn(len(inet.Tier1[r]))]
				if rng.Float64() < 0.15 {
					prov = allT1[rng.Intn(len(allT1))]
				}
				if err := topo.AddProviderCustomer(prov, a); err != nil {
					return nil, err
				}
			}
		}
		// Tier-2 regional peering (IXP fabric links): each tier-2 peers
		// with ~4 same-region tier-2s.
		t2s := inet.Tier2[r]
		for _, a := range t2s {
			for k := 0; k < 4; k++ {
				b := t2s[rng.Intn(len(t2s))]
				if a != b {
					if err := topo.AddPeering(a, b); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	for r := 0; r < cfg.Regions; r++ {
		for i := 0; i < cfg.StubsPerRegion; i++ {
			a, err := newAS(Stub, r)
			if err != nil {
				return nil, err
			}
			inet.Stubs[r] = append(inet.Stubs[r], a)
			nProv := 1 + rng.Intn(3)
			for p := 0; p < nProv; p++ {
				prov := inet.Tier2[r][rng.Intn(len(inet.Tier2[r]))]
				if rng.Float64() < 0.05 {
					prov = inet.Tier1[r][rng.Intn(len(inet.Tier1[r]))]
				}
				if err := topo.AddProviderCustomer(prov, a); err != nil {
					return nil, err
				}
			}
		}
	}

	topo.Freeze()
	return inet, nil
}
