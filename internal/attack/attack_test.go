package attack

import (
	"math"
	"testing"

	"github.com/innetworkfiltering/vif/internal/bgp"
)

func testInternet(t testing.TB) *bgp.Internet {
	t.Helper()
	inet, err := bgp.Generate(bgp.GenConfig{
		Regions: 5, Tier1PerRegion: 2, Tier2PerRegion: 10, StubsPerRegion: 120, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inet
}

func TestDNSResolversExactCount(t *testing.T) {
	inet := testInternet(t)
	set, err := DNSResolvers(inet, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Total(); got != 10000 {
		t.Fatalf("Total = %d, want 10000", got)
	}
	if set.Name != "vulnerable-dns-resolvers" {
		t.Fatalf("Name = %q", set.Name)
	}
}

func TestMiraiExactCount(t *testing.T) {
	inet := testInternet(t)
	set, err := MiraiBots(inet, 5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Total(); got != 5000 {
		t.Fatalf("Total = %d, want 5000", got)
	}
}

func TestCountValidation(t *testing.T) {
	inet := testInternet(t)
	if _, err := DNSResolvers(inet, 0, 1); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := MiraiBots(inet, -5, 1); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestResolversSpreadBroadly(t *testing.T) {
	// Open resolvers must appear in every region and on many ASes.
	inet := testInternet(t)
	set, err := DNSResolvers(inet, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	perRegion := make(map[int]int)
	for as, n := range set.PerAS {
		r, err := inet.Topo.RegionOf(as)
		if err != nil {
			t.Fatal(err)
		}
		perRegion[r] += n
	}
	for r := 0; r < 5; r++ {
		if perRegion[r] < 1000 {
			t.Fatalf("region %d has only %d resolvers: not broad", r, perRegion[r])
		}
	}
	if len(set.PerAS) < 300 {
		t.Fatalf("resolvers on only %d ASes", len(set.PerAS))
	}
}

func TestMiraiConcentration(t *testing.T) {
	// Mirai must be (a) stub-only, (b) more concentrated than the
	// resolver set, (c) region-skewed per MiraiRegionWeights.
	inet := testInternet(t)
	bots, err := MiraiBots(inet, 20000, 4)
	if err != nil {
		t.Fatal(err)
	}
	resolvers, err := DNSResolvers(inet, 20000, 4)
	if err != nil {
		t.Fatal(err)
	}

	perRegion := make(map[int]int)
	for as, n := range bots.PerAS {
		tier, err := inet.Topo.TierOf(as)
		if err != nil {
			t.Fatal(err)
		}
		if tier != bgp.Stub {
			t.Fatalf("bot AS%d has tier %v, want stub-only", as, tier)
		}
		r, _ := inet.Topo.RegionOf(as)
		perRegion[r] += n
	}

	// Concentration: the top-10 bot ASes hold a larger share than the
	// top-10 resolver ASes.
	if topShare(bots.PerAS, 10) <= topShare(resolvers.PerAS, 10) {
		t.Fatalf("bots (top10 %.3f) not more concentrated than resolvers (top10 %.3f)",
			topShare(bots.PerAS, 10), topShare(resolvers.PerAS, 10))
	}

	// Region skew: Asia-Pacific (weight 0.35) must hold more bots than
	// Africa (weight 0.10).
	if perRegion[3] <= perRegion[4] {
		t.Fatalf("region skew missing: AP=%d Africa=%d", perRegion[3], perRegion[4])
	}
	apShare := float64(perRegion[3]) / 20000
	if math.Abs(apShare-MiraiRegionWeights[3]) > 0.12 {
		t.Fatalf("Asia-Pacific share %.3f, want ≈%.2f", apShare, MiraiRegionWeights[3])
	}
}

func topShare(perAS map[bgp.ASN]int, k int) float64 {
	var counts []int
	total := 0
	for _, n := range perAS {
		counts = append(counts, n)
		total += n
	}
	if total == 0 {
		return 0
	}
	// selection of top k
	for i := 0; i < k && i < len(counts); i++ {
		maxJ := i
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[maxJ] {
				maxJ = j
			}
		}
		counts[i], counts[maxJ] = counts[maxJ], counts[i]
	}
	top := 0
	for i := 0; i < k && i < len(counts); i++ {
		top += counts[i]
	}
	return float64(top) / float64(total)
}

func TestDeterministicPerSeed(t *testing.T) {
	inet := testInternet(t)
	a, err := MiraiBots(inet, 1000, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MiraiBots(inet, 1000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.PerAS) != len(b.PerAS) {
		t.Fatal("same seed, different AS spread")
	}
	for as, n := range a.PerAS {
		if b.PerAS[as] != n {
			t.Fatalf("same seed, different counts on AS%d", as)
		}
	}
	c, err := MiraiBots(inet, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	if len(c.PerAS) != len(a.PerAS) {
		same = false
	} else {
		for as, n := range a.PerAS {
			if c.PerAS[as] != n {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}
