// Package attack synthesizes the two attack-source datasets of §VI-C —
// vulnerable open DNS resolvers (the paper used 3M addresses from the
// DNS-OARC scan) and Mirai botnet IPs (250K from Bad Packets) — as
// distributions of source counts over the ASes of a synthetic topology.
//
// The real datasets are not redistributable; what Figure 11 measures is
// the *fraction* of sources whose route crosses a VIF IXP, which depends
// on where sources sit in the AS hierarchy, not on absolute counts. The
// generators therefore reproduce the datasets' placement character:
//
//   - Open resolvers are everywhere DNS servers are — spread broadly
//     across regions and across both transit and edge ASes, roughly
//     proportional to network size.
//   - Mirai bots live in consumer edge networks, heavily skewed toward a
//     few large residential ISPs and toward particular regions (the 2016
//     outbreak concentrated in a handful of countries).
package attack

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/innetworkfiltering/vif/internal/bgp"
	"github.com/innetworkfiltering/vif/internal/ixp"
)

// DefaultResolverCount scales the paper's 3M resolvers into simulation
// range (coverage ratios are count-invariant; see package comment).
const DefaultResolverCount = 30000

// DefaultMiraiCount scales the paper's 250K bots likewise.
const DefaultMiraiCount = 25000

// DNSResolvers synthesizes the open-resolver set over a topology.
func DNSResolvers(inet *bgp.Internet, count int, seed int64) (*ixp.SourceSet, error) {
	if count <= 0 {
		return nil, fmt.Errorf("attack: count %d", count)
	}
	rng := rand.New(rand.NewSource(seed))

	// Candidate hosts: all stubs plus tier-2s (hosting providers run many
	// open resolvers). Weight ∝ exp(N(0, 0.8)): broad, mildly skewed.
	var (
		ases    []bgp.ASN
		weights []float64
	)
	for r := range inet.Stubs {
		for _, a := range inet.Stubs[r] {
			ases = append(ases, a)
			weights = append(weights, math.Exp(rng.NormFloat64()*0.8))
		}
		for _, a := range inet.Tier2[r] {
			ases = append(ases, a)
			// Transit/hosting ASes run more resolvers.
			weights = append(weights, 2*math.Exp(rng.NormFloat64()*0.8))
		}
	}
	set := &ixp.SourceSet{Name: "vulnerable-dns-resolvers", PerAS: make(map[bgp.ASN]int)}
	distribute(set.PerAS, ases, weights, count, rng)
	return set, nil
}

// MiraiRegionWeights skews bots toward the regions the 2016 outbreak hit
// hardest (indexed like ixp.RegionNames: Europe, North America, South
// America, Asia-Pacific, Africa).
var MiraiRegionWeights = []float64{0.15, 0.12, 0.28, 0.35, 0.10}

// MiraiBots synthesizes the botnet set: stub-only, region-skewed, and
// heavily concentrated (lognormal σ=2: a few consumer ISPs contribute
// most of the bots).
func MiraiBots(inet *bgp.Internet, count int, seed int64) (*ixp.SourceSet, error) {
	if count <= 0 {
		return nil, fmt.Errorf("attack: count %d", count)
	}
	rng := rand.New(rand.NewSource(seed))
	var (
		ases    []bgp.ASN
		weights []float64
	)
	for r := range inet.Stubs {
		regionW := 0.05
		if r < len(MiraiRegionWeights) {
			regionW = MiraiRegionWeights[r]
		}
		for _, a := range inet.Stubs[r] {
			ases = append(ases, a)
			weights = append(weights, regionW*math.Exp(rng.NormFloat64()*2.0))
		}
	}
	set := &ixp.SourceSet{Name: "mirai-botnet", PerAS: make(map[bgp.ASN]int)}
	distribute(set.PerAS, ases, weights, count, rng)
	return set, nil
}

// distribute allocates count sources across ases proportionally to
// weights: integer parts exactly, the remainder by fractional-part coin
// flips, so the total is exact and the draw deterministic per seed.
func distribute(perAS map[bgp.ASN]int, ases []bgp.ASN, weights []float64, count int, rng *rand.Rand) {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 || len(ases) == 0 {
		return
	}
	type frac struct {
		as bgp.ASN
		f  float64
	}
	rem := make([]frac, 0, len(ases))
	assigned := 0
	for i, a := range ases {
		exact := weights[i] / total * float64(count)
		base := int(exact)
		if base > 0 {
			perAS[a] += base
			assigned += base
		}
		rem = append(rem, frac{as: a, f: exact - float64(base)})
	}
	for assigned < count && len(rem) > 0 {
		i := rng.Intn(len(rem))
		if rem[i].f == 0 || rng.Float64() < rem[i].f {
			perAS[rem[i].as]++
			assigned++
			rem[i] = rem[len(rem)-1]
			rem = rem[:len(rem)-1]
		}
	}
}
