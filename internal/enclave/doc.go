// Package enclave simulates the Intel SGX trusted execution environment
// that hosts VIF's auditable filter.
//
// Real SGX gives three things VIF depends on: (1) an isolated memory
// region (the EPC) whose contents the host cannot read or tamper with,
// (2) a measurement of the loaded code that remote parties can verify via
// attestation, and (3) severe, well-characterized performance cliffs (MEE
// overhead on cache misses, paging beyond the ~92 MB EPC, expensive
// ECall/OCall transitions). This package reproduces (2) and (3) faithfully
// — measurement as SHA-256 over the code identity, and a virtual-time cost
// meter driven by CostModel — and models (1) by API discipline: secrets
// (the filtering secret, the log MAC key) never leave the Enclave value
// except through the attested-channel APIs.
//
// # Cost accounting
//
// The hosted filter charges work through CostVector/ChargeBatch (one
// atomic meter update per burst) and memory through SetMemoryUsed; the
// pipeline layer converts accumulated virtual nanoseconds into the
// throughput figures behind the paper's plots. When several tenants share
// a machine, EPCBudgeter apportions the EPC by rule-memory weight with
// largest-remainder rounding (shares always sum to exactly the machine
// EPC); each enclave's SetEPCBudget cap makes the cost model price
// accesses beyond the tenant's share as paging (AccessCostBudgeted,
// PagingPressure).
//
// # Concurrency contract
//
//   - Charge*, TickN, SetMemoryUsed are called by the single filter
//     thread that owns the hosted filter.
//   - Meter and budget readers (VirtualNs, MemoryUsed, PagingPressure,
//     EPCBudget) and the control-plane budget writer (SetEPCBudget) are
//     safe from any goroutine: all shared state is atomic.
//   - EPCBudgeter itself is not goroutine-safe; its single writer is the
//     engine's namespace-mutation path (under the engine's nsMu).
//
// # Invariants
//
//   - The filtering secret and MAC key never cross the enclave boundary
//     in plaintext; accessors exist only for in-enclave code paths and
//     the attested key-release channel.
//   - Virtual time is monotone; the data path never reads the clock
//     (verdict statelessness does not depend on it).
//   - An EPCBudgeter's shares sum to exactly EPCBytes whenever at least
//     one tenant is registered.
package enclave
