package enclave

import "testing"

func TestEPCBudgeterSharesSumExactly(t *testing.T) {
	const epc = 10_000_001 // odd total so floors alone cannot add up
	b := NewEPCBudgeter(epc)
	b.Set(0, 3)
	b.Set(1, 3)
	b.Set(2, 3)
	shares := b.Shares()
	if len(shares) != 3 {
		t.Fatalf("shares %v", shares)
	}
	var sum int
	for _, s := range shares {
		sum += s
	}
	if sum != epc {
		t.Fatalf("shares sum %d, want exactly %d", sum, epc)
	}
	// Equal weights: shares within one byte of each other (largest
	// remainder distributes the leftover).
	for ns, s := range shares {
		if s < epc/3 || s > epc/3+1 {
			t.Fatalf("ns %d share %d, want ~%d", ns, s, epc/3)
		}
	}
}

func TestEPCBudgeterProportionalToWeight(t *testing.T) {
	b := NewEPCBudgeter(1000)
	b.Set(7, 100)
	b.Set(9, 300)
	if got := b.Share(7); got != 250 {
		t.Fatalf("light tenant share %d, want 250", got)
	}
	if got := b.Share(9); got != 750 {
		t.Fatalf("heavy tenant share %d, want 750", got)
	}
	// Updating a weight rebalances.
	b.Set(7, 300)
	if got := b.Share(7); got != 500 {
		t.Fatalf("rebalanced share %d, want 500", got)
	}
}

func TestEPCBudgeterRemoveRedistributes(t *testing.T) {
	b := NewEPCBudgeter(1 << 20)
	b.Set(0, 1)
	b.Set(1, 1)
	b.Remove(0)
	if got := b.Share(1); got != 1<<20 {
		t.Fatalf("survivor share %d, want the whole EPC", got)
	}
	if got := b.Share(0); got != 0 {
		t.Fatalf("removed tenant still holds %d", got)
	}
	b.Remove(1)
	if got := b.Shares(); len(got) != 0 {
		t.Fatalf("empty budgeter shares %v", got)
	}
}

func TestEPCBudgeterClampsWeights(t *testing.T) {
	b := NewEPCBudgeter(100)
	b.Set(0, 0)  // clamped to 1
	b.Set(1, -5) // clamped to 1
	if got := b.Share(0) + b.Share(1); got != 100 {
		t.Fatalf("clamped weights sum %d", got)
	}
}

func TestEnclaveEPCBudgetPricesPaging(t *testing.T) {
	model := DefaultCostModel()
	e, err := New(CodeIdentity{Name: "t", BinarySize: 1 << 20}, model)
	if err != nil {
		t.Fatal(err)
	}
	e.SetMemoryUsed(40 << 20) // fits the full EPC easily

	if e.EPCBudget() != model.EPCBytes {
		t.Fatalf("unbudgeted EPCBudget %d, want %d", e.EPCBudget(), model.EPCBytes)
	}
	if e.PagingPressure() != 0 {
		t.Fatalf("paging pressure %f with room to spare", e.PagingPressure())
	}
	fullCost := model.AccessCost(e.MemoryUsed())

	// A tenant budget below the working set turns on paging pressure and
	// makes every cold access dearer — the multi-victim contention the
	// budgeter surfaces in the cost model.
	e.SetEPCBudget(10 << 20)
	if e.EPCBudget() != 10<<20 {
		t.Fatalf("budget %d", e.EPCBudget())
	}
	if !e.EPCExceeded() {
		t.Fatal("working set beyond budget not flagged")
	}
	p := e.PagingPressure()
	if p <= 0 || p >= 1 {
		t.Fatalf("paging pressure %f", p)
	}
	capped := model.AccessCostBudgeted(e.MemoryUsed(), e.EPCBudget())
	if capped <= fullCost {
		t.Fatalf("budgeted access cost %f not above unbudgeted %f", capped, fullCost)
	}

	// Lifting the cap restores the platform pricing.
	e.SetEPCBudget(0)
	if e.EPCBudget() != model.EPCBytes || e.PagingPressure() != 0 {
		t.Fatalf("cap not lifted: budget %d pressure %f", e.EPCBudget(), e.PagingPressure())
	}
	// A budget above the platform EPC cannot mint memory.
	e.SetEPCBudget(model.EPCBytes * 2)
	if e.EPCBudget() != model.EPCBytes {
		t.Fatalf("budget beyond platform EPC: %d", e.EPCBudget())
	}
}
