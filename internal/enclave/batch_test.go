package enclave

import (
	"math"
	"testing"
)

// TestChargeBatchMatchesScalarCharges: one ChargeBatch call must meter
// exactly what the equivalent sequence of per-operation charges meters
// (modulo the 1/16 ns fixed-point rounding each individual charge pays).
func TestChargeBatchMatchesScalarCharges(t *testing.T) {
	m := DefaultCostModel()
	a, _ := New(testIdentity(), m)
	b, _ := New(testIdentity(), m)
	a.SetMemoryUsed(30 << 20) // past the LLC so cold refs are footprint-priced
	b.SetMemoryUsed(30 << 20)

	const pkts = 64
	a.ResetMeter()
	for i := 0; i < pkts; i++ {
		a.ChargeFixed()
		a.ChargeCopyIn(23)
		a.ChargeSketchUpdate(4)
		a.ChargeExactMatch()
		a.ChargeNative(2 * m.MemRefNs)
		a.ChargeAccesses(2)
		a.ChargeSHA256(45)
	}

	b.ResetMeter()
	b.ChargeBatch(CostVector{
		FixedPackets: pkts,
		CopyInBytes:  pkts * 23,
		SketchRows:   pkts * 4,
		ExactProbes:  pkts,
		HotRefs:      pkts * 2,
		ColdRefs:     pkts * 2,
		SHA256Hashes: pkts,
		SHA256Bytes:  pkts * 45,
	})

	// Scalar rounding: ≤ 1/32 ns expected error per charge, 7 charges/pkt.
	if diff := math.Abs(a.VirtualNs() - b.VirtualNs()); diff > pkts*7*0.0625 {
		t.Fatalf("batch %.2f ns vs scalar %.2f ns (diff %.2f)", b.VirtualNs(), a.VirtualNs(), diff)
	}
}

// TestChargeBatchFullCopyAndNative covers the remaining cost-vector terms.
func TestChargeBatchFullCopyAndNative(t *testing.T) {
	m := DefaultCostModel()
	e, _ := New(testIdentity(), m)
	e.SetMemoryUsed(12 << 20)

	e.ResetMeter()
	e.ChargeBatch(CostVector{
		FullCopies:     3,
		FullCopyBytes:  3 * 1500,
		NativeColdRefs: 5,
		NativeNs:       40,
	})
	want := 3*m.FullCopyCost(1500) + 5*m.NativeAccessCost(e.MemoryUsed()) + 40
	if diff := math.Abs(e.VirtualNs() - want); diff > 0.5 {
		t.Fatalf("charge %.2f ns, want %.2f", e.VirtualNs(), want)
	}

	// The zero vector charges nothing.
	e.ResetMeter()
	e.ChargeBatch(CostVector{})
	if got := e.VirtualNs(); got != 0 {
		t.Fatalf("zero vector charged %.3f ns", got)
	}
}

// TestTickN advances the clock like n Ticks.
func TestTickN(t *testing.T) {
	e, _ := New(testIdentity(), DefaultCostModel())
	e.Tick()
	e.TickN(63)
	if got := e.Ticks(); got != 64 {
		t.Fatalf("ticks = %d, want 64", got)
	}
}
