package enclave

import (
	"sort"
	"sync"
)

// EPCBudgeter apportions one machine's EPC across tenant namespaces — the
// scarce-shared-resource arbitration of a multi-victim deployment. The
// paper's fleet serves one victim, so an enclave's only EPC competitor is
// itself; a transit AS / IXP filtering for many downstream victims at once
// runs every victim's filter on the same SGX machines, and the ~92 MB EPC
// becomes the contended resource (the same structure as the classic
// optimal-filtering formulation: allocate a scarce filter resource across
// demands). The budgeter splits EPCBytes proportionally to each
// namespace's rule-set memory weight, with exact largest-remainder
// rounding so the shares always sum to precisely EPCBytes — no tenant can
// be promised memory the machine does not have, and none of the EPC is
// silently stranded.
//
// The budgeter is pure accounting: callers (the engine) push the resulting
// shares into each namespace's enclaves via Enclave.SetEPCBudget, where the
// cost model prices accesses beyond the share as paging.
type EPCBudgeter struct {
	mu       sync.Mutex
	epcBytes int
	weights  map[int]int // namespace id -> rule-set memory weight, bytes
	shares   map[int]int // namespace id -> apportioned EPC bytes
}

// NewEPCBudgeter creates a budgeter for a machine exposing epcBytes of
// usable EPC.
func NewEPCBudgeter(epcBytes int) *EPCBudgeter {
	if epcBytes < 0 {
		epcBytes = 0
	}
	return &EPCBudgeter{
		epcBytes: epcBytes,
		weights:  make(map[int]int),
		shares:   make(map[int]int),
	}
}

// EPCBytes returns the machine EPC the budgeter apportions.
func (b *EPCBudgeter) EPCBytes() int { return b.epcBytes }

// Set installs (or updates) a namespace's weight — its rule-set memory
// footprint in bytes — and recomputes every share. A non-positive weight
// is clamped to 1 so an attached namespace always holds a nonzero claim.
func (b *EPCBudgeter) Set(ns, weightBytes int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if weightBytes < 1 {
		weightBytes = 1
	}
	b.weights[ns] = weightBytes
	b.rebalance()
}

// Remove detaches a namespace and redistributes its share among the rest.
func (b *EPCBudgeter) Remove(ns int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.weights, ns)
	b.rebalance()
}

// Share returns a namespace's current EPC allowance in bytes (0 when the
// namespace is not attached).
func (b *EPCBudgeter) Share(ns int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shares[ns]
}

// Shares returns a copy of every namespace's allowance. The values sum to
// exactly EPCBytes whenever at least one namespace is attached.
func (b *EPCBudgeter) Shares() map[int]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[int]int, len(b.shares))
	for ns, s := range b.shares {
		out[ns] = s
	}
	return out
}

// rebalance recomputes shares under b.mu: proportional split by weight,
// exact total via largest-remainder apportionment (floors first, then the
// leftover bytes go to the largest fractional remainders, ties broken by
// namespace id for determinism).
func (b *EPCBudgeter) rebalance() {
	clear(b.shares)
	if len(b.weights) == 0 || b.epcBytes == 0 {
		return
	}
	var totalW int
	ids := make([]int, 0, len(b.weights))
	for ns, w := range b.weights {
		totalW += w
		ids = append(ids, ns)
	}
	sort.Ints(ids)
	type frac struct {
		ns  int
		rem float64
	}
	fracs := make([]frac, 0, len(ids))
	assigned := 0
	for _, ns := range ids {
		exact := float64(b.epcBytes) * float64(b.weights[ns]) / float64(totalW)
		floor := int(exact)
		b.shares[ns] = floor
		assigned += floor
		fracs = append(fracs, frac{ns: ns, rem: exact - float64(floor)})
	}
	sort.SliceStable(fracs, func(i, j int) bool { return fracs[i].rem > fracs[j].rem })
	for i := 0; assigned < b.epcBytes; i++ {
		b.shares[fracs[i%len(fracs)].ns]++
		assigned++
	}
}
