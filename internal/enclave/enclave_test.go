package enclave

import (
	"math"
	"testing"
	"testing/quick"
)

func testIdentity() CodeIdentity {
	return CodeIdentity{
		Name:       "vif-filter",
		Version:    "1.0.0",
		Config:     "sketch=2x65536;stride=8",
		BinarySize: 1 << 20,
	}
}

func TestMeasurementDeterministic(t *testing.T) {
	a := testIdentity().Measurement()
	b := testIdentity().Measurement()
	if a != b {
		t.Fatal("same identity must measure identically")
	}
}

func TestMeasurementSensitivity(t *testing.T) {
	base := testIdentity()
	variants := []CodeIdentity{
		{Name: "vif-filter2", Version: base.Version, Config: base.Config},
		{Name: base.Name, Version: "1.0.1", Config: base.Config},
		{Name: base.Name, Version: base.Version, Config: "stride=16"},
		// Concatenation attack: moving bytes between fields must change
		// the measurement (length prefixing).
		{Name: base.Name + "1", Version: ".0.0", Config: base.Config},
	}
	for i, v := range variants {
		if v.Measurement() == base.Measurement() {
			t.Errorf("variant %d measures same as base: tampered code undetectable", i)
		}
	}
}

func TestNewEnclavesHaveDistinctSecrets(t *testing.T) {
	a, err := New(testIdentity(), DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testIdentity(), DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if a.Secret() == b.Secret() {
		t.Fatal("two enclaves share a filtering secret")
	}
	if a.MACKey() == b.MACKey() {
		t.Fatal("two enclaves share a MAC key")
	}
	if a.ID() == b.ID() {
		t.Fatal("enclave IDs must be unique")
	}
	if a.Secret() == a.MACKey() {
		t.Fatal("secret and MAC key must be independent")
	}
}

func TestEPCAccounting(t *testing.T) {
	e, err := New(testIdentity(), DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if e.MemoryUsed() != 1<<20 {
		t.Fatalf("fresh enclave uses %d, want binary size", e.MemoryUsed())
	}
	if err := e.Alloc(10 << 20); err != nil {
		t.Fatal(err)
	}
	if e.MemoryUsed() != 11<<20 {
		t.Fatalf("after alloc: %d", e.MemoryUsed())
	}
	if e.EPCExceeded() {
		t.Fatal("11 MB must not exceed 92 MB EPC")
	}
	if err := e.Alloc(100 << 20); err != nil {
		t.Fatal(err)
	}
	if !e.EPCExceeded() {
		t.Fatal("111 MB must exceed EPC")
	}
	e.Free(100 << 20)
	if e.EPCExceeded() {
		t.Fatal("after free must fit again")
	}
	if err := e.Alloc(-1); err == nil {
		t.Fatal("negative alloc must fail")
	}
	if err := e.Alloc(4 << 30); err == nil {
		t.Fatal("alloc past hard cap must fail")
	}
}

func TestSetMemoryUsed(t *testing.T) {
	e, _ := New(testIdentity(), DefaultCostModel())
	e.SetMemoryUsed(5 << 20)
	if got := e.MemoryUsed(); got != (1<<20)+(5<<20) {
		t.Fatalf("MemoryUsed = %d", got)
	}
}

func TestVirtualTimeMeter(t *testing.T) {
	e, _ := New(testIdentity(), DefaultCostModel())
	if e.VirtualNs() != 0 {
		t.Fatal("fresh meter not zero")
	}
	e.ChargeECall()
	if got := e.VirtualNs(); math.Abs(got-8000) > 1 {
		t.Fatalf("after ECall: %v ns, want ~8000", got)
	}
	e.ChargeCopyIn(1000)
	want := 8000 + 1000*DefaultCostModel().CopyInPerByteNs
	if got := e.VirtualNs(); math.Abs(got-want) > 1 {
		t.Fatalf("after copy: %v, want %v", got, want)
	}
	e.ResetMeter()
	if e.VirtualNs() != 0 {
		t.Fatal("ResetMeter failed")
	}
}

func TestAccessCostRegimes(t *testing.T) {
	m := DefaultCostModel()
	inCache := m.AccessCost(1 << 20)   // 1 MB: fits LLC
	overLLC := m.AccessCost(30 << 20)  // 30 MB: misses, MEE pays
	overEPC := m.AccessCost(150 << 20) // 150 MB: paging
	nativeOverLLC := m.NativeAccessCost(30 << 20)

	if !(inCache < overLLC && overLLC < overEPC) {
		t.Fatalf("cost regimes not ordered: %v %v %v", inCache, overLLC, overEPC)
	}
	if nativeOverLLC >= overLLC {
		t.Fatalf("native miss (%v) must be cheaper than MEE miss (%v)", nativeOverLLC, overLLC)
	}
	if got := m.AccessCost(0); got != m.MemRefNs {
		t.Fatalf("empty working set cost %v, want bare ref %v", got, m.MemRefNs)
	}
}

func TestAccessCostMonotone(t *testing.T) {
	m := DefaultCostModel()
	f := func(a, b uint32) bool {
		x, y := int(a%(512<<20)), int(b%(512<<20))
		if x > y {
			x, y = y, x
		}
		return m.AccessCost(x) <= m.AccessCost(y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMissRatioBounds(t *testing.T) {
	f := func(w, c uint32) bool {
		r := missRatio(int(w), int(c%(1<<30)+1))
		return r >= 0 && r < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if missRatio(100, 100) != 0 {
		t.Error("fitting set must not miss")
	}
	if missRatio(0, 0) != 0 {
		t.Error("empty set must not miss")
	}
}

func TestClockTicksButFilterNeverNeedsIt(t *testing.T) {
	e, _ := New(testIdentity(), DefaultCostModel())
	for i := 0; i < 10; i++ {
		e.Tick()
	}
	if e.Ticks() != 10 {
		t.Fatalf("Ticks = %d", e.Ticks())
	}
	// The real assertion of arrival-time independence lives in package
	// filter's property tests; here we only pin the clock API contract.
}

func TestChargeCosts(t *testing.T) {
	m := DefaultCostModel()
	e, _ := New(testIdentity(), m)

	e.ResetMeter()
	e.ChargeSHA256(13)
	want := m.SHA256FixedNs + 13*m.SHA256PerByteNs
	if got := e.VirtualNs(); math.Abs(got-want) > 0.1 {
		t.Fatalf("SHA256 charge %v, want %v", got, want)
	}

	e.ResetMeter()
	e.ChargeSketchUpdate(4)
	if got := e.VirtualNs(); math.Abs(got-4*m.SketchUpdateNs) > 0.1 {
		t.Fatalf("sketch charge %v", got)
	}

	e.ResetMeter()
	e.ChargeAccesses(3)
	wantAccess := 3 * m.AccessCost(e.MemoryUsed())
	if got := e.VirtualNs(); math.Abs(got-wantAccess) > 0.5 {
		t.Fatalf("access charge %v, want %v", got, wantAccess)
	}
}

func BenchmarkChargeAccesses(b *testing.B) {
	e, _ := New(testIdentity(), DefaultCostModel())
	e.SetMemoryUsed(30 << 20)
	for i := 0; i < b.N; i++ {
		e.ChargeAccesses(4)
	}
}
