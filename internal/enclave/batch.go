package enclave

// CostVector accumulates the cost-model terms of a whole burst of packets
// so the meter is charged once per batch instead of ~6 atomic adds per
// packet. The filter's batch path fills one on the stack while deciding a
// burst and hands it to ChargeBatch; every field is a count (or byte
// count) of operations actually performed, so the virtual-time total is
// identical to what per-packet charging would have produced, minus only
// the per-charge rounding.
type CostVector struct {
	// FixedPackets counts packets paying the fixed SGX data-path cost.
	FixedPackets int
	// CopyInBytes counts bytes copied across the boundary (descriptors on
	// the near-zero-copy path).
	CopyInBytes int
	// FullCopies and FullCopyBytes count wholesale packet copies into the
	// enclave and their bytes (the naive full-copy path).
	FullCopies    int
	FullCopyBytes int
	// SketchRows counts count-min sketch row updates.
	SketchRows int
	// ExactProbes counts exact-match table probes (hit or miss).
	ExactProbes int
	// SHA256Hashes and SHA256Bytes count probabilistic-filter hash
	// evaluations and their input bytes.
	SHA256Hashes int
	SHA256Bytes  int
	// HotRefs counts lookup-table references priced as cache hits (the
	// upper trie levels every packet touches).
	HotRefs int
	// ColdRefs counts footprint-dependent references at enclave (MEE/EPC)
	// rates; NativeColdRefs the same at no-SGX rates.
	ColdRefs       int
	NativeColdRefs int
	// NativeNs accumulates raw model-computed nanoseconds.
	NativeNs float64
}

// ChargeBatch applies an accumulated cost vector to the meter with a
// single atomic update. The footprint-dependent access costs are priced at
// the current working-set size, evaluated once per batch — the same value
// per-packet charging would see, since the decision path never allocates.
func (e *Enclave) ChargeBatch(v CostVector) {
	m := e.model
	ns := float64(v.FixedPackets)*m.SGXFixedNs +
		float64(v.CopyInBytes)*m.CopyInPerByteNs +
		float64(v.FullCopies)*m.FullCopyFixedNs +
		float64(v.FullCopyBytes)*m.CopyInPerByteNs +
		float64(v.SketchRows)*m.SketchUpdateNs +
		float64(v.ExactProbes)*m.ExactMatchNs +
		float64(v.SHA256Hashes)*m.SHA256FixedNs +
		float64(v.SHA256Bytes)*m.SHA256PerByteNs +
		float64(v.HotRefs)*m.MemRefNs +
		v.NativeNs
	if v.ColdRefs > 0 {
		ns += float64(v.ColdRefs) * m.AccessCostBudgeted(e.MemoryUsed(), e.EPCBudget())
	}
	if v.NativeColdRefs > 0 {
		ns += float64(v.NativeColdRefs) * m.NativeAccessCost(e.MemoryUsed())
	}
	e.charge(ns)
}
