package enclave

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// ErrOutOfEPC is returned when an allocation exceeds the hard commitment
// cap (4x EPC) past which the SGX driver refuses memory.
var ErrOutOfEPC = errors.New("enclave: allocation exceeds EPC hard cap")

// CodeIdentity describes the binary loaded into an enclave. Its digest is
// the enclave measurement (MRENCLAVE analogue) that remote attestation
// proves. Version changes change the measurement, so a victim pinning a
// measurement rejects silently-modified filter code.
type CodeIdentity struct {
	// Name of the enclave binary, e.g. "vif-filter".
	Name string
	// Version of the filter implementation.
	Version string
	// Config is the canonical encoding of security-relevant configuration
	// baked into the enclave (sketch geometry, trie stride). Two enclaves
	// with different filtering semantics must measure differently.
	Config string
	// BinarySize is the enclave binary size in bytes; attestation latency
	// scales with it (Appendix G measures a 1 MB binary).
	BinarySize int
}

// Measurement returns the SHA-256 digest identifying this code.
func (c CodeIdentity) Measurement() [32]byte {
	h := sha256.New()
	// Length-prefixed fields so no two identities collide by concatenation.
	for _, s := range []string{c.Name, c.Version, c.Config} {
		var n [4]byte
		n[0] = byte(len(s) >> 24)
		n[1] = byte(len(s) >> 16)
		n[2] = byte(len(s) >> 8)
		n[3] = byte(len(s))
		h.Write(n[:])
		io.WriteString(h, s)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Enclave is one simulated SGX enclave instance. It is the unit the paper
// parallelizes: ≤ ~10 Gb/s and ~3,000 rules each.
//
// The meter (virtual nanoseconds) is updated by Charge* methods as the
// hosted filter does work; the pipeline turns accumulated virtual time into
// throughput figures. Charge methods use atomics so a measurement reader
// can sample concurrently with the filter thread.
type Enclave struct {
	id       uint64
	identity CodeIdentity
	model    CostModel

	// secret is the in-enclave filtering secret (Appendix A's "enclave's
	// secrecy" for hash-based probabilistic filtering). It never crosses
	// the boundary.
	secret [32]byte
	// macKey authenticates packet-log snapshots released to verifiers.
	macKey [32]byte

	epcUsed   atomic.Int64
	virtualNs atomic.Uint64 // fixed-point: 1/16 ns units
	ticks     atomic.Uint64 // in-enclave monotonic clock (never read by the filter)

	// epcBudget is this enclave's apportioned share of the machine's EPC
	// when several tenants' enclaves share the platform (0 = unbudgeted,
	// the whole EPC). Set by the control plane (enclave.EPCBudgeter via the
	// engine); read by the charging paths, so it is atomic.
	epcBudget atomic.Int64
}

var nextEnclaveID atomic.Uint64

// New creates an initialized enclave running the given code identity under
// the given cost model. Key material is drawn from crypto/rand (standing in
// for SGX's EGETKEY hardware keys).
func New(identity CodeIdentity, model CostModel) (*Enclave, error) {
	e := &Enclave{
		id:       nextEnclaveID.Add(1),
		identity: identity,
		model:    model,
	}
	if _, err := rand.Read(e.secret[:]); err != nil {
		return nil, fmt.Errorf("enclave: derive secret: %w", err)
	}
	if _, err := rand.Read(e.macKey[:]); err != nil {
		return nil, fmt.Errorf("enclave: derive mac key: %w", err)
	}
	// Loading the binary consumes EPC before any runtime allocation.
	e.epcUsed.Store(int64(identity.BinarySize))
	return e, nil
}

// ID returns a process-unique enclave identifier (for cluster membership;
// not security-relevant).
func (e *Enclave) ID() uint64 { return e.id }

// Identity returns the loaded code identity.
func (e *Enclave) Identity() CodeIdentity { return e.identity }

// Measurement returns the enclave measurement remote parties verify.
func (e *Enclave) Measurement() [32]byte { return e.identity.Measurement() }

// Model returns the platform cost model.
func (e *Enclave) Model() CostModel { return e.model }

// Secret exposes the in-enclave filtering secret TO IN-ENCLAVE CODE ONLY
// (package filter). By convention — enforced by review, as in the real
// system by hardware — host-side packages never call this.
func (e *Enclave) Secret() [32]byte { return e.secret }

// MACKey exposes the log-authentication key to in-enclave code only.
func (e *Enclave) MACKey() [32]byte { return e.macKey }

// Alloc charges n bytes against the EPC accounting. Going beyond EPCBytes
// is allowed — SGX pages, it does not fail — but every access then pays the
// paging penalty via AccessCost. A hard cap of 4x EPC models the point
// where the SGX driver refuses further commitment.
func (e *Enclave) Alloc(n int) error {
	if n < 0 {
		return fmt.Errorf("enclave: negative alloc %d", n)
	}
	if e.epcUsed.Load()+int64(n) > 4*int64(e.model.EPCBytes) {
		return ErrOutOfEPC
	}
	e.epcUsed.Add(int64(n))
	return nil
}

// Free returns n bytes to the EPC accounting.
func (e *Enclave) Free(n int) {
	if v := e.epcUsed.Add(-int64(n)); v < 0 {
		e.epcUsed.Store(0)
	}
}

// SetMemoryUsed sets the runtime allocation to exactly n bytes (plus the
// binary). The filter calls this after rebuilding its lookup table, whose
// size it knows precisely.
func (e *Enclave) SetMemoryUsed(n int) {
	e.epcUsed.Store(int64(e.identity.BinarySize) + int64(n))
}

// MemoryUsed returns the current EPC consumption in bytes.
func (e *Enclave) MemoryUsed() int { return int(e.epcUsed.Load()) }

// MeterSnapshot is one consistent-enough read of the enclave's live
// meters, for telemetry exporters that publish several of them per scrape
// without four separate accessor calls at every site. Each field is an
// independent atomic load, like any monitoring counter.
type MeterSnapshot struct {
	// VirtualNs is the accumulated modeled SGX time in nanoseconds.
	VirtualNs float64
	// Ticks counts data-path packets the enclave clocked.
	Ticks uint64
	// MemoryUsed and EPCBudget are the live working set and its usable
	// EPC cap, in bytes.
	MemoryUsed, EPCBudget int
	// PagingPressure is the working-set fraction beyond the budget.
	PagingPressure float64
}

// Meter snapshots the enclave's live meters. Safe from any goroutine.
func (e *Enclave) Meter() MeterSnapshot {
	return MeterSnapshot{
		VirtualNs:      e.VirtualNs(),
		Ticks:          e.Ticks(),
		MemoryUsed:     e.MemoryUsed(),
		EPCBudget:      e.EPCBudget(),
		PagingPressure: e.PagingPressure(),
	}
}

// SetEPCBudget caps this enclave's usable EPC at n bytes — the tenant's
// apportioned share of the shared platform EPC in a multi-victim
// deployment (enclave.EPCBudgeter computes the shares). n <= 0 removes
// the cap (the whole EPC). The cap changes only the *cost* of accesses (a
// working set beyond the budget pays paging), never a verdict: it is pure
// performance modeling, so the filter's statelessness is untouched.
func (e *Enclave) SetEPCBudget(n int) {
	if n < 0 {
		n = 0
	}
	e.epcBudget.Store(int64(n))
}

// EPCBudget returns the effective usable EPC in bytes: the apportioned
// budget when one is set, otherwise the platform's full EPCBytes.
func (e *Enclave) EPCBudget() int {
	if b := e.epcBudget.Load(); b > 0 && b < int64(e.model.EPCBytes) {
		return int(b)
	}
	return e.model.EPCBytes
}

// PagingPressure returns the fraction of this enclave's working set that
// cannot be EPC-resident under its budget — 0 when everything fits, and
// the accesses' expected paging exposure otherwise. Safe from any
// goroutine (both inputs are atomics).
func (e *Enclave) PagingPressure() float64 {
	return e.model.PagedFraction(e.MemoryUsed(), e.EPCBudget())
}

// EPCExceeded reports whether the working set has outgrown the usable EPC
// (the regime where Figure 3a's throughput collapse steepens). Under an
// apportioned budget the cliff arrives at the budget, not the platform
// total.
func (e *Enclave) EPCExceeded() bool {
	return e.epcUsed.Load() > int64(e.EPCBudget())
}

const nsFixedPoint = 16 // virtual-time resolution: 1/16 ns

// charge adds virtual nanoseconds to the meter.
func (e *Enclave) charge(ns float64) {
	if ns <= 0 {
		return
	}
	e.virtualNs.Add(uint64(ns*nsFixedPoint + 0.5))
}

// VirtualNs returns accumulated virtual time in nanoseconds.
func (e *Enclave) VirtualNs() float64 {
	return float64(e.virtualNs.Load()) / nsFixedPoint
}

// ResetMeter zeroes the virtual-time meter (between experiment runs).
func (e *Enclave) ResetMeter() { e.virtualNs.Store(0) }

// Tick advances the in-enclave monotonic clock. The data plane ticks it per
// packet; the *filter logic never reads it* — that is the arrival-time
// independence property of §III-A, and the test suite asserts decisions are
// invariant under clock manipulation.
func (e *Enclave) Tick() { e.ticks.Add(1) }

// TickN advances the clock by a whole burst at once (the batch data path's
// amortized equivalent of per-packet Tick).
func (e *Enclave) TickN(n uint64) { e.ticks.Add(n) }

// Ticks returns the clock, for control-plane bookkeeping only.
func (e *Enclave) Ticks() uint64 { return e.ticks.Load() }

// ChargeECall charges one host→enclave transition.
func (e *Enclave) ChargeECall() { e.charge(e.model.ECallNs) }

// ChargeOCall charges one enclave→host transition.
func (e *Enclave) ChargeOCall() { e.charge(e.model.OCallNs) }

// ChargeCopyIn charges copying n bytes across the boundary.
func (e *Enclave) ChargeCopyIn(n int) { e.charge(e.model.CopyInCost(n)) }

// ChargeFullCopy charges a wholesale packet copy into the enclave.
func (e *Enclave) ChargeFullCopy(n int) { e.charge(e.model.FullCopyCost(n)) }

// ChargeAccesses charges k memory references into the current working set
// (priced under the enclave's EPC budget, if one is apportioned).
func (e *Enclave) ChargeAccesses(k int) {
	e.charge(float64(k) * e.model.AccessCostBudgeted(e.MemoryUsed(), e.EPCBudget()))
}

// ChargeSHA256 charges hashing n bytes inside the enclave.
func (e *Enclave) ChargeSHA256(n int) { e.charge(e.model.SHA256Cost(n)) }

// ChargeSketchUpdate charges r count-min row updates.
func (e *Enclave) ChargeSketchUpdate(r int) {
	e.charge(float64(r) * e.model.SketchUpdateNs)
}

// ChargeExactMatch charges one exact-match table probe.
func (e *Enclave) ChargeExactMatch() { e.charge(e.model.ExactMatchNs) }

// ChargeFixed charges the fixed per-packet enclave data-path cost.
func (e *Enclave) ChargeFixed() { e.charge(e.model.SGXFixedNs) }

// ChargeNative charges raw model-computed nanoseconds. The no-SGX baseline
// filter uses it so that all variants share one meter.
func (e *Enclave) ChargeNative(ns float64) { e.charge(ns) }
