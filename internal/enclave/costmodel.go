package enclave

// CostModel holds the calibrated per-operation costs (in virtual
// nanoseconds) of the simulated SGX platform. The paper's data-plane
// results (Figures 3a, 8, 13, 14 and the latency table) are properties of
// these costs — enclave-boundary copies, memory-encryption-engine (MEE)
// overhead on cache misses, and EPC paging — rather than of any particular
// NIC, so reproducing the cost structure reproduces the curves.
//
// The constants are drawn from published SGX microbenchmarks (Costan &
// Devadas "Intel SGX Explained"; the SCONE/Eleos/HotCalls measurements) and
// from the throughput anchors the paper itself reports, as documented per
// field. They are deliberately exported and pluggable so the benchmark
// harness can run ablations (e.g. "what if OCalls were free").
type CostModel struct {
	// ECallNs and OCallNs are the enclave transition costs. VIF's data
	// plane avoids them entirely after initialization (§V-A "Reducing the
	// number of context switches"); they price the control plane and the
	// naive design ablation. ~8µs matches published SGX1 transition costs.
	ECallNs float64
	OCallNs float64

	// PipelineNs is the fixed per-packet cost of the DPDK-style pipeline
	// outside any enclave work: NIC DMA + descriptor handling + two ring
	// hops. Calibrated so the native filter saturates 10 GbE at 64-byte
	// frames (14.88 Mpps → ≤ 67 ns/pkt), as in Figure 8/13.
	PipelineNs float64

	// SGXFixedNs is the additional fixed per-packet cost of the enclave
	// data path (ring polling from inside, verdict write-back, pointer
	// bookkeeping). Calibrated against the paper's near-zero-copy 64 B
	// anchor (≈ 8 Gb/s ≈ 12 Mpps → ~84 ns total per packet).
	SGXFixedNs float64

	// FullCopyFixedNs is the fixed part of copying a whole packet into
	// enclave memory (buffer management + write setup through the MEE).
	// Figure 13's signature — a ~6 Mpps cap at 64 B *and* line rate at
	// ≥256 B — implies the full-copy penalty is dominated by this fixed
	// cost, not by bytes.
	FullCopyFixedNs float64

	// CopyInPerByteNs prices the per-byte part of boundary crossings.
	CopyInPerByteNs float64

	// MemRefNs is a cache-hit memory reference.
	MemRefNs float64

	// HotVisits is the number of lookup-table accesses per packet assumed
	// cache-resident regardless of table size (the upper trie levels,
	// which every packet touches and which therefore never leave cache).
	HotVisits int

	// MEEMissNs prices an enclave LLC miss: the line is fetched from DRAM
	// and decrypted/integrity-checked by the MEE (~3-5x a native miss).
	MEEMissNs float64

	// NativeMissNs is the no-SGX LLC miss cost, amortized by prefetching
	// and out-of-order execution on the DPDK hot loop.
	NativeMissNs float64

	// PageFaultNs is the amortized per-access cost once the enclave's
	// working set exceeds the EPC and pages are evicted/re-encrypted by
	// the kernel (EWB/ELDU), ~tens of µs per fault amortized over the
	// accesses that share the faulted page.
	PageFaultNs float64

	// SHA256FixedNs and SHA256PerByteNs price the hash-based probabilistic
	// filter (SHA-NI hardware hashing; Appendix F's ≤25% degradation at
	// 64 B anchors the fixed cost).
	SHA256FixedNs   float64
	SHA256PerByteNs float64

	// SketchUpdateNs prices one count-min sketch row update ("only 4
	// linear hash function operations ... negligible", §V-A).
	SketchUpdateNs float64

	// ExactMatchNs prices a hash-table exact-match lookup.
	ExactMatchNs float64

	// LLCBytes is the last-level cache size shared by enclave and host
	// (8 MiB on the paper's i7-6700).
	LLCBytes int

	// EPCBytes is the usable Enclave Page Cache (the paper observes the
	// ~92 MB limit of SGX1, Figure 3b).
	EPCBytes int
}

// DefaultCostModel returns the calibrated model described on each field.
func DefaultCostModel() CostModel {
	return CostModel{
		ECallNs:         8000,
		OCallNs:         7600,
		PipelineNs:      25,
		SGXFixedNs:      38,
		FullCopyFixedNs: 80,
		CopyInPerByteNs: 0.12,
		MemRefNs:        1.5,
		HotVisits:       2,
		MEEMissNs:       360,
		NativeMissNs:    15,
		PageFaultNs:     2800,
		SHA256FixedNs:   21,
		SHA256PerByteNs: 0.12,
		SketchUpdateNs:  1.5,
		ExactMatchNs:    5,
		LLCBytes:        8 << 20,
		EPCBytes:        92 << 20,
	}
}

// missRatio estimates the fraction of accesses to a working set of w bytes
// that miss a cache of c bytes, under the uniform-reuse approximation
// 1 - c/w (zero when the set fits).
func missRatio(w, c int) float64 {
	if w <= c || w == 0 {
		return 0
	}
	return 1 - float64(c)/float64(w)
}

// AccessCost returns the virtual cost of one memory reference into a
// working set of wss bytes held in enclave memory: base reference plus the
// expected MEE miss penalty plus, beyond the EPC, the expected paging
// penalty for the portion of the set that cannot be resident.
func (m CostModel) AccessCost(wss int) float64 {
	return m.AccessCostBudgeted(wss, m.EPCBytes)
}

// AccessCostBudgeted is AccessCost with an explicit EPC allowance instead
// of the platform's full EPCBytes. It prices multi-tenant paging pressure:
// when several victims' enclaves share one machine's EPC, each namespace
// is apportioned a budget (enclave.EPCBudgeter) and a working set beyond
// that budget pays the paging penalty even though the machine's total EPC
// might have held it — the tenant's pages are the ones the kernel evicts
// first, because the other tenants' budgets are spoken for.
func (m CostModel) AccessCostBudgeted(wss, epc int) float64 {
	cost := m.MemRefNs + missRatio(wss, m.LLCBytes)*m.MEEMissNs
	if epc <= 0 || epc > m.EPCBytes {
		epc = m.EPCBytes
	}
	if wss > epc {
		pagedFrac := float64(wss-epc) / float64(wss)
		cost += pagedFrac * m.PageFaultNs
	}
	return cost
}

// PagedFraction returns the fraction of a wss-byte working set that cannot
// be EPC-resident under an epc-byte allowance — the per-namespace paging
// pressure the budgeter surfaces (0 when the set fits).
func (m CostModel) PagedFraction(wss, epc int) float64 {
	if epc <= 0 || epc > m.EPCBytes {
		epc = m.EPCBytes
	}
	if wss <= epc || wss == 0 {
		return 0
	}
	return float64(wss-epc) / float64(wss)
}

// NativeAccessCost is AccessCost without MEE or EPC effects, for the
// no-SGX baseline.
func (m CostModel) NativeAccessCost(wss int) float64 {
	return m.MemRefNs + missRatio(wss, m.LLCBytes)*m.NativeMissNs
}

// FullCopyCost returns the cost of copying an n-byte packet wholesale into
// the enclave.
func (m CostModel) FullCopyCost(n int) float64 {
	return m.FullCopyFixedNs + float64(n)*m.CopyInPerByteNs
}

// CopyInCost returns the cost of copying n bytes into the enclave.
func (m CostModel) CopyInCost(n int) float64 {
	return float64(n) * m.CopyInPerByteNs
}

// SHA256Cost returns the cost of hashing n bytes (hardware SHA).
func (m CostModel) SHA256Cost(n int) float64 {
	return m.SHA256FixedNs + float64(n)*m.SHA256PerByteNs
}
