package rules

import (
	"fmt"
	"sort"
	"strings"

	"github.com/innetworkfiltering/vif/internal/packet"
)

// Set is an ordered rule list with first-match-wins semantics and a default
// action for packets matching no rule. Within a VIF filtering session the
// victim submits one Set; the distribution layer shards it across enclaves.
type Set struct {
	// Rules in priority order (earlier wins).
	Rules []Rule
	// DefaultAllow is the fate of packets matching no rule. VIF defaults to
	// allowing unmatched traffic: filtering requests only remove traffic the
	// victim named, never more.
	DefaultAllow bool
}

// NewSet builds a validated set, assigning sequential IDs to rules that
// carry ID zero (IDs must end up unique).
func NewSet(rules []Rule, defaultAllow bool) (*Set, error) {
	if len(rules) == 0 {
		return nil, ErrEmptySet
	}
	out := make([]Rule, len(rules))
	copy(out, rules)
	used := make(map[uint32]bool, len(out))
	for i := range out {
		if err := out[i].Validate(); err != nil {
			return nil, err
		}
		if out[i].ID == 0 {
			continue
		}
		if used[out[i].ID] {
			return nil, fmt.Errorf("rules: duplicate rule id %d", out[i].ID)
		}
		used[out[i].ID] = true
	}
	next := uint32(1)
	for i := range out {
		if out[i].ID != 0 {
			continue
		}
		for used[next] {
			next++
		}
		out[i].ID = next
		used[next] = true
	}
	return &Set{Rules: out, DefaultAllow: defaultAllow}, nil
}

// Match returns the first rule matching the tuple, or ok=false when no rule
// matches. This is the O(k) reference matcher; the data plane uses the
// multi-bit trie in package trie, which is property-tested against this.
func (s *Set) Match(t packet.FiveTuple) (Rule, bool) {
	for _, r := range s.Rules {
		if r.Matches(t) {
			return r, true
		}
	}
	return Rule{}, false
}

// Len returns the number of rules.
func (s *Set) Len() int { return len(s.Rules) }

// ByID returns the rule with the given ID, or ok=false.
func (s *Set) ByID(id uint32) (Rule, bool) {
	for _, r := range s.Rules {
		if r.ID == id {
			return r, true
		}
	}
	return Rule{}, false
}

// Subset returns a new Set containing only the rules whose IDs appear in
// ids, preserving priority order and the default action. The distribution
// layer uses this to build each enclave's shard.
func (s *Set) Subset(ids map[uint32]bool) *Set {
	sub := &Set{DefaultAllow: s.DefaultAllow}
	for _, r := range s.Rules {
		if ids[r.ID] {
			sub.Rules = append(sub.Rules, r)
		}
	}
	return sub
}

// IDs returns the rule IDs in priority order.
func (s *Set) IDs() []uint32 {
	ids := make([]uint32, len(s.Rules))
	for i, r := range s.Rules {
		ids[i] = r.ID
	}
	return ids
}

// Marshal renders the set in the textual wire form exchanged between the
// victim and the enclave control plane: one rule per line, preceded by a
// default-action line.
func (s *Set) Marshal() string {
	var b strings.Builder
	if s.DefaultAllow {
		b.WriteString("default allow\n")
	} else {
		b.WriteString("default drop\n")
	}
	for _, r := range s.Rules {
		fmt.Fprintf(&b, "%d: %s\n", r.ID, r)
	}
	return b.String()
}

// UnmarshalSet parses the Marshal form.
func UnmarshalSet(text string) (*Set, error) {
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) == 0 {
		return nil, ErrEmptySet
	}
	var s Set
	switch strings.TrimSpace(lines[0]) {
	case "default allow":
		s.DefaultAllow = true
	case "default drop":
		s.DefaultAllow = false
	default:
		return nil, fmt.Errorf("rules: set missing default action line, got %q", lines[0])
	}
	for _, ln := range lines[1:] {
		ln = strings.TrimSpace(ln)
		if ln == "" {
			continue
		}
		idStr, ruleStr, found := strings.Cut(ln, ":")
		if !found {
			return nil, fmt.Errorf("rules: set line %q missing id", ln)
		}
		var id uint32
		if _, err := fmt.Sscanf(strings.TrimSpace(idStr), "%d", &id); err != nil {
			return nil, fmt.Errorf("rules: set line %q: bad id: %w", ln, err)
		}
		r, err := Parse(strings.TrimSpace(ruleStr))
		if err != nil {
			return nil, err
		}
		r.ID = id
		s.Rules = append(s.Rules, r)
	}
	if len(s.Rules) == 0 {
		return nil, ErrEmptySet
	}
	seen := make(map[uint32]bool, len(s.Rules))
	for _, r := range s.Rules {
		if seen[r.ID] {
			return nil, fmt.Errorf("rules: duplicate rule id %d", r.ID)
		}
		seen[r.ID] = true
	}
	return &s, nil
}

// SortByID orders rules by ID in place; redistribution rounds use it to
// canonicalize shards before measuring memory.
func (s *Set) SortByID() {
	sort.Slice(s.Rules, func(i, j int) bool { return s.Rules[i].ID < s.Rules[j].ID })
}
