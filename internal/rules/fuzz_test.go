package rules

import (
	"testing"
)

// FuzzParse feeds arbitrary strings to the rule parser. Rule text arrives
// at the control plane from victims over the network, so Parse must never
// panic — it either returns a structurally valid rule or an error. The
// seed corpus mirrors rules_test.go: every accepted form, plus the
// malformed inputs the unit tests pin down.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Valid forms.
		"allow any from any to 192.0.2.0/24",
		"allow tcp from any to 192.0.2.10/32 dport 80",
		"allow udp from 10.1.0.0/16 to 192.0.2.0/24 dport 53",
		"allow udp from any to 192.0.2.0/24 sport 53 dport 1024-65535",
		"allow 30% tcp from any to any",
		"drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53",
		"drop 50% tcp from any to 192.0.2.0/24 dport 80",
		"drop 80% udp from 172.16.0.0/12 to 192.0.2.0/24",
		"drop tcp from 203.0.113.5/32 to 192.0.2.9/32 sport 4444 dport 80",
		"drop any from any to any",
		"drop 100% icmp from any to any",
		// Full-attribute forms: port ranges on either side, every proto
		// keyword, dst-constrained — the classifier's per-attribute range
		// tables are compiled straight from these, so the parser corners
		// (range collapse, boundary ports, /0 vs any) deserve seeds.
		"drop udp from 198.51.100.0/24 to 192.0.2.0/28 sport 53-123 dport 1024-65535",
		"allow tcp from any to 192.0.2.128/25 sport 1-1 dport 443",
		"drop udp from 0.0.0.0/0 to 10.0.0.0/8 sport 11211",
		"drop icmp from 203.0.113.0/24 to 192.0.2.1/32",
		"allow any from 172.16.0.0/12 to any sport 65535 dport 65535",
		"drop 25% udp from any to 192.0.2.0/24 sport 1900-1901",
		// And their malformed cousins.
		"drop udp from any to any sport 0-70000",
		"drop udp from any to any sport 123-53",
		"drop udp from any to any sport",
		// Malformed forms the unit tests reject.
		"drop",
		"drop tcp from",
		"drop tcp badkw any",
		"drop xtp from any to any",
		"drop tcp from 10.0.0.0/99 to any",
		"drop tcp from any to any dport 100-10",
		"drop tcp from any to any dport 99999",
		"drop -1% tcp from any to any",
		"drop 200% tcp from any to any",
		"forward tcp from any to any",
		"",
		"   ",
		"allow % from to",
		"drop 1e309% tcp from any to any",
		"allow tcp from 999.0.0.1 to any",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s) // must not panic
		if err != nil {
			return
		}
		// Accepted: the rule must satisfy its own invariants, render, and
		// re-parse to an equally valid rule (the control plane round-trips
		// rule text through logs and redistribution messages).
		if verr := r.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted invalid rule %+v: %v", s, r, verr)
		}
		rendered := r.String()
		r2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) → %q does not re-parse: %v", s, rendered, err)
		}
		if verr := r2.Validate(); verr != nil {
			t.Fatalf("re-parsed %q invalid: %v", rendered, verr)
		}
	})
}
