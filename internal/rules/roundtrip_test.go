package rules

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/innetworkfiltering/vif/internal/packet"
)

// TestRuleStringParseRoundTripProperty fuzzes the textual codec: any
// structurally valid rule must survive String → Parse unchanged in
// matching behavior (the wire form is the victim-enclave contract).
func TestRuleStringParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(src, dst uint32, srcLen, dstLen uint8, pctTenths uint16, protoPick, portPick uint8) bool {
		r := Rule{
			Src:    Prefix{Addr: src, Len: srcLen % 33}.Canonical(),
			Dst:    Prefix{Addr: dst, Len: dstLen % 33}.Canonical(),
			PAllow: float64(pctTenths%1001) / 1000,
		}
		switch protoPick % 4 {
		case 0:
			r.Proto = 0
		case 1:
			r.Proto = packet.ProtoTCP
		case 2:
			r.Proto = packet.ProtoUDP
		case 3:
			r.Proto = packet.ProtoICMP
		}
		switch portPick % 3 {
		case 0:
			r.SrcPort, r.DstPort = AnyPort, AnyPort
		case 1:
			r.DstPort = Port(uint16(rng.Intn(65536)))
			r.SrcPort = AnyPort
		case 2:
			lo := uint16(rng.Intn(60000))
			r.SrcPort = PortRange{Lo: lo, Hi: lo + uint16(rng.Intn(5000))}
			r.DstPort = Port(443)
		}
		back, err := Parse(r.String())
		if err != nil {
			t.Logf("Parse(%q): %v", r.String(), err)
			return false
		}
		// PAllow survives within text precision; everything else exactly.
		if back.Src != r.Src || back.Dst != r.Dst || back.Proto != r.Proto {
			return false
		}
		if back.SrcPort.String() != r.SrcPort.String() || back.DstPort.String() != r.DstPort.String() {
			return false
		}
		diff := back.PAllow - r.PAllow
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestFullAttributeRuleExactRoundTrip pins the strongest codec property:
// a randomized rule constraining every attribute must survive
// Parse(r.String()) with operator-== equality — not behavioral
// equivalence, bitwise identity. Restricted to the inputs where exactness
// is well-defined: canonical prefixes, port ranges with lo >= 1 (lo 0
// renders as the any form), probabilities with exact binary
// representations, ID zero (the textual form does not carry IDs).
func TestFullAttributeRuleExactRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pallows := []float64{0, 0.25, 0.5, 0.75, 1}
	protos := []packet.Protocol{0, packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP}
	randPort := func() PortRange {
		switch rng.Intn(3) {
		case 0:
			return AnyPort
		case 1:
			return Port(uint16(rng.Intn(65535) + 1))
		default:
			lo := uint16(rng.Intn(60000) + 1)
			return PortRange{Lo: lo, Hi: lo + uint16(rng.Intn(5000))}
		}
	}
	for trial := 0; trial < 1000; trial++ {
		r := Rule{
			Src:     Prefix{Addr: rng.Uint32(), Len: uint8(rng.Intn(33))}.Canonical(),
			Dst:     Prefix{Addr: rng.Uint32(), Len: uint8(rng.Intn(33))}.Canonical(),
			SrcPort: randPort(),
			DstPort: randPort(),
			Proto:   protos[rng.Intn(len(protos))],
			PAllow:  pallows[rng.Intn(len(pallows))],
		}
		back, err := Parse(r.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", r.String(), err)
		}
		if back != r {
			t.Fatalf("Parse(%q) = %+v, want %+v", r.String(), back, r)
		}
	}
}

// TestMatchesConsistentUnderCanonical fuzz: matching behavior must be
// identical whether or not host bits were pre-cleared.
func TestMatchesConsistentUnderCanonical(t *testing.T) {
	f := func(src, dst, probeSrc, probeDst uint32, srcLen, dstLen uint8) bool {
		raw := Rule{
			Src:   Prefix{Addr: src, Len: srcLen % 33},
			Dst:   Prefix{Addr: dst, Len: dstLen % 33},
			Proto: packet.ProtoUDP,
		}
		canon := raw
		canon.Src = canon.Src.Canonical()
		canon.Dst = canon.Dst.Canonical()
		probe := packet.FiveTuple{SrcIP: probeSrc, DstIP: probeDst, Proto: packet.ProtoUDP}
		return raw.Matches(probe) == canon.Matches(probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
