package rules

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/innetworkfiltering/vif/internal/packet"
)

// TestRuleStringParseRoundTripProperty fuzzes the textual codec: any
// structurally valid rule must survive String → Parse unchanged in
// matching behavior (the wire form is the victim-enclave contract).
func TestRuleStringParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(src, dst uint32, srcLen, dstLen uint8, pctTenths uint16, protoPick, portPick uint8) bool {
		r := Rule{
			Src:    Prefix{Addr: src, Len: srcLen % 33}.Canonical(),
			Dst:    Prefix{Addr: dst, Len: dstLen % 33}.Canonical(),
			PAllow: float64(pctTenths%1001) / 1000,
		}
		switch protoPick % 4 {
		case 0:
			r.Proto = 0
		case 1:
			r.Proto = packet.ProtoTCP
		case 2:
			r.Proto = packet.ProtoUDP
		case 3:
			r.Proto = packet.ProtoICMP
		}
		switch portPick % 3 {
		case 0:
			r.SrcPort, r.DstPort = AnyPort, AnyPort
		case 1:
			r.DstPort = Port(uint16(rng.Intn(65536)))
			r.SrcPort = AnyPort
		case 2:
			lo := uint16(rng.Intn(60000))
			r.SrcPort = PortRange{Lo: lo, Hi: lo + uint16(rng.Intn(5000))}
			r.DstPort = Port(443)
		}
		back, err := Parse(r.String())
		if err != nil {
			t.Logf("Parse(%q): %v", r.String(), err)
			return false
		}
		// PAllow survives within text precision; everything else exactly.
		if back.Src != r.Src || back.Dst != r.Dst || back.Proto != r.Proto {
			return false
		}
		if back.SrcPort.String() != r.SrcPort.String() || back.DstPort.String() != r.DstPort.String() {
			return false
		}
		diff := back.PAllow - r.PAllow
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestMatchesConsistentUnderCanonical fuzz: matching behavior must be
// identical whether or not host bits were pre-cleared.
func TestMatchesConsistentUnderCanonical(t *testing.T) {
	f := func(src, dst, probeSrc, probeDst uint32, srcLen, dstLen uint8) bool {
		raw := Rule{
			Src:   Prefix{Addr: src, Len: srcLen % 33},
			Dst:   Prefix{Addr: dst, Len: dstLen % 33},
			Proto: packet.ProtoUDP,
		}
		canon := raw
		canon.Src = canon.Src.Canonical()
		canon.Dst = canon.Dst.Canonical()
		probe := packet.FiveTuple{SrcIP: probeSrc, DstIP: probeDst, Proto: packet.ProtoUDP}
		return raw.Matches(probe) == canon.Matches(probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
