// Package rules defines VIF filter rules as DDoS victims express them.
//
// Following §III-A, a rule's decision may depend only on the bits of the
// packet under evaluation (the five-tuple), never on arrival time or prior
// packets. Victims may write exact-match five-tuple rules ("this TCP flow
// between these two hosts") or coarse flow specifications ("HTTP connections
// from hosts in a /24"), and either deterministic actions or probabilistic
// ones ("drop 50% of HTTP flows"), per Appendix A.
package rules

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/innetworkfiltering/vif/internal/packet"
)

// Errors shared by rule validation and parsing.
var (
	ErrBadProbability = errors.New("rules: allow probability outside [0,1]")
	ErrBadPrefix      = errors.New("rules: invalid prefix")
	ErrBadPortRange   = errors.New("rules: invalid port range")
	ErrEmptySet       = errors.New("rules: empty rule set")
)

// Prefix is an IPv4 CIDR prefix in host byte order. The zero value matches
// every address (0.0.0.0/0).
type Prefix struct {
	Addr uint32
	Len  uint8
}

// AnyPrefix matches all IPv4 addresses.
var AnyPrefix = Prefix{}

// ParsePrefix parses "a.b.c.d/len" or a bare address (treated as /32).
func ParsePrefix(s string) (Prefix, error) {
	addrStr, lenStr, found := strings.Cut(s, "/")
	addr, err := packet.ParseIP(addrStr)
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %v", ErrBadPrefix, err)
	}
	plen := 32
	if found {
		plen, err = strconv.Atoi(lenStr)
		if err != nil || plen < 0 || plen > 32 {
			return Prefix{}, fmt.Errorf("%w: length %q", ErrBadPrefix, lenStr)
		}
	}
	p := Prefix{Addr: addr, Len: uint8(plen)}
	return p.Canonical(), nil
}

// MustParsePrefix is ParsePrefix for static inputs; it panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the prefix netmask.
func (p Prefix) Mask() uint32 {
	if p.Len == 0 {
		return 0
	}
	return ^uint32(0) << (32 - p.Len)
}

// Canonical zeroes host bits so equal prefixes compare equal.
func (p Prefix) Canonical() Prefix {
	return Prefix{Addr: p.Addr & p.Mask(), Len: p.Len}
}

// Contains reports whether ip is inside the prefix.
func (p Prefix) Contains(ip uint32) bool {
	return ip&p.Mask() == p.Addr&p.Mask()
}

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q.Addr&q.Mask()) || q.Contains(p.Addr&p.Mask())
}

// IsAny reports whether the prefix matches all addresses.
func (p Prefix) IsAny() bool { return p.Len == 0 }

// String renders the prefix in CIDR form.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", packet.FormatIP(p.Addr&p.Mask()), p.Len)
}

// PortRange is an inclusive port interval. The zero value means "any port"
// (it is normalized to 0..65535 by Canonical/Validate paths).
type PortRange struct {
	Lo, Hi uint16
}

// AnyPort matches all ports.
var AnyPort = PortRange{Lo: 0, Hi: 65535}

// Port returns the range containing exactly p.
func Port(p uint16) PortRange { return PortRange{Lo: p, Hi: p} }

// IsAny reports whether the range matches all ports (either the explicit
// full range or the zero value).
func (r PortRange) IsAny() bool {
	return (r.Lo == 0 && r.Hi == 65535) || (r.Lo == 0 && r.Hi == 0)
}

// Contains reports whether p falls inside the range.
func (r PortRange) Contains(p uint16) bool {
	if r.IsAny() {
		return true
	}
	return r.Lo <= p && p <= r.Hi
}

// Validate reports malformed ranges.
func (r PortRange) Validate() error {
	if r.Lo > r.Hi {
		return fmt.Errorf("%w: %d-%d", ErrBadPortRange, r.Lo, r.Hi)
	}
	return nil
}

// String renders the range; "any" when it matches everything.
func (r PortRange) String() string {
	switch {
	case r.IsAny():
		return "any"
	case r.Lo == r.Hi:
		return strconv.Itoa(int(r.Lo))
	default:
		return fmt.Sprintf("%d-%d", r.Lo, r.Hi)
	}
}

// Rule is one filter rule. PAllow encodes both deterministic rules
// (PAllow == 0 → drop all matching flows; PAllow == 1 → allow all) and
// non-deterministic rules (0 < PAllow < 1 → the filter allows each matching
// flow with this probability, connection-preservingly).
type Rule struct {
	// ID identifies the rule across redistribution rounds; assigned by the
	// victim (or the Set compiler) and stable within a filtering session.
	ID uint32
	// Src and Dst restrict the flow's endpoints.
	Src, Dst Prefix
	// SrcPort and DstPort restrict transport ports. Ignored for protocols
	// without ports when the packet carries none.
	SrcPort, DstPort PortRange
	// Proto restricts the IP protocol; 0 matches any protocol.
	Proto packet.Protocol
	// PAllow is the probability a matching flow is allowed.
	PAllow float64
}

// Deterministic reports whether the rule always allows or always drops.
func (r Rule) Deterministic() bool { return r.PAllow == 0 || r.PAllow == 1 }

// ExactMatch reports whether the rule pins one exact five-tuple flow
// (both /32 endpoints, single ports, fixed protocol).
func (r Rule) ExactMatch() bool {
	return r.Src.Len == 32 && r.Dst.Len == 32 &&
		!r.SrcPort.IsAny() && r.SrcPort.Lo == r.SrcPort.Hi &&
		!r.DstPort.IsAny() && r.DstPort.Lo == r.DstPort.Hi &&
		r.Proto != 0
}

// Tuple returns the five-tuple an exact-match rule pins. Meaningless unless
// ExactMatch reports true.
func (r Rule) Tuple() packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   r.Src.Addr,
		DstIP:   r.Dst.Addr,
		SrcPort: r.SrcPort.Lo,
		DstPort: r.DstPort.Lo,
		Proto:   r.Proto,
	}
}

// Matches reports whether the packet's five-tuple falls inside the rule's
// flow specification. This is the only packet-dependent input to the filter
// (Eq. 2 of the paper: f(p), not f(p, history)).
func (r Rule) Matches(t packet.FiveTuple) bool {
	if r.Proto != 0 && r.Proto != t.Proto {
		return false
	}
	if !r.Src.Contains(t.SrcIP) || !r.Dst.Contains(t.DstIP) {
		return false
	}
	return r.SrcPort.Contains(t.SrcPort) && r.DstPort.Contains(t.DstPort)
}

// Validate checks structural invariants.
func (r Rule) Validate() error {
	if r.PAllow < 0 || r.PAllow > 1 {
		return fmt.Errorf("rule %d: %w: %v", r.ID, ErrBadProbability, r.PAllow)
	}
	if err := r.SrcPort.Validate(); err != nil {
		return fmt.Errorf("rule %d src port: %w", r.ID, err)
	}
	if err := r.DstPort.Validate(); err != nil {
		return fmt.Errorf("rule %d dst port: %w", r.ID, err)
	}
	return nil
}

// String renders the rule in the textual form accepted by Parse.
func (r Rule) String() string {
	var b strings.Builder
	switch r.PAllow {
	case 1:
		b.WriteString("allow")
	case 0:
		b.WriteString("drop")
	default:
		fmt.Fprintf(&b, "drop %g%%", (1-r.PAllow)*100)
	}
	proto := "any"
	if r.Proto != 0 {
		proto = r.Proto.String()
	}
	fmt.Fprintf(&b, " %s from %s to %s", proto, r.Src, r.Dst)
	if !r.SrcPort.IsAny() {
		fmt.Fprintf(&b, " sport %s", r.SrcPort)
	}
	if !r.DstPort.IsAny() {
		fmt.Fprintf(&b, " dport %s", r.DstPort)
	}
	return b.String()
}

// Parse parses the textual rule form:
//
//	drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53
//	allow tcp from any to 192.0.2.10/32 dport 80
//	drop 50% tcp from any to 192.0.2.0/24 dport 80
//
// "drop P%" means PAllow = 1 - P/100 for matching flows.
func Parse(s string) (Rule, error) {
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return Rule{}, fmt.Errorf("rules: parse %q: too short", s)
	}
	var r Rule
	i := 0
	switch fields[i] {
	case "allow":
		r.PAllow = 1
	case "drop":
		r.PAllow = 0
	default:
		return Rule{}, fmt.Errorf("rules: parse %q: want allow/drop, got %q", s, fields[i])
	}
	i++
	if strings.HasSuffix(fields[i], "%") {
		pct, err := strconv.ParseFloat(strings.TrimSuffix(fields[i], "%"), 64)
		if err != nil || pct < 0 || pct > 100 {
			return Rule{}, fmt.Errorf("rules: parse %q: bad percentage %q", s, fields[i])
		}
		frac := pct / 100
		if r.PAllow == 1 {
			r.PAllow = frac
		} else {
			r.PAllow = 1 - frac
		}
		i++
	}
	if i >= len(fields) {
		return Rule{}, fmt.Errorf("rules: parse %q: missing protocol", s)
	}
	switch fields[i] {
	case "any":
		r.Proto = 0
	case "tcp":
		r.Proto = packet.ProtoTCP
	case "udp":
		r.Proto = packet.ProtoUDP
	case "icmp":
		r.Proto = packet.ProtoICMP
	default:
		return Rule{}, fmt.Errorf("rules: parse %q: unknown protocol %q", s, fields[i])
	}
	i++
	r.SrcPort, r.DstPort = AnyPort, AnyPort
	r.Src, r.Dst = AnyPrefix, AnyPrefix
	for i < len(fields) {
		if i+1 >= len(fields) {
			return Rule{}, fmt.Errorf("rules: parse %q: dangling %q", s, fields[i])
		}
		kw, val := fields[i], fields[i+1]
		i += 2
		var err error
		switch kw {
		case "from":
			r.Src, err = parsePrefixOrAny(val)
		case "to":
			r.Dst, err = parsePrefixOrAny(val)
		case "sport":
			r.SrcPort, err = parsePortRange(val)
		case "dport":
			r.DstPort, err = parsePortRange(val)
		default:
			return Rule{}, fmt.Errorf("rules: parse %q: unknown keyword %q", s, kw)
		}
		if err != nil {
			return Rule{}, fmt.Errorf("rules: parse %q: %w", s, err)
		}
	}
	if err := r.Validate(); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// MustParse is Parse for static inputs; it panics on error.
func MustParse(s string) Rule {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

func parsePrefixOrAny(s string) (Prefix, error) {
	if s == "any" {
		return AnyPrefix, nil
	}
	return ParsePrefix(s)
}

func parsePortRange(s string) (PortRange, error) {
	if s == "any" {
		return AnyPort, nil
	}
	loStr, hiStr, found := strings.Cut(s, "-")
	lo, err := strconv.ParseUint(loStr, 10, 16)
	if err != nil {
		return PortRange{}, fmt.Errorf("%w: %q", ErrBadPortRange, s)
	}
	hi := lo
	if found {
		hi, err = strconv.ParseUint(hiStr, 10, 16)
		if err != nil {
			return PortRange{}, fmt.Errorf("%w: %q", ErrBadPortRange, s)
		}
	}
	r := PortRange{Lo: uint16(lo), Hi: uint16(hi)}
	if err := r.Validate(); err != nil {
		return PortRange{}, err
	}
	return r, nil
}
