package rules

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/innetworkfiltering/vif/internal/packet"
)

func TestParsePrefix(t *testing.T) {
	tests := []struct {
		give    string
		want    Prefix
		wantErr bool
	}{
		{give: "10.0.0.0/8", want: Prefix{Addr: 0x0a000000, Len: 8}},
		{give: "192.0.2.1", want: Prefix{Addr: 0xc0000201, Len: 32}},
		{give: "0.0.0.0/0", want: Prefix{}},
		{give: "10.1.2.3/8", want: Prefix{Addr: 0x0a000000, Len: 8}}, // host bits cleared
		{give: "10.0.0.0/33", wantErr: true},
		{give: "10.0.0.0/-1", wantErr: true},
		{give: "junk/8", wantErr: true},
		{give: "::1/128", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParsePrefix(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParsePrefix(%q) err = %v", tt.give, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParsePrefix(%q) = %+v, want %+v", tt.give, got, tt.want)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	tests := []struct {
		ip   string
		want bool
	}{
		{"10.0.0.0", true},
		{"10.255.255.255", true},
		{"11.0.0.0", false},
		{"9.255.255.255", false},
	}
	for _, tt := range tests {
		if got := p.Contains(packet.MustParseIP(tt.ip)); got != tt.want {
			t.Errorf("%v.Contains(%s) = %v, want %v", p, tt.ip, got, tt.want)
		}
	}
	if !AnyPrefix.Contains(0) || !AnyPrefix.Contains(0xffffffff) {
		t.Error("AnyPrefix must contain everything")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"10.0.0.0/8", "10.1.0.0/16", true},
		{"10.1.0.0/16", "10.0.0.0/8", true},
		{"10.0.0.0/8", "11.0.0.0/8", false},
		{"0.0.0.0/0", "203.0.113.0/24", true},
	}
	for _, tt := range tests {
		a, b := MustParsePrefix(tt.a), MustParsePrefix(tt.b)
		if got := a.Overlaps(b); got != tt.want {
			t.Errorf("%s.Overlaps(%s) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestPrefixContainsProperty(t *testing.T) {
	// Canonicalization must not change membership semantics.
	f := func(addr uint32, plen uint8, ip uint32) bool {
		p := Prefix{Addr: addr, Len: plen % 33}
		return p.Contains(ip) == p.Canonical().Contains(ip)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPortRange(t *testing.T) {
	if !AnyPort.Contains(0) || !AnyPort.Contains(65535) {
		t.Error("AnyPort must contain all ports")
	}
	var zero PortRange
	if !zero.IsAny() || !zero.Contains(8080) {
		t.Error("zero PortRange must behave as any")
	}
	r := PortRange{Lo: 80, Hi: 443}
	for _, tt := range []struct {
		p    uint16
		want bool
	}{{80, true}, {443, true}, {200, true}, {79, false}, {444, false}} {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%d) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if err := (PortRange{Lo: 100, Hi: 10}).Validate(); err == nil {
		t.Error("inverted range must fail validation")
	}
}

func TestParseRuleRoundTrip(t *testing.T) {
	tests := []string{
		"drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53",
		"allow tcp from any to 192.0.2.10/32 dport 80",
		"drop 50% tcp from 0.0.0.0/0 to 192.0.2.0/24 dport 80",
		"drop 80% udp from 172.16.0.0/12 to 192.0.2.0/24",
		"allow any from any to 198.51.100.0/24",
		"drop tcp from 203.0.113.5/32 to 192.0.2.9/32 sport 4444 dport 80",
		"allow udp from any to 192.0.2.0/24 sport 53 dport 1024-65535",
	}
	for _, give := range tests {
		r, err := Parse(give)
		if err != nil {
			t.Fatalf("Parse(%q): %v", give, err)
		}
		back, err := Parse(r.String())
		if err != nil {
			t.Fatalf("reparse of %q → %q: %v", give, r.String(), err)
		}
		if back != r {
			t.Errorf("round trip %q: %+v != %+v", give, back, r)
		}
	}
}

func TestParseRuleSemantics(t *testing.T) {
	r := MustParse("drop 80% udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53")
	if got := r.PAllow; got < 0.199 || got > 0.201 {
		t.Fatalf("drop 80%% → PAllow = %v, want 0.2", got)
	}
	if r.Deterministic() {
		t.Error("probabilistic rule reported deterministic")
	}
	r = MustParse("allow 30% tcp from any to any")
	if got := r.PAllow; got < 0.299 || got > 0.301 {
		t.Fatalf("allow 30%% → PAllow = %v, want 0.3", got)
	}
	if !MustParse("drop any from any to any").Deterministic() {
		t.Error("drop must be deterministic")
	}
}

func TestParseRuleErrors(t *testing.T) {
	tests := []string{
		"",
		"permit tcp from any to any",
		"drop",
		"drop 200% tcp from any to any",
		"drop -1% tcp from any to any",
		"drop xtp from any to any",
		"drop tcp from",
		"drop tcp badkw any",
		"drop tcp from 10.0.0.0/99 to any",
		"drop tcp from any to any dport 99999",
		"drop tcp from any to any dport 100-10",
	}
	for _, give := range tests {
		if _, err := Parse(give); err == nil {
			t.Errorf("Parse(%q): want error", give)
		}
	}
}

func TestRuleMatches(t *testing.T) {
	r := MustParse("drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53")
	tests := []struct {
		name string
		give packet.FiveTuple
		want bool
	}{
		{"exact", packet.FiveTuple{SrcIP: packet.MustParseIP("10.9.9.9"), DstIP: packet.MustParseIP("192.0.2.53"), SrcPort: 5353, DstPort: 53, Proto: packet.ProtoUDP}, true},
		{"wrong proto", packet.FiveTuple{SrcIP: packet.MustParseIP("10.9.9.9"), DstIP: packet.MustParseIP("192.0.2.53"), SrcPort: 5353, DstPort: 53, Proto: packet.ProtoTCP}, false},
		{"wrong src", packet.FiveTuple{SrcIP: packet.MustParseIP("11.9.9.9"), DstIP: packet.MustParseIP("192.0.2.53"), DstPort: 53, Proto: packet.ProtoUDP}, false},
		{"wrong dst", packet.FiveTuple{SrcIP: packet.MustParseIP("10.9.9.9"), DstIP: packet.MustParseIP("192.0.3.53"), DstPort: 53, Proto: packet.ProtoUDP}, false},
		{"wrong dport", packet.FiveTuple{SrcIP: packet.MustParseIP("10.9.9.9"), DstIP: packet.MustParseIP("192.0.2.53"), DstPort: 54, Proto: packet.ProtoUDP}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Matches(tt.give); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestExactMatchRule(t *testing.T) {
	r := MustParse("drop tcp from 203.0.113.5/32 to 192.0.2.9/32 sport 4444 dport 80")
	if !r.ExactMatch() {
		t.Fatal("want exact-match")
	}
	want := packet.FiveTuple{
		SrcIP:   packet.MustParseIP("203.0.113.5"),
		DstIP:   packet.MustParseIP("192.0.2.9"),
		SrcPort: 4444,
		DstPort: 80,
		Proto:   packet.ProtoTCP,
	}
	if got := r.Tuple(); got != want {
		t.Fatalf("Tuple = %v, want %v", got, want)
	}
	if MustParse("drop tcp from any to 192.0.2.9/32 dport 80").ExactMatch() {
		t.Error("coarse rule reported exact-match")
	}
}

func TestRuleValidate(t *testing.T) {
	bad := Rule{PAllow: 1.5}
	if err := bad.Validate(); err == nil {
		t.Error("PAllow 1.5 must fail")
	}
	bad = Rule{PAllow: 0.5, SrcPort: PortRange{Lo: 9, Hi: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("inverted port range must fail")
	}
}

func TestNewSetAssignsUniqueIDs(t *testing.T) {
	rs := []Rule{
		MustParse("drop udp from any to 192.0.2.0/24 dport 53"),
		MustParse("allow tcp from any to 192.0.2.0/24"),
		{ID: 1, PAllow: 1}, // collides with auto-assign start
	}
	s, err := NewSet(rs, true)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]bool)
	for _, r := range s.Rules {
		if r.ID == 0 {
			t.Fatal("rule left with zero ID")
		}
		if seen[r.ID] {
			t.Fatalf("duplicate ID %d", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestNewSetRejects(t *testing.T) {
	if _, err := NewSet(nil, true); err == nil {
		t.Error("empty set must fail")
	}
	dup := []Rule{{ID: 7, PAllow: 1}, {ID: 7, PAllow: 0}}
	if _, err := NewSet(dup, true); err == nil {
		t.Error("duplicate explicit IDs must fail")
	}
	if _, err := NewSet([]Rule{{PAllow: 2}}, true); err == nil {
		t.Error("invalid rule must fail")
	}
}

func TestSetMatchFirstWins(t *testing.T) {
	s, err := NewSet([]Rule{
		MustParse("allow udp from 10.1.0.0/16 to 192.0.2.0/24 dport 53"),
		MustParse("drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53"),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	pkt := packet.FiveTuple{
		SrcIP: packet.MustParseIP("10.1.2.3"), DstIP: packet.MustParseIP("192.0.2.1"),
		SrcPort: 999, DstPort: 53, Proto: packet.ProtoUDP,
	}
	got, ok := s.Match(pkt)
	if !ok || got.PAllow != 1 {
		t.Fatalf("first-match: got %+v ok=%v, want allow rule", got, ok)
	}
	pkt.SrcIP = packet.MustParseIP("10.2.2.3")
	got, ok = s.Match(pkt)
	if !ok || got.PAllow != 0 {
		t.Fatalf("second rule: got %+v ok=%v, want drop rule", got, ok)
	}
	pkt.Proto = packet.ProtoTCP
	if _, ok = s.Match(pkt); ok {
		t.Fatal("no rule should match TCP")
	}
}

func TestSetMarshalRoundTrip(t *testing.T) {
	s, err := NewSet([]Rule{
		MustParse("drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53"),
		MustParse("drop 50% tcp from any to 192.0.2.0/24 dport 80"),
		MustParse("allow any from any to 192.0.2.0/24"),
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSet(s.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalSet: %v\ntext:\n%s", err, s.Marshal())
	}
	if got.DefaultAllow != s.DefaultAllow || len(got.Rules) != len(s.Rules) {
		t.Fatalf("round trip shape mismatch: %+v vs %+v", got, s)
	}
	for i := range s.Rules {
		if got.Rules[i] != s.Rules[i] {
			t.Errorf("rule %d: %+v != %+v", i, got.Rules[i], s.Rules[i])
		}
	}
}

func TestUnmarshalSetErrors(t *testing.T) {
	tests := []string{
		"",
		"default maybe\n1: allow tcp from any to any",
		"default allow",
		"default allow\nallow tcp from any to any", // missing id
		"default allow\n1: allow tcp from any to any\n1: drop tcp from any to any",
		"default allow\nx: allow tcp from any to any",
	}
	for _, give := range tests {
		if _, err := UnmarshalSet(give); err == nil {
			t.Errorf("UnmarshalSet(%q): want error", give)
		}
	}
}

func TestSubset(t *testing.T) {
	s, _ := NewSet([]Rule{
		MustParse("drop udp from any to 192.0.2.0/24 dport 53"),
		MustParse("drop tcp from any to 192.0.2.0/24 dport 80"),
		MustParse("allow any from any to 192.0.2.0/24"),
	}, true)
	ids := map[uint32]bool{s.Rules[0].ID: true, s.Rules[2].ID: true}
	sub := s.Subset(ids)
	if sub.Len() != 2 {
		t.Fatalf("subset len = %d", sub.Len())
	}
	if sub.Rules[0].ID != s.Rules[0].ID || sub.Rules[1].ID != s.Rules[2].ID {
		t.Fatal("subset lost priority order")
	}
}

func TestMatchAgreesWithPerRuleMatches(t *testing.T) {
	// Property: Set.Match returns a rule iff that rule matches and no
	// earlier rule matches.
	rng := rand.New(rand.NewSource(11))
	var rs []Rule
	for i := 0; i < 50; i++ {
		rs = append(rs, Rule{
			Src:    Prefix{Addr: rng.Uint32(), Len: uint8(rng.Intn(33))}.Canonical(),
			Dst:    Prefix{Addr: rng.Uint32(), Len: uint8(rng.Intn(33))}.Canonical(),
			Proto:  packet.ProtoUDP,
			PAllow: 1,
		})
	}
	s, err := NewSet(rs, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		pkt := packet.FiveTuple{SrcIP: rng.Uint32(), DstIP: rng.Uint32(), Proto: packet.ProtoUDP}
		got, ok := s.Match(pkt)
		var want Rule
		var found bool
		for _, r := range s.Rules {
			if r.Matches(pkt) {
				want, found = r, true
				break
			}
		}
		if ok != found || (ok && got.ID != want.ID) {
			t.Fatalf("Match disagrees with linear scan for %v", pkt)
		}
	}
}

func BenchmarkSetMatchLinear3000(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	rs := make([]Rule, 3000)
	for i := range rs {
		rs[i] = Rule{
			Src:   Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst:   MustParsePrefix("192.0.2.0/24"),
			Proto: packet.ProtoUDP,
		}
	}
	s, err := NewSet(rs, true)
	if err != nil {
		b.Fatal(err)
	}
	pkt := packet.FiveTuple{SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.1"), Proto: packet.ProtoUDP}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Match(pkt)
	}
}
