package bypass

import (
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// scenario wires a filter (the honest enclave) plus victim and neighbor
// verifiers, and drives traffic through with optional host misbehavior.
type scenario struct {
	f        *filter.Filter
	victim   *VictimVerifier
	neighbor *NeighborVerifier
}

func newScenario(t *testing.T) *scenario {
	t.Helper()
	e, err := enclave.New(enclave.CodeIdentity{Name: "vif-filter", BinarySize: 1 << 20}, enclave.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	set, err := rules.NewSet([]rules.Rule{
		rules.MustParse("drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53"),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	f, err := filter.New(e, set, filter.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return &scenario{f: f, victim: NewVictimVerifier(), neighbor: NewNeighborVerifier()}
}

type hostBehavior struct {
	// dropBeforeFilter drops every nth delivered packet before the filter.
	dropBeforeFilter int
	// dropAfterFilter drops every nth allowed packet before the victim.
	dropAfterFilter int
	// injectAfterFilter sends this many extra packets straight to the
	// victim, bypassing the filter.
	injectAfterFilter int
}

// run pushes n mixed packets through the scenario under the given host
// behavior. Traffic arrives via the neighbor (which logs it), optionally
// gets dropped by the host, passes the filter, and allowed packets reach
// the victim unless the host drops them.
func (s *scenario) run(n int, seed int64, host hostBehavior) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		var tp packet.FiveTuple
		if i%3 == 0 { // attack traffic: will be dropped by the rule
			tp = packet.FiveTuple{
				SrcIP:   packet.MustParseIP("10.0.0.1") + rng.Uint32()%1000,
				DstIP:   packet.MustParseIP("192.0.2.10"),
				SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
			}
		} else { // legitimate
			tp = packet.FiveTuple{
				SrcIP:   rng.Uint32() | 0x80000000, // outside 10/8
				DstIP:   packet.MustParseIP("192.0.2.10"),
				SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 443, Proto: packet.ProtoTCP,
			}
		}
		s.neighbor.Observe(tp)
		if host.dropBeforeFilter > 0 && i%host.dropBeforeFilter == 0 {
			continue // host discards before the filter ever sees it
		}
		v := s.f.Process(packet.Descriptor{Tuple: tp, Size: 64, Ref: packet.NoRef})
		if v != filter.VerdictAllow {
			continue
		}
		if host.dropAfterFilter > 0 && i%host.dropAfterFilter == 0 {
			continue // host discards after the filter allowed it
		}
		s.victim.Observe(tp)
	}
	// Injection after filtering: traffic the filter never saw.
	for i := 0; i < host.injectAfterFilter; i++ {
		s.victim.Observe(packet.FiveTuple{
			SrcIP: packet.MustParseIP("10.9.9.9"), DstIP: packet.MustParseIP("192.0.2.10"),
			SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
		})
	}
}

func (s *scenario) victimVerdict(t *testing.T) Verdict {
	t.Helper()
	snap, err := s.f.Snapshot(filter.LogOutgoing, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.victim.Check(s.f.Enclave().MACKey(), snap)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func (s *scenario) neighborVerdict(t *testing.T) Verdict {
	t.Helper()
	snap, err := s.f.Snapshot(filter.LogIncoming, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.neighbor.Check(s.f.Enclave().MACKey(), snap)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHonestHostIsClean(t *testing.T) {
	s := newScenario(t)
	s.run(5000, 1, hostBehavior{})
	if v := s.victimVerdict(t); !v.Clean {
		t.Fatalf("honest host flagged by victim: %+v", v)
	}
	if v := s.neighborVerdict(t); !v.Clean {
		t.Fatalf("honest host flagged by neighbor: %+v", v)
	}
}

func TestDetectsDropAfterFilter(t *testing.T) {
	s := newScenario(t)
	s.run(5000, 2, hostBehavior{dropAfterFilter: 10})
	v := s.victimVerdict(t)
	if v.Clean {
		t.Fatal("drop-after-filter not detected")
	}
	if v.DropAfterFilter == 0 {
		t.Fatalf("wrong attribution: %+v", v)
	}
	if v.InjectionAfterFilter != 0 {
		t.Fatalf("spurious injection finding: %+v", v)
	}
	// The neighbor-side check must stay clean: nothing was dropped
	// before the filter.
	if nv := s.neighborVerdict(t); !nv.Clean {
		t.Fatalf("neighbor flagged a drop-after attack: %+v", nv)
	}
}

func TestDetectsInjectionAfterFilter(t *testing.T) {
	s := newScenario(t)
	s.run(5000, 3, hostBehavior{injectAfterFilter: 200})
	v := s.victimVerdict(t)
	if v.Clean {
		t.Fatal("injection-after-filter not detected")
	}
	if v.InjectionAfterFilter < 150 {
		t.Fatalf("injection estimate too low: %+v", v)
	}
}

func TestDetectsDropBeforeFilter(t *testing.T) {
	s := newScenario(t)
	s.run(5000, 4, hostBehavior{dropBeforeFilter: 5})
	v := s.neighborVerdict(t)
	if v.Clean {
		t.Fatal("drop-before-filter not detected")
	}
	if v.DropBeforeFilter == 0 {
		t.Fatalf("wrong attribution: %+v", v)
	}
	// The victim cannot distinguish this from normal filtering: packets
	// dropped before the filter were never logged as outgoing.
	if vv := s.victimVerdict(t); !vv.Clean {
		t.Fatalf("victim flagged a pre-filter drop: %+v", vv)
	}
}

func TestInjectionBeforeFilterIsNotAnAttack(t *testing.T) {
	// Per §III-B footnote: injected traffic upstream of the filter is
	// simply filtered like any other traffic; no verifier should fire.
	s := newScenario(t)
	s.run(3000, 5, hostBehavior{})
	// Host injects attack packets *before* the filter: the filter sees,
	// logs, and drops them; the neighbor never sent them.
	for i := 0; i < 500; i++ {
		tp := packet.FiveTuple{
			SrcIP:   packet.MustParseIP("10.66.0.1") + uint32(i),
			DstIP:   packet.MustParseIP("192.0.2.10"),
			SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
		}
		s.f.Process(packet.Descriptor{Tuple: tp, Size: 64, Ref: packet.NoRef})
	}
	if v := s.victimVerdict(t); !v.Clean {
		t.Fatalf("victim flagged pre-filter injection: %+v", v)
	}
	// Note the neighbor comparison is one-sided (enclave may see MORE
	// than one neighbor sent); it must not fire either.
	if v := s.neighborVerdict(t); !v.Clean {
		t.Fatalf("neighbor flagged pre-filter injection: %+v", v)
	}
}

func TestToleranceAbsorbsBenignLoss(t *testing.T) {
	s := newScenario(t)
	s.victim.Tolerance = 0.05 // 5% benign WAN loss budget
	s.run(5000, 6, hostBehavior{dropAfterFilter: 100})
	if v := s.victimVerdict(t); !v.Clean {
		t.Fatalf("1%% loss flagged despite 5%% tolerance: %+v", v)
	}
	s2 := newScenario(t)
	s2.victim.Tolerance = 0.05
	s2.run(5000, 7, hostBehavior{dropAfterFilter: 4})
	if v := s2.victimVerdict(t); v.Clean {
		t.Fatal("25% drop slipped under 5% tolerance")
	}
}

func TestTamperedSnapshotRejected(t *testing.T) {
	s := newScenario(t)
	s.run(1000, 8, hostBehavior{})
	snap, err := s.f.Snapshot(filter.LogOutgoing, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap.Data[20] ^= 0xff
	if _, err := s.victim.Check(s.f.Enclave().MACKey(), snap); err == nil {
		t.Fatal("tampered snapshot accepted")
	}
}

func TestKindConfusionRejected(t *testing.T) {
	s := newScenario(t)
	s.run(100, 9, hostBehavior{})
	in, err := s.f.Snapshot(filter.LogIncoming, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.victim.Check(s.f.Enclave().MACKey(), in); err == nil {
		t.Fatal("victim accepted an incoming log")
	}
	out, err := s.f.Snapshot(filter.LogOutgoing, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.neighbor.Check(s.f.Enclave().MACKey(), out); err == nil {
		t.Fatal("neighbor accepted an outgoing log")
	}
}

func TestMergeSnapshotsAcrossEnclaves(t *testing.T) {
	// Two parallel enclaves each forward part of the traffic; the victim
	// merges their outgoing logs and compares against everything received.
	sA, sB := newScenario(t), newScenario(t)
	victim := NewVictimVerifier()
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 3000; i++ {
		tp := packet.FiveTuple{
			SrcIP: rng.Uint32() | 0x80000000, DstIP: packet.MustParseIP("192.0.2.10"),
			SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 443, Proto: packet.ProtoTCP,
		}
		f := sA.f
		if i%2 == 1 {
			f = sB.f
		}
		if f.Process(packet.Descriptor{Tuple: tp, Size: 64, Ref: packet.NoRef}) == filter.VerdictAllow {
			victim.Observe(tp)
		}
	}
	snapA, err := sA.f.Snapshot(filter.LogOutgoing, 1)
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := sB.f.Snapshot(filter.LogOutgoing, 1)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[uint64][32]byte{
		sA.f.Enclave().ID(): sA.f.Enclave().MACKey(),
		sB.f.Enclave().ID(): sB.f.Enclave().MACKey(),
	}
	merged, err := MergeSnapshots(keys, []*filter.SignedSnapshot{snapA, snapB})
	if err != nil {
		t.Fatal(err)
	}
	v, err := victim.CheckSketch(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Clean {
		t.Fatalf("honest two-enclave deployment flagged: %+v", v)
	}

	// Missing key and unknown enclave must fail.
	if _, err := MergeSnapshots(map[uint64][32]byte{}, []*filter.SignedSnapshot{snapA}); err == nil {
		t.Fatal("merge without keys succeeded")
	}
	if _, err := MergeSnapshots(keys, nil); err == nil {
		t.Fatal("merge of nothing succeeded")
	}
}

func TestResetClearsVerifiers(t *testing.T) {
	s := newScenario(t)
	s.run(100, 11, hostBehavior{})
	s.victim.Reset()
	s.neighbor.Reset()
	if s.victim.ObservedTotal() != 0 || s.neighbor.ObservedTotal() != 0 {
		t.Fatal("reset did not clear observers")
	}
}
