// Package bypass implements VIF's filter-bypass detection (§III-B): the
// victim-side and neighbor-side verifiers that compare their own local
// packet logs against the authenticated logs measured inside the enclave.
//
// The three bypass attacks and their witnesses:
//
//   - Injection after filtering: the filtering network re-injects a copy of
//     a dropped packet downstream of the filter. The victim's local log then
//     contains traffic absent from the enclave's outgoing log.
//   - Drop after filtering: the filtering network drops a packet the filter
//     allowed. The enclave's outgoing log contains traffic the victim never
//     received.
//   - Drop before filtering: the filtering network drops a neighbor's
//     packets before they reach the filter. The neighbor's sent-traffic log
//     contains sources the enclave's incoming log undercounts.
//
// Injection *before* filtering is explicitly not an attack: by
// packet-injection independence (§III-A) it cannot change any other
// packet's verdict, and the extra traffic is simply filtered.
package bypass

import (
	"errors"
	"fmt"
	"sync"

	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/sketch"
)

// Verdict of a log comparison.
type Verdict struct {
	// Clean is true when no discrepancy beyond tolerance was found.
	Clean bool
	// InjectionAfterFilter estimates packets the verifier saw that the
	// enclave never forwarded (victim-side only).
	InjectionAfterFilter uint64
	// DropAfterFilter estimates packets the enclave forwarded that the
	// verifier never received (victim-side only).
	DropAfterFilter uint64
	// DropBeforeFilter estimates packets the neighbor sent that never
	// reached the filter (neighbor-side only).
	DropBeforeFilter uint64
	// Detail describes the finding for operator logs.
	Detail string
}

// ErrSnapshotAuth wraps snapshot authentication failures: an unauthentic
// snapshot is itself evidence of misbehavior.
var ErrSnapshotAuth = errors.New("bypass: enclave log snapshot failed authentication")

// VictimVerifier is the DDoS victim's local observer: it logs every packet
// actually received from the filtering network in a sketch with the same
// geometry and key schema as the enclave's outgoing log, then compares.
// Observe/Reset/Check are safe for concurrent callers (the engine runtime
// delivers packets from several shard workers at once); this is the
// victim's commodity-hardware capture path, not the enclave hot path, so a
// mutex is the right price.
type VictimVerifier struct {
	mu    sync.Mutex
	local *sketch.Sketch
	// Tolerance absorbs benign loss between filter and victim (congestion
	// on intermediate ASes), as a fraction of the enclave's total. Zero
	// means exact matching. The paper handles residual ambiguity with the
	// Appendix B rerouting test, implemented in package bgp. Set it before
	// traffic flows.
	Tolerance float64
}

// NewVictimVerifier creates a verifier with the default sketch geometry.
func NewVictimVerifier() *VictimVerifier {
	return &VictimVerifier{local: sketch.NewDefault()}
}

// Observe records one received packet (called from the victim's capture
// path with the parsed tuple).
func (v *VictimVerifier) Observe(t packet.FiveTuple) {
	key := t.Key()
	v.mu.Lock()
	v.local.Add(key[:], 1)
	v.mu.Unlock()
}

// ObservedTotal returns the number of packets observed locally.
func (v *VictimVerifier) ObservedTotal() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.local.Total()
}

// Reset clears the local log at a round boundary.
func (v *VictimVerifier) Reset() {
	v.mu.Lock()
	v.local.Reset()
	v.mu.Unlock()
}

// Check compares the enclave's authenticated outgoing log against the
// local received-traffic log. macKey is the log key obtained over the
// attested channel.
func (v *VictimVerifier) Check(macKey [32]byte, snap *filter.SignedSnapshot) (Verdict, error) {
	if snap.Kind != filter.LogOutgoing {
		return Verdict{}, fmt.Errorf("bypass: victim check needs the outgoing log, got %v", snap.Kind)
	}
	enclaveLog, err := filter.VerifySnapshot(macKey, snap)
	if err != nil {
		return Verdict{}, fmt.Errorf("%w: %v", ErrSnapshotAuth, err)
	}
	v.mu.Lock()
	d, err := enclaveLog.Diff(v.local)
	v.mu.Unlock()
	if err != nil {
		return Verdict{}, fmt.Errorf("bypass: diff: %w", err)
	}
	verdict := Verdict{
		DropAfterFilter:      d.Excess,
		InjectionAfterFilter: d.Missing,
	}
	tol := uint64(v.Tolerance * float64(enclaveLog.Total()))
	verdict.Clean = d.Excess <= tol && d.Missing <= tol
	switch {
	case verdict.Clean:
		verdict.Detail = "outgoing log matches received traffic"
	case d.Missing > tol && d.Excess > tol:
		verdict.Detail = fmt.Sprintf("injection (%d) and drop (%d) after filtering", d.Missing, d.Excess)
	case d.Missing > tol:
		verdict.Detail = fmt.Sprintf("injection after filtering: %d unlogged packets received", d.Missing)
	default:
		verdict.Detail = fmt.Sprintf("drop after filtering: %d logged packets never arrived", d.Excess)
	}
	return verdict, nil
}

// CheckSketch is Check for an already-verified (e.g. merged multi-enclave)
// outgoing log.
func (v *VictimVerifier) CheckSketch(enclaveLog *sketch.Sketch) (Verdict, error) {
	v.mu.Lock()
	d, err := enclaveLog.Diff(v.local)
	v.mu.Unlock()
	if err != nil {
		return Verdict{}, fmt.Errorf("bypass: diff: %w", err)
	}
	verdict := Verdict{
		DropAfterFilter:      d.Excess,
		InjectionAfterFilter: d.Missing,
	}
	tol := uint64(v.Tolerance * float64(enclaveLog.Total()))
	verdict.Clean = d.Excess <= tol && d.Missing <= tol
	if verdict.Clean {
		verdict.Detail = "merged outgoing logs match received traffic"
	} else {
		verdict.Detail = fmt.Sprintf("discrepancy: injection=%d drop=%d", d.Missing, d.Excess)
	}
	return verdict, nil
}

// NeighborVerifier is an upstream neighbor AS's observer: it logs the
// per-source-IP counts of traffic it hands to the filtering network and
// compares against the enclave's incoming log to expose drop-before-
// filtering discrimination (the paper's Goal-1 attack).
type NeighborVerifier struct {
	local *sketch.Sketch
	// Tolerance as in VictimVerifier.
	Tolerance float64
}

// NewNeighborVerifier creates a neighbor-side verifier.
func NewNeighborVerifier() *NeighborVerifier {
	return &NeighborVerifier{local: sketch.NewDefault()}
}

// Observe records one packet handed to the filtering network.
func (n *NeighborVerifier) Observe(t packet.FiveTuple) {
	var key [4]byte
	key[0] = byte(t.SrcIP >> 24)
	key[1] = byte(t.SrcIP >> 16)
	key[2] = byte(t.SrcIP >> 8)
	key[3] = byte(t.SrcIP)
	n.local.Add(key[:], 1)
}

// ObservedTotal returns the number of packets observed locally.
func (n *NeighborVerifier) ObservedTotal() uint64 { return n.local.Total() }

// Reset clears the local log at a round boundary.
func (n *NeighborVerifier) Reset() { n.local.Reset() }

// Check compares the neighbor's sent-traffic log against the enclave's
// authenticated incoming log. Packets the neighbor sent but the enclave
// never saw were dropped before filtering.
func (n *NeighborVerifier) Check(macKey [32]byte, snap *filter.SignedSnapshot) (Verdict, error) {
	if snap.Kind != filter.LogIncoming {
		return Verdict{}, fmt.Errorf("bypass: neighbor check needs the incoming log, got %v", snap.Kind)
	}
	enclaveLog, err := filter.VerifySnapshot(macKey, snap)
	if err != nil {
		return Verdict{}, fmt.Errorf("%w: %v", ErrSnapshotAuth, err)
	}
	d, err := enclaveLog.Diff(n.local)
	if err != nil {
		return Verdict{}, fmt.Errorf("bypass: diff: %w", err)
	}
	// d.Missing: the neighbor logged traffic the enclave never received.
	// (d.Excess would be traffic from other neighbors sharing source
	// prefixes — the incoming log aggregates all neighbors — so the
	// neighbor check is one-sided.)
	verdict := Verdict{DropBeforeFilter: d.Missing}
	tol := uint64(n.Tolerance * float64(n.local.Total()))
	verdict.Clean = d.Missing <= tol
	if verdict.Clean {
		verdict.Detail = "incoming log covers all traffic we delivered"
	} else {
		verdict.Detail = fmt.Sprintf("drop before filtering: %d delivered packets never reached the filter", d.Missing)
	}
	return verdict, nil
}

// MergeSnapshots verifies and merges authenticated log snapshots from
// multiple parallel enclaves into one combined sketch, keyed by per-enclave
// MAC keys. Victims of a scaled-out deployment (Figure 4) call this before
// Check-style comparison.
func MergeSnapshots(keys map[uint64][32]byte, snaps []*filter.SignedSnapshot) (*sketch.Sketch, error) {
	if len(snaps) == 0 {
		return nil, errors.New("bypass: no snapshots")
	}
	var merged *sketch.Sketch
	for _, snap := range snaps {
		key, ok := keys[snap.EnclaveID]
		if !ok {
			return nil, fmt.Errorf("bypass: no MAC key for enclave %d", snap.EnclaveID)
		}
		s, err := filter.VerifySnapshot(key, snap)
		if err != nil {
			return nil, fmt.Errorf("%w: enclave %d: %v", ErrSnapshotAuth, snap.EnclaveID, err)
		}
		if merged == nil {
			merged = s
			continue
		}
		if err := merged.Merge(s); err != nil {
			return nil, fmt.Errorf("bypass: merge enclave %d: %w", snap.EnclaveID, err)
		}
	}
	return merged, nil
}
