// Package cluster orchestrates the scalable multi-enclave VIF deployment
// of §IV: n enclaved filters behind an untrusted load balancer, with the
// master/slave rule-recalculation protocol of Figure 5.
//
// Each reconfiguration round:
//
//  1. a master enclave is chosen (any enclave may initiate; the protocol
//     is symmetric),
//  2. every slave uploads its rule shard R_i and measured per-rule traffic
//     B_i (byte counts — enclaves deliberately do not timestamp, §IV
//     footnote 6, because their clocks are host-influenced),
//  3. the master recomputes the distribution with the greedy algorithm
//     (Algorithm 1 / package dist),
//  4. new enclaves are spawned and attested if the allocation needs them,
//     and
//  5. shards and the load-balancer programme are installed atomically.
package cluster

import (
	"errors"
	"fmt"

	"github.com/innetworkfiltering/vif/internal/attest"
	"github.com/innetworkfiltering/vif/internal/dist"
	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/lb"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// ErrTooLarge is returned when an allocation demands more enclaves than
// Config.MaxEnclaves permits.
var ErrTooLarge = errors.New("cluster: allocation demands more enclaves than MaxEnclaves")

// Config assembles a cluster.
type Config struct {
	// Identity is the enclave code identity every member must measure to.
	Identity enclave.CodeIdentity
	// Model is the SGX platform cost model.
	Model enclave.CostModel
	// Platform signs attestation quotes for newly spawned enclaves.
	Platform *attest.Platform
	// FilterConfig is applied to every member filter.
	FilterConfig filter.Config
	// Dist parameterizes the rule-distribution problem (B is ignored;
	// it is measured).
	Dist dist.Instance
	// MaxEnclaves caps scale-out. Default 256.
	MaxEnclaves int
	// PinnedEnclaves, when positive, fixes the fleet at exactly this many
	// enclaves regardless of what the optimizer would open — the shape a
	// shared multi-victim engine imposes, where every victim namespace
	// must present one filter per engine shard. The distribution is still
	// computed by the greedy; its allocation is padded with empty columns
	// (an enclave holding no share of a rule simply receives none of its
	// flows). Rules needing more enclaves than the pin is an error.
	PinnedEnclaves int
	// WindowSeconds is the measurement window length used to convert the
	// enclaves' per-rule byte counts into bandwidths (the control plane
	// timestamps windows externally because enclave clocks are untrusted).
	// Default 5 s, the paper's rule update period.
	WindowSeconds float64
	// Faults optionally makes the untrusted load balancer misbehave.
	Faults lb.Faults
}

// Cluster is a running multi-enclave deployment.
type Cluster struct {
	cfg     Config
	set     *rules.Set
	filters []*filter.Filter
	bal     *lb.Balancer
	// shares is the current distribution outcome (rule ID -> per-enclave
	// bandwidth shares), retained so PlanDelta can derive the successor
	// balancer programme without re-running the optimizer.
	shares map[uint32][]float64
	round  uint64
	// lbDrops counts packets the (faulty) balancer discarded.
	lbDrops uint64
}

// New builds a cluster for the full rule set, distributing rules with an
// initial uniform traffic estimate (no measurements exist yet).
func New(cfg Config, set *rules.Set) (*Cluster, error) {
	if set == nil || set.Len() == 0 {
		return nil, filter.ErrNoRules
	}
	if cfg.MaxEnclaves == 0 {
		cfg.MaxEnclaves = 256
	}
	if cfg.WindowSeconds == 0 {
		cfg.WindowSeconds = 5
	}
	c := &Cluster{cfg: cfg, set: set}
	uniform := make(map[uint32]uint64, set.Len())
	for _, r := range set.Rules {
		uniform[r.ID] = 1
	}
	if err := c.Reconfigure(uniform); err != nil {
		return nil, err
	}
	return c, nil
}

// Filters returns the member filters (for attestation, log queries).
func (c *Cluster) Filters() []*filter.Filter { return c.filters }

// Balancer returns the current load-balancer programme (the rule-
// distribution output routing flows to enclaves). The engine runtime uses
// it directly for shard assignment; it is replaced wholesale on
// Reconfigure, so callers must re-fetch after a reconfiguration round.
func (c *Cluster) Balancer() *lb.Balancer { return c.bal }

// Round returns the completed reconfiguration round count.
func (c *Cluster) Round() uint64 { return c.round }

// LBDrops returns packets the balancer dropped (fault injection).
func (c *Cluster) LBDrops() uint64 { return c.lbDrops }

// Process routes one descriptor through the load balancer to its enclave
// and returns the verdict. Packets the faulty balancer discards report
// VerdictDrop (that is what the victim experiences) and are counted in
// LBDrops for the bypass analysis.
func (c *Cluster) Process(d packet.Descriptor) filter.Verdict {
	j, ok := c.bal.Route(d.Tuple)
	if !ok {
		c.lbDrops++
		return filter.VerdictDrop
	}
	return c.filters[j].Process(d)
}

// PinSize fixes the fleet at exactly n enclaves and re-runs a
// redistribution round under the pin (with the uniform traffic estimate a
// fresh fleet starts from). A session attaching to a shared multi-victim
// engine calls this so its namespace presents exactly one filter per
// engine shard; newly spawned members must be re-attested by the victim
// afterwards, like any reconfiguration. Fails when the rules cannot fit n
// enclaves.
func (c *Cluster) PinSize(n int) error {
	if n <= 0 {
		return errors.New("cluster: pinned size must be positive")
	}
	prev := c.cfg.PinnedEnclaves
	c.cfg.PinnedEnclaves = n
	uniform := make(map[uint32]uint64, c.set.Len())
	for _, r := range c.set.Rules {
		uniform[r.ID] = 1
	}
	if err := c.Reconfigure(uniform); err != nil {
		c.cfg.PinnedEnclaves = prev
		return err
	}
	return nil
}

// MeasuredBytes aggregates the per-rule byte counters across all member
// enclaves — the {R_i, B_i} upload step of Figure 5. reset starts the next
// measurement window.
func (c *Cluster) MeasuredBytes(reset bool) map[uint32]uint64 {
	total := make(map[uint32]uint64, c.set.Len())
	for _, f := range c.filters {
		for id, b := range f.RuleBytes(reset) {
			total[id] += b
		}
	}
	return total
}

// Reconfigure runs one Figure 5 round using the given per-rule traffic
// measurements (bytes within the last window; only proportions matter to
// the optimizer, which receives them scaled into the instance's bandwidth
// domain).
func (c *Cluster) Reconfigure(measured map[uint32]uint64) error {
	in := c.cfg.Dist
	in.B = make([]float64, c.set.Len())
	// Convert window byte counts to bits/s; rules with no traffic yet
	// still get an epsilon so they are installed somewhere.
	scale := 8.0 / c.cfg.WindowSeconds
	for i, r := range c.set.Rules {
		b := float64(measured[r.ID]) * scale
		if b <= 0 {
			b = 1 // 1 bit/s epsilon keeps the rule placeable
		}
		in.B[i] = b
	}

	alloc, err := dist.Greedy(in, dist.GreedyOptions{})
	if err != nil {
		return fmt.Errorf("cluster: redistribute: %w", err)
	}
	n := alloc.N
	if p := c.cfg.PinnedEnclaves; p > 0 {
		if alloc.N > p {
			return fmt.Errorf("%w: rules need %d enclaves, fleet pinned at %d", ErrTooLarge, alloc.N, p)
		}
		// Pad every rule's share row with empty columns so the balancer
		// programme spans the pinned fleet.
		for i := range alloc.X {
			row := make([]float64, p)
			copy(row, alloc.X[i])
			alloc.X[i] = row
		}
		n = p
	}
	if n > c.cfg.MaxEnclaves {
		return fmt.Errorf("%w: need %d", ErrTooLarge, n)
	}

	// Scale the fleet: spawn and attest new enclaves as needed. Extra
	// enclaves beyond the allocation are retired (their EPC is reclaimed).
	for len(c.filters) < n {
		f, err := c.spawnAttested()
		if err != nil {
			return err
		}
		c.filters = append(c.filters, f)
	}
	if len(c.filters) > n {
		c.filters = c.filters[:n]
	}

	// Build per-enclave shards and the balancer programme.
	shares := make(map[uint32][]float64, c.set.Len())
	shardIDs := make([]map[uint32]bool, n)
	for j := range shardIDs {
		shardIDs[j] = make(map[uint32]bool)
	}
	for i, r := range c.set.Rules {
		shares[r.ID] = alloc.X[i]
		for j, x := range alloc.X[i] {
			if x > 0 {
				shardIDs[j][r.ID] = true
			}
		}
	}
	for j, f := range c.filters {
		shard := c.set.Subset(shardIDs[j])
		if shard.Len() == 0 {
			// An enclave with no rules still participates (default
			// action for unmatched traffic); give it the lowest-priority
			// rule as a placeholder shard is NOT acceptable — instead
			// skip reconfiguring it with an empty set by retiring it.
			// The greedy never produces empty enclaves when N is derived
			// from the instance, but a pinned N can.
			shard = c.set.Subset(map[uint32]bool{c.set.Rules[0].ID: true})
		}
		foreignIDs := make(map[uint32]bool, c.set.Len())
		for _, r := range c.set.Rules {
			if !shardIDs[j][r.ID] {
				foreignIDs[r.ID] = true
			}
		}
		if err := f.Reconfigure(shard, c.set.Subset(foreignIDs)); err != nil {
			return fmt.Errorf("cluster: enclave %d: %w", j, err)
		}
	}

	bal, err := lb.New(lb.Config{
		FullSet: c.set,
		Shares:  shares,
		N:       n,
		Faults:  c.cfg.Faults,
	})
	if err != nil {
		return fmt.Errorf("cluster: balancer: %w", err)
	}
	c.bal = bal
	c.shares = shares
	c.round++
	return nil
}

// ErrEmptyShard is returned by PlanDelta when a delta would leave a member
// enclave with no rules at all; run a full Reconfigure (which retires or
// re-shards members) instead.
var ErrEmptyShard = errors.New("cluster: delta would empty an enclave's shard; run a full Reconfigure")

// DeltaPlan is one computed incremental reconfiguration: the per-enclave
// filter changesets, the successor balancer programme, and the successor
// control-plane state. Planning only reads; nothing changes until the
// deltas are applied (by this cluster on the serial path, or by the
// engine's worker tickets in engine mode) and CommitDelta installs the
// successor state. The fleet size never changes under a delta — no
// enclave spawns, so no re-attestation is needed, which is most of why a
// delta reinstall is cheap end to end.
type DeltaPlan struct {
	// PerShard holds one filter delta per member enclave, in fleet order:
	// removals routed to every shard holding the rule, each add placed on
	// one shard, and the refreshed peer-rule (foreign) view for misroute
	// detection.
	PerShard []filter.Delta

	set    *rules.Set
	shares map[uint32][]float64
	bal    *lb.Balancer
}

// Balancer is the successor load-balancer programme covering the delta
// (installed by CommitDelta; engine callers hand its Route/RouteBatch to
// ReconfigureNamespaceDelta so routing swaps with the rules).
func (p *DeltaPlan) Balancer() *lb.Balancer { return p.bal }

// Set returns the successor full rule set.
func (p *DeltaPlan) Set() *rules.Set { return p.set }

// PlanDelta computes an incremental reconfiguration: removes are deleted
// from every shard holding them (matched by rule ID), and each add —
// validated, with fresh IDs assigned to zero-ID rules — is placed on the
// member with the smallest current rule-table memory (greedy single-shard
// placement; the periodic full redistribution round re-optimizes with
// traffic measurements). The successor set appends adds after survivors,
// matching Filter.ReconfigureDelta's first-match order.
func (c *Cluster) PlanDelta(adds, removes []rules.Rule) (*DeltaPlan, error) {
	if len(adds) == 0 && len(removes) == 0 {
		return nil, errors.New("cluster: empty delta")
	}
	removeIDs := make(map[uint32]bool, len(removes))
	for _, r := range removes {
		if removeIDs[r.ID] {
			return nil, fmt.Errorf("cluster: delta removes rule %d twice", r.ID)
		}
		if _, ok := c.set.ByID(r.ID); !ok {
			return nil, fmt.Errorf("cluster: delta removes unknown rule %d", r.ID)
		}
		removeIDs[r.ID] = true
	}
	survivors := make([]rules.Rule, 0, c.set.Len()-len(removes))
	for _, r := range c.set.Rules {
		if !removeIDs[r.ID] {
			survivors = append(survivors, r)
		}
	}
	if len(survivors)+len(adds) == 0 {
		return nil, filter.ErrNoRules
	}
	newSet, err := rules.NewSet(append(survivors, adds...), c.set.DefaultAllow)
	if err != nil {
		return nil, err
	}
	assigned := newSet.Rules[len(survivors):]

	n := len(c.filters)
	plan := &DeltaPlan{
		PerShard: make([]filter.Delta, n),
		set:      newSet,
		shares:   make(map[uint32][]float64, len(c.shares)+len(assigned)),
	}
	for id, row := range c.shares {
		if !removeIDs[id] {
			plan.shares[id] = row
		}
	}

	// Per-member rule membership and removal routing. Placeholder rules an
	// earlier pinned round installed on otherwise-empty members count as
	// membership here, so removing one routes to those members too.
	memberIDs := make([]map[uint32]bool, n)
	weight := make([]int, n)
	for j, f := range c.filters {
		memberIDs[j] = make(map[uint32]bool, f.RuleCount())
		for _, id := range f.Rules().IDs() {
			memberIDs[j][id] = true
		}
		weight[j] = f.RuleMemoryBytes()
	}
	// approxRuleBytes keeps the weights tracking the plan's own changes:
	// removals lighten the members they leave and repeated placements
	// spread instead of stacking on the pre-plan lightest.
	const approxRuleBytes = 128
	for _, r := range c.set.Rules {
		if !removeIDs[r.ID] {
			continue
		}
		for j := range memberIDs {
			if memberIDs[j][r.ID] {
				plan.PerShard[j].Removes = append(plan.PerShard[j].Removes, r)
				delete(memberIDs[j], r.ID)
				weight[j] -= approxRuleBytes
			}
		}
	}
	// Greedy placement: each add lands whole on the lightest member.
	for _, r := range assigned {
		best := 0
		for j := 1; j < n; j++ {
			if weight[j] < weight[best] {
				best = j
			}
		}
		plan.PerShard[best].Adds = append(plan.PerShard[best].Adds, r)
		memberIDs[best][r.ID] = true
		weight[best] += approxRuleBytes
		row := make([]float64, n)
		row[best] = 1
		plan.shares[r.ID] = row
	}
	for j := range memberIDs {
		if len(memberIDs[j]) == 0 {
			return nil, fmt.Errorf("%w (enclave %d)", ErrEmptyShard, j)
		}
	}
	// Refresh every member's peer-rule view: misroute detection must stop
	// flagging removed rules and start covering adds placed elsewhere.
	for j := range plan.PerShard {
		foreignIDs := make(map[uint32]bool, newSet.Len())
		for _, r := range newSet.Rules {
			if !memberIDs[j][r.ID] {
				foreignIDs[r.ID] = true
			}
		}
		plan.PerShard[j].Foreign = newSet.Subset(foreignIDs)
	}

	bal, err := lb.New(lb.Config{
		FullSet: newSet,
		Shares:  plan.shares,
		N:       n,
		Faults:  c.cfg.Faults,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: delta balancer: %w", err)
	}
	plan.bal = bal
	return plan, nil
}

// CommitDelta installs a plan's successor control-plane state (rule set,
// shares, balancer programme) after its per-shard deltas were applied.
// Counts as a reconfiguration round.
func (c *Cluster) CommitDelta(p *DeltaPlan) {
	c.set = p.set
	c.shares = p.shares
	c.bal = p.bal
	c.round++
}

// ApplyDelta is the serial-path incremental reconfiguration: plan, apply
// each member's changeset directly (the caller owns the filters — no
// engine may be running), commit. On a per-member error the already-
// applied members keep their deltas; a full Reconfigure is the repair,
// exactly as on the engine path.
func (c *Cluster) ApplyDelta(adds, removes []rules.Rule) error {
	p, err := c.PlanDelta(adds, removes)
	if err != nil {
		return err
	}
	for j, f := range c.filters {
		if err := f.ReconfigureDelta(p.PerShard[j]); err != nil {
			return fmt.Errorf("cluster: enclave %d delta: %w", j, err)
		}
	}
	c.CommitDelta(p)
	return nil
}

// spawnAttested creates a new enclave loaded with the cluster's measured
// code identity — the "creating and attesting more enclaved filters" step
// of §IV-B. Attestation is the *victim's* act, not the operator's: newly
// spawned members surface in the next Quotes call, where the victim
// challenges each enclave and checks its measurement before trusting its
// logs (§VI-B).
func (c *Cluster) spawnAttested() (*filter.Filter, error) {
	e, err := enclave.New(c.cfg.Identity, c.cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("cluster: spawn: %w", err)
	}
	f, err := filter.New(e, c.set, c.cfg.FilterConfig)
	if err != nil {
		return nil, fmt.Errorf("cluster: filter: %w", err)
	}
	return f, nil
}

// Quotes generates an attestation quote per member for a verifier
// challenge (the victim audits every enclave, §VI-B).
func (c *Cluster) Quotes(nonce [32]byte, reportData [attest.ReportDataSize]byte) ([]*attest.Quote, error) {
	if c.cfg.Platform == nil {
		return nil, errors.New("cluster: no attestation platform")
	}
	quotes := make([]*attest.Quote, 0, len(c.filters))
	for _, f := range c.filters {
		q, err := c.cfg.Platform.GenerateQuote(f.Enclave(), nonce, reportData)
		if err != nil {
			return nil, err
		}
		quotes = append(quotes, q)
	}
	return quotes, nil
}

// Snapshots returns authenticated log snapshots of the given kind from
// every member, plus the per-enclave MAC keys (released to the verifier
// over its attested channels).
func (c *Cluster) Snapshots(kind filter.LogKind, seq uint64) ([]*filter.SignedSnapshot, map[uint64][32]byte, error) {
	snaps := make([]*filter.SignedSnapshot, 0, len(c.filters))
	keys := make(map[uint64][32]byte, len(c.filters))
	for _, f := range c.filters {
		s, err := f.Snapshot(kind, seq)
		if err != nil {
			return nil, nil, err
		}
		snaps = append(snaps, s)
		keys[f.Enclave().ID()] = f.Enclave().MACKey()
	}
	return snaps, keys, nil
}

// TotalStats sums member filter stats.
func (c *Cluster) TotalStats() filter.Stats {
	var t filter.Stats
	for _, f := range c.filters {
		s := f.Stats()
		t.Processed += s.Processed
		t.Allowed += s.Allowed
		t.Dropped += s.Dropped
		t.ExactHits += s.ExactHits
		t.RuleHits += s.RuleHits
		t.DefaultHits += s.DefaultHits
		t.Hashed += s.Hashed
		t.Promoted += s.Promoted
		t.Misrouted += s.Misrouted
		t.Malformed += s.Malformed
	}
	return t
}

// Size returns the current enclave count.
func (c *Cluster) Size() int { return len(c.filters) }
