package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

// TestApplyDeltaEquivalentToFullRound: after a delta, the cluster's
// verdicts agree with a reference cluster built from scratch on the
// successor rule set, and the fleet shape is unchanged.
func TestApplyDeltaEquivalentToFullRound(t *testing.T) {
	cfg, _ := testConfig(t)
	cfg.PinnedEnclaves = 3 // force a multi-member fleet so placement and
	// multi-shard removal routing are actually exercised
	set := bigSet(t, 400)
	c, err := New(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	fleet := c.Size()
	if fleet != 3 {
		t.Fatalf("pinned fleet size %d, want 3", fleet)
	}

	rng := rand.New(rand.NewSource(3))
	removes := []rules.Rule{{ID: set.Rules[3].ID}, {ID: set.Rules[250].ID}}
	adds := make([]rules.Rule, 5)
	for i := range adds {
		adds[i] = rules.Rule{
			ID:    uint32(10000 + i),
			Src:   rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst:   rules.MustParsePrefix("192.0.2.0/24"),
			Proto: packet.ProtoUDP,
		}
	}
	if err := c.ApplyDelta(adds, removes); err != nil {
		t.Fatal(err)
	}
	if c.Size() != fleet {
		t.Fatalf("delta changed fleet size: %d -> %d", fleet, c.Size())
	}

	cfg2, _ := testConfig(t)
	cfg2.PinnedEnclaves = 3
	ref, err := New(cfg2, c.set)
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 600; probe++ {
		var tup packet.FiveTuple
		if probe%3 == 0 && probe/3 < len(adds) {
			r := adds[probe/3]
			tup = packet.FiveTuple{SrcIP: r.Src.Addr | 1, DstIP: packet.MustParseIP("192.0.2.7"), SrcPort: 9, DstPort: 9, Proto: packet.ProtoUDP}
		} else {
			tup = packet.FiveTuple{SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.7"), SrcPort: 9, DstPort: 9, Proto: packet.ProtoUDP}
		}
		d := packet.Descriptor{Tuple: tup, Size: 64, Ref: packet.NoRef}
		if got, want := c.Process(d), ref.Process(d); got != want {
			t.Fatalf("probe %d: delta cluster %v, reference %v", probe, got, want)
		}
	}

	// Every removed rule is gone from every member; every add is installed
	// on exactly one.
	for _, r := range removes {
		for j, f := range c.Filters() {
			if _, ok := f.Rules().ByID(r.ID); ok {
				t.Fatalf("removed rule %d still on enclave %d", r.ID, j)
			}
		}
	}
	for _, r := range adds {
		holders := 0
		for _, f := range c.Filters() {
			if _, ok := f.Rules().ByID(r.ID); ok {
				holders++
			}
		}
		if holders != 1 {
			t.Fatalf("added rule %d installed on %d enclaves, want 1", r.ID, holders)
		}
	}
}

// TestPlanDeltaErrors: unknown/duplicate removes and empty deltas refuse
// at planning time, leaving the cluster untouched.
func TestPlanDeltaErrors(t *testing.T) {
	cfg, _ := testConfig(t)
	c, err := New(cfg, bigSet(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	round := c.Round()
	if _, err := c.PlanDelta(nil, nil); err == nil {
		t.Fatal("empty delta accepted")
	}
	if _, err := c.PlanDelta(nil, []rules.Rule{{ID: 9999}}); err == nil {
		t.Fatal("unknown remove accepted")
	}
	if _, err := c.PlanDelta(nil, []rules.Rule{{ID: 1}, {ID: 1}}); err == nil {
		t.Fatal("duplicate remove accepted")
	}
	if c.Round() != round {
		t.Fatal("failed plans advanced the round counter")
	}
}

// TestPlanDeltaEmptyShardRefused: a delta that would strip a member of
// its last rule refuses with ErrEmptyShard (full Reconfigure is the
// documented repair).
func TestPlanDeltaEmptyShardRefused(t *testing.T) {
	cfg, _ := testConfig(t)
	set := bigSet(t, 3)
	c, err := New(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	removes := make([]rules.Rule, len(set.Rules))
	for i, r := range set.Rules {
		removes[i] = rules.Rule{ID: r.ID}
	}
	// Removing all but one rule empties every member that held the rest.
	_, err = c.PlanDelta(nil, removes[:len(removes)-1])
	if err != nil && !errors.Is(err, ErrEmptyShard) {
		t.Fatalf("unexpected error: %v", err)
	}
	// (A single-enclave fleet may legitimately survive; only assert we
	// never plan an empty member.)
	if err == nil {
		plan, err := c.PlanDelta(nil, removes[:len(removes)-1])
		if err != nil {
			t.Fatal(err)
		}
		for j, d := range plan.PerShard {
			kept := c.Filters()[j].RuleCount() - len(d.Removes) + len(d.Adds)
			if kept <= 0 {
				t.Fatalf("plan leaves enclave %d with %d rules", j, kept)
			}
		}
	}
}
