package cluster

import (
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/attest"
	"github.com/innetworkfiltering/vif/internal/bypass"
	"github.com/innetworkfiltering/vif/internal/dist"
	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/lb"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

func testConfig(t *testing.T) (Config, *attest.Service) {
	t.Helper()
	svc, err := attest.NewService()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := svc.CertifyPlatform("ixp-rack-01")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Identity: enclave.CodeIdentity{Name: "vif-filter", Version: "1", BinarySize: 1 << 20},
		Model:    enclave.DefaultCostModel(),
		Platform: platform,
		Dist: dist.Instance{
			G: 10e9, M: 92e6, U: 92e6 / 3000, V: 2e6, Alpha: 1, Lambda: 0.2,
		},
	}, svc
}

func bigSet(t *testing.T, k int) *rules.Set {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	rs := make([]rules.Rule, k)
	for i := range rs {
		rs[i] = rules.Rule{
			Src:   rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst:   rules.MustParsePrefix("192.0.2.0/24"),
			Proto: packet.ProtoUDP,
			// PAllow 0: drop attack sources.
		}
	}
	return mustSet(t, rs)
}

func mustSet(t *testing.T, rs []rules.Rule) *rules.Set {
	t.Helper()
	s, err := rules.NewSet(rs, true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewDistributesRules(t *testing.T) {
	cfg, _ := testConfig(t)
	set := bigSet(t, 500)
	c, err := New(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() < 1 {
		t.Fatal("no enclaves")
	}
	if c.Round() != 1 {
		t.Fatalf("Round = %d, want 1", c.Round())
	}
	// Every rule must be installed on at least one member.
	installed := make(map[uint32]bool)
	for _, f := range c.Filters() {
		for _, r := range f.Rules().Rules {
			installed[r.ID] = true
		}
	}
	for _, r := range set.Rules {
		if !installed[r.ID] {
			t.Fatalf("rule %d installed nowhere", r.ID)
		}
	}
}

func TestClusterFiltersLikeASingleFilter(t *testing.T) {
	cfg, _ := testConfig(t)
	set := bigSet(t, 200)
	c, err := New(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	attackDropped, cleanAllowed := 0, 0
	const n = 2000
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			// Attack: source inside some rule's /24.
			r := set.Rules[rng.Intn(set.Len())]
			tp := packet.FiveTuple{
				SrcIP: r.Src.Addr | (rng.Uint32() & 0xff),
				DstIP: packet.MustParseIP("192.0.2.9"),
				Proto: packet.ProtoUDP,
			}
			if c.Process(packet.Descriptor{Tuple: tp, Size: 64}) == filter.VerdictDrop {
				attackDropped++
			}
		} else {
			tp := packet.FiveTuple{
				SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.9"),
				SrcPort: 555, DstPort: 443, Proto: packet.ProtoTCP,
			}
			if c.Process(packet.Descriptor{Tuple: tp, Size: 64}) == filter.VerdictAllow {
				cleanAllowed++
			}
		}
	}
	if attackDropped != n/2 {
		t.Fatalf("attack packets dropped %d/%d", attackDropped, n/2)
	}
	if cleanAllowed != n/2 {
		t.Fatalf("clean packets allowed %d/%d", cleanAllowed, n/2)
	}
	if got := c.TotalStats().Processed; got != n {
		t.Fatalf("Processed = %d, want %d", got, n)
	}
}

func TestReconfigureRebalancesByMeasuredTraffic(t *testing.T) {
	cfg, _ := testConfig(t)
	// Small per-enclave memory so few rules fit each enclave: forces a
	// multi-enclave deployment.
	cfg.Dist.M = 92e6
	cfg.Dist.U = 92e6 / 50 // 50 rules per enclave
	set := bigSet(t, 200)
	c, err := New(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() < 4 {
		t.Fatalf("expected ≥4 enclaves, got %d", c.Size())
	}

	// Drive traffic so one rule dominates, then reconfigure.
	rng := rand.New(rand.NewSource(2))
	hot := set.Rules[0]
	for i := 0; i < 5000; i++ {
		tp := packet.FiveTuple{
			SrcIP: hot.Src.Addr | (rng.Uint32() & 0xff),
			DstIP: packet.MustParseIP("192.0.2.9"),
			Proto: packet.ProtoUDP,
		}
		c.Process(packet.Descriptor{Tuple: tp, Size: 1500})
	}
	measured := c.MeasuredBytes(true)
	if measured[hot.ID] == 0 {
		t.Fatal("hot rule measured no traffic")
	}
	if err := c.Reconfigure(measured); err != nil {
		t.Fatal(err)
	}
	if c.Round() != 2 {
		t.Fatalf("Round = %d", c.Round())
	}
	// The deployment must still filter correctly after redistribution.
	tp := packet.FiveTuple{
		SrcIP: hot.Src.Addr | 5, DstIP: packet.MustParseIP("192.0.2.9"), Proto: packet.ProtoUDP,
	}
	if got := c.Process(packet.Descriptor{Tuple: tp, Size: 64}); got != filter.VerdictDrop {
		t.Fatalf("hot rule no longer enforced after round: %v", got)
	}
}

func TestQuotesVerifyForEveryMember(t *testing.T) {
	cfg, svc := testConfig(t)
	set := bigSet(t, 100)
	c, err := New(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	var nonce [32]byte
	nonce[0] = 7
	quotes, err := c.Quotes(nonce, [attest.ReportDataSize]byte{})
	if err != nil {
		t.Fatal(err)
	}
	if len(quotes) != c.Size() {
		t.Fatalf("got %d quotes for %d members", len(quotes), c.Size())
	}
	want := cfg.Identity.Measurement()
	for i, q := range quotes {
		if err := attest.VerifyQuote(svc.RootPublicKey(), svc, q, nonce, want); err != nil {
			t.Fatalf("member %d quote rejected: %v", i, err)
		}
	}
}

func TestMergedLogsCoverWholeCluster(t *testing.T) {
	cfg, _ := testConfig(t)
	set := bigSet(t, 100)
	c, err := New(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	victim := bypass.NewVictimVerifier()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		tp := packet.FiveTuple{
			SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.9"),
			SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 443, Proto: packet.ProtoTCP,
		}
		if c.Process(packet.Descriptor{Tuple: tp, Size: 64}) == filter.VerdictAllow {
			victim.Observe(tp)
		}
	}
	snaps, keys, err := c.Snapshots(filter.LogOutgoing, 1)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := bypass.MergeSnapshots(keys, snaps)
	if err != nil {
		t.Fatal(err)
	}
	v, err := victim.CheckSketch(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Clean {
		t.Fatalf("honest cluster flagged: %+v", v)
	}
}

func TestFaultyBalancerCaughtByMisrouteDetection(t *testing.T) {
	cfg, _ := testConfig(t)
	cfg.Dist.M = 92e6
	cfg.Dist.U = 92e6 / 50
	cfg.Faults = lb.Faults{MisrouteProb: 0.5, Seed: 9}
	set := bigSet(t, 200)
	c, err := New(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		r := set.Rules[rng.Intn(set.Len())]
		tp := packet.FiveTuple{
			SrcIP: r.Src.Addr | (rng.Uint32() & 0xff),
			DstIP: packet.MustParseIP("192.0.2.9"),
			Proto: packet.ProtoUDP,
		}
		c.Process(packet.Descriptor{Tuple: tp, Size: 64})
	}
	if got := c.TotalStats().Misrouted; got == 0 {
		t.Fatal("misrouting balancer never detected by enclaves")
	}
}

func TestFaultyBalancerDropsCountAsLBDrops(t *testing.T) {
	cfg, _ := testConfig(t)
	cfg.Faults = lb.Faults{DropProb: 0.25, Seed: 10}
	set := bigSet(t, 50)
	c, err := New(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 2000; i++ {
		tp := packet.FiveTuple{
			SrcIP: i, DstIP: packet.MustParseIP("192.0.2.9"), DstPort: 443, Proto: packet.ProtoTCP,
		}
		c.Process(packet.Descriptor{Tuple: tp, Size: 64})
	}
	drops := c.LBDrops()
	if drops < 300 || drops > 700 {
		t.Fatalf("LBDrops = %d, want ≈500", drops)
	}
}

func TestNewRejectsEmptySet(t *testing.T) {
	cfg, _ := testConfig(t)
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("nil set accepted")
	}
}

func TestFleetScalesUpWithTraffic(t *testing.T) {
	// §IV-B: "If the calculation requires the changes to the number of
	// enclaves, necessary additional steps (e.g., creating and attesting
	// more enclaved filters) may be required." A traffic surge past one
	// enclave's bandwidth must grow the fleet.
	cfg, svc := testConfig(t)
	set := bigSet(t, 20)
	c, err := New(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Size()

	// Report measured traffic of ~4 GB over a 5 s window per rule:
	// 20 rules x 6.4 Gb/s ≈ 128 Gb/s total → ≥13 enclaves at 10 Gb/s.
	surge := make(map[uint32]uint64, set.Len())
	for _, r := range set.Rules {
		surge[r.ID] = 4 << 30
	}
	if err := c.Reconfigure(surge); err != nil {
		t.Fatal(err)
	}
	if c.Size() <= before {
		t.Fatalf("fleet did not grow: %d -> %d", before, c.Size())
	}
	// Every member of the grown fleet must still attest.
	var nonce [32]byte
	nonce[5] = 1
	quotes, err := c.Quotes(nonce, [attest.ReportDataSize]byte{})
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Identity.Measurement()
	for i, q := range quotes {
		if err := attest.VerifyQuote(svc.RootPublicKey(), svc, q, nonce, want); err != nil {
			t.Fatalf("scaled-up member %d failed attestation: %v", i, err)
		}
	}

	// And a traffic collapse must shrink it back down.
	calm := make(map[uint32]uint64, set.Len())
	for _, r := range set.Rules {
		calm[r.ID] = 1000
	}
	if err := c.Reconfigure(calm); err != nil {
		t.Fatal(err)
	}
	if c.Size() >= before+10 {
		t.Fatalf("fleet did not shrink after the surge ended: %d", c.Size())
	}
}

func TestReconfigureRespectsMaxEnclaves(t *testing.T) {
	cfg, _ := testConfig(t)
	cfg.MaxEnclaves = 2
	set := bigSet(t, 20)
	c, err := New(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	surge := make(map[uint32]uint64, set.Len())
	for _, r := range set.Rules {
		surge[r.ID] = 8 << 30
	}
	if err := c.Reconfigure(surge); err == nil {
		t.Fatal("surge beyond MaxEnclaves accepted")
	}
}

// TestPinSizeFixesFleetShape covers the shared-engine shape: a pinned
// fleet spans exactly n enclaves regardless of what the optimizer would
// open (padded share rows for the empty tail), verdicts stay identical to
// a single filter, and rules that genuinely need more enclaves than the
// pin refuse rather than silently overcommitting.
func TestPinSizeFixesFleetShape(t *testing.T) {
	cfg, _ := testConfig(t)
	set := bigSet(t, 40)
	c, err := New(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PinSize(4); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 4 {
		t.Fatalf("pinned fleet size %d, want 4", c.Size())
	}
	if got := c.Balancer().N(); got != 4 {
		t.Fatalf("balancer spans %d enclaves, want 4", got)
	}

	// Verdict equivalence against a lone filter over the full set.
	e, err := enclave.New(cfg.Identity, cfg.Model)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := filter.New(e, set, filter.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		var tup packet.FiveTuple
		if i%2 == 0 {
			r := set.Rules[rng.Intn(set.Len())]
			tup = packet.FiveTuple{
				SrcIP: r.Src.Addr | (rng.Uint32() &^ r.Src.Mask()),
				DstIP: packet.MustParseIP("192.0.2.10"), DstPort: 53, Proto: packet.ProtoUDP,
			}
		} else {
			tup = packet.FiveTuple{SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.10"), DstPort: 443, Proto: packet.ProtoTCP}
		}
		d := packet.Descriptor{Tuple: tup, Size: 64, Ref: packet.NoRef}
		if got, want := c.Process(d), ref.Process(d); got != want {
			t.Fatalf("packet %d: cluster %v, single filter %v", i, got, want)
		}
	}

	// An impossible pin refuses and leaves the previous pin standing.
	big := bigSet(t, 9000) // needs ≥3 enclaves at 3000 rules each
	c2, err := New(cfg, big)
	if err != nil {
		t.Fatal(err)
	}
	before := c2.Size()
	if err := c2.PinSize(1); err == nil {
		t.Fatal("9000 rules pinned into one enclave")
	}
	if c2.Size() != before {
		t.Fatalf("failed pin resized fleet %d -> %d", before, c2.Size())
	}
}
