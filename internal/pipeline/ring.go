// Package pipeline implements VIF's DPDK-style data plane: single-producer/
// single-consumer lock-free rings connecting an RX stage, the enclaved
// filter stage, and a TX stage, each running on its own goroutine and
// processing packets in batches (the paper's Figure 6 pipeline model with
// RX/DROP/TX rings). It also provides the throughput and latency arithmetic
// used to regenerate the paper's data-plane figures.
package pipeline

import (
	"fmt"
	"sync/atomic"

	"github.com/innetworkfiltering/vif/internal/packet"
)

// Ring is a bounded single-producer/single-consumer lock-free queue of
// packet descriptors, the analogue of DPDK's rte_ring in SP/SC mode.
// Exactly one goroutine may call Enqueue* and exactly one may call
// Dequeue*; this matches the pipeline's fixed stage topology.
type Ring struct {
	buf  []packet.Descriptor
	mask uint64
	head atomic.Uint64 // next slot to dequeue (consumer-owned)
	tail atomic.Uint64 // next slot to enqueue (producer-owned)
}

// NewRing creates a ring with capacity size (rounded up to a power of two,
// minimum 2).
func NewRing(size int) (*Ring, error) {
	if size < 1 {
		return nil, fmt.Errorf("pipeline: ring size %d", size)
	}
	pow := 1
	for pow < size || pow < 2 {
		pow <<= 1
	}
	return &Ring{buf: make([]packet.Descriptor, pow), mask: uint64(pow - 1)}, nil
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of queued descriptors (approximate under
// concurrency, exact when quiesced).
func (r *Ring) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Enqueue adds one descriptor; it reports false when the ring is full
// (the producer then drops the packet, as a NIC does on ring overflow).
func (r *Ring) Enqueue(d packet.Descriptor) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = d
	r.tail.Store(tail + 1)
	return true
}

// EnqueueBatch adds as many descriptors from ds as fit and returns the
// number enqueued.
func (r *Ring) EnqueueBatch(ds []packet.Descriptor) int {
	tail := r.tail.Load()
	free := uint64(len(r.buf)) - (tail - r.head.Load())
	n := uint64(len(ds))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(tail+i)&r.mask] = ds[i]
	}
	r.tail.Store(tail + n)
	return int(n)
}

// Dequeue removes one descriptor; ok is false when the ring is empty.
func (r *Ring) Dequeue() (packet.Descriptor, bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return packet.Descriptor{}, false
	}
	d := r.buf[head&r.mask]
	r.head.Store(head + 1)
	return d, true
}

// DequeueBatch fills out with up to len(out) descriptors and returns the
// count, the batched polling every pipeline stage uses.
func (r *Ring) DequeueBatch(out []packet.Descriptor) int {
	head := r.head.Load()
	avail := r.tail.Load() - head
	n := uint64(len(out))
	if n > avail {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		out[i] = r.buf[(head+i)&r.mask]
	}
	r.head.Store(head + n)
	return int(n)
}
