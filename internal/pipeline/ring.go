// Package pipeline implements VIF's DPDK-style data plane: single-producer/
// single-consumer lock-free rings connecting an RX stage, the enclaved
// filter stage, and a TX stage, each running on its own goroutine and
// processing packets in batches (the paper's Figure 6 pipeline model with
// RX/DROP/TX rings). It also provides the throughput and latency arithmetic
// used to regenerate the paper's data-plane figures.
package pipeline

import (
	"fmt"
	"sync/atomic"

	"github.com/innetworkfiltering/vif/internal/packet"
)

// Ring is a bounded single-producer/single-consumer lock-free queue of
// packet descriptors, the analogue of DPDK's rte_ring in SP/SC mode.
// Exactly one goroutine may call Enqueue* and exactly one may call
// Dequeue*; this matches the pipeline's fixed stage topology.
type Ring struct {
	buf  []packet.Descriptor
	mask uint64
	head atomic.Uint64 // next slot to dequeue (consumer-owned)
	tail atomic.Uint64 // next slot to enqueue (producer-owned)
}

// NewRing creates a ring with capacity size (rounded up to a power of two,
// minimum 2).
func NewRing(size int) (*Ring, error) {
	if size < 1 {
		return nil, fmt.Errorf("pipeline: ring size %d", size)
	}
	pow := 1
	for pow < size || pow < 2 {
		pow <<= 1
	}
	return &Ring{buf: make([]packet.Descriptor, pow), mask: uint64(pow - 1)}, nil
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of queued descriptors (approximate under
// concurrency, exact when quiesced).
func (r *Ring) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Enqueue adds one descriptor; it reports false when the ring is full
// (the producer then drops the packet, as a NIC does on ring overflow).
func (r *Ring) Enqueue(d packet.Descriptor) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = d
	r.tail.Store(tail + 1)
	return true
}

// EnqueueBatch adds as many descriptors from ds as fit and returns the
// number enqueued.
func (r *Ring) EnqueueBatch(ds []packet.Descriptor) int {
	tail := r.tail.Load()
	free := uint64(len(r.buf)) - (tail - r.head.Load())
	n := uint64(len(ds))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(tail+i)&r.mask] = ds[i]
	}
	r.tail.Store(tail + n)
	return int(n)
}

// Dequeue removes one descriptor; ok is false when the ring is empty.
func (r *Ring) Dequeue() (packet.Descriptor, bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return packet.Descriptor{}, false
	}
	d := r.buf[head&r.mask]
	r.head.Store(head + 1)
	return d, true
}

// DequeueBatch fills out with up to len(out) descriptors and returns the
// count, the batched polling every pipeline stage uses.
func (r *Ring) DequeueBatch(out []packet.Descriptor) int {
	head := r.head.Load()
	avail := r.tail.Load() - head
	n := uint64(len(out))
	if n > avail {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		out[i] = r.buf[(head+i)&r.mask]
	}
	r.head.Store(head + n)
	return int(n)
}

// mpscSlot is one MPSCRing cell. seq is the Vyukov sequence number that
// both publishes the descriptor (producer side) and recycles the slot
// (consumer side); the atomic store/load pair is what orders the plain
// descriptor write against the consumer's read.
type mpscSlot struct {
	seq atomic.Uint64
	d   packet.Descriptor
}

// MPSCRing is a bounded multi-producer/single-consumer lock-free queue of
// packet descriptors — the ingress ring of one engine shard, fed
// concurrently by any number of RX/load-balancer threads and drained in
// batches by the shard's single worker goroutine. It is a Vyukov-style
// bounded queue: producers reserve a slot with a CAS on tail and publish it
// by advancing the slot's sequence number; the consumer never contends with
// producers except on that per-slot sequence word.
type MPSCRing struct {
	slots []mpscSlot
	mask  uint64
	_     [48]byte      // keep tail off the slots/mask line
	tail  atomic.Uint64 // next slot producers will claim
	_     [56]byte      // producers and consumer on separate lines
	head  atomic.Uint64 // next slot the consumer will read
}

// NewMPSCRing creates a ring with capacity size (rounded up to a power of
// two, minimum 2).
func NewMPSCRing(size int) (*MPSCRing, error) {
	if size < 1 {
		return nil, fmt.Errorf("pipeline: mpsc ring size %d", size)
	}
	pow := 1
	for pow < size || pow < 2 {
		pow <<= 1
	}
	r := &MPSCRing{slots: make([]mpscSlot, pow), mask: uint64(pow - 1)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r, nil
}

// Cap returns the ring capacity.
func (r *MPSCRing) Cap() int { return len(r.slots) }

// Len returns the number of queued descriptors (approximate under
// concurrency, exact when quiesced).
func (r *MPSCRing) Len() int {
	n := int64(r.tail.Load()) - int64(r.head.Load())
	if n < 0 {
		return 0
	}
	return int(n)
}

// Enqueue adds one descriptor from any producer goroutine; it reports false
// when the ring is full (the caller counts a backpressure event and drops,
// as a NIC does on ring overflow).
func (r *MPSCRing) Enqueue(d packet.Descriptor) bool {
	pos := r.tail.Load()
	for {
		s := &r.slots[pos&r.mask]
		switch diff := int64(s.seq.Load()) - int64(pos); {
		case diff == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.d = d
				s.seq.Store(pos + 1)
				return true
			}
			pos = r.tail.Load()
		case diff < 0:
			// The slot still holds an entry from the previous lap: full.
			return false
		default:
			// Another producer claimed pos; chase the tail.
			pos = r.tail.Load()
		}
	}
}

// EnqueueBatch adds as many descriptors from ds as fit and returns the
// number enqueued.
func (r *MPSCRing) EnqueueBatch(ds []packet.Descriptor) int {
	for i, d := range ds {
		if !r.Enqueue(d) {
			return i
		}
	}
	return len(ds)
}

// Dequeue removes one descriptor; ok is false when the ring is empty.
// Exactly one goroutine may consume.
func (r *MPSCRing) Dequeue() (packet.Descriptor, bool) {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	if int64(s.seq.Load())-int64(pos+1) < 0 {
		return packet.Descriptor{}, false
	}
	d := s.d
	s.seq.Store(pos + r.mask + 1)
	r.head.Store(pos + 1)
	return d, true
}

// DequeueBatch fills out with up to len(out) descriptors and returns the
// count — the shard worker's batched poll (the engine's 64-packet bursts).
func (r *MPSCRing) DequeueBatch(out []packet.Descriptor) int {
	pos := r.head.Load()
	n := 0
	for n < len(out) {
		s := &r.slots[pos&r.mask]
		if int64(s.seq.Load())-int64(pos+1) < 0 {
			break
		}
		out[n] = s.d
		s.seq.Store(pos + r.mask + 1)
		pos++
		n++
	}
	if n > 0 {
		r.head.Store(pos)
	}
	return n
}
