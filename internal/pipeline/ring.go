package pipeline

import (
	"fmt"
	"sync/atomic"

	"github.com/innetworkfiltering/vif/internal/packet"
)

// Ring is a bounded single-producer/single-consumer lock-free queue of
// packet descriptors, the analogue of DPDK's rte_ring in SP/SC mode.
// Exactly one goroutine may call Enqueue* and exactly one may call
// Dequeue*; this matches the pipeline's fixed stage topology.
//
// head and tail live on separate cache lines: the producer writes tail on
// every enqueue and the consumer writes head on every dequeue, so sharing
// a line would bounce it between the two cores on every operation.
type Ring struct {
	buf  []packet.Descriptor
	mask uint64
	_    [48]byte      // keep head off the buf/mask line
	head atomic.Uint64 // next slot to dequeue (consumer-owned)
	_    [56]byte      // producer and consumer indexes on separate lines
	tail atomic.Uint64 // next slot to enqueue (producer-owned)
	_    [56]byte      // keep tail off whatever the allocator packs next
}

// NewRing creates a ring with capacity size (rounded up to a power of two,
// minimum 2).
func NewRing(size int) (*Ring, error) {
	if size < 1 {
		return nil, fmt.Errorf("pipeline: ring size %d", size)
	}
	pow := 1
	for pow < size || pow < 2 {
		pow <<= 1
	}
	return &Ring{buf: make([]packet.Descriptor, pow), mask: uint64(pow - 1)}, nil
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of queued descriptors (approximate under
// concurrency, exact when quiesced). head is loaded before tail: head
// never exceeds tail, and tail only grows, so the difference is always
// non-negative — loading in the other order could observe a head advanced
// past the stale tail and return a huge value from the unsigned wrap.
func (r *Ring) Len() int {
	head := r.head.Load()
	return int(r.tail.Load() - head)
}

// Enqueue adds one descriptor; it reports false when the ring is full
// (the producer then drops the packet, as a NIC does on ring overflow).
func (r *Ring) Enqueue(d packet.Descriptor) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = d
	r.tail.Store(tail + 1)
	return true
}

// EnqueueBatch adds as many descriptors from ds as fit and returns the
// number enqueued.
func (r *Ring) EnqueueBatch(ds []packet.Descriptor) int {
	tail := r.tail.Load()
	free := uint64(len(r.buf)) - (tail - r.head.Load())
	n := uint64(len(ds))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(tail+i)&r.mask] = ds[i]
	}
	r.tail.Store(tail + n)
	return int(n)
}

// Dequeue removes one descriptor; ok is false when the ring is empty.
func (r *Ring) Dequeue() (packet.Descriptor, bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return packet.Descriptor{}, false
	}
	d := r.buf[head&r.mask]
	r.head.Store(head + 1)
	return d, true
}

// DequeueBatch fills out with up to len(out) descriptors and returns the
// count, the batched polling every pipeline stage uses.
func (r *Ring) DequeueBatch(out []packet.Descriptor) int {
	head := r.head.Load()
	avail := r.tail.Load() - head
	n := uint64(len(out))
	if n > avail {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		out[i] = r.buf[(head+i)&r.mask]
	}
	r.head.Store(head + n)
	return int(n)
}

// mpscSlot is one MPSCRing cell. seq is the Vyukov sequence number that
// both publishes the descriptor (producer side) and recycles the slot
// (consumer side); the atomic store/load pair is what orders the plain
// descriptor write against the consumer's read.
type mpscSlot struct {
	seq atomic.Uint64
	d   packet.Descriptor
}

// MPSCRing is a bounded multi-producer/single-consumer lock-free queue of
// packet descriptors — the ingress ring of one engine shard, fed
// concurrently by any number of RX/load-balancer threads and drained in
// batches by the shard's single worker goroutine. It is a Vyukov-style
// bounded queue: producers reserve a slot with a CAS on tail and publish it
// by advancing the slot's sequence number; the consumer never contends with
// producers except on that per-slot sequence word.
type MPSCRing struct {
	slots []mpscSlot
	mask  uint64
	_     [48]byte      // keep tail off the slots/mask line
	tail  atomic.Uint64 // next slot producers will claim
	_     [56]byte      // producers and consumer on separate lines
	head  atomic.Uint64 // next slot the consumer will read
	_     [56]byte      // keep head off whatever the allocator packs next
}

// NewMPSCRing creates a ring with capacity size (rounded up to a power of
// two, minimum 2).
func NewMPSCRing(size int) (*MPSCRing, error) {
	if size < 1 {
		return nil, fmt.Errorf("pipeline: mpsc ring size %d", size)
	}
	pow := 1
	for pow < size || pow < 2 {
		pow <<= 1
	}
	r := &MPSCRing{slots: make([]mpscSlot, pow), mask: uint64(pow - 1)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r, nil
}

// Cap returns the ring capacity.
func (r *MPSCRing) Cap() int { return len(r.slots) }

// Len returns the number of queued descriptors, counting slots producers
// have claimed but not yet published (approximate under concurrency, exact
// when quiesced). head is loaded before tail — head never exceeds tail and
// tail only grows, so the difference cannot transiently go negative; the
// clamp stays as a belt against future reorderings.
func (r *MPSCRing) Len() int {
	head := r.head.Load()
	n := int64(r.tail.Load()) - int64(head)
	if n < 0 {
		return 0
	}
	return int(n)
}

// Enqueue adds one descriptor from any producer goroutine; it reports false
// when the ring is full (the caller counts a backpressure event and drops,
// as a NIC does on ring overflow).
func (r *MPSCRing) Enqueue(d packet.Descriptor) bool {
	pos := r.tail.Load()
	for {
		s := &r.slots[pos&r.mask]
		switch diff := int64(s.seq.Load()) - int64(pos); {
		case diff == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.d = d
				s.seq.Store(pos + 1)
				return true
			}
			pos = r.tail.Load()
		case diff < 0:
			// The slot still holds an entry from the previous lap: full.
			return false
		default:
			// Another producer claimed pos; chase the tail.
			pos = r.tail.Load()
		}
	}
}

// EnqueueBatch adds as many descriptors from ds as fit and returns the
// number enqueued. Unlike a loop of Enqueue calls, the whole run is
// reserved with a single CAS on tail — the per-packet producer cost the
// scalar path pays collapses to one synchronization per (producer, burst).
//
// Safety of the multi-slot claim: the free-space bound comes from head,
// which the consumer advances only after recycling the corresponding slot
// sequence numbers, so every position in [pos, pos+n) proven free by
// cap-(pos-head) is guaranteed recycled; the CAS on tail then makes this
// producer the unique owner of those positions. Publication stays per-slot
// (the Vyukov sequence store), so the consumer consumes each entry exactly
// when it is written, and scalar Enqueue callers interleave correctly with
// batch callers — both claim positions through the same tail CAS.
//
// Because head may lag the slot recycling by a store, the head-based bound
// is conservative; when it reports no space the slot-precise scalar path
// is tried once before concluding the ring is truly full, so EnqueueBatch
// never refuses an entry Enqueue would have accepted.
func (r *MPSCRing) EnqueueBatch(ds []packet.Descriptor) int {
	total := 0
	for total < len(ds) {
		pos := r.tail.Load()
		// Signed arithmetic, deliberately: head is read after tail and may
		// be stale in either direction. While the consumer is mid-batch it
		// recycles slot sequences before publishing head, so the scalar
		// fallback below can legitimately push tail past head+cap — with
		// unsigned math `used` then exceeds cap, the subtraction wraps,
		// and a huge bogus `free` would let this producer claim and
		// OVERWRITE unconsumed slots (lost packets and a torn read on the
		// consumer). Conversely a head read racing ahead of the stale
		// tail makes `used` negative; the tail CAS would fail anyway, but
		// the claim is bounded to cap so not even a doomed claim can span
		// more than one lap.
		used := int64(pos) - int64(r.head.Load())
		free := int64(len(r.slots)) - used
		if free <= 0 {
			// head may be stale: fall back to the slot-precise check.
			if !r.Enqueue(ds[total]) {
				return total
			}
			total++
			continue
		}
		if free > int64(len(r.slots)) {
			free = int64(len(r.slots))
		}
		n := uint64(len(ds) - total)
		if n > uint64(free) {
			n = uint64(free)
		}
		if !r.tail.CompareAndSwap(pos, pos+n) {
			continue // another producer moved tail; recompute
		}
		for i := uint64(0); i < n; i++ {
			s := &r.slots[(pos+i)&r.mask]
			s.d = ds[total+int(i)]
			s.seq.Store(pos + i + 1)
		}
		total += int(n)
	}
	return total
}

// Dequeue removes one descriptor; ok is false when the ring is empty.
// Exactly one goroutine may consume.
func (r *MPSCRing) Dequeue() (packet.Descriptor, bool) {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	if int64(s.seq.Load())-int64(pos+1) < 0 {
		return packet.Descriptor{}, false
	}
	d := s.d
	s.seq.Store(pos + r.mask + 1)
	r.head.Store(pos + 1)
	return d, true
}

// DequeueBatch fills out with up to len(out) descriptors and returns the
// count — the shard worker's batched poll (the engine's 64-packet bursts).
func (r *MPSCRing) DequeueBatch(out []packet.Descriptor) int {
	pos := r.head.Load()
	n := 0
	for n < len(out) {
		s := &r.slots[pos&r.mask]
		if int64(s.seq.Load())-int64(pos+1) < 0 {
			break
		}
		out[n] = s.d
		s.seq.Store(pos + r.mask + 1)
		pos++
		n++
	}
	if n > 0 {
		r.head.Store(pos)
	}
	return n
}
