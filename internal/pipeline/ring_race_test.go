// Race-detector coverage for the rings the engine depends on: concurrent
// producers/consumers, full-ring backpressure, and index wrap-around.
// Run with `go test -race ./internal/pipeline/`.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/innetworkfiltering/vif/internal/packet"
)

func ringDesc(i uint64) packet.Descriptor {
	return packet.Descriptor{
		Tuple: packet.FiveTuple{SrcIP: uint32(i), DstIP: uint32(i >> 32)},
		Size:  uint16(i%1400 + 64),
		Ref:   packet.Ref(int32(i % 4096)),
	}
}

// TestRingSPSCWrapAround pushes many times the capacity through a tiny
// ring so head/tail wrap repeatedly while both sides run concurrently.
func TestRingSPSCWrapAround(t *testing.T) {
	r, err := NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	const total = 100000
	var got uint64
	done := make(chan error, 1)
	go func() {
		var next uint64
		for next < total {
			d, ok := r.Dequeue()
			if !ok {
				runtime.Gosched()
				continue
			}
			if uint32(next) != d.Tuple.SrcIP {
				done <- errorf("out of order: got %d want %d", d.Tuple.SrcIP, next)
				return
			}
			next++
			got++
		}
		done <- nil
	}()
	for i := uint64(0); i < total; {
		if r.Enqueue(ringDesc(i)) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got != total {
		t.Fatalf("consumed %d of %d", got, total)
	}
}

// TestRingSPSCBackpressure verifies a full ring refuses without losing or
// duplicating entries once the consumer resumes.
func TestRingSPSCBackpressure(t *testing.T) {
	r, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for r.Enqueue(ringDesc(uint64(n))) {
		n++
	}
	if n != r.Cap() {
		t.Fatalf("accepted %d, cap %d", n, r.Cap())
	}
	if r.Enqueue(ringDesc(99)) {
		t.Fatal("full ring accepted an entry")
	}
	if _, ok := r.Dequeue(); !ok {
		t.Fatal("dequeue from full ring failed")
	}
	if !r.Enqueue(ringDesc(uint64(n))) {
		t.Fatal("ring with one slot free refused")
	}
}

// TestMPSCRingManyProducers hammers one ring from several producers while
// the single consumer drains in batches; every descriptor must arrive
// exactly once and per-producer sequences must stay in order.
func TestMPSCRingManyProducers(t *testing.T) {
	r, err := NewMPSCRing(64)
	if err != nil {
		t.Fatal(err)
	}
	const (
		producers = 8
		perProd   = 20000
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				d := packet.Descriptor{
					Tuple: packet.FiveTuple{SrcIP: uint32(p), DstIP: uint32(i)},
					Size:  64,
				}
				for !r.Enqueue(d) {
					runtime.Gosched()
				}
			}
		}(p)
	}

	seen := make([]uint32, producers) // next expected per-producer sequence
	total := 0
	batch := make([]packet.Descriptor, 16)
	consumerDone := make(chan error, 1)
	go func() {
		for total < producers*perProd {
			n := r.DequeueBatch(batch)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			for _, d := range batch[:n] {
				p := d.Tuple.SrcIP
				if d.Tuple.DstIP != seen[p] {
					consumerDone <- errorf("producer %d: got seq %d want %d", p, d.Tuple.DstIP, seen[p])
					return
				}
				seen[p]++
			}
			total += n
		}
		consumerDone <- nil
	}()
	wg.Wait()
	if err := <-consumerDone; err != nil {
		t.Fatal(err)
	}
	if total != producers*perProd {
		t.Fatalf("consumed %d of %d", total, producers*perProd)
	}
}

// TestMPSCRingBackpressure fills the ring with no consumer and checks the
// exact refusal boundary, concurrently from several producers.
func TestMPSCRingBackpressure(t *testing.T) {
	r, err := NewMPSCRing(32)
	if err != nil {
		t.Fatal(err)
	}
	const producers = 4
	var wg sync.WaitGroup
	var accepted [producers]int
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				if r.Enqueue(ringDesc(uint64(i))) {
					accepted[p]++
				}
			}
		}(p)
	}
	wg.Wait()
	var sum int
	for _, a := range accepted {
		sum += a
	}
	if sum != r.Cap() {
		t.Fatalf("accepted %d, cap %d", sum, r.Cap())
	}
	if r.Len() != r.Cap() {
		t.Fatalf("Len %d, want %d", r.Len(), r.Cap())
	}
	if r.Enqueue(ringDesc(1)) {
		t.Fatal("full MPSC ring accepted an entry")
	}
}

// TestMPSCRingWrapAroundBatches cycles a tiny ring far past its capacity
// using batch enqueue/dequeue so the Vyukov sequence numbers lap many
// times.
func TestMPSCRingWrapAroundBatches(t *testing.T) {
	r, err := NewMPSCRing(4)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]packet.Descriptor, 3)
	out := make([]packet.Descriptor, 3)
	var next uint64
	var want uint32
	for round := 0; round < 10000; round++ {
		for i := range in {
			in[i] = ringDesc(next)
			next++
		}
		pushed := 0
		for pushed < len(in) {
			pushed += r.EnqueueBatch(in[pushed:])
			for {
				n := r.DequeueBatch(out)
				if n == 0 {
					break
				}
				for _, d := range out[:n] {
					if d.Tuple.SrcIP != want {
						t.Fatalf("round %d: got %d want %d", round, d.Tuple.SrcIP, want)
					}
					want++
				}
			}
		}
	}
	if uint64(want) != next {
		t.Fatalf("drained %d of %d", want, next)
	}
}

// TestMPSCRingEnqueueBatchStress is the dedicated race/stress coverage for
// the single-CAS batched reservation: several producers push variable-size
// bursts through EnqueueBatch while others interleave scalar Enqueue calls,
// against a tiny ring so nearly every reservation is partial and the claim
// logic runs at the full/empty boundaries constantly. Every descriptor must
// arrive exactly once and per-producer sequences must stay in order (batch
// producers resume a partially accepted burst from the refusal point, so
// their FIFO order must survive partial reservations).
func TestMPSCRingEnqueueBatchStress(t *testing.T) {
	r, err := NewMPSCRing(32)
	if err != nil {
		t.Fatal(err)
	}
	const (
		batchProducers  = 4
		scalarProducers = 2
		producers       = batchProducers + scalarProducers
		perProd         = 30000
	)
	var wg sync.WaitGroup
	for p := 0; p < batchProducers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			burst := make([]packet.Descriptor, 0, 48)
			next := uint32(0)
			for next < perProd {
				burst = burst[:0]
				// Vary the burst size (1..48, some larger than the ring)
				// so reservations split across laps and partial acceptance
				// paths all execute.
				n := int(next%48) + 1
				for i := 0; i < n && next < perProd; i++ {
					burst = append(burst, packet.Descriptor{
						Tuple: packet.FiveTuple{SrcIP: uint32(p), DstIP: next},
						Size:  64,
					})
					next++
				}
				pushed := 0
				for pushed < len(burst) {
					k := r.EnqueueBatch(burst[pushed:])
					pushed += k
					if k == 0 {
						runtime.Gosched()
					}
				}
			}
		}(p)
	}
	for p := batchProducers; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := uint32(0); i < perProd; i++ {
				d := packet.Descriptor{
					Tuple: packet.FiveTuple{SrcIP: uint32(p), DstIP: i},
					Size:  64,
				}
				for !r.Enqueue(d) {
					runtime.Gosched()
				}
			}
		}(p)
	}

	seen := make([]uint32, producers)
	total := 0
	batch := make([]packet.Descriptor, 24)
	consumerDone := make(chan error, 1)
	go func() {
		for total < producers*perProd {
			n := r.DequeueBatch(batch)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			for _, d := range batch[:n] {
				p := d.Tuple.SrcIP
				if d.Tuple.DstIP != seen[p] {
					consumerDone <- errorf("producer %d: got seq %d want %d", p, d.Tuple.DstIP, seen[p])
					return
				}
				seen[p]++
			}
			total += n
		}
		consumerDone <- nil
	}()
	wg.Wait()
	if err := <-consumerDone; err != nil {
		t.Fatal(err)
	}
	if total != producers*perProd {
		t.Fatalf("consumed %d of %d", total, producers*perProd)
	}
	if r.Len() != 0 {
		t.Fatalf("ring not empty after drain: Len %d", r.Len())
	}
}

// TestMPSCRingEnqueueBatchFullRefusal checks the exact refusal boundary of
// the batched path with no consumer: a burst larger than the free space is
// partially accepted, and a follow-up batch on the full ring returns 0.
func TestMPSCRingEnqueueBatchFullRefusal(t *testing.T) {
	r, err := NewMPSCRing(16)
	if err != nil {
		t.Fatal(err)
	}
	burst := make([]packet.Descriptor, 24)
	for i := range burst {
		burst[i] = ringDesc(uint64(i))
	}
	if n := r.EnqueueBatch(burst); n != r.Cap() {
		t.Fatalf("oversized burst accepted %d, want cap %d", n, r.Cap())
	}
	if n := r.EnqueueBatch(burst); n != 0 {
		t.Fatalf("full ring accepted %d", n)
	}
	if r.Len() != r.Cap() {
		t.Fatalf("Len %d, want %d", r.Len(), r.Cap())
	}
	// Drain one, and a batch must fit exactly one again.
	if _, ok := r.Dequeue(); !ok {
		t.Fatal("dequeue failed")
	}
	if n := r.EnqueueBatch(burst[:4]); n != 1 {
		t.Fatalf("one-slot ring accepted %d", n)
	}
}

// TestMPSCRingSizing mirrors the SPSC constructor contract.
func TestMPSCRingSizing(t *testing.T) {
	if _, err := NewMPSCRing(0); err == nil {
		t.Fatal("size 0 accepted")
	}
	r, err := NewMPSCRing(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 4 {
		t.Fatalf("cap %d, want next power of two 4", r.Cap())
	}
	if r.Len() != 0 {
		t.Fatalf("new ring Len %d", r.Len())
	}
}

func errorf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// TestMPSCRingEnqueueBatchFullRingStaleHead is the regression test for the
// batched reservation's free-space arithmetic at the exactly-full
// boundary. While the consumer is mid-DequeueBatch it recycles slot
// sequences before publishing head, so producers' scalar fallbacks can
// legitimately push tail past head+cap; the batched path's free-space
// subtraction then underflowed (unsigned), conjured a huge bogus free
// count, and overwrote unconsumed slots — lost packets and a data race on
// the slot descriptor. The recipe that reaches the boundary: a small ring
// kept pegged full by bursty producers (drop on refusal, like the
// engine's NIC-style InjectBatch) against a consumer that drains in
// large batches but does per-packet work, so its head publication lags
// its slot recycling. Counts must balance exactly; under -race (CI) the
// overwrite also shows up as a descriptor race.
func TestMPSCRingEnqueueBatchFullRingStaleHead(t *testing.T) {
	r, err := NewMPSCRing(64)
	if err != nil {
		t.Fatal(err)
	}
	const producers = 3
	var accepted, consumed atomic.Uint64
	stop := make(chan struct{})    // producers: stop offering bursts
	drained := make(chan struct{}) // consumer: producers are done, final drain
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			burst := make([]packet.Descriptor, 96) // larger than the ring
			for i := range burst {
				burst[i] = packet.Descriptor{
					Tuple: packet.FiveTuple{SrcIP: uint32(p), DstIP: uint32(i)},
					Size:  64,
				}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				// NIC-style: whatever the full ring refuses is dropped,
				// not retried — the pattern that keeps the ring pegged at
				// exactly-full while the consumer lags.
				accepted.Add(uint64(r.EnqueueBatch(burst)))
			}
		}(p)
	}
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		out := make([]packet.Descriptor, 64)
		var sink uint64
		for {
			n := r.DequeueBatch(out)
			if n == 0 {
				select {
				case <-drained:
					if r.Len() == 0 {
						return
					}
				default:
				}
				runtime.Gosched()
				continue
			}
			// Per-packet work between the slot recycling and the next
			// poll, so producers run against a stale head as the engine's
			// filter workers do.
			for _, d := range out[:n] {
				sink += uint64(d.Tuple.SrcIP) + uint64(d.Tuple.DstIP)
			}
			consumed.Add(uint64(n))
		}
	}()
	for consumed.Load() < 60000 {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	close(drained)
	<-consumerDone
	if a, c := accepted.Load(), consumed.Load(); a != c {
		t.Fatalf("accepted %d, consumed %d — the full-ring claim overwrote live slots", a, c)
	}
}
