package pipeline

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/telemetry"
)

// DefaultBatch is the per-poll batch size, matching DPDK's conventional
// 32-packet burst.
const DefaultBatch = 32

// ErrRunning is returned by Start on an already-running pipeline.
var ErrRunning = errors.New("pipeline: already running")

// Sink receives packets the filter allowed, in order, with the verdict
// already applied. The frame bytes are only valid during the call (the
// buffer returns to the pool afterwards), mirroring NIC TX semantics.
type Sink func(d packet.Descriptor, frame []byte)

// Config configures a Pipeline.
type Config struct {
	// RingSize is the capacity of each inter-stage ring. Default 1024.
	RingSize int
	// Batch is the per-poll burst size. Default DefaultBatch.
	Batch int
	// PoolSize is the packet buffer pool depth. Default 4096.
	PoolSize int
	// BufSize is the per-buffer byte capacity. Default MaxFrameSize.
	BufSize int
}

func (c *Config) fillDefaults() {
	if c.RingSize == 0 {
		c.RingSize = 1024
	}
	if c.Batch == 0 {
		c.Batch = DefaultBatch
	}
	if c.PoolSize == 0 {
		c.PoolSize = 4096
	}
	if c.BufSize == 0 {
		c.BufSize = packet.MaxFrameSize
	}
}

// Counters are the pipeline's packet counters.
type Counters struct {
	RxPackets uint64 // frames accepted by Inject
	RxDropped uint64 // frames dropped at RX (pool/ring exhaustion, parse)
	TxPackets uint64 // frames delivered to the sink
	Filtered  uint64 // frames dropped by filter verdict
}

// Pipeline wires RX → enclaved filter → TX over SPSC rings, with a DROP
// ring for filtered packets and a FREE ring recycling buffers back to the
// RX stage — the paper's Figure 6 topology. The RX stage is driven by the
// caller's Inject (playing the NIC + pktgen role); the filter and TX stages
// run on their own goroutines.
type Pipeline struct {
	cfg  Config
	f    *filter.Filter
	pool *packet.Pool

	rx, tx, drop, free *Ring

	sink Sink

	rxPackets atomic.Uint64
	rxDropped atomic.Uint64
	txPackets atomic.Uint64
	filtered  atomic.Uint64

	running atomic.Bool
	stop    chan struct{}
	doneFlt chan struct{}
	doneTx  chan struct{}
}

// New creates a pipeline around a filter and a sink.
func New(f *filter.Filter, sink Sink, cfg Config) (*Pipeline, error) {
	cfg.fillDefaults()
	if f == nil {
		return nil, errors.New("pipeline: nil filter")
	}
	if sink == nil {
		sink = func(packet.Descriptor, []byte) {}
	}
	mk := func() (*Ring, error) { return NewRing(cfg.RingSize) }
	rx, err := mk()
	if err != nil {
		return nil, err
	}
	tx, err := mk()
	if err != nil {
		return nil, err
	}
	drop, err := mk()
	if err != nil {
		return nil, err
	}
	free, err := NewRing(cfg.PoolSize)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		cfg:  cfg,
		f:    f,
		pool: packet.NewPool(cfg.PoolSize, cfg.BufSize),
		rx:   rx, tx: tx, drop: drop, free: free,
		sink: sink,
	}, nil
}

// Start launches the filter and TX stages.
func (p *Pipeline) Start() error {
	if !p.running.CompareAndSwap(false, true) {
		return ErrRunning
	}
	p.stop = make(chan struct{})
	p.doneFlt = make(chan struct{})
	p.doneTx = make(chan struct{})
	go p.filterStage()
	go p.txStage()
	return nil
}

// Stop drains in-flight packets and stops the stages. It is idempotent.
func (p *Pipeline) Stop() {
	if !p.running.CompareAndSwap(true, false) {
		return
	}
	close(p.stop)
	<-p.doneFlt
	<-p.doneTx
}

// Counters returns a snapshot of the packet counters.
func (p *Pipeline) Counters() Counters {
	return Counters{
		RxPackets: p.rxPackets.Load(),
		RxDropped: p.rxDropped.Load(),
		TxPackets: p.txPackets.Load(),
		Filtered:  p.filtered.Load(),
	}
}

// Filter returns the wrapped filter.
func (p *Pipeline) Filter() *filter.Filter { return p.f }

// Inject plays the NIC RX role for one frame: parse, copy into a pool
// buffer, and enqueue to the filter stage. It must be called from a single
// goroutine (the traffic generator). Frames that fail to parse, or that
// arrive while pool or ring are exhausted, count as RX drops — exactly how
// a saturated NIC behaves.
func (p *Pipeline) Inject(frame []byte) bool {
	// Recycle buffers returned by TX before allocating.
	for {
		d, ok := p.free.Dequeue()
		if !ok {
			break
		}
		p.pool.Free(d.Ref)
	}
	tuple, err := packet.Parse(frame)
	if err != nil {
		p.rxDropped.Add(1)
		return false
	}
	ref, ok := p.pool.Alloc()
	if !ok {
		p.rxDropped.Add(1)
		return false
	}
	buf := p.pool.Buf(ref)
	if len(frame) > len(buf) {
		p.pool.Free(ref)
		p.rxDropped.Add(1)
		return false
	}
	copy(buf, frame)
	d := packet.Descriptor{Tuple: tuple, Size: uint16(len(frame)), Ref: ref}
	if !p.rx.Enqueue(d) {
		p.pool.Free(ref)
		p.rxDropped.Add(1)
		return false
	}
	p.rxPackets.Add(1)
	return true
}

// filterStage polls the RX ring, runs the enclaved filter on each
// descriptor, and forwards to the TX or DROP ring by verdict.
func (p *Pipeline) filterStage() {
	defer close(p.doneFlt)
	batch := make([]packet.Descriptor, p.cfg.Batch)
	for {
		n := p.rx.DequeueBatch(batch)
		if n == 0 {
			select {
			case <-p.stop:
				// Final drain: whatever raced in after the signal.
				if n = p.rx.DequeueBatch(batch); n == 0 {
					return
				}
			default:
				runtime.Gosched()
				continue
			}
		}
		for _, d := range batch[:n] {
			if p.f.Process(d) == filter.VerdictAllow {
				for !p.tx.Enqueue(d) {
					runtime.Gosched()
				}
			} else {
				p.filtered.Add(1)
				for !p.drop.Enqueue(d) {
					runtime.Gosched()
				}
			}
		}
	}
}

// txStage delivers allowed packets to the sink and recycles all buffers.
func (p *Pipeline) txStage() {
	defer close(p.doneTx)
	batch := make([]packet.Descriptor, p.cfg.Batch)
	for {
		idle := true
		if n := p.tx.DequeueBatch(batch); n > 0 {
			idle = false
			for _, d := range batch[:n] {
				p.sink(d, p.pool.Buf(d.Ref)[:d.Size])
				p.txPackets.Add(1)
				for !p.free.Enqueue(d) {
					runtime.Gosched()
				}
			}
		}
		if n := p.drop.DequeueBatch(batch); n > 0 {
			idle = false
			for _, d := range batch[:n] {
				for !p.free.Enqueue(d) {
					runtime.Gosched()
				}
			}
		}
		if idle {
			select {
			case <-p.stop:
				// Drain whatever the filter stage flushed after stop.
				if p.tx.Len() == 0 && p.drop.Len() == 0 && p.filterDone() {
					return
				}
			default:
				runtime.Gosched()
			}
		}
	}
}

func (p *Pipeline) filterDone() bool {
	select {
	case <-p.doneFlt:
		return true
	default:
		return false
	}
}

// WaitDrained spins until every injected packet has been either delivered
// or dropped. Call after the generator finishes and before reading final
// counters.
func (p *Pipeline) WaitDrained() {
	for {
		c := p.Counters()
		if c.RxPackets == c.TxPackets+c.Filtered {
			return
		}
		runtime.Gosched()
	}
}

// Collect publishes the pipeline's counters as telemetry metric families,
// so the serial Figure-6 pipeline can register on a telemetry.Server
// exactly like the engine does (telemetry.Telemetry.Register).
func (p *Pipeline) Collect() []telemetry.Metric {
	c := p.Counters()
	counter := func(name, help string, v uint64) telemetry.Metric {
		return telemetry.Metric{
			Name: name, Help: help, Type: telemetry.Counter,
			Samples: []telemetry.Sample{{Value: float64(v)}},
		}
	}
	return []telemetry.Metric{
		counter("vif_pipeline_rx_packets_total", "Frames accepted by Inject.", c.RxPackets),
		counter("vif_pipeline_rx_dropped_total", "Frames dropped at RX (pool/ring exhaustion, parse).", c.RxDropped),
		counter("vif_pipeline_tx_packets_total", "Frames delivered to the sink.", c.TxPackets),
		counter("vif_pipeline_filtered_total", "Frames dropped by filter verdict.", c.Filtered),
	}
}

// String summarizes the pipeline state for logs.
func (p *Pipeline) String() string {
	c := p.Counters()
	return fmt.Sprintf("pipeline{rx=%d rxdrop=%d tx=%d filtered=%d}",
		c.RxPackets, c.RxDropped, c.TxPackets, c.Filtered)
}
