package pipeline

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/innetworkfiltering/vif/internal/enclave"
	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rules"
)

func testFilter(t testing.TB, defaultAllow bool) *filter.Filter {
	t.Helper()
	e, err := enclave.New(enclave.CodeIdentity{Name: "vif-filter", BinarySize: 1 << 20}, enclave.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	set, err := rules.NewSet([]rules.Rule{
		rules.MustParse("drop udp from 10.0.0.0/8 to 192.0.2.0/24 dport 53"),
	}, defaultAllow)
	if err != nil {
		t.Fatal(err)
	}
	f, err := filter.New(e, set, filter.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func attackFrame(src string) []byte {
	return packet.Synthesize(packet.FiveTuple{
		SrcIP:   packet.MustParseIP(src),
		DstIP:   packet.MustParseIP("192.0.2.10"),
		SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
	}, 128).Buf
}

func cleanFrame(src string) []byte {
	return packet.Synthesize(packet.FiveTuple{
		SrcIP:   packet.MustParseIP(src),
		DstIP:   packet.MustParseIP("192.0.2.10"),
		SrcPort: 40000, DstPort: 443, Proto: packet.ProtoTCP,
	}, 128).Buf
}

func TestRingBasics(t *testing.T) {
	r, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d", r.Cap())
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("empty ring dequeued")
	}
	for i := 0; i < 4; i++ {
		if !r.Enqueue(packet.Descriptor{Size: uint16(i)}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if r.Enqueue(packet.Descriptor{}) {
		t.Fatal("full ring accepted enqueue")
	}
	for i := 0; i < 4; i++ {
		d, ok := r.Dequeue()
		if !ok || d.Size != uint16(i) {
			t.Fatalf("dequeue %d: %v %v (FIFO violated)", i, d.Size, ok)
		}
	}
}

func TestRingSizeValidation(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Fatal("size 0 accepted")
	}
	r, err := NewRing(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want rounded to 4", r.Cap())
	}
}

func TestRingBatchOps(t *testing.T) {
	r, _ := NewRing(8)
	in := make([]packet.Descriptor, 12)
	for i := range in {
		in[i].Size = uint16(i)
	}
	if n := r.EnqueueBatch(in); n != 8 {
		t.Fatalf("EnqueueBatch = %d, want 8 (capacity)", n)
	}
	out := make([]packet.Descriptor, 5)
	if n := r.DequeueBatch(out); n != 5 {
		t.Fatalf("DequeueBatch = %d", n)
	}
	for i := 0; i < 5; i++ {
		if out[i].Size != uint16(i) {
			t.Fatalf("batch order violated at %d", i)
		}
	}
	if n := r.DequeueBatch(out); n != 3 {
		t.Fatalf("remaining = %d, want 3", n)
	}
}

func TestRingSPSCStress(t *testing.T) {
	r, _ := NewRing(64)
	const total = 200000
	var sum atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		got := 0
		buf := make([]packet.Descriptor, 16)
		for got < total {
			n := r.DequeueBatch(buf)
			if n == 0 {
				runtime.Gosched() // empty ring: hand the core to the producer
				continue
			}
			for i := 0; i < n; i++ {
				sum.Add(uint64(buf[i].Size))
			}
			got += n
		}
	}()
	var want uint64
	for i := 0; i < total; i++ {
		d := packet.Descriptor{Size: uint16(i & 0x3ff)}
		want += uint64(d.Size)
		// Yield while the ring is full: a tight spin starves the consumer
		// for a whole scheduler timeslice per lap on a single-CPU host,
		// turning this test into minutes of wall clock.
		for !r.Enqueue(d) {
			runtime.Gosched()
		}
	}
	<-done
	if sum.Load() != want {
		t.Fatalf("sum %d != %d: lost or duplicated descriptors", sum.Load(), want)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	f := testFilter(t, true)
	var delivered atomic.Uint64
	sink := func(d packet.Descriptor, frame []byte) {
		if _, err := packet.Parse(frame); err != nil {
			t.Errorf("sink got malformed frame: %v", err)
		}
		delivered.Add(1)
	}
	p, err := New(f, sink, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	const attacks, clean = 500, 300
	for i := 0; i < attacks; i++ {
		for !p.Inject(attackFrame("10.1.2.3")) {
			time.Sleep(time.Microsecond)
		}
	}
	for i := 0; i < clean; i++ {
		for !p.Inject(cleanFrame("203.0.113.7")) {
			time.Sleep(time.Microsecond)
		}
	}
	p.WaitDrained()
	c := p.Counters()
	if c.RxPackets != attacks+clean {
		t.Fatalf("RxPackets = %d", c.RxPackets)
	}
	if c.Filtered != attacks {
		t.Fatalf("Filtered = %d, want %d", c.Filtered, attacks)
	}
	if c.TxPackets != clean || delivered.Load() != clean {
		t.Fatalf("TxPackets = %d delivered = %d, want %d", c.TxPackets, delivered.Load(), clean)
	}
}

func TestPipelineBufferRecycling(t *testing.T) {
	// Far more packets than pool buffers: recycling must keep up.
	f := testFilter(t, true)
	p, err := New(f, nil, Config{PoolSize: 64, RingSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	frame := cleanFrame("203.0.113.8")
	injected := 0
	for injected < 10000 {
		if p.Inject(frame) {
			injected++
		}
	}
	p.WaitDrained()
	if got := p.Counters().TxPackets; got != 10000 {
		t.Fatalf("TxPackets = %d, want 10000", got)
	}
}

func TestPipelineRejectsGarbageFrames(t *testing.T) {
	f := testFilter(t, true)
	p, err := New(f, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if p.Inject([]byte{1, 2, 3}) {
		t.Fatal("garbage accepted")
	}
	if got := p.Counters().RxDropped; got != 1 {
		t.Fatalf("RxDropped = %d", got)
	}
}

func TestPipelineDoubleStartStop(t *testing.T) {
	f := testFilter(t, true)
	p, err := New(f, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != ErrRunning {
		t.Fatalf("second Start: %v, want ErrRunning", err)
	}
	p.Stop()
	p.Stop() // idempotent
}

func TestLineRateArithmetic(t *testing.T) {
	// 64-byte frames at 10 GbE: the canonical 14.88 Mpps.
	got := LineRatePps(64, TenGigE)
	if math.Abs(got-14.88e6) > 0.01e6 {
		t.Fatalf("LineRatePps(64) = %v, want ≈14.88M", got)
	}
	// 1500-byte frames: ≈822 Kpps.
	got = LineRatePps(1500, TenGigE)
	if math.Abs(got-822e3) > 2e3 {
		t.Fatalf("LineRatePps(1500) = %v, want ≈822K", got)
	}
}

func TestModeledThroughputCapsAtLineRate(t *testing.T) {
	// A 1 ns/packet filter is NIC-bound, not CPU-bound.
	pps, _ := ModeledThroughput(1, 64, TenGigE)
	if math.Abs(pps-LineRatePps(64, TenGigE)) > 1 {
		t.Fatalf("pps = %v, want line rate", pps)
	}
	// A 1 µs/packet filter is CPU-bound at 1 Mpps.
	pps, bps := ModeledThroughput(1000, 64, TenGigE)
	if math.Abs(pps-1e6) > 1 {
		t.Fatalf("pps = %v, want 1M", pps)
	}
	if math.Abs(bps-1e6*64*8) > 1 {
		t.Fatalf("bps = %v", bps)
	}
}

func TestLatencyModelMatchesPaper(t *testing.T) {
	// §V-B: 34/38/52/80/107 µs at 128/256/512/1024/1500 B under 8 Gb/s.
	m := DefaultLatencyModel()
	want := map[int]float64{128: 34, 256: 38, 512: 52, 1024: 80, 1500: 107}
	for size, wantUs := range want {
		got := m.Latency(8e9, size, 100).Seconds() * 1e6
		// The model should land within 25% of each measured point.
		if math.Abs(got-wantUs)/wantUs > 0.25 {
			t.Errorf("latency(%dB) = %.1f µs, paper %.0f µs", size, got, wantUs)
		}
	}
	// And it must be monotone in packet size at fixed bit rate.
	prev := time.Duration(0)
	for _, size := range []int{128, 256, 512, 1024, 1500} {
		l := m.Latency(8e9, size, 100)
		if l <= prev {
			t.Fatalf("latency not monotone at %d B", size)
		}
		prev = l
	}
}

func TestRunClosedLoopProducesCosts(t *testing.T) {
	f := testFilter(t, true)
	descs := []packet.Descriptor{{
		Tuple: packet.FiveTuple{
			SrcIP: packet.MustParseIP("10.1.2.3"), DstIP: packet.MustParseIP("192.0.2.10"),
			SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
		},
		Size: 64,
	}}
	perPkt := RunClosedLoop(f, descs, 1000)
	if perPkt <= 0 {
		t.Fatalf("perPkt = %v", perPkt)
	}
	if RunClosedLoop(f, nil, 10) != 0 || RunClosedLoop(f, descs, 0) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
}

func BenchmarkPipelineThroughput(b *testing.B) {
	f := testFilter(b, true)
	p, err := New(f, nil, Config{})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Start(); err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	frame := cleanFrame("203.0.113.8")
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !p.Inject(frame) {
		}
	}
	p.WaitDrained()
}

func BenchmarkRingEnqueueDequeue(b *testing.B) {
	r, _ := NewRing(1024)
	d := packet.Descriptor{Size: 64}
	for i := 0; i < b.N; i++ {
		r.Enqueue(d)
		r.Dequeue()
	}
}
