// Package pipeline implements VIF's DPDK-style data plane: lock-free rings
// connecting an RX stage, the enclaved filter stage, and a TX stage, each
// running on its own goroutine and processing packets in batches (the
// paper's Figure 6 pipeline model with RX/DROP/TX rings). It also provides
// the throughput and latency arithmetic used to regenerate the paper's
// data-plane figures (ModeledThroughput, LatencyModel).
//
// Two ring flavors exist, both bounded, power-of-two sized, and cache-line
// padded so producer and consumer indexes never share a line:
//
//   - Ring is single-producer/single-consumer (DPDK rte_ring SP/SC): the
//     fixed stage topology of the serial pipeline.
//   - MPSCRing is multi-producer/single-consumer (Vyukov-style per-slot
//     sequence numbers): the engine's shard ingress, where any number of
//     producer goroutines inject concurrently. EnqueueBatch reserves a
//     whole run with ONE tail CAS and publishes per slot, falling back to
//     scalar enqueues when the consumer lags.
//
// # Concurrency contract
//
//   - Ring: exactly one goroutine may call Enqueue*, exactly one may call
//     Dequeue*. No third role exists.
//   - MPSCRing: any number of enqueuers; exactly ONE dequeuer. Len may be
//     read from any goroutine (monitoring-grade).
//   - Pipeline (the RX→filter→TX assembly) owns its stage goroutines;
//     Inject is the producer API and Counters is safe concurrently.
//
// # Invariants
//
//   - No descriptor is ever lost inside a ring: an enqueue either
//     publishes the descriptor for the consumer or reports refusal
//     (full ring) to the caller — partial batch acceptance counts
//     exactly the published prefix of the reservation.
//   - Slots are recycled only after the consumer advances past them; a
//     refused EnqueueBatch never overwrites unconsumed slots (the
//     stale-head full-ring case is regression-tested).
//   - Len never exceeds capacity and never goes negative (head is loaded
//     before tail).
package pipeline
