package pipeline

import (
	"time"

	"github.com/innetworkfiltering/vif/internal/filter"
	"github.com/innetworkfiltering/vif/internal/packet"
)

// Ethernet physical-layer overhead per frame: 7-byte preamble + 1-byte SFD
// + 12-byte inter-frame gap. Line-rate arithmetic (Figures 8 and 13) must
// include it.
const etherOverheadBytes = 20

// TenGigE is the link speed of the paper's testbed.
const TenGigE = 10e9

// LineRatePps returns the maximum packets/s a link of linkBps can carry at
// the given frame size (e.g. 14.88 Mpps for 64-byte frames at 10 GbE).
func LineRatePps(frameBytes int, linkBps float64) float64 {
	return linkBps / (float64(frameBytes+etherOverheadBytes) * 8)
}

// ThroughputBps converts a packet rate to goodput in bits/s of frame bytes
// (the paper's Gb/s axis counts frame bytes, not PHY overhead).
func ThroughputBps(pps float64, frameBytes int) float64 {
	return pps * float64(frameBytes) * 8
}

// ModeledThroughput converts a measured per-packet virtual cost into the
// achievable rate on a link: the CPU-bound rate 1e9/perPktNs capped at the
// link's line rate for that frame size.
func ModeledThroughput(perPktNs float64, frameBytes int, linkBps float64) (pps, bps float64) {
	line := LineRatePps(frameBytes, linkBps)
	pps = line
	if perPktNs > 0 {
		if cpu := 1e9 / perPktNs; cpu < line {
			pps = cpu
		}
	}
	return pps, ThroughputBps(pps, frameBytes)
}

// RunClosedLoop drives n packets synchronously through the filter (no
// goroutines, no rings) and returns the mean per-packet virtual cost in
// nanoseconds, including the fixed pipeline cost from the enclave's model.
// The experiment harness uses this to regenerate the data-plane figures
// deterministically; the concurrent Pipeline exercises the same filter
// under real scheduling.
func RunClosedLoop(f *filter.Filter, descs []packet.Descriptor, n int) float64 {
	if n <= 0 || len(descs) == 0 {
		return 0
	}
	e := f.Enclave()
	e.ResetMeter()
	for i := 0; i < n; i++ {
		f.Process(descs[i%len(descs)])
	}
	perPkt := e.VirtualNs() / float64(n)
	return perPkt + e.Model().PipelineNs
}

// LatencyModel reproduces the paper's §V-B latency measurements. At a fixed
// offered bit rate, larger frames mean fewer packets per second, so filling
// a 32-packet burst takes longer — batch-fill time dominates the measured
// latency growth from 34 µs (128 B) to 107 µs (1500 B) at 8 Gb/s.
type LatencyModel struct {
	// FixedNs covers propagation, NIC queues, and pktgen's measurement
	// path — everything independent of batching.
	FixedNs float64
	// BatchResidencies is the effective number of batch-fill waits a
	// packet experiences across the RX/filter/TX stages.
	BatchResidencies float64
	// Batch is the burst size.
	Batch int
}

// DefaultLatencyModel calibrates against the paper's five data points.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{FixedNs: 26000, BatchResidencies: 1.7, Batch: DefaultBatch}
}

// Latency returns the modelled mean packet latency at the given offered
// load and frame size, plus the per-packet service cost.
func (m LatencyModel) Latency(offeredBps float64, frameBytes int, perPktNs float64) time.Duration {
	pps := offeredBps / (float64(frameBytes) * 8)
	batchFillNs := float64(m.Batch) / pps * 1e9
	total := m.FixedNs + m.BatchResidencies*batchFillNs + perPktNs
	return time.Duration(total) * time.Nanosecond
}
