package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/innetworkfiltering/vif/internal/packet"
)

func TestLognormalSumsToTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := LognormalBandwidths(rng, 5000, 100e9, DefaultSigma)
	if len(b) != 5000 {
		t.Fatalf("len = %d", len(b))
	}
	var sum float64
	for _, v := range b {
		if v <= 0 {
			t.Fatal("non-positive bandwidth")
		}
		sum += v
	}
	if math.Abs(sum-100e9) > 1 {
		t.Fatalf("sum = %v, want 100e9", sum)
	}
	if LognormalBandwidths(rng, 0, 1, 1) != nil {
		t.Fatal("k=0 must return nil")
	}
}

func TestLognormalIsSkewed(t *testing.T) {
	// With sigma=1.5 the top 1% of rules must carry far more than 1% of
	// traffic (the heavy-tail premise of the distribution experiments).
	rng := rand.New(rand.NewSource(2))
	b := LognormalBandwidths(rng, 10000, 1e9, DefaultSigma)
	sorted := append([]float64(nil), b...)
	// Compute share of top 100 without a full sort: threshold selection.
	top := topK(sorted, 100)
	var topSum float64
	for _, v := range top {
		topSum += v
	}
	if topSum < 0.10e9 {
		t.Fatalf("top 1%% carries %.1f%% of traffic, want ≥10%%", topSum/1e9*100)
	}
}

func topK(xs []float64, k int) []float64 {
	out := append([]float64(nil), xs...)
	for i := 0; i < k && i < len(out); i++ {
		maxJ := i
		for j := i + 1; j < len(out); j++ {
			if out[j] > out[maxJ] {
				maxJ = j
			}
		}
		out[i], out[maxJ] = out[maxJ], out[i]
	}
	return out[:k]
}

func TestClampToCapacity(t *testing.T) {
	b := []float64{25, 5, 10, 0}
	out, splits := ClampToCapacity(b, 10)
	if splits != 2 {
		t.Fatalf("splits = %d, want 2 (25 -> 10+10+5)", splits)
	}
	var sum float64
	for _, v := range out {
		if v > 10 || v <= 0 {
			t.Fatalf("entry %v outside (0,10]", v)
		}
		sum += v
	}
	if math.Abs(sum-40) > 1e-9 {
		t.Fatalf("sum = %v, want 40", sum)
	}
}

func TestClampProperty(t *testing.T) {
	f := func(seed int64, k uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := LognormalBandwidths(rng, int(k%50)+1, 100, 2.0)
		out, _ := ClampToCapacity(b, 10)
		var in, res float64
		for _, v := range b {
			in += v
		}
		for _, v := range out {
			if v > 10+1e-9 {
				return false
			}
			res += v
		}
		return math.Abs(in-res) < 1e-6*in+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFlowGenTargetsVictim(t *testing.T) {
	victim := packet.MustParseIP("192.0.2.0")
	g := NewFlowGen(1, victim, 24)
	for i := 0; i < 1000; i++ {
		f := g.Next()
		if f.DstIP&0xffffff00 != victim {
			t.Fatalf("flow %v outside victim /24", f)
		}
		if f.SrcPort < 1024 {
			t.Fatalf("source port %d in privileged range", f.SrcPort)
		}
	}
}

func TestFlowGenDeterministic(t *testing.T) {
	a := NewFlowGen(7, packet.MustParseIP("192.0.2.0"), 24)
	b := NewFlowGen(7, packet.MustParseIP("192.0.2.0"), 24)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDescriptors(t *testing.T) {
	g := NewFlowGen(3, packet.MustParseIP("192.0.2.0"), 24)
	ds := g.Descriptors(64, 512)
	if len(ds) != 64 {
		t.Fatalf("len = %d", len(ds))
	}
	for _, d := range ds {
		if d.Size != 512 {
			t.Fatalf("size = %d", d.Size)
		}
	}
}

// TestDescriptorsIntoMatchesScalar checks that burst generation is the
// same flow sequence the scalar generator produces: a producer switching
// to DescriptorsInto emits bit-identical traffic.
func TestDescriptorsIntoMatchesScalar(t *testing.T) {
	a := NewFlowGen(5, packet.MustParseIP("192.0.2.0"), 24)
	b := NewFlowGen(5, packet.MustParseIP("192.0.2.0"), 24)
	burst := make([]packet.Descriptor, 96)
	a.DescriptorsInto(burst, 128)
	for i, d := range burst {
		want := packet.Descriptor{Tuple: b.Next(), Size: 128, Ref: packet.NoRef}
		if d != want {
			t.Fatalf("burst[%d] = %v, scalar %v", i, d, want)
		}
	}
}
