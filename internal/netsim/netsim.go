// Package netsim generates the synthetic traffic workloads used across the
// evaluation: lognormally distributed per-rule bandwidths (§V-C: "the
// incoming traffic distribution across the filter rules follows a lognormal
// distribution"), packet-size mixes, and deterministic flow generators.
// All generators are seeded so every experiment is reproducible bit-for-bit.
package netsim

import (
	"math"
	"math/rand"

	"github.com/innetworkfiltering/vif/internal/packet"
)

// LognormalBandwidths draws k per-rule bandwidths from a lognormal
// distribution and rescales them to sum exactly to totalBps, reproducing
// the paper's rule-traffic model (a few heavy rules, a long tail of light
// ones). sigma controls skew; the paper does not report its value, so the
// default used by the experiments is Sigma = 1.5 (documented in
// EXPERIMENTS.md and easy to ablate).
func LognormalBandwidths(rng *rand.Rand, k int, totalBps, sigma float64) []float64 {
	if k <= 0 {
		return nil
	}
	b := make([]float64, k)
	var sum float64
	for i := range b {
		b[i] = math.Exp(rng.NormFloat64() * sigma)
		sum += b[i]
	}
	scale := totalBps / sum
	for i := range b {
		b[i] *= scale
	}
	return b
}

// DefaultSigma is the lognormal shape used by the experiment harness.
const DefaultSigma = 1.5

// ClampToCapacity splits any bandwidth exceeding perEnclaveCap into
// multiple entries of at most cap each, so every solver precondition
// b_i ≤ G holds. It returns the new slice and how many splits occurred.
func ClampToCapacity(b []float64, cap float64) ([]float64, int) {
	out := make([]float64, 0, len(b))
	splits := 0
	for _, v := range b {
		for v > cap {
			out = append(out, cap)
			v -= cap
			splits++
		}
		if v > 0 {
			out = append(out, v)
		}
	}
	return out, splits
}

// PacketSizes are the frame sizes swept by the paper's data-plane figures.
var PacketSizes = []int{64, 128, 256, 512, 1024, 1500}

// FlowGen deterministically generates random five-tuple flows aimed at a
// victim prefix, standing in for pktgen-dpdk.
type FlowGen struct {
	rng      *rand.Rand
	dstBase  uint32
	dstMask  uint32
	protoMix []packet.Protocol
}

// NewFlowGen creates a generator targeting the victim prefix (host bits
// randomized per flow).
func NewFlowGen(seed int64, victimPrefix uint32, prefixLen int) *FlowGen {
	mask := uint32(0)
	if prefixLen > 0 {
		mask = ^uint32(0) << (32 - prefixLen)
	}
	return &FlowGen{
		rng:      rand.New(rand.NewSource(seed)),
		dstBase:  victimPrefix & mask,
		dstMask:  mask,
		protoMix: []packet.Protocol{packet.ProtoTCP, packet.ProtoTCP, packet.ProtoUDP},
	}
}

// Next returns a fresh random flow.
func (g *FlowGen) Next() packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   g.rng.Uint32(),
		DstIP:   g.dstBase | (g.rng.Uint32() &^ g.dstMask),
		SrcPort: uint16(g.rng.Intn(64511) + 1024),
		DstPort: [4]uint16{80, 443, 53, 123}[g.rng.Intn(4)],
		Proto:   g.protoMix[g.rng.Intn(len(g.protoMix))],
	}
}

// Descriptors pre-generates n descriptors of the given frame size for
// closed-loop benchmarking.
func (g *FlowGen) Descriptors(n, frameSize int) []packet.Descriptor {
	out := make([]packet.Descriptor, n)
	g.DescriptorsInto(out, frameSize)
	return out
}

// DescriptorsInto fills out with fresh flows of the given frame size — the
// burst-generation form producer loops use so a whole injection batch is
// synthesized without a call or an allocation per packet.
func (g *FlowGen) DescriptorsInto(out []packet.Descriptor, frameSize int) {
	for i := range out {
		out[i] = packet.Descriptor{Tuple: g.Next(), Size: uint16(frameSize), Ref: packet.NoRef}
	}
}
