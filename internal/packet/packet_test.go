package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tupleTCP() FiveTuple {
	return FiveTuple{
		SrcIP:   MustParseIP("10.1.2.3"),
		DstIP:   MustParseIP("192.0.2.9"),
		SrcPort: 443,
		DstPort: 51234,
		Proto:   ProtoTCP,
	}
}

func TestKeyRoundTrip(t *testing.T) {
	tests := []FiveTuple{
		tupleTCP(),
		{SrcIP: 0, DstIP: 0xffffffff, SrcPort: 0, DstPort: 65535, Proto: ProtoUDP},
		{SrcIP: 1, DstIP: 2, Proto: ProtoICMP},
		{},
	}
	for _, tt := range tests {
		if got := TupleFromKey(tt.Key()); got != tt {
			t.Errorf("TupleFromKey(Key(%v)) = %v", tt, got)
		}
	}
}

func TestKeyRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		tt := FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: Protocol(proto)}
		return TupleFromKey(tt.Key()) == tt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseIPRoundTrip(t *testing.T) {
	tests := []struct {
		give string
		want uint32
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xffffffff},
		{"192.0.2.1", 0xc0000201},
		{"10.0.0.1", 0x0a000001},
	}
	for _, tt := range tests {
		got, err := ParseIP(tt.give)
		if err != nil {
			t.Fatalf("ParseIP(%q): %v", tt.give, err)
		}
		if got != tt.want {
			t.Errorf("ParseIP(%q) = %#x, want %#x", tt.give, got, tt.want)
		}
		if s := FormatIP(got); s != tt.give {
			t.Errorf("FormatIP(%#x) = %q, want %q", got, s, tt.give)
		}
	}
}

func TestParseIPErrors(t *testing.T) {
	for _, give := range []string{"", "not-an-ip", "1.2.3", "::1", "2001:db8::1"} {
		if _, err := ParseIP(give); err == nil {
			t.Errorf("ParseIP(%q): want error", give)
		}
	}
}

func TestMustParseIPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseIP on garbage: want panic")
		}
	}()
	MustParseIP("garbage")
}

func TestSynthesizeParseRoundTrip(t *testing.T) {
	sizes := []int{64, 128, 256, 512, 1024, 1500}
	protos := []Protocol{ProtoTCP, ProtoUDP, ProtoICMP}
	for _, proto := range protos {
		for _, size := range sizes {
			tt := tupleTCP()
			tt.Proto = proto
			if proto == ProtoICMP {
				tt.SrcPort, tt.DstPort = 0, 0
			}
			pkt := Synthesize(tt, size)
			if pkt.Size != size {
				t.Fatalf("size %d/%v: got Size %d", size, proto, pkt.Size)
			}
			if len(pkt.Buf) != size {
				t.Fatalf("size %d/%v: buf len %d", size, proto, len(pkt.Buf))
			}
			got, err := Parse(pkt.Buf)
			if err != nil {
				t.Fatalf("Parse(%d/%v): %v", size, proto, err)
			}
			if got != tt {
				t.Errorf("Parse(%d/%v) = %v, want %v", size, proto, got, tt)
			}
		}
	}
}

func TestSynthesizeClampsTinySizes(t *testing.T) {
	pkt := Synthesize(tupleTCP(), 1)
	if pkt.Size < HeaderLen(ProtoTCP) {
		t.Fatalf("Size %d below header length", pkt.Size)
	}
	if _, err := Parse(pkt.Buf); err != nil {
		t.Fatalf("Parse clamped frame: %v", err)
	}
}

func TestSynthesizePropertyRoundTrip(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, udp bool, extra uint16) bool {
		proto := ProtoTCP
		if udp {
			proto = ProtoUDP
		}
		tt := FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}
		size := HeaderLen(proto) + int(extra%1400)
		pkt := Synthesize(tt, size)
		got, err := Parse(pkt.Buf)
		return err == nil && got == tt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	good := Synthesize(tupleTCP(), 64).Buf

	tests := []struct {
		name   string
		mangle func(b []byte)
	}{
		{"truncated", func(b []byte) {}}, // handled below with a short slice
		{"bad ethertype", func(b []byte) { b[12] = 0x86; b[13] = 0xdd }},
		{"bad version", func(b []byte) { b[14] = 0x65 }},
		{"bad checksum", func(b []byte) { b[30] ^= 0xff }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := append([]byte(nil), good...)
			if tt.name == "truncated" {
				b = b[:20]
			} else {
				tt.mangle(b)
			}
			if _, err := Parse(b); err == nil {
				t.Errorf("Parse(%s): want error", tt.name)
			}
		})
	}
}

func TestHash64Distribution(t *testing.T) {
	// Smoke-check: distinct tuples should essentially never collide at the
	// scale of this test, and the hash must be deterministic.
	rng := rand.New(rand.NewSource(1))
	seen := make(map[uint64]FiveTuple, 10000)
	for i := 0; i < 10000; i++ {
		tt := FiveTuple{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Uint32()),
			DstPort: uint16(rng.Uint32()),
			Proto:   ProtoUDP,
		}
		h := tt.Hash64()
		if h != tt.Hash64() {
			t.Fatal("Hash64 not deterministic")
		}
		if prev, ok := seen[h]; ok && prev != tt {
			t.Fatalf("collision: %v and %v both hash to %#x", prev, tt, h)
		}
		seen[h] = tt
	}
}

func TestPoolAllocFree(t *testing.T) {
	p := NewPool(4, 128)
	if p.Cap() != 4 || p.Available() != 4 {
		t.Fatalf("fresh pool: cap=%d avail=%d", p.Cap(), p.Available())
	}
	var refs []Ref
	for i := 0; i < 4; i++ {
		r, ok := p.Alloc()
		if !ok {
			t.Fatalf("Alloc %d failed", i)
		}
		if len(p.Buf(r)) != 128 {
			t.Fatalf("buf len %d", len(p.Buf(r)))
		}
		refs = append(refs, r)
	}
	if _, ok := p.Alloc(); ok {
		t.Fatal("Alloc on exhausted pool succeeded")
	}
	for _, r := range refs {
		p.Free(r)
	}
	if p.Available() != 4 {
		t.Fatalf("after free: avail=%d", p.Available())
	}
}

func TestPoolBuffersDisjoint(t *testing.T) {
	p := NewPool(3, 64)
	r0, _ := p.Alloc()
	r1, _ := p.Alloc()
	for i := range p.Buf(r0) {
		p.Buf(r0)[i] = 0xaa
	}
	for _, b := range p.Buf(r1) {
		if b == 0xaa {
			t.Fatal("pool buffers alias")
		}
	}
}

func TestSynthesizeIntoReusesBuffer(t *testing.T) {
	buf := make([]byte, 256)
	pkt := SynthesizeInto(buf, tupleTCP())
	if &pkt.Buf[0] != &buf[0] {
		t.Fatal("SynthesizeInto allocated a new buffer")
	}
	got, err := Parse(buf)
	if err != nil || got != tupleTCP() {
		t.Fatalf("Parse after SynthesizeInto: %v, %v", got, err)
	}
}

func TestProtocolString(t *testing.T) {
	tests := []struct {
		give Protocol
		want string
	}{
		{ProtoTCP, "tcp"},
		{ProtoUDP, "udp"},
		{ProtoICMP, "icmp"},
		{Protocol(99), "proto(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Protocol(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func BenchmarkSynthesize64(b *testing.B) {
	tt := tupleTCP()
	buf := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SynthesizeInto(buf, tt)
	}
}

func BenchmarkParse(b *testing.B) {
	buf := Synthesize(tupleTCP(), 64).Buf
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHash64(b *testing.B) {
	tt := tupleTCP()
	for i := 0; i < b.N; i++ {
		_ = tt.Hash64()
	}
}
