package packet

import "fmt"

// Pool is the untrusted packet memory pool of the DPDK-style data plane
// (the paper's Figure 6 "Packet Memory Pool"). Buffers live outside the
// enclave; the near-zero-copy path hands the enclave only a Ref plus the
// parsed five-tuple and size, and the enclave's verdict is applied to the
// buffer by reference.
//
// Pool is not safe for concurrent use; in the pipeline each Pool is owned by
// the RX stage, mirroring DPDK's per-port mempool ownership.
type Pool struct {
	bufs []([]byte)
	free []int32
}

// Ref identifies a packet buffer inside a Pool. It is the "*" of the
// paper's near-zero-copy design: an untrusted memory reference the enclave
// never dereferences.
type Ref int32

// NoRef is the sentinel for "no buffer attached".
const NoRef Ref = -1

// NewPool creates a pool of n buffers each of bufSize bytes.
func NewPool(n, bufSize int) *Pool {
	p := &Pool{
		bufs: make([][]byte, n),
		free: make([]int32, n),
	}
	backing := make([]byte, n*bufSize)
	for i := 0; i < n; i++ {
		p.bufs[i] = backing[i*bufSize : (i+1)*bufSize : (i+1)*bufSize]
		p.free[i] = int32(n - 1 - i) // pop order 0,1,2,...
	}
	return p
}

// Alloc takes a free buffer from the pool, or reports false when exhausted
// (the data plane then drops the arriving frame, as a NIC would when its
// descriptor ring backs up).
func (p *Pool) Alloc() (Ref, bool) {
	if len(p.free) == 0 {
		return NoRef, false
	}
	r := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return Ref(r), true
}

// Free returns a buffer to the pool.
func (p *Pool) Free(r Ref) {
	p.free = append(p.free, int32(r))
}

// Buf returns the backing bytes for a buffer.
func (p *Pool) Buf(r Ref) []byte {
	return p.bufs[r]
}

// Available reports how many buffers remain free.
func (p *Pool) Available() int { return len(p.free) }

// Cap reports the pool's total buffer count.
func (p *Pool) Cap() int { return len(p.bufs) }

// Descriptor is what travels on the data-plane rings: the parsed summary of
// one packet plus the reference to its out-of-enclave buffer. It mirrors the
// ⟨∗, 5T, s⟩ triple the paper copies into the enclave.
//
// NS is the victim namespace the packet belongs to in a multi-victim
// deployment: the ingress side stamps it from the destination prefix (the
// transit network knows which victim requested filtering for which prefix,
// e.g. via lb.VictimMap), and the engine dispatches the descriptor to that
// namespace's rule set. Zero is the default namespace, so single-victim
// paths never need to touch it.
type Descriptor struct {
	Tuple FiveTuple
	Size  uint16
	Ref   Ref
	NS    uint16
}

// String implements fmt.Stringer for logs and test failures.
func (d Descriptor) String() string {
	if d.NS != 0 {
		return fmt.Sprintf("%v size=%d ref=%d ns=%d", d.Tuple, d.Size, d.Ref, d.NS)
	}
	return fmt.Sprintf("%v size=%d ref=%d", d.Tuple, d.Size, d.Ref)
}
