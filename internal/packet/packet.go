// Package packet models network packets at the granularity VIF filters
// operate on: the IPv4 five-tuple plus the frame size. It provides real
// IPv4/TCP/UDP header synthesis and parsing so that the full-copy data path
// (which must touch every byte) and the near-zero-copy data path (which
// copies only the five-tuple and size into the enclave) exercise genuinely
// different amounts of work, as in the paper's Figure 7.
package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strconv"
)

// Protocol is an IPv4 protocol number. Only the protocols VIF's volumetric
// filters care about are given names; any uint8 value is representable.
type Protocol uint8

// Protocol numbers from the IANA registry.
const (
	ProtoICMP Protocol = 1
	ProtoTCP  Protocol = 6
	ProtoUDP  Protocol = 17
)

// String returns the conventional protocol mnemonic.
func (p Protocol) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// FiveTuple identifies a transport flow. IPv4 addresses are stored in host
// byte order as uint32 so that prefix matching is cheap bit arithmetic.
// For ICMP (or other port-less protocols) the port fields are zero.
type FiveTuple struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   Protocol
}

// KeySize is the number of bytes in the canonical wire encoding of a
// FiveTuple (4+4+2+2+1).
const KeySize = 13

// Key returns the canonical 13-byte encoding of the tuple. It is the unit
// that the near-zero-copy path copies into the enclave and that hash-based
// filtering digests (the paper's "five-tuple bits").
func (t FiveTuple) Key() [KeySize]byte {
	var k [KeySize]byte
	binary.BigEndian.PutUint32(k[0:4], t.SrcIP)
	binary.BigEndian.PutUint32(k[4:8], t.DstIP)
	binary.BigEndian.PutUint16(k[8:10], t.SrcPort)
	binary.BigEndian.PutUint16(k[10:12], t.DstPort)
	k[12] = uint8(t.Proto)
	return k
}

// TupleFromKey decodes a tuple previously encoded with Key.
func TupleFromKey(k [KeySize]byte) FiveTuple {
	return FiveTuple{
		SrcIP:   binary.BigEndian.Uint32(k[0:4]),
		DstIP:   binary.BigEndian.Uint32(k[4:8]),
		SrcPort: binary.BigEndian.Uint16(k[8:10]),
		DstPort: binary.BigEndian.Uint16(k[10:12]),
		Proto:   Protocol(k[12]),
	}
}

// Hash64 returns a 64-bit FNV-1a hash of the tuple, suitable for hash-table
// placement (not for the security-sensitive probabilistic filter, which uses
// SHA-256 over Key plus the enclave secret).
func (t FiveTuple) Hash64() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	k := t.Key()
	h := uint64(offset64)
	for _, b := range k {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// String renders the tuple as "proto src:port->dst:port". It is the
// canonical flow-key rendering: the packet tracer's Trace.Flow, the
// capture tap, and LookupTrace-style diagnostics all format through here
// (via AppendFlowKey) so a flow prints identically everywhere.
func (t FiveTuple) String() string {
	return string(t.AppendFlowKey(nil))
}

// AppendFlowKey appends the canonical flow-key rendering of the tuple
// ("proto src:port->dst:port") to dst and returns the extended slice. It
// is the allocation-free form of String for hot-path consumers (the
// sampled capture tap) that format into reused buffers.
func (t FiveTuple) AppendFlowKey(dst []byte) []byte {
	dst = append(dst, t.Proto.String()...)
	dst = append(dst, ' ')
	dst = appendIP(dst, t.SrcIP)
	dst = append(dst, ':')
	dst = strconv.AppendUint(dst, uint64(t.SrcPort), 10)
	dst = append(dst, '-', '>')
	dst = appendIP(dst, t.DstIP)
	dst = append(dst, ':')
	return strconv.AppendUint(dst, uint64(t.DstPort), 10)
}

func appendIP(dst []byte, ip uint32) []byte {
	for i := 3; i >= 0; i-- {
		dst = strconv.AppendUint(dst, uint64(ip>>(8*i)&0xff), 10)
		if i > 0 {
			dst = append(dst, '.')
		}
	}
	return dst
}

// FormatIP renders a host-order uint32 IPv4 address in dotted-quad form.
func FormatIP(ip uint32) string {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], ip)
	return netip.AddrFrom4(b).String()
}

// ParseIP parses a dotted-quad IPv4 address into host-order uint32 form.
func ParseIP(s string) (uint32, error) {
	a, err := netip.ParseAddr(s)
	if err != nil {
		return 0, fmt.Errorf("parse ip %q: %w", s, err)
	}
	if !a.Is4() {
		return 0, fmt.Errorf("parse ip %q: not IPv4", s)
	}
	b := a.As4()
	return binary.BigEndian.Uint32(b[:]), nil
}

// MustParseIP is ParseIP for statically-known addresses; it panics on error
// and is intended for tests and example topologies only.
func MustParseIP(s string) uint32 {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Packet is one frame. Buf holds the synthesized Ethernet+IPv4+transport
// bytes padded to Size; Tuple and Size are the parsed summary (the "5T" and
// "s" of the paper's near-zero-copy design). Keeping both lets data paths
// choose how much to touch.
type Packet struct {
	Tuple FiveTuple
	Size  int
	Buf   []byte
}

// Header layout constants for the synthesized frames.
const (
	ethHeaderLen  = 14
	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8

	// MinFrameSize is the smallest Ethernet frame VIF synthesizes (the
	// classic 64-byte minimum used throughout the paper's evaluation).
	MinFrameSize = 64
	// MaxFrameSize is the standard 1500-byte MTU plus Ethernet header.
	MaxFrameSize = 1514
)

// HeaderLen returns the number of header bytes (Ethernet+IPv4+transport)
// for the given protocol.
func HeaderLen(p Protocol) int {
	switch p {
	case ProtoTCP:
		return ethHeaderLen + ipv4HeaderLen + tcpHeaderLen
	case ProtoUDP:
		return ethHeaderLen + ipv4HeaderLen + udpHeaderLen
	default:
		return ethHeaderLen + ipv4HeaderLen
	}
}

// Synthesize builds a frame of exactly size bytes carrying the tuple in real
// IPv4/TCP/UDP headers. size is clamped up to the minimum needed to hold the
// headers. The payload is zero-filled; the IPv4 header checksum is valid.
func Synthesize(t FiveTuple, size int) Packet {
	if min := HeaderLen(t.Proto); size < min {
		size = min
	}
	buf := make([]byte, size)
	encodeFrame(buf, t)
	return Packet{Tuple: t, Size: size, Buf: buf}
}

// SynthesizeInto is Synthesize without allocation: it writes the frame into
// buf (which must be at least HeaderLen bytes) and returns the Packet view.
// The data-plane packet pool uses this to recycle buffers.
func SynthesizeInto(buf []byte, t FiveTuple) Packet {
	encodeFrame(buf, t)
	return Packet{Tuple: t, Size: len(buf), Buf: buf}
}

func encodeFrame(buf []byte, t FiveTuple) {
	// Ethernet: synthetic locally-administered MACs, EtherType IPv4.
	const etherTypeIPv4 = 0x0800
	for i := 0; i < 12; i++ {
		buf[i] = 0x02
	}
	binary.BigEndian.PutUint16(buf[12:14], etherTypeIPv4)

	ip := buf[ethHeaderLen:]
	totalLen := len(buf) - ethHeaderLen
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = 0
	binary.BigEndian.PutUint16(ip[2:4], uint16(totalLen))
	binary.BigEndian.PutUint16(ip[4:6], 0) // identification
	binary.BigEndian.PutUint16(ip[6:8], 0x4000)
	ip[8] = 64 // TTL
	ip[9] = uint8(t.Proto)
	binary.BigEndian.PutUint16(ip[10:12], 0) // checksum placeholder
	binary.BigEndian.PutUint32(ip[12:16], t.SrcIP)
	binary.BigEndian.PutUint32(ip[16:20], t.DstIP)
	binary.BigEndian.PutUint16(ip[10:12], ipv4Checksum(ip[:ipv4HeaderLen]))

	l4 := ip[ipv4HeaderLen:]
	switch t.Proto {
	case ProtoTCP:
		binary.BigEndian.PutUint16(l4[0:2], t.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], t.DstPort)
		binary.BigEndian.PutUint32(l4[4:8], 1)  // seq
		binary.BigEndian.PutUint32(l4[8:12], 0) // ack
		l4[12] = 5 << 4                         // data offset
		l4[13] = 0x10                           // ACK flag
		binary.BigEndian.PutUint16(l4[14:16], 65535)
	case ProtoUDP:
		binary.BigEndian.PutUint16(l4[0:2], t.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], t.DstPort)
		binary.BigEndian.PutUint16(l4[4:6], uint16(totalLen-ipv4HeaderLen))
	}
}

// Parse extracts the five-tuple and size from a raw frame. It validates the
// Ethernet type, IP version, header checksum, and bounds; malformed frames
// return an error (the filter drops them without consulting rules).
func Parse(buf []byte) (FiveTuple, error) {
	var t FiveTuple
	if len(buf) < ethHeaderLen+ipv4HeaderLen {
		return t, fmt.Errorf("packet: frame too short (%d bytes)", len(buf))
	}
	if et := binary.BigEndian.Uint16(buf[12:14]); et != 0x0800 {
		return t, fmt.Errorf("packet: not IPv4 (ethertype 0x%04x)", et)
	}
	ip := buf[ethHeaderLen:]
	if ip[0]>>4 != 4 {
		return t, fmt.Errorf("packet: IP version %d", ip[0]>>4)
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(ip) < ihl {
		return t, fmt.Errorf("packet: bad IHL %d", ihl)
	}
	if ipv4Checksum(ip[:ihl]) != 0 {
		return t, fmt.Errorf("packet: bad IPv4 header checksum")
	}
	t.Proto = Protocol(ip[9])
	t.SrcIP = binary.BigEndian.Uint32(ip[12:16])
	t.DstIP = binary.BigEndian.Uint32(ip[16:20])
	l4 := ip[ihl:]
	switch t.Proto {
	case ProtoTCP, ProtoUDP:
		if len(l4) < 4 {
			return t, fmt.Errorf("packet: truncated %s header", t.Proto)
		}
		t.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		t.DstPort = binary.BigEndian.Uint16(l4[2:4])
	}
	return t, nil
}

// ipv4Checksum computes the RFC 1071 internet checksum of hdr. Computing it
// over a header whose checksum field is filled in yields zero iff valid.
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}
