package vif

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/innetworkfiltering/vif/internal/attest"
	"github.com/innetworkfiltering/vif/internal/lb"
	"github.com/innetworkfiltering/vif/internal/packet"
	"github.com/innetworkfiltering/vif/internal/rpki"
	"github.com/innetworkfiltering/vif/internal/rules"
)

const victimASN = ASN(64500)

func testDeployment(t *testing.T, faults lb.Faults) *Deployment {
	t.Helper()
	svc, err := attest.NewService()
	if err != nil {
		t.Fatal(err)
	}
	registry := rpki.NewRegistry()
	if err := registry.Add(rpki.ROA{
		Prefix: rules.MustParsePrefix("192.0.2.0/24"), ASN: victimASN, MaxLength: 32,
	}); err != nil {
		t.Fatal(err)
	}
	d, err := NewDeployment(DeploymentConfig{Name: "AMS-IX", LBFaults: faults}, svc, registry)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func victimRules(t *testing.T) *RuleSet {
	t.Helper()
	r1, err := ParseRule("drop udp from any to 192.0.2.0/24 dport 53")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ParseRule("drop 50% tcp from any to 192.0.2.0/24 dport 80")
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewRuleSet([]Rule{r1, r2}, true)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestEndToEndHonestDeployment(t *testing.T) {
	d := testDeployment(t, lb.Faults{})
	session, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}
	if session.FleetSize() < 1 {
		t.Fatal("no enclaves")
	}

	rng := rand.New(rand.NewSource(1))
	var amplification, delivered int
	for i := 0; i < 4000; i++ {
		var tp FiveTuple
		if i%2 == 0 { // DNS amplification flood
			tp = FiveTuple{
				SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.10"),
				SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
			}
			amplification++
		} else { // legitimate HTTPS
			tp = FiveTuple{
				SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.10"),
				SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 443, Proto: packet.ProtoTCP,
			}
		}
		if session.Process(Descriptor{Tuple: tp, Size: 512}) == VerdictAllow {
			session.ObserveDelivered(tp)
			delivered++
		}
	}
	if delivered != 4000-amplification {
		t.Fatalf("delivered %d, want %d (all legitimate, no attack)", delivered, 4000-amplification)
	}
	verdict, err := session.AuditOutgoing()
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Clean {
		t.Fatalf("honest deployment flagged: %+v", verdict)
	}
	if session.MisrouteReports() != 0 {
		t.Fatal("spurious misroute reports")
	}
}

func TestRPKIGatesRequests(t *testing.T) {
	d := testDeployment(t, lb.Faults{})
	// AS64666 does not own 192.0.2.0/24.
	if _, err := RequestFiltering(64666, d, victimRules(t)); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("hijacker got a session: %v", err)
	}
}

func TestAttestationRejectsWrongMeasurement(t *testing.T) {
	svc, err := attest.NewService()
	if err != nil {
		t.Fatal(err)
	}
	registry := rpki.NewRegistry()
	if err := registry.Add(rpki.ROA{
		Prefix: rules.MustParsePrefix("192.0.2.0/24"), ASN: victimASN, MaxLength: 32,
	}); err != nil {
		t.Fatal(err)
	}
	// The deployment *claims* the reference identity to victims but loads
	// doctored filter code: measurement mismatch must abort the session.
	evil := FilterIdentity()
	evil.Version = "1.0.0-backdoored"
	d, err := NewDeployment(DeploymentConfig{Name: "evil-ix", Identity: evil}, svc, registry)
	if err != nil {
		t.Fatal(err)
	}
	// Victim pins the reference measurement by constructing the session
	// against a deployment whose Identity() differs — simulate by
	// overriding after handshake setup:
	d.cfg.Identity = evil
	session, err := RequestFiltering(victimASN, d, victimRules(t))
	// Here the deployment self-reports `evil` identity, so attestation
	// succeeds against it; the *victim-side pinning* is what must differ.
	// The attestation-level rejection of doctored code is covered in
	// internal/attest; at this facade level we assert the session carries
	// the identity the victim saw, so pinning is possible.
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if got := d.Identity().Measurement(); got == FilterIdentity().Measurement() {
		t.Fatal("doctored identity measures like the reference: pinning would not detect it")
	}
	_ = session
}

func TestAuditDetectsDropAfterFilter(t *testing.T) {
	d := testDeployment(t, lb.Faults{})
	session, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	i := 0
	for ; i < 2000; i++ {
		tp := FiveTuple{
			SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.10"),
			SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 443, Proto: packet.ProtoTCP,
		}
		if session.Process(Descriptor{Tuple: tp, Size: 512}) == VerdictAllow {
			// The malicious network drops every 4th allowed packet after
			// the filter.
			if i%4 != 0 {
				session.ObserveDelivered(tp)
			}
		}
	}
	verdict, err := session.AuditOutgoing()
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Clean {
		t.Fatal("25% post-filter drop not detected")
	}
	if verdict.DropAfterFilter == 0 {
		t.Fatalf("misattributed: %+v", verdict)
	}
	session.Abort()
	if !session.Aborted() {
		t.Fatal("abort did not stick")
	}
}

func TestAuditDetectsInjection(t *testing.T) {
	d := testDeployment(t, lb.Faults{})
	session, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		tp := FiveTuple{
			SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.10"),
			SrcPort: uint16(rng.Intn(60000) + 1), DstPort: 443, Proto: packet.ProtoTCP,
		}
		if session.Process(Descriptor{Tuple: tp, Size: 512}) == VerdictAllow {
			session.ObserveDelivered(tp)
		}
	}
	// The network re-injects DNS flood packets downstream of the filter.
	for i := 0; i < 200; i++ {
		session.ObserveDelivered(FiveTuple{
			SrcIP: rng.Uint32(), DstIP: packet.MustParseIP("192.0.2.10"),
			SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
		})
	}
	verdict, err := session.AuditOutgoing()
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Clean || verdict.InjectionAfterFilter < 150 {
		t.Fatalf("injection not detected: %+v", verdict)
	}
}

func TestMisbehavingBalancerReported(t *testing.T) {
	d := testDeployment(t, lb.Faults{MisrouteProb: 0.5, Seed: 4})
	// Many rules so the fleet shards across several enclaves.
	rng := rand.New(rand.NewSource(5))
	rs := make([]Rule, 400)
	for i := range rs {
		rs[i] = Rule{
			Src:   rules.Prefix{Addr: rng.Uint32(), Len: 24}.Canonical(),
			Dst:   rules.MustParsePrefix("192.0.2.0/24"),
			Proto: packet.ProtoUDP,
		}
	}
	set, err := NewRuleSet(rs, true)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink per-enclave capacity to force sharding.
	d.cfg.MaxRulesPerEnclave = 100
	session, err := RequestFiltering(victimASN, d, set)
	if err != nil {
		t.Fatal(err)
	}
	if session.FleetSize() < 2 {
		t.Skipf("fleet did not shard (%d enclaves)", session.FleetSize())
	}
	for i := 0; i < 3000; i++ {
		r := rs[rng.Intn(len(rs))]
		tp := FiveTuple{
			SrcIP: r.Src.Addr | (rng.Uint32() & 0xff),
			DstIP: packet.MustParseIP("192.0.2.10"),
			Proto: packet.ProtoUDP,
		}
		session.Process(Descriptor{Tuple: tp, Size: 64})
	}
	if session.MisrouteReports() == 0 {
		t.Fatal("misbehaving balancer never reported")
	}
}

func TestReconfigureKeepsFiltering(t *testing.T) {
	d := testDeployment(t, lb.Faults{})
	session, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}
	attack := FiveTuple{
		SrcIP: packet.MustParseIP("203.0.113.7"), DstIP: packet.MustParseIP("192.0.2.10"),
		SrcPort: 53, DstPort: 53, Proto: packet.ProtoUDP,
	}
	for i := 0; i < 100; i++ {
		session.Process(Descriptor{Tuple: attack, Size: 1500})
	}
	if err := session.Reconfigure(); err != nil {
		t.Fatal(err)
	}
	if got := session.Process(Descriptor{Tuple: attack, Size: 64}); got != VerdictDrop {
		t.Fatalf("attack allowed after reconfiguration: %v", got)
	}
}

func TestNewRoundResetsLogs(t *testing.T) {
	d := testDeployment(t, lb.Faults{})
	session, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}
	tp := FiveTuple{
		SrcIP: 1, DstIP: packet.MustParseIP("192.0.2.10"), DstPort: 443, Proto: packet.ProtoTCP,
	}
	session.Process(Descriptor{Tuple: tp, Size: 64}) // allowed, logged, NOT delivered
	session.NewRound()
	verdict, err := session.AuditOutgoing()
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Clean {
		t.Fatalf("fresh round not clean: %+v", verdict)
	}
}

func TestNewDeploymentValidation(t *testing.T) {
	svc, _ := attest.NewService()
	if _, err := NewDeployment(DeploymentConfig{Name: "x"}, nil, rpki.NewRegistry()); err == nil {
		t.Fatal("nil service accepted")
	}
	if _, err := NewDeployment(DeploymentConfig{Name: "x"}, svc, nil); err == nil {
		t.Fatal("nil registry accepted")
	}
}

func TestAbortedSessionIsInert(t *testing.T) {
	d := testDeployment(t, lb.Faults{})
	session, err := RequestFiltering(victimASN, d, victimRules(t))
	if err != nil {
		t.Fatal(err)
	}
	session.Abort()
	tp := FiveTuple{SrcIP: 1, DstIP: packet.MustParseIP("192.0.2.1"), DstPort: 443, Proto: packet.ProtoTCP}
	if got := session.Process(Descriptor{Tuple: tp, Size: 64}); got != VerdictDrop {
		t.Fatalf("aborted session forwarded traffic: %v", got)
	}
	if _, err := session.AuditOutgoing(); !errors.Is(err, ErrAborted) {
		t.Fatalf("audit on aborted session: %v, want ErrAborted", err)
	}
	if err := session.Reconfigure(); !errors.Is(err, ErrAborted) {
		t.Fatalf("reconfigure on aborted session: %v, want ErrAborted", err)
	}
}
